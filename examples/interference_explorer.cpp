// Example: watching Eva learn interference online.
//
// Runs a packing-heavy trace under Eva and then dumps the learned
// co-location throughput table next to the hidden ground truth (Figure 1),
// showing how the ThroughputMonitor's lower-bound entries converge from the
// optimistic default t = 0.95 toward the measured pairwise values.

#include <cstdio>

#include "src/common/format.h"
#include "src/core/eva_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 80;
  trace_options.mean_interarrival_s = 5 * kSecondsPerMinute;  // Dense: lots of co-location.
  trace_options.seed = 5;
  const Trace trace = GenerateSyntheticTrace(trace_options);

  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();

  EvaScheduler scheduler;
  SimulatorOptions sim_options;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog, interference, sim_options);

  std::printf("Ran " EVA_PRId64 " jobs; Eva adopted Full Reconfiguration in %d of %d"
              " rounds.\n\n",
              static_cast<long long>(metrics.jobs_completed), scheduler.stats().full_adopted,
              scheduler.stats().rounds);

  const ThroughputTable& table = scheduler.throughput_table();
  std::printf("Learned pairwise co-location throughput (learned / ground truth):\n");
  std::printf("%-16s", "");
  for (int b = 0; b < WorkloadRegistry::NumWorkloads(); ++b) {
    std::printf(" %10.10s", WorkloadRegistry::Get(b).name.c_str());
  }
  std::printf("\n");
  int learned = 0;
  for (int a = 0; a < WorkloadRegistry::NumWorkloads(); ++a) {
    std::printf("%-16s", WorkloadRegistry::Get(a).name.c_str());
    for (int b = 0; b < WorkloadRegistry::NumWorkloads(); ++b) {
      const auto entry = table.Lookup(a, {b});
      if (entry.has_value()) {
        ++learned;
        std::printf(" %4.2f/%4.2f", *entry, interference.Pairwise(a, b));
      } else {
        std::printf("    - /%4.2f", interference.Pairwise(a, b));
      }
    }
    std::printf("\n");
  }
  std::printf("\n%d pairwise entries learned; %zu table entries total.\n", learned,
              table.NumEntries());
  return 0;
}
