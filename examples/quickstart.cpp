// Quickstart: the §4.2 walk-through plus a three-job mini-cluster.
//
// Part 1 reproduces the Table 3 example by hand: four tasks, four instance
// types, and Algorithm 1 arriving at the $12.8/hr configuration (versus
// $16.2/hr for one instance per task).
//
// Part 2 runs the end-to-end stack the way the paper's artifact "minimal
// working example" does: three jobs (ResNet18-2task, GraphSAGE, A3C)
// submitted to a simulated cloud-based cluster managed by Eva.

#include <cstdio>

#include "src/common/format.h"
#include "src/core/eva_scheduler.h"
#include "src/core/full_reconfig.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace {

void Part1PaperExample() {
  using namespace eva;
  std::printf("=== Part 1: the Table 3 walk-through ===\n");

  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  SchedulingContext context;
  context.catalog = &catalog;

  // Table 3(b): four single-task jobs with the listed demands.
  const ResourceVector demands[] = {{2, 8, 24}, {1, 4, 10}, {0, 6, 20}, {0, 4, 12}};
  for (int i = 0; i < 4; ++i) {
    TaskInfo task;
    task.id = i + 1;
    task.job = i + 1;
    task.workload = 0;  // Interference-free walk-through.
    task.demand_p3 = demands[i];
    task.demand_cpu = demands[i];
    context.tasks.push_back(task);
  }
  context.Finalize();

  const TnrpCalculator calculator(context, {.interference_aware = false});
  Money separate = 0.0;
  for (const TaskInfo& task : context.tasks) {
    const Money rp = calculator.ReservationPrice(task);
    std::printf("  RP(tau" EVA_PRId64 ") = $%.1f/hr\n", task.id, rp);
    separate += rp;
  }

  const ClusterConfig config = FullReconfiguration(context, calculator);
  std::printf("Full Reconfiguration result:\n");
  for (const ConfigInstance& instance : config.instances) {
    std::printf("  %s <-", catalog.Get(instance.type_index).name.c_str());
    for (TaskId task : instance.tasks) {
      std::printf(" tau" EVA_PRId64, task);
    }
    std::printf("\n");
  }
  std::printf("Configuration cost: $%.1f/hr (one instance per task: $%.1f/hr)\n\n",
              config.HourlyCost(catalog), separate);
}

void Part2MiniCluster() {
  using namespace eva;
  std::printf("=== Part 2: three jobs on an Eva-managed cluster ===\n");

  // Two ViT jobs (2 GPUs each; the cheapest type fitting one is a
  // p3.8xlarge) plus an A3C job: Eva packs both ViTs onto a single
  // p3.8xlarge — RP sum $24.48/hr against a $12.24/hr instance.
  Trace trace;
  trace.name = "quickstart";
  trace.jobs.push_back(
      JobSpec::FromWorkload(0, 0.0, WorkloadRegistry::IdOf("ViT"), HoursToSeconds(0.6)));
  trace.jobs.push_back(
      JobSpec::FromWorkload(1, 300.0, WorkloadRegistry::IdOf("ViT"), HoursToSeconds(0.5)));
  trace.jobs.push_back(
      JobSpec::FromWorkload(2, 600.0, WorkloadRegistry::IdOf("A3C"), HoursToSeconds(0.4)));

  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kEva};
  ExperimentOptions options;
  const std::vector<ExperimentResult> results = RunComparison(trace, kinds, options);
  PrintComparisonTable(results);
  std::printf("\nEva served the 4 tasks at %.0f%% of the No-Packing cost.\n",
              results[1].normalized_cost * 100.0);
}

}  // namespace

int main() {
  Part1PaperExample();
  Part2MiniCluster();
  return 0;
}
