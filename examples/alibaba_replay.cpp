// Example: replaying a production-style trace through the public API.
//
// Demonstrates the trace workflow end to end: generate an Alibaba-like
// trace, persist it to CSV, reload it (the same path a user takes with a
// real exported trace), and compare all five schedulers on the replay.
//
// Usage: alibaba_replay [num_jobs] [trace.csv] (defaults: 250 jobs, temp file)

#include <cstdio>
#include <cstdlib>

#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main(int argc, char** argv) {
  using namespace eva;

  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 250;
  const std::string path = argc > 2 ? argv[2] : "/tmp/eva_alibaba_trace.csv";

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = num_jobs;
  trace_options.seed = 31;
  const Trace generated = GenerateAlibabaTrace(trace_options);

  // Persist + reload, as a user would with a real trace export.
  {
    FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    const std::string csv = generated.ToCsv();
    std::fwrite(csv.data(), 1, csv.size(), file);
    std::fclose(file);
  }
  std::string csv;
  {
    FILE* file = std::fopen(path.c_str(), "r");
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
      csv.append(buf, n);
    }
    std::fclose(file);
  }
  const std::optional<Trace> loaded = Trace::FromCsv(csv, "alibaba-replay");
  if (!loaded.has_value()) {
    std::fprintf(stderr, "trace round-trip failed\n");
    return 1;
  }
  std::printf("Replaying %zu jobs from %s\n\n", loaded->jobs.size(), path.c_str());

  ExperimentOptions options;
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                                            SchedulerKind::kSynergy, SchedulerKind::kOwl,
                                            SchedulerKind::kEva};
  // One simulator per scheduler, all cores: identical output to the serial
  // RunComparison, just faster.
  PrintComparisonTable(ParallelRunComparison(*loaded, kinds, options));
  return 0;
}
