// Example: an enterprise's shared ML training cluster (§2.3's target use
// case). Several teams submit training jobs over a workday; the example
// runs the shared cluster under Eva and under the provision-per-task
// strategy each team would otherwise use, and reports the monthly savings.
//
// Usage: ml_team_cluster [num_jobs] (default 60)

#include <cstdio>
#include <cstdlib>

#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main(int argc, char** argv) {
  using namespace eva;

  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 60;

  std::printf("Shared cloud-based cluster for ML teams: %d jobs arriving over ~%.0f hours\n",
              num_jobs, num_jobs * 20.0 / 60.0);

  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = num_jobs;
  trace_options.seed = 77;
  const Trace trace = GenerateSyntheticTrace(trace_options);

  ExperimentOptions options;
  options.simulator.physical_mode = true;  // AWS-like jitter.
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                                            SchedulerKind::kEva};
  const std::vector<ExperimentResult> results = RunComparison(trace, kinds, options);
  PrintComparisonTable(results);

  const Money per_task = results[0].metrics.total_cost;
  const Money eva_cost = results[2].metrics.total_cost;
  std::printf("\nProvision-per-task: $%.2f    Eva: $%.2f    saving: %.1f%%\n", per_task,
              eva_cost, (1.0 - eva_cost / per_task) * 100.0);
  std::printf("At this submission rate the shared cluster saves ~$%.0f per 30-day month.\n",
              (per_task - eva_cost) / results[2].metrics.makespan_s * 30 * 86400);
  return 0;
}
