# Shared helper functions for the Eva build.
#
# Conventions this module encodes:
#   * Test suites are one binary per tests/ subdirectory, registered with
#     CTest via gtest_discover_tests and tagged with a label so that
#     `ctest -L unit` gives a fast inner loop.
#   * Dependencies prefer the system package (find_package) and fall back to
#     FetchContent so a network-connected machine without dev packages still
#     builds; FetchContent is never attempted when the package is found.

include_guard(GLOBAL)

# Resolves GoogleTest into GTest::gtest / GTest::gtest_main targets.
macro(eva_find_gtest)
  if(NOT TARGET GTest::gtest_main)
    find_package(GTest QUIET)
    if(NOT GTest_FOUND)
      message(STATUS "System GTest not found; fetching googletest v1.14.0")
      include(FetchContent)
      FetchContent_Declare(googletest
        URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
        URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
      set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
      set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
      FetchContent_MakeAvailable(googletest)
    endif()
  endif()
  include(GoogleTest)
endmacro()

# Resolves Google Benchmark into the benchmark::benchmark_main target.
macro(eva_find_benchmark)
  if(NOT TARGET benchmark::benchmark_main)
    find_package(benchmark QUIET)
    if(NOT benchmark_FOUND)
      message(STATUS "System Google Benchmark not found; fetching v1.8.3")
      include(FetchContent)
      FetchContent_Declare(googlebenchmark
        URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
        URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce)
      set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
      set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
      FetchContent_MakeAvailable(googlebenchmark)
    endif()
  endif()
endmacro()

# eva_add_test_suite(<name> LABEL <unit|integration|property> SOURCES <files...>)
#
# One gtest binary covering a tests/ subdirectory. Discovered tests inherit
# LABEL so `ctest -L <label>` selects them.
function(eva_add_test_suite name)
  cmake_parse_arguments(ARG "" "LABEL" "SOURCES" ${ARGN})
  if(NOT ARG_LABEL)
    set(ARG_LABEL unit)
  endif()
  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE eva_core eva_warnings GTest::gtest_main)
  gtest_discover_tests(${name}
    PROPERTIES LABELS "${ARG_LABEL}"
    DISCOVERY_TIMEOUT 120)
endfunction()

# eva_add_driver(<name> SOURCES <files...> [LIBS <targets...>])
#
# A standalone binary (example or table/figure harness) linking eva_core.
function(eva_add_driver name)
  cmake_parse_arguments(ARG "" "" "SOURCES;LIBS" ${ARGN})
  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE eva_core eva_warnings ${ARG_LIBS})
endfunction()

# eva_add_header_checks(<target> HEADERS <repo-relative headers...>)
#
# Generates a one-line TU per header and compiles them all into an OBJECT
# library, so a header that stops being self-contained breaks the build
# rather than lurking until someone reorders includes.
function(eva_add_header_checks target)
  cmake_parse_arguments(ARG "" "" "HEADERS" ${ARGN})
  set(check_sources)
  foreach(header IN LISTS ARG_HEADERS)
    string(MAKE_C_IDENTIFIER "${header}" stem)
    set(check_src "${CMAKE_CURRENT_BINARY_DIR}/header_checks/${stem}.cc")
    file(CONFIGURE OUTPUT "${check_src}" CONTENT "#include \"${header}\"\n")
    list(APPEND check_sources "${check_src}")
  endforeach()
  add_library(${target} OBJECT ${check_sources})
  target_include_directories(${target} PRIVATE "${PROJECT_SOURCE_DIR}")
  target_link_libraries(${target} PRIVATE eva_warnings)
endfunction()
