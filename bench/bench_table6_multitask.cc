// Table 6: multi-task job micro-benchmark.
//
// 10 trials of 100 jobs x 4 identical tasks (durations 0.5-16h). Compares
// No-Packing, Eva-Single (tasks treated independently) and Eva-Multi (the
// §4.4 job-level TNRP), reporting normalized cost and JCT.
//
// Scale with EVA_BENCH_SCALE (percent of the 10 trials; default 30%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("Multi-task job micro-benchmark", "Table 6");

  const int trials = ScaledJobCount(10, 30);
  RunningStats cost_single;
  RunningStats cost_multi;
  RunningStats jct_none;
  RunningStats jct_single;
  RunningStats jct_multi;

  for (int trial = 0; trial < trials; ++trial) {
    MultiTaskMicroOptions trace_options;
    trace_options.seed = 500 + static_cast<std::uint64_t>(trial);
    const Trace trace = GenerateMultiTaskMicroTrace(trace_options);

    ExperimentOptions options;
    const std::vector<ExperimentResult> results =
        RunComparison(trace,
                      {SchedulerKind::kNoPacking, SchedulerKind::kEvaSingle,
                       SchedulerKind::kEva},
                      options);
    cost_single.Add(results[1].normalized_cost);
    cost_multi.Add(results[2].normalized_cost);
    jct_none.Add(results[0].metrics.avg_jct_hours);
    jct_single.Add(results[1].metrics.avg_jct_hours);
    jct_multi.Add(results[2].metrics.avg_jct_hours);
  }

  std::printf("%d trials x 100 jobs x 4 tasks\n\n", trials);
  std::printf("%-14s %-20s %s\n", "Scheduler", "Norm. Total Cost", "JCT (hours)");
  std::printf("%-14s %-20s %s\n", "No-Packing", "100%", MeanPlusMinus(jct_none).c_str());
  std::printf("%-14s %5.1f%% +- %4.1f%%      %s\n", "Eva-Single", cost_single.mean() * 100.0,
              cost_single.stddev() * 100.0, MeanPlusMinus(jct_single).c_str());
  std::printf("%-14s %5.1f%% +- %4.1f%%      %s\n", "Eva-Multi", cost_multi.mean() * 100.0,
              cost_multi.stddev() * 100.0, MeanPlusMinus(jct_multi).c_str());
  std::printf("\nPaper: Eva-Single 79.5%%, Eva-Multi 74.2%%; JCT 4.44 / 5.11 / 4.55 h.\n");
  return 0;
}
