// Table 11: end-to-end physical experiment, 32-job trace, all 5 schedulers.
//
// Scale with EVA_BENCH_SCALE (percent of 32 jobs; default 100%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("End-to-end physical experiment, 32 jobs", "Table 11");

  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(32);
  trace_options.seed = 32;
  const Trace trace = GenerateSyntheticTrace(trace_options);

  ExperimentOptions options;
  options.simulator.physical_mode = true;
  options.simulator.seed = 12;

  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                                            SchedulerKind::kSynergy, SchedulerKind::kOwl,
                                            SchedulerKind::kEva};
  PrintComparisonTable(ParallelRunComparison(trace, kinds, options));
  std::printf("\nPaper: No-Packing 100%%, Stratus 88.9%%, Synergy 89.0%%, Owl 87.7%%, Eva 75.1%%.\n");
  return 0;
}
