// Figure 4: impact of co-location interference.
//
// Replaces the measured interference matrix with a uniform pairwise
// throughput in {1, 0.95, 0.9, 0.85, 0.8} and compares No-Packing, Owl,
// Eva-RP (interference-oblivious) and Eva-TNRP. As interference grows,
// Eva-RP's packing backfires (throughput loss -> longer uptime -> cost),
// while Eva-TNRP keeps throughput near Owl's and still saves cost.
//
// Scale with EVA_BENCH_SCALE (percent of 6,274 jobs; default 5%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("Impact of co-location interference", "Figure 4");

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(6274, 5);
  trace_options.seed = 2023;
  trace_options.max_duration_hours = 72.0;  // Bound single-job variance at reduced scale.
  const Trace trace = GenerateAlibabaTrace(trace_options);

  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kOwl,
                                            SchedulerKind::kEvaRp, SchedulerKind::kEva};
  const double levels[] = {1.0, 0.95, 0.90, 0.85, 0.80};

  std::printf("%-8s | %-28s | %-28s | %-28s\n", "Pairwise", "Norm. Total Cost",
              "Norm. Throughput", "JCT (hours)");
  std::printf("%-8s | %6s %6s %6s %6s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "tput", "NoPk",
              "Owl", "EvaRP", "Eva", "NoPk", "Owl", "EvaRP", "Eva", "NoPk", "Owl", "EvaRP",
              "Eva");
  for (double level : levels) {
    ExperimentOptions options;
    options.interference = InterferenceModel::Uniform(level);
    const std::vector<ExperimentResult> results = RunComparison(trace, kinds, options);
    std::printf("%-8.2f | %6.2f %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f %6.2f | %6.2f %6.2f "
                "%6.2f %6.2f\n",
                level, results[0].normalized_cost, results[1].normalized_cost,
                results[2].normalized_cost, results[3].normalized_cost,
                results[0].metrics.avg_norm_job_throughput,
                results[1].metrics.avg_norm_job_throughput,
                results[2].metrics.avg_norm_job_throughput,
                results[3].metrics.avg_norm_job_throughput, results[0].metrics.avg_jct_hours,
                results[1].metrics.avg_jct_hours, results[2].metrics.avg_jct_hours,
                results[3].metrics.avg_jct_hours);
  }
  std::printf("\nPaper: Eva-RP throughput collapses with interference while Eva-TNRP stays\n");
  std::printf("near Owl's and keeps the lowest cost at every level.\n");
  return 0;
}
