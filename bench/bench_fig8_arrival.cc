// Figure 8: impact of job arrival rate.
//
// Rescales the trace's arrival process to 0.5-3 jobs/hour. Fewer concurrent
// jobs mean fewer packing opportunities, shrinking every packer's edge over
// No-Packing — but Eva stays the cheapest throughout. Scale with
// EVA_BENCH_SCALE (percent of 6,274 jobs; default 4%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("Impact of job arrival rate", "Figure 8");

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(6274, 4);
  trace_options.seed = 2023;
  trace_options.max_duration_hours = 72.0;  // Bound single-job variance at reduced scale.
  const Trace base = GenerateAlibabaTrace(trace_options);

  std::printf("%-9s | %8s %9s %9s %7s %7s   (normalized cost)\n", "Jobs/hr", "NoPack",
              "Stratus", "Synergy", "Owl", "Eva");
  for (double rate = 0.5; rate <= 3.01; rate += 0.5) {
    const Trace trace = WithArrivalRate(base, rate);
    ExperimentOptions options;
    const std::vector<ExperimentResult> results =
        RunComparison(trace,
                      {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                       SchedulerKind::kSynergy, SchedulerKind::kOwl, SchedulerKind::kEva},
                      options);
    std::printf("%-9.1f | %7.1f%% %8.1f%% %8.1f%% %6.1f%% %6.1f%%\n", rate,
                results[0].normalized_cost * 100.0, results[1].normalized_cost * 100.0,
                results[2].normalized_cost * 100.0, results[3].normalized_cost * 100.0,
                results[4].normalized_cost * 100.0);
  }
  std::printf("\nPaper: packing benefit shrinks at low arrival rates, but Eva keeps a\n");
  std::printf("10-16%% edge over the other packers at every rate.\n");
  return 0;
}
