// Table 12: simulator fidelity.
//
// Runs the 32-job trace under each scheduler twice: once in physical mode
// (stochastic delays + observation noise — the stand-in for the AWS run)
// and once in simulated mode (deterministic mean delays), and reports the
// relative cost difference. The paper observes <= 5% divergence.
//
// Scale with EVA_BENCH_SCALE (percent of 32 jobs; default 100%).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("Simulator fidelity", "Table 12");

  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(32);
  trace_options.seed = 32;
  const Trace trace = GenerateSyntheticTrace(trace_options);

  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                                            SchedulerKind::kSynergy, SchedulerKind::kOwl,
                                            SchedulerKind::kEva};

  ExperimentOptions physical;
  physical.simulator.physical_mode = true;
  physical.simulator.seed = 13;
  const std::vector<ExperimentResult> actual = RunComparison(trace, kinds, physical);

  ExperimentOptions simulated;
  simulated.simulator.physical_mode = false;
  const std::vector<ExperimentResult> predicted = RunComparison(trace, kinds, simulated);

  std::printf("%-12s %14s %14s %12s\n", "Scheduler", "\"Actual\"($)", "Simulated($)",
              "Difference");
  double worst = 0.0;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const double a = actual[i].metrics.total_cost;
    const double s = predicted[i].metrics.total_cost;
    const double diff = a > 0.0 ? (s - a) / a : 0.0;
    worst = std::max(worst, std::fabs(diff));
    std::printf("%-12s %14.2f %14.2f %11.1f%%\n", SchedulerKindName(kinds[i]), a, s,
                diff * 100.0);
  }
  std::printf("\nLargest divergence: %.1f%% (paper observes <= 4.9%%).\n", worst * 100.0);
  return 0;
}
