// Table 10 + Figure 3: end-to-end "physical" experiment, 120-job trace.
//
// Runs the synthetic 120-job trace (Poisson arrivals every 20 min, 0.5-3h
// durations) under No-Packing, Stratus and Eva, with the simulator in
// physical mode (stochastic Table 1 delays + noisy observations) standing
// in for AWS. Prints the Table 10 columns plus the Figure 3 instance-uptime
// CDF percentiles.
//
// Scale with EVA_BENCH_SCALE (percent of 120 jobs; default 100%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("End-to-end physical experiment, 120 jobs", "Table 10 and Figure 3");

  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(120);
  trace_options.seed = 120;
  const Trace trace = GenerateSyntheticTrace(trace_options);

  ExperimentOptions options;
  options.simulator.physical_mode = true;
  options.simulator.seed = 11;

  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                                            SchedulerKind::kEva};
  const std::vector<ExperimentResult> results = ParallelRunComparison(trace, kinds, options);

  std::printf("Table 10 columns:\n");
  std::printf("%-12s %10s %7s %10s %9s %6s %6s %6s\n", "Scheduler", "Cost($)", "Norm",
              "Instances", "Mig/Task", "GPU%", "CPU%", "RAM%");
  for (const ExperimentResult& r : results) {
    std::printf("%-12s %10.2f %6.1f%% %10lld %9.2f %5.0f%% %5.0f%% %5.0f%%\n",
                SchedulerKindName(r.kind), r.metrics.total_cost, r.normalized_cost * 100.0,
                static_cast<long long>(r.metrics.instances_launched),
                r.metrics.migrations_per_task,
                r.metrics.avg_alloc_gpu * 100.0, r.metrics.avg_alloc_cpu * 100.0,
                r.metrics.avg_alloc_ram * 100.0);
  }

  std::printf("\nFigure 3 (instance-uptime CDF, hours at P25/P50/P75/P90):\n");
  for (const ExperimentResult& r : results) {
    std::printf("%-12s p25=%.2f p50=%.2f p75=%.2f p90=%.2f (n=%zu)\n",
                SchedulerKindName(r.kind), Quantile(r.metrics.instance_uptime_hours, 0.25),
                Quantile(r.metrics.instance_uptime_hours, 0.50),
                Quantile(r.metrics.instance_uptime_hours, 0.75),
                Quantile(r.metrics.instance_uptime_hours, 0.90),
                r.metrics.instance_uptime_hours.size());
  }
  std::printf("\nPaper: Eva 84.4%% of No-Packing cost, more instances launched, ~1.2 mig/task,\n");
  std::printf("highest allocation on all three resources, shorter instance uptimes.\n");
  return 0;
}
