// Figure 7: impact of multi-task jobs.
//
// Converts a growing share of the Alibaba-like trace into 2- or 4-task
// data-parallel jobs (1:1) and compares No-Packing, Stratus, Eva-Single
// (no job-level TNRP) and Eva. Scale with EVA_BENCH_SCALE (percent of
// 6,274 jobs; default 4%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("Impact of multi-task jobs", "Figure 7");

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(6274, 4);
  trace_options.seed = 2023;
  trace_options.max_duration_hours = 72.0;  // Bound single-job variance at reduced scale.
  const Trace base = GenerateAlibabaTrace(trace_options);

  std::printf("%-11s | %8s %9s %12s %7s   (normalized cost)\n", "MultiTask%", "NoPack",
              "Stratus", "Eva-Single", "Eva");
  for (int percent = 0; percent <= 60; percent += 20) {
    const Trace trace = WithMultiTaskFraction(base, percent / 100.0, 7 + percent);
    ExperimentOptions options;
    const std::vector<ExperimentResult> results =
        RunComparison(trace,
                      {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                       SchedulerKind::kEvaSingle, SchedulerKind::kEva},
                      options);
    std::printf("%-11d | %7.1f%% %8.1f%% %11.1f%% %6.1f%%\n", percent,
                results[0].normalized_cost * 100.0, results[1].normalized_cost * 100.0,
                results[2].normalized_cost * 100.0, results[3].normalized_cost * 100.0);
  }
  std::printf("\nPaper: Eva stays 10-37%% below the baselines; ignoring task\n");
  std::printf("interdependency (Eva-Single) costs up to 13%% more.\n");
  return 0;
}
