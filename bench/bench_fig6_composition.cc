// Figure 6: impact of workload composition (multi-GPU job share).
//
// Rewrites the GPU jobs of the Alibaba-like trace so that 0-60% of them
// demand 2/4/8 GPUs (ratio 5:4:1) and compares No-Packing, Stratus,
// Synergy, Eva w/o Full Reconfig, and Eva. Packing benefit shrinks as big
// jobs crowd out co-location, and skipping Full Reconfiguration costs the
// most exactly in that regime.
//
// Scale with EVA_BENCH_SCALE (percent of 6,274 jobs; default 4%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("Impact of workload composition", "Figure 6");

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(6274, 4);
  trace_options.seed = 2023;
  trace_options.max_duration_hours = 72.0;  // Bound single-job variance at reduced scale.
  const Trace base = GenerateAlibabaTrace(trace_options);

  std::printf("%-10s | %8s %9s %9s %12s %7s   (normalized cost)\n", "MultiGPU%", "NoPack",
              "Stratus", "Synergy", "Eva(w/oFull)", "Eva");
  for (int percent = 0; percent <= 60; percent += 10) {
    const Trace trace = WithMultiGpuFraction(base, percent / 100.0, 99 + percent);
    ExperimentOptions options;
    const std::vector<ExperimentResult> results =
        RunComparison(trace,
                      {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                       SchedulerKind::kSynergy, SchedulerKind::kEvaPartialOnly,
                       SchedulerKind::kEva},
                      options);
    std::printf("%-10d | %7.1f%% %8.1f%% %8.1f%% %11.1f%% %6.1f%%\n", percent,
                results[0].normalized_cost * 100.0, results[1].normalized_cost * 100.0,
                results[2].normalized_cost * 100.0, results[3].normalized_cost * 100.0,
                results[4].normalized_cost * 100.0);
  }
  std::printf("\nPaper: all packers lose ground as multi-GPU share grows; Eva stays 10-15%%\n");
  std::printf("below Stratus/Synergy, and dropping Full Reconfig costs up to ~8%% more.\n");
  return 0;
}
