// Table 13: end-to-end simulation, Alibaba-like trace, Alibaba durations.
//
// The paper's headline result: on the 6,274-job production trace Eva cuts
// total cost to ~60% of No-Packing while packing ~2 tasks/instance at a
// 5-16% JCT increase. Scale with EVA_BENCH_SCALE (percent of 6,274 jobs;
// default 8%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("End-to-end simulation, Alibaba durations", "Table 13");

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(6274, 8);
  trace_options.duration_model = DurationModel::kAlibaba;
  trace_options.seed = 2023;
  const Trace trace = GenerateAlibabaTrace(trace_options);
  std::printf("Trace: %d jobs (Alibaba-like statistical model)\n\n", trace_options.num_jobs);

  ExperimentOptions options;
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                                            SchedulerKind::kSynergy, SchedulerKind::kOwl,
                                            SchedulerKind::kEva};
  PrintComparisonTable(ParallelRunComparison(trace, kinds, options));
  std::printf("\nPaper: No-Packing 100%%, Stratus 72%%, Synergy 77%%, Owl 78%%, Eva 60%%;\n");
  std::printf("tasks/instance 0.99/1.60/1.72/1.81/2.05; JCT 9.18->10.55h for Eva.\n");
  return 0;
}
