// Shared helpers for the table/figure reproduction harnesses.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "src/common/format.h"
#include "src/common/rng.h"
#include "src/obs/publish.h"
#include "src/obs/registry.h"
#include "src/sched/types.h"
#include "src/sim/metrics.h"
#include "src/workload/workload.h"

namespace eva {

// --- Process resource accounting for the perf harnesses -----------------

// Peak resident set size of this process so far, in MiB (0 when the
// platform offers no getrusage).
inline double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // Bytes.
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB.
#endif
#else
  return 0.0;
#endif
}

// Number of operator-new allocations since process start. Defined in
// bench_alloc_hooks.cc — the counting replacement operator new/delete —
// which bench/CMakeLists.txt links into every bench binary (and nothing
// else links, so library/test builds stay on the stock allocator).
std::uint64_t AllocationCount();

// A static packing problem: `num_tasks` single-task jobs sampled uniformly
// from the Table 7 workloads (the Table 4/5 micro-benchmark setup).
// `catalog` must outlive the returned context.
inline SchedulingContext MakeRandomTaskContext(int num_tasks, std::uint64_t seed,
                                               const InstanceCatalog& catalog) {
  Rng rng(seed);
  SchedulingContext context;
  context.catalog = &catalog;
  for (int i = 0; i < num_tasks; ++i) {
    const WorkloadId workload =
        static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
    const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
    TaskInfo task;
    task.id = i;
    task.job = i;
    task.workload = workload;
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    context.tasks.push_back(task);
  }
  context.Finalize();
  return context;
}

inline void PrintBenchHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n");
}

// Renders a run's end-of-run telemetry (counters/gauges/series from the
// registry protocol every engine publishes through) as a JSON object
// fragment, for embedding in a bench row under "telemetry".
inline std::string TelemetryJson(const SimulationMetrics& metrics) {
  TelemetryRegistry registry;
  PublishSimulationMetrics(metrics, &registry);
  return registry.ToJson();
}

// Machine-readable results, opted into with EVA_BENCH_JSON=<path>: each
// harness that supports it writes {"bench": ..., "cases": [...]} with
// wall-time and throughput per case, so the repo's perf trajectory can be
// recorded across commits (see BENCH_scheduler_perf.json). Every row
// carries "schema_version" (kBenchSchemaVersion); bump it when a row's
// layout changes incompatibly — check_bench_regression.py validates it.
class BenchJsonWriter {
 public:
  static constexpr int kSchemaVersion = 2;

  // The EVA_BENCH_JSON destination, or nullptr when JSON output is off.
  static const char* OutputPath() { return std::getenv("EVA_BENCH_JSON"); }

  void AddCase(const std::string& name, int jobs, double wall_seconds,
               std::int64_t events, double events_per_sec) {
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"schema_version\": %d, \"jobs\": %d, "
                  "\"wall_seconds\": %.6f, \"events\": " EVA_PRId64
                  ", \"events_per_sec\": %.1f}",
                  name.c_str(), kSchemaVersion, jobs, wall_seconds, events,
                  events_per_sec);
    cases_.emplace_back(buffer);
  }

  // Engine case plus the scheduler decision-path breakdown: rounds (split
  // into invoked vs. coalesced), total wall time inside the scheduler, the
  // per-round decision latency, process peak RSS / allocation count at the
  // end of the case (the scale sweep's memory-behavior tracking), and the
  // incremental fast path's pack/fallback/reconciliation counters (all zero
  // on exact-mode cases).
  // `telemetry`, when non-empty, is a ready-made JSON object (typically
  // TelemetryJson(metrics)) embedded under a "telemetry" key, giving the
  // row the full registry view alongside the flat gate columns.
  void AddCaseWithScheduler(const std::string& name, int jobs, double wall_seconds,
                            std::int64_t events, double events_per_sec,
                            std::int64_t rounds, std::int64_t rounds_coalesced,
                            double sched_wall_seconds, double sched_us_per_round,
                            double peak_rss_mb, std::uint64_t allocs,
                            const SchedulerCounters& counters,
                            const std::string& telemetry = std::string()) {
    char buffer[1024];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"schema_version\": %d, \"jobs\": %d, "
                  "\"wall_seconds\": %.6f, "
                  "\"events\": " EVA_PRId64 ", \"events_per_sec\": %.1f, "
                  "\"rounds\": " EVA_PRId64 ", "
                  "\"rounds_coalesced\": " EVA_PRId64 ", "
                  "\"sched_wall_seconds\": %.6f, \"sched_us_per_round\": %.2f, "
                  "\"peak_rss_mb\": %.1f, \"allocs\": " EVA_PRIu64 ", "
                  "\"packs_full\": %d, \"packs_incremental\": %d, "
                  "\"packs_escalated\": %d, \"reconciliations\": %d, "
                  "\"escalations\": %d, \"fallback_incomplete_delta\": %d, "
                  "\"fallback_oversized_delta\": %d, \"fallback_no_previous\": %d, "
                  "\"max_divergence_cost\": %.6f, \"max_divergence_edits\": %d, "
                  "\"max_kept_staleness\": %d",
                  name.c_str(), kSchemaVersion, jobs, wall_seconds, events,
                  events_per_sec, rounds, rounds_coalesced, sched_wall_seconds,
                  sched_us_per_round, peak_rss_mb, allocs, counters.packs_full,
                  counters.packs_incremental, counters.packs_escalated,
                  counters.reconciliations, counters.escalations,
                  counters.fallback_incomplete_delta, counters.fallback_oversized_delta,
                  counters.fallback_no_previous, counters.max_divergence_cost,
                  counters.max_divergence_edits, counters.max_kept_staleness);
    std::string line(buffer);
    if (!telemetry.empty()) {
      line += ", \"telemetry\": " + telemetry;
    }
    line += "}";
    cases_.push_back(std::move(line));
  }

  // Approximation-quality row: the same trace replayed in exact and
  // incremental mode, with the relative cost/JCT deltas the CI quality gate
  // checks (cost_delta may be negative when the approximation is cheaper).
  void AddQualityCase(const std::string& name, int jobs, double cost_exact,
                      double cost_incremental, double cost_delta, double jct_exact_hours,
                      double jct_incremental_hours, double jct_delta,
                      std::int64_t jobs_completed_exact,
                      std::int64_t jobs_completed_incremental) {
    char buffer[640];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"schema_version\": %d, \"jobs\": %d, "
                  "\"cost_exact\": %.4f, "
                  "\"cost_incremental\": %.4f, \"cost_delta\": %.6f, "
                  "\"jct_exact_hours\": %.6f, \"jct_incremental_hours\": %.6f, "
                  "\"jct_delta\": %.6f, \"jobs_completed_exact\": " EVA_PRId64
                  ", \"jobs_completed_incremental\": " EVA_PRId64 "}",
                  name.c_str(), kSchemaVersion, jobs, cost_exact, cost_incremental,
                  cost_delta, jct_exact_hours, jct_incremental_hours, jct_delta,
                  jobs_completed_exact, jobs_completed_incremental);
    cases_.emplace_back(buffer);
  }

  // Free-form case: `fields` is a ready-made JSON fragment appended after
  // the name (e.g. "\"cost\": 12.5, \"denied\": 3") — the escape hatch for
  // harnesses whose metrics do not fit the fixed schemas above
  // (bench_federation's per-tenant and provider-level rows).
  void AddCaseFields(const std::string& name, const std::string& fields) {
    std::string line = "    {\"name\": \"" + name + "\", \"schema_version\": " +
                       std::to_string(kSchemaVersion);
    if (!fields.empty()) {
      line += ", " + fields;
    }
    line += "}";
    cases_.push_back(std::move(line));
  }

  // Writes the collected cases; returns false (with a message) on I/O error.
  bool WriteTo(const char* path, const char* bench_name) const {
    FILE* file = std::fopen(path, "w");
    if (file == nullptr) {
      std::fprintf(stderr, "EVA_BENCH_JSON: cannot write %s\n", path);
      return false;
    }
    std::fprintf(file, "{\n  \"bench\": \"%s\",\n  \"cases\": [\n", bench_name);
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      std::fprintf(file, "%s%s\n", cases_[i].c_str(), i + 1 < cases_.size() ? "," : "");
    }
    std::fprintf(file, "  ]\n}\n");
    std::fclose(file);
    std::printf("wrote %s\n", path);
    return true;
  }

 private:
  std::vector<std::string> cases_;
};

}  // namespace eva

#endif  // BENCH_BENCH_UTIL_H_
