// Shared helpers for the table/figure reproduction harnesses.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>

#include "src/common/rng.h"
#include "src/sched/types.h"
#include "src/workload/workload.h"

namespace eva {

// A static packing problem: `num_tasks` single-task jobs sampled uniformly
// from the Table 7 workloads (the Table 4/5 micro-benchmark setup).
// `catalog` must outlive the returned context.
inline SchedulingContext MakeRandomTaskContext(int num_tasks, std::uint64_t seed,
                                               const InstanceCatalog& catalog) {
  Rng rng(seed);
  SchedulingContext context;
  context.catalog = &catalog;
  for (int i = 0; i < num_tasks; ++i) {
    const WorkloadId workload =
        static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
    const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
    TaskInfo task;
    task.id = i;
    task.job = i;
    task.workload = workload;
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    context.tasks.push_back(task);
  }
  context.Finalize();
  return context;
}

inline void PrintBenchHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace eva

#endif  // BENCH_BENCH_UTIL_H_
