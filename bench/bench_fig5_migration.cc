// Figure 5: impact of migration overhead.
//
// Scales every job's checkpoint+launch delay by {1, 2, 4, 8} and reports
// (a) the fraction of rounds adopting Full Reconfiguration and the
// migration count per job for Eva, and (b) normalized cost for Eva,
// Eva-with-Full-Reconfig-only, Stratus, and No-Packing. As migration gets
// expensive, Eva shifts toward Partial Reconfiguration while Full-only
// keeps paying the overhead.
//
// Scale with EVA_BENCH_SCALE (percent of 6,274 jobs; default 5%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("Impact of migration overhead", "Figure 5");

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(6274, 5);
  trace_options.seed = 2023;
  trace_options.max_duration_hours = 72.0;  // Bound single-job variance at reduced scale.
  const Trace trace = GenerateAlibabaTrace(trace_options);

  const double multipliers[] = {1.0, 2.0, 4.0, 8.0};
  std::printf("%-6s %14s %10s | %8s %10s %9s %8s\n", "Delay", "FullAdopted%", "Mig/Job",
              "Eva", "Eva(Full)", "Stratus", "NoPack");
  for (double mult : multipliers) {
    ExperimentOptions options;
    options.simulator.migration_delay_multiplier = mult;
    options.eva.migration_delay_multiplier = mult;
    const std::vector<ExperimentResult> results =
        RunComparison(trace,
                      {SchedulerKind::kNoPacking, SchedulerKind::kStratus, SchedulerKind::kEva,
                       SchedulerKind::kEvaFullOnly},
                      options);
    const ExperimentResult& eva = results[2];
    const double mig_per_job =
        eva.metrics.jobs_completed > 0
            ? static_cast<double>(eva.metrics.task_migrations) / eva.metrics.jobs_completed
            : 0.0;
    std::printf("%-6.0fx %13.1f%% %10.2f | %7.1f%% %9.1f%% %8.1f%% %7.1f%%\n", mult,
                eva.full_adoption_fraction * 100.0, mig_per_job,
                results[2].normalized_cost * 100.0, results[3].normalized_cost * 100.0,
                results[1].normalized_cost * 100.0, results[0].normalized_cost * 100.0);
  }
  std::printf("\nPaper: Full-Reconfig adoption and migrations/job fall as delays grow (5a);\n");
  std::printf("Full-only costs visibly more than the ensemble at high delays (5b).\n");
  return 0;
}
