#!/usr/bin/env python3
"""Fail when a bench_scheduler_perf case regresses against the committed baseline.

Usage:
    check_bench_regression.py <baseline.json> <current.json> <case-name> [<case-name>...]

Two gates per named case:

  * `events_per_sec` — fails when the current value falls more than the
    tolerance below the baseline's.
  * allocations per event (`allocs / events`) — fails when the current
    value rises more than the tolerance above the baseline's. Allocation
    counts come from the counting allocator in bench_alloc_hooks.cc and
    are deterministic modulo allocator-internal noise, so a >20% jump is a
    real leak of per-event work back onto the heap (the arena/SoA refactor
    is what the gate protects). Skipped with a note when either file
    predates the `allocs` field.

The tolerance is EVA_BENCH_TOLERANCE (default 0.20 = 20%, the margin CI
grants for runner variance). A case missing from either file is an error:
a silently dropped case must not read as a pass.

Cases listed in WARN_ONLY are compared and reported but never fail the
check — the observation period for newly added sweep cases before they earn
a gate.
"""

import json
import os
import sys

# Newly wired into the sweep (EvaOptions::incremental_packing); tracked but
# not yet gated — promote out of this set once a few baselines confirm the
# numbers are stable.
WARN_ONLY = {
    "alibaba10000_Eva-inc",
    "alibaba50000_Eva-inc",
    "alibaba100000_Eva-inc",
}


def load_cases(path):
    with open(path) as handle:
        payload = json.load(handle)
    return {case["name"]: case for case in payload.get("cases", [])}


def allocs_per_event(case):
    """allocs/event for a case, or None when the row predates the field."""
    allocs = case.get("allocs")
    events = case.get("events")
    if allocs is None or not events:
        return None
    return allocs / events


def main(argv):
    if len(argv) < 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    names = argv[3:]
    tolerance = float(os.environ.get("EVA_BENCH_TOLERANCE", "0.20"))

    baseline = load_cases(baseline_path)
    current = load_cases(current_path)

    failed = False
    for name in names:
        warn_only = name in WARN_ONLY
        missing_verdict = "WARN" if warn_only else "FAIL"
        if name not in baseline:
            print(f"{missing_verdict}: case '{name}' missing from baseline {baseline_path}")
            failed = failed or not warn_only
            continue
        if name not in current:
            print(f"{missing_verdict}: case '{name}' missing from current run {current_path}")
            failed = failed or not warn_only
            continue

        # Gate 1: throughput must not drop below (1 - tolerance) x baseline.
        base = baseline[name]["events_per_sec"]
        cur = current[name]["events_per_sec"]
        ratio = cur / base if base > 0 else float("inf")
        below = ratio < 1.0 - tolerance
        verdict = ("WARN" if warn_only else "FAIL") if below else "OK"
        print(
            f"{verdict}: {name}: events/sec {cur:,.0f} vs baseline {base:,.0f} "
            f"(ratio {ratio:.3f}, floor {1.0 - tolerance:.2f})"
        )
        failed = failed or verdict == "FAIL"

        # Gate 2: allocs/event must not rise above (1 + tolerance) x baseline.
        base_ape = allocs_per_event(baseline[name])
        cur_ape = allocs_per_event(current[name])
        if base_ape is None or cur_ape is None:
            print(f"NOTE: {name}: allocs/event not gated (field missing from a file)")
            continue
        if base_ape > 0:
            ape_ratio = cur_ape / base_ape
        else:
            ape_ratio = float("inf") if cur_ape > 0 else 1.0
        above = ape_ratio > 1.0 + tolerance
        verdict = ("WARN" if warn_only else "FAIL") if above else "OK"
        print(
            f"{verdict}: {name}: allocs/event {cur_ape:.4f} vs baseline {base_ape:.4f} "
            f"(ratio {ape_ratio:.3f}, ceiling {1.0 + tolerance:.2f})"
        )
        failed = failed or verdict == "FAIL"
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
