#!/usr/bin/env python3
"""Fail when a bench_scheduler_perf case regresses against the committed baseline.

Usage:
    check_bench_regression.py <baseline.json> <current.json> <case-name> [<case-name>...]
    check_bench_regression.py --selftest

Two gates per named engine case:

  * `events_per_sec` — fails when the current value falls more than the
    tolerance below the baseline's.
  * allocations per event (`allocs / events`) — fails when the current
    value rises more than the tolerance above the baseline's. Allocation
    counts come from the counting allocator in bench_alloc_hooks.cc and
    are deterministic modulo allocator-internal noise, so a >20% jump is a
    real leak of per-event work back onto the heap (the arena/SoA refactor
    is what the gate protects). Skipped with a note when either file
    predates the `allocs` field.

Cases named `quality_*` are approximation-quality rows (the incremental
fast path replayed against the exact mode on the same trace) and are gated
against fixed envelopes instead of the baseline file:

  * `cost_delta` <= EVA_QUALITY_COST_TOL (default 0.10): the incremental
    run's provisioning cost may not exceed exact by more than 10%.
  * `jct_delta` <= EVA_QUALITY_JCT_TOL (default 0.05): average JCT may not
    degrade by more than 5%.
  * `jobs_completed_incremental` must equal `jobs_completed_exact`: the
    approximation must not lose jobs.

Quality rows are judged on the current run alone — divergence is a property
of this commit, not a trajectory — so they need no baseline entry.

Cases named `fault_*` are fault-injection rows (the same trace replayed with
the deterministic fault model on) and are likewise judged on the current run
alone:

  * `jobs_completed` must equal `jobs_completed_fault_free`: faults destroy
    in-flight work and delay jobs, they must never lose one.
  * `goodput_ratio` >= EVA_FAULT_GOODPUT_FLOOR (default 0.50): recovery
    overhead (re-executed work after kills) may not eat more than half the
    executed compute under the default fault regime.

Independent of the named gates, every row in the *current* file must carry
`schema_version` == EXPECTED_SCHEMA_VERSION (baseline files are exempt —
committed baselines may predate the field and are not regenerated), and any
row embedding a `telemetry` object must match the registry export schema:
known groups only (counters/gauges/histograms/series), dot-namespaced
metric names, sorted within each group, no empty groups. A producer that
drifts from the registry's serialization contract fails here rather than
corrupting downstream tooling silently.

The perf tolerance is EVA_BENCH_TOLERANCE (default 0.20 = 20%, the margin
CI grants for runner variance). A case missing from either file is an
error: a silently dropped case must not read as a pass.

Cases listed in WARN_ONLY are compared and reported but never fail the
check — the observation period for newly added sweep cases before they earn
a gate. (Currently the 100-tenant federation sweep point.)

`--selftest` runs the gates against built-in fixtures that must fail (and
one that must pass) — the negative test CI runs so a broken gate cannot
silently wave regressions through.
"""

import json
import os
import sys

# fed100_scale is the 100-tenant federation sweep point, in its observation
# period: the events/sec there folds in thread-pool scheduling noise on
# shared CI runners, so it reports against BENCH_federation.json but cannot
# fail the job yet.
WARN_ONLY = {"fed100_scale"}

# Bench-row protocol version stamped by BenchJsonWriter::kSchemaVersion.
# Bump both together when the row layout changes.
EXPECTED_SCHEMA_VERSION = 2

# The registry export groups, in the order TelemetryRegistry::ToJson emits
# them. Empty groups are omitted from the export, never serialized as {}.
TELEMETRY_GROUPS = ("counters", "gauges", "histograms", "series")


def load_cases(path):
    with open(path) as handle:
        payload = json.load(handle)
    return {case["name"]: case for case in payload.get("cases", [])}


def allocs_per_event(case):
    """allocs/event for a case, or None when the row predates the field."""
    allocs = case.get("allocs")
    events = case.get("events")
    if allocs is None or not events:
        return None
    return allocs / events


def telemetry_schema_errors(telemetry):
    """Schema violations in an embedded registry export, [] when clean."""
    if not isinstance(telemetry, dict):
        return ["telemetry is not an object"]
    errors = []
    for group in telemetry:
        if group not in TELEMETRY_GROUPS:
            errors.append(f"unknown telemetry group '{group}'")
    for group in TELEMETRY_GROUPS:
        if group not in telemetry:
            continue
        metrics = telemetry[group]
        if not isinstance(metrics, dict):
            errors.append(f"telemetry group '{group}' is not an object")
            continue
        if not metrics:
            errors.append(f"telemetry group '{group}' is empty (must be omitted)")
        names = list(metrics)
        if names != sorted(names):
            errors.append(f"telemetry group '{group}' keys are not sorted")
        for metric in names:
            if "." not in metric:
                errors.append(
                    f"telemetry metric '{metric}' in '{group}' lacks a "
                    "dot namespace"
                )
        if group == "counters":
            for metric, value in metrics.items():
                if not isinstance(value, int) or value < 0:
                    errors.append(
                        f"counter '{metric}' is not a non-negative integer"
                    )
    return errors


def check_current_schema(current):
    """schema_version + telemetry schema for every current row. Returns failed."""
    failed = False
    for name in sorted(current):
        case = current[name]
        version = case.get("schema_version")
        if version != EXPECTED_SCHEMA_VERSION:
            print(
                f"FAIL: {name}: schema_version {version!r} "
                f"(expected {EXPECTED_SCHEMA_VERSION})"
            )
            failed = True
        if "telemetry" in case:
            errors = telemetry_schema_errors(case["telemetry"])
            for error in errors:
                print(f"FAIL: {name}: {error}")
            failed = failed or bool(errors)
    if not failed:
        print(
            f"OK: {len(current)} current rows at schema_version "
            f"{EXPECTED_SCHEMA_VERSION}, embedded telemetry well-formed"
        )
    return failed


def check_perf_case(name, base, cur, tolerance, warn_only):
    """Throughput + allocs/event gates for one engine case. Returns failed."""
    failed = False

    # Gate 1: throughput must not drop below (1 - tolerance) x baseline.
    base_eps = base["events_per_sec"]
    cur_eps = cur["events_per_sec"]
    ratio = cur_eps / base_eps if base_eps > 0 else float("inf")
    below = ratio < 1.0 - tolerance
    verdict = ("WARN" if warn_only else "FAIL") if below else "OK"
    print(
        f"{verdict}: {name}: events/sec {cur_eps:,.0f} vs baseline {base_eps:,.0f} "
        f"(ratio {ratio:.3f}, floor {1.0 - tolerance:.2f})"
    )
    failed = failed or verdict == "FAIL"

    # Gate 2: allocs/event must not rise above (1 + tolerance) x baseline.
    base_ape = allocs_per_event(base)
    cur_ape = allocs_per_event(cur)
    if base_ape is None or cur_ape is None:
        print(f"NOTE: {name}: allocs/event not gated (field missing from a file)")
        return failed
    if base_ape > 0:
        ape_ratio = cur_ape / base_ape
    else:
        ape_ratio = float("inf") if cur_ape > 0 else 1.0
    above = ape_ratio > 1.0 + tolerance
    verdict = ("WARN" if warn_only else "FAIL") if above else "OK"
    print(
        f"{verdict}: {name}: allocs/event {cur_ape:.4f} vs baseline {base_ape:.4f} "
        f"(ratio {ape_ratio:.3f}, ceiling {1.0 + tolerance:.2f})"
    )
    return failed or verdict == "FAIL"


def check_quality_case(name, cur, cost_tol, jct_tol, warn_only):
    """Approximation-quality envelope for one quality_* row. Returns failed."""
    fail_verdict = "WARN" if warn_only else "FAIL"
    failed = False

    cost_delta = cur["cost_delta"]
    verdict = fail_verdict if cost_delta > cost_tol else "OK"
    print(
        f"{verdict}: {name}: cost delta {cost_delta:+.4f} "
        f"(incremental {cur.get('cost_incremental', 0.0):,.2f} vs exact "
        f"{cur.get('cost_exact', 0.0):,.2f}, ceiling +{cost_tol:.2f})"
    )
    failed = failed or verdict == "FAIL"

    jct_delta = cur["jct_delta"]
    verdict = fail_verdict if jct_delta > jct_tol else "OK"
    print(
        f"{verdict}: {name}: JCT delta {jct_delta:+.4f} "
        f"(incremental {cur.get('jct_incremental_hours', 0.0):.4f}h vs exact "
        f"{cur.get('jct_exact_hours', 0.0):.4f}h, ceiling +{jct_tol:.2f})"
    )
    failed = failed or verdict == "FAIL"

    done_exact = cur.get("jobs_completed_exact")
    done_inc = cur.get("jobs_completed_incremental")
    if done_exact is not None or done_inc is not None:
        verdict = "OK" if done_exact == done_inc else fail_verdict
        print(
            f"{verdict}: {name}: jobs completed {done_inc} incremental vs "
            f"{done_exact} exact"
        )
        failed = failed or verdict == "FAIL"
    return failed


def check_fault_case(name, cur, goodput_floor, warn_only):
    """Lost-jobs + goodput gates for one fault_* row. Returns failed."""
    fail_verdict = "WARN" if warn_only else "FAIL"
    failed = False

    done = cur.get("jobs_completed")
    done_fault_free = cur.get("jobs_completed_fault_free")
    verdict = "OK" if done == done_fault_free else fail_verdict
    print(
        f"{verdict}: {name}: jobs completed {done} under faults vs "
        f"{done_fault_free} fault-free"
    )
    failed = failed or verdict == "FAIL"

    goodput = cur["goodput_ratio"]
    verdict = fail_verdict if goodput < goodput_floor else "OK"
    print(
        f"{verdict}: {name}: goodput {goodput:.4f} "
        f"(lost work {cur.get('lost_work_hours', 0.0):.2f}h over "
        f"{cur.get('tasks_lost', 0)} tasks, floor {goodput_floor:.2f})"
    )
    return failed or verdict == "FAIL"


def run_checks(baseline, current, names, tolerance, cost_tol, jct_tol,
               goodput_floor=0.50):
    failed = check_current_schema(current)
    for name in names:
        warn_only = name in WARN_ONLY
        missing_verdict = "WARN" if warn_only else "FAIL"
        if name not in current:
            print(f"{missing_verdict}: case '{name}' missing from current run")
            failed = failed or not warn_only
            continue
        if name.startswith("quality_"):
            failed |= check_quality_case(name, current[name], cost_tol, jct_tol, warn_only)
            continue
        if name.startswith("fault_"):
            failed |= check_fault_case(name, current[name], goodput_floor, warn_only)
            continue
        if name not in baseline:
            print(f"{missing_verdict}: case '{name}' missing from baseline")
            failed = failed or not warn_only
            continue
        failed |= check_perf_case(name, baseline[name], current[name], tolerance, warn_only)
    return failed


def selftest():
    """The gates must fire on known-bad fixtures and stay green on good ones."""
    good_perf = {
        "name": "c",
        "schema_version": EXPECTED_SCHEMA_VERSION,
        "events_per_sec": 1000.0,
        "events": 1000,
        "allocs": 50,
    }
    slow_perf = dict(good_perf, events_per_sec=700.0)
    leaky_perf = dict(good_perf, allocs=500)
    good_quality = {
        "name": "quality_c",
        "schema_version": EXPECTED_SCHEMA_VERSION,
        "cost_delta": 0.05,
        "jct_delta": -0.01,
        "jobs_completed_exact": 10,
        "jobs_completed_incremental": 10,
    }
    good_fault = {
        "name": "fault_c",
        "schema_version": EXPECTED_SCHEMA_VERSION,
        "jobs_completed": 10,
        "jobs_completed_fault_free": 10,
        "goodput_ratio": 0.85,
        "lost_work_hours": 12.5,
        "tasks_lost": 4,
    }
    good_telemetry = {
        "counters": {"sim.events_processed": 1000, "sim.jobs_completed": 10},
        "gauges": {"sim.total_cost": 12.5},
    }

    def variant(base, **overrides):
        """Copy of `base` with overrides applied; a None value deletes the key."""
        case = dict(base)
        for key, value in overrides.items():
            if value is None:
                case.pop(key, None)
            else:
                case[key] = value
        return case

    scenarios = [
        # (description, baseline case, current case, names, must_fail)
        ("all gates green", good_perf, good_perf, ["c", "quality_c"], False),
        ("events/sec drop", good_perf, slow_perf, ["c"], True),
        ("allocs/event jump", good_perf, leaky_perf, ["c"], True),
        ("missing current case", good_perf, None, ["c"], True),
        ("cost delta over ceiling", None, variant(good_quality, cost_delta=0.25),
         ["quality_c"], True),
        ("jct delta over ceiling", None, variant(good_quality, jct_delta=0.10),
         ["quality_c"], True),
        ("lost jobs", None, variant(good_quality, jobs_completed_incremental=9),
         ["quality_c"], True),
        ("fault gates green", None, good_fault, ["fault_c"], False),
        ("fault lost jobs", None, variant(good_fault, jobs_completed=9),
         ["fault_c"], True),
        ("goodput below floor", None, variant(good_fault, goodput_ratio=0.30),
         ["fault_c"], True),
        ("missing schema_version", good_perf,
         variant(good_perf, schema_version=None), ["c"], True),
        ("stale schema_version", good_perf,
         variant(good_perf, schema_version=EXPECTED_SCHEMA_VERSION - 1),
         ["c"], True),
        ("well-formed telemetry", good_perf,
         variant(good_perf, telemetry=good_telemetry), ["c"], False),
        ("telemetry unknown group", good_perf,
         variant(good_perf, telemetry={"totals": {"sim.events": 1}}),
         ["c"], True),
        ("telemetry unsorted keys", good_perf,
         variant(good_perf, telemetry={
             "counters": {"sim.jobs_completed": 10, "sim.events_processed": 1000},
         }), ["c"], True),
        ("telemetry empty group", good_perf,
         variant(good_perf, telemetry={"counters": {}}), ["c"], True),
        ("telemetry non-namespaced metric", good_perf,
         variant(good_perf, telemetry={"gauges": {"cost": 1.0}}), ["c"], True),
    ]
    broken = False
    for description, base_case, cur_case, names, must_fail in scenarios:
        baseline = {"c": base_case} if base_case else {}
        current = {}
        if cur_case is not None:
            current[cur_case["name"]] = cur_case
        if "quality_c" in names and "quality_c" not in current:
            current["quality_c"] = good_quality
        if "c" in names and cur_case is None:
            pass  # "missing current case" scenario.
        elif "c" in names and "c" not in current:
            current["c"] = cur_case
        failed = run_checks(baseline, current, names, 0.20, 0.10, 0.05)
        ok = failed == must_fail
        print(f"{'PASS' if ok else 'BROKEN'}: selftest '{description}' "
              f"(expected {'failure' if must_fail else 'success'})")
        broken = broken or not ok
    return 1 if broken else 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--selftest":
        return selftest()
    if len(argv) < 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    names = argv[3:]
    tolerance = float(os.environ.get("EVA_BENCH_TOLERANCE", "0.20"))
    cost_tol = float(os.environ.get("EVA_QUALITY_COST_TOL", "0.10"))
    jct_tol = float(os.environ.get("EVA_QUALITY_JCT_TOL", "0.05"))
    goodput_floor = float(os.environ.get("EVA_FAULT_GOODPUT_FLOOR", "0.50"))

    baseline = load_cases(baseline_path)
    current = load_cases(current_path)
    failed = run_checks(baseline, current, names, tolerance, cost_tol, jct_tol,
                        goodput_floor)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
