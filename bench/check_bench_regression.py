#!/usr/bin/env python3
"""Fail when a bench_scheduler_perf case regresses against the committed baseline.

Usage:
    check_bench_regression.py <baseline.json> <current.json> <case-name> [<case-name>...]

Compares `events_per_sec` of each named case. Exits non-zero when the
current value falls more than the tolerance below the baseline's
(EVA_BENCH_TOLERANCE, default 0.20 = 20%, the margin CI grants for runner
variance). A case missing from either file is an error: a silently dropped
case must not read as a pass.

Cases listed in WARN_ONLY are compared and reported but never fail the
check — the observation period for newly added sweep cases before they earn
a gate.
"""

import json
import os
import sys

# Newly wired into the sweep (EvaOptions::incremental_packing); tracked but
# not yet gated — promote out of this set once a few baselines confirm the
# numbers are stable.
WARN_ONLY = {
    "alibaba10000_Eva-inc",
    "alibaba50000_Eva-inc",
}


def load_cases(path):
    with open(path) as handle:
        payload = json.load(handle)
    return {case["name"]: case for case in payload.get("cases", [])}


def main(argv):
    if len(argv) < 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    names = argv[3:]
    tolerance = float(os.environ.get("EVA_BENCH_TOLERANCE", "0.20"))

    baseline = load_cases(baseline_path)
    current = load_cases(current_path)

    failed = False
    for name in names:
        warn_only = name in WARN_ONLY
        missing_verdict = "WARN" if warn_only else "FAIL"
        if name not in baseline:
            print(f"{missing_verdict}: case '{name}' missing from baseline {baseline_path}")
            failed = failed or not warn_only
            continue
        if name not in current:
            print(f"{missing_verdict}: case '{name}' missing from current run {current_path}")
            failed = failed or not warn_only
            continue
        base = baseline[name]["events_per_sec"]
        cur = current[name]["events_per_sec"]
        ratio = cur / base if base > 0 else float("inf")
        below = ratio < 1.0 - tolerance
        verdict = ("WARN" if warn_only else "FAIL") if below else "OK"
        print(
            f"{verdict}: {name}: events/sec {cur:,.0f} vs baseline {base:,.0f} "
            f"(ratio {ratio:.3f}, floor {1.0 - tolerance:.2f})"
        )
        failed = failed or verdict == "FAIL"
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
