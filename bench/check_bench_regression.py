#!/usr/bin/env python3
"""Fail when a bench_scheduler_perf case regresses against the committed baseline.

Usage:
    check_bench_regression.py <baseline.json> <current.json> <case-name> [<case-name>...]

Compares `events_per_sec` of each named case. Exits non-zero when the
current value falls more than the tolerance below the baseline's
(EVA_BENCH_TOLERANCE, default 0.20 = 20%, the margin CI grants for runner
variance). A case missing from either file is an error: a silently dropped
case must not read as a pass.
"""

import json
import os
import sys


def load_cases(path):
    with open(path) as handle:
        payload = json.load(handle)
    return {case["name"]: case for case in payload.get("cases", [])}


def main(argv):
    if len(argv) < 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    names = argv[3:]
    tolerance = float(os.environ.get("EVA_BENCH_TOLERANCE", "0.20"))

    baseline = load_cases(baseline_path)
    current = load_cases(current_path)

    failed = False
    for name in names:
        if name not in baseline:
            print(f"FAIL: case '{name}' missing from baseline {baseline_path}")
            failed = True
            continue
        if name not in current:
            print(f"FAIL: case '{name}' missing from current run {current_path}")
            failed = True
            continue
        base = baseline[name]["events_per_sec"]
        cur = current[name]["events_per_sec"]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "OK" if ratio >= 1.0 - tolerance else "FAIL"
        print(
            f"{verdict}: {name}: events/sec {cur:,.0f} vs baseline {base:,.0f} "
            f"(ratio {ratio:.3f}, floor {1.0 - tolerance:.2f})"
        )
        failed = failed or verdict == "FAIL"
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
