// Multi-tenant federation harness, two parts:
//
// 1. Market regimes — three Eva tenants (ScaleTrace shards of the 2,000-job
//    Alibaba-like trace) provisioning from one shared cloud provider:
//
//      * open        — unlimited capacity, on-demand only (the idealized
//                      cloud every earlier experiment assumed);
//      * capped      — finite per-family pools, on-demand only: acquisition
//                      denials throttle the tenants;
//      * capped-spot — finite pools plus the spot tier: tenants mix
//                      preemptible discounted capacity and eat two-minute
//                      preemptions.
//
// 2. Tenant-scaling sweep — 10/100/500 tenants (1000 at full
//    EVA_BENCH_SCALE) through the sharded parallel driver, each point run
//    at 1 thread and at the hardware pool. Reports events/sec, the
//    1→N-thread scaling ratio, the serialized share of the round phase,
//    and the shard-derivation setup wall — the numbers behind the
//    near-linear-scaling claim. Per-tenant metrics are bit-identical
//    across both pool sizes (cross-checked here every run).
//
// Reports per-tenant cost / spot share / JCT / denial / preemption counts
// (capped; large fleets aggregate to min/median/p95/max rows) and the
// provider-level utilization table. EVA_BENCH_JSON writes the same rows
// machine-readably; EVA_BENCH_SCALE scales the per-tenant job counts.
// Not a paper table: this is the scenario platform the provider-market
// subsystem opens up.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/format.h"
#include "src/common/stats.h"
#include "src/obs/publish.h"
#include "src/obs/registry.h"
#include "src/common/thread_pool.h"
#include "src/sim/federation.h"
#include "src/workload/trace_gen.h"

namespace {

using namespace eva;

// Per-tenant JSON rows beyond this fold into the `_agg` aggregate row; a
// 500-tenant sweep point must not emit 500 rows of noise.
constexpr std::size_t kMaxTenantJsonRows = 8;

Trace MakeBaseTrace() {
  AlibabaTraceOptions base_options;
  base_options.num_jobs = 2000;
  base_options.seed = 17;
  base_options.max_duration_hours = 48.0;
  return GenerateAlibabaTrace(base_options);
}

double WallSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::int64_t TotalEvents(const FederationResult& result) {
  std::int64_t events = 0;
  for (const FederationResult::Tenant& tenant : result.tenants) {
    events += tenant.metrics.events_processed;
  }
  return events;
}

// Cross-tenant distribution row: the per-tenant table compressed to
// min/median/p95/max, which is all a 100+-tenant fleet's story needs.
void EmitTenantAggregates(BenchJsonWriter& json, const std::string& name,
                          const FederationResult& result) {
  std::vector<double> cost;
  std::vector<double> jct;
  std::int64_t denied = 0;
  std::int64_t preempted = 0;
  std::int64_t completed = 0;
  for (const FederationResult::Tenant& tenant : result.tenants) {
    cost.push_back(tenant.metrics.total_cost);
    jct.push_back(tenant.metrics.avg_jct_hours);
    denied += tenant.metrics.acquisitions_denied;
    preempted += tenant.metrics.spot_preemptions;
    completed += tenant.metrics.jobs_completed;
  }
  char fields[640];
  std::snprintf(
      fields, sizeof(fields),
      "\"tenants\": %zu, \"cost_min\": %.4f, \"cost_median\": %.4f, "
      "\"cost_p95\": %.4f, \"cost_max\": %.4f, \"jct_min_hours\": %.6f, "
      "\"jct_median_hours\": %.6f, \"jct_p95_hours\": %.6f, "
      "\"jct_max_hours\": %.6f, \"denied\": " EVA_PRId64 ", \"preempted\": " EVA_PRId64
      ", \"jobs_completed\": " EVA_PRId64,
      result.tenants.size(), *std::min_element(cost.begin(), cost.end()),
      Quantile(cost, 0.5), Quantile(cost, 0.95),
      *std::max_element(cost.begin(), cost.end()),
      *std::min_element(jct.begin(), jct.end()), Quantile(jct, 0.5),
      Quantile(jct, 0.95), *std::max_element(jct.begin(), jct.end()),
      denied, preempted, completed);
  json.AddCaseFields(name + "_agg", fields);
}

// Fault-ledger row, emitted only when a scenario injected anything: kill /
// drain / loss tallies summed across tenants, the goodput distribution, and
// the provider-side clamp denials.
void EmitFaultRow(BenchJsonWriter& json, const std::string& name,
                  const FederationResult& result) {
  FaultStats sum;
  std::vector<double> goodput;
  std::vector<double> p95;
  for (const FederationResult::Tenant& tenant : result.tenants) {
    const FaultStats& f = tenant.metrics.faults;
    sum.zone_outages += f.zone_outages;
    sum.correlated_failures += f.correlated_failures;
    sum.maintenance_drains += f.maintenance_drains;
    sum.instances_killed += f.instances_killed;
    sum.instances_drained += f.instances_drained;
    sum.tasks_evicted += f.tasks_evicted;
    sum.tasks_lost += f.tasks_lost;
    sum.lost_work_seconds += f.lost_work_seconds;
    sum.replacements_completed += f.replacements_completed;
    goodput.push_back(f.goodput_ratio);
    if (f.replacements_completed > 0) {
      p95.push_back(f.replacement_latency_p95_s);
    }
  }
  if (sum.zone_outages + sum.correlated_failures + sum.maintenance_drains == 0) {
    return;
  }
  std::int64_t fault_denied = 0;
  for (const CloudProviderMetrics::Family& family : result.provider.families) {
    fault_denied += family.fault_denied;
  }
  char fields[640];
  std::snprintf(
      fields, sizeof(fields),
      "\"zone_outages\": " EVA_PRId64 ", \"correlated_failures\": " EVA_PRId64 ", "
      "\"maintenance_drains\": " EVA_PRId64 ", \"instances_killed\": " EVA_PRId64 ", "
      "\"instances_drained\": " EVA_PRId64 ", \"tasks_evicted\": " EVA_PRId64 ", "
      "\"tasks_lost\": " EVA_PRId64 ", \"lost_work_hours\": %.4f, "
      "\"replacements\": " EVA_PRId64 ", \"replace_p95_s_median\": %.2f, "
      "\"goodput_min\": %.6f, \"goodput_median\": %.6f, \"fault_denied\": " EVA_PRId64,
      sum.zone_outages, sum.correlated_failures, sum.maintenance_drains,
      sum.instances_killed, sum.instances_drained, sum.tasks_evicted,
      sum.tasks_lost, SecondsToHours(sum.lost_work_seconds),
      sum.replacements_completed, p95.empty() ? 0.0 : Quantile(p95, 0.5),
      *std::min_element(goodput.begin(), goodput.end()), Quantile(goodput, 0.5),
      fault_denied);
  json.AddCaseFields(name + "_faults", fields);
}

void EmitProviderRow(BenchJsonWriter& json, const std::string& name,
                     const FederationResult& result, double wall) {
  const std::int64_t events = TotalEvents(result);
  char fields[640];
  std::snprintf(
      fields, sizeof(fields),
      "\"wall_seconds\": %.6f, \"events\": " EVA_PRId64 ", \"events_per_sec\": %.1f, "
      "\"granted\": " EVA_PRId64 ", \"denied\": " EVA_PRId64
      ", \"preempted\": " EVA_PRId64 ", "
      "\"barriers\": " EVA_PRId64 ", \"round_groups\": " EVA_PRId64
      ", \"serial_share\": %.4f, "
      "\"setup_wall_s\": %.6f, \"advance_wall_s\": %.6f, "
      "\"round_wall_s\": %.6f",
      wall, events, wall > 0.0 ? static_cast<double>(events) / wall : 0.0,
      result.provider.TotalGranted(), result.provider.TotalDenied(),
      result.provider.TotalPreempted(), result.stats.barriers,
      result.stats.round_groups, result.stats.SerialShare(),
      result.stats.setup_wall_s, result.stats.advance_wall_s,
      result.stats.round_wall_s);
  // Driver-level stats again through the shared registry protocol, so the
  // row's "telemetry" object matches what any registry consumer would see.
  TelemetryRegistry registry;
  PublishFederationStats(result.stats, &registry);
  json.AddCaseFields(name + "_provider",
                     std::string(fields) + ", \"telemetry\": " + registry.ToJson());
}

void RunScenario(BenchJsonWriter& json, const std::string& name,
                 const std::vector<FederationTenant>& tenants,
                 const FederationOptions& options) {
  std::printf("\n--- scenario: %s ---\n", name.c_str());
  const auto start = std::chrono::steady_clock::now();
  const FederationResult result = RunFederation(tenants, options);
  const double wall = WallSince(start);
  PrintFederationReport(result);

  const std::int64_t events = TotalEvents(result);
  std::printf("wall %.3fs, " EVA_PRId64 " events (%.0f events/sec, all tenants)\n",
              wall, events, wall > 0.0 ? static_cast<double>(events) / wall : 0.0);

  char fields[512];
  for (std::size_t i = 0;
       i < result.tenants.size() && i < kMaxTenantJsonRows; ++i) {
    const FederationResult::Tenant& tenant = result.tenants[i];
    const SimulationMetrics& m = tenant.metrics;
    std::snprintf(fields, sizeof(fields),
                  "\"jobs\": " EVA_PRId64 ", \"cost\": %.4f, \"spot_cost\": %.4f, "
                  "\"avg_jct_hours\": %.6f, \"denied\": " EVA_PRId64
                  ", \"preemptions\": " EVA_PRId64 ", "
                  "\"spot_instances\": " EVA_PRId64 ", \"makespan_s\": %.1f",
                  m.jobs_submitted, m.total_cost, m.spot_cost, m.avg_jct_hours,
                  m.acquisitions_denied, m.spot_preemptions,
                  m.spot_instances_launched, m.makespan_s);
    json.AddCaseFields(name + "_" + tenant.name, fields);
  }
  EmitTenantAggregates(json, name, result);
  EmitFaultRow(json, name, result);
  EmitProviderRow(json, name, result, wall);
}

// One tenant-scaling point: derive the shards (timed — the setup-wall
// satellite), then run the identical federation once serially and once on
// the hardware pool. The two runs must agree bit-for-bit; the wall-clock
// ratio is the thread-scaling headline.
void RunSweepPoint(BenchJsonWriter& json, const Trace& base, int num_tenants,
                   int jobs_per_tenant) {
  const std::string name = "fed" + std::to_string(num_tenants);
  std::printf("\n--- sweep: %d tenants x %d jobs ---\n", num_tenants,
              jobs_per_tenant);

  const auto setup_start = std::chrono::steady_clock::now();
  const std::vector<FederationTenant> tenants =
      MakeTenantShards(base, num_tenants, jobs_per_tenant);
  const double shard_wall = WallSince(setup_start);

  FederationOptions options;
  options.provider.enabled = true;
  // Pools that stay scarce as the fleet grows: shard capacity tracks the
  // tenant count so denials and cross-tenant contention survive the sweep.
  options.provider.family_capacity = {std::max(4, num_tenants / 5),
                                      std::max(10, num_tenants / 2),
                                      std::max(6, num_tenants / 3)};
  options.provider.spot.enabled = true;
  options.provider.spot.seed = 4242;
  options.provider.spot.spike_probability = 0.06;
  options.simulator.seed = 5;
  options.stagger_rounds = true;  // Spread barriers; shrinks the serial residue.

  options.num_threads = 1;
  auto start = std::chrono::steady_clock::now();
  const FederationResult serial = RunFederation(tenants, options);
  const double wall_serial = WallSince(start);

  const int hardware_threads = ThreadPool::DefaultThreads();
  options.num_threads = hardware_threads;
  start = std::chrono::steady_clock::now();
  const FederationResult result = RunFederation(tenants, options);
  const double wall_pooled = WallSince(start);

  // The determinism contract, enforced on every bench run: pool size must
  // not leak into any simulated quantity.
  double divergence = 0.0;
  for (std::size_t i = 0; i < result.tenants.size(); ++i) {
    divergence +=
        std::abs(result.tenants[i].metrics.total_cost -
                 serial.tenants[i].metrics.total_cost) +
        std::abs(static_cast<double>(result.tenants[i].metrics.events_processed -
                                     serial.tenants[i].metrics.events_processed));
  }
  if (divergence != 0.0) {
    std::printf("ERROR: pool-size divergence detected (%.6f) — "
                "determinism contract broken\n", divergence);
  }

  PrintFederationReport(result);

  const std::int64_t events = TotalEvents(result);
  const double eps_serial =
      wall_serial > 0.0 ? static_cast<double>(events) / wall_serial : 0.0;
  const double eps_pooled =
      wall_pooled > 0.0 ? static_cast<double>(events) / wall_pooled : 0.0;
  const double scaling = wall_pooled > 0.0 ? wall_serial / wall_pooled : 0.0;
  std::printf("shard setup %.3fs; 1 thread: %.3fs (%.0f ev/s); %d threads: "
              "%.3fs (%.0f ev/s); scaling %.2fx; serial share %.3f\n",
              shard_wall, wall_serial, eps_serial, hardware_threads,
              wall_pooled, eps_pooled, scaling, result.stats.SerialShare());

  char fields[640];
  std::snprintf(
      fields, sizeof(fields),
      "\"tenants\": %d, \"jobs_per_tenant\": %d, \"events\": " EVA_PRId64 ", "
      "\"events_per_sec\": %.1f, \"events_per_sec_1thread\": %.1f, "
      "\"wall_seconds\": %.6f, \"wall_seconds_1thread\": %.6f, "
      "\"thread_scaling_x\": %.4f, \"num_threads\": %d, "
      "\"serial_share\": %.4f, \"shard_setup_s\": %.6f, "
      "\"barriers\": " EVA_PRId64 ", \"round_groups\": " EVA_PRId64 ", "
      "\"bit_identical\": %s",
      num_tenants, jobs_per_tenant, events, eps_pooled,
      eps_serial, wall_pooled, wall_serial, scaling, hardware_threads,
      result.stats.SerialShare(), shard_wall, result.stats.barriers,
      result.stats.round_groups, divergence == 0.0 ? "true" : "false");
  json.AddCaseFields(name + "_scale", fields);
  EmitTenantAggregates(json, name, result);
}

}  // namespace

int main() {
  PrintBenchHeader("Multi-tenant federation: shared provider, finite capacity, spot",
                   "provider-market subsystem; not a paper table");

  const int jobs_per_tenant = ScaledJobCount(666);
  const std::vector<FederationTenant> tenants =
      MakeTenantShards(MakeBaseTrace(), /*num_tenants=*/3, jobs_per_tenant);
  std::printf("3 tenants x %d jobs (ScaleTrace shards of alibaba2000)\n", jobs_per_tenant);

  BenchJsonWriter json;

  FederationOptions open;
  open.provider.enabled = true;  // Pass-through: unlimited, on-demand only.
  open.simulator.seed = 5;
  RunScenario(json, "open", tenants, open);

  FederationOptions capped = open;
  // Pools sized to bind under three contending tenants: the shards together
  // sustain a few dozen concurrent CPU jobs and a handful of GPU jobs.
  capped.provider.family_capacity = {4, 10, 6};
  RunScenario(json, "capped", tenants, capped);

  FederationOptions capped_spot = capped;
  capped_spot.provider.spot.enabled = true;
  capped_spot.provider.spot.seed = 4242;
  capped_spot.provider.spot.spike_probability = 0.06;
  RunScenario(json, "capped-spot", tenants, capped_spot);

  // Everything at once: finite pools, the spot market, and the fault model
  // — zone outages clamp the shared pools, correlated bursts and drains
  // churn placements. The hostile regime the recovery accounting is for.
  FederationOptions faults = capped_spot;
  faults.simulator.faults.enabled = true;
  faults.simulator.faults.seed = 97;
  RunScenario(json, "faults", tenants, faults);

  // Tenant-scaling sweep through the sharded parallel driver. Job counts
  // shrink with the fleet so each point stays a comparable total volume;
  // the 1000-tenant point only runs at full EVA_BENCH_SCALE.
  const Trace base = MakeBaseTrace();
  RunSweepPoint(json, base, /*num_tenants=*/10, ScaledJobCount(100));
  RunSweepPoint(json, base, /*num_tenants=*/100, ScaledJobCount(40));
  RunSweepPoint(json, base, /*num_tenants=*/500, ScaledJobCount(12));
  if (ScaledJobCount(100) >= 100) {
    RunSweepPoint(json, base, /*num_tenants=*/1000, ScaledJobCount(8));
  }

  if (const char* path = BenchJsonWriter::OutputPath()) {
    return json.WriteTo(path, "federation") ? 0 : 1;
  }
  return 0;
}
