// Multi-tenant federation harness: three Eva tenants (ScaleTrace shards of
// the 2,000-job Alibaba-like trace) provisioning from one shared cloud
// provider, in three market regimes:
//
//   * open        — unlimited capacity, on-demand only (the idealized cloud
//                   every earlier experiment assumed; contention baseline);
//   * capped      — finite per-family pools, on-demand only: acquisition
//                   denials throttle the tenants;
//   * capped-spot — finite pools plus the spot tier: tenants mix preemptible
//                   discounted capacity and eat two-minute preemptions.
//
// Reports per-tenant cost / spot share / JCT / denial / preemption counts
// and the provider-level utilization table. EVA_BENCH_JSON writes the same
// rows machine-readably; EVA_BENCH_SCALE scales the per-tenant job counts.
// Not a paper table: this is the scenario platform the provider-market
// subsystem opens up.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/federation.h"
#include "src/workload/trace_gen.h"

namespace {

using namespace eva;

std::vector<FederationTenant> MakeTenants(int jobs_per_tenant) {
  AlibabaTraceOptions base_options;
  base_options.num_jobs = 2000;
  base_options.seed = 17;
  base_options.max_duration_hours = 48.0;
  return MakeTenantShards(GenerateAlibabaTrace(base_options), /*num_tenants=*/3,
                          jobs_per_tenant);
}

void RunScenario(BenchJsonWriter& json, const std::string& name,
                 const std::vector<FederationTenant>& tenants,
                 const FederationOptions& options) {
  std::printf("\n--- scenario: %s ---\n", name.c_str());
  const auto start = std::chrono::steady_clock::now();
  const FederationResult result = RunFederation(tenants, options);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  PrintFederationReport(result);

  std::int64_t events = 0;
  for (const FederationResult::Tenant& tenant : result.tenants) {
    events += tenant.metrics.events_processed;
  }
  std::printf("wall %.3fs, %lld events (%.0f events/sec, all tenants)\n", wall,
              static_cast<long long>(events),
              wall > 0.0 ? static_cast<double>(events) / wall : 0.0);

  char fields[512];
  for (const FederationResult::Tenant& tenant : result.tenants) {
    const SimulationMetrics& m = tenant.metrics;
    std::snprintf(fields, sizeof(fields),
                  "\"jobs\": %d, \"cost\": %.4f, \"spot_cost\": %.4f, "
                  "\"avg_jct_hours\": %.6f, \"denied\": %d, \"preemptions\": %d, "
                  "\"spot_instances\": %d, \"makespan_s\": %.1f",
                  m.jobs_submitted, m.total_cost, m.spot_cost, m.avg_jct_hours,
                  m.acquisitions_denied, m.spot_preemptions, m.spot_instances_launched,
                  m.makespan_s);
    json.AddCaseFields(name + "_" + tenant.name, fields);
  }
  std::snprintf(fields, sizeof(fields),
                "\"wall_seconds\": %.6f, \"events\": %lld, \"events_per_sec\": %.1f, "
                "\"granted\": %lld, \"denied\": %lld, \"preempted\": %lld",
                wall, static_cast<long long>(events),
                wall > 0.0 ? static_cast<double>(events) / wall : 0.0,
                static_cast<long long>(result.provider.TotalGranted()),
                static_cast<long long>(result.provider.TotalDenied()),
                static_cast<long long>(result.provider.TotalPreempted()));
  json.AddCaseFields(name + "_provider", fields);
}

}  // namespace

int main() {
  PrintBenchHeader("Multi-tenant federation: shared provider, finite capacity, spot",
                   "provider-market subsystem; not a paper table");

  const int jobs_per_tenant = ScaledJobCount(666);
  const std::vector<FederationTenant> tenants = MakeTenants(jobs_per_tenant);
  std::printf("3 tenants x %d jobs (ScaleTrace shards of alibaba2000)\n", jobs_per_tenant);

  BenchJsonWriter json;

  FederationOptions open;
  open.provider.enabled = true;  // Pass-through: unlimited, on-demand only.
  open.simulator.seed = 5;
  RunScenario(json, "open", tenants, open);

  FederationOptions capped = open;
  // Pools sized to bind under three contending tenants: the shards together
  // sustain a few dozen concurrent CPU jobs and a handful of GPU jobs.
  capped.provider.family_capacity = {4, 10, 6};
  RunScenario(json, "capped", tenants, capped);

  FederationOptions capped_spot = capped;
  capped_spot.provider.spot.enabled = true;
  capped_spot.provider.spot.seed = 4242;
  capped_spot.provider.spot.spike_probability = 0.06;
  RunScenario(json, "capped-spot", tenants, capped_spot);

  if (const char* path = BenchJsonWriter::OutputPath()) {
    return json.WriteTo(path, "federation") ? 0 : 1;
  }
  return 0;
}
