// google-benchmark micro-benchmarks of the scheduler internals: reservation
// price computation, Algorithm 1 packing, the config differ, the throughput
// table, and the B&B solver on small instances.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/full_reconfig.h"
#include "src/core/partial_reconfig.h"
#include "src/sched/config_diff.h"
#include "src/sched/throughput_estimator.h"
#include "src/sim/experiment.h"
#include "src/solver/bnb_solver.h"
#include "src/workload/trace_gen.h"

namespace {

using namespace eva;

const InstanceCatalog& Catalog() {
  static const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  return catalog;
}

void BM_ReservationPrice(benchmark::State& state) {
  const SchedulingContext context = MakeRandomTaskContext(64, 1, Catalog());
  for (auto _ : state) {
    const TnrpCalculator calculator(context, {});
    Money total = 0.0;
    for (const TaskInfo& task : context.tasks) {
      total += calculator.ReservationPrice(task);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ReservationPrice);

void BM_FullReconfiguration(benchmark::State& state) {
  const SchedulingContext context =
      MakeRandomTaskContext(static_cast<int>(state.range(0)), 1, Catalog());
  const TnrpCalculator calculator(context, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(FullReconfiguration(context, calculator));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReconfiguration)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_PartialReconfigurationQuiescent(benchmark::State& state) {
  // A cluster already packed by Full Reconfiguration: Partial should be
  // near-free because every instance stays cost-efficient.
  SchedulingContext context = MakeRandomTaskContext(200, 1, Catalog());
  const TnrpCalculator calculator(context, {});
  const ClusterConfig packed = FullReconfiguration(context, calculator);
  InstanceId next_id = 0;
  for (const ConfigInstance& instance : packed.instances) {
    InstanceInfo info;
    info.id = next_id++;
    info.type_index = instance.type_index;
    info.tasks = instance.tasks;
    for (TaskId task : instance.tasks) {
      for (TaskInfo& task_info : context.tasks) {
        if (task_info.id == task) {
          task_info.current_instance = info.id;
        }
      }
    }
    context.instances.push_back(std::move(info));
  }
  context.Finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartialReconfiguration(context, calculator));
  }
}
BENCHMARK(BM_PartialReconfigurationQuiescent);

void BM_ConfigDiff(benchmark::State& state) {
  const SchedulingContext context = MakeRandomTaskContext(200, 1, Catalog());
  const TnrpCalculator calculator(context, {});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiffConfig(context, config));
  }
}
BENCHMARK(BM_ConfigDiff);

void BM_ThroughputTableEstimate(benchmark::State& state) {
  ThroughputTable table(0.95);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const WorkloadId a = static_cast<WorkloadId>(rng.UniformInt(0, 9));
    const WorkloadId b = static_cast<WorkloadId>(rng.UniformInt(0, 9));
    table.Record(a, {b}, rng.Uniform(0.6, 1.0));
  }
  const std::vector<WorkloadId> partners = {0, 3, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Estimate(1, partners));
  }
}
BENCHMARK(BM_ThroughputTableEstimate);

void BM_SolverSmall(benchmark::State& state) {
  const SchedulingContext context =
      MakeRandomTaskContext(static_cast<int>(state.range(0)), 5, Catalog());
  for (auto _ : state) {
    SolverOptions options;
    options.time_limit_seconds = 2.0;
    benchmark::DoNotOptimize(SolveOptimalPacking(context, options));
  }
}
BENCHMARK(BM_SolverSmall)->Arg(8)->Arg(12);

void BM_EndToEndSmallTrace(benchmark::State& state) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 16;
  trace_options.seed = 9;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  for (auto _ : state) {
    ExperimentOptions options;
    benchmark::DoNotOptimize(RunComparison(trace, {SchedulerKind::kEva}, options));
  }
}
BENCHMARK(BM_EndToEndSmallTrace)->Unit(benchmark::kMillisecond);

}  // namespace
