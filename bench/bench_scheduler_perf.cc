// google-benchmark micro-benchmarks of the scheduler internals (reservation
// price computation, Algorithm 1 packing, the config differ, the throughput
// table, the B&B solver on small instances), plus an engine-throughput
// scale sweep: the 2,000-job Alibaba-like trace (No-Packing + Eva) and
// 10k/50k/100k-job superposition-scaled traces (Eva), reporting events/sec,
// rounds invoked vs. coalesced, per-round decision latency, peak RSS and
// allocation counts. With EVA_BENCH_JSON=<path> the sweep (best wall time
// of the deterministic repetitions per case) is written as machine-readable
// JSON (the committed BENCH_scheduler_perf.json tracks it across commits).
// EVA_BENCH_SCALE (a percentage) scales every case's job count;
// EVA_BENCH_SWEEP_MAX caps the sweep's largest point.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/full_reconfig.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"
#include "src/core/partial_reconfig.h"
#include "src/sched/config_diff.h"
#include "src/sched/throughput_estimator.h"
#include "src/sim/experiment.h"
#include "src/solver/bnb_solver.h"
#include "src/workload/trace_gen.h"

namespace {

using namespace eva;

const InstanceCatalog& Catalog() {
  static const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  return catalog;
}

void BM_ReservationPrice(benchmark::State& state) {
  const SchedulingContext context = MakeRandomTaskContext(64, 1, Catalog());
  for (auto _ : state) {
    const TnrpCalculator calculator(context, {});
    Money total = 0.0;
    for (const TaskInfo& task : context.tasks) {
      total += calculator.ReservationPrice(task);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ReservationPrice);

void BM_FullReconfiguration(benchmark::State& state) {
  const SchedulingContext context =
      MakeRandomTaskContext(static_cast<int>(state.range(0)), 1, Catalog());
  const TnrpCalculator calculator(context, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(FullReconfiguration(context, calculator));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReconfiguration)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_PartialReconfigurationQuiescent(benchmark::State& state) {
  // A cluster already packed by Full Reconfiguration: Partial should be
  // near-free because every instance stays cost-efficient.
  SchedulingContext context = MakeRandomTaskContext(200, 1, Catalog());
  const TnrpCalculator calculator(context, {});
  const ClusterConfig packed = FullReconfiguration(context, calculator);
  InstanceId next_id = 0;
  for (const ConfigInstance& instance : packed.instances) {
    InstanceInfo info;
    info.id = next_id++;
    info.type_index = instance.type_index;
    info.tasks = instance.tasks;
    for (TaskId task : instance.tasks) {
      for (TaskInfo& task_info : context.tasks) {
        if (task_info.id == task) {
          task_info.current_instance = info.id;
        }
      }
    }
    context.instances.push_back(std::move(info));
  }
  context.Finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartialReconfiguration(context, calculator));
  }
}
BENCHMARK(BM_PartialReconfigurationQuiescent);

void BM_ConfigDiff(benchmark::State& state) {
  const SchedulingContext context = MakeRandomTaskContext(200, 1, Catalog());
  const TnrpCalculator calculator(context, {});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiffConfig(context, config));
  }
}
BENCHMARK(BM_ConfigDiff);

void BM_ThroughputTableEstimate(benchmark::State& state) {
  ThroughputTable table(0.95);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const WorkloadId a = static_cast<WorkloadId>(rng.UniformInt(0, 9));
    const WorkloadId b = static_cast<WorkloadId>(rng.UniformInt(0, 9));
    table.Record(a, {b}, rng.Uniform(0.6, 1.0));
  }
  const std::vector<WorkloadId> partners = {0, 3, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Estimate(1, partners));
  }
}
BENCHMARK(BM_ThroughputTableEstimate);

void BM_SolverSmall(benchmark::State& state) {
  const SchedulingContext context =
      MakeRandomTaskContext(static_cast<int>(state.range(0)), 5, Catalog());
  for (auto _ : state) {
    SolverOptions options;
    options.time_limit_seconds = 2.0;
    benchmark::DoNotOptimize(SolveOptimalPacking(context, options));
  }
}
BENCHMARK(BM_SolverSmall)->Arg(8)->Arg(12);

// The work-stealing subtree search; returns the same incumbent as the
// serial path (see bnb_solver.h) so this measures pure speedup.
void BM_SolverSmallParallel(benchmark::State& state) {
  const SchedulingContext context =
      MakeRandomTaskContext(static_cast<int>(state.range(0)), 5, Catalog());
  for (auto _ : state) {
    SolverOptions options;
    options.time_limit_seconds = 2.0;
    options.num_threads = 4;
    benchmark::DoNotOptimize(SolveOptimalPacking(context, options));
  }
}
BENCHMARK(BM_SolverSmallParallel)->Arg(8)->Arg(12);

void BM_EndToEndSmallTrace(benchmark::State& state) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 16;
  trace_options.seed = 9;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  for (auto _ : state) {
    ExperimentOptions options;
    benchmark::DoNotOptimize(RunComparison(trace, {SchedulerKind::kEva}, options));
  }
}
BENCHMARK(BM_EndToEndSmallTrace)->Unit(benchmark::kMillisecond);

// One engine-throughput case: `trace` through the full event-driven engine
// under `kind` (with `eva_options` for the Eva variants), best wall time of
// `runs` deterministic repetitions. Returns the best run's metrics so the
// quality report can compare modes without replaying the trace.
SimulationMetrics RunEngineCase(BenchJsonWriter& json, const std::string& name,
                                const Trace& trace, SchedulerKind kind,
                                const InterferenceModel& interference, int runs,
                                const EvaOptions& eva_options = {}) {
  const std::uint64_t allocs_before = AllocationCount();
  SimulationMetrics metrics;
  double wall = 0.0;
  int reused = 0;
  int miss_table = 0;
  int miss_context = 0;
  for (int run = 0; run < runs; ++run) {
    SchedulerBundle bundle = MakeScheduler(kind, interference, eva_options);
    const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
    const auto start = std::chrono::steady_clock::now();
    const SimulationMetrics run_metrics = RunSimulation(
        trace, bundle.scheduler.get(), catalog, interference, SimulatorOptions{});
    const double run_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (run == 0 || run_wall < wall) {
      metrics = run_metrics;
      wall = run_wall;
      if (bundle.eva != nullptr) {
        reused = bundle.eva->stats().rounds_reused;
        miss_table = bundle.eva->stats().reuse_miss_table;
        miss_context = bundle.eva->stats().reuse_miss_context;
      }
    }
  }
  const double sched_wall = metrics.scheduler_wall_seconds;
  const double events_per_sec =
      wall > 0.0 ? static_cast<double>(metrics.events_processed) / wall : 0.0;
  const double sched_us_per_round =
      metrics.scheduling_rounds > 0 ? sched_wall * 1e6 / metrics.scheduling_rounds : 0.0;
  const double peak_rss_mb = PeakRssMb();
  const std::uint64_t allocs = (AllocationCount() - allocs_before) /
                               static_cast<std::uint64_t>(runs > 0 ? runs : 1);
  const SchedulerCounters& counters = metrics.scheduler_counters;
  std::printf("%-24s %9.3f %11" PRId64 " %13.0f %8" PRId64 " %9" PRId64
              " %9.3f %9.2f %9.1f\n",
              name.c_str(), wall, metrics.events_processed, events_per_sec,
              metrics.scheduling_rounds, metrics.rounds_coalesced, sched_wall,
              sched_us_per_round, peak_rss_mb);
  json.AddCaseWithScheduler(name, static_cast<int>(metrics.jobs_submitted), wall,
                            metrics.events_processed, events_per_sec,
                            metrics.scheduling_rounds, metrics.rounds_coalesced, sched_wall,
                            sched_us_per_round, peak_rss_mb, allocs, counters,
                            TelemetryJson(metrics));
  if (kind == SchedulerKind::kEva) {
    std::printf("  (rounds reused: %d/" EVA_PRId64 ", coalesced: " EVA_PRId64
                ", table misses: %d, context misses: %d)\n",
                reused, metrics.scheduling_rounds, metrics.rounds_coalesced,
                miss_table, miss_context);
    if (counters.packs_incremental > 0 || counters.packs_escalated > 0) {
      std::printf(
          "  (packs: %d incremental / %d full / %d escalated; reconciliations: %d, "
          "escalations: %d, max divergence: %.4f cost / %d edits, staleness <= %d; "
          "fallbacks: %d oversized, %d incomplete, %d no-previous)\n",
          counters.packs_incremental, counters.packs_full, counters.packs_escalated,
          counters.reconciliations, counters.escalations, counters.max_divergence_cost,
          counters.max_divergence_edits, counters.max_kept_staleness,
          counters.fallback_oversized_delta, counters.fallback_incomplete_delta,
          counters.fallback_no_previous);
    }
  }
  return metrics;
}

// Approximation-quality row: relative cost/JCT deltas of the incremental
// fast path vs the exact replay of the same trace (the CI quality gate
// checks these against the documented envelope: cost <= 10%, JCT <= 5%).
void ReportQuality(BenchJsonWriter& json, const std::string& name,
                   const SimulationMetrics& exact, const SimulationMetrics& incremental) {
  const double cost_delta =
      exact.total_cost > 0.0 ? (incremental.total_cost - exact.total_cost) / exact.total_cost
                             : 0.0;
  const double jct_delta =
      exact.avg_jct_hours > 0.0
          ? (incremental.avg_jct_hours - exact.avg_jct_hours) / exact.avg_jct_hours
          : 0.0;
  std::printf("%-24s cost %+.2f%% (%.2f -> %.2f), JCT %+.2f%% (%.4fh -> %.4fh), "
              "completed " EVA_PRId64 "/" EVA_PRId64 "\n",
              name.c_str(), cost_delta * 100.0, exact.total_cost, incremental.total_cost,
              jct_delta * 100.0, exact.avg_jct_hours, incremental.avg_jct_hours,
              incremental.jobs_completed, exact.jobs_completed);
  json.AddQualityCase(name, static_cast<int>(exact.jobs_submitted), exact.total_cost,
                      incremental.total_cost, cost_delta, exact.avg_jct_hours,
                      incremental.avg_jct_hours, jct_delta, exact.jobs_completed,
                      incremental.jobs_completed);
}

// Engine throughput scale sweep: the 2,000-job Alibaba-like trace (both
// No-Packing and Eva, the tracked headline numbers), plus 10k-, 50k- and
// 100k-job traces produced by the deterministic superposition scaler. At
// every scaled point the default Eva (the incremental fast path — kAuto
// turns it on at >= 10k jobs) and the exact-mode replay ("-exact") both
// run; quality_* rows record the cost/JCT deltas between the two modes
// (the CI quality gate checks the 2k and 10k rows against the documented
// envelope). Use EVA_BENCH_SWEEP_MAX to cap the largest point when the
// full sweep is too slow. All job counts scale with EVA_BENCH_SCALE so CI
// smoke stays fast; EVA_BENCH_SCALE >= 1000 additionally unlocks the raw
// 1,000,000-job point (combine with EVA_BENCH_SWEEP_MAX=1 to run it
// alone). Returns false if a requested JSON artifact could not be written.
bool RunEngineThroughputCases() {
  PrintBenchHeader("Simulation engine throughput, Alibaba trace scale sweep",
                   "engine perf tracking; not a paper table");
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(2000);
  trace_options.seed = 17;
  trace_options.max_duration_hours = 48.0;
  const Trace base = GenerateAlibabaTrace(trace_options);
  const InterferenceModel interference = InterferenceModel::Measured();

  BenchJsonWriter json;
  std::printf("%-24s %9s %11s %13s %8s %9s %9s %9s %9s\n", "Case", "Wall(s)", "Events",
              "Events/sec", "Rounds", "Coal", "Sched(s)", "us/round", "RSS(MB)");
  RunEngineCase(json, std::string("alibaba2000_") + SchedulerKindName(SchedulerKind::kNoPacking),
                base, SchedulerKind::kNoPacking, interference, /*runs=*/3);
  const SimulationMetrics exact_2k =
      RunEngineCase(json, std::string("alibaba2000_") + SchedulerKindName(SchedulerKind::kEva),
                    base, SchedulerKind::kEva, interference, /*runs=*/3);

  // The 2k trace sits below incremental_auto_min_jobs (it is the
  // golden-pinned evaluation trace, kept bit-identical), so the 2k quality
  // comparison forces the fast path on explicitly.
  EvaOptions force_incremental;
  force_incremental.incremental_packing = EvaOptions::IncrementalPacking::kOn;
  EvaOptions force_exact;
  force_exact.incremental_packing = EvaOptions::IncrementalPacking::kOff;
  const SimulationMetrics inc_2k = RunEngineCase(
      json, std::string("alibaba2000_") + SchedulerKindName(SchedulerKind::kEva) + "-inc",
      base, SchedulerKind::kEva, interference, /*runs=*/3, force_incremental);
  ReportQuality(json, "quality_alibaba2000", exact_2k, inc_2k);

  // Fault-injection row: the same 2k trace with the deterministic fault
  // model on (zone outages, correlated bursts, maintenance drains). Faults
  // destroy in-flight work and churn placements but must never lose a job —
  // killed tasks re-run — so jobs_completed must match the fault-free
  // replay; goodput degrades boundedly. The CI gate (fault_* rows in
  // check_bench_regression.py) checks both.
  {
    SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference, {});
    const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
    SimulatorOptions fault_options;
    fault_options.faults.enabled = true;
    fault_options.faults.seed = 97;
    const auto start = std::chrono::steady_clock::now();
    const SimulationMetrics faulted = RunSimulation(base, bundle.scheduler.get(), catalog,
                                                    interference, fault_options);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const FaultStats& f = faulted.faults;
    std::printf(
        "fault_alibaba2000_Eva    completed " EVA_PRId64 "/" EVA_PRId64
        ", goodput %.4f, lost work %.2fh "
        "(" EVA_PRId64 " tasks), killed " EVA_PRId64 ", drained " EVA_PRId64
        ", outages " EVA_PRId64 ", replace p95 %.0fs\n",
        faulted.jobs_completed, exact_2k.jobs_completed, f.goodput_ratio,
        SecondsToHours(f.lost_work_seconds), f.tasks_lost, f.instances_killed,
        f.instances_drained, f.zone_outages, f.replacement_latency_p95_s);
    char fields[640];
    std::snprintf(
        fields, sizeof(fields),
        "\"jobs\": " EVA_PRId64 ", \"jobs_completed\": " EVA_PRId64 ", "
        "\"jobs_completed_fault_free\": " EVA_PRId64 ", \"goodput_ratio\": %.6f, "
        "\"tasks_lost\": " EVA_PRId64 ", \"lost_work_hours\": %.4f, "
        "\"instances_killed\": " EVA_PRId64 ", \"instances_drained\": " EVA_PRId64 ", "
        "\"zone_outages\": " EVA_PRId64 ", \"correlated_failures\": " EVA_PRId64 ", "
        "\"maintenance_drains\": " EVA_PRId64 ", \"replacements\": " EVA_PRId64 ", "
        "\"replace_p95_s\": %.2f, \"wall_seconds\": %.6f",
        faulted.jobs_submitted, faulted.jobs_completed, exact_2k.jobs_completed,
        f.goodput_ratio, f.tasks_lost, SecondsToHours(f.lost_work_seconds),
        f.instances_killed, f.instances_drained, f.zone_outages,
        f.correlated_failures, f.maintenance_drains, f.replacements_completed,
        f.replacement_latency_p95_s, wall);
    json.AddCaseFields("fault_alibaba2000_Eva", fields);
  }

  // Traced replay, opted into with EVA_TRACE_JSON=<path>: the 2k Eva case
  // again with the full observability stack on (span recorder, per-round
  // flight digests, telemetry registry), measuring the tracing overhead
  // against a fresh untraced run and writing the Chrome trace_event
  // artifact. The trace is stamped purely in virtual time, so the written
  // bytes are a deterministic function of the trace+seed (the obs test
  // suite holds that invariant across pool sizes; here we record the
  // artifact and the overhead row the CI trend tracks).
  bool trace_artifact_ok = true;
  if (const char* trace_path = std::getenv("EVA_TRACE_JSON")) {
    const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
    const auto run_once = [&](SimulatorOptions sim_options,
                              SimulationMetrics& out_metrics) {
      SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference, {});
      const auto start = std::chrono::steady_clock::now();
      out_metrics = RunSimulation(base, bundle.scheduler.get(), catalog, interference,
                                  sim_options);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
    };
    SimulationMetrics off_metrics;
    const double wall_off = run_once(SimulatorOptions{}, off_metrics);

    TraceRecorder recorder;
    FlightRecorder flight;
    TelemetryRegistry registry;
    SimulatorOptions traced_options;
    traced_options.observability.enabled = true;
    traced_options.observability.trace = &recorder;
    traced_options.observability.flight_recorder = &flight;
    traced_options.observability.registry = &registry;
    traced_options.observability.track_name = "alibaba2000_Eva";
    SimulationMetrics on_metrics;
    const double wall_on = run_once(traced_options, on_metrics);

    const double eps_off =
        wall_off > 0.0 ? static_cast<double>(off_metrics.events_processed) / wall_off : 0.0;
    const double eps_on =
        wall_on > 0.0 ? static_cast<double>(on_metrics.events_processed) / wall_on : 0.0;
    const double overhead = eps_off > 0.0 ? 1.0 - eps_on / eps_off : 0.0;
    trace_artifact_ok = recorder.WriteChromeJson(trace_path);
    std::printf("trace_alibaba2000_Eva    overhead %+.2f%% (%.0f -> %.0f events/sec), "
                "spans " EVA_PRIu64 " emitted / " EVA_PRIu64 " retained, "
                "rounds digested " EVA_PRId64 "%s -> %s\n",
                overhead * 100.0, eps_off, eps_on, recorder.TotalEmitted(),
                recorder.TotalRetained(), flight.rounds_recorded(),
                trace_artifact_ok ? "" : " [trace write FAILED]", trace_path);
    char trace_fields[512];
    std::snprintf(
        trace_fields, sizeof(trace_fields),
        "\"events\": " EVA_PRId64 ", \"wall_seconds_off\": %.6f, "
        "\"wall_seconds_on\": %.6f, \"events_per_sec_off\": %.1f, "
        "\"events_per_sec_on\": %.1f, \"trace_overhead\": %.6f, "
        "\"spans_emitted\": " EVA_PRIu64 ", \"spans_retained\": " EVA_PRIu64 ", "
        "\"rounds_digested\": " EVA_PRId64,
        on_metrics.events_processed, wall_off, wall_on, eps_off, eps_on, overhead,
        recorder.TotalEmitted(), recorder.TotalRetained(), flight.rounds_recorded());
    json.AddCaseFields("trace_alibaba2000_Eva", trace_fields);
  }

  // Scaled points: proportional-rate superposition of the 2,000-job mix —
  // heavier traffic over the same simulated span, so the active-job
  // population (and the decision problem) grows with the job count.
  struct ScalePoint {
    int jobs;
    int runs;
  };
  std::vector<ScalePoint> points = {{10000, 2}, {50000, 1}, {100000, 1}};
  // EVA_BENCH_SWEEP_MAX caps the sweep's largest point (CI's regression
  // gate runs the 10k point at full scale without paying for 50k).
  const char* max_env = std::getenv("EVA_BENCH_SWEEP_MAX");
  const int max_jobs = max_env != nullptr ? std::atoi(max_env) : 0;
  for (const ScalePoint& point : points) {
    if (max_jobs > 0 && point.jobs > max_jobs) {
      continue;
    }
    TraceScaleOptions scale;
    scale.target_jobs = ScaledJobCount(point.jobs);
    scale.seed = 23;
    const Trace scaled = ScaleTrace(base, scale);
    const std::string name = "alibaba" + std::to_string(scale.target_jobs) + "_" +
                             SchedulerKindName(SchedulerKind::kEva);
    // Default options: IncrementalPacking::kAuto — the production fast path
    // at these scales (at full scale; CI smoke's scaled-down populations
    // fall below the auto threshold and stay exact, which is fine for a
    // smoke signal).
    const SimulationMetrics fast =
        RunEngineCase(json, name, scaled, SchedulerKind::kEva, interference, point.runs);
    const SimulationMetrics exact = RunEngineCase(json, name + "-exact", scaled,
                                                  SchedulerKind::kEva, interference,
                                                  point.runs, force_exact);
    ReportQuality(json, "quality_alibaba" + std::to_string(scale.target_jobs), exact, fast);
  }

  // The million-job tier, opt-in via EVA_BENCH_SCALE >= 1000: a raw
  // 1,000,000-job point (not additionally scaled) under the production
  // default. One run, fast path only — the exact replay at this scale is
  // the very thing the fast path exists to avoid.
  const char* scale_env = std::getenv("EVA_BENCH_SCALE");
  if (scale_env != nullptr && std::atoi(scale_env) >= 1000) {
    TraceScaleOptions scale;
    scale.target_jobs = 1000000;
    scale.seed = 23;
    const Trace million = ScaleTrace(base, scale);
    RunEngineCase(json, "alibaba1000000_Eva", million, SchedulerKind::kEva, interference,
                  /*runs=*/1);
  }

  if (const char* path = BenchJsonWriter::OutputPath()) {
    return json.WriteTo(path, "scheduler_perf") && trace_artifact_ok;
  }
  return trace_artifact_ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return RunEngineThroughputCases() ? 0 : 1;
}
