// Ablations of Eva's design choices (DESIGN.md §4):
//   A. the default pairwise throughput t (§4.3 calls it the knob trading
//      packing aggressiveness against interference risk; the paper fixes
//      t = 0.95),
//   B. the VSBPP downsizing step in Algorithm 1 (shrink each accepted set
//      to the cheapest fitting type),
//   C. the ensemble reconfiguration policy vs Full-only / Partial-only
//      (complements Figures 5 and 6).
//
// Scale with EVA_BENCH_SCALE (percent of 6,274 jobs; default 4%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/full_reconfig.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

namespace {

using namespace eva;

void AblateDefaultThroughput(const Trace& trace) {
  std::printf("\n--- A. default pairwise throughput t ---\n");
  std::printf("%-6s %10s %12s %8s\n", "t", "NormCost", "Tasks/Inst", "Tput");
  ExperimentOptions base;
  const double no_packing =
      RunComparison(trace, {SchedulerKind::kNoPacking}, base)[0].metrics.total_cost;
  for (double t : {1.0, 0.95, 0.9, 0.8}) {
    ExperimentOptions options;
    options.eva.default_pairwise_throughput = t;
    const auto results = RunComparison(trace, {SchedulerKind::kEva}, options);
    std::printf("%-6.2f %9.1f%% %12.2f %8.2f\n", t,
                results[0].metrics.total_cost / no_packing * 100.0,
                results[0].metrics.avg_tasks_per_instance,
                results[0].metrics.avg_norm_job_throughput);
  }
  std::printf("(smaller t = more conservative packing; paper uses t = 0.95)\n");
}

void AblateDownsizing() {
  std::printf("\n--- B. Algorithm 1 downsizing step (static packing) ---\n");
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  std::printf("%-8s %14s %14s\n", "Seed", "With shrink", "Without");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SchedulingContext context = MakeRandomTaskContext(120, seed, catalog);
    const TnrpCalculator calculator(context, {.interference_aware = false});
    PackingOptions with;
    PackingOptions without;
    without.shrink_to_cheapest_type = false;
    const Money cost_with =
        FullReconfiguration(context, calculator, with).HourlyCost(catalog);
    const Money cost_without =
        FullReconfiguration(context, calculator, without).HourlyCost(catalog);
    std::printf("%-8llu %13.2f$ %13.2f$\n", static_cast<unsigned long long>(seed), cost_with,
                cost_without);
  }
}

void AblateReconfigPolicy(const Trace& trace) {
  std::printf("\n--- C. reconfiguration policy ---\n");
  ExperimentOptions options;
  const auto results = RunComparison(
      trace,
      {SchedulerKind::kNoPacking, SchedulerKind::kEvaPartialOnly, SchedulerKind::kEvaFullOnly,
       SchedulerKind::kEva},
      options);
  std::printf("%-18s %10s %10s %10s\n", "Policy", "NormCost", "Mig/Task", "Idle(h)");
  for (const auto& result : results) {
    std::printf("%-18s %9.1f%% %10.2f %10.2f\n", SchedulerKindName(result.kind),
                result.normalized_cost * 100.0, result.metrics.migrations_per_task,
                result.metrics.avg_job_idle_hours);
  }
}

}  // namespace

int main() {
  using namespace eva;
  PrintBenchHeader("Design-choice ablations", "DESIGN.md design notes; complements Figs 5-6");

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(6274, 4);
  trace_options.seed = 2023;
  trace_options.max_duration_hours = 72.0;  // Bound single-job variance at reduced scale.
  const Trace trace = GenerateAlibabaTrace(trace_options);

  AblateDefaultThroughput(trace);
  AblateDownsizing();
  AblateReconfigPolicy(trace);
  return 0;
}
