// Table 5: Full Reconfiguration runtime vs. number of tasks.
//
// Scale with EVA_BENCH_SCALE (default 50% caps the sweep at 4000 tasks; 100%
// reproduces the paper's 8000-task point).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/full_reconfig.h"
#include "src/sim/experiment.h"

int main() {
  using namespace eva;
  using Clock = std::chrono::steady_clock;

  PrintBenchHeader("Full Reconfiguration runtime scaling", "Table 5");

  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const int max_tasks = ScaledJobCount(8000, 50);

  std::printf("%-12s %s\n", "Num. Tasks", "Runtime (sec)");
  for (int n = 1000; n <= max_tasks; n *= 2) {
    const SchedulingContext context = MakeRandomTaskContext(n, 7, catalog);
    const TnrpCalculator calculator(context, {.interference_aware = false});
    const auto t0 = Clock::now();
    const ClusterConfig config = FullReconfiguration(context, calculator);
    const auto t1 = Clock::now();
    std::printf("%-12d %.2f   (%zu instances, $%.0f/hr)\n", n,
                std::chrono::duration<double>(t1 - t0).count(), config.instances.size(),
                config.HourlyCost(catalog));
  }
  std::printf("\nPaper: 0.40s / 1.50s / 5.53s / 22.06s for 1000/2000/4000/8000 tasks.\n");
  return 0;
}
