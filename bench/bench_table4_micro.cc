// Table 4: provisioning-cost micro-benchmark.
//
// 30 independent trials of 200 tasks sampled from the Table 7 workloads.
// Compares No-Packing (one RP instance per task), Full Reconfiguration, and
// the exact branch-and-bound solver (standing in for the Gurobi ILP, which
// the paper also runs with a time limit). Costs are normalized to the
// solver's best solution per trial.
//
// Scale with EVA_BENCH_SCALE (percent of the 30 trials; default 20%) and
// EVA_ILP_SECONDS (per-trial solver budget; default 3).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/core/full_reconfig.h"
#include "src/sim/experiment.h"
#include "src/solver/bnb_solver.h"

int main() {
  using namespace eva;
  using Clock = std::chrono::steady_clock;

  PrintBenchHeader("Provisioning-cost micro-benchmark", "Table 4");

  const int trials = ScaledJobCount(30, 20);
  double ilp_seconds = 3.0;
  if (const char* env = std::getenv("EVA_ILP_SECONDS")) {
    ilp_seconds = std::atof(env);
  }
  const int num_tasks = 200;
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();

  RunningStats no_packing_ratio;
  RunningStats full_ratio;
  RunningStats full_runtime_ms;
  RunningStats ilp_runtime_s;
  int ilp_proven = 0;

  for (int trial = 0; trial < trials; ++trial) {
    const SchedulingContext context =
        MakeRandomTaskContext(num_tasks, 1000 + static_cast<std::uint64_t>(trial), catalog);
    const TnrpCalculator calculator(context, {.interference_aware = false});

    Money no_packing_cost = 0.0;
    for (const TaskInfo& task : context.tasks) {
      no_packing_cost += calculator.ReservationPrice(task);
    }

    const auto t0 = Clock::now();
    const ClusterConfig full = FullReconfiguration(context, calculator);
    const auto t1 = Clock::now();
    const Money full_cost = full.HourlyCost(catalog);
    full_runtime_ms.Add(std::chrono::duration<double, std::milli>(t1 - t0).count());

    SolverOptions solver_options;
    solver_options.time_limit_seconds = ilp_seconds;
    const SolverResult solved = SolveOptimalPacking(context, solver_options);
    ilp_runtime_s.Add(solved.wall_seconds);
    if (solved.proven_optimal) {
      ++ilp_proven;
    }

    no_packing_ratio.Add(no_packing_cost / solved.hourly_cost);
    full_ratio.Add(full_cost / solved.hourly_cost);
  }

  std::printf("%d trials x %d tasks, solver budget %.1fs/trial (%d/%d proven optimal)\n\n",
              trials, num_tasks, ilp_seconds, ilp_proven, trials);
  std::printf("%-16s %-22s %s\n", "Scheduler", "Provisioning Cost", "Runtime");
  std::printf("%-16s %-22s %.0fms\n", "No-Packing",
              (MeanPlusMinus(no_packing_ratio) + "x").c_str(), 0.1);
  std::printf("%-16s %-22s %.0fms\n", "Full Reconfig.",
              (MeanPlusMinus(full_ratio) + "x").c_str(), full_runtime_ms.mean());
  std::printf("%-16s %-22s %.1fs (time-limited best)\n", "ILP (B&B)", "1.00x",
              ilp_runtime_s.mean());
  std::printf("\nPaper: No-Packing 1.56x, Full Reconfig 1.01x (378ms), ILP 1x (>30min).\n");
  return 0;
}
