// Table 14: end-to-end simulation, Alibaba-like trace, Gavel durations.
//
// Same setup as Table 13 but with the Gavel duration model (10^x minutes),
// emphasizing long-running ML training jobs. Scale with EVA_BENCH_SCALE
// (percent of 6,274 jobs; default 8%).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace eva;

  PrintBenchHeader("End-to-end simulation, Gavel durations", "Table 14");

  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = ScaledJobCount(6274, 8);
  trace_options.duration_model = DurationModel::kGavel;
  trace_options.seed = 2023;
  const Trace trace = GenerateAlibabaTrace(trace_options);
  std::printf("Trace: %d jobs (Gavel duration model)\n\n", trace_options.num_jobs);

  ExperimentOptions options;
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                                            SchedulerKind::kSynergy, SchedulerKind::kOwl,
                                            SchedulerKind::kEva};
  PrintComparisonTable(ParallelRunComparison(trace, kinds, options));
  std::printf("\nPaper: No-Packing 100%%, Stratus 67%%, Synergy 67%%, Owl 75%%, Eva 58%%;\n");
  std::printf("tasks/instance up to 2.59 for Eva; JCT 16.81->19.42h.\n");
  return 0;
}
