// Counting global operator new/delete for the bench harnesses.
//
// Replacement functions must not be inline, and a program must contain at
// most one definition of each — so they live in this dedicated translation
// unit, linked exactly once into every bench binary (see bench/CMakeLists.txt)
// and never into the library or tests. AllocationCount() (declared in
// bench_util.h) reads the counter.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace {

// Relaxed: the count is a profile statistic, not a synchronization point.
std::atomic<std::uint64_t> alloc_count{0};

}  // namespace

namespace eva {

std::uint64_t AllocationCount() { return alloc_count.load(std::memory_order_relaxed); }

}  // namespace eva

// noinline keeps gcc from inlining the malloc/free bodies into callers,
// where its new/delete-pairing heuristic misfires (the pair is consistent:
// both sides are replaced).
#if defined(__GNUC__)
#define EVA_BENCH_NOINLINE __attribute__((noinline))
#else
#define EVA_BENCH_NOINLINE
#endif

EVA_BENCH_NOINLINE void* operator new(std::size_t size) {
  alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) {
    return ptr;
  }
  throw std::bad_alloc();
}

EVA_BENCH_NOINLINE void* operator new[](std::size_t size) { return ::operator new(size); }

EVA_BENCH_NOINLINE void operator delete(void* ptr) noexcept { std::free(ptr); }
EVA_BENCH_NOINLINE void operator delete[](void* ptr) noexcept { std::free(ptr); }
EVA_BENCH_NOINLINE void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
EVA_BENCH_NOINLINE void operator delete[](void* ptr, std::size_t) noexcept {
  std::free(ptr);
}
