#include "src/solver/bnb_solver.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/core/full_reconfig.h"

namespace eva {
namespace {

SchedulingContext ContextWithDemands(const InstanceCatalog& catalog,
                                     const std::vector<ResourceVector>& demands) {
  SchedulingContext context;
  context.catalog = &catalog;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    TaskInfo task;
    task.id = static_cast<TaskId>(i);
    task.job = static_cast<JobId>(i);
    task.workload = 0;
    task.demand_p3 = demands[i];
    task.demand_cpu = demands[i];
    context.tasks.push_back(task);
  }
  context.Finalize();
  return context;
}

TEST(BnbSolverTest, EmptyProblemCostsZero) {
  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  const SchedulingContext context = ContextWithDemands(catalog, {});
  const SolverResult result = SolveOptimalPacking(context);
  EXPECT_DOUBLE_EQ(result.hourly_cost, 0.0);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_TRUE(result.config.instances.empty());
}

TEST(BnbSolverTest, SingleTaskUsesCheapestType) {
  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  const SchedulingContext context = ContextWithDemands(catalog, {{0, 4, 12}});
  const SolverResult result = SolveOptimalPacking(context);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.hourly_cost, 0.4);  // it4.
}

TEST(BnbSolverTest, SolvesPaperExampleOptimally) {
  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  const SchedulingContext context = ContextWithDemands(
      catalog, {{2, 8, 24}, {1, 4, 10}, {0, 6, 20}, {0, 4, 12}});
  const SolverResult result = SolveOptimalPacking(context);
  EXPECT_TRUE(result.proven_optimal);
  // The $12.8/hr configuration from §4.2 is optimal here.
  EXPECT_NEAR(result.hourly_cost, 12.8, 1e-9);
  EXPECT_FALSE(result.config.Validate(context).has_value());
}

TEST(BnbSolverTest, FindsPackingBetterThanGreedyWhenItExists) {
  // Two tasks of (0, 4, 12): one it3 (8 CPU, 32 GB, $0.8) holds both,
  // beating two it4 ($0.4 each) is a tie; three tasks: it3 holds two
  // ($0.8) + it4 ($0.4) = $1.2 vs three it4 = $1.2 — also tie. Use
  // (0, 2, 8) x 2: both fit one it4 at $0.4 vs $0.8 separately.
  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  const SchedulingContext context = ContextWithDemands(catalog, {{0, 2, 8}, {0, 2, 8}});
  const SolverResult result = SolveOptimalPacking(context);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.hourly_cost, 0.4, 1e-9);
  ASSERT_EQ(result.config.instances.size(), 1u);
  EXPECT_EQ(result.config.instances[0].tasks.size(), 2u);
}

TEST(BnbSolverTest, NeverWorseThanHeuristic) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<ResourceVector> demands;
    for (int i = 0; i < 12; ++i) {
      const WorkloadSpec& spec = WorkloadRegistry::Get(
          static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1)));
      demands.push_back(spec.demand_p3);
    }
    const SchedulingContext context = ContextWithDemands(catalog, demands);
    const TnrpCalculator calculator(context, {.interference_aware = false});
    const Money heuristic = FullReconfiguration(context, calculator).HourlyCost(catalog);
    SolverOptions options;
    options.time_limit_seconds = 5.0;
    const SolverResult result = SolveOptimalPacking(context, options);
    EXPECT_LE(result.hourly_cost, heuristic + 1e-9) << "seed " << seed;
  }
}

TEST(BnbSolverTest, LowerBoundIsValid) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  Rng rng(77);
  std::vector<ResourceVector> demands;
  for (int i = 0; i < 10; ++i) {
    const WorkloadSpec& spec = WorkloadRegistry::Get(
        static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1)));
    demands.push_back(spec.demand_p3);
  }
  const SchedulingContext context = ContextWithDemands(catalog, demands);
  std::vector<const TaskInfo*> tasks;
  for (const TaskInfo& task : context.tasks) {
    tasks.push_back(&task);
  }
  const Money bound = PackingLowerBound(context, tasks);
  SolverOptions options;
  options.time_limit_seconds = 10.0;
  const SolverResult result = SolveOptimalPacking(context, options);
  EXPECT_LE(bound, result.hourly_cost + 1e-9);
  EXPECT_GT(bound, 0.0);
}

TEST(BnbSolverTest, SolutionAssignsEveryTaskOnce) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = ContextWithDemands(
      catalog, {{1, 4, 24}, {1, 4, 10}, {0, 6, 40}, {0, 4, 8}, {2, 8, 60}});
  const SolverResult result = SolveOptimalPacking(context);
  std::set<TaskId> seen;
  for (const ConfigInstance& instance : result.config.instances) {
    for (TaskId id : instance.tasks) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), context.tasks.size());
  EXPECT_FALSE(result.config.Validate(context).has_value());
}

TEST(BnbSolverTest, RespectsTimeLimit) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  Rng rng(3);
  std::vector<ResourceVector> demands;
  for (int i = 0; i < 60; ++i) {
    const WorkloadSpec& spec = WorkloadRegistry::Get(
        static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1)));
    demands.push_back(spec.demand_p3);
  }
  const SchedulingContext context = ContextWithDemands(catalog, demands);
  SolverOptions options;
  options.time_limit_seconds = 0.3;
  const SolverResult result = SolveOptimalPacking(context, options);
  EXPECT_LT(result.wall_seconds, 3.0);  // Some slack for slow machines.
  // Must still return a full (heuristic-seeded) solution.
  EXPECT_FALSE(result.config.Validate(context).has_value());
}

TEST(BnbSolverTest, NodeBudgetAborts) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  Rng rng(4);
  std::vector<ResourceVector> demands;
  for (int i = 0; i < 40; ++i) {
    demands.push_back(ResourceVector(0, 2 + static_cast<double>(i % 5), 4));
  }
  const SchedulingContext context = ContextWithDemands(catalog, demands);
  SolverOptions options;
  options.max_nodes = 60;  // Far below the 40-task tree: must abort.
  options.seed_with_heuristic = false;
  const SolverResult result = SolveOptimalPacking(context, options);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.nodes_explored, 80u);
}

TEST(BnbSolverTest, UnseededSearchStillFindsOptimum) {
  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  const SchedulingContext context = ContextWithDemands(
      catalog, {{2, 8, 24}, {1, 4, 10}, {0, 6, 20}, {0, 4, 12}});
  SolverOptions options;
  options.seed_with_heuristic = false;
  const SolverResult result = SolveOptimalPacking(context, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.hourly_cost, 12.8, 1e-9);
}

// Satellite: the work-stealing parallel search must return the same
// incumbent configuration, hourly cost, and proven_optimal flag as the
// serial path (nodes_explored may differ) across random instances.
TEST(BnbSolverParallelTest, MatchesSerialAcrossSeeds) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<ResourceVector> demands;
    const int n = 8 + static_cast<int>(seed % 4);
    for (int i = 0; i < n; ++i) {
      const WorkloadSpec& spec = WorkloadRegistry::Get(
          static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1)));
      demands.push_back(spec.demand_p3);
    }
    const SchedulingContext context = ContextWithDemands(catalog, demands);
    SolverOptions serial;
    serial.time_limit_seconds = 10.0;
    const SolverResult a = SolveOptimalPacking(context, serial);
    SolverOptions parallel = serial;
    parallel.num_threads = 4;
    const SolverResult b = SolveOptimalPacking(context, parallel);
    ASSERT_TRUE(a.proven_optimal) << "seed " << seed;
    EXPECT_EQ(b.proven_optimal, a.proven_optimal) << "seed " << seed;
    EXPECT_EQ(b.hourly_cost, a.hourly_cost) << "seed " << seed;
    ASSERT_EQ(b.config.instances.size(), a.config.instances.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.config.instances.size(); ++i) {
      EXPECT_EQ(b.config.instances[i].type_index, a.config.instances[i].type_index);
      EXPECT_EQ(b.config.instances[i].tasks, a.config.instances[i].tasks);
    }
  }
}

TEST(BnbSolverParallelTest, MatchesSerialWithoutHeuristicSeed) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = ContextWithDemands(
      catalog, {{1, 4, 24}, {1, 4, 10}, {0, 6, 40}, {0, 4, 8}, {2, 8, 60}, {0, 2, 8}});
  SolverOptions serial;
  serial.seed_with_heuristic = false;
  const SolverResult a = SolveOptimalPacking(context, serial);
  SolverOptions parallel = serial;
  parallel.num_threads = 3;
  const SolverResult b = SolveOptimalPacking(context, parallel);
  ASSERT_TRUE(a.proven_optimal);
  EXPECT_EQ(b.proven_optimal, a.proven_optimal);
  EXPECT_EQ(b.hourly_cost, a.hourly_cost);
  ASSERT_EQ(b.config.instances.size(), a.config.instances.size());
  for (std::size_t i = 0; i < a.config.instances.size(); ++i) {
    EXPECT_EQ(b.config.instances[i].tasks, a.config.instances[i].tasks);
  }
}

TEST(BnbSolverTest, WarmStartSeedsTheIncumbent) {
  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  const SchedulingContext context = ContextWithDemands(catalog, {{0, 2, 8}, {0, 2, 8}});
  // Warm start: both tasks on one it4 — the known optimum.
  ClusterConfig warm;
  ConfigInstance inst;
  inst.type_index = catalog.IndexOf("it4");
  inst.tasks = {0, 1};
  warm.instances.push_back(inst);
  SolverOptions options;
  options.seed_with_heuristic = false;
  options.warm_start = &warm;
  const SolverResult result = SolveOptimalPacking(context, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.hourly_cost, 0.4, 1e-9);
  // An invalid warm start must be ignored, not adopted.
  ClusterConfig bogus;
  ConfigInstance bad;
  bad.type_index = catalog.IndexOf("it4");
  bad.tasks = {0, 1, 99};  // Unknown task.
  bogus.instances.push_back(bad);
  options.warm_start = &bogus;
  const SolverResult fallback = SolveOptimalPacking(context, options);
  EXPECT_TRUE(fallback.proven_optimal);
  EXPECT_NEAR(fallback.hourly_cost, 0.4, 1e-9);
  EXPECT_FALSE(fallback.config.Validate(context).has_value());
}

}  // namespace
}  // namespace eva

