#include "src/sched/config_diff.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

class ConfigDiffTest : public testing::Test {
 protected:
  ConfigDiffTest() : catalog_(InstanceCatalog::AwsDefault()) {
    context_.catalog = &catalog_;
    p3_2x_ = catalog_.IndexOf("p3.2xlarge");
    p3_8x_ = catalog_.IndexOf("p3.8xlarge");
    c7i_xl_ = catalog_.IndexOf("c7i.xlarge");
  }

  void AddTask(TaskId id, InstanceId on = kInvalidInstanceId,
               WorkloadId workload = 3 /* CycleGAN */) {
    TaskInfo task;
    task.id = id;
    task.job = id;
    task.workload = workload;
    const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    task.current_instance = on;
    context_.tasks.push_back(task);
  }

  void AddInstance(InstanceId id, int type_index, std::vector<TaskId> tasks) {
    InstanceInfo instance;
    instance.id = id;
    instance.type_index = type_index;
    instance.tasks = std::move(tasks);
    context_.instances.push_back(instance);
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  int p3_2x_ = -1;
  int p3_8x_ = -1;
  int c7i_xl_ = -1;
};

TEST_F(ConfigDiffTest, EmptyToEmpty) {
  context_.Finalize();
  const ConfigDiff diff = DiffConfig(context_, {});
  EXPECT_TRUE(diff.bindings.empty());
  EXPECT_TRUE(diff.terminate.empty());
  EXPECT_TRUE(diff.moves.empty());
}

TEST_F(ConfigDiffTest, FreshLaunchAndFirstPlacement) {
  AddTask(1);
  context_.Finalize();
  ClusterConfig config;
  config.instances.push_back({p3_2x_, kInvalidInstanceId, {1}});
  const ConfigDiff diff = DiffConfig(context_, config);
  ASSERT_EQ(diff.bindings.size(), 1u);
  EXPECT_EQ(diff.bindings[0].existing_id, kInvalidInstanceId);
  EXPECT_EQ(diff.NumLaunches(), 1);
  ASSERT_EQ(diff.moves.size(), 1u);
  EXPECT_EQ(diff.moves[0].from_instance, kInvalidInstanceId);
  EXPECT_EQ(diff.NumMigrations(), 0);  // First placement is not a migration.
}

TEST_F(ConfigDiffTest, IdenticalConfigIsNoOp) {
  AddTask(1, 100);
  AddInstance(100, p3_2x_, {1});
  context_.Finalize();
  ClusterConfig config;
  config.instances.push_back({p3_2x_, 100, {1}});
  const ConfigDiff diff = DiffConfig(context_, config);
  EXPECT_EQ(diff.NumLaunches(), 0);
  EXPECT_TRUE(diff.terminate.empty());
  EXPECT_TRUE(diff.moves.empty());
}

TEST_F(ConfigDiffTest, ReuseRequestHonored) {
  AddTask(1, 100);
  AddInstance(100, p3_2x_, {1});
  context_.Finalize();
  ClusterConfig config;
  config.instances.push_back({p3_2x_, 100, {1}});
  const ConfigDiff diff = DiffConfig(context_, config);
  ASSERT_EQ(diff.bindings.size(), 1u);
  EXPECT_EQ(diff.bindings[0].existing_id, 100);
}

TEST_F(ConfigDiffTest, ReuseRequestIgnoredOnTypeMismatch) {
  AddTask(1, 100);
  AddInstance(100, p3_2x_, {1});
  context_.Finalize();
  ClusterConfig config;
  config.instances.push_back({p3_8x_, 100, {1}});  // Wrong type for 100.
  const ConfigDiff diff = DiffConfig(context_, config);
  EXPECT_EQ(diff.bindings[0].existing_id, kInvalidInstanceId);
  EXPECT_EQ(diff.NumLaunches(), 1);
  // The old instance terminates, the task migrates.
  ASSERT_EQ(diff.terminate.size(), 1u);
  EXPECT_EQ(diff.terminate[0], 100);
  EXPECT_EQ(diff.NumMigrations(), 1);
}

TEST_F(ConfigDiffTest, GreedyMatchingPrefersMaxOverlap) {
  AddTask(1, 100);
  AddTask(2, 100);
  AddTask(3, 101);
  AddInstance(100, p3_8x_, {1, 2});
  AddInstance(101, p3_8x_, {3});
  context_.Finalize();
  // Scheduler returns the same layout without reuse hints.
  ClusterConfig config;
  config.instances.push_back({p3_8x_, kInvalidInstanceId, {3}});
  config.instances.push_back({p3_8x_, kInvalidInstanceId, {1, 2}});
  const ConfigDiff diff = DiffConfig(context_, config);
  EXPECT_EQ(diff.bindings[0].existing_id, 101);
  EXPECT_EQ(diff.bindings[1].existing_id, 100);
  EXPECT_TRUE(diff.moves.empty());
  EXPECT_TRUE(diff.terminate.empty());
}

TEST_F(ConfigDiffTest, ZeroOverlapSameTypeReuseAvoidsLaunch) {
  AddTask(1, 100);
  AddTask(2);
  AddInstance(100, p3_2x_, {1});
  context_.Finalize();
  // Task 1 finishes... actually scheduler moves task 2 onto a p3.2xlarge and
  // drops task 1's entry: same type, no overlap -> reuse instead of launch.
  ClusterConfig config;
  config.instances.push_back({p3_2x_, kInvalidInstanceId, {2}});
  const ConfigDiff diff = DiffConfig(context_, config);
  EXPECT_EQ(diff.bindings[0].existing_id, 100);
  EXPECT_EQ(diff.NumLaunches(), 0);
  ASSERT_EQ(diff.moves.size(), 1u);
  EXPECT_EQ(diff.moves[0].task, 2);
}

TEST_F(ConfigDiffTest, UnboundInstancesTerminate) {
  AddInstance(100, p3_2x_, {});
  AddInstance(101, c7i_xl_, {});
  context_.Finalize();
  const ConfigDiff diff = DiffConfig(context_, {});
  EXPECT_EQ(diff.terminate.size(), 2u);
}

TEST_F(ConfigDiffTest, MigrationDetection) {
  AddTask(1, 100);
  AddTask(2, 101);
  AddInstance(100, p3_2x_, {1});
  AddInstance(101, p3_2x_, {2});
  context_.Finalize();
  // Consolidate both onto a new p3.8xlarge.
  ClusterConfig config;
  config.instances.push_back({p3_8x_, kInvalidInstanceId, {1, 2}});
  const ConfigDiff diff = DiffConfig(context_, config);
  EXPECT_EQ(diff.NumLaunches(), 1);
  EXPECT_EQ(diff.NumMigrations(), 2);
  EXPECT_EQ(diff.terminate.size(), 2u);
}

TEST_F(ConfigDiffTest, MigrationCostPricesDelaysAtDestinationRate) {
  AddTask(1, 100, WorkloadRegistry::IdOf("GPT2"));  // ckpt 30s + launch 15s.
  AddInstance(100, p3_8x_, {1});
  context_.Finalize();
  ClusterConfig config;
  config.instances.push_back({p3_8x_, kInvalidInstanceId, {1}});
  ClusterConfig moved = config;
  // Force a migration by binding to a fresh instance: give the existing one
  // a conflicting reuse target.
  moved.instances[0].reuse_instance = kInvalidInstanceId;
  const ConfigDiff diff = DiffConfig(context_, moved);
  // Same type + overlap => matched, no migration, no cost.
  EXPECT_DOUBLE_EQ(
      EstimateMigrationCost(context_, diff, CloudDelayModel{}, 1.0), 0.0);

  // Now a genuinely different layout: move the task to a p3.2xlarge.
  ClusterConfig relocated;
  relocated.instances.push_back({p3_2x_, kInvalidInstanceId, {1}});
  const ConfigDiff diff2 = DiffConfig(context_, relocated);
  ASSERT_EQ(diff2.NumLaunches(), 1);
  ASSERT_EQ(diff2.NumMigrations(), 1);
  const Money expected = CostForUptime(3.06, 209.0) /* provisioning */ +
                         CostForUptime(3.06, 45.0) /* ckpt+launch */;
  EXPECT_NEAR(EstimateMigrationCost(context_, diff2, CloudDelayModel{}, 1.0), expected, 1e-9);
}

TEST_F(ConfigDiffTest, MigrationCostScalesWithMultiplier) {
  AddTask(1);
  context_.Finalize();
  ClusterConfig config;
  config.instances.push_back({p3_2x_, kInvalidInstanceId, {1}});
  const ConfigDiff diff = DiffConfig(context_, config);
  const Money base = EstimateMigrationCost(context_, diff, CloudDelayModel{}, 1.0);
  const Money doubled = EstimateMigrationCost(context_, diff, CloudDelayModel{}, 2.0);
  // Only the job launch delay scales; provisioning stays fixed.
  const Money launch_part = CostForUptime(3.06, WorkloadRegistry::Get(3).launch_delay_s);
  EXPECT_NEAR(doubled - base, launch_part, 1e-9);
}

}  // namespace
}  // namespace eva
