#include "src/sched/types.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

SchedulingContext MakeContext(const InstanceCatalog& catalog) {
  SchedulingContext context;
  context.catalog = &catalog;
  // Job 1 has two tasks (10, 11); job 2 has one (20).
  TaskInfo t10;
  t10.id = 10;
  t10.job = 1;
  t10.workload = 0;
  t10.demand_p3 = {1, 4, 24};
  t10.demand_cpu = {1, 4, 24};
  TaskInfo t11 = t10;
  t11.id = 11;
  TaskInfo t20;
  t20.id = 20;
  t20.job = 2;
  t20.workload = 7;
  t20.demand_p3 = {0, 10, 8};
  t20.demand_cpu = {0, 4, 8};
  context.tasks = {t10, t11, t20};
  InstanceInfo instance;
  instance.id = 5;
  instance.type_index = catalog.IndexOf("p3.2xlarge");
  instance.tasks = {10};
  context.instances = {instance};
  context.Finalize();
  return context;
}

TEST(SchedulingContextTest, FindTask) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  ASSERT_NE(context.FindTask(10), nullptr);
  EXPECT_EQ(context.FindTask(10)->job, 1);
  EXPECT_EQ(context.FindTask(999), nullptr);
}

TEST(SchedulingContextTest, FindInstance) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  ASSERT_NE(context.FindInstance(5), nullptr);
  EXPECT_EQ(context.FindInstance(5)->tasks.size(), 1u);
  EXPECT_EQ(context.FindInstance(99), nullptr);
}

TEST(SchedulingContextTest, JobTasksAndSize) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  EXPECT_EQ(context.JobSize(1), 2);
  EXPECT_EQ(context.JobSize(2), 1);
  EXPECT_EQ(context.JobSize(42), 0);
  EXPECT_TRUE(context.JobTasks(42).empty());
}

TEST(SchedulingContextTest, TaskDemandForFamily) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  const TaskInfo* a3c = context.FindTask(20);
  ASSERT_NE(a3c, nullptr);
  EXPECT_DOUBLE_EQ(a3c->DemandFor(InstanceFamily::kP3).cpus(), 10.0);
  EXPECT_DOUBLE_EQ(a3c->DemandFor(InstanceFamily::kC7i).cpus(), 4.0);
}

TEST(ClusterConfigTest, HourlyCost) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  ClusterConfig config;
  config.instances.push_back({catalog.IndexOf("p3.2xlarge"), kInvalidInstanceId, {}});
  config.instances.push_back({catalog.IndexOf("c7i.large"), kInvalidInstanceId, {}});
  EXPECT_NEAR(config.HourlyCost(catalog), 3.06 + 0.0893, 1e-9);
}

TEST(ClusterConfigTest, ValidateAcceptsGoodConfig) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  ClusterConfig config;
  config.instances.push_back({catalog.IndexOf("p3.8xlarge"), kInvalidInstanceId, {10, 11}});
  config.instances.push_back({catalog.IndexOf("c7i.2xlarge"), kInvalidInstanceId, {20}});
  EXPECT_FALSE(config.Validate(context).has_value());
}

TEST(ClusterConfigTest, ValidateRejectsDuplicateAssignment) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  ClusterConfig config;
  config.instances.push_back({catalog.IndexOf("p3.8xlarge"), kInvalidInstanceId, {10, 10}});
  EXPECT_TRUE(config.Validate(context).has_value());
}

TEST(ClusterConfigTest, ValidateRejectsCapacityOverflow) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  ClusterConfig config;
  // p3.2xlarge has 1 GPU but the two tasks need 2.
  config.instances.push_back({catalog.IndexOf("p3.2xlarge"), kInvalidInstanceId, {10, 11}});
  EXPECT_TRUE(config.Validate(context).has_value());
}

TEST(ClusterConfigTest, ValidateRejectsUnknownTask) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  ClusterConfig config;
  config.instances.push_back({catalog.IndexOf("p3.2xlarge"), kInvalidInstanceId, {777}});
  EXPECT_TRUE(config.Validate(context).has_value());
}

TEST(ClusterConfigTest, ValidateRejectsBadTypeIndex) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  ClusterConfig config;
  config.instances.push_back({999, kInvalidInstanceId, {}});
  EXPECT_TRUE(config.Validate(context).has_value());
}

TEST(ClusterConfigTest, ValidateUsesFamilySpecificDemand) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = MakeContext(catalog);
  ClusterConfig config;
  // A3C needs 10 CPUs on P3 but only 4 on C7i; c7i.2xlarge (4 cores) fits.
  config.instances.push_back({catalog.IndexOf("c7i.2xlarge"), kInvalidInstanceId, {20}});
  EXPECT_FALSE(config.Validate(context).has_value());
  // On a p3.2xlarge (4 cores) the P3 demand of 10 CPUs does not fit.
  ClusterConfig bad;
  bad.instances.push_back({catalog.IndexOf("p3.2xlarge"), kInvalidInstanceId, {20}});
  EXPECT_TRUE(bad.Validate(context).has_value());
}


TEST(RoundDeltaTest, EmptyTouchedCountAndClear) {
  RoundDelta delta;
  EXPECT_FALSE(delta.complete);
  EXPECT_TRUE(delta.Empty());
  EXPECT_EQ(delta.TouchedCount(), 0u);
  delta.complete = true;
  delta.jobs_arrived = {1, 2};
  delta.jobs_completed = {3};
  delta.tasks_retargeted = {4, 5, 6};
  delta.instances_launched = {7};
  delta.instances_terminated = {8};
  EXPECT_FALSE(delta.Empty());
  EXPECT_EQ(delta.TouchedCount(), 8u);
  delta.Clear();
  EXPECT_FALSE(delta.complete);
  EXPECT_TRUE(delta.Empty());
}

}  // namespace
}  // namespace eva
