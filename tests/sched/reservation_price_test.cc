#include "src/sched/reservation_price.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

// Context with the Table 3 tasks over the Table 3 catalog, plus an optional
// throughput table.
class ReservationPriceTest : public testing::Test {
 protected:
  ReservationPriceTest() : catalog_(InstanceCatalog::PaperExample()) {
    context_.catalog = &catalog_;
    const ResourceVector demands[] = {{2, 8, 24}, {1, 4, 10}, {0, 6, 20}, {0, 4, 12}};
    for (int i = 0; i < 4; ++i) {
      TaskInfo task;
      task.id = i + 1;
      task.job = i + 1;  // Single-task jobs.
      task.workload = i % WorkloadRegistry::NumWorkloads();
      task.demand_p3 = demands[i];
      task.demand_cpu = demands[i];
      context_.tasks.push_back(task);
    }
    context_.Finalize();
  }

  const TaskInfo& Task(int id) { return *context_.FindTask(id); }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  ThroughputTable table_{0.95};
};

TEST_F(ReservationPriceTest, Table3ReservationPrices) {
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(Task(1)), 12.0);
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(Task(2)), 3.0);
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(Task(3)), 0.8);
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(Task(4)), 0.4);
}

TEST_F(ReservationPriceTest, SetRpIsSumOfMembers) {
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.SetRp({&Task(1), &Task(2), &Task(4)}), 15.4);
}

TEST_F(ReservationPriceTest, TnrpWithoutPartnersEqualsRp) {
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.TaskTnrp(Task(1), {}), 12.0);
}

TEST_F(ReservationPriceTest, TnrpScalesByEstimatedThroughput) {
  // §4.3's example: tau1 at 0.8 and tau2 at 0.9 gives 12*0.8 + 3*0.9 = 12.3.
  table_.Record(Task(1).workload, {Task(2).workload}, 0.8);
  table_.Record(Task(2).workload, {Task(1).workload}, 0.9);
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {});
  EXPECT_NEAR(calculator.SetTnrp({&Task(1), &Task(2)}), 12.3, 1e-9);
}

TEST_F(ReservationPriceTest, SevereInterferenceBreaksCostEfficiency) {
  // §4.3: at 0.7/0.8 the pair is worth $10.8 < $12.
  table_.Record(Task(1).workload, {Task(2).workload}, 0.7);
  table_.Record(Task(2).workload, {Task(1).workload}, 0.8);
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {});
  EXPECT_NEAR(calculator.SetTnrp({&Task(1), &Task(2)}), 10.8, 1e-9);
}

TEST_F(ReservationPriceTest, InterferenceObliviousIgnoresTable) {
  table_.Record(Task(1).workload, {Task(2).workload}, 0.5);
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  EXPECT_DOUBLE_EQ(calculator.SetTnrp({&Task(1), &Task(2)}), 15.0);
}

TEST_F(ReservationPriceTest, NullEstimatorActsLikeNoInterference) {
  context_.throughput = nullptr;
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.SetTnrp({&Task(1), &Task(2)}), 15.0);
}

TEST_F(ReservationPriceTest, DefaultEstimateAppliesToUnseenPairs) {
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {});
  EXPECT_NEAR(calculator.SetTnrp({&Task(1), &Task(2)}), 0.95 * 12.0 + 0.95 * 3.0, 1e-9);
}

TEST_F(ReservationPriceTest, UnplaceableTaskHasZeroRp) {
  TaskInfo monster;
  monster.id = 99;
  monster.job = 99;
  monster.workload = 0;
  monster.demand_p3 = {64, 1, 1};
  monster.demand_cpu = {64, 1, 1};
  context_.tasks.push_back(monster);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(*context_.FindTask(99)), 0.0);
}

// Multi-task TNRP (§4.4).
class MultiTaskTnrpTest : public testing::Test {
 protected:
  MultiTaskTnrpTest() : catalog_(InstanceCatalog::PaperExample()) {
    context_.catalog = &catalog_;
    // One data-parallel job with 4 identical tasks (demand of tau2).
    for (int i = 0; i < 4; ++i) {
      TaskInfo task;
      task.id = i;
      task.job = 7;
      task.workload = 0;
      task.demand_p3 = {1, 4, 10};
      task.demand_cpu = {1, 4, 10};
      context_.tasks.push_back(task);
    }
    // A single-task job it can co-locate with.
    TaskInfo other;
    other.id = 10;
    other.job = 8;
    other.workload = 3;
    other.demand_p3 = {0, 4, 12};
    other.demand_cpu = {0, 4, 12};
    context_.tasks.push_back(other);
    context_.Finalize();
    context_.throughput = &table_;
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  ThroughputTable table_{0.95};
};

TEST_F(MultiTaskTnrpTest, StragglerPenaltyChargedToPlacement) {
  // RP of each job-7 task is $3 (it2). Co-locating one of them at tput 0.9
  // costs the *whole 4-task job* 0.1 of its value:
  // TNRP = 3 - 4 * (1 - 0.9) * 3 = 1.8.
  table_.Record(0, {3}, 0.9);
  const TnrpCalculator calculator(context_, {});
  const TaskInfo& task = *context_.FindTask(0);
  const TaskInfo& other = *context_.FindTask(10);
  EXPECT_NEAR(calculator.TaskTnrp(task, {&other}), 1.8, 1e-9);
}

TEST_F(MultiTaskTnrpTest, CanGoNegativeUnderSevereInterference) {
  table_.Record(0, {3}, 0.5);
  const TnrpCalculator calculator(context_, {});
  const TaskInfo& task = *context_.FindTask(0);
  const TaskInfo& other = *context_.FindTask(10);
  // 3 - 4 * 0.5 * 3 = -3.
  EXPECT_NEAR(calculator.TaskTnrp(task, {&other}), -3.0, 1e-9);
}

TEST_F(MultiTaskTnrpTest, SingleAwareModeTreatsTasksIndependently) {
  table_.Record(0, {3}, 0.9);
  const TnrpCalculator calculator(context_, {.multi_task_aware = false});
  const TaskInfo& task = *context_.FindTask(0);
  const TaskInfo& other = *context_.FindTask(10);
  EXPECT_NEAR(calculator.TaskTnrp(task, {&other}), 2.7, 1e-9);  // 0.9 * 3.
}

TEST_F(MultiTaskTnrpTest, SingleTaskJobUnaffectedByJobScaling) {
  table_.Record(3, {0}, 0.9);
  const TnrpCalculator calculator(context_, {});
  const TaskInfo& other = *context_.FindTask(10);
  const TaskInfo& task = *context_.FindTask(0);
  // Job 8 has one task: plain tput * RP. RP(other) = $0.4 (it4).
  EXPECT_NEAR(calculator.TaskTnrp(other, {&task}), 0.36, 1e-9);
}

}  // namespace
}  // namespace eva
