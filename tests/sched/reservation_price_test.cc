#include "src/sched/reservation_price.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "src/common/rng.h"

namespace eva {
namespace {

// Context with the Table 3 tasks over the Table 3 catalog, plus an optional
// throughput table.
class ReservationPriceTest : public testing::Test {
 protected:
  ReservationPriceTest() : catalog_(InstanceCatalog::PaperExample()) {
    context_.catalog = &catalog_;
    const ResourceVector demands[] = {{2, 8, 24}, {1, 4, 10}, {0, 6, 20}, {0, 4, 12}};
    for (int i = 0; i < 4; ++i) {
      TaskInfo task;
      task.id = i + 1;
      task.job = i + 1;  // Single-task jobs.
      task.workload = i % WorkloadRegistry::NumWorkloads();
      task.demand_p3 = demands[i];
      task.demand_cpu = demands[i];
      context_.tasks.push_back(task);
    }
    context_.Finalize();
  }

  const TaskInfo& Task(int id) { return *context_.FindTask(id); }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  ThroughputTable table_{0.95};
};

TEST_F(ReservationPriceTest, Table3ReservationPrices) {
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(Task(1)), 12.0);
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(Task(2)), 3.0);
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(Task(3)), 0.8);
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(Task(4)), 0.4);
}

TEST_F(ReservationPriceTest, SetRpIsSumOfMembers) {
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.SetRp({&Task(1), &Task(2), &Task(4)}), 15.4);
}

TEST_F(ReservationPriceTest, TnrpWithoutPartnersEqualsRp) {
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.TaskTnrp(Task(1), {}), 12.0);
}

TEST_F(ReservationPriceTest, TnrpScalesByEstimatedThroughput) {
  // §4.3's example: tau1 at 0.8 and tau2 at 0.9 gives 12*0.8 + 3*0.9 = 12.3.
  table_.Record(Task(1).workload, {Task(2).workload}, 0.8);
  table_.Record(Task(2).workload, {Task(1).workload}, 0.9);
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {});
  EXPECT_NEAR(calculator.SetTnrp({&Task(1), &Task(2)}), 12.3, 1e-9);
}

TEST_F(ReservationPriceTest, SevereInterferenceBreaksCostEfficiency) {
  // §4.3: at 0.7/0.8 the pair is worth $10.8 < $12.
  table_.Record(Task(1).workload, {Task(2).workload}, 0.7);
  table_.Record(Task(2).workload, {Task(1).workload}, 0.8);
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {});
  EXPECT_NEAR(calculator.SetTnrp({&Task(1), &Task(2)}), 10.8, 1e-9);
}

TEST_F(ReservationPriceTest, InterferenceObliviousIgnoresTable) {
  table_.Record(Task(1).workload, {Task(2).workload}, 0.5);
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  EXPECT_DOUBLE_EQ(calculator.SetTnrp({&Task(1), &Task(2)}), 15.0);
}

TEST_F(ReservationPriceTest, NullEstimatorActsLikeNoInterference) {
  context_.throughput = nullptr;
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.SetTnrp({&Task(1), &Task(2)}), 15.0);
}

TEST_F(ReservationPriceTest, DefaultEstimateAppliesToUnseenPairs) {
  context_.throughput = &table_;
  const TnrpCalculator calculator(context_, {});
  EXPECT_NEAR(calculator.SetTnrp({&Task(1), &Task(2)}), 0.95 * 12.0 + 0.95 * 3.0, 1e-9);
}

TEST_F(ReservationPriceTest, UnplaceableTaskHasZeroRp) {
  TaskInfo monster;
  monster.id = 99;
  monster.job = 99;
  monster.workload = 0;
  monster.demand_p3 = {64, 1, 1};
  monster.demand_cpu = {64, 1, 1};
  context_.tasks.push_back(monster);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(*context_.FindTask(99)), 0.0);
}

// Multi-task TNRP (§4.4).
class MultiTaskTnrpTest : public testing::Test {
 protected:
  MultiTaskTnrpTest() : catalog_(InstanceCatalog::PaperExample()) {
    context_.catalog = &catalog_;
    // One data-parallel job with 4 identical tasks (demand of tau2).
    for (int i = 0; i < 4; ++i) {
      TaskInfo task;
      task.id = i;
      task.job = 7;
      task.workload = 0;
      task.demand_p3 = {1, 4, 10};
      task.demand_cpu = {1, 4, 10};
      context_.tasks.push_back(task);
    }
    // A single-task job it can co-locate with.
    TaskInfo other;
    other.id = 10;
    other.job = 8;
    other.workload = 3;
    other.demand_p3 = {0, 4, 12};
    other.demand_cpu = {0, 4, 12};
    context_.tasks.push_back(other);
    context_.Finalize();
    context_.throughput = &table_;
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  ThroughputTable table_{0.95};
};

TEST_F(MultiTaskTnrpTest, StragglerPenaltyChargedToPlacement) {
  // RP of each job-7 task is $3 (it2). Co-locating one of them at tput 0.9
  // costs the *whole 4-task job* 0.1 of its value:
  // TNRP = 3 - 4 * (1 - 0.9) * 3 = 1.8.
  table_.Record(0, {3}, 0.9);
  const TnrpCalculator calculator(context_, {});
  const TaskInfo& task = *context_.FindTask(0);
  const TaskInfo& other = *context_.FindTask(10);
  EXPECT_NEAR(calculator.TaskTnrp(task, {&other}), 1.8, 1e-9);
}

TEST_F(MultiTaskTnrpTest, CanGoNegativeUnderSevereInterference) {
  table_.Record(0, {3}, 0.5);
  const TnrpCalculator calculator(context_, {});
  const TaskInfo& task = *context_.FindTask(0);
  const TaskInfo& other = *context_.FindTask(10);
  // 3 - 4 * 0.5 * 3 = -3.
  EXPECT_NEAR(calculator.TaskTnrp(task, {&other}), -3.0, 1e-9);
}

TEST_F(MultiTaskTnrpTest, SingleAwareModeTreatsTasksIndependently) {
  table_.Record(0, {3}, 0.9);
  const TnrpCalculator calculator(context_, {.multi_task_aware = false});
  const TaskInfo& task = *context_.FindTask(0);
  const TaskInfo& other = *context_.FindTask(10);
  EXPECT_NEAR(calculator.TaskTnrp(task, {&other}), 2.7, 1e-9);  // 0.9 * 3.
}

TEST_F(MultiTaskTnrpTest, SingleTaskJobUnaffectedByJobScaling) {
  table_.Record(3, {0}, 0.9);
  const TnrpCalculator calculator(context_, {});
  const TaskInfo& other = *context_.FindTask(10);
  const TaskInfo& task = *context_.FindTask(0);
  // Job 8 has one task: plain tput * RP. RP(other) = $0.4 (it4).
  EXPECT_NEAR(calculator.TaskTnrp(other, {&task}), 0.36, 1e-9);
}

TEST(ThroughputTableVersionTest, RecordBumpsOnlyOnValueChange) {
  ThroughputTable table(0.95);
  EXPECT_EQ(table.Version(), 0u);
  EXPECT_TRUE(table.Record(2, {5}, 0.8));
  const std::uint64_t v1 = table.Version();
  EXPECT_GT(v1, 0u);
  EXPECT_GT(table.RowVersion(2), 0u);
  EXPECT_EQ(table.RowVersion(5), 0u);  // Only workload 2's row changed.
  // Re-recording the identical value must not invalidate anything.
  EXPECT_FALSE(table.Record(2, {5}, 0.8));
  EXPECT_EQ(table.Version(), v1);
  // A different value must.
  EXPECT_TRUE(table.Record(2, {5}, 0.7));
  EXPECT_GT(table.Version(), v1);
}

// Satellite: memoized TNRP equals a freshly constructed calculator after
// arbitrary sequences of job arrival / completion / observation deltas. The
// persistent calculator Rebind()s across rounds and must invalidate exactly
// the entries the deltas touched.
TEST(TnrpMemoizationPropertyTest, MatchesFreshCalculatorUnderDeltaSequences) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  Rng rng(1234);

  ThroughputTable table(0.95);
  std::vector<TaskInfo> live;  // Current task population.
  TaskId next_task_id = 0;
  JobId next_job_id = 0;

  // Context rebuilt each "round" from the live population, like the
  // simulator does. Storage outlives the round for the persistent binding.
  SchedulingContext context;
  const auto rebuild_context = [&] {
    context = SchedulingContext();
    context.catalog = &catalog;
    context.throughput = &table;
    context.tasks = live;
    context.Finalize();
  };
  rebuild_context();
  TnrpCalculator memoized(context, {});

  for (int round = 0; round < 60; ++round) {
    // Random delta: arrivals (possibly multi-task), completions, and new
    // throughput observations.
    const int arrivals = static_cast<int>(rng.UniformInt(0, 2));
    for (int a = 0; a < arrivals; ++a) {
      const WorkloadId workload =
          static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
      const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
      const int num_tasks = rng.Bernoulli(0.3) ? 2 : 1;
      const JobId job = next_job_id++;
      for (int t = 0; t < num_tasks; ++t) {
        TaskInfo task;
        task.id = next_task_id++;
        task.job = job;
        task.workload = workload;
        task.demand_p3 = spec.demand_p3;
        task.demand_cpu = spec.demand_cpu;
        live.push_back(task);
      }
    }
    while (!live.empty() && rng.Bernoulli(0.2)) {
      // Complete a random job (all of its tasks leave together).
      const JobId job = live[static_cast<std::size_t>(
                                 rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1))]
                            .job;
      live.erase(std::remove_if(live.begin(), live.end(),
                                [job](const TaskInfo& task) { return task.job == job; }),
                 live.end());
    }
    const int observations = static_cast<int>(rng.UniformInt(0, 3));
    for (int o = 0; o < observations; ++o) {
      const WorkloadId w =
          static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
      const WorkloadId p =
          static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
      table.Record(w, {p}, rng.Uniform(0.5, 1.0));
    }

    rebuild_context();
    memoized.Rebind(context);
    const TnrpCalculator fresh(context, {});

    if (context.tasks.empty()) {
      continue;
    }
    // Compare on random sets and co-locations, with and without a family.
    for (int probe = 0; probe < 8; ++probe) {
      std::vector<const TaskInfo*> set;
      const int size = static_cast<int>(
          rng.UniformInt(1, std::min<std::int64_t>(4, static_cast<std::int64_t>(
                                                          context.tasks.size()))));
      for (int s = 0; s < size; ++s) {
        set.push_back(&context.tasks[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(context.tasks.size()) - 1))]);
      }
      const std::optional<InstanceFamily> family =
          rng.Bernoulli(0.5) ? std::optional<InstanceFamily>(InstanceFamily::kC7i)
                             : std::nullopt;
      ASSERT_EQ(memoized.ReservationPrice(*set.front()),
                fresh.ReservationPrice(*set.front()));
      ASSERT_EQ(memoized.SetTnrp(set, family), fresh.SetTnrp(set, family))
          << "round " << round << " probe " << probe;
      std::vector<const TaskInfo*> partners(set.begin() + 1, set.end());
      ASSERT_EQ(memoized.TaskTnrp(*set.front(), partners, family),
                fresh.TaskTnrp(*set.front(), partners, family));
      if (set.size() >= 2) {
        std::vector<const TaskInfo*> members(set.begin(), set.end() - 1);
        ASSERT_EQ(memoized.SetTnrpPlusOne(members, *set.back(), family),
                  fresh.SetTnrp(set, family));
      }
    }
  }
  // The memoized calculator must actually be memoizing.
  EXPECT_GT(memoized.cache_stats().tnrp_hits + memoized.cache_stats().set_hits, 0u);
}

}  // namespace
}  // namespace eva
