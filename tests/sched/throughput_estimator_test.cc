#include "src/sched/throughput_estimator.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(ThroughputTableTest, EmptyPartnersIsOne) {
  const ThroughputTable table(0.95);
  EXPECT_DOUBLE_EQ(table.Estimate(0, {}), 1.0);
}

TEST(ThroughputTableTest, UnknownPairUsesDefault) {
  const ThroughputTable table(0.95);
  EXPECT_DOUBLE_EQ(table.Estimate(0, {1}), 0.95);
  EXPECT_NEAR(table.Estimate(0, {1, 2}), 0.95 * 0.95, 1e-12);
}

TEST(ThroughputTableTest, ConfigurableDefault) {
  const ThroughputTable table(0.8);
  EXPECT_DOUBLE_EQ(table.Estimate(3, {4}), 0.8);
}

TEST(ThroughputTableTest, ExactEntryWins) {
  ThroughputTable table(0.95);
  table.Record(0, {1, 2}, 0.7);
  EXPECT_DOUBLE_EQ(table.Estimate(0, {1, 2}), 0.7);
  // Order of partners must not matter.
  EXPECT_DOUBLE_EQ(table.Estimate(0, {2, 1}), 0.7);
}

TEST(ThroughputTableTest, PairwiseProductFallback) {
  ThroughputTable table(0.95);
  table.Record(0, {1}, 0.9);
  table.Record(0, {2}, 0.8);
  // No exact entry for {1,2}: product of recorded pairwise values.
  EXPECT_NEAR(table.Estimate(0, {1, 2}), 0.72, 1e-12);
  // Mixed: one recorded, one default.
  EXPECT_NEAR(table.Estimate(0, {1, 3}), 0.9 * 0.95, 1e-12);
}

TEST(ThroughputTableTest, MultiplicityMatters) {
  ThroughputTable table(0.95);
  table.Record(0, {1}, 0.9);
  EXPECT_NEAR(table.Estimate(0, {1, 1}), 0.81, 1e-12);
}

TEST(ThroughputTableTest, RecordOverwrites) {
  ThroughputTable table(0.95);
  table.Record(0, {1}, 0.9);
  table.Record(0, {1}, 0.6);
  EXPECT_DOUBLE_EQ(table.Estimate(0, {1}), 0.6);
  EXPECT_EQ(table.NumEntries(), 1u);
}

TEST(ThroughputTableTest, LookupExactOnly) {
  ThroughputTable table(0.95);
  table.Record(0, {1}, 0.9);
  EXPECT_TRUE(table.Lookup(0, {1}).has_value());
  EXPECT_FALSE(table.Lookup(0, {1, 2}).has_value());
  EXPECT_FALSE(table.Lookup(1, {0}).has_value());
}

TEST(ThroughputTableTest, DirectionalEntries) {
  ThroughputTable table(0.95);
  table.Record(0, {1}, 0.9);
  // The entry records the throughput *of workload 0*; workload 1's view is
  // independent.
  EXPECT_DOUBLE_EQ(table.Estimate(1, {0}), 0.95);
}

TEST(OracleThroughputTest, MatchesInterferenceModel) {
  const InterferenceModel model = InterferenceModel::Measured();
  const OracleThroughput oracle(&model);
  const WorkloadId gcn = WorkloadRegistry::IdOf("GCN");
  const WorkloadId a3c = WorkloadRegistry::IdOf("A3C");
  EXPECT_DOUBLE_EQ(oracle.Estimate(gcn, {a3c}), 0.65);
  EXPECT_DOUBLE_EQ(oracle.Estimate(gcn, {}), 1.0);
  EXPECT_NEAR(oracle.Estimate(gcn, {a3c, a3c}), 0.65 * 0.65, 1e-12);
}

}  // namespace
}  // namespace eva
