// Property-based tests: invariants that must hold for arbitrary seeds,
// exercised with parameterized sweeps.

#include <gtest/gtest.h>

#include <set>

#include "src/core/full_reconfig.h"
#include "src/core/partial_reconfig.h"
#include "src/core/throughput_monitor.h"
#include "src/sched/config_diff.h"
#include "src/sim/experiment.h"
#include "src/solver/bnb_solver.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

SchedulingContext RandomContext(int num_tasks, std::uint64_t seed,
                                const InstanceCatalog& catalog, double placed_fraction,
                                std::vector<InstanceId>* instances_out = nullptr) {
  Rng rng(seed);
  SchedulingContext context;
  context.catalog = &catalog;
  for (int i = 0; i < num_tasks; ++i) {
    const WorkloadId workload =
        static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
    const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
    TaskInfo task;
    task.id = i;
    task.job = i;
    task.workload = workload;
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    task.remaining_work_s = rng.Uniform(600.0, 7200.0);
    context.tasks.push_back(task);
  }
  // Optionally pre-place a fraction of tasks, each alone on its RP instance
  // (a always-valid starting cluster).
  InstanceId next_instance = 1000;
  for (TaskInfo& task : context.tasks) {
    if (!rng.Bernoulli(placed_fraction)) {
      continue;
    }
    const auto type = catalog.CheapestFitting(
        [&task](InstanceFamily family) { return task.DemandFor(family); });
    if (!type.has_value()) {
      continue;
    }
    InstanceInfo instance;
    instance.id = next_instance++;
    instance.type_index = *type;
    instance.tasks = {task.id};
    task.current_instance = instance.id;
    context.instances.push_back(instance);
    if (instances_out != nullptr) {
      instances_out->push_back(instance.id);
    }
  }
  context.Finalize();
  return context;
}

// ---------- Packing invariants across seeds ----------

class PackingPropertyTest : public testing::TestWithParam<int> {};

TEST_P(PackingPropertyTest, PartialConfigIsAlwaysValidAndComplete) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = RandomContext(40, GetParam(), catalog, 0.5);
  ThroughputTable table(0.95);
  SchedulingContext ctx = context;
  ctx.throughput = &table;
  const TnrpCalculator calculator(ctx, {});
  const ClusterConfig config = PartialReconfiguration(ctx, calculator);
  EXPECT_FALSE(config.Validate(ctx).has_value());
  std::set<TaskId> seen;
  for (const ConfigInstance& instance : config.instances) {
    for (TaskId id : instance.tasks) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), ctx.tasks.size());
}

TEST_P(PackingPropertyTest, FullConfigCostNeverAboveReservationPriceSum) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = RandomContext(40, GetParam(), catalog, 0.0);
  const TnrpCalculator calculator(context, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  Money rp_sum = 0.0;
  for (const TaskInfo& task : context.tasks) {
    rp_sum += calculator.ReservationPrice(task);
  }
  EXPECT_LE(config.HourlyCost(catalog), rp_sum + 1e-9);
}

TEST_P(PackingPropertyTest, FullConfigNeverBeatsSolverLowerBound) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = RandomContext(20, GetParam(), catalog, 0.0);
  const TnrpCalculator calculator(context, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  std::vector<const TaskInfo*> tasks;
  for (const TaskInfo& task : context.tasks) {
    tasks.push_back(&task);
  }
  EXPECT_GE(config.HourlyCost(catalog) + 1e-9, PackingLowerBound(context, tasks));
}

TEST_P(PackingPropertyTest, DiffOfOwnConfigIsIdempotent) {
  // Applying a config and immediately re-diffing the same config against
  // the resulting cluster must be a no-op.
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  SchedulingContext context = RandomContext(30, GetParam(), catalog, 0.0);
  const TnrpCalculator calculator(context, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context, calculator);

  // Materialize the config as the running cluster.
  SchedulingContext after;
  after.catalog = &catalog;
  after.tasks = context.tasks;
  InstanceId next_id = 0;
  for (const ConfigInstance& instance : config.instances) {
    InstanceInfo info;
    info.id = next_id++;
    info.type_index = instance.type_index;
    info.tasks = instance.tasks;
    for (TaskInfo& task : after.tasks) {
      for (TaskId id : instance.tasks) {
        if (task.id == id) {
          task.current_instance = info.id;
        }
      }
    }
    after.instances.push_back(info);
  }
  after.Finalize();
  const ConfigDiff diff = DiffConfig(after, config);
  EXPECT_EQ(diff.NumLaunches(), 0);
  EXPECT_EQ(diff.NumMigrations(), 0);
  EXPECT_TRUE(diff.terminate.empty());
  EXPECT_TRUE(diff.moves.empty());
}

TEST_P(PackingPropertyTest, SolverNeverWorseThanHeuristicAndBoundedBelow) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = RandomContext(10, GetParam(), catalog, 0.0);
  const TnrpCalculator calculator(context, {.interference_aware = false});
  const Money heuristic = FullReconfiguration(context, calculator).HourlyCost(catalog);
  SolverOptions options;
  options.time_limit_seconds = 2.0;
  const SolverResult solved = SolveOptimalPacking(context, options);
  std::vector<const TaskInfo*> tasks;
  for (const TaskInfo& task : context.tasks) {
    tasks.push_back(&task);
  }
  EXPECT_LE(solved.hourly_cost, heuristic + 1e-9);
  EXPECT_GE(solved.hourly_cost + 1e-9, PackingLowerBound(context, tasks));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackingPropertyTest, testing::Range(100, 112));

// ---------- Monitor invariants ----------

class MonitorPropertyTest : public testing::TestWithParam<int> {};

TEST_P(MonitorPropertyTest, TableEntriesNeverExceedTruthUnderExactObservations) {
  // Random multi-task jobs with random ground-truth pairwise interference:
  // after any observation sequence, every recorded entry must stay at or
  // below the true co-location throughput of its key (lower-bound claim of
  // §4.4), given noise-free observations.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const InterferenceModel truth = InterferenceModel::Measured();
  ThroughputMonitor monitor(0.95);

  for (int round = 0; round < 200; ++round) {
    const int num_tasks = static_cast<int>(rng.UniformInt(1, 4));
    JobThroughputObservation observation;
    observation.job = round;
    double job_tput = 1.0;
    for (int t = 0; t < num_tasks; ++t) {
      TaskPlacementObservation placement;
      placement.task = t;
      placement.workload =
          static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
      const int neighbors = static_cast<int>(rng.UniformInt(0, 3));
      for (int n = 0; n < neighbors; ++n) {
        placement.colocated.push_back(
            static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1)));
      }
      job_tput = std::min(job_tput, truth.Throughput(placement.workload, placement.colocated));
      observation.tasks.push_back(std::move(placement));
    }
    observation.normalized_throughput = job_tput;
    monitor.Observe({observation});

    // Check the lower-bound invariant for every key we can reconstruct.
    for (const TaskPlacementObservation& placement : observation.tasks) {
      const auto entry =
          monitor.table().Lookup(placement.workload, placement.colocated);
      if (entry.has_value()) {
        EXPECT_LE(*entry,
                  truth.Throughput(placement.workload, placement.colocated) + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorPropertyTest, testing::Range(1, 7));

// ---------- End-to-end invariants ----------

struct EndToEndCase {
  SchedulerKind kind;
  std::uint64_t seed;
};

class EndToEndPropertyTest : public testing::TestWithParam<EndToEndCase> {};

TEST_P(EndToEndPropertyTest, ConservationAndSanity) {
  const EndToEndCase param = GetParam();
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 12;
  trace_options.mean_interarrival_s = 10 * kSecondsPerMinute;
  trace_options.seed = param.seed;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  const std::vector<ExperimentResult> results =
      RunComparison(trace, {param.kind}, options);
  const SimulationMetrics& metrics = results[0].metrics;
  // Conservation: every submitted job completes; every launched instance
  // eventually terminates (and is accounted in the uptime list).
  EXPECT_EQ(metrics.jobs_completed, metrics.jobs_submitted);
  EXPECT_EQ(static_cast<int>(metrics.instance_uptime_hours.size()),
            metrics.instances_launched);
  // Sanity: throughput in (0, 1]; JCT at least the standalone duration.
  EXPECT_GT(metrics.avg_norm_job_throughput, 0.0);
  EXPECT_LE(metrics.avg_norm_job_throughput, 1.0 + 1e-9);
  EXPECT_GT(metrics.total_cost, 0.0);
  EXPECT_GE(metrics.avg_job_idle_hours, 0.0);
  for (double jct : metrics.jct_hours) {
    EXPECT_GT(jct, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EndToEndPropertyTest,
    testing::Values(EndToEndCase{SchedulerKind::kNoPacking, 1},
                    EndToEndCase{SchedulerKind::kNoPacking, 2},
                    EndToEndCase{SchedulerKind::kStratus, 1},
                    EndToEndCase{SchedulerKind::kStratus, 2},
                    EndToEndCase{SchedulerKind::kSynergy, 1},
                    EndToEndCase{SchedulerKind::kSynergy, 2},
                    EndToEndCase{SchedulerKind::kOwl, 1},
                    EndToEndCase{SchedulerKind::kOwl, 2},
                    EndToEndCase{SchedulerKind::kEva, 1},
                    EndToEndCase{SchedulerKind::kEva, 2},
                    EndToEndCase{SchedulerKind::kEvaFullOnly, 1},
                    EndToEndCase{SchedulerKind::kEvaPartialOnly, 1},
                    EndToEndCase{SchedulerKind::kEvaRp, 1},
                    EndToEndCase{SchedulerKind::kEvaSingle, 1}));

}  // namespace
}  // namespace eva
