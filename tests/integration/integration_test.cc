// Cross-module integration tests: full traces through the scheduler +
// simulator stack, checking the paper's qualitative claims end to end.

#include <gtest/gtest.h>

#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

TEST(IntegrationTest, EvaBeatsNoPackingOnPackableTrace) {
  // A dense synthetic trace (arrivals every 5 minutes) gives plenty of
  // co-location opportunity; Eva must come out cheaper.
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 24;
  trace_options.mean_interarrival_s = 5 * kSecondsPerMinute;
  trace_options.seed = 41;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  const std::vector<ExperimentResult> results = RunComparison(
      trace, {SchedulerKind::kNoPacking, SchedulerKind::kEva}, options);
  EXPECT_LT(results[1].normalized_cost, 0.98);
}

TEST(IntegrationTest, EvaRpPacksMoreButLosesThroughputUnderInterference) {
  // Figure 4's mechanism at small scale: with harsh uniform interference,
  // interference-oblivious packing (Eva-RP) hurts throughput vs Eva-TNRP.
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 20;
  trace_options.mean_interarrival_s = 5 * kSecondsPerMinute;
  trace_options.seed = 42;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  options.interference = InterferenceModel::Uniform(0.8);
  const std::vector<ExperimentResult> results = RunComparison(
      trace, {SchedulerKind::kEvaRp, SchedulerKind::kEva}, options);
  EXPECT_LE(results[0].metrics.avg_norm_job_throughput,
            results[1].metrics.avg_norm_job_throughput + 1e-9);
}

TEST(IntegrationTest, NoInterferenceMeansFullThroughputForNoPacking) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 10;
  trace_options.seed = 43;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  const std::vector<ExperimentResult> results =
      RunComparison(trace, {SchedulerKind::kNoPacking}, options);
  EXPECT_DOUBLE_EQ(results[0].metrics.avg_norm_job_throughput, 1.0);
  EXPECT_EQ(results[0].metrics.task_migrations, 0);
}

TEST(IntegrationTest, HigherMigrationDelayReducesEvaMigrations) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 20;
  trace_options.mean_interarrival_s = 5 * kSecondsPerMinute;
  trace_options.seed = 44;
  const Trace trace = GenerateSyntheticTrace(trace_options);

  ExperimentOptions cheap;
  const auto at1 = RunComparison(trace, {SchedulerKind::kEva}, cheap);

  ExperimentOptions expensive;
  expensive.simulator.migration_delay_multiplier = 16.0;
  expensive.eva.migration_delay_multiplier = 16.0;
  const auto at16 = RunComparison(trace, {SchedulerKind::kEva}, expensive);

  EXPECT_LE(at16[0].metrics.task_migrations, at1[0].metrics.task_migrations);
}

TEST(IntegrationTest, MultiTaskAwarenessDoesNotLoseToSingle) {
  MultiTaskMicroOptions trace_options;
  trace_options.num_jobs = 16;
  trace_options.seed = 45;
  const Trace trace = GenerateMultiTaskMicroTrace(trace_options);
  ExperimentOptions options;
  const std::vector<ExperimentResult> results = RunComparison(
      trace, {SchedulerKind::kNoPacking, SchedulerKind::kEvaSingle, SchedulerKind::kEva},
      options);
  // Both Eva variants must not exceed No-Packing by more than noise, and
  // Eva-Multi should not be materially worse than Eva-Single.
  EXPECT_LT(results[2].normalized_cost, 1.05);
  EXPECT_LT(results[2].normalized_cost, results[1].normalized_cost + 0.10);
}

TEST(IntegrationTest, SimulatedAndPhysicalModesStayClose) {
  // Table 12's fidelity claim in miniature.
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 16;
  trace_options.seed = 46;
  const Trace trace = GenerateSyntheticTrace(trace_options);

  ExperimentOptions simulated;
  const auto sim = RunComparison(trace, {SchedulerKind::kNoPacking}, simulated);

  ExperimentOptions physical;
  physical.simulator.physical_mode = true;
  physical.simulator.seed = 7;
  const auto phys = RunComparison(trace, {SchedulerKind::kNoPacking}, physical);

  const double diff = std::abs(sim[0].metrics.total_cost - phys[0].metrics.total_cost) /
                      phys[0].metrics.total_cost;
  EXPECT_LT(diff, 0.10);
}

TEST(IntegrationTest, ArrivalRateScalingPreservesCompletion) {
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = 40;
  trace_options.seed = 47;
  const Trace base = GenerateAlibabaTrace(trace_options);
  for (double rate : {0.5, 3.0}) {
    const Trace trace = WithArrivalRate(base, rate);
    ExperimentOptions options;
    const auto results = RunComparison(trace, {SchedulerKind::kEva}, options);
    EXPECT_EQ(results[0].metrics.jobs_completed, results[0].metrics.jobs_submitted)
        << "rate " << rate;
  }
}

TEST(IntegrationTest, AlibabaTraceRunsUnderAllSchedulers) {
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = 60;
  trace_options.seed = 48;
  const Trace trace = GenerateAlibabaTrace(trace_options);
  ExperimentOptions options;
  const std::vector<ExperimentResult> results = RunComparison(
      trace,
      {SchedulerKind::kNoPacking, SchedulerKind::kStratus, SchedulerKind::kSynergy,
       SchedulerKind::kOwl, SchedulerKind::kEva},
      options);
  for (const ExperimentResult& result : results) {
    EXPECT_EQ(result.metrics.jobs_completed, 60) << SchedulerKindName(result.kind);
    EXPECT_GT(result.metrics.total_cost, 0.0);
  }
  // Eva is the cheapest packer on this trace (paper's headline ordering).
  EXPECT_LE(results[4].normalized_cost, results[0].normalized_cost + 1e-9);
}

TEST(IntegrationTest, EvaLearnsMeasuredInterferenceOnline) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 40;
  trace_options.mean_interarrival_s = 4 * kSecondsPerMinute;
  trace_options.seed = 49;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  EvaScheduler scheduler;
  SimulatorOptions sim_options;
  RunSimulation(trace, &scheduler, catalog, interference, sim_options);
  // The run must have produced real observations; every learned entry is a
  // valid lower bound (<= 1).
  EXPECT_GT(scheduler.throughput_table().NumEntries(), 0u);
}

}  // namespace
}  // namespace eva
