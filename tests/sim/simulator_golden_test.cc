// Golden-equivalence tests for the incremental event-driven engine.
//
// The expected values below were recorded from the pre-refactor engine
// (commit 801f02c, the last full-rescan Simulator::Impl) on three fixed
// traces. The incremental engine must reproduce them bit-for-bit in
// simulated mode: every optimization — dirty-set rate recomputation, cached
// capacity/allocation sums, candidate-set completion checks — is designed to
// perform the exact same floating-point operations as a full rescan, only
// less often. Physical mode is additionally exercised with a (tight)
// tolerance, per the stochastic-delay contract.

#include <gtest/gtest.h>

#include <utility>

#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

struct GoldenValues {
  double total_cost;
  int jobs_submitted;
  int jobs_completed;
  int tasks_total;
  int instances_launched;
  int task_migrations;
  double migrations_per_task;
  double avg_tasks_per_instance;
  double avg_alloc_gpu;
  double avg_alloc_cpu;
  double avg_alloc_ram;
  double avg_norm_job_throughput;
  double avg_jct_hours;
  double avg_job_idle_hours;
  double makespan_s;
  int scheduling_rounds;
  std::size_t jct_size;
  double jct_sum;
  std::size_t uptime_size;
  double uptime_sum;
};

double Sum(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum;
}

// Bit-exact comparison (simulated mode): EXPECT_EQ on doubles, not
// EXPECT_DOUBLE_EQ, which tolerates 4 ULPs.
void ExpectBitExact(const SimulationMetrics& m, const GoldenValues& g) {
  EXPECT_EQ(m.total_cost, g.total_cost);
  EXPECT_EQ(m.jobs_submitted, g.jobs_submitted);
  EXPECT_EQ(m.jobs_completed, g.jobs_completed);
  EXPECT_EQ(m.tasks_total, g.tasks_total);
  EXPECT_EQ(m.instances_launched, g.instances_launched);
  EXPECT_EQ(m.task_migrations, g.task_migrations);
  EXPECT_EQ(m.migrations_per_task, g.migrations_per_task);
  EXPECT_EQ(m.avg_tasks_per_instance, g.avg_tasks_per_instance);
  EXPECT_EQ(m.avg_alloc_gpu, g.avg_alloc_gpu);
  EXPECT_EQ(m.avg_alloc_cpu, g.avg_alloc_cpu);
  EXPECT_EQ(m.avg_alloc_ram, g.avg_alloc_ram);
  EXPECT_EQ(m.avg_norm_job_throughput, g.avg_norm_job_throughput);
  EXPECT_EQ(m.avg_jct_hours, g.avg_jct_hours);
  EXPECT_EQ(m.avg_job_idle_hours, g.avg_job_idle_hours);
  EXPECT_EQ(m.makespan_s, g.makespan_s);
  EXPECT_EQ(m.scheduling_rounds, g.scheduling_rounds);
  ASSERT_EQ(m.jct_hours.size(), g.jct_size);
  EXPECT_EQ(Sum(m.jct_hours), g.jct_sum);
  ASSERT_EQ(m.instance_uptime_hours.size(), g.uptime_size);
  EXPECT_EQ(Sum(m.instance_uptime_hours), g.uptime_sum);
}

// Physical mode: same recorded-run comparison, but allow a relative drift
// per the stochastic-delay contract (the engine happens to reproduce the
// seed's RNG draw order exactly, so this passes far inside the tolerance).
void ExpectWithinTolerance(const SimulationMetrics& m, const GoldenValues& g, double rel) {
  EXPECT_EQ(m.jobs_submitted, g.jobs_submitted);
  EXPECT_EQ(m.jobs_completed, g.jobs_completed);
  EXPECT_EQ(m.instances_launched, g.instances_launched);
  EXPECT_EQ(m.task_migrations, g.task_migrations);
  EXPECT_NEAR(m.total_cost, g.total_cost, rel * g.total_cost);
  EXPECT_NEAR(m.avg_tasks_per_instance, g.avg_tasks_per_instance,
              rel * g.avg_tasks_per_instance);
  EXPECT_NEAR(m.avg_alloc_gpu, g.avg_alloc_gpu, rel * g.avg_alloc_gpu);
  EXPECT_NEAR(m.avg_alloc_cpu, g.avg_alloc_cpu, rel * g.avg_alloc_cpu);
  EXPECT_NEAR(m.avg_alloc_ram, g.avg_alloc_ram, rel * g.avg_alloc_ram);
  EXPECT_NEAR(m.avg_norm_job_throughput, g.avg_norm_job_throughput,
              rel * g.avg_norm_job_throughput);
  EXPECT_NEAR(m.avg_jct_hours, g.avg_jct_hours, rel * g.avg_jct_hours);
  EXPECT_NEAR(m.avg_job_idle_hours, g.avg_job_idle_hours, rel * g.avg_job_idle_hours);
  EXPECT_NEAR(m.makespan_s, g.makespan_s, rel * g.makespan_s);
  ASSERT_EQ(m.jct_hours.size(), g.jct_size);
  EXPECT_NEAR(Sum(m.jct_hours), g.jct_sum, rel * g.jct_sum);
  ASSERT_EQ(m.instance_uptime_hours.size(), g.uptime_size);
  EXPECT_NEAR(Sum(m.instance_uptime_hours), g.uptime_sum, rel * g.uptime_sum);
}

TEST(SimulatorGoldenTest, SyntheticEvaSimulatedModeIsBitExact) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 24;
  trace_options.seed = 7;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
  const SimulationMetrics metrics = RunSimulation(trace, bundle.scheduler.get(), catalog,
                                                  interference, SimulatorOptions{});
  const GoldenValues golden = {
      /*total_cost=*/339.0530999999998,
      /*jobs_submitted=*/24,
      /*jobs_completed=*/24,
      /*tasks_total=*/30,
      /*instances_launched=*/32,
      /*task_migrations=*/28,
      /*migrations_per_task=*/0.93333333333333335,
      /*avg_tasks_per_instance=*/1.2593967249384008,
      /*avg_alloc_gpu=*/0.85715382440712673,
      /*avg_alloc_cpu=*/0.7036256561355515,
      /*avg_alloc_ram=*/0.2465781251919138,
      /*avg_norm_job_throughput=*/0.96055535186915142,
      /*avg_jct_hours=*/2.2236969065579584,
      /*avg_job_idle_hours=*/0.14937785750626437,
      /*makespan_s=*/48900.0,
      /*scheduling_rounds=*/164,
      /*jct_size=*/24,
      /*jct_sum=*/53.368725757391005,
      /*uptime_size=*/32,
      /*uptime_sum=*/52.936666666666675,
  };
  ExpectBitExact(metrics, golden);
}

TEST(SimulatorGoldenTest, MultiTaskSynergySimulatedModeIsBitExact) {
  MultiTaskMicroOptions trace_options;
  trace_options.num_jobs = 12;
  trace_options.seed = 13;
  const Trace trace = GenerateMultiTaskMicroTrace(trace_options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kSynergy, interference);
  const SimulationMetrics metrics = RunSimulation(trace, bundle.scheduler.get(), catalog,
                                                  interference, SimulatorOptions{});
  const GoldenValues golden = {
      /*total_cost=*/2266.8744000000006,
      /*jobs_submitted=*/12,
      /*jobs_completed=*/12,
      /*tasks_total=*/48,
      /*instances_launched=*/40,
      /*task_migrations=*/0,
      /*migrations_per_task=*/0.0,
      /*avg_tasks_per_instance=*/1.1817061467961234,
      /*avg_alloc_gpu=*/0.93716935640499255,
      /*avg_alloc_cpu=*/0.77062208050636638,
      /*avg_alloc_ram=*/0.3037750435009216,
      /*avg_norm_job_throughput=*/0.97333333333333327,
      /*avg_jct_hours=*/10.234524252981945,
      /*avg_job_idle_hours=*/0.13950835927458405,
      /*makespan_s=*/65100.0,
      /*scheduling_rounds=*/218,
      /*jct_size=*/12,
      /*jct_sum=*/122.81429103578331,
      /*uptime_size=*/40,
      /*uptime_sum=*/413.33333333333326,
  };
  ExpectBitExact(metrics, golden);
}

TEST(SimulatorGoldenTest, SyntheticEvaPhysicalModeMatchesWithinTolerance) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 16;
  trace_options.seed = 3;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
  SimulatorOptions options;
  options.physical_mode = true;
  options.seed = 5;
  const SimulationMetrics metrics =
      RunSimulation(trace, bundle.scheduler.get(), catalog, interference, options);
  const GoldenValues golden = {
      /*total_cost=*/126.93916133333335,
      /*jobs_submitted=*/16,
      /*jobs_completed=*/16,
      /*tasks_total=*/25,
      /*instances_launched=*/26,
      /*task_migrations=*/7,
      /*migrations_per_task=*/0.28000000000000003,
      /*avg_tasks_per_instance=*/1.0730911162156465,
      /*avg_alloc_gpu=*/0.90233295120708468,
      /*avg_alloc_cpu=*/0.92400581951788396,
      /*avg_alloc_ram=*/0.37603597690299895,
      /*avg_norm_job_throughput=*/0.9838849151083624,
      /*avg_jct_hours=*/1.8986940268620125,
      /*avg_job_idle_hours=*/0.12673786649565671,
      /*makespan_s=*/24000.0,
      /*scheduling_rounds=*/81,
      /*jct_size=*/16,
      /*jct_sum=*/30.379104429792203,
      /*uptime_size=*/26,
      /*uptime_sum=*/43.589166666666664,
  };
  ExpectWithinTolerance(metrics, golden, 1e-9);
}

// Bit-exact equivalence of round batching: the same trace with the
// quiescence-aware round trigger on and off must produce identical
// SimulationMetrics (every scalar and both distributions) and an identical
// decision trajectory — the coalesced engine skips only work that is
// provably a no-op. Run on the 2,000-job Alibaba-like trace, the perf
// benchmark's headline configuration, where thousands of rounds coalesce.
TEST(SimulatorGoldenTest, RoundBatchingIsBitExactOnAlibaba2000) {
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = 2000;
  trace_options.seed = 17;
  trace_options.max_duration_hours = 48.0;
  const Trace trace = GenerateAlibabaTrace(trace_options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();

  const auto run = [&](bool coalesce) {
    SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
    SimulatorOptions options;
    options.coalesce_quiescent_rounds = coalesce;
    const SimulationMetrics metrics =
        RunSimulation(trace, bundle.scheduler.get(), catalog, interference, options);
    return std::make_pair(metrics, bundle.eva->stats());
  };
  const auto [batched, batched_stats] = run(true);
  const auto [plain, plain_stats] = run(false);

  // Batching actually engaged (and the accounting reflects it)...
  EXPECT_GT(batched.rounds_coalesced, 1000);
  EXPECT_EQ(batched_stats.rounds_coalesced, batched.rounds_coalesced);
  EXPECT_EQ(plain.rounds_coalesced, 0);
  EXPECT_EQ(plain_stats.rounds_coalesced, 0);

  // ...while every simulated quantity is bit-identical.
  EXPECT_EQ(batched.total_cost, plain.total_cost);
  EXPECT_EQ(batched.jobs_submitted, plain.jobs_submitted);
  EXPECT_EQ(batched.jobs_completed, plain.jobs_completed);
  EXPECT_EQ(batched.tasks_total, plain.tasks_total);
  EXPECT_EQ(batched.instances_launched, plain.instances_launched);
  EXPECT_EQ(batched.task_migrations, plain.task_migrations);
  EXPECT_EQ(batched.migrations_per_task, plain.migrations_per_task);
  EXPECT_EQ(batched.avg_tasks_per_instance, plain.avg_tasks_per_instance);
  EXPECT_EQ(batched.avg_alloc_gpu, plain.avg_alloc_gpu);
  EXPECT_EQ(batched.avg_alloc_cpu, plain.avg_alloc_cpu);
  EXPECT_EQ(batched.avg_alloc_ram, plain.avg_alloc_ram);
  EXPECT_EQ(batched.avg_norm_job_throughput, plain.avg_norm_job_throughput);
  EXPECT_EQ(batched.avg_jct_hours, plain.avg_jct_hours);
  EXPECT_EQ(batched.avg_job_idle_hours, plain.avg_job_idle_hours);
  EXPECT_EQ(batched.makespan_s, plain.makespan_s);
  EXPECT_EQ(batched.scheduling_rounds, plain.scheduling_rounds);
  EXPECT_EQ(batched.events_processed, plain.events_processed);
  ASSERT_EQ(batched.jct_hours.size(), plain.jct_hours.size());
  for (std::size_t i = 0; i < plain.jct_hours.size(); ++i) {
    ASSERT_EQ(batched.jct_hours[i], plain.jct_hours[i]) << "jct " << i;
  }
  ASSERT_EQ(batched.instance_uptime_hours.size(), plain.instance_uptime_hours.size());
  for (std::size_t i = 0; i < plain.instance_uptime_hours.size(); ++i) {
    ASSERT_EQ(batched.instance_uptime_hours[i], plain.instance_uptime_hours[i])
        << "uptime " << i;
  }

  // The decision trajectory matches too: same round count, same Full
  // adoptions, same job events seen — a coalesced round replays exactly the
  // per-round state updates an invoked round would have made.
  EXPECT_EQ(batched_stats.rounds, plain_stats.rounds);
  EXPECT_EQ(batched_stats.full_adopted, plain_stats.full_adopted);
  EXPECT_EQ(batched_stats.events_seen, plain_stats.events_seen);
  EXPECT_EQ(batched_stats.full_packs, plain_stats.full_packs);
  EXPECT_EQ(batched_stats.incremental_packs, plain_stats.incremental_packs);
}

// Batching is engine-gated off in physical mode: noisy observations draw
// from the RNG every round, so no round is a provable no-op.
TEST(SimulatorGoldenTest, RoundBatchingDisabledInPhysicalMode) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 16;
  trace_options.seed = 3;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
  SimulatorOptions options;
  options.physical_mode = true;
  options.seed = 5;
  const SimulationMetrics metrics =
      RunSimulation(trace, bundle.scheduler.get(), catalog, interference, options);
  EXPECT_EQ(metrics.rounds_coalesced, 0);
}

TEST(SimulatorGoldenTest, EngineCountsEvents) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 8;
  trace_options.seed = 1;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
  const SimulationMetrics metrics = RunSimulation(trace, bundle.scheduler.get(), catalog,
                                                  interference, SimulatorOptions{});
  // At minimum one arrival per job plus one round per scheduling period.
  EXPECT_GE(metrics.events_processed,
            static_cast<std::int64_t>(metrics.jobs_submitted + metrics.scheduling_rounds));
}

}  // namespace
}  // namespace eva
