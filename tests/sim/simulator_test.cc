#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/baselines/no_packing.h"
#include "src/core/eva_scheduler.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

Trace OneJob(const char* workload, SimTime duration_s, SimTime arrival_s = 0.0,
             int num_tasks = 0) {
  Trace trace;
  trace.name = "unit";
  trace.jobs.push_back(JobSpec::FromWorkload(0, arrival_s, WorkloadRegistry::IdOf(workload),
                                             duration_s, num_tasks));
  return trace;
}

SimulatorOptions Deterministic() {
  SimulatorOptions options;
  options.physical_mode = false;
  return options;
}

class SimulatorSingleJobTest : public testing::Test {
 protected:
  InstanceCatalog catalog_ = InstanceCatalog::AwsDefault();
  InterferenceModel interference_ = InterferenceModel::Measured();
};

TEST_F(SimulatorSingleJobTest, JobCompletesWithExpectedTimeline) {
  // A3C, 1800s of work, No-Packing. Timeline: round at t=0 places the task;
  // instance ready at 209s (Table 1 means); launch 10s (Table 7); runs
  // standalone at rate 1.0 for 1800s -> completes at 2019s.
  const Trace trace = OneJob("A3C", 1800.0);
  NoPackingScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference_, Deterministic());
  EXPECT_EQ(metrics.jobs_completed, 1);
  ASSERT_EQ(metrics.jct_hours.size(), 1u);
  EXPECT_NEAR(metrics.jct_hours[0], 2019.0 / 3600.0, 1e-6);
  // Idle time = provisioning + launch = 219s.
  EXPECT_NEAR(metrics.avg_job_idle_hours, 219.0 / 3600.0, 1e-6);
  EXPECT_DOUBLE_EQ(metrics.avg_norm_job_throughput, 1.0);
}

TEST_F(SimulatorSingleJobTest, CostMatchesUptimeTimesRate) {
  const Trace trace = OneJob("A3C", 1800.0);
  NoPackingScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference_, Deterministic());
  // One c7i.2xlarge ($0.357/hr) from t=0 to the cleanup round at t=2100.
  ASSERT_EQ(metrics.instance_uptime_hours.size(), 1u);
  EXPECT_NEAR(metrics.instance_uptime_hours[0], 2100.0 / 3600.0, 1e-6);
  EXPECT_NEAR(metrics.total_cost, 0.357 * 2100.0 / 3600.0, 1e-6);
  EXPECT_EQ(metrics.instances_launched, 1);
  EXPECT_EQ(metrics.task_migrations, 0);
}

TEST_F(SimulatorSingleJobTest, ArrivalTimeShiftsEverything) {
  const Trace trace = OneJob("A3C", 1800.0, 1000.0);
  NoPackingScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference_, Deterministic());
  EXPECT_EQ(metrics.jobs_completed, 1);
  // First round after arrival is t=1200 (period 300): JCT = 200 + 219 + 1800.
  EXPECT_NEAR(metrics.jct_hours[0], (200.0 + 219.0 + 1800.0) / 3600.0, 1e-6);
}

TEST_F(SimulatorSingleJobTest, MultiTaskJobRunsInLockstep) {
  const Trace trace = OneJob("ResNet18-2task", 3600.0);
  NoPackingScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference_, Deterministic());
  EXPECT_EQ(metrics.jobs_completed, 1);
  EXPECT_EQ(metrics.tasks_total, 2);
  EXPECT_EQ(metrics.instances_launched, 2);  // No-Packing: one each.
  // ResNet18 launch delay is 80s; both tasks in parallel: 209 + 80 + 3600.
  EXPECT_NEAR(metrics.jct_hours[0], (209.0 + 80.0 + 3600.0) / 3600.0, 1e-6);
}

TEST_F(SimulatorSingleJobTest, UnplaceableJobIsDropped) {
  Trace trace;
  trace.name = "unplaceable";
  JobSpec job = JobSpec::FromWorkload(0, 0.0, 0, 3600.0);
  job.demand_p3 = {16, 4, 4};  // No instance has 16 GPUs.
  job.demand_cpu = {16, 4, 4};
  trace.jobs.push_back(job);
  NoPackingScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference_, Deterministic());
  EXPECT_EQ(metrics.jobs_submitted, 0);
  EXPECT_EQ(metrics.jobs_completed, 0);
  EXPECT_DOUBLE_EQ(metrics.total_cost, 0.0);
}

TEST_F(SimulatorSingleJobTest, PhysicalModeJittersButCompletes) {
  const Trace trace = OneJob("A3C", 1800.0);
  SimulatorOptions options;
  options.physical_mode = true;
  options.seed = 5;
  NoPackingScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference_, options);
  EXPECT_EQ(metrics.jobs_completed, 1);
  // Provisioning is 146..334s in physical mode; JCT must be in range.
  EXPECT_GT(metrics.jct_hours[0], (1800.0 + 146.0 + 10.0) / 3600.0 - 1e-9);
  EXPECT_LT(metrics.jct_hours[0], (1800.0 + 334.0 + 10.0) / 3600.0 + 1e-9);
}

TEST_F(SimulatorSingleJobTest, DeterministicRunsAreReproducible) {
  const Trace trace = OneJob("GPT2", 5000.0);
  NoPackingScheduler s1;
  NoPackingScheduler s2;
  const SimulationMetrics a =
      RunSimulation(trace, &s1, catalog_, interference_, Deterministic());
  const SimulationMetrics b =
      RunSimulation(trace, &s2, catalog_, interference_, Deterministic());
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_DOUBLE_EQ(a.jct_hours[0], b.jct_hours[0]);
}


// The simulator attaches a complete RoundDelta to every context: arrivals,
// placements and completions show up in the window they happened in.
struct DeltaRecordingScheduler : Scheduler {
  NoPackingScheduler inner;
  std::vector<RoundDelta> deltas;
  std::string name() const override { return "delta-recorder"; }
  ClusterConfig Schedule(const SchedulingContext& context) override {
    deltas.push_back(context.delta);
    return inner.Schedule(context);
  }
};

TEST_F(SimulatorSingleJobTest, ContextsCarryCompleteRoundDeltas) {
  const Trace trace = OneJob("GCN", 1800.0);
  DeltaRecordingScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference_, Deterministic());
  EXPECT_EQ(metrics.jobs_completed, 1);
  ASSERT_FALSE(scheduler.deltas.empty());
  std::vector<JobId> arrived;
  std::vector<JobId> completed;
  std::vector<TaskId> retargeted;
  for (const RoundDelta& delta : scheduler.deltas) {
    EXPECT_TRUE(delta.complete);
    arrived.insert(arrived.end(), delta.jobs_arrived.begin(), delta.jobs_arrived.end());
    completed.insert(completed.end(), delta.jobs_completed.begin(),
                     delta.jobs_completed.end());
    retargeted.insert(retargeted.end(), delta.tasks_retargeted.begin(),
                      delta.tasks_retargeted.end());
  }
  EXPECT_EQ(arrived, std::vector<JobId>{0});
  EXPECT_EQ(completed, std::vector<JobId>{0});
  EXPECT_EQ(retargeted, std::vector<TaskId>{0});
}

class SimulatorColocationTest : public testing::Test {
 protected:
  InstanceCatalog catalog_ = InstanceCatalog::AwsDefault();
};

TEST_F(SimulatorColocationTest, InterferenceSlowsCoLocatedJobs) {
  // Two ViT jobs arriving together; Eva packs them onto one p3.8xlarge.
  // Ground truth: uniform pairwise 0.8 -> both run at 0.8 and take
  // duration / 0.8 to finish.
  const InterferenceModel interference = InterferenceModel::Uniform(0.8);
  Trace trace;
  trace.name = "pair";
  trace.jobs.push_back(JobSpec::FromWorkload(0, 0.0, WorkloadRegistry::IdOf("ViT"), 3600.0));
  trace.jobs.push_back(JobSpec::FromWorkload(1, 0.0, WorkloadRegistry::IdOf("ViT"), 3600.0));
  EvaScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference, Deterministic());
  EXPECT_EQ(metrics.jobs_completed, 2);
  EXPECT_EQ(metrics.instances_launched, 1);
  // 209s provisioning + 143s ViT launch + 3600/0.8 executing.
  EXPECT_NEAR(metrics.jct_hours[0], (209.0 + 143.0 + 4500.0) / 3600.0, 1e-6);
  EXPECT_NEAR(metrics.avg_norm_job_throughput, 0.8, 1e-9);
}

TEST_F(SimulatorColocationTest, ThroughputRecoversWhenNeighborFinishes) {
  // Same setup but the second job is short: once it completes, the first
  // speeds back up to 1.0.
  const InterferenceModel interference = InterferenceModel::Uniform(0.5);
  Trace trace;
  trace.name = "recover";
  trace.jobs.push_back(JobSpec::FromWorkload(0, 0.0, WorkloadRegistry::IdOf("ViT"), 3600.0));
  trace.jobs.push_back(JobSpec::FromWorkload(1, 0.0, WorkloadRegistry::IdOf("ViT"), 360.0));
  EvaScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference, Deterministic());
  EXPECT_EQ(metrics.jobs_completed, 2);
  // jct_hours is in completion order: [0] is the short job, [1] the long
  // one. The long job runs 360/0.5 = 720s co-located, then 3240s alone:
  // total executing 3960s rather than 7200s.
  ASSERT_EQ(metrics.jct_hours.size(), 2u);
  EXPECT_NEAR(metrics.jct_hours[0], (209.0 + 143.0 + 360.0 / 0.5) / 3600.0, 1e-6);
  EXPECT_NEAR(metrics.jct_hours[1], (209.0 + 143.0 + 3960.0) / 3600.0, 1e-6);
}

TEST_F(SimulatorColocationTest, ObservationsReachTheScheduler) {
  const InterferenceModel interference = InterferenceModel::Uniform(0.8);
  Trace trace;
  trace.name = "observe";
  trace.jobs.push_back(
      JobSpec::FromWorkload(0, 0.0, WorkloadRegistry::IdOf("ViT"), HoursToSeconds(2.0)));
  trace.jobs.push_back(
      JobSpec::FromWorkload(1, 0.0, WorkloadRegistry::IdOf("ViT"), HoursToSeconds(2.0)));
  EvaScheduler scheduler;
  RunSimulation(trace, &scheduler, catalog_, interference, Deterministic());
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const auto learned = scheduler.throughput_table().Lookup(vit, {vit});
  ASSERT_TRUE(learned.has_value());
  EXPECT_NEAR(*learned, 0.8, 1e-9);
}

TEST_F(SimulatorColocationTest, FragmentationAfterCompletionsTriggersMigration) {
  // Four ViTs arrive together: Eva packs all four onto one p3.16xlarge
  // (4 * 0.95^3 * $12.24 = $41.98 >= $24.48). When the two short jobs
  // finish, the two survivors are worth only ~2 * 0.95 * $12.24 = $23.26 on
  // the $24.48 box: Partial Reconfiguration releases them and re-packs both
  // onto a fresh p3.8xlarge — two real migrations.
  const InterferenceModel interference = InterferenceModel::Measured();
  Trace trace;
  trace.name = "fragment";
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  trace.jobs.push_back(JobSpec::FromWorkload(0, 0.0, vit, HoursToSeconds(3.0)));
  trace.jobs.push_back(JobSpec::FromWorkload(1, 0.0, vit, HoursToSeconds(3.0)));
  trace.jobs.push_back(JobSpec::FromWorkload(2, 0.0, vit, HoursToSeconds(0.5)));
  trace.jobs.push_back(JobSpec::FromWorkload(3, 0.0, vit, HoursToSeconds(0.5)));
  EvaScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference, Deterministic());
  EXPECT_EQ(metrics.jobs_completed, 4);
  EXPECT_GE(metrics.task_migrations, 2);
  EXPECT_GT(metrics.migrations_per_task, 0.0);
  EXPECT_GE(metrics.instances_launched, 2);
}

TEST_F(SimulatorColocationTest, AllocationMetricsBounded) {
  const InterferenceModel interference = InterferenceModel::Measured();
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 10;
  trace_options.seed = 3;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  EvaScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog_, interference, Deterministic());
  EXPECT_EQ(metrics.jobs_completed, 10);
  EXPECT_GE(metrics.avg_alloc_gpu, 0.0);
  EXPECT_LE(metrics.avg_alloc_gpu, 1.0);
  EXPECT_GE(metrics.avg_alloc_cpu, 0.0);
  EXPECT_LE(metrics.avg_alloc_cpu, 1.0);
  EXPECT_GE(metrics.avg_alloc_ram, 0.0);
  EXPECT_LE(metrics.avg_alloc_ram, 1.0);
  EXPECT_GT(metrics.avg_tasks_per_instance, 0.0);
  EXPECT_GT(metrics.makespan_s, 0.0);
}

// Physical-mode determinism audit (ISSUE 5 satellite): every stochastic
// draw — provisioning delays (DelayRange::Sample) and observation noise —
// flows through the simulator-owned seeded Rng, never a hidden global
// source. Same seed must therefore reproduce every metric bit-for-bit;
// a different seed must not.
TEST(SimulatorPhysicalModeTest, PhysicalModeSameSeedReproducesMetrics) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 20;
  trace_options.seed = 11;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();

  const auto run = [&](std::uint64_t seed) {
    EvaScheduler scheduler;
    SimulatorOptions options;
    options.physical_mode = true;
    options.seed = seed;
    return RunSimulation(trace, &scheduler, catalog, interference, options);
  };

  const SimulationMetrics a = run(7);
  const SimulationMetrics b = run(7);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.instances_launched, b.instances_launched);
  EXPECT_EQ(a.task_migrations, b.task_migrations);
  EXPECT_EQ(a.avg_tasks_per_instance, b.avg_tasks_per_instance);
  EXPECT_EQ(a.avg_alloc_gpu, b.avg_alloc_gpu);
  EXPECT_EQ(a.avg_alloc_cpu, b.avg_alloc_cpu);
  EXPECT_EQ(a.avg_alloc_ram, b.avg_alloc_ram);
  EXPECT_EQ(a.avg_norm_job_throughput, b.avg_norm_job_throughput);
  EXPECT_EQ(a.avg_jct_hours, b.avg_jct_hours);
  EXPECT_EQ(a.avg_job_idle_hours, b.avg_job_idle_hours);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.jct_hours.size(), b.jct_hours.size());
  for (std::size_t i = 0; i < a.jct_hours.size(); ++i) {
    ASSERT_EQ(a.jct_hours[i], b.jct_hours[i]) << "jct " << i;
  }
  ASSERT_EQ(a.instance_uptime_hours.size(), b.instance_uptime_hours.size());
  for (std::size_t i = 0; i < a.instance_uptime_hours.size(); ++i) {
    ASSERT_EQ(a.instance_uptime_hours[i], b.instance_uptime_hours[i]) << "uptime " << i;
  }

  // A different seed draws different delays — if it reproduced the same
  // cost to the bit, the delays would not be flowing through the seed.
  const SimulationMetrics c = run(8);
  EXPECT_NE(a.total_cost, c.total_cost);
}

}  // namespace
}  // namespace eva
