#include "src/sim/cluster_state.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

InstanceCatalog TestCatalog() {
  return InstanceCatalog({
      {"box.small", InstanceFamily::kP3, {4, 8, 16}, 1.0},
      {"box.large", InstanceFamily::kP3, {8, 16, 32}, 2.0},
  });
}

JobSpec TestJob(JobId id, double gpus = 1.0, double cpus = 2.0, double ram = 4.0,
                int num_tasks = 1) {
  JobSpec spec;
  spec.id = id;
  spec.arrival_time_s = 0.0;
  spec.num_tasks = num_tasks;
  spec.workload = 0;
  spec.demand_p3 = {gpus, cpus, ram};
  spec.demand_cpu = {gpus, cpus, ram};
  spec.duration_s = 3600.0;
  return spec;
}

SimulationMetrics Finalized(const ClusterState& state) {
  SimulationMetrics metrics;
  state.FinalizeMetrics(metrics);
  return metrics;
}

TEST(ClusterStateTest, AddJobCreatesTasksAndActivates) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  const JobRec& job = state.AddJob(TestJob(5, 1, 2, 4, /*num_tasks=*/3));
  EXPECT_TRUE(job.active);
  EXPECT_EQ(job.tasks.size(), 3u);
  EXPECT_EQ(state.tasks().size(), 3u);
  EXPECT_EQ(state.num_active(), 1);
  EXPECT_EQ(state.active_jobs().count(5), 1u);
  for (TaskId task_id : job.tasks) {
    EXPECT_EQ(state.tasks().at(task_id).job, 5);
    EXPECT_EQ(state.tasks().at(task_id).state, TaskState::kPending);
  }
}

TEST(ClusterStateTest, CapacityAndAllocationIntegrals) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  JobRec& job = state.AddJob(TestJob(0, /*gpus=*/1, /*cpus=*/2, /*ram=*/4));
  InstRec& instance = state.CreateInstance(/*type_index=*/0, /*launch=*/0.0, /*ready=*/0.0);
  TaskRec& task = *state.FindTask(job.tasks[0]);
  state.SetTarget(task, instance.id);

  // 10s with one assigned task of demand {1,2,4} on capacity {4,8,16}.
  state.IntegrateTo(10.0);
  SimulationMetrics metrics = Finalized(state);
  EXPECT_DOUBLE_EQ(metrics.avg_alloc_gpu, 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(metrics.avg_alloc_cpu, 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(metrics.avg_alloc_ram, 4.0 / 16.0);
  EXPECT_DOUBLE_EQ(metrics.avg_tasks_per_instance, 1.0);

  // Another 10s after the task detaches: allocation halves, capacity stays.
  state.MarkTaskDone(task);
  state.IntegrateTo(10.0);
  metrics = Finalized(state);
  EXPECT_DOUBLE_EQ(metrics.avg_alloc_gpu, (1.0 * 10.0) / (4.0 * 20.0));
  EXPECT_DOUBLE_EQ(metrics.avg_tasks_per_instance, 0.5);
}

TEST(ClusterStateTest, RetargetMovesAllocationBetweenInstances) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  JobRec& job = state.AddJob(TestJob(0, /*gpus=*/2, /*cpus=*/4, /*ram=*/8));
  InstRec& small = state.CreateInstance(/*type_index=*/0, 0.0, 0.0);
  InstRec& large = state.CreateInstance(/*type_index=*/1, 0.0, 0.0);
  TaskRec& task = *state.FindTask(job.tasks[0]);

  state.SetTarget(task, small.id);
  EXPECT_EQ(small.assigned.count(task.id), 1u);
  state.IntegrateTo(10.0);

  state.SetTarget(task, large.id);
  EXPECT_EQ(small.assigned.count(task.id), 0u);
  EXPECT_EQ(large.assigned.count(task.id), 1u);
  state.IntegrateTo(10.0);

  // Capacity integral: (4+8) GPUs for 20s. Allocation: 2 GPUs for 20s.
  const SimulationMetrics metrics = Finalized(state);
  EXPECT_DOUBLE_EQ(metrics.avg_alloc_gpu, (2.0 * 20.0) / (12.0 * 20.0));
  // One assigned task over two instances throughout.
  EXPECT_DOUBLE_EQ(metrics.avg_tasks_per_instance, 0.5);
}

TEST(ClusterStateTest, MaybeTerminateRequiresCondemnedAndEmpty) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  JobRec& job = state.AddJob(TestJob(0));
  InstRec& instance = state.CreateInstance(/*type_index=*/1, /*launch=*/100.0, 100.0);
  TaskRec& task = *state.FindTask(job.tasks[0]);
  state.SetTarget(task, instance.id);
  const InstanceId id = instance.id;

  EXPECT_FALSE(state.MaybeTerminate(id, 1900.0));  // Not condemned.
  state.Condemn(id);
  EXPECT_FALSE(state.MaybeTerminate(id, 1900.0));  // Still assigned.
  state.MarkTaskDone(task);
  EXPECT_TRUE(state.MaybeTerminate(id, 1900.0));
  EXPECT_EQ(state.FindInstance(id), nullptr);

  // 1800s at $2/h.
  const SimulationMetrics metrics = Finalized(state);
  EXPECT_DOUBLE_EQ(metrics.total_cost, 2.0 * 1800.0 / 3600.0);
  ASSERT_EQ(metrics.instance_uptime_hours.size(), 1u);
  EXPECT_DOUBLE_EQ(metrics.instance_uptime_hours[0], 0.5);
  EXPECT_EQ(metrics.instances_launched, 1);
}

TEST(ClusterStateTest, MarkTaskDonePrunesPresenceAndAssignment) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  JobRec& job = state.AddJob(TestJob(0));
  InstRec& instance = state.CreateInstance(/*type_index=*/0, 0.0, 0.0);
  TaskRec& task = *state.FindTask(job.tasks[0]);
  state.SetTarget(task, instance.id);
  state.PlaceContainer(task);
  task.state = TaskState::kRunning;
  ASSERT_EQ(instance.present.count(task.id), 1u);
  const int version_before = task.version;

  const ClusterState::DetachResult detached = state.MarkTaskDone(task);
  EXPECT_EQ(detached.source, instance.id);
  EXPECT_EQ(detached.target, instance.id);
  EXPECT_EQ(task.state, TaskState::kDone);
  EXPECT_GT(task.version, version_before);  // In-flight events are cancelled.
  EXPECT_EQ(task.source, kInvalidInstanceId);
  EXPECT_EQ(task.target, kInvalidInstanceId);
  EXPECT_TRUE(instance.present.empty());
  EXPECT_TRUE(instance.assigned.empty());
}

TEST(ClusterStateTest, TerminateAllLivePaysForEverything) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  state.CreateInstance(/*type_index=*/0, 0.0, 0.0);   // $1/h
  state.CreateInstance(/*type_index=*/1, 0.0, 0.0);   // $2/h
  state.TerminateAllLive(/*now=*/7200.0);
  EXPECT_FALSE(state.HasLiveInstances());
  const SimulationMetrics metrics = Finalized(state);
  EXPECT_DOUBLE_EQ(metrics.total_cost, (1.0 + 2.0) * 2.0);
  EXPECT_EQ(metrics.instance_uptime_hours.size(), 2u);
}

TEST(ClusterStateTest, DeactivateJobRecordsCompletion) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  JobRec& job = state.AddJob(TestJob(3));
  job.current_rate = 0.8;
  state.DeactivateJob(job, /*now=*/500.0);
  EXPECT_FALSE(job.active);
  EXPECT_EQ(job.completion_time, 500.0);
  EXPECT_EQ(job.current_rate, 0.0);
  EXPECT_EQ(state.num_active(), 0);
}

TEST(ClusterStateTest, BuildContextListsActiveJobsAndLiveInstances) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  JobRec& active_job = state.AddJob(TestJob(0));
  JobRec& done_job = state.AddJob(TestJob(1));
  state.DeactivateJob(done_job, 100.0);
  InstRec& live = state.CreateInstance(0, 0.0, 0.0);
  InstRec& condemned = state.CreateInstance(1, 0.0, 0.0);
  state.Condemn(condemned.id);
  state.SetTarget(*state.FindTask(active_job.tasks[0]), live.id);

  const SchedulingContext context = state.BuildContext(/*now=*/250.0, true);
  EXPECT_EQ(context.now_s, 250.0);
  ASSERT_EQ(context.tasks.size(), 1u);  // Only the active job's task.
  EXPECT_EQ(context.tasks[0].job, 0);
  EXPECT_EQ(context.tasks[0].remaining_work_s, active_job.remaining_work_s);
  ASSERT_EQ(context.instances.size(), 1u);  // Condemned instances are hidden.
  EXPECT_EQ(context.instances[0].id, live.id);
  ASSERT_EQ(context.instances[0].tasks.size(), 1u);
}


TEST(ClusterStateShardTest, ShardsTrackPerGroupComposition) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);
  ASSERT_EQ(state.shards().size(), 2u);

  JobRec& job = state.AddJob(TestJob(0, 1, 2, 4, /*num_tasks=*/2));
  InstRec& small = state.CreateInstance(/*type_index=*/0, 0.0, 0.0);
  InstRec& large = state.CreateInstance(/*type_index=*/1, 0.0, 0.0);
  state.SetTarget(*state.FindTask(job.tasks[0]), small.id);
  state.SetTarget(*state.FindTask(job.tasks[1]), large.id);

  // IntegrateTo refreshes the dirty shards lazily.
  state.IntegrateTo(1.0);
  const ClusterState::Shard& shard0 = state.shards()[0];
  const ClusterState::Shard& shard1 = state.shards()[1];
  EXPECT_EQ(shard0.members.count(small.id), 1u);
  EXPECT_EQ(shard1.members.count(large.id), 1u);
  EXPECT_FALSE(shard0.dirty);
  EXPECT_FALSE(shard1.dirty);
  EXPECT_DOUBLE_EQ(shard0.cap[0], 4.0);
  EXPECT_DOUBLE_EQ(shard1.cap[0], 8.0);
  EXPECT_DOUBLE_EQ(shard0.assigned_tasks, 1.0);
  EXPECT_DOUBLE_EQ(shard1.assigned_tasks, 1.0);

  // Retargeting the large-box task touches both shards; after the next
  // integration the sums reflect the move.
  state.SetTarget(*state.FindTask(job.tasks[1]), small.id);
  state.IntegrateTo(1.0);
  EXPECT_DOUBLE_EQ(state.shards()[0].assigned_tasks, 2.0);
  EXPECT_DOUBLE_EQ(state.shards()[1].assigned_tasks, 0.0);

  // Termination removes the instance from its shard.
  state.Condemn(large.id);
  EXPECT_TRUE(state.MaybeTerminate(large.id, 2.0));
  state.IntegrateTo(1.0);
  EXPECT_TRUE(state.shards()[1].members.empty());
  EXPECT_DOUBLE_EQ(state.shards()[1].cap[0], 0.0);
}

TEST(ClusterStateDeltaTest, AccumulatesAndDrainsRoundDeltas) {
  const InstanceCatalog catalog = TestCatalog();
  ClusterState state(catalog);

  JobRec& job = state.AddJob(TestJob(7));
  const InstanceId inst_id = state.CreateInstance(0, 0.0, 0.0).id;
  TaskRec& task = *state.FindTask(job.tasks[0]);
  state.SetTarget(task, inst_id);

  RoundDelta delta = state.TakeRoundDelta();
  EXPECT_TRUE(delta.complete);
  EXPECT_EQ(delta.jobs_arrived, std::vector<JobId>{7});
  EXPECT_EQ(delta.tasks_retargeted, std::vector<TaskId>{task.id});
  EXPECT_EQ(delta.instances_launched, std::vector<InstanceId>{inst_id});
  EXPECT_TRUE(delta.jobs_completed.empty());
  EXPECT_TRUE(delta.instances_terminated.empty());
  EXPECT_EQ(delta.TouchedCount(), 3u);

  // Draining resets the accumulator: a quiescent window yields an empty
  // (but complete) delta.
  delta = state.TakeRoundDelta();
  EXPECT_TRUE(delta.complete);
  EXPECT_TRUE(delta.Empty());

  // Completion + termination land in the next delta, deduplicated.
  state.MarkTaskDone(task);
  state.DeactivateJob(*state.FindJob(7), 100.0);
  state.Condemn(inst_id);
  EXPECT_TRUE(state.MaybeTerminate(inst_id, 100.0));
  delta = state.TakeRoundDelta();
  EXPECT_EQ(delta.jobs_completed, std::vector<JobId>{7});
  EXPECT_EQ(delta.instances_terminated, std::vector<InstanceId>{inst_id});
  EXPECT_TRUE(delta.jobs_arrived.empty());
}

}  // namespace
}  // namespace eva
