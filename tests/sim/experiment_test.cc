#include "src/sim/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/workload/trace_gen.h"

namespace eva {
namespace {

TEST(MakeSchedulerTest, ProducesAllKinds) {
  const InterferenceModel interference = InterferenceModel::Measured();
  const SchedulerKind kinds[] = {
      SchedulerKind::kNoPacking,   SchedulerKind::kStratus,    SchedulerKind::kSynergy,
      SchedulerKind::kOwl,         SchedulerKind::kEva,        SchedulerKind::kEvaRp,
      SchedulerKind::kEvaSingle,   SchedulerKind::kEvaFullOnly,
      SchedulerKind::kEvaPartialOnly};
  for (SchedulerKind kind : kinds) {
    const SchedulerBundle bundle = MakeScheduler(kind, interference);
    ASSERT_NE(bundle.scheduler, nullptr) << SchedulerKindName(kind);
  }
}

TEST(MakeSchedulerTest, EvaVariantsExposeStats) {
  const InterferenceModel interference = InterferenceModel::Measured();
  const SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
  EXPECT_NE(bundle.eva, nullptr);
  const SchedulerBundle baseline = MakeScheduler(SchedulerKind::kStratus, interference);
  EXPECT_EQ(baseline.eva, nullptr);
}

TEST(MakeSchedulerTest, OwlCarriesItsOracle) {
  const InterferenceModel interference = InterferenceModel::Measured();
  const SchedulerBundle bundle = MakeScheduler(SchedulerKind::kOwl, interference);
  EXPECT_NE(bundle.oracle, nullptr);
  EXPECT_EQ(bundle.scheduler->name(), "Owl");
}

TEST(SchedulerKindNameTest, AllNamed) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kNoPacking), "No-Packing");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kEvaPartialOnly), "Eva (w/o Full)");
}

TEST(RunComparisonTest, NormalizesAgainstNoPacking) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 8;
  trace_options.seed = 21;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  const std::vector<ExperimentResult> results = RunComparison(
      trace, {SchedulerKind::kNoPacking, SchedulerKind::kEva}, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].normalized_cost, 1.0);
  EXPECT_GT(results[1].metrics.total_cost, 0.0);
  EXPECT_NEAR(results[1].normalized_cost,
              results[1].metrics.total_cost / results[0].metrics.total_cost, 1e-12);
}

TEST(RunComparisonTest, AllJobsCompleteUnderEveryScheduler) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 8;
  trace_options.seed = 22;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  const std::vector<ExperimentResult> results = RunComparison(
      trace,
      {SchedulerKind::kNoPacking, SchedulerKind::kStratus, SchedulerKind::kSynergy,
       SchedulerKind::kOwl, SchedulerKind::kEva},
      options);
  for (const ExperimentResult& result : results) {
    EXPECT_EQ(result.metrics.jobs_completed, result.metrics.jobs_submitted)
        << SchedulerKindName(result.kind);
  }
}

TEST(RunComparisonTest, FullAdoptionFractionOnlyForEva) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 6;
  trace_options.seed = 23;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  const std::vector<ExperimentResult> results = RunComparison(
      trace, {SchedulerKind::kNoPacking, SchedulerKind::kEvaFullOnly}, options);
  EXPECT_DOUBLE_EQ(results[0].full_adoption_fraction, 0.0);
  EXPECT_DOUBLE_EQ(results[1].full_adoption_fraction, 1.0);
}

TEST(ParallelRunComparisonTest, MatchesSerialBitForBit) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 10;
  trace_options.seed = 24;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kStratus,
                                            SchedulerKind::kSynergy, SchedulerKind::kOwl,
                                            SchedulerKind::kEva};
  const std::vector<ExperimentResult> serial = RunComparison(trace, kinds, options);
  const std::vector<ExperimentResult> parallel =
      ParallelRunComparison(trace, kinds, options, /*num_threads=*/4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].kind, serial[i].kind);
    EXPECT_EQ(parallel[i].metrics.total_cost, serial[i].metrics.total_cost);
    EXPECT_EQ(parallel[i].metrics.jobs_completed, serial[i].metrics.jobs_completed);
    EXPECT_EQ(parallel[i].metrics.avg_jct_hours, serial[i].metrics.avg_jct_hours);
    EXPECT_EQ(parallel[i].metrics.makespan_s, serial[i].metrics.makespan_s);
    EXPECT_EQ(parallel[i].metrics.task_migrations, serial[i].metrics.task_migrations);
    EXPECT_EQ(parallel[i].normalized_cost, serial[i].normalized_cost);
    EXPECT_EQ(parallel[i].full_adoption_fraction, serial[i].full_adoption_fraction);
  }
}

TEST(ParallelRunComparisonTest, PhysicalModeIsDeterministicAcrossThreadCounts) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 6;
  trace_options.seed = 25;
  const Trace trace = GenerateSyntheticTrace(trace_options);
  ExperimentOptions options;
  options.simulator.physical_mode = true;
  options.simulator.seed = 9;
  const std::vector<SchedulerKind> kinds = {SchedulerKind::kNoPacking, SchedulerKind::kEva};
  const std::vector<ExperimentResult> one = ParallelRunComparison(trace, kinds, options, 1);
  const std::vector<ExperimentResult> many = ParallelRunComparison(trace, kinds, options, 8);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].metrics.total_cost, many[i].metrics.total_cost);
    EXPECT_EQ(one[i].metrics.avg_jct_hours, many[i].metrics.avg_jct_hours);
  }
}

TEST(ScaledJobCountTest, DefaultsAndEnvOverride) {
  unsetenv("EVA_BENCH_SCALE");
  EXPECT_EQ(ScaledJobCount(1000), 1000);
  EXPECT_EQ(ScaledJobCount(1000, 20), 200);
  EXPECT_EQ(ScaledJobCount(3, 10), 1);  // Never below one.
  setenv("EVA_BENCH_SCALE", "50", 1);
  EXPECT_EQ(ScaledJobCount(1000, 20), 500);
  setenv("EVA_BENCH_SCALE", "garbage", 1);
  EXPECT_EQ(ScaledJobCount(1000, 20), 200);  // Bad input falls back.
  unsetenv("EVA_BENCH_SCALE");
}

}  // namespace
}  // namespace eva
