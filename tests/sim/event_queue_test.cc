#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.Push(30.0, SimEventType::kRound);
  queue.Push(10.0, SimEventType::kArrival, 7);
  queue.Push(20.0, SimEventType::kInstanceReady, 3);

  ASSERT_EQ(queue.Size(), 3u);
  SimEvent event = queue.Pop();
  EXPECT_EQ(event.time, 10.0);
  EXPECT_EQ(event.type, SimEventType::kArrival);
  EXPECT_EQ(event.a, 7);
  event = queue.Pop();
  EXPECT_EQ(event.time, 20.0);
  EXPECT_EQ(event.type, SimEventType::kInstanceReady);
  event = queue.Pop();
  EXPECT_EQ(event.time, 30.0);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, EqualTimesBreakTiesFifo) {
  EventQueue queue;
  queue.Push(5.0, SimEventType::kLaunchDone, 1);
  queue.Push(5.0, SimEventType::kCheckpointDone, 2);
  queue.Push(5.0, SimEventType::kCompletionCheck, 3);

  EXPECT_EQ(queue.Pop().a, 1);
  EXPECT_EQ(queue.Pop().a, 2);
  EXPECT_EQ(queue.Pop().a, 3);
}

TEST(EventQueueTest, CarriesVersionPayload) {
  EventQueue queue;
  queue.Push(1.0, SimEventType::kLaunchDone, 42, 9);
  const SimEvent event = queue.Pop();
  EXPECT_EQ(event.a, 42);
  EXPECT_EQ(event.version, 9);
}

TEST(EventQueueTest, CountsEverPushed) {
  EventQueue queue;
  EXPECT_EQ(queue.pushed(), 0u);
  queue.Push(1.0, SimEventType::kRound);
  queue.Push(2.0, SimEventType::kRound);
  queue.Pop();
  EXPECT_EQ(queue.pushed(), 2u);  // Pops do not decrement.
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  queue.Push(10.0, SimEventType::kArrival, 1);
  queue.Push(30.0, SimEventType::kArrival, 3);
  EXPECT_EQ(queue.Pop().a, 1);
  queue.Push(20.0, SimEventType::kArrival, 2);
  EXPECT_EQ(queue.Pop().a, 2);
  EXPECT_EQ(queue.Pop().a, 3);
}

}  // namespace
}  // namespace eva
