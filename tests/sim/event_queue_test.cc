#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.Push(30.0, SimEventType::kRound);
  queue.Push(10.0, SimEventType::kArrival, 7);
  queue.Push(20.0, SimEventType::kInstanceReady, 3);

  ASSERT_EQ(queue.Size(), 3u);
  SimEvent event = queue.Pop();
  EXPECT_EQ(event.time, 10.0);
  EXPECT_EQ(event.type, SimEventType::kArrival);
  EXPECT_EQ(event.a, 7);
  event = queue.Pop();
  EXPECT_EQ(event.time, 20.0);
  EXPECT_EQ(event.type, SimEventType::kInstanceReady);
  event = queue.Pop();
  EXPECT_EQ(event.time, 30.0);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, EqualTimesBreakTiesFifo) {
  EventQueue queue;
  queue.Push(5.0, SimEventType::kLaunchDone, 1);
  queue.Push(5.0, SimEventType::kCheckpointDone, 2);
  queue.Push(5.0, SimEventType::kCompletionCheck, 3);

  EXPECT_EQ(queue.Pop().a, 1);
  EXPECT_EQ(queue.Pop().a, 2);
  EXPECT_EQ(queue.Pop().a, 3);
}

TEST(EventQueueTest, CarriesVersionPayload) {
  EventQueue queue;
  queue.Push(1.0, SimEventType::kLaunchDone, 42, 9);
  const SimEvent event = queue.Pop();
  EXPECT_EQ(event.a, 42);
  EXPECT_EQ(event.version, 9);
}

TEST(EventQueueTest, CountsEverPushed) {
  EventQueue queue;
  EXPECT_EQ(queue.pushed(), 0u);
  queue.Push(1.0, SimEventType::kRound);
  queue.Push(2.0, SimEventType::kRound);
  queue.Pop();
  EXPECT_EQ(queue.pushed(), 2u);  // Pops do not decrement.
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  queue.Push(10.0, SimEventType::kArrival, 1);
  queue.Push(30.0, SimEventType::kArrival, 3);
  EXPECT_EQ(queue.Pop().a, 1);
  queue.Push(20.0, SimEventType::kArrival, 2);
  EXPECT_EQ(queue.Pop().a, 2);
  EXPECT_EQ(queue.Pop().a, 3);
}

// The front slot (the push-then-pop fast path) must stay totally ordered
// against the heap lane, including the decreasing-time re-arm pattern,
// displacement by an even earlier push, and equal-time FIFO ties.
TEST(EventQueueTest, FrontSlotOrdersAgainstHeapEvents) {
  EventQueue queue;
  // Decreasing-time check pushes (each displacing the previous front into
  // the heap) interleaved with heap-bound events on both sides.
  queue.Push(25.0, SimEventType::kRound, 100);
  queue.Push(40.0, SimEventType::kCompletionCheck, 1);
  queue.Push(30.0, SimEventType::kCompletionCheck, 2);
  queue.Push(10.0, SimEventType::kCompletionCheck, 3);
  queue.Push(5.0, SimEventType::kArrival, 200);
  // A check landing between the queued ones.
  queue.Push(35.0, SimEventType::kCompletionCheck, 4);
  EXPECT_EQ(queue.Size(), 6u);

  EXPECT_EQ(queue.Pop().a, 200);  // t=5 arrival.
  EXPECT_EQ(queue.Pop().a, 3);    // t=10 check.
  EXPECT_EQ(queue.Pop().a, 100);  // t=25 round.
  EXPECT_EQ(queue.Pop().a, 2);    // t=30 check.
  EXPECT_EQ(queue.Pop().a, 4);    // t=35 check (pushed out of order).
  EXPECT_EQ(queue.Pop().a, 1);    // t=40 check.
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, EqualTimeChecksPopFifoAcrossLanes) {
  EventQueue queue;
  queue.Push(10.0, SimEventType::kCompletionCheck, 1);
  queue.Push(10.0, SimEventType::kLaunchDone, 2);
  queue.Push(10.0, SimEventType::kCompletionCheck, 3);
  // Same time, non-arrival: FIFO by sequence number, across lanes.
  EXPECT_EQ(queue.Pop().a, 1);
  EXPECT_EQ(queue.Pop().a, 2);
  EXPECT_EQ(queue.Pop().a, 3);
  // Arrivals still outrank all non-arrivals at the same timestamp.
  queue.Push(20.0, SimEventType::kCompletionCheck, 4);
  queue.Push(20.0, SimEventType::kArrival, 5);
  EXPECT_EQ(queue.Pop().a, 5);
  EXPECT_EQ(queue.Pop().a, 4);
}

}  // namespace
}  // namespace eva
