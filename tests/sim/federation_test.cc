// Federation driver tests: deterministic multi-tenant co-simulation against
// one shared, capacity-constrained spot provider.
//
// The load-bearing property is bit-reproducibility: per-tenant metrics must
// be identical across repeated runs AND across thread-pool sizes — the
// lockstep protocol confines every provider grant to the serial
// tenant-ordered phase, and all parallel-phase provider mutations are
// commutative. The scenario tests additionally pin the new market behaviors
// (denials under exhausted pools, spot preemptions) actually engaging.

#include "src/sim/federation.h"

#include <gtest/gtest.h>

#include "src/obs/flight_recorder.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

// Three ScaleTrace shards of the 2,000-job Alibaba-like trace — the shared
// MakeTenantShards recipe, so the tested scenario and bench_federation's
// can never diverge.
std::vector<FederationTenant> MakeTenants(int jobs_per_tenant) {
  AlibabaTraceOptions base_options;
  base_options.num_jobs = 2000;
  base_options.seed = 17;
  base_options.max_duration_hours = 48.0;
  return MakeTenantShards(GenerateAlibabaTrace(base_options), /*num_tenants=*/3,
                          jobs_per_tenant);
}

// Capacity-constrained spot scenario: small family pools shared by three
// tenants, frequent repricing with a noticeable spike rate.
FederationOptions ConstrainedSpotOptions() {
  FederationOptions options;
  options.provider.enabled = true;
  options.provider.family_capacity = {2, 4, 2};
  options.provider.spot.enabled = true;
  options.provider.spot.price_step_s = 900.0;
  options.provider.spot.spike_probability = 0.15;
  options.provider.spot.seed = 4242;
  options.simulator.seed = 5;
  return options;
}

void ExpectBitIdentical(const SimulationMetrics& a, const SimulationMetrics& b) {
  // Every simulated quantity; scheduler_wall_seconds is wall-clock
  // measurement and legitimately differs.
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.spot_cost, b.spot_cost);
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.tasks_total, b.tasks_total);
  EXPECT_EQ(a.instances_launched, b.instances_launched);
  EXPECT_EQ(a.spot_instances_launched, b.spot_instances_launched);
  EXPECT_EQ(a.spot_preemptions, b.spot_preemptions);
  EXPECT_EQ(a.acquisitions_denied, b.acquisitions_denied);
  EXPECT_EQ(a.task_migrations, b.task_migrations);
  EXPECT_EQ(a.migrations_per_task, b.migrations_per_task);
  EXPECT_EQ(a.avg_tasks_per_instance, b.avg_tasks_per_instance);
  EXPECT_EQ(a.avg_alloc_gpu, b.avg_alloc_gpu);
  EXPECT_EQ(a.avg_alloc_cpu, b.avg_alloc_cpu);
  EXPECT_EQ(a.avg_alloc_ram, b.avg_alloc_ram);
  EXPECT_EQ(a.avg_norm_job_throughput, b.avg_norm_job_throughput);
  EXPECT_EQ(a.avg_jct_hours, b.avg_jct_hours);
  EXPECT_EQ(a.avg_job_idle_hours, b.avg_job_idle_hours);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.scheduling_rounds, b.scheduling_rounds);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.jct_hours.size(), b.jct_hours.size());
  for (std::size_t i = 0; i < a.jct_hours.size(); ++i) {
    ASSERT_EQ(a.jct_hours[i], b.jct_hours[i]) << "jct " << i;
  }
  ASSERT_EQ(a.instance_uptime_hours.size(), b.instance_uptime_hours.size());
  for (std::size_t i = 0; i < a.instance_uptime_hours.size(); ++i) {
    ASSERT_EQ(a.instance_uptime_hours[i], b.instance_uptime_hours[i]) << "uptime " << i;
  }
  // Fault-injection ledger: recovery accounting must be as reproducible as
  // the base metrics (all zero / 1.0 when faults are off).
  EXPECT_EQ(a.faults.zone_outages, b.faults.zone_outages);
  EXPECT_EQ(a.faults.correlated_failures, b.faults.correlated_failures);
  EXPECT_EQ(a.faults.maintenance_drains, b.faults.maintenance_drains);
  EXPECT_EQ(a.faults.instances_killed, b.faults.instances_killed);
  EXPECT_EQ(a.faults.instances_drained, b.faults.instances_drained);
  EXPECT_EQ(a.faults.tasks_evicted, b.faults.tasks_evicted);
  EXPECT_EQ(a.faults.tasks_lost, b.faults.tasks_lost);
  EXPECT_EQ(a.faults.lost_work_seconds, b.faults.lost_work_seconds);
  EXPECT_EQ(a.faults.replacements_completed, b.faults.replacements_completed);
  EXPECT_EQ(a.faults.replacement_latency_min_s, b.faults.replacement_latency_min_s);
  EXPECT_EQ(a.faults.replacement_latency_median_s, b.faults.replacement_latency_median_s);
  EXPECT_EQ(a.faults.replacement_latency_p95_s, b.faults.replacement_latency_p95_s);
  EXPECT_EQ(a.faults.goodput_ratio, b.faults.goodput_ratio);
}

TEST(FederationTest, DeterministicAcrossRunsAndThreadPoolSizes) {
  const std::vector<FederationTenant> tenants = MakeTenants(25);
  FederationOptions options = ConstrainedSpotOptions();
  // Flight recorders ride along so a determinism regression reports the
  // first diverging round and field, not just mismatched final metrics.
  options.simulator.observability.enabled = true;
  std::vector<FlightRecorder> flights_first, flights_second, flights_serial;

  options.num_threads = 4;
  options.flight_recorders = &flights_first;
  const FederationResult first = RunFederation(tenants, options);
  options.flight_recorders = &flights_second;
  const FederationResult second = RunFederation(tenants, options);
  options.num_threads = 1;
  options.flight_recorders = &flights_serial;
  const FederationResult serial = RunFederation(tenants, options);

  ASSERT_EQ(first.tenants.size(), 3u);
  for (std::size_t i = 0; i < first.tenants.size(); ++i) {
    ExpectBitIdentical(first.tenants[i].metrics, second.tenants[i].metrics);
    ExpectBitIdentical(first.tenants[i].metrics, serial.tenants[i].metrics);
    const auto rerun = DiffFirstDivergence(flights_first[i], flights_second[i]);
    EXPECT_FALSE(rerun.has_value())
        << "tenant " << i << " re-run divergence: " << rerun->ToString();
    const auto pools = DiffFirstDivergence(flights_first[i], flights_serial[i]);
    EXPECT_FALSE(pools.has_value())
        << "tenant " << i << " pool-size divergence: " << pools->ToString();
    EXPECT_GT(flights_first[i].rounds_recorded(), 0) << "tenant " << i;
  }
  for (std::size_t f = 0; f < static_cast<std::size_t>(kNumInstanceFamilies); ++f) {
    EXPECT_EQ(first.provider.families[f].granted, serial.provider.families[f].granted);
    EXPECT_EQ(first.provider.families[f].denied, serial.provider.families[f].denied);
    EXPECT_EQ(first.provider.families[f].preempted, serial.provider.families[f].preempted);
    EXPECT_EQ(first.provider.families[f].peak_in_use,
              serial.provider.families[f].peak_in_use);
    EXPECT_EQ(first.provider.families[f].instance_hours,
              serial.provider.families[f].instance_hours);
  }
}

TEST(FederationTest, ConstrainedSpotScenarioDeniesAndPreempts) {
  const std::vector<FederationTenant> tenants = MakeTenants(25);
  const FederationResult result = RunFederation(tenants, ConstrainedSpotOptions());

  int denied = 0;
  int preempted = 0;
  int spot_launched = 0;
  for (const FederationResult::Tenant& tenant : result.tenants) {
    // Every tenant drains despite contention: denials throttle, they do not
    // wedge.
    EXPECT_EQ(tenant.metrics.jobs_completed, tenant.metrics.jobs_submitted)
        << tenant.name;
    denied += tenant.metrics.acquisitions_denied;
    preempted += tenant.metrics.spot_preemptions;
    spot_launched += tenant.metrics.spot_instances_launched;
    EXPECT_GE(tenant.metrics.spot_cost, 0.0);
    EXPECT_LE(tenant.metrics.spot_cost, tenant.metrics.total_cost);
  }
  EXPECT_GT(denied, 0);
  EXPECT_GT(preempted, 0);
  EXPECT_GT(spot_launched, 0);

  // Provider-side accounting agrees with the tenants' own counters.
  EXPECT_EQ(result.provider.TotalDenied(), denied);
  EXPECT_EQ(result.provider.TotalPreempted(), preempted);
  std::int64_t granted = 0;
  for (const FederationResult::Tenant& tenant : result.tenants) {
    granted += tenant.metrics.instances_launched;
  }
  EXPECT_EQ(result.provider.TotalGranted(), granted);
  // Everything acquired was eventually released (all tenants drained).
  for (std::size_t f = 0; f < static_cast<std::size_t>(kNumInstanceFamilies); ++f) {
    EXPECT_EQ(result.provider.families[f].granted, result.provider.families[f].released);
    if (result.provider.families[f].capacity > 0) {
      EXPECT_LE(result.provider.families[f].peak_in_use,
                result.provider.families[f].capacity);
    }
  }
}

// With one tenant, unlimited pools and no spot tier, the federation
// protocol must reproduce a plain Simulator::Run bit-for-bit: the provider
// is pass-through (admission always grants, the cost hook evaluates the
// exact same expression) and the stepping API processes the exact same
// event sequence.
TEST(FederationTest, SingleTenantPassThroughMatchesPlainRun) {
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = 60;
  trace_options.seed = 17;
  trace_options.max_duration_hours = 48.0;
  const Trace trace = GenerateAlibabaTrace(trace_options);

  FederationTenant tenant;
  tenant.name = "solo";
  tenant.trace = trace;
  tenant.kind = SchedulerKind::kEva;
  FederationOptions options;  // Provider defaults: unlimited, on-demand only.
  options.num_threads = 2;
  const FederationResult federated = RunFederation({tenant}, options);

  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
  const SimulationMetrics plain = RunSimulation(trace, bundle.scheduler.get(), catalog,
                                                interference, SimulatorOptions{});

  ASSERT_EQ(federated.tenants.size(), 1u);
  ExpectBitIdentical(federated.tenants[0].metrics, plain);
  EXPECT_EQ(federated.tenants[0].metrics.acquisitions_denied, 0);
  EXPECT_EQ(federated.tenants[0].metrics.spot_preemptions, 0);
  EXPECT_EQ(federated.tenants[0].metrics.spot_cost, 0.0);
}

// The conflict-grouped round phase at production tenant counts: 100 tenants
// sharing finite P3/R7i pools and an unlimited C7i pool (the concurrent-
// grant path plus the swept-peak accounting) must be bit-identical across
// pool sizes {1, 2, 8} — the tentpole invariant of the sharded driver.
TEST(FederationTest, PoolSizeDeterminismAtOneHundredTenants) {
  AlibabaTraceOptions base_options;
  base_options.num_jobs = 2000;
  base_options.seed = 17;
  base_options.max_duration_hours = 48.0;
  const std::vector<FederationTenant> tenants =
      MakeTenantShards(GenerateAlibabaTrace(base_options), /*num_tenants=*/100,
                       /*jobs_per_tenant=*/6);

  FederationOptions options;
  options.provider.enabled = true;
  // Finite P3/R7i shards (contended, serialized per group) + unlimited C7i
  // (concurrent grants, peak via the finalize sweep).
  options.provider.family_capacity = {40, -1, 30};
  options.provider.spot.enabled = true;
  options.provider.spot.price_step_s = 900.0;
  options.provider.spot.spike_probability = 0.15;
  options.provider.spot.seed = 4242;
  options.simulator.seed = 5;

  options.num_threads = 1;
  const FederationResult one = RunFederation(tenants, options);
  options.num_threads = 2;
  const FederationResult two = RunFederation(tenants, options);
  options.num_threads = 8;
  const FederationResult eight = RunFederation(tenants, options);

  ASSERT_EQ(one.tenants.size(), 100u);
  for (std::size_t i = 0; i < one.tenants.size(); ++i) {
    ExpectBitIdentical(one.tenants[i].metrics, two.tenants[i].metrics);
    ExpectBitIdentical(one.tenants[i].metrics, eight.tenants[i].metrics);
  }
  for (const FederationResult* other : {&two, &eight}) {
    for (std::size_t f = 0; f < static_cast<std::size_t>(kNumInstanceFamilies); ++f) {
      EXPECT_EQ(one.provider.families[f].granted, other->provider.families[f].granted);
      EXPECT_EQ(one.provider.families[f].denied, other->provider.families[f].denied);
      EXPECT_EQ(one.provider.families[f].preempted,
                other->provider.families[f].preempted);
      EXPECT_EQ(one.provider.families[f].released, other->provider.families[f].released);
      EXPECT_EQ(one.provider.families[f].peak_in_use,
                other->provider.families[f].peak_in_use);
      EXPECT_EQ(one.provider.families[f].instance_hours,
                other->provider.families[f].instance_hours);
    }
  }
  // Sanity: the scenario actually contends and actually parallelizes.
  EXPECT_GT(one.provider.TotalDenied(), 0);
  EXPECT_GT(one.stats.round_groups, one.stats.barriers);  // >1 group somewhere.
}

// The fault-injection tentpole invariant: with the deterministic fault
// model on (zone outages, correlated bursts, maintenance drains all
// engaging against the shared provider), the 100-tenant federation must
// still be bit-identical across pool sizes {1, 2, 8} — fault kills in the
// parallel phase only release capacity (commutative per shard), the outage
// capacity clamp is a pure function of time consulted at the serialized
// acquire, and every fault schedule is a pure hash of (seed, kind, step).
TEST(FederationTest, FaultInjectionDeterministicAtOneHundredTenants) {
  AlibabaTraceOptions base_options;
  base_options.num_jobs = 2000;
  base_options.seed = 17;
  base_options.max_duration_hours = 48.0;
  const std::vector<FederationTenant> tenants =
      MakeTenantShards(GenerateAlibabaTrace(base_options), /*num_tenants=*/100,
                       /*jobs_per_tenant=*/6);

  FederationOptions options;
  options.provider.enabled = true;
  options.provider.family_capacity = {40, -1, 30};
  options.provider.spot.enabled = true;
  options.provider.spot.price_step_s = 900.0;
  options.provider.spot.spike_probability = 0.15;
  options.provider.spot.seed = 4242;
  options.simulator.seed = 5;
  options.simulator.faults.enabled = true;
  options.simulator.faults.seed = 97;

  options.num_threads = 1;
  const FederationResult one = RunFederation(tenants, options);
  options.num_threads = 2;
  const FederationResult two = RunFederation(tenants, options);
  options.num_threads = 8;
  const FederationResult eight = RunFederation(tenants, options);

  ASSERT_EQ(one.tenants.size(), 100u);
  std::int64_t fault_events = 0;
  std::int64_t replacements = 0;
  for (std::size_t i = 0; i < one.tenants.size(); ++i) {
    ExpectBitIdentical(one.tenants[i].metrics, two.tenants[i].metrics);
    ExpectBitIdentical(one.tenants[i].metrics, eight.tenants[i].metrics);
    const FaultStats& faults = one.tenants[i].metrics.faults;
    fault_events +=
        faults.zone_outages + faults.correlated_failures + faults.maintenance_drains;
    replacements += faults.replacements_completed;
    EXPECT_GE(faults.goodput_ratio, 0.0);
    EXPECT_LE(faults.goodput_ratio, 1.0);
  }
  for (const FederationResult* other : {&two, &eight}) {
    for (std::size_t f = 0; f < static_cast<std::size_t>(kNumInstanceFamilies); ++f) {
      EXPECT_EQ(one.provider.families[f].granted, other->provider.families[f].granted);
      EXPECT_EQ(one.provider.families[f].denied, other->provider.families[f].denied);
      EXPECT_EQ(one.provider.families[f].fault_denied,
                other->provider.families[f].fault_denied);
      EXPECT_EQ(one.provider.families[f].preempted,
                other->provider.families[f].preempted);
      EXPECT_EQ(one.provider.families[f].released, other->provider.families[f].released);
      EXPECT_EQ(one.provider.families[f].peak_in_use,
                other->provider.families[f].peak_in_use);
      EXPECT_EQ(one.provider.families[f].instance_hours,
                other->provider.families[f].instance_hours);
    }
  }
  // The scenario is not vacuous: faults fired, tasks were re-placed, the
  // outage clamp denied at least one acquire, and every tenant still
  // drained (faults delay jobs, they never lose them).
  EXPECT_GT(fault_events, 0);
  EXPECT_GT(replacements, 0);
  std::int64_t fault_denied = 0;
  for (std::size_t f = 0; f < static_cast<std::size_t>(kNumInstanceFamilies); ++f) {
    fault_denied += one.provider.families[f].fault_denied;
  }
  EXPECT_GT(fault_denied, 0);
  for (const FederationResult::Tenant& tenant : one.tenants) {
    EXPECT_EQ(tenant.metrics.jobs_completed, tenant.metrics.jobs_submitted)
        << tenant.name;
  }
}

// Two tenants racing the single slot of one family shard: the grouped phase
// must arbitrate the grant in tenant-index order, every time, at every pool
// size. Demands carry GPUs on both vectors, so only the P3 family fits and
// the two tenants provably share that shard.
TEST(FederationTest, ContendedShardGrantsArbitrateInTenantOrder) {
  const auto gpu_job = [] {
    JobSpec job = JobSpec::FromWorkload(/*id=*/0, /*arrival_time_s=*/0.0,
                                        static_cast<WorkloadId>(0),
                                        /*duration_s=*/1800.0, /*num_tasks=*/1);
    job.demand_p3 = ResourceVector(1.0, 4.0, 16.0);
    job.demand_cpu = job.demand_p3;
    return job;
  };
  std::vector<FederationTenant> tenants(2);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    tenants[i].name = "racer" + std::to_string(i);
    tenants[i].trace.name = tenants[i].name;
    tenants[i].trace.jobs = {gpu_job()};
  }

  FederationOptions options;
  options.provider.enabled = true;
  options.provider.family_capacity = {1, -1, -1};  // One P3 slot for two tenants.

  options.num_threads = 1;
  const FederationResult serial = RunFederation(tenants, options);
  options.num_threads = 8;
  const FederationResult parallel = RunFederation(tenants, options);

  for (const FederationResult* result : {&serial, &parallel}) {
    ASSERT_EQ(result->tenants.size(), 2u);
    const SimulationMetrics& winner = result->tenants[0].metrics;
    const SimulationMetrics& loser = result->tenants[1].metrics;
    // Tenant 0 wins the t=0 round's only slot; tenant 1 is denied and
    // retries until the release.
    EXPECT_EQ(winner.acquisitions_denied, 0);
    EXPECT_GT(loser.acquisitions_denied, 0);
    EXPECT_EQ(winner.jobs_completed, 1);
    EXPECT_EQ(loser.jobs_completed, 1);
    EXPECT_LT(winner.avg_jct_hours, loser.avg_jct_hours);
  }
  ExpectBitIdentical(serial.tenants[0].metrics, parallel.tenants[0].metrics);
  ExpectBitIdentical(serial.tenants[1].metrics, parallel.tenants[1].metrics);
}

// Staggered round offsets: a pure function of (stagger_seed, tenant index),
// so the same options reproduce bit-identically across runs and pool sizes
// — and the offsets must actually shift the trajectory vs. the unstaggered
// run.
TEST(FederationTest, StaggerOffsetsAreDeterministic) {
  const std::vector<FederationTenant> tenants = MakeTenants(25);
  FederationOptions options = ConstrainedSpotOptions();
  options.stagger_rounds = true;
  options.stagger_slots = 4;

  options.num_threads = 4;
  const FederationResult first = RunFederation(tenants, options);
  const FederationResult second = RunFederation(tenants, options);
  options.num_threads = 1;
  const FederationResult serial = RunFederation(tenants, options);

  ASSERT_EQ(first.tenants.size(), 3u);
  for (std::size_t i = 0; i < first.tenants.size(); ++i) {
    ExpectBitIdentical(first.tenants[i].metrics, second.tenants[i].metrics);
    ExpectBitIdentical(first.tenants[i].metrics, serial.tenants[i].metrics);
  }

  // The offsets engaged: some tenant's trajectory differs from the
  // unstaggered run (deterministically — both sides are pure functions of
  // their options).
  options.stagger_rounds = false;
  options.num_threads = 4;
  const FederationResult unstaggered = RunFederation(tenants, options);
  bool any_difference = false;
  for (std::size_t i = 0; i < first.tenants.size(); ++i) {
    any_difference = any_difference ||
                     first.tenants[i].metrics.makespan_s !=
                         unstaggered.tenants[i].metrics.makespan_s ||
                     first.tenants[i].metrics.scheduling_rounds !=
                         unstaggered.tenants[i].metrics.scheduling_rounds;
  }
  EXPECT_TRUE(any_difference);
}

// A tenant that trips max_sim_time_s aborts mid-run with its round event
// still notionally pending; the driver must see its barrier as +infinity
// and terminate instead of spinning on the stale round time forever.
TEST(FederationTest, AbortedTenantDoesNotWedgeTheFederation) {
  SyntheticTraceOptions trace_options;
  trace_options.num_jobs = 4;
  trace_options.seed = 2;
  FederationTenant tenant;
  tenant.name = "doomed";
  tenant.trace = GenerateSyntheticTrace(trace_options);
  tenant.kind = SchedulerKind::kEva;

  FederationOptions options;
  // The second scheduling round (t=300s) already exceeds the limit.
  options.simulator.max_sim_time_s = 100.0;
  const FederationResult result = RunFederation({tenant}, options);
  ASSERT_EQ(result.tenants.size(), 1u);
  EXPECT_EQ(result.tenants[0].metrics.jobs_completed, 0);
  EXPECT_LE(result.tenants[0].metrics.makespan_s, 100.0);
}

}  // namespace
}  // namespace eva
