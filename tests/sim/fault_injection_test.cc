// End-to-end fault-injection tests on the real simulator: each fault kind
// in isolation must (a) actually engage, (b) reproduce bit-identically
// under the same seed, and (c) delay jobs without losing them — a killed or
// drained task re-runs to completion. The fault-off run must stay
// bit-exact with a default-options run: the subsystem is default-off and a
// disabled model is never consulted.
//
// (The suite name deliberately matches the CI sanitizer filter
// `Federation|ThreadPool|Fault`: these handlers run inside the federation's
// parallel phase, so they get TSan coverage too.)

#include <gtest/gtest.h>

#include <cstdint>

#include "src/obs/flight_recorder.h"
#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

Trace MakeTrace() {
  AlibabaTraceOptions options;
  options.num_jobs = 200;
  options.seed = 17;
  options.max_duration_hours = 48.0;
  return GenerateAlibabaTrace(options);
}

SimulationMetrics RunCase(const Trace& trace, const SimulatorOptions& options) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
  return RunSimulation(trace, bundle.scheduler.get(), catalog, interference, options);
}

// Same, with the divergence flight recorder attached: `flight` collects a
// per-round digest so a determinism failure names its first bad round
// instead of just "the final metrics differ".
SimulationMetrics RunCaseRecorded(const Trace& trace, SimulatorOptions options,
                                  FlightRecorder* flight) {
  options.observability.enabled = true;
  options.observability.flight_recorder = flight;
  return RunCase(trace, options);
}

// One fault kind in isolation: zero the other kinds' probabilities, then
// raise just `slot` so the kind engages reliably on a short trace.
SimulatorOptions OnlyKind(double FaultInjectorOptions::* slot, double probability) {
  FaultInjectorOptions faults;
  faults.enabled = true;
  faults.seed = 97;
  faults.zone_outage_probability = 0.0;
  faults.correlated_failure_probability = 0.0;
  faults.drain_probability = 0.0;
  faults.*slot = probability;
  SimulatorOptions options;
  options.faults = faults;
  return options;
}

void ExpectBitIdentical(const SimulationMetrics& a, const SimulationMetrics& b) {
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.instances_launched, b.instances_launched);
  EXPECT_EQ(a.task_migrations, b.task_migrations);
  EXPECT_EQ(a.avg_jct_hours, b.avg_jct_hours);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.scheduling_rounds, b.scheduling_rounds);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.faults.zone_outages, b.faults.zone_outages);
  EXPECT_EQ(a.faults.correlated_failures, b.faults.correlated_failures);
  EXPECT_EQ(a.faults.maintenance_drains, b.faults.maintenance_drains);
  EXPECT_EQ(a.faults.instances_killed, b.faults.instances_killed);
  EXPECT_EQ(a.faults.instances_drained, b.faults.instances_drained);
  EXPECT_EQ(a.faults.tasks_evicted, b.faults.tasks_evicted);
  EXPECT_EQ(a.faults.tasks_lost, b.faults.tasks_lost);
  EXPECT_EQ(a.faults.lost_work_seconds, b.faults.lost_work_seconds);
  EXPECT_EQ(a.faults.replacements_completed, b.faults.replacements_completed);
  EXPECT_EQ(a.faults.replacement_latency_min_s, b.faults.replacement_latency_min_s);
  EXPECT_EQ(a.faults.replacement_latency_median_s, b.faults.replacement_latency_median_s);
  EXPECT_EQ(a.faults.replacement_latency_p95_s, b.faults.replacement_latency_p95_s);
  EXPECT_EQ(a.faults.goodput_ratio, b.faults.goodput_ratio);
}

TEST(FaultInjectionTest, FaultOffRunIsBitExactWithDefaultRun) {
  const Trace trace = MakeTrace();
  const SimulationMetrics baseline = RunCase(trace, SimulatorOptions{});

  // Disabled model with aggressive probabilities: must never be consulted.
  SimulatorOptions armed_but_off;
  armed_but_off.faults.zone_outage_probability = 1.0;
  armed_but_off.faults.correlated_failure_probability = 1.0;
  armed_but_off.faults.drain_probability = 1.0;
  ASSERT_FALSE(armed_but_off.faults.enabled);
  const SimulationMetrics off = RunCase(trace, armed_but_off);

  ExpectBitIdentical(baseline, off);
  EXPECT_EQ(off.faults.zone_outages, 0);
  EXPECT_EQ(off.faults.instances_killed, 0);
  EXPECT_EQ(off.faults.tasks_lost, 0);
  EXPECT_EQ(off.faults.lost_work_seconds, 0.0);
  EXPECT_EQ(off.faults.goodput_ratio, 1.0);
}

TEST(FaultInjectionTest, ZoneOutagesAreDeterministicAndLoseNoJobs) {
  const Trace trace = MakeTrace();
  const SimulatorOptions options =
      OnlyKind(&FaultInjectorOptions::zone_outage_probability, 0.05);

  FlightRecorder flight_first(1 << 14);
  FlightRecorder flight_second(1 << 14);
  const SimulationMetrics first = RunCaseRecorded(trace, options, &flight_first);
  const SimulationMetrics second = RunCaseRecorded(trace, options, &flight_second);
  ExpectBitIdentical(first, second);
  // Round-by-round, not just at the end: the flight recorder sees every
  // digest field agree on every round.
  const auto divergence = DiffFirstDivergence(flight_first, flight_second);
  EXPECT_FALSE(divergence.has_value())
      << "first divergence: " << divergence->ToString();
  EXPECT_GT(flight_first.rounds_recorded(), 0);

  EXPECT_GT(first.faults.zone_outages, 0);
  EXPECT_EQ(first.faults.correlated_failures, 0);
  EXPECT_EQ(first.faults.maintenance_drains, 0);
  EXPECT_GT(first.faults.instances_killed, 0);
  EXPECT_GT(first.faults.tasks_lost, 0);
  EXPECT_GT(first.faults.lost_work_seconds, 0.0);
  // Abrupt kills destroy in-flight work but never a job.
  EXPECT_EQ(first.jobs_completed, first.jobs_submitted);
  EXPECT_GT(first.faults.goodput_ratio, 0.0);
  EXPECT_LT(first.faults.goodput_ratio, 1.0);
  // Re-placement latency quantiles are ordered and populated.
  EXPECT_GT(first.faults.replacements_completed, 0);
  EXPECT_GT(first.faults.replacement_latency_min_s, 0.0);
  EXPECT_LE(first.faults.replacement_latency_min_s,
            first.faults.replacement_latency_median_s);
  EXPECT_LE(first.faults.replacement_latency_median_s,
            first.faults.replacement_latency_p95_s);
}

TEST(FaultInjectionTest, CorrelatedFailuresAreDeterministicAndBounded) {
  const Trace trace = MakeTrace();
  const SimulatorOptions options =
      OnlyKind(&FaultInjectorOptions::correlated_failure_probability, 0.05);

  const SimulationMetrics first = RunCase(trace, options);
  const SimulationMetrics second = RunCase(trace, options);
  ExpectBitIdentical(first, second);

  EXPECT_GT(first.faults.correlated_failures, 0);
  EXPECT_EQ(first.faults.zone_outages, 0);
  EXPECT_EQ(first.faults.maintenance_drains, 0);
  EXPECT_GT(first.faults.instances_killed, 0);
  // Each burst kills at most correlated_failure_size instances.
  EXPECT_LE(first.faults.instances_killed,
            first.faults.correlated_failures *
                static_cast<std::int64_t>(options.faults.correlated_failure_size));
  EXPECT_EQ(first.jobs_completed, first.jobs_submitted);
}

TEST(FaultInjectionTest, MaintenanceDrainsEvictGracefully) {
  const Trace trace = MakeTrace();
  const SimulatorOptions options =
      OnlyKind(&FaultInjectorOptions::drain_probability, 0.05);

  const SimulationMetrics first = RunCase(trace, options);
  const SimulationMetrics second = RunCase(trace, options);
  ExpectBitIdentical(first, second);

  EXPECT_GT(first.faults.maintenance_drains, 0);
  EXPECT_EQ(first.faults.zone_outages, 0);
  EXPECT_EQ(first.faults.correlated_failures, 0);
  EXPECT_GT(first.faults.instances_drained, 0);
  EXPECT_GT(first.faults.tasks_evicted, 0);
  EXPECT_EQ(first.jobs_completed, first.jobs_submitted);
  // The 10-minute notice dwarfs checkpoint times: most (usually all)
  // drained work checkpoints out cleanly, so lost work stays far below the
  // abrupt-kill regimes. Bound it loosely: no more tasks lost at the
  // deadline than were evicted with notice.
  EXPECT_LE(first.faults.tasks_lost, first.faults.tasks_evicted);
}

TEST(FaultInjectionTest, DifferentSeedsDiverge) {
  const Trace trace = MakeTrace();
  SimulatorOptions a;
  a.faults.enabled = true;
  a.faults.seed = 97;
  SimulatorOptions b = a;
  b.faults.seed = 4242;

  FlightRecorder flight_a(1 << 14);
  FlightRecorder flight_b(1 << 14);
  const SimulationMetrics first = RunCaseRecorded(trace, a, &flight_a);
  const SimulationMetrics second = RunCaseRecorded(trace, b, &flight_b);
  // Both engage, but the schedules differ somewhere observable.
  const bool diverged =
      first.faults.zone_outages != second.faults.zone_outages ||
      first.faults.instances_killed != second.faults.instances_killed ||
      first.faults.lost_work_seconds != second.faults.lost_work_seconds ||
      first.makespan_s != second.makespan_s;
  EXPECT_TRUE(diverged);
  // And the flight recorder localises the fork to a specific round.
  EXPECT_TRUE(DiffFirstDivergence(flight_a, flight_b).has_value());
}

}  // namespace
}  // namespace eva
