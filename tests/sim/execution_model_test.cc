// Unit + property tests for the execution model's incremental machinery.
//
// The property test drives randomized operation sequences through the real
// TaskLifecycle (retargets, launches, checkpoints, completions, work
// integration) and checks after every step that the dirty-set rate
// recomputation left every job at exactly the rate a full from-scratch
// recomputation would produce.

#include "src/sim/execution_model.h"

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/task_lifecycle.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

// A bench of simulator internals wired exactly like the orchestrator wires
// them, minus the scheduler.
struct EngineParts {
  EngineParts(const InstanceCatalog& catalog, const InterferenceModel& interference)
      : state(catalog),
        exec(&state, &catalog, &interference),
        lifecycle(&state, &exec, &queue, /*migration_delay_multiplier=*/1.0) {}

  ClusterState state;
  ExecutionModel exec;
  EventQueue queue;
  TaskLifecycle lifecycle;
  SimTime now = 0.0;
  SimulationMetrics metrics;

  InstRec& ReadyInstance(int type_index) {
    InstRec& instance = state.CreateInstance(type_index, now, now);
    instance.ready = true;
    return instance;
  }

  // Drains every due event the lifecycle scheduled, with the orchestrator's
  // version/state guards, then recomputes dirty rates.
  void DrainEvents() {
    while (!queue.Empty()) {
      const SimEvent event = queue.Pop();
      now = std::max(now, event.time);
      TaskRec* task = state.FindTask(event.a);
      if (task == nullptr || task->version != event.version) {
        continue;
      }
      if (event.type == SimEventType::kCheckpointDone &&
          task->state == TaskState::kCheckpointing) {
        lifecycle.OnCheckpointDone(*task, now);
      } else if (event.type == SimEventType::kLaunchDone &&
                 task->state == TaskState::kLaunching) {
        lifecycle.OnLaunchDone(*task, now);
      }
    }
    exec.RecomputeDirtyRates(now);
  }
};

class ExecutionModelTest : public testing::Test {
 protected:
  InstanceCatalog catalog_ = InstanceCatalog::AwsDefault();
};

TEST_F(ExecutionModelTest, CheckpointingNeighborStopsDegradingThroughput) {
  const InterferenceModel interference = InterferenceModel::Uniform(0.5);
  EngineParts engine(catalog_, interference);
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  JobRec& job_a = engine.state.AddJob(JobSpec::FromWorkload(0, 0.0, vit, 3600.0));
  JobRec& job_b = engine.state.AddJob(JobSpec::FromWorkload(1, 0.0, vit, 3600.0));
  InstRec& shared = engine.ReadyInstance(catalog_.IndexOf("p3.16xlarge"));
  TaskRec& task_a = *engine.state.FindTask(job_a.tasks[0]);
  TaskRec& task_b = *engine.state.FindTask(job_b.tasks[0]);
  engine.lifecycle.Retarget(task_a, shared.id, engine.now);
  engine.lifecycle.Retarget(task_b, shared.id, engine.now);
  engine.DrainEvents();

  // Both running co-located: pairwise 0.5 both ways.
  ASSERT_EQ(task_a.state, TaskState::kRunning);
  ASSERT_EQ(task_b.state, TaskState::kRunning);
  EXPECT_DOUBLE_EQ(engine.exec.TaskColocationFactor(task_a), 0.5);
  EXPECT_DOUBLE_EQ(job_a.current_rate, 0.5);

  // B starts checkpointing toward another instance: the moment it stops
  // executing it must stop degrading A, even though its container is still
  // on the shared instance.
  InstRec& other = engine.ReadyInstance(catalog_.IndexOf("p3.8xlarge"));
  engine.lifecycle.Retarget(task_b, other.id, engine.now);
  ASSERT_EQ(task_b.state, TaskState::kCheckpointing);
  ASSERT_EQ(shared.present.count(task_b.id), 1u);
  EXPECT_DOUBLE_EQ(engine.exec.TaskColocationFactor(task_a), 1.0);
  engine.exec.RecomputeDirtyRates(engine.now);
  EXPECT_DOUBLE_EQ(job_a.current_rate, 1.0);

  // After the checkpoint completes the container leaves the present set —
  // no stale entry remains to look up.
  engine.DrainEvents();
  EXPECT_EQ(shared.present.count(task_b.id), 0u);
  EXPECT_DOUBLE_EQ(engine.exec.TaskColocationFactor(task_a), 1.0);
}

TEST_F(ExecutionModelTest, CompletedNeighborLeavesNoStaleEntry) {
  const InterferenceModel interference = InterferenceModel::Uniform(0.8);
  EngineParts engine(catalog_, interference);
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  JobRec& job_a = engine.state.AddJob(JobSpec::FromWorkload(0, 0.0, vit, 3600.0));
  JobRec& job_b = engine.state.AddJob(JobSpec::FromWorkload(1, 0.0, vit, 3600.0));
  InstRec& shared = engine.ReadyInstance(catalog_.IndexOf("p3.16xlarge"));
  TaskRec& task_a = *engine.state.FindTask(job_a.tasks[0]);
  engine.lifecycle.Retarget(task_a, shared.id, engine.now);
  engine.lifecycle.Retarget(*engine.state.FindTask(job_b.tasks[0]), shared.id, engine.now);
  engine.DrainEvents();
  EXPECT_DOUBLE_EQ(engine.exec.TaskColocationFactor(task_a), 0.8);

  engine.lifecycle.CompleteJob(job_b, engine.now, engine.metrics);
  // Terminal transition pruned the present set; A is alone again and every
  // remaining present entry resolves (TaskColocationFactor at()s them).
  EXPECT_EQ(shared.present.size(), 1u);
  EXPECT_DOUBLE_EQ(engine.exec.TaskColocationFactor(task_a), 1.0);
  engine.exec.RecomputeDirtyRates(engine.now);
  EXPECT_DOUBLE_EQ(job_a.current_rate, 1.0);
}

TEST_F(ExecutionModelTest, WorkIntegrationFlagsCompletionCandidates) {
  const InterferenceModel interference = InterferenceModel::Uniform(1.0);
  EngineParts engine(catalog_, interference);
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  JobRec& job = engine.state.AddJob(JobSpec::FromWorkload(0, 0.0, vit, 100.0));
  InstRec& instance = engine.ReadyInstance(catalog_.IndexOf("p3.8xlarge"));
  engine.lifecycle.Retarget(*engine.state.FindTask(job.tasks[0]), instance.id, engine.now);
  engine.DrainEvents();
  ASSERT_EQ(engine.exec.progressing().count(0), 1u);

  engine.exec.IntegrateWork(50.0);
  EXPECT_TRUE(engine.exec.completion_candidates().empty());
  engine.exec.IntegrateWork(50.0);
  EXPECT_EQ(engine.exec.completion_candidates().count(0), 1u);

  engine.exec.OnJobDeactivated(0);
  EXPECT_TRUE(engine.exec.completion_candidates().empty());
  EXPECT_TRUE(engine.exec.progressing().empty());
}

// Full recomputation oracle: what every job's rate should be, from scratch.
double FullRecomputeRate(const ExecutionModel& exec, const ClusterState& state,
                         const JobRec& job) {
  double rate = -1.0;
  for (TaskId task_id : job.tasks) {
    const TaskRec& task = state.tasks().at(task_id);
    if (task.state != TaskState::kRunning) {
      return 0.0;
    }
    const double tput = exec.TaskThroughput(task);
    rate = rate < 0.0 ? tput : std::min(rate, tput);
  }
  return rate > 0.0 ? rate : 0.0;
}

TEST_F(ExecutionModelTest, DirtySetRecomputeEqualsFullRecomputeOnRandomOps) {
  const InterferenceModel interference = InterferenceModel::Measured();
  Rng rng(1234);
  const std::vector<int> gpu_types = {catalog_.IndexOf("p3.8xlarge"),
                                      catalog_.IndexOf("p3.16xlarge")};
  for (int round = 0; round < 20; ++round) {
    EngineParts engine(catalog_, interference);
    std::vector<InstanceId> instances;
    for (int i = 0; i < 4; ++i) {
      instances.push_back(
          engine.ReadyInstance(gpu_types[static_cast<std::size_t>(rng.UniformInt(0, 1))]).id);
    }
    JobId next_job = 0;
    for (int op = 0; op < 60; ++op) {
      const int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind <= 2 || engine.state.jobs().empty()) {
        // Add a 1-2 task job on a random Table 7 workload.
        const WorkloadId workload =
            static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
        engine.state.AddJob(JobSpec::FromWorkload(
            next_job++, engine.now, workload, rng.Uniform(100.0, 5000.0),
            static_cast<int>(rng.UniformInt(1, 2))));
      } else if (kind <= 6) {
        // Retarget a random non-done task to a random instance.
        auto it = engine.state.tasks().begin();
        std::advance(it, rng.UniformInt(0, static_cast<std::int64_t>(
                                               engine.state.tasks().size()) - 1));
        if (TaskRec* task = engine.state.FindTask(it->id)) {
          if (task->state != TaskState::kDone) {
            const std::size_t which =
                static_cast<std::size_t>(rng.UniformInt(0, 3));
            engine.lifecycle.Retarget(*task, instances[which], engine.now);
          }
        }
      } else if (kind == 7 && !engine.state.active_jobs().empty()) {
        // Complete a random active job.
        auto it = engine.state.active_jobs().begin();
        std::advance(it, rng.UniformInt(0, static_cast<std::int64_t>(
                                               engine.state.active_jobs().size()) - 1));
        engine.lifecycle.CompleteJob(*engine.state.FindJob(*it), engine.now, engine.metrics);
      } else if (kind == 8) {
        engine.exec.IntegrateWork(rng.Uniform(1.0, 300.0));
      } else {
        engine.DrainEvents();  // Let checkpoints/launches complete.
      }
      engine.exec.RecomputeDirtyRates(engine.now);

      // Every job's incrementally-maintained rate equals the full oracle.
      for (const auto& [job_id, job] : engine.state.jobs()) {
        if (!job.active) {
          continue;
        }
        const double expected = FullRecomputeRate(engine.exec, engine.state, job);
        ASSERT_EQ(job.current_rate, expected)
            << "round " << round << " op " << op << " job " << job_id;
        ASSERT_EQ(engine.exec.progressing().count(job_id), expected > 0.0 ? 1u : 0u);
      }
    }
  }
}

}  // namespace
}  // namespace eva
