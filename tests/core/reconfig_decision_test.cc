#include "src/core/reconfig_decision.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eva {
namespace {

EventRateEstimator::Options DefaultOptions() {
  EventRateEstimator::Options options;
  options.initial_events_per_hour = 6.0;
  options.initial_full_probability = 0.5;
  options.ema_alpha = 0.1;
  return options;
}

TEST(EventRateEstimatorTest, InitialValues) {
  const EventRateEstimator estimator(DefaultOptions());
  EXPECT_DOUBLE_EQ(estimator.events_per_hour(), 6.0);
  EXPECT_DOUBLE_EQ(estimator.full_probability(), 0.5);
}

TEST(EventRateEstimatorTest, DHatFormula) {
  // D_hat = -1 / (lambda * ln(1 - p)).
  const EventRateEstimator estimator(DefaultOptions());
  EXPECT_NEAR(estimator.ExpectedConfigurationDurationHours(),
              -1.0 / (6.0 * std::log(0.5)), 1e-12);
}

TEST(EventRateEstimatorTest, RateEmaTracksObservedRate) {
  EventRateEstimator estimator(DefaultOptions());
  // 300-second rounds with 1 event each => 12 events/hour.
  for (int i = 0; i < 200; ++i) {
    estimator.RecordRound(1, 300.0, false);
  }
  EXPECT_NEAR(estimator.events_per_hour(), 12.0, 0.5);
}

TEST(EventRateEstimatorTest, ZeroElapsedDoesNotUpdateRate) {
  EventRateEstimator estimator(DefaultOptions());
  estimator.RecordRound(5, 0.0, false);
  EXPECT_DOUBLE_EQ(estimator.events_per_hour(), 6.0);
}

TEST(EventRateEstimatorTest, ProbabilityConvergesTowardAdoptionFrequency) {
  EventRateEstimator estimator(DefaultOptions());
  for (int i = 0; i < 300; ++i) {
    estimator.RecordRound(1, 300.0, i % 4 == 0);  // Full adopted 25% of rounds.
  }
  EXPECT_NEAR(estimator.full_probability(), 0.25, 0.1);
}

TEST(EventRateEstimatorTest, ProbabilityClamped) {
  EventRateEstimator estimator(DefaultOptions());
  for (int i = 0; i < 500; ++i) {
    estimator.RecordRound(3, 300.0, true);
  }
  EXPECT_LE(estimator.full_probability(), 0.98);
  for (int i = 0; i < 2000; ++i) {
    estimator.RecordRound(3, 300.0, false);
  }
  EXPECT_GE(estimator.full_probability(), 0.02);
}

TEST(EventRateEstimatorTest, RoundsWithoutEventsDoNotMoveProbability) {
  EventRateEstimator estimator(DefaultOptions());
  const double before = estimator.full_probability();
  estimator.RecordRound(0, 300.0, true);
  EXPECT_DOUBLE_EQ(estimator.full_probability(), before);
}

TEST(EventRateEstimatorTest, HigherEventRateShortensDHat) {
  EventRateEstimator fast(DefaultOptions());
  EventRateEstimator slow(DefaultOptions());
  for (int i = 0; i < 200; ++i) {
    fast.RecordRound(4, 300.0, false);
    slow.RecordRound(0, 300.0, false);
  }
  EXPECT_LT(fast.ExpectedConfigurationDurationHours(),
            slow.ExpectedConfigurationDurationHours());
}

TEST(ShouldAdoptFullTest, FullWinsWithBigSavingsAndLongHorizon) {
  // S_F = 2 $/hr vs S_P = 0.5; M_F = 1 vs M_P = 0; D = 2h.
  EXPECT_TRUE(ShouldAdoptFull(2.0, 0.5, 1.0, 0.0, 2.0));
}

TEST(ShouldAdoptFullTest, PartialWinsWhenHorizonShort) {
  // Same savings/overheads but D = 0.5h: 2*0.5-1 = 0 vs 0.5*0.5-0 = 0.25.
  EXPECT_FALSE(ShouldAdoptFull(2.0, 0.5, 1.0, 0.0, 0.5));
}

TEST(ShouldAdoptFullTest, TieGoesToPartial) {
  EXPECT_FALSE(ShouldAdoptFull(1.0, 1.0, 0.0, 0.0, 1.0));
}

TEST(ShouldAdoptFullTest, ExpensiveMigrationSuppressesFull) {
  EXPECT_TRUE(ShouldAdoptFull(2.0, 0.5, 1.0, 0.0, 1.0));
  EXPECT_FALSE(ShouldAdoptFull(2.0, 0.5, 5.0, 0.0, 1.0));
}

EscalationPolicy::Options TightPolicyOptions() {
  EscalationPolicy::Options options;
  options.divergence_enter = 0.15;
  options.divergence_exit = 0.05;
  options.fallback_rate_enter = 0.60;
  options.fallback_ema_alpha = 0.5;  // Fast EMA so tests stay short.
  options.min_hold_packs = 3;
  return options;
}

TEST(EscalationPolicyTest, StartsCalm) {
  const EscalationPolicy policy(TightPolicyOptions());
  EXPECT_FALSE(policy.escalated());
  EXPECT_EQ(policy.escalations(), 0);
  EXPECT_DOUBLE_EQ(policy.fallback_rate(), 0.0);
}

TEST(EscalationPolicyTest, DivergenceAtThresholdEscalates) {
  EscalationPolicy policy(TightPolicyOptions());
  policy.RecordDivergence(0.1499);  // Below enter: nothing.
  EXPECT_FALSE(policy.escalated());
  policy.RecordDivergence(0.15);  // Enter threshold is inclusive.
  EXPECT_TRUE(policy.escalated());
  EXPECT_EQ(policy.escalations(), 1);
}

TEST(EscalationPolicyTest, HysteresisBandHoldsTheLatch) {
  EscalationPolicy policy(TightPolicyOptions());
  policy.RecordDivergence(0.2);
  ASSERT_TRUE(policy.escalated());
  // Hold for min_hold_packs exact packs, then measure a divergence inside
  // the (exit, enter) band: the latch must not release.
  for (int i = 0; i < 10; ++i) {
    policy.RecordPack(false);
  }
  policy.RecordDivergence(0.10);  // 0.05 < 0.10 < 0.15: the band.
  EXPECT_TRUE(policy.escalated());
  // At (or below) the exit threshold the latch clears and — with the hold
  // already served — the policy de-escalates.
  policy.RecordDivergence(0.05);
  EXPECT_FALSE(policy.escalated());
  EXPECT_EQ(policy.escalations(), 1);
}

TEST(EscalationPolicyTest, MinHoldDelaysDeescalation) {
  EscalationPolicy policy(TightPolicyOptions());
  policy.RecordDivergence(0.5);
  ASSERT_TRUE(policy.escalated());
  // Divergence clears immediately, but only min_hold_packs = 3 exact packs
  // release the policy.
  policy.RecordDivergence(0.0);
  EXPECT_TRUE(policy.escalated());
  policy.RecordPack(false);
  policy.RecordPack(false);
  EXPECT_TRUE(policy.escalated());
  policy.RecordPack(false);
  EXPECT_FALSE(policy.escalated());
}

TEST(EscalationPolicyTest, FallbackRateSpikesEscalate) {
  EscalationPolicy policy(TightPolicyOptions());
  // alpha = 0.5: two consecutive fallbacks put the EMA at 0.75 > 0.60.
  policy.RecordPack(true);
  EXPECT_FALSE(policy.escalated());
  policy.RecordPack(true);
  EXPECT_TRUE(policy.escalated());
  EXPECT_EQ(policy.escalations(), 1);
}

TEST(EscalationPolicyTest, DeescalationResetsTheFallbackWindow) {
  EscalationPolicy policy(TightPolicyOptions());
  policy.RecordPack(true);
  policy.RecordPack(true);
  ASSERT_TRUE(policy.escalated());
  // Packs while escalated do not feed the EMA; after the hold plus a clear
  // divergence reading the policy releases with a fresh window.
  for (int i = 0; i < 3; ++i) {
    policy.RecordPack(false);
  }
  policy.RecordDivergence(0.0);
  ASSERT_FALSE(policy.escalated());
  EXPECT_DOUBLE_EQ(policy.fallback_rate(), 0.0);
  // One fallback alone (EMA 0.5 < 0.60) must not re-escalate.
  policy.RecordPack(true);
  EXPECT_FALSE(policy.escalated());
  EXPECT_EQ(policy.escalations(), 1);
}

TEST(EscalationPolicyTest, ReescalationCountsEpisodes) {
  EscalationPolicy policy(TightPolicyOptions());
  for (int episode = 0; episode < 3; ++episode) {
    policy.RecordDivergence(0.3);
    ASSERT_TRUE(policy.escalated());
    for (int i = 0; i < 3; ++i) {
      policy.RecordPack(false);
    }
    policy.RecordDivergence(0.0);
    ASSERT_FALSE(policy.escalated());
  }
  EXPECT_EQ(policy.escalations(), 3);
}

}  // namespace
}  // namespace eva
