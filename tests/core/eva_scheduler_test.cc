#include "src/core/eva_scheduler.h"

#include <gtest/gtest.h>

#include <set>

namespace eva {
namespace {

class EvaSchedulerTest : public testing::Test {
 protected:
  EvaSchedulerTest() : catalog_(InstanceCatalog::AwsDefault()) {
    context_.catalog = &catalog_;
  }

  TaskId AddTask(WorkloadId workload, JobId job, InstanceId on = kInvalidInstanceId) {
    TaskInfo task;
    task.id = next_task_id_++;
    task.job = job;
    task.workload = workload;
    const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    task.current_instance = on;
    context_.tasks.push_back(task);
    return task.id;
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  TaskId next_task_id_ = 0;
};

TEST_F(EvaSchedulerTest, EmptyContextYieldsEmptyConfig) {
  context_.Finalize();
  EvaScheduler scheduler;
  EXPECT_TRUE(scheduler.Schedule(context_).instances.empty());
  EXPECT_EQ(scheduler.stats().rounds, 1);
}

TEST_F(EvaSchedulerTest, CoversAllTasks) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  AddTask(vit, 1);
  AddTask(vit, 2);
  AddTask(WorkloadRegistry::IdOf("GCN"), 3);
  context_.Finalize();
  EvaScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  EXPECT_FALSE(config.Validate(context_).has_value());
  std::set<TaskId> seen;
  for (const ConfigInstance& instance : config.instances) {
    seen.insert(instance.tasks.begin(), instance.tasks.end());
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(EvaSchedulerTest, PacksCompatibleGpuJobs) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  AddTask(vit, 1);
  AddTask(vit, 2);
  context_.Finalize();
  EvaScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(catalog_.Get(config.instances[0].type_index).name, "p3.8xlarge");
}

TEST_F(EvaSchedulerTest, EventCountingTracksArrivalsAndCompletions) {
  EvaScheduler scheduler;
  context_.Finalize();
  context_.now_s = 0;
  scheduler.Schedule(context_);
  AddTask(WorkloadRegistry::IdOf("GCN"), 1);
  AddTask(WorkloadRegistry::IdOf("A3C"), 2);
  context_.Finalize();
  context_.now_s = 300;
  scheduler.Schedule(context_);
  EXPECT_EQ(scheduler.stats().events_seen, 2);  // Two arrivals.
  context_.tasks.clear();
  context_.Finalize();
  context_.now_s = 600;
  scheduler.Schedule(context_);
  EXPECT_EQ(scheduler.stats().events_seen, 4);  // Plus two completions.
}

TEST_F(EvaSchedulerTest, ObservationsFeedTheTable) {
  EvaScheduler scheduler;
  JobThroughputObservation observation;
  observation.job = 1;
  observation.normalized_throughput = 0.77;
  TaskPlacementObservation placement;
  placement.task = 0;
  placement.workload = 2;
  placement.colocated = {5};
  observation.tasks.push_back(placement);
  scheduler.ObserveThroughput({observation});
  const auto entry = scheduler.throughput_table().Lookup(2, {5});
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(*entry, 0.77);
}

TEST_F(EvaSchedulerTest, QuiescentClusterKeepsConfiguration) {
  // A packed, cost-efficient cluster with no events: Eva must not migrate.
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 1, 100);
  const TaskId b = AddTask(vit, 2, 100);
  InstanceInfo instance;
  instance.id = 100;
  instance.type_index = catalog_.IndexOf("p3.8xlarge");
  instance.tasks = {a, b};
  context_.instances.push_back(instance);
  context_.Finalize();
  EvaScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].reuse_instance, 100);
}

TEST_F(EvaSchedulerTest, FullOnlyPolicyAlwaysAdoptsFull) {
  EvaOptions options;
  options.policy = EvaOptions::Policy::kFullOnly;
  EvaScheduler scheduler(options);
  AddTask(WorkloadRegistry::IdOf("GCN"), 1);
  context_.Finalize();
  scheduler.Schedule(context_);
  EXPECT_EQ(scheduler.stats().full_adopted, 1);
}

TEST_F(EvaSchedulerTest, PartialOnlyPolicyNeverAdoptsFull) {
  EvaOptions options;
  options.policy = EvaOptions::Policy::kPartialOnly;
  EvaScheduler scheduler(options);
  AddTask(WorkloadRegistry::IdOf("GCN"), 1);
  context_.Finalize();
  scheduler.Schedule(context_);
  EXPECT_EQ(scheduler.stats().full_adopted, 0);
}

TEST_F(EvaSchedulerTest, NamesReflectConfiguration) {
  EXPECT_EQ(EvaScheduler().name(), "Eva");
  EvaOptions rp;
  rp.tnrp.interference_aware = false;
  EXPECT_EQ(EvaScheduler(rp).name(), "Eva-RP");
  EvaOptions single;
  single.tnrp.multi_task_aware = false;
  EXPECT_EQ(EvaScheduler(single).name(), "Eva-Single");
  EvaOptions full;
  full.policy = EvaOptions::Policy::kFullOnly;
  EXPECT_EQ(EvaScheduler(full).name(), "Eva (Full only)");
  EvaOptions partial;
  partial.policy = EvaOptions::Policy::kPartialOnly;
  EXPECT_EQ(EvaScheduler(partial).name(), "Eva (w/o Full)");
  EvaOptions named;
  named.name = "Custom";
  EXPECT_EQ(EvaScheduler(named).name(), "Custom");
}

TEST_F(EvaSchedulerTest, UnchangedRoundsReplayTheMemoBitForBit) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  AddTask(vit, 1);
  AddTask(vit, 2);
  AddTask(WorkloadRegistry::IdOf("GCN"), 3);
  context_.Finalize();

  EvaOptions memo_on;
  EvaOptions memo_off;
  memo_off.reuse_unchanged_rounds = false;
  EvaScheduler with_memo(memo_on);
  EvaScheduler without_memo(memo_off);

  const auto same_config = [](const ClusterConfig& a, const ClusterConfig& b) {
    ASSERT_EQ(a.instances.size(), b.instances.size());
    for (std::size_t i = 0; i < a.instances.size(); ++i) {
      EXPECT_EQ(a.instances[i].type_index, b.instances[i].type_index);
      EXPECT_EQ(a.instances[i].reuse_instance, b.instances[i].reuse_instance);
      EXPECT_EQ(a.instances[i].tasks, b.instances[i].tasks);
    }
  };

  // Several rounds over the same context (only now_s and the runtime
  // estimates change, which the memo must ignore): both schedulers return
  // identical configurations, and the memoized one recomputes only once.
  for (int round = 0; round < 4; ++round) {
    context_.now_s = 300.0 * round;
    for (TaskInfo& task : context_.tasks) {
      task.remaining_work_s = 10'000.0 - 100.0 * round;
    }
    same_config(with_memo.Schedule(context_), without_memo.Schedule(context_));
  }
  EXPECT_EQ(with_memo.stats().rounds_reused, 3);
  EXPECT_EQ(without_memo.stats().rounds_reused, 0);

  // A context change (arrival) invalidates the memo.
  AddTask(vit, 4);
  context_.Finalize();
  context_.now_s = 1500.0;
  same_config(with_memo.Schedule(context_), without_memo.Schedule(context_));
  EXPECT_EQ(with_memo.stats().rounds_reused, 3);
  EXPECT_EQ(with_memo.stats().reuse_miss_context, 1);

  // A throughput observation that changes the table also invalidates it.
  JobThroughputObservation observation;
  observation.job = 1;
  observation.normalized_throughput = 0.8;
  TaskPlacementObservation placement;
  placement.task = 0;
  placement.workload = vit;
  placement.colocated = {vit};
  observation.tasks.push_back(placement);
  with_memo.ObserveThroughput({observation});
  without_memo.ObserveThroughput({observation});
  context_.now_s = 1800.0;
  same_config(with_memo.Schedule(context_), without_memo.Schedule(context_));
  EXPECT_EQ(with_memo.stats().reuse_miss_table, 1);
}

TEST_F(EvaSchedulerTest, IncrementalPackingCoversAllTasksAndValidates) {
  EvaOptions options;
  options.incremental_packing = EvaOptions::IncrementalPacking::kOn;
  EvaScheduler scheduler(options);

  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const WorkloadId gcn = WorkloadRegistry::IdOf("GCN");
  for (JobId job = 1; job <= 5; ++job) {
    AddTask(job % 2 == 0 ? gcn : vit, job);
  }
  context_.Finalize();
  context_.delta.complete = true;
  context_.delta.jobs_arrived = {1, 2, 3, 4, 5};
  ClusterConfig config = scheduler.Schedule(context_);
  EXPECT_FALSE(config.Validate(context_).has_value());

  // A small delta round: one arrival on top of an unchanged population
  // (below the full-repack threshold, so the previous configuration is the
  // starting incumbent and only the new task is packed).
  AddTask(gcn, 6);
  context_.Finalize();
  context_.delta.Clear();
  context_.delta.complete = true;
  context_.delta.jobs_arrived = {6};
  context_.now_s = 300.0;
  config = scheduler.Schedule(context_);
  EXPECT_FALSE(config.Validate(context_).has_value());
  std::set<TaskId> seen;
  for (const ConfigInstance& instance : config.instances) {
    seen.insert(instance.tasks.begin(), instance.tasks.end());
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_GE(scheduler.stats().incremental_packs, 1);
}

TEST_F(EvaSchedulerTest, BindWorkloadScaleResolvesAutoMode) {
  // kAuto (the default) flips on exactly at the threshold...
  EvaScheduler below;  // Never bound: stays exact, like a hand-built harness.
  EXPECT_FALSE(below.incremental_active());
  below.BindWorkloadScale(9999);
  EXPECT_FALSE(below.incremental_active());
  EvaScheduler at;
  at.BindWorkloadScale(10000);
  EXPECT_TRUE(at.incremental_active());

  // ...while kOff and kOn ignore the bound scale entirely.
  EvaOptions off;
  off.incremental_packing = EvaOptions::IncrementalPacking::kOff;
  EvaScheduler forced_off(off);
  forced_off.BindWorkloadScale(1000000);
  EXPECT_FALSE(forced_off.incremental_active());
  EvaOptions on;
  on.incremental_packing = EvaOptions::IncrementalPacking::kOn;
  EvaScheduler forced_on(on);
  EXPECT_TRUE(forced_on.incremental_active());
  forced_on.BindWorkloadScale(1);
  EXPECT_TRUE(forced_on.incremental_active());
}

TEST_F(EvaSchedulerTest, OnDemandReconciliationAdoptsExactAndCounts) {
  EvaOptions options;
  options.incremental_packing = EvaOptions::IncrementalPacking::kOn;
  options.reconcile_every_n_packs = 0;  // Periodic cadence off: on-demand only.
  // Full-only: Schedule returns the Full candidate itself, so the adopted-
  // exact-config assertion below is independent of the ensemble's estimator
  // trajectory.
  options.policy = EvaOptions::Policy::kFullOnly;
  EvaScheduler scheduler(options);

  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const WorkloadId gcn = WorkloadRegistry::IdOf("GCN");
  for (JobId job = 1; job <= 5; ++job) {
    AddTask(job % 2 == 0 ? gcn : vit, job);
  }
  context_.Finalize();
  context_.delta.complete = true;
  context_.delta.jobs_arrived = {1, 2, 3, 4, 5};
  (void)scheduler.Schedule(context_);  // Pack 1: no previous -> exact.
  EXPECT_EQ(scheduler.counters().fallback_no_previous, 1);
  EXPECT_EQ(scheduler.counters().reconciliations, 0);

  AddTask(gcn, 6);
  context_.Finalize();
  context_.delta.Clear();
  context_.delta.complete = true;
  context_.delta.jobs_arrived = {6};
  context_.now_s = 300.0;
  (void)scheduler.Schedule(context_);  // Pack 2: incremental, cadence off.
  EXPECT_EQ(scheduler.counters().packs_incremental, 1);
  EXPECT_EQ(scheduler.counters().reconciliations, 0);
  EXPECT_EQ(scheduler.counters().max_kept_staleness, 1);

  scheduler.RequestReconciliation();
  AddTask(vit, 7);
  context_.Finalize();
  context_.delta.Clear();
  context_.delta.complete = true;
  context_.delta.jobs_arrived = {7};
  context_.now_s = 600.0;
  const ClusterConfig config = scheduler.Schedule(context_);  // Pack 3: reconciled.
  EXPECT_EQ(scheduler.counters().packs_incremental, 2);
  EXPECT_EQ(scheduler.counters().reconciliations, 1);
  EXPECT_FALSE(config.Validate(context_).has_value());

  // The adopted configuration is the exact repack of the full context: a
  // fresh exact-mode scheduler over the same context (same default
  // throughput table, memoryless Full Reconfiguration) must agree exactly.
  EvaOptions exact_options;
  exact_options.policy = EvaOptions::Policy::kFullOnly;
  EvaScheduler exact(exact_options);  // kAuto unbound: stays exact.
  const ClusterConfig reference = exact.Schedule(context_);
  EXPECT_EQ(ConfigEditDistance(config, reference), 0);
}

TEST_F(EvaSchedulerTest, EnsembleConsolidatesWhenSavingsAreLarge) {
  // Two ViTs running on separate p3.8xlarge instances (one task each is not
  // cost-efficient use: RP 12.24 = cost, so instances are *barely*
  // efficient); Full Reconfiguration packs them onto one and saves $12/hr,
  // which dwarfs the migration overhead.
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 1, 100);
  const TaskId b = AddTask(vit, 2, 101);
  for (InstanceId id : {100, 101}) {
    InstanceInfo instance;
    instance.id = id;
    instance.type_index = catalog_.IndexOf("p3.8xlarge");
    instance.tasks = {id == 100 ? a : b};
    context_.instances.push_back(instance);
  }
  context_.Finalize();
  EvaScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].tasks.size(), 2u);
  EXPECT_EQ(scheduler.stats().full_adopted, 1);
}

TEST_F(EvaSchedulerTest, CoalesceRequiresAPreviousRound) {
  EvaScheduler scheduler;
  // No memoized round yet: nothing can be certified a no-op.
  EXPECT_EQ(scheduler.CoalesceQuiescentRounds(5, 300.0), 0);
}

// Absorbing N quiescent rounds must leave the scheduler in exactly the
// state N memo-replayed Schedule calls (with identical, change-free
// observations) would have left it in: same estimator trajectory, same
// statistics, and an identical configuration on the next invoked round.
TEST_F(EvaSchedulerTest, CoalesceMatchesReplayedQuiescentRounds) {
  AddTask(WorkloadRegistry::IdOf("ViT"), 1);
  AddTask(WorkloadRegistry::IdOf("GCN"), 2);
  context_.Finalize();

  EvaScheduler replayed;
  EvaScheduler coalesced;
  const std::vector<JobThroughputObservation> no_observations;

  context_.now_s = 0.0;
  replayed.ObserveThroughput(no_observations);
  const ClusterConfig first_a = replayed.Schedule(context_);
  coalesced.ObserveThroughput(no_observations);
  const ClusterConfig first_b = coalesced.Schedule(context_);
  ASSERT_EQ(first_a.instances.size(), first_b.instances.size());

  constexpr int kQuiescentRounds = 7;
  for (int i = 1; i <= kQuiescentRounds; ++i) {
    context_.now_s = 300.0 * i;
    replayed.ObserveThroughput(no_observations);
    replayed.Schedule(context_);
  }
  EXPECT_EQ(coalesced.CoalesceQuiescentRounds(kQuiescentRounds, 300.0), kQuiescentRounds);

  EXPECT_EQ(coalesced.stats().rounds, replayed.stats().rounds);
  EXPECT_EQ(coalesced.stats().rounds_reused, replayed.stats().rounds_reused);
  EXPECT_EQ(coalesced.stats().full_adopted, replayed.stats().full_adopted);
  EXPECT_EQ(coalesced.stats().events_seen, replayed.stats().events_seen);
  EXPECT_EQ(coalesced.event_estimator().events_per_hour(),
            replayed.event_estimator().events_per_hour());
  EXPECT_EQ(coalesced.event_estimator().full_probability(),
            replayed.event_estimator().full_probability());
  EXPECT_EQ(coalesced.stats().rounds_coalesced, kQuiescentRounds);
  EXPECT_EQ(replayed.stats().rounds_coalesced, 0);

  // The next real round sees identical state: identical configurations.
  context_.now_s = 300.0 * (kQuiescentRounds + 1);
  replayed.ObserveThroughput(no_observations);
  coalesced.ObserveThroughput(no_observations);
  const ClusterConfig next_a = replayed.Schedule(context_);
  const ClusterConfig next_b = coalesced.Schedule(context_);
  ASSERT_EQ(next_a.instances.size(), next_b.instances.size());
  for (std::size_t i = 0; i < next_a.instances.size(); ++i) {
    EXPECT_EQ(next_a.instances[i].type_index, next_b.instances[i].type_index);
    EXPECT_EQ(next_a.instances[i].tasks, next_b.instances[i].tasks);
  }
}

TEST_F(EvaSchedulerTest, CoalesceRefusesAfterTableChange) {
  AddTask(WorkloadRegistry::IdOf("ViT"), 1);
  AddTask(WorkloadRegistry::IdOf("ViT"), 2);
  context_.Finalize();
  EvaScheduler scheduler;
  scheduler.ObserveThroughput({});
  scheduler.Schedule(context_);
  ASSERT_GT(scheduler.CoalesceQuiescentRounds(1, 300.0), 0);

  // A change-carrying observation invalidates the no-op certificate until
  // the next invoked round re-establishes it.
  JobThroughputObservation observation;
  observation.job = 1;
  observation.normalized_throughput = 0.7;
  TaskPlacementObservation placement;
  placement.task = 0;
  placement.workload = WorkloadRegistry::IdOf("ViT");
  placement.colocated = {WorkloadRegistry::IdOf("ViT")};
  observation.tasks.push_back(placement);
  scheduler.ObserveThroughput({observation});
  EXPECT_EQ(scheduler.CoalesceQuiescentRounds(1, 300.0), 0);
}

TEST_F(EvaSchedulerTest, CoalesceDisabledByOption) {
  AddTask(WorkloadRegistry::IdOf("ViT"), 1);
  context_.Finalize();
  EvaOptions options;
  options.coalesce_quiescent_rounds = false;
  EvaScheduler scheduler(options);
  scheduler.ObserveThroughput({});
  scheduler.Schedule(context_);
  EXPECT_EQ(scheduler.CoalesceQuiescentRounds(3, 300.0), 0);
}

}  // namespace
}  // namespace eva
