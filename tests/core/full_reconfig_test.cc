#include "src/core/full_reconfig.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

// The §4.2 walk-through: Table 3 tasks over the Table 3 catalog.
class PaperExampleTest : public testing::Test {
 protected:
  PaperExampleTest() : catalog_(InstanceCatalog::PaperExample()) {
    context_.catalog = &catalog_;
    const ResourceVector demands[] = {{2, 8, 24}, {1, 4, 10}, {0, 6, 20}, {0, 4, 12}};
    for (int i = 0; i < 4; ++i) {
      TaskInfo task;
      task.id = i + 1;
      task.job = i + 1;
      task.workload = 0;
      task.demand_p3 = demands[i];
      task.demand_cpu = demands[i];
      context_.tasks.push_back(task);
    }
    context_.Finalize();
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
};

TEST_F(PaperExampleTest, ReproducesTheWalkThrough) {
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context_, calculator);

  // Expected: it1 <- {tau1, tau2, tau4}, it3 <- {tau3}; $12.8/hr total.
  ASSERT_EQ(config.instances.size(), 2u);
  EXPECT_NEAR(config.HourlyCost(catalog_), 12.8, 1e-9);

  const ConfigInstance& big = config.instances[0];
  EXPECT_EQ(catalog_.Get(big.type_index).name, "it1");
  EXPECT_EQ(std::set<TaskId>(big.tasks.begin(), big.tasks.end()), std::set<TaskId>({1, 2, 4}));

  const ConfigInstance& small = config.instances[1];
  EXPECT_EQ(catalog_.Get(small.type_index).name, "it3");
  EXPECT_EQ(small.tasks, std::vector<TaskId>({3}));
}

TEST_F(PaperExampleTest, CheaperThanOneInstancePerTask) {
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context_, calculator);
  EXPECT_LT(config.HourlyCost(catalog_), 16.2 - 1e-9);
}

TEST_F(PaperExampleTest, EveryInstanceIsCostEfficient) {
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context_, calculator);
  for (const ConfigInstance& instance : config.instances) {
    std::vector<const TaskInfo*> members;
    for (TaskId id : instance.tasks) {
      members.push_back(context_.FindTask(id));
    }
    EXPECT_GE(calculator.SetRp(members) + 1e-9,
              catalog_.Get(instance.type_index).cost_per_hour);
  }
}

TEST_F(PaperExampleTest, InterferenceMakesPackingConservative) {
  // With a learned table saying tau1 collapses to 0.5 next to anything, the
  // big instance is no longer cost-efficient as a trio; tau1 is hosted
  // alone.
  ThroughputTable table(0.5);
  context_.throughput = &table;
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig config = FullReconfiguration(context_, calculator);
  for (const ConfigInstance& instance : config.instances) {
    EXPECT_EQ(instance.tasks.size(), 1u);  // t=0.5 forbids all co-location.
  }
  EXPECT_NEAR(config.HourlyCost(catalog_), 16.2, 1e-9);
}

TEST_F(PaperExampleTest, ValidatesAgainstContext) {
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context_, calculator);
  EXPECT_FALSE(config.Validate(context_).has_value());
}

// Randomized behavior over the real catalog.
class FullReconfigRandomTest : public testing::TestWithParam<int> {};

SchedulingContext RandomContext(int num_tasks, std::uint64_t seed,
                                const InstanceCatalog& catalog) {
  Rng rng(seed);
  SchedulingContext context;
  context.catalog = &catalog;
  for (int i = 0; i < num_tasks; ++i) {
    const WorkloadId workload =
        static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
    const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
    TaskInfo task;
    task.id = i;
    task.job = i;
    task.workload = workload;
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    context.tasks.push_back(task);
  }
  context.Finalize();
  return context;
}

TEST_P(FullReconfigRandomTest, AssignsEveryTaskExactlyOnce) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = RandomContext(60, GetParam(), catalog);
  const TnrpCalculator calculator(context, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  std::set<TaskId> seen;
  for (const ConfigInstance& instance : config.instances) {
    for (TaskId id : instance.tasks) {
      EXPECT_TRUE(seen.insert(id).second) << "task assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), context.tasks.size());
}

TEST_P(FullReconfigRandomTest, RespectsCapacities) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = RandomContext(60, GetParam(), catalog);
  const TnrpCalculator calculator(context, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  EXPECT_FALSE(config.Validate(context).has_value());
}

TEST_P(FullReconfigRandomTest, NeverCostsMoreThanNoPacking) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = RandomContext(60, GetParam(), catalog);
  const TnrpCalculator calculator(context, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  Money no_packing = 0.0;
  for (const TaskInfo& task : context.tasks) {
    no_packing += calculator.ReservationPrice(task);
  }
  EXPECT_LE(config.HourlyCost(catalog), no_packing + 1e-9);
}

TEST_P(FullReconfigRandomTest, CostEfficiencyInvariantHolds) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SchedulingContext context = RandomContext(60, GetParam(), catalog);
  ThroughputTable table(0.95);
  SchedulingContext with_table = context;
  with_table.throughput = &table;
  const TnrpCalculator calculator(with_table, {});
  const ClusterConfig config = FullReconfiguration(with_table, calculator);
  for (const ConfigInstance& instance : config.instances) {
    std::vector<const TaskInfo*> members;
    for (TaskId id : instance.tasks) {
      members.push_back(with_table.FindTask(id));
    }
    EXPECT_GE(calculator.SetTnrp(members) + 1e-6,
              catalog.Get(instance.type_index).cost_per_hour);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullReconfigRandomTest, testing::Range(1, 11));

TEST(FullReconfigEdgeTest, EmptyContextYieldsEmptyConfig) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  SchedulingContext context;
  context.catalog = &catalog;
  context.Finalize();
  const TnrpCalculator calculator(context, {});
  EXPECT_TRUE(FullReconfiguration(context, calculator).instances.empty());
}

TEST(FullReconfigEdgeTest, UnplaceableTaskReportedUnassigned) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  SchedulingContext context;
  context.catalog = &catalog;
  TaskInfo task;
  task.id = 1;
  task.job = 1;
  task.workload = 0;
  task.demand_p3 = {64, 1, 1};
  task.demand_cpu = {64, 1, 1};
  context.tasks.push_back(task);
  context.Finalize();
  const TnrpCalculator calculator(context, {});
  PackingOptions options;
  options.assign_leftovers_standalone = false;
  const PackingResult result =
      PackByReservationPrice(context, calculator, {&context.tasks[0]}, options);
  EXPECT_TRUE(result.instances.empty());
  ASSERT_EQ(result.unassigned.size(), 1u);
  EXPECT_EQ(result.unassigned[0], 1);
}

TEST(FullReconfigEdgeTest, IdenticalGpuTasksShareBigInstance) {
  // Two ViT tasks (2 GPUs each) should share one p3.8xlarge instead of two.
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  SchedulingContext context;
  context.catalog = &catalog;
  for (int i = 0; i < 2; ++i) {
    TaskInfo task;
    task.id = i;
    task.job = i;
    task.workload = WorkloadRegistry::IdOf("ViT");
    task.demand_p3 = {2, 8, 60};
    task.demand_cpu = {2, 8, 60};
    context.tasks.push_back(task);
  }
  context.Finalize();
  const TnrpCalculator calculator(context, {.interference_aware = false});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(catalog.Get(config.instances[0].type_index).name, "p3.8xlarge");
}

TEST(FullReconfigEdgeTest, TnrpDecreaseStopsPacking) {
  // A throughput table that makes a second co-resident collapse the set's
  // TNRP triggers the Line 9-11 early stop.
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  SchedulingContext context;
  context.catalog = &catalog;
  for (int i = 0; i < 2; ++i) {
    TaskInfo task;
    task.id = i;
    task.job = 100 + i;
    task.workload = WorkloadRegistry::IdOf("ViT");
    task.demand_p3 = {2, 8, 60};
    task.demand_cpu = {2, 8, 60};
    context.tasks.push_back(task);
  }
  context.Finalize();
  ThroughputTable table(0.3);  // Brutal default interference.
  context.throughput = &table;
  const TnrpCalculator calculator(context, {});
  const ClusterConfig config = FullReconfiguration(context, calculator);
  // Packing both would give 2 * 0.3 * 12.24 = 7.3 < 12.24: each runs alone.
  ASSERT_EQ(config.instances.size(), 2u);
}


// The thread-pool fan-out (candidate argmax + downsizing) must reproduce
// the serial packing bit-for-bit: the parallel reductions keep the serial
// tie-breaks (earliest candidate among exact-tie maxima).
TEST(ParallelPackingTest, PoolAndSerialPackingsAreIdentical) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    SchedulingContext context;
    context.catalog = &catalog;
    for (int i = 0; i < 60; ++i) {
      const WorkloadId workload =
          static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
      const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
      TaskInfo task;
      task.id = i;
      task.job = i;
      task.workload = workload;
      task.demand_p3 = spec.demand_p3;
      task.demand_cpu = spec.demand_cpu;
      context.tasks.push_back(task);
    }
    context.Finalize();
    const TnrpCalculator calculator(context, {});
    const ClusterConfig serial = FullReconfiguration(context, calculator);

    ThreadPool pool(4);
    PackingOptions options;
    options.pool = &pool;
    options.parallel_min_candidates = 8;  // Force the fan-out path.
    const ClusterConfig parallel = FullReconfiguration(context, calculator, options);

    ASSERT_EQ(parallel.instances.size(), serial.instances.size()) << "seed " << seed;
    for (std::size_t i = 0; i < serial.instances.size(); ++i) {
      EXPECT_EQ(parallel.instances[i].type_index, serial.instances[i].type_index);
      EXPECT_EQ(parallel.instances[i].tasks, serial.instances[i].tasks);
    }
  }
}

}  // namespace
}  // namespace eva
