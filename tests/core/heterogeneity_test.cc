// Tests for the §4.2 "Generalizability to Heterogeneous Resources"
// extension: reservation price as minimum cost-per-work, family-scaled
// TNRP, packing decisions, and end-to-end execution speedups.

#include <gtest/gtest.h>

#include "src/core/eva_scheduler.h"
#include "src/core/full_reconfig.h"
#include "src/sched/reservation_price.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

class HeterogeneityTest : public testing::Test {
 protected:
  HeterogeneityTest() : catalog_(InstanceCatalog::AwsDefault()) {
    context_.catalog = &catalog_;
  }

  // A CPU task fitting both c7i.2xlarge ($0.357) and r7i.2xlarge ($0.5292).
  TaskId AddCpuTask(double c7i_speedup, double r7i_speedup) {
    TaskInfo task;
    task.id = next_id_++;
    task.job = task.id;
    task.workload = WorkloadRegistry::IdOf("A3C");
    task.demand_p3 = {0, 4, 8};
    task.demand_cpu = {0, 4, 8};
    task.family_speedup = {1.0, c7i_speedup, r7i_speedup};
    context_.tasks.push_back(task);
    return task.id;
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  TaskId next_id_ = 0;
};

TEST_F(HeterogeneityTest, HomogeneousSpeedupsReduceToOriginalRp) {
  const TaskId id = AddCpuTask(1.0, 1.0);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  // Cheapest fitting type is c7i.2xlarge at $0.357.
  EXPECT_DOUBLE_EQ(calculator.ReservationPrice(*context_.FindTask(id)), 0.357);
}

TEST_F(HeterogeneityTest, RpIsMinimumCostPerWork) {
  // 3x faster on R7i: effective cost there is 0.5292/3 = 0.1764 < 0.357.
  const TaskId id = AddCpuTask(1.0, 3.0);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  EXPECT_NEAR(calculator.ReservationPrice(*context_.FindTask(id)), 0.5292 / 3.0, 1e-12);
}

TEST_F(HeterogeneityTest, TnrpScalesWithHostFamilySpeed) {
  const TaskId id = AddCpuTask(1.0, 3.0);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const TaskInfo& task = *context_.FindTask(id);
  const Money rp = calculator.ReservationPrice(task);
  // Hosted on R7i the task delivers 3x its per-work value; on C7i only 1x.
  EXPECT_NEAR(calculator.TaskTnrp(task, {}, InstanceFamily::kR7i), rp * 3.0, 1e-12);
  EXPECT_NEAR(calculator.TaskTnrp(task, {}, InstanceFamily::kC7i), rp, 1e-12);
}

TEST_F(HeterogeneityTest, PackerPlacesTaskOnFastestPerDollarFamily) {
  AddCpuTask(1.0, 3.0);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig config = FullReconfiguration(context_, calculator);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(catalog_.Get(config.instances[0].type_index).family, InstanceFamily::kR7i);
}

TEST_F(HeterogeneityTest, ZeroSpeedupFamilyIsNeverUsed) {
  // Speedup 0 marks a family as unable to run the task at all.
  const TaskId id = AddCpuTask(0.0, 1.0);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  EXPECT_NEAR(calculator.ReservationPrice(*context_.FindTask(id)), 0.5292, 1e-12);
}

TEST(HeterogeneitySimTest, FasterFamilyShortensJct) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();

  Trace trace;
  trace.name = "hetero";
  JobSpec job = JobSpec::FromWorkload(0, 0.0, WorkloadRegistry::IdOf("A3C"), 3600.0);
  job.demand_p3 = {0, 4, 8};
  job.demand_cpu = {0, 4, 8};
  job.family_speedup = {1.0, 2.0, 1.0};  // 2x faster on C7i.
  trace.jobs.push_back(job);

  EvaScheduler scheduler;
  const SimulationMetrics metrics =
      RunSimulation(trace, &scheduler, catalog, interference, {});
  EXPECT_EQ(metrics.jobs_completed, 1);
  // RP favors C7i (0.357/2 per work beats everything); 3600s of work at 2x
  // takes 1800s: JCT = 209 provisioning + 10 launch + 1800.
  EXPECT_NEAR(metrics.jct_hours[0], (209.0 + 10.0 + 1800.0) / 3600.0, 1e-6);
}

TEST(HeterogeneitySimTest, ObservationsExcludeFamilySpeedup) {
  // Even on a 2x family, a standalone job must observe co-location
  // throughput 1.0 (the table records interference, not hardware speed).
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  Trace trace;
  trace.name = "hetero-obs";
  JobSpec job = JobSpec::FromWorkload(0, 0.0, WorkloadRegistry::IdOf("A3C"),
                                      HoursToSeconds(1.0));
  job.family_speedup = {1.0, 2.0, 1.0};
  trace.jobs.push_back(job);
  EvaScheduler scheduler;
  RunSimulation(trace, &scheduler, catalog, interference, {});
  // No co-location ever happened: the learned table must stay empty.
  EXPECT_EQ(scheduler.throughput_table().NumEntries(), 0u);
}

}  // namespace
}  // namespace eva
