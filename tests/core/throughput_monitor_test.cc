#include "src/core/throughput_monitor.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

JobThroughputObservation MakeObservation(
    JobId job, double tput,
    std::vector<std::pair<WorkloadId, std::vector<WorkloadId>>> placements) {
  JobThroughputObservation observation;
  observation.job = job;
  observation.normalized_throughput = tput;
  TaskId next = 0;
  for (auto& [workload, colocated] : placements) {
    TaskPlacementObservation task;
    task.task = next++;
    task.workload = workload;
    task.colocated = std::move(colocated);
    observation.tasks.push_back(std::move(task));
  }
  return observation;
}

TEST(ThroughputMonitorTest, SingleTaskJobRecordsDirectly) {
  ThroughputMonitor monitor(0.95);
  monitor.Observe({MakeObservation(1, 0.83, {{0, {5}}})});
  const auto entry = monitor.table().Lookup(0, {5});
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(*entry, 0.83);
}

TEST(ThroughputMonitorTest, StandaloneJobIsIgnored) {
  ThroughputMonitor monitor(0.95);
  monitor.Observe({MakeObservation(1, 0.7, {{0, {}}})});
  EXPECT_EQ(monitor.table().NumEntries(), 0u);
}

TEST(ThroughputMonitorTest, OnlyColocatedTaskBlamedInMixedJob) {
  // Two tasks; only the second shares an instance. Any degradation must be
  // attributed to the co-located one.
  ThroughputMonitor monitor(0.95);
  monitor.Observe({MakeObservation(1, 0.8, {{0, {}}, {0, {3}}})});
  EXPECT_EQ(monitor.table().NumEntries(), 1u);
  EXPECT_TRUE(monitor.table().Lookup(0, {3}).has_value());
}

TEST(ThroughputMonitorTest, Rule1NoPreviousObservationsBlamesMostColocated) {
  ThroughputMonitor monitor(0.95);
  // Task A co-located with one neighbor, task B with two.
  monitor.Observe({MakeObservation(1, 0.7, {{0, {5}}, {0, {5, 6}}})});
  EXPECT_FALSE(monitor.table().Lookup(0, {5}).has_value());
  const auto entry = monitor.table().Lookup(0, {5, 6});
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(*entry, 0.7);
}

TEST(ThroughputMonitorTest, Rule2RaisesLowestRecordedEntry) {
  ThroughputMonitor monitor(0.95);
  ThroughputTable& table = monitor.mutable_table();
  table.Record(0, {5}, 0.6);   // Pessimistic lower bound from an old round.
  table.Record(0, {6}, 0.9);
  // The job now runs at 0.8: the 0.6 entry was too low; raise it.
  monitor.Observe({MakeObservation(1, 0.8, {{0, {5}}, {0, {6}}})});
  EXPECT_DOUBLE_EQ(*monitor.table().Lookup(0, {5}), 0.8);
  EXPECT_DOUBLE_EQ(*monitor.table().Lookup(0, {6}), 0.9);
}

TEST(ThroughputMonitorTest, Rule3BlamesUnrecordedTask) {
  ThroughputMonitor monitor(0.95);
  monitor.mutable_table().Record(0, {5}, 0.9);
  // Observation 0.7 is below every recorded entry (0.9): the unrecorded
  // placement must be the straggler.
  monitor.Observe({MakeObservation(1, 0.7, {{0, {5}}, {0, {6, 7}}})});
  EXPECT_DOUBLE_EQ(*monitor.table().Lookup(0, {5}), 0.9);  // Untouched.
  EXPECT_DOUBLE_EQ(*monitor.table().Lookup(0, {6, 7}), 0.7);
}

TEST(ThroughputMonitorTest, Rule3PrefersMostColocatedUnrecorded) {
  ThroughputMonitor monitor(0.95);
  monitor.mutable_table().Record(0, {5}, 0.9);
  monitor.Observe({MakeObservation(1, 0.7, {{0, {5}}, {0, {6}}, {0, {6, 7, 8}}})});
  EXPECT_FALSE(monitor.table().Lookup(0, {6}).has_value());
  EXPECT_DOUBLE_EQ(*monitor.table().Lookup(0, {6, 7, 8}), 0.7);
}

TEST(ThroughputMonitorTest, AllRecordedAboveObservationLowersMinimum) {
  // Noise case: every entry recorded, all above the observation.
  ThroughputMonitor monitor(0.95);
  monitor.mutable_table().Record(0, {5}, 0.9);
  monitor.mutable_table().Record(0, {6}, 0.8);
  monitor.Observe({MakeObservation(1, 0.75, {{0, {5}}, {0, {6}}})});
  EXPECT_DOUBLE_EQ(*monitor.table().Lookup(0, {6}), 0.75);
  EXPECT_DOUBLE_EQ(*monitor.table().Lookup(0, {5}), 0.9);
}

TEST(ThroughputMonitorTest, ExactlyOneEntryUpdatedPerMultiTaskObservation) {
  ThroughputMonitor monitor(0.95);
  monitor.Observe({MakeObservation(1, 0.8, {{0, {5}}, {1, {6}}, {2, {7}}})});
  EXPECT_EQ(monitor.table().NumEntries(), 1u);
}

TEST(ThroughputMonitorTest, RecordedValuesStayLowerBoundsUnderExactObservations) {
  // Simulate a job whose true co-location throughputs are (0.9, 0.7): the
  // job-level observation is min = 0.7. Repeated observation must never
  // push any entry above its true value.
  ThroughputMonitor monitor(0.95);
  for (int round = 0; round < 5; ++round) {
    monitor.Observe({MakeObservation(1, 0.7, {{0, {5}}, {0, {6}}})});
  }
  const auto e5 = monitor.table().Lookup(0, {5});
  const auto e6 = monitor.table().Lookup(0, {6});
  // One of them carries 0.7 (a valid lower bound for both true values); the
  // other may be unset or also 0.7, but never above.
  if (e5.has_value()) {
    EXPECT_LE(*e5, 0.9 + 1e-12);
  }
  if (e6.has_value()) {
    EXPECT_LE(*e6, 0.7 + 1e-12);
  }
  ASSERT_TRUE(e5.has_value() || e6.has_value());
}

TEST(ThroughputMonitorTest, ConvergesUpwardAsStragglerIsDisambiguated) {
  // Round 1: both placements unknown; blame one (both have 1 neighbor; the
  // first by order). Round 2: the true fast task runs nearly clean at 0.95
  // while the straggler is still there -> rule 2 raises the pessimistic
  // entry.
  ThroughputMonitor monitor(0.95);
  monitor.Observe({MakeObservation(1, 0.7, {{0, {5}}, {0, {6}}})});
  const bool blamed5 = monitor.table().Lookup(0, {5}).has_value();
  // Later, a single-task job of workload 0 next to the same neighbor shows
  // 0.95: direct update fixes the wrongly blamed entry.
  monitor.Observe({MakeObservation(2, 0.95, {{0, {blamed5 ? 5 : 6}}})});
  const auto fixed = monitor.table().Lookup(0, {blamed5 ? 5 : 6});
  ASSERT_TRUE(fixed.has_value());
  EXPECT_DOUBLE_EQ(*fixed, 0.95);
}

TEST(ThroughputMonitorTest, DefaultPairwisePropagatesToTable) {
  ThroughputMonitor monitor(0.9);
  EXPECT_DOUBLE_EQ(monitor.table().Estimate(0, {1}), 0.9);
}

}  // namespace
}  // namespace eva
