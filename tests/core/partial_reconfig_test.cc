#include "src/core/partial_reconfig.h"

#include <gtest/gtest.h>

#include <set>

namespace eva {
namespace {

class PartialReconfigTest : public testing::Test {
 protected:
  PartialReconfigTest() : catalog_(InstanceCatalog::AwsDefault()) {
    context_.catalog = &catalog_;
    p3_2x_ = catalog_.IndexOf("p3.2xlarge");
    p3_8x_ = catalog_.IndexOf("p3.8xlarge");
  }

  TaskId AddTask(WorkloadId workload, InstanceId on = kInvalidInstanceId) {
    TaskInfo task;
    task.id = next_task_id_++;
    task.job = task.id;
    task.workload = workload;
    const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    task.current_instance = on;
    context_.tasks.push_back(task);
    return task.id;
  }

  void AddInstance(InstanceId id, int type_index, std::vector<TaskId> tasks) {
    InstanceInfo instance;
    instance.id = id;
    instance.type_index = type_index;
    instance.tasks = std::move(tasks);
    context_.instances.push_back(instance);
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  TaskId next_task_id_ = 0;
  int p3_2x_ = -1;
  int p3_8x_ = -1;
};

TEST_F(PartialReconfigTest, KeepsCostEfficientInstancesVerbatim) {
  // Two ViTs on one p3.8xlarge: RP sum 24.48 >= 12.24, clearly efficient.
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 100);
  const TaskId b = AddTask(vit, 100);
  AddInstance(100, p3_8x_, {a, b});
  context_.Finalize();
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = PartialReconfiguration(context_, calculator);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].reuse_instance, 100);
  EXPECT_EQ(config.instances[0].tasks.size(), 2u);
}

TEST_F(PartialReconfigTest, PacksOnlyNewTasks) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 100);
  const TaskId b = AddTask(vit, 100);
  AddInstance(100, p3_8x_, {a, b});
  const TaskId fresh = AddTask(WorkloadRegistry::IdOf("CycleGAN"));
  context_.Finalize();
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = PartialReconfiguration(context_, calculator);
  ASSERT_EQ(config.instances.size(), 2u);
  // The kept instance is untouched; the new task gets a fresh instance.
  EXPECT_EQ(config.instances[0].reuse_instance, 100);
  EXPECT_EQ(config.instances[1].reuse_instance, kInvalidInstanceId);
  EXPECT_EQ(config.instances[1].tasks, std::vector<TaskId>({fresh}));
  EXPECT_EQ(catalog_.Get(config.instances[1].type_index).name, "p3.2xlarge");
}

TEST_F(PartialReconfigTest, ReleasesInstancesBelowCostEfficiency) {
  // A lone CycleGAN ($3.06 RP) left on a p3.8xlarge ($12.24) after its
  // neighbors completed: the instance is no longer cost-efficient and its
  // task must be re-packed onto a p3.2xlarge.
  const TaskId lonely = AddTask(WorkloadRegistry::IdOf("CycleGAN"), 100);
  AddInstance(100, p3_8x_, {lonely});
  context_.Finalize();
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = PartialReconfiguration(context_, calculator);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].reuse_instance, kInvalidInstanceId);
  EXPECT_EQ(catalog_.Get(config.instances[0].type_index).name, "p3.2xlarge");
  EXPECT_EQ(config.instances[0].tasks, std::vector<TaskId>({lonely}));
}

TEST_F(PartialReconfigTest, EmptyInstancesAreDropped) {
  AddInstance(100, p3_2x_, {});
  context_.Finalize();
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = PartialReconfiguration(context_, calculator);
  EXPECT_TRUE(config.instances.empty());
}

TEST_F(PartialReconfigTest, InterferenceDropCanEvictInstances) {
  // Two ViTs sharing a p3.8xlarge stay efficient at t=0.95 but not once the
  // learned table reports 0.45 for the pair (2 * 0.45 * 12.24 = 11.0 < 12.24).
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 100);
  const TaskId b = AddTask(vit, 100);
  AddInstance(100, p3_8x_, {a, b});
  context_.Finalize();
  ThroughputTable table(0.95);
  table.Record(vit, {vit}, 0.45);
  context_.throughput = &table;
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig config = PartialReconfiguration(context_, calculator);
  // Both tasks re-packed standalone.
  ASSERT_EQ(config.instances.size(), 2u);
  for (const ConfigInstance& instance : config.instances) {
    EXPECT_EQ(instance.reuse_instance, kInvalidInstanceId);
    EXPECT_EQ(instance.tasks.size(), 1u);
  }
}

TEST_F(PartialReconfigTest, AllTasksCoveredExactlyOnce) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 100);
  const TaskId b = AddTask(vit, 100);
  AddInstance(100, p3_8x_, {a, b});
  AddTask(WorkloadRegistry::IdOf("GCN"));
  AddTask(WorkloadRegistry::IdOf("A3C"));
  const TaskId lonely = AddTask(WorkloadRegistry::IdOf("CycleGAN"), 101);
  AddInstance(101, p3_8x_, {lonely});
  context_.Finalize();
  const TnrpCalculator calculator(context_, {.interference_aware = false});
  const ClusterConfig config = PartialReconfiguration(context_, calculator);
  EXPECT_FALSE(config.Validate(context_).has_value());
  std::set<TaskId> seen;
  for (const ConfigInstance& instance : config.instances) {
    for (TaskId id : instance.tasks) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), context_.tasks.size());
}

}  // namespace
}  // namespace eva
