#include "src/core/incremental_reconfig.h"

#include <gtest/gtest.h>

#include <set>

#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

// A small population over the AWS catalog with a complete delta attached.
class IncrementalReconfigTest : public testing::Test {
 protected:
  IncrementalReconfigTest() : catalog_(InstanceCatalog::AwsDefault()) {
    context_.catalog = &catalog_;
  }

  TaskId AddTask(const char* workload, JobId job, InstanceId on = kInvalidInstanceId) {
    const WorkloadId id = WorkloadRegistry::IdOf(workload);
    const WorkloadSpec& spec = WorkloadRegistry::Get(id);
    TaskInfo task;
    task.id = next_task_id_++;
    task.job = job;
    task.workload = id;
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    task.current_instance = on;
    context_.tasks.push_back(task);
    return task.id;
  }

  std::set<TaskId> AssignedTasks(const ClusterConfig& config) {
    std::set<TaskId> seen;
    for (const ConfigInstance& instance : config.instances) {
      seen.insert(instance.tasks.begin(), instance.tasks.end());
    }
    return seen;
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  TaskId next_task_id_ = 0;
};

TEST_F(IncrementalReconfigTest, EmptyDeltaReproducesThePreviousConfig) {
  for (JobId job = 1; job <= 4; ++job) {
    AddTask(job % 2 == 0 ? "GCN" : "ViT", job);
  }
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig previous = FullReconfiguration(context_, calculator);

  context_.delta.complete = true;  // Nothing changed.
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, previous);
  EXPECT_FALSE(result.full_repack);
  ASSERT_EQ(result.config.instances.size(), previous.instances.size());
  for (std::size_t i = 0; i < previous.instances.size(); ++i) {
    EXPECT_EQ(result.config.instances[i].type_index, previous.instances[i].type_index);
    EXPECT_EQ(result.config.instances[i].tasks, previous.instances[i].tasks);
  }
}

TEST_F(IncrementalReconfigTest, IncompleteDeltaFallsBackToFullRepack) {
  AddTask("ViT", 1);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig previous = FullReconfiguration(context_, calculator);
  // delta.complete defaults to false.
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, previous);
  EXPECT_TRUE(result.full_repack);
  EXPECT_EQ(AssignedTasks(result.config).size(), 1u);
}

TEST_F(IncrementalReconfigTest, OversizedDeltaFallsBackToFullRepack) {
  for (JobId job = 1; job <= 4; ++job) {
    AddTask("GCN", job);
  }
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig previous = FullReconfiguration(context_, calculator);
  context_.delta.complete = true;
  context_.delta.jobs_arrived = {1, 2, 3};  // 3 of 4 tasks touched.
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, previous);
  EXPECT_TRUE(result.full_repack);
}

TEST_F(IncrementalReconfigTest, SmallDeltaKeepsUntouchedInstancesAndPacksTheRest) {
  // Six tasks previously packed; one job completes and one arrives.
  for (JobId job = 1; job <= 6; ++job) {
    AddTask(job % 2 == 0 ? "GCN" : "A3C", job);
  }
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig previous = FullReconfiguration(context_, calculator);

  // Job 6's task completes (drop it from the context); job 7 arrives.
  const TaskId completed = 5;
  context_.tasks.erase(context_.tasks.begin() + completed);
  const TaskId arrived = AddTask("OpenFOAM", 7);
  context_.Finalize();
  context_.delta.complete = true;
  context_.delta.jobs_completed = {6};
  context_.delta.jobs_arrived = {7};

  IncrementalOptions options;
  options.full_repack_fraction = 0.5;  // 2 of 6 touched stays incremental.
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, previous, options);
  EXPECT_FALSE(result.full_repack);
  EXPECT_FALSE(result.config.Validate(context_).has_value());
  const std::set<TaskId> seen = AssignedTasks(result.config);
  EXPECT_EQ(seen.size(), context_.tasks.size());
  EXPECT_EQ(seen.count(completed), 0u);
  EXPECT_EQ(seen.count(arrived), 1u);
}

// End-to-end coverage of EvaOptions::incremental_packing on the 2,000-job
// Alibaba-like trace: both the incremental path and the threshold fallback
// to a full repack must be exercised, every job must complete, and the
// end-to-end metrics must stay within the approximation bound documented in
// incremental_reconfig.h (cost within 10% of exact Eva, average JCT within
// 5%).
TEST(IncrementalPackingEndToEndTest, StaysWithinDocumentedBoundOnAlibaba2000) {
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = 2000;
  trace_options.seed = 17;
  trace_options.max_duration_hours = 48.0;
  const Trace trace = GenerateAlibabaTrace(trace_options);
  const InterferenceModel interference = InterferenceModel::Measured();
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();

  SimulationMetrics exact;
  {
    SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
    exact = RunSimulation(trace, bundle.scheduler.get(), catalog, interference,
                          SimulatorOptions{});
  }

  EvaOptions options;
  options.incremental_packing = true;
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference, options);
  const SimulationMetrics incremental = RunSimulation(
      trace, bundle.scheduler.get(), catalog, interference, SimulatorOptions{});
  const EvaScheduler::Stats& stats = bundle.eva->stats();

  // Both the delta-touched repacking and the full-repack fallback ran.
  EXPECT_GT(stats.incremental_packs, 100);
  EXPECT_GT(stats.full_packs, 100);

  // Nothing was lost to the approximation...
  EXPECT_EQ(incremental.jobs_submitted, exact.jobs_submitted);
  EXPECT_EQ(incremental.jobs_completed, exact.jobs_completed);

  // ...and the economics stay inside the documented envelope.
  EXPECT_LT(incremental.total_cost, exact.total_cost * 1.10);
  EXPECT_NEAR(incremental.avg_jct_hours / exact.avg_jct_hours, 1.0, 0.05);
}

}  // namespace
}  // namespace eva
