#include "src/core/incremental_reconfig.h"

#include <gtest/gtest.h>

#include <set>

#include "src/sim/experiment.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

// A small population over the AWS catalog with a complete delta attached.
class IncrementalReconfigTest : public testing::Test {
 protected:
  IncrementalReconfigTest() : catalog_(InstanceCatalog::AwsDefault()) {
    context_.catalog = &catalog_;
  }

  TaskId AddTask(const char* workload, JobId job, InstanceId on = kInvalidInstanceId) {
    const WorkloadId id = WorkloadRegistry::IdOf(workload);
    const WorkloadSpec& spec = WorkloadRegistry::Get(id);
    TaskInfo task;
    task.id = next_task_id_++;
    task.job = job;
    task.workload = id;
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    task.current_instance = on;
    context_.tasks.push_back(task);
    return task.id;
  }

  std::set<TaskId> AssignedTasks(const ClusterConfig& config) {
    std::set<TaskId> seen;
    for (const ConfigInstance& instance : config.instances) {
      seen.insert(instance.tasks.begin(), instance.tasks.end());
    }
    return seen;
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  TaskId next_task_id_ = 0;
};

TEST_F(IncrementalReconfigTest, EmptyDeltaReproducesThePreviousConfig) {
  for (JobId job = 1; job <= 4; ++job) {
    AddTask(job % 2 == 0 ? "GCN" : "ViT", job);
  }
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig previous = FullReconfiguration(context_, calculator);

  context_.delta.complete = true;  // Nothing changed.
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, previous);
  EXPECT_FALSE(result.full_repack);
  ASSERT_EQ(result.config.instances.size(), previous.instances.size());
  for (std::size_t i = 0; i < previous.instances.size(); ++i) {
    EXPECT_EQ(result.config.instances[i].type_index, previous.instances[i].type_index);
    EXPECT_EQ(result.config.instances[i].tasks, previous.instances[i].tasks);
  }
}

TEST_F(IncrementalReconfigTest, IncompleteDeltaFallsBackToFullRepack) {
  AddTask("ViT", 1);
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig previous = FullReconfiguration(context_, calculator);
  // delta.complete defaults to false.
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, previous);
  EXPECT_TRUE(result.full_repack);
  EXPECT_EQ(result.outcome, IncrementalOutcome::kFullIncompleteDelta);
  EXPECT_EQ(AssignedTasks(result.config).size(), 1u);
}

TEST_F(IncrementalReconfigTest, EmptyPreviousFallsBackWithNoPreviousOutcome) {
  AddTask("ViT", 1);
  context_.Finalize();
  context_.delta.complete = true;
  context_.delta.jobs_arrived = {1};
  const TnrpCalculator calculator(context_, {});
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, ClusterConfig{});
  EXPECT_TRUE(result.full_repack);
  EXPECT_EQ(result.outcome, IncrementalOutcome::kFullNoPrevious);
}

TEST_F(IncrementalReconfigTest, OversizedDeltaFallsBackToFullRepack) {
  for (JobId job = 1; job <= 4; ++job) {
    AddTask("GCN", job);
  }
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig previous = FullReconfiguration(context_, calculator);
  context_.delta.complete = true;
  context_.delta.jobs_arrived = {1, 2, 3};  // 3 of 4 tasks touched.
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, previous);
  EXPECT_TRUE(result.full_repack);
  EXPECT_EQ(result.outcome, IncrementalOutcome::kFullOversizedDelta);
}

// The -Into variant's documented aliasing contract ("must not alias
// `previous`") is enforced with an always-on check: the kept-instance loop
// reads `previous` while the appender rewrites the output, so an aliased
// call would silently read half-overwritten state.
using IncrementalReconfigDeathTest = IncrementalReconfigTest;

TEST_F(IncrementalReconfigDeathTest, AliasedOutputAborts) {
  AddTask("ViT", 1);
  context_.Finalize();
  context_.delta.complete = true;
  const TnrpCalculator calculator(context_, {});
  ClusterConfig config = FullReconfiguration(context_, calculator);
  EXPECT_DEATH(
      IncrementalReconfigurationInto(context_, calculator, config, {}, config),
      "must not alias previous");
}

TEST_F(IncrementalReconfigTest, SmallDeltaKeepsUntouchedInstancesAndPacksTheRest) {
  // Six tasks previously packed; one job completes and one arrives.
  for (JobId job = 1; job <= 6; ++job) {
    AddTask(job % 2 == 0 ? "GCN" : "A3C", job);
  }
  context_.Finalize();
  const TnrpCalculator calculator(context_, {});
  const ClusterConfig previous = FullReconfiguration(context_, calculator);

  // Job 6's task completes (drop it from the context); job 7 arrives.
  const TaskId completed = 5;
  context_.tasks.erase(context_.tasks.begin() + completed);
  const TaskId arrived = AddTask("OpenFOAM", 7);
  context_.Finalize();
  context_.delta.complete = true;
  context_.delta.jobs_completed = {6};
  context_.delta.jobs_arrived = {7};

  IncrementalOptions options;
  options.full_repack_fraction = 0.5;  // 2 of 6 touched stays incremental.
  const IncrementalResult result =
      IncrementalReconfiguration(context_, calculator, previous, options);
  EXPECT_FALSE(result.full_repack);
  EXPECT_FALSE(result.config.Validate(context_).has_value());
  const std::set<TaskId> seen = AssignedTasks(result.config);
  EXPECT_EQ(seen.size(), context_.tasks.size());
  EXPECT_EQ(seen.count(completed), 0u);
  EXPECT_EQ(seen.count(arrived), 1u);
}

// End-to-end coverage of EvaOptions::incremental_packing on the 2,000-job
// Alibaba-like trace: both the incremental path and the threshold fallback
// to a full repack must be exercised, every job must complete, and the
// end-to-end metrics must stay within the approximation bound documented in
// incremental_reconfig.h (cost within 10% of exact Eva, average JCT within
// 5%).
TEST(IncrementalPackingEndToEndTest, StaysWithinDocumentedBoundOnAlibaba2000) {
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = 2000;
  trace_options.seed = 17;
  trace_options.max_duration_hours = 48.0;
  const Trace trace = GenerateAlibabaTrace(trace_options);
  const InterferenceModel interference = InterferenceModel::Measured();
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();

  SimulationMetrics exact;
  {
    SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
    exact = RunSimulation(trace, bundle.scheduler.get(), catalog, interference,
                          SimulatorOptions{});
  }

  EvaOptions options;
  options.incremental_packing = EvaOptions::IncrementalPacking::kOn;
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference, options);
  const SimulationMetrics incremental = RunSimulation(
      trace, bundle.scheduler.get(), catalog, interference, SimulatorOptions{});
  const EvaScheduler::Stats& stats = bundle.eva->stats();
  const SchedulerCounters& counters = incremental.scheduler_counters;

  // Both the delta-touched repacking and the full-repack fallback ran.
  EXPECT_GT(stats.incremental_packs, 100);
  EXPECT_GT(stats.full_packs, 100);

  // The bounded-divergence control loop was live: reconciliations happened
  // at the default cadence, no configuration ran unreconciled past it, and
  // the counters exported through the simulator agree with the scheduler.
  EXPECT_GT(counters.reconciliations, 0);
  EXPECT_LE(counters.max_kept_staleness, options.reconcile_every_n_packs);
  EXPECT_EQ(counters.packs_incremental, stats.incremental_packs);
  EXPECT_EQ(counters.packs_full + counters.packs_escalated, stats.full_packs);
  EXPECT_EQ(counters.fallback_incomplete_delta, 0);  // The engine tracks deltas.

  // Nothing was lost to the approximation...
  EXPECT_EQ(incremental.jobs_submitted, exact.jobs_submitted);
  EXPECT_EQ(incremental.jobs_completed, exact.jobs_completed);

  // ...and the economics stay inside the documented envelope.
  EXPECT_LT(incremental.total_cost, exact.total_cost * 1.10);
  EXPECT_NEAR(incremental.avg_jct_hours / exact.avg_jct_hours, 1.0, 0.05);
}

// The kAuto default resolves against the workload scale the simulator binds:
// below incremental_auto_min_jobs the run is exact (zero incremental
// counters — the golden-pinned paths stay bit-identical), at or above it the
// fast path is live. Exercised end-to-end through RunSimulation with a
// lowered threshold so the test stays small.
TEST(IncrementalPackingAutoFlipTest, AutoModeFollowsBoundWorkloadScale) {
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = 300;
  trace_options.seed = 11;
  trace_options.max_duration_hours = 24.0;
  const Trace trace = GenerateAlibabaTrace(trace_options);
  const InterferenceModel interference = InterferenceModel::Measured();
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();

  {
    // Default threshold (10k) far above the trace: stays exact.
    SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference);
    const SimulationMetrics metrics = RunSimulation(
        trace, bundle.scheduler.get(), catalog, interference, SimulatorOptions{});
    EXPECT_FALSE(bundle.eva->incremental_active());
    EXPECT_EQ(metrics.scheduler_counters.packs_incremental, 0);
    EXPECT_EQ(metrics.scheduler_counters.reconciliations, 0);
  }
  {
    // Threshold at the trace size: the same run flips incremental on.
    EvaOptions options;
    options.incremental_auto_min_jobs = 300;
    SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference, options);
    const SimulationMetrics metrics = RunSimulation(
        trace, bundle.scheduler.get(), catalog, interference, SimulatorOptions{});
    EXPECT_TRUE(bundle.eva->incremental_active());
    EXPECT_GT(metrics.scheduler_counters.packs_incremental, 0);
  }
  {
    // kOff wins over any scale.
    EvaOptions options;
    options.incremental_packing = EvaOptions::IncrementalPacking::kOff;
    options.incremental_auto_min_jobs = 1;
    SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference, options);
    const SimulationMetrics metrics = RunSimulation(
        trace, bundle.scheduler.get(), catalog, interference, SimulatorOptions{});
    EXPECT_FALSE(bundle.eva->incremental_active());
    EXPECT_EQ(metrics.scheduler_counters.packs_incremental, 0);
  }
}

// Reconciliation cadence is counted in computed packs, not rounds, so the
// trajectory — configurations, metrics, and every counter — must be
// bit-identical across decision-path pool sizes (serial vs 4 workers), the
// same way the exact path is.
TEST(IncrementalPackingDeterminismTest, SameSeedSameMetricsAcrossPoolSizes) {
  AlibabaTraceOptions trace_options;
  trace_options.num_jobs = 400;
  trace_options.seed = 29;
  trace_options.max_duration_hours = 24.0;
  const Trace trace = GenerateAlibabaTrace(trace_options);
  const InterferenceModel interference = InterferenceModel::Measured();
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();

  auto run = [&](int parallelism) {
    EvaOptions options;
    options.incremental_packing = EvaOptions::IncrementalPacking::kOn;
    options.reconcile_every_n_packs = 8;  // Tight cadence: many reconciliations.
    options.max_parallelism = parallelism;
    SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference, options);
    return RunSimulation(trace, bundle.scheduler.get(), catalog, interference,
                         SimulatorOptions{});
  };
  const SimulationMetrics serial = run(1);
  const SimulationMetrics pooled = run(4);

  EXPECT_EQ(serial.total_cost, pooled.total_cost);
  EXPECT_EQ(serial.avg_jct_hours, pooled.avg_jct_hours);
  EXPECT_EQ(serial.jobs_completed, pooled.jobs_completed);
  EXPECT_EQ(serial.instances_launched, pooled.instances_launched);
  EXPECT_EQ(serial.task_migrations, pooled.task_migrations);
  const SchedulerCounters& a = serial.scheduler_counters;
  const SchedulerCounters& b = pooled.scheduler_counters;
  EXPECT_GT(a.reconciliations, 0);
  EXPECT_EQ(a.packs_incremental, b.packs_incremental);
  EXPECT_EQ(a.packs_full, b.packs_full);
  EXPECT_EQ(a.packs_escalated, b.packs_escalated);
  EXPECT_EQ(a.reconciliations, b.reconciliations);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.fallback_oversized_delta, b.fallback_oversized_delta);
  EXPECT_EQ(a.fallback_no_previous, b.fallback_no_previous);
  EXPECT_EQ(a.max_divergence_cost, b.max_divergence_cost);
  EXPECT_EQ(a.max_divergence_edits, b.max_divergence_edits);
  EXPECT_EQ(a.max_kept_staleness, b.max_kept_staleness);
}

}  // namespace
}  // namespace eva
