#include "src/runtime/eva_iterator.h"

#include <gtest/gtest.h>

#include "src/core/eva_scheduler.h"

namespace eva {
namespace {

TEST(EvaIteratorTest, EmptyReportsZeroRate) {
  EvaIterator iterator;
  EXPECT_DOUBLE_EQ(iterator.IterationsPerSecond(100.0, 60.0), 0.0);
}

TEST(EvaIteratorTest, CountsIterationsInWindow) {
  EvaIterator iterator;
  for (int i = 0; i < 60; ++i) {
    iterator.RecordIteration(static_cast<SimTime>(i));  // 1 iter/sec.
  }
  EXPECT_NEAR(iterator.IterationsPerSecond(59.0, 30.0), 1.0, 0.05);
}

TEST(EvaIteratorTest, WindowExcludesOldIterations) {
  EvaIterator iterator;
  for (int i = 0; i < 10; ++i) {
    iterator.RecordIteration(static_cast<SimTime>(i));
  }
  // All recorded iterations are older than the window at t=100.
  EXPECT_DOUBLE_EQ(iterator.IterationsPerSecond(100.0, 30.0), 0.0);
}

TEST(EvaIteratorTest, PrunesHistoryBeyondLimit) {
  EvaIterator iterator(/*max_history_s=*/100.0);
  for (int i = 0; i < 1000; ++i) {
    iterator.RecordIteration(static_cast<SimTime>(i));
  }
  EXPECT_LE(iterator.NumRecorded(), 102u);
}

TEST(EvaIteratorTest, ZeroOrNegativeWindowIsZero) {
  EvaIterator iterator;
  iterator.RecordIteration(1.0);
  EXPECT_DOUBLE_EQ(iterator.IterationsPerSecond(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(iterator.IterationsPerSecond(1.0, -5.0), 0.0);
}

TEST(EvaIteratorTest, NormalizedThroughputNeedsBaseline) {
  EvaIterator iterator;
  iterator.RecordIteration(1.0);
  EXPECT_FALSE(iterator.NormalizedThroughput(2.0, 10.0).has_value());
  iterator.SetBaseline(1.0);
  ASSERT_TRUE(iterator.NormalizedThroughput(2.0, 10.0).has_value());
}

TEST(EvaIteratorTest, NormalizedThroughputRelativeToBaseline) {
  EvaIterator iterator;
  // 0.5 iterations/sec against a baseline of 1.0 -> 0.5 normalized.
  for (int i = 0; i < 30; ++i) {
    iterator.RecordIteration(static_cast<SimTime>(2 * i));
  }
  iterator.SetBaseline(1.0);
  const auto normalized = iterator.NormalizedThroughput(58.0, 20.0);
  ASSERT_TRUE(normalized.has_value());
  EXPECT_NEAR(*normalized, 0.5, 0.06);
}

TEST(EvaIteratorTest, IgnoresNonPositiveBaseline) {
  EvaIterator iterator;
  iterator.SetBaseline(0.0);
  EXPECT_FALSE(iterator.baseline().has_value());
  iterator.SetBaseline(-2.0);
  EXPECT_FALSE(iterator.baseline().has_value());
}

TEST(WorkerReporterTest, NoObservationsWithoutBaselines) {
  WorkerReporter reporter(60.0);
  reporter.RegisterTask(1, 10, 0);
  reporter.RecordIteration(1, 5.0);
  EXPECT_TRUE(reporter.CollectObservations(10.0).empty());
}

TEST(WorkerReporterTest, BuildsPerJobObservations) {
  WorkerReporter reporter(60.0);
  reporter.RegisterTask(1, 10, 2);
  reporter.RegisterTask(2, 10, 2);
  reporter.RegisterTask(3, 20, 5);
  for (int i = 0; i < 60; ++i) {
    reporter.RecordIteration(1, static_cast<SimTime>(i));        // 1.0/s
    if (i % 2 == 0) {
      reporter.RecordIteration(2, static_cast<SimTime>(i));      // 0.5/s
    }
    reporter.RecordIteration(3, static_cast<SimTime>(i));        // 1.0/s
  }
  reporter.SetBaseline(1, 1.0);
  reporter.SetBaseline(2, 1.0);
  reporter.SetBaseline(3, 1.0);
  reporter.SetColocation(1, {5});
  const auto observations = reporter.CollectObservations(59.0);
  ASSERT_EQ(observations.size(), 2u);
  const auto& job10 = observations[0].job == 10 ? observations[0] : observations[1];
  const auto& job20 = observations[0].job == 20 ? observations[0] : observations[1];
  // The job's throughput is the slowest member's (lockstep).
  EXPECT_NEAR(job10.normalized_throughput, 0.5, 0.06);
  EXPECT_NEAR(job20.normalized_throughput, 1.0, 0.06);
  ASSERT_EQ(job10.tasks.size(), 2u);
  EXPECT_EQ(job10.tasks[0].colocated, std::vector<WorkloadId>({5}));
}

TEST(WorkerReporterTest, UnregisterStopsReporting) {
  WorkerReporter reporter(60.0);
  reporter.RegisterTask(1, 10, 0);
  for (int i = 0; i < 30; ++i) {
    reporter.RecordIteration(1, static_cast<SimTime>(i));
  }
  reporter.SetBaseline(1, 1.0);
  EXPECT_EQ(reporter.CollectObservations(29.0).size(), 1u);
  reporter.UnregisterTask(1);
  EXPECT_TRUE(reporter.CollectObservations(29.0).empty());
}

TEST(WorkerReporterTest, ObservationsFeedEvaMonitorEndToEnd) {
  // The full reporting pipeline: iterator readings -> observations ->
  // EvaScheduler's learned table.
  WorkerReporter reporter(60.0);
  reporter.RegisterTask(1, 10, /*workload=*/3);
  for (int i = 0; i < 60; ++i) {
    if (i % 5 == 0) {
      reporter.RecordIteration(1, static_cast<SimTime>(i));  // 0.2/s.
    }
  }
  reporter.SetBaseline(1, 0.25);  // Standalone rate: degraded to 0.8.
  reporter.SetColocation(1, {7});
  const auto observations = reporter.CollectObservations(59.0);
  ASSERT_EQ(observations.size(), 1u);

  EvaScheduler scheduler;
  scheduler.ObserveThroughput(observations);
  const auto entry = scheduler.throughput_table().Lookup(3, {7});
  ASSERT_TRUE(entry.has_value());
  EXPECT_NEAR(*entry, 0.8, 0.1);
}

}  // namespace
}  // namespace eva
