#include "src/workload/trace_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/stats.h"

namespace eva {
namespace {

TEST(SyntheticTraceTest, GeneratesRequestedJobCount) {
  SyntheticTraceOptions options;
  options.num_jobs = 120;
  const Trace trace = GenerateSyntheticTrace(options);
  EXPECT_EQ(trace.jobs.size(), 120u);
}

TEST(SyntheticTraceTest, ArrivalsSortedAndIdsSequential) {
  SyntheticTraceOptions options;
  options.num_jobs = 50;
  const Trace trace = GenerateSyntheticTrace(options);
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(trace.jobs[i].id, static_cast<JobId>(i));
    if (i > 0) {
      EXPECT_GE(trace.jobs[i].arrival_time_s, trace.jobs[i - 1].arrival_time_s);
    }
  }
}

TEST(SyntheticTraceTest, DurationsWithinConfiguredRange) {
  SyntheticTraceOptions options;
  options.num_jobs = 200;
  const Trace trace = GenerateSyntheticTrace(options);
  for (const JobSpec& job : trace.jobs) {
    EXPECT_GE(job.duration_s, HoursToSeconds(0.5));
    EXPECT_LE(job.duration_s, HoursToSeconds(3.0));
  }
}

TEST(SyntheticTraceTest, MeanInterarrivalMatchesPoissonRate) {
  SyntheticTraceOptions options;
  options.num_jobs = 4000;
  options.mean_interarrival_s = 1200.0;
  const Trace trace = GenerateSyntheticTrace(options);
  const double span = trace.jobs.back().arrival_time_s;
  EXPECT_NEAR(span / options.num_jobs, 1200.0, 60.0);
}

TEST(SyntheticTraceTest, DeterministicForSeed) {
  SyntheticTraceOptions options;
  options.num_jobs = 30;
  options.seed = 9;
  const Trace a = GenerateSyntheticTrace(options);
  const Trace b = GenerateSyntheticTrace(options);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].workload, b.jobs[i].workload);
    EXPECT_DOUBLE_EQ(a.jobs[i].arrival_time_s, b.jobs[i].arrival_time_s);
  }
}

TEST(SyntheticTraceTest, MultiTaskWorkloadsGetDefaultTaskCount) {
  SyntheticTraceOptions options;
  options.num_jobs = 300;
  const Trace trace = GenerateSyntheticTrace(options);
  bool saw_multi = false;
  for (const JobSpec& job : trace.jobs) {
    EXPECT_EQ(job.num_tasks, WorkloadRegistry::Get(job.workload).default_num_tasks);
    saw_multi |= job.num_tasks > 1;
  }
  EXPECT_TRUE(saw_multi);  // The two ResNet18 entries appear w.h.p. in 300 draws.
}

TEST(MultiTaskMicroTraceTest, FourTasksPerJob) {
  MultiTaskMicroOptions options;
  options.num_jobs = 100;
  const Trace trace = GenerateMultiTaskMicroTrace(options);
  EXPECT_EQ(trace.jobs.size(), 100u);
  for (const JobSpec& job : trace.jobs) {
    EXPECT_EQ(job.num_tasks, 4);
    EXPECT_GE(job.duration_s, HoursToSeconds(0.5));
    EXPECT_LE(job.duration_s, HoursToSeconds(16.0));
  }
}

TEST(AlibabaDurationTest, MatchesTable9Percentiles) {
  Rng rng(1);
  std::vector<double> hours;
  for (int i = 0; i < 60000; ++i) {
    hours.push_back(SecondsToHours(SampleDuration(DurationModel::kAlibaba, rng)));
  }
  // Table 9 row 1: median 0.2h, P80 1.0h, P95 5.2h, mean 9.1h.
  EXPECT_NEAR(Quantile(hours, 0.5), 0.2, 0.05);
  EXPECT_NEAR(Quantile(hours, 0.8), 1.0, 0.25);
  EXPECT_NEAR(Quantile(hours, 0.95), 5.2, 2.0);
  const double mean = Mean(hours);
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 14.0);
}

TEST(AlibabaDurationTest, EightyPercentUnderOneHour) {
  Rng rng(2);
  int under = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (SampleDuration(DurationModel::kAlibaba, rng) < kSecondsPerHour) {
      ++under;
    }
  }
  EXPECT_NEAR(static_cast<double>(under) / n, 0.8, 0.05);
}

TEST(GavelDurationTest, RangeAndMedian) {
  Rng rng(3);
  std::vector<double> hours;
  for (int i = 0; i < 40000; ++i) {
    const double h = SecondsToHours(SampleDuration(DurationModel::kGavel, rng));
    // 10^1.5 to 10^4 minutes.
    EXPECT_GE(h, std::pow(10.0, 1.5) / 60.0 * 0.999);
    EXPECT_LE(h, std::pow(10.0, 4.0) / 60.0 * 1.001);
    hours.push_back(h);
  }
  // Overall median: P(x <= m) = 0.5 within the 80% branch gives
  // x = 1.5 + 0.5/0.8 * 1.5 = 2.4375, i.e. 10^2.4375 minutes = 4.56 h.
  EXPECT_NEAR(Quantile(hours, 0.5), std::pow(10.0, 2.4375) / 60.0, 0.4);
  // Table 9 row 2 reports mean 16.7h; heavy upper branch dominates.
  EXPECT_GT(Mean(hours), 8.0);
}

TEST(AlibabaTraceTest, GpuCompositionMatchesTable8) {
  AlibabaTraceOptions options;
  options.num_jobs = 30000;
  const Trace trace = GenerateAlibabaTrace(options);
  int by_gpu[9] = {0};
  for (const JobSpec& job : trace.jobs) {
    ++by_gpu[static_cast<int>(job.demand_p3.gpus())];
  }
  const double n = static_cast<double>(trace.jobs.size());
  EXPECT_NEAR(by_gpu[0] / n, 0.1341, 0.01);
  EXPECT_NEAR(by_gpu[1] / n, 0.8617, 0.01);
  EXPECT_NEAR(by_gpu[2] / n, 0.0020, 0.002);
  EXPECT_NEAR(by_gpu[4] / n, 0.0018, 0.002);
  EXPECT_NEAR(by_gpu[8] / n, 0.0004, 0.001);
}

TEST(AlibabaTraceTest, AllJobsSingleTaskAndHostable) {
  AlibabaTraceOptions options;
  options.num_jobs = 2000;
  const Trace trace = GenerateAlibabaTrace(options);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  for (const JobSpec& job : trace.jobs) {
    EXPECT_EQ(job.num_tasks, 1);
    EXPECT_TRUE(catalog
                    .CheapestFitting([&job](InstanceFamily family) {
                      return job.DemandFor(family);
                    })
                    .has_value())
        << job.demand_p3.ToString();
  }
}

TEST(AlibabaTraceTest, WorkloadAssignmentMatchesGpuClass) {
  AlibabaTraceOptions options;
  options.num_jobs = 2000;
  const Trace trace = GenerateAlibabaTrace(options);
  for (const JobSpec& job : trace.jobs) {
    const bool job_has_gpu = job.demand_p3.gpus() > 0.0;
    EXPECT_EQ(WorkloadRegistry::Get(job.workload).IsGpuWorkload(), job_has_gpu);
  }
}

TEST(WithMultiGpuFractionTest, ZeroFractionMakesAllGpuJobsSingleGpu) {
  AlibabaTraceOptions options;
  options.num_jobs = 1000;
  Trace trace = WithMultiGpuFraction(GenerateAlibabaTrace(options), 0.0, 1);
  for (const JobSpec& job : trace.jobs) {
    if (job.demand_p3.gpus() > 0.0) {
      EXPECT_DOUBLE_EQ(job.demand_p3.gpus(), 1.0);
    }
  }
}

TEST(WithMultiGpuFractionTest, FractionAndRatioRespected) {
  AlibabaTraceOptions options;
  options.num_jobs = 20000;
  Trace trace = WithMultiGpuFraction(GenerateAlibabaTrace(options), 0.5, 2);
  int multi = 0;
  int gpu_jobs = 0;
  int two = 0;
  int four = 0;
  int eight = 0;
  for (const JobSpec& job : trace.jobs) {
    const double g = job.demand_p3.gpus();
    if (g <= 0.0) {
      continue;
    }
    ++gpu_jobs;
    if (g > 1.0) {
      ++multi;
      two += g == 2.0;
      four += g == 4.0;
      eight += g == 8.0;
    }
  }
  EXPECT_NEAR(static_cast<double>(multi) / gpu_jobs, 0.5, 0.03);
  // 5:4:1 ratio.
  EXPECT_NEAR(static_cast<double>(two) / multi, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(four) / multi, 0.4, 0.05);
  EXPECT_NEAR(static_cast<double>(eight) / multi, 0.1, 0.05);
}

TEST(WithMultiGpuFractionTest, NonGpuJobsUntouched) {
  AlibabaTraceOptions options;
  options.num_jobs = 3000;
  const Trace base = GenerateAlibabaTrace(options);
  const Trace modified = WithMultiGpuFraction(base, 0.6, 3);
  ASSERT_EQ(base.jobs.size(), modified.jobs.size());
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    if (base.jobs[i].demand_p3.gpus() == 0.0) {
      EXPECT_EQ(modified.jobs[i].demand_p3, base.jobs[i].demand_p3);
    }
  }
}

TEST(WithMultiTaskFractionTest, FractionAndSplitRespected) {
  AlibabaTraceOptions options;
  options.num_jobs = 20000;
  const Trace trace = WithMultiTaskFraction(GenerateAlibabaTrace(options), 0.4, 4);
  int multi = 0;
  int two = 0;
  for (const JobSpec& job : trace.jobs) {
    if (job.num_tasks > 1) {
      ++multi;
      two += job.num_tasks == 2;
      EXPECT_TRUE(job.num_tasks == 2 || job.num_tasks == 4);
    }
  }
  EXPECT_NEAR(static_cast<double>(multi) / trace.jobs.size(), 0.4, 0.02);
  EXPECT_NEAR(static_cast<double>(two) / multi, 0.5, 0.04);
}

TEST(WithArrivalRateTest, RescalesToTargetRate) {
  AlibabaTraceOptions options;
  options.num_jobs = 5000;
  const Trace trace = WithArrivalRate(GenerateAlibabaTrace(options), 1.5);
  const double hours = SecondsToHours(trace.jobs.back().arrival_time_s);
  EXPECT_NEAR(trace.jobs.size() / hours, 1.5, 0.01);
}

TEST(TraceCsvTest, RoundTripPreservesJobs) {
  SyntheticTraceOptions options;
  options.num_jobs = 25;
  const Trace trace = GenerateSyntheticTrace(options);
  const std::optional<Trace> loaded = Trace::FromCsv(trace.ToCsv(), trace.name);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->jobs.size(), trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(loaded->jobs[i].id, trace.jobs[i].id);
    EXPECT_EQ(loaded->jobs[i].workload, trace.jobs[i].workload);
    EXPECT_EQ(loaded->jobs[i].num_tasks, trace.jobs[i].num_tasks);
    EXPECT_NEAR(loaded->jobs[i].arrival_time_s, trace.jobs[i].arrival_time_s, 1.0);
    EXPECT_NEAR(loaded->jobs[i].duration_s, trace.jobs[i].duration_s, 1.0);
    EXPECT_EQ(loaded->jobs[i].demand_p3, trace.jobs[i].demand_p3);
  }
}

TEST(TraceCsvTest, RejectsGarbage) {
  EXPECT_FALSE(Trace::FromCsv("not,a,trace\n1,2,3\n", "x").has_value());
  EXPECT_FALSE(Trace::FromCsv("", "x").has_value());
}

// --- ScaleTrace property tests (the 10k/50k/100k bench scaler) ----------

Trace ScalerSource() {
  AlibabaTraceOptions options;
  options.num_jobs = 2000;
  options.seed = 17;
  options.max_duration_hours = 48.0;
  return GenerateAlibabaTrace(options);
}

TEST(ScaleTraceTest, SeededDeterminism) {
  const Trace source = ScalerSource();
  TraceScaleOptions options;
  options.target_jobs = 5000;
  options.seed = 9;
  const Trace a = ScaleTrace(source, options);
  const Trace b = ScaleTrace(source, options);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].arrival_time_s, b.jobs[i].arrival_time_s);
    EXPECT_EQ(a.jobs[i].workload, b.jobs[i].workload);
    EXPECT_EQ(a.jobs[i].duration_s, b.jobs[i].duration_s);
    EXPECT_EQ(a.jobs[i].demand_p3, b.jobs[i].demand_p3);
  }
  options.seed = 10;
  const Trace c = ScaleTrace(source, options);
  bool any_difference = false;
  for (std::size_t i = 0; i < c.jobs.size() && !any_difference; ++i) {
    any_difference = c.jobs[i].arrival_time_s != a.jobs[i].arrival_time_s;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScaleTraceTest, PlanDerivationMatchesDirectScale) {
  // ScaleTraceFromPlan(MakeResamplePlan(s), o) is the hoisted form
  // MakeTenantShards fans out over; it must equal ScaleTrace(s, o)
  // bit-for-bit, including the thinning + rate_multiplier shapes the
  // federation recipe uses.
  const Trace source = ScalerSource();
  const TraceResamplePlan plan = MakeResamplePlan(source);
  for (const double rate_multiplier : {1.0, 40.0}) {
    TraceScaleOptions options;
    options.target_jobs = 50;
    options.seed = 123;
    options.rate_multiplier = rate_multiplier;
    const Trace direct = ScaleTrace(source, options);
    const Trace planned = ScaleTraceFromPlan(plan, options);
    EXPECT_EQ(direct.name, planned.name);
    ASSERT_EQ(direct.jobs.size(), planned.jobs.size());
    for (std::size_t i = 0; i < direct.jobs.size(); ++i) {
      EXPECT_EQ(direct.jobs[i].id, planned.jobs[i].id);
      EXPECT_EQ(direct.jobs[i].arrival_time_s, planned.jobs[i].arrival_time_s);
      EXPECT_EQ(direct.jobs[i].workload, planned.jobs[i].workload);
      EXPECT_EQ(direct.jobs[i].num_tasks, planned.jobs[i].num_tasks);
      EXPECT_EQ(direct.jobs[i].duration_s, planned.jobs[i].duration_s);
      EXPECT_EQ(direct.jobs[i].demand_p3, planned.jobs[i].demand_p3);
    }
  }
}

TEST(ScaleTraceTest, MonotoneArrivalsAndSequentialIds) {
  const Trace source = ScalerSource();
  TraceScaleOptions options;
  options.target_jobs = 10000;
  const Trace scaled = ScaleTrace(source, options);
  ASSERT_EQ(scaled.jobs.size(), 10000u);
  for (std::size_t i = 0; i < scaled.jobs.size(); ++i) {
    EXPECT_EQ(scaled.jobs[i].id, static_cast<JobId>(i));
    EXPECT_GE(scaled.jobs[i].arrival_time_s, 0.0);
    if (i > 0) {
      EXPECT_GE(scaled.jobs[i].arrival_time_s, scaled.jobs[i - 1].arrival_time_s);
    }
  }
}

TEST(ScaleTraceTest, JobMixMarginalsMatchSource) {
  const Trace source = ScalerSource();
  TraceScaleOptions options;
  options.target_jobs = 20000;
  options.seed = 3;
  const Trace scaled = ScaleTrace(source, options);

  const auto gpu_fraction = [](const Trace& trace) {
    int gpu = 0;
    for (const JobSpec& job : trace.jobs) {
      gpu += job.demand_p3.gpus() > 0.0 ? 1 : 0;
    }
    return static_cast<double>(gpu) / static_cast<double>(trace.jobs.size());
  };
  const auto mean_duration_h = [](const Trace& trace) {
    double sum = 0.0;
    for (const JobSpec& job : trace.jobs) {
      sum += SecondsToHours(job.duration_s);
    }
    return sum / static_cast<double>(trace.jobs.size());
  };
  const auto median_duration_h = [](const Trace& trace) {
    std::vector<double> d;
    d.reserve(trace.jobs.size());
    for (const JobSpec& job : trace.jobs) {
      d.push_back(job.duration_s);
    }
    std::sort(d.begin(), d.end());
    return SecondsToHours(d[d.size() / 2]);
  };

  // Resampling with replacement: marginals converge to the source's.
  EXPECT_NEAR(gpu_fraction(scaled), gpu_fraction(source), 0.02);
  EXPECT_NEAR(mean_duration_h(scaled) / mean_duration_h(source), 1.0, 0.10);
  EXPECT_NEAR(median_duration_h(scaled) / median_duration_h(source), 1.0, 0.15);
}

TEST(ScaleTraceTest, SuperpositionScalesArrivalRate) {
  const Trace source = ScalerSource();
  TraceScaleOptions options;
  options.target_jobs = 20000;
  const Trace scaled = ScaleTrace(source, options);
  // 10x the jobs over (statistically) the same span: the empirical rate
  // scales with the job count.
  const double source_rate =
      static_cast<double>(source.jobs.size()) / source.jobs.back().arrival_time_s;
  const double scaled_rate =
      static_cast<double>(scaled.jobs.size()) / scaled.jobs.back().arrival_time_s;
  EXPECT_NEAR(scaled_rate / source_rate, 10.0, 1.0);
}

TEST(ScaleTraceTest, EmptySourceAndZeroTargetAreSafe) {
  Trace empty;
  empty.name = "empty";
  TraceScaleOptions options;
  EXPECT_TRUE(ScaleTrace(empty, options).jobs.empty());
  options.target_jobs = 0;
  EXPECT_TRUE(ScaleTrace(ScalerSource(), options).jobs.empty());
}

TEST(TraceNormalizeTest, SortsAndReassignsIds) {
  Trace trace;
  trace.jobs.push_back(JobSpec::FromWorkload(7, 500.0, 0, 100.0));
  trace.jobs.push_back(JobSpec::FromWorkload(3, 100.0, 1, 100.0));
  trace.Normalize();
  EXPECT_EQ(trace.jobs[0].id, 0);
  EXPECT_DOUBLE_EQ(trace.jobs[0].arrival_time_s, 100.0);
  EXPECT_EQ(trace.jobs[1].id, 1);
}

}  // namespace
}  // namespace eva
