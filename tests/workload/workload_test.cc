#include "src/workload/workload.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(WorkloadRegistryTest, HasTenWorkloads) {
  EXPECT_EQ(WorkloadRegistry::NumWorkloads(), 10);
}

TEST(WorkloadRegistryTest, Table7Demands) {
  // Spot-check entries against Table 7.
  const WorkloadSpec& resnet = WorkloadRegistry::Get(WorkloadRegistry::IdOf("ResNet18-2task"));
  EXPECT_EQ(resnet.demand_p3, ResourceVector(1, 4, 24));
  EXPECT_EQ(resnet.default_num_tasks, 2);
  EXPECT_DOUBLE_EQ(resnet.checkpoint_delay_s, 2.0);
  EXPECT_DOUBLE_EQ(resnet.launch_delay_s, 80.0);

  const WorkloadSpec& gpt2 = WorkloadRegistry::Get(WorkloadRegistry::IdOf("GPT2"));
  EXPECT_EQ(gpt2.demand_p3, ResourceVector(4, 4, 10));
  EXPECT_DOUBLE_EQ(gpt2.checkpoint_delay_s, 30.0);

  const WorkloadSpec& diamond = WorkloadRegistry::Get(WorkloadRegistry::IdOf("Diamond"));
  EXPECT_EQ(diamond.demand_p3, ResourceVector(0, 14, 16));
  EXPECT_EQ(diamond.demand_cpu, ResourceVector(0, 8, 16));
}

TEST(WorkloadRegistryTest, CpuWorkloadsNeedFewerCpusOnC7i) {
  for (WorkloadId id : WorkloadRegistry::CpuWorkloads()) {
    const WorkloadSpec& spec = WorkloadRegistry::Get(id);
    EXPECT_LE(spec.demand_cpu.cpus(), spec.demand_p3.cpus()) << spec.name;
    EXPECT_DOUBLE_EQ(spec.demand_cpu.ram_gb(), spec.demand_p3.ram_gb()) << spec.name;
  }
}

TEST(WorkloadRegistryTest, DemandForSelectsFamily) {
  const WorkloadSpec& gcn = WorkloadRegistry::Get(WorkloadRegistry::IdOf("GCN"));
  EXPECT_DOUBLE_EQ(gcn.DemandFor(InstanceFamily::kP3).cpus(), 12.0);
  EXPECT_DOUBLE_EQ(gcn.DemandFor(InstanceFamily::kC7i).cpus(), 6.0);
  EXPECT_DOUBLE_EQ(gcn.DemandFor(InstanceFamily::kR7i).cpus(), 6.0);
}

TEST(WorkloadRegistryTest, IdOfUnknownIsInvalid) {
  EXPECT_EQ(WorkloadRegistry::IdOf("BERT"), kInvalidWorkloadId);
}

TEST(WorkloadRegistryTest, GpuCpuPartition) {
  const auto gpu = WorkloadRegistry::GpuWorkloads();
  const auto cpu = WorkloadRegistry::CpuWorkloads();
  EXPECT_EQ(gpu.size() + cpu.size(), static_cast<std::size_t>(WorkloadRegistry::NumWorkloads()));
  // Table 7: 6 GPU workloads (two ResNet18 entries, ViT, CycleGAN, GPT2,
  // GraphSAGE), 4 CPU workloads (GCN, A3C, Diamond, OpenFOAM).
  EXPECT_EQ(gpu.size(), 6u);
  EXPECT_EQ(cpu.size(), 4u);
  for (WorkloadId id : gpu) {
    EXPECT_TRUE(WorkloadRegistry::Get(id).IsGpuWorkload());
  }
  for (WorkloadId id : cpu) {
    EXPECT_FALSE(WorkloadRegistry::Get(id).IsGpuWorkload());
  }
}

TEST(WorkloadRegistryTest, OnlyResNetIsMultiTaskByDefault) {
  for (int i = 0; i < WorkloadRegistry::NumWorkloads(); ++i) {
    const WorkloadSpec& spec = WorkloadRegistry::Get(i);
    if (spec.name == "ResNet18-2task") {
      EXPECT_EQ(spec.default_num_tasks, 2);
    } else if (spec.name == "ResNet18-4task") {
      EXPECT_EQ(spec.default_num_tasks, 4);
    } else {
      EXPECT_EQ(spec.default_num_tasks, 1) << spec.name;
    }
  }
}

TEST(WorkloadRegistryTest, ProfilesCoverFigure1Applications) {
  // ViT maps onto the ResNet18 interference profile (same app class).
  EXPECT_EQ(WorkloadRegistry::Get(WorkloadRegistry::IdOf("ViT")).profile,
            InterferenceProfile::kResNet18);
  EXPECT_EQ(WorkloadRegistry::Get(WorkloadRegistry::IdOf("OpenFOAM")).profile,
            InterferenceProfile::kOpenFoam);
}

}  // namespace
}  // namespace eva
