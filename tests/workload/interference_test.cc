#include "src/workload/interference.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(InterferenceModelTest, MeasuredMatrixSpotChecks) {
  const InterferenceModel model = InterferenceModel::Measured();
  // Figure 1 cells: throughput of row workload under column neighbor.
  EXPECT_DOUBLE_EQ(
      model.Pairwise(InterferenceProfile::kResNet18, InterferenceProfile::kResNet18), 0.93);
  EXPECT_DOUBLE_EQ(model.Pairwise(InterferenceProfile::kGpt2, InterferenceProfile::kResNet18),
                   0.79);
  EXPECT_DOUBLE_EQ(model.Pairwise(InterferenceProfile::kGcn, InterferenceProfile::kA3c), 0.65);
  EXPECT_DOUBLE_EQ(
      model.Pairwise(InterferenceProfile::kCycleGan, InterferenceProfile::kGraphSage), 1.00);
}

TEST(InterferenceModelTest, MatrixIsAsymmetric) {
  const InterferenceModel model = InterferenceModel::Measured();
  // ResNet18 under GCN (0.83) differs from GCN under ResNet18 (0.92).
  EXPECT_DOUBLE_EQ(model.Pairwise(InterferenceProfile::kResNet18, InterferenceProfile::kGcn),
                   0.83);
  EXPECT_DOUBLE_EQ(model.Pairwise(InterferenceProfile::kGcn, InterferenceProfile::kResNet18),
                   0.92);
}

TEST(InterferenceModelTest, AllValuesInUnitInterval) {
  const InterferenceModel model = InterferenceModel::Measured();
  for (int a = 0; a < kNumInterferenceProfiles; ++a) {
    for (int b = 0; b < kNumInterferenceProfiles; ++b) {
      const double v = model.Pairwise(static_cast<InterferenceProfile>(a),
                                      static_cast<InterferenceProfile>(b));
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(InterferenceModelTest, ThroughputOfEmptySetIsOne) {
  const InterferenceModel model = InterferenceModel::Measured();
  EXPECT_DOUBLE_EQ(model.Throughput(InterferenceProfile::kGpt2, {}), 1.0);
}

TEST(InterferenceModelTest, ThroughputIsPairwiseProduct) {
  const InterferenceModel model = InterferenceModel::Measured();
  const double direct = model.Throughput(
      InterferenceProfile::kResNet18,
      {InterferenceProfile::kGcn, InterferenceProfile::kA3c});
  EXPECT_DOUBLE_EQ(direct, 0.83 * 0.83);
}

TEST(InterferenceModelTest, UniformModel) {
  const InterferenceModel model = InterferenceModel::Uniform(0.9);
  for (int a = 0; a < kNumInterferenceProfiles; ++a) {
    for (int b = 0; b < kNumInterferenceProfiles; ++b) {
      EXPECT_DOUBLE_EQ(model.Pairwise(static_cast<InterferenceProfile>(a),
                                      static_cast<InterferenceProfile>(b)),
                       0.9);
    }
  }
  EXPECT_NEAR(model.Throughput(InterferenceProfile::kGcn,
                               {InterferenceProfile::kGcn, InterferenceProfile::kGcn}),
              0.81, 1e-12);
}

TEST(InterferenceModelTest, WorkloadIdOverloadsUseProfiles) {
  const InterferenceModel model = InterferenceModel::Measured();
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const WorkloadId resnet = WorkloadRegistry::IdOf("ResNet18-2task");
  // ViT shares ResNet18's profile, so the pairwise values must match.
  for (int other = 0; other < WorkloadRegistry::NumWorkloads(); ++other) {
    EXPECT_DOUBLE_EQ(model.Pairwise(vit, other), model.Pairwise(resnet, other));
  }
}

TEST(InterferenceModelTest, MultiWayThroughputDecreases) {
  const InterferenceModel model = InterferenceModel::Measured();
  const WorkloadId gcn = WorkloadRegistry::IdOf("GCN");
  const WorkloadId a3c = WorkloadRegistry::IdOf("A3C");
  const double one = model.Throughput(gcn, {a3c});
  const double two = model.Throughput(gcn, {a3c, a3c});
  EXPECT_LT(two, one);
}

}  // namespace
}  // namespace eva
