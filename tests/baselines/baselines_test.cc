#include <gtest/gtest.h>

#include <set>

#include "src/baselines/no_packing.h"
#include "src/baselines/owl.h"
#include "src/baselines/stratus.h"
#include "src/baselines/synergy.h"

namespace eva {
namespace {

class BaselineFixture : public testing::Test {
 protected:
  BaselineFixture() : catalog_(InstanceCatalog::AwsDefault()) {
    context_.catalog = &catalog_;
  }

  TaskId AddTask(WorkloadId workload, InstanceId on = kInvalidInstanceId,
                 SimTime remaining_s = HoursToSeconds(1.0)) {
    TaskInfo task;
    task.id = next_task_id_++;
    task.job = task.id;
    task.workload = workload;
    const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
    task.demand_p3 = spec.demand_p3;
    task.demand_cpu = spec.demand_cpu;
    task.current_instance = on;
    task.remaining_work_s = remaining_s;
    context_.tasks.push_back(task);
    return task.id;
  }

  void AddInstance(InstanceId id, const char* type, std::vector<TaskId> tasks) {
    InstanceInfo instance;
    instance.id = id;
    instance.type_index = catalog_.IndexOf(type);
    instance.tasks = std::move(tasks);
    context_.instances.push_back(instance);
  }

  InstanceCatalog catalog_;
  SchedulingContext context_;
  TaskId next_task_id_ = 0;
};

// ---------- No-Packing ----------

using NoPackingTest = BaselineFixture;

TEST_F(NoPackingTest, OneCheapestInstancePerTask) {
  AddTask(WorkloadRegistry::IdOf("CycleGAN"));
  AddTask(WorkloadRegistry::IdOf("GCN"));
  context_.Finalize();
  NoPackingScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
  for (const ConfigInstance& instance : config.instances) {
    EXPECT_EQ(instance.tasks.size(), 1u);
  }
  EXPECT_EQ(catalog_.Get(config.instances[0].type_index).name, "p3.2xlarge");
  EXPECT_EQ(catalog_.Get(config.instances[1].type_index).name, "r7i.4xlarge");
}

TEST_F(NoPackingTest, KeepsExistingPlacements) {
  const TaskId placed = AddTask(WorkloadRegistry::IdOf("CycleGAN"), 100);
  AddInstance(100, "p3.2xlarge", {placed});
  AddTask(WorkloadRegistry::IdOf("A3C"));
  context_.Finalize();
  NoPackingScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
  EXPECT_EQ(config.instances[0].reuse_instance, 100);
}

TEST_F(NoPackingTest, DropsEmptyInstances) {
  AddInstance(100, "p3.2xlarge", {});
  context_.Finalize();
  NoPackingScheduler scheduler;
  EXPECT_TRUE(scheduler.Schedule(context_).instances.empty());
}

// ---------- Stratus ----------

using StratusTest = BaselineFixture;

TEST_F(StratusTest, PacksSameBinTasksTogether) {
  // Two CycleGAN tasks with ~1h remaining: same runtime bin, and a
  // p3.2xlarge only fits one -> the second opens its own instance; two GCN
  // tasks fit one r7i.2xlarge? GCN needs (0,6,40): r7i.2xlarge (8,64) fits
  // only one (12 CPUs needed for two). Use A3C (0,4,8 on C7i): two fit a
  // c7i.xlarge? c7i.xlarge is (4,8): one. Use CPU tasks on one big box via
  // fresh-instance pull-in: first A3C opens c7i.xlarge (cheapest fitting),
  // no room for second. So instead verify bin separation below and packing
  // via existing capacity here.
  const WorkloadId a3c = WorkloadRegistry::IdOf("A3C");
  const TaskId placed = AddTask(a3c, 100, HoursToSeconds(1.0));
  AddInstance(100, "c7i.8xlarge", {placed});  // 32 CPUs, lots of room.
  AddTask(a3c, kInvalidInstanceId, HoursToSeconds(1.1));  // Same bin.
  context_.Finalize();
  StratusScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].tasks.size(), 2u);
}

TEST_F(StratusTest, DoesNotMixRuntimeBins) {
  const WorkloadId a3c = WorkloadRegistry::IdOf("A3C");
  const TaskId placed = AddTask(a3c, 100, HoursToSeconds(8.0));  // Long job.
  AddInstance(100, "c7i.8xlarge", {placed});
  AddTask(a3c, kInvalidInstanceId, HoursToSeconds(0.6));  // Short job.
  context_.Finalize();
  StratusScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  // The short task must NOT join the long task's instance.
  ASSERT_EQ(config.instances.size(), 2u);
  EXPECT_EQ(config.instances[0].tasks.size(), 1u);
  EXPECT_EQ(config.instances[1].tasks.size(), 1u);
}

TEST_F(StratusTest, NeverMigratesExistingTasks) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 100);
  const TaskId b = AddTask(vit, 101);
  AddInstance(100, "p3.8xlarge", {a});
  AddInstance(101, "p3.8xlarge", {b});
  context_.Finalize();
  StratusScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
  std::set<InstanceId> reused;
  for (const ConfigInstance& instance : config.instances) {
    reused.insert(instance.reuse_instance);
    EXPECT_EQ(instance.tasks.size(), 1u);
  }
  EXPECT_EQ(reused, std::set<InstanceId>({100, 101}));
}

TEST_F(StratusTest, FreshInstancePullsInWaitingSameBinTasks) {
  // ViT (2 GPUs) opens a p3.8xlarge (4 GPUs); a second same-bin ViT fits
  // the leftover capacity and is pulled in.
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  AddTask(vit, kInvalidInstanceId, HoursToSeconds(1.0));
  AddTask(vit, kInvalidInstanceId, HoursToSeconds(1.2));
  context_.Finalize();
  StratusScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].tasks.size(), 2u);
}

// ---------- Synergy ----------

using SynergyTest = BaselineFixture;

TEST_F(SynergyTest, BestFitPrefersTightestInstance) {
  // Two p3.8xlarge fragments around GraphSAGE anchors (RP $12.24 keeps them
  // cost-efficient); the tighter one (GraphSAGE + ResNet18) wins best-fit
  // for the incoming ResNet18 task.
  const TaskId g1 = AddTask(WorkloadRegistry::IdOf("GraphSAGE"), 100);
  const TaskId g2 = AddTask(WorkloadRegistry::IdOf("GraphSAGE"), 101);
  const TaskId r1 = AddTask(WorkloadRegistry::IdOf("ResNet18-2task"), 101);
  AddInstance(100, "p3.8xlarge", {g1});        // Loose leftover.
  AddInstance(101, "p3.8xlarge", {g2, r1});    // Tight leftover.
  AddTask(WorkloadRegistry::IdOf("ResNet18-2task"));
  context_.Finalize();
  SynergyScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
  const ConfigInstance& tight = config.instances[1];
  EXPECT_EQ(tight.reuse_instance, 101);
  EXPECT_EQ(tight.tasks.size(), 3u);
}

TEST_F(SynergyTest, CostEfficiencyGuardBlocksDegradingJoins) {
  // A cost-covered anchor (lone ViT on its RP instance, TNRP = cost) may
  // not accept a joiner that drags the set below coverage: with the
  // learned pair throughput at 0.4, two ViTs are worth 2*0.4*$12.24 = $9.8
  // on the $12.24 box.
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId anchor = AddTask(vit, 100);
  AddInstance(100, "p3.8xlarge", {anchor});
  AddTask(vit);
  context_.Finalize();
  SynergyScheduler scheduler;
  JobThroughputObservation observation;
  observation.job = 999;
  observation.normalized_throughput = 0.4;
  TaskPlacementObservation placement;
  placement.task = 0;
  placement.workload = vit;
  placement.colocated = {vit};
  observation.tasks.push_back(placement);
  scheduler.ObserveThroughput({observation});
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
}

TEST_F(SynergyTest, StrandedInstanceAcceptsImprovingJoins) {
  // A GPT2 stranded alone on a p3.16xlarge (TNRP $12.24 < $24.48) cannot
  // be migrated by Synergy, but a joiner that raises the set's value is
  // welcome — the box is being paid for either way.
  const TaskId anchor = AddTask(WorkloadRegistry::IdOf("GPT2"), 100);
  AddInstance(100, "p3.16xlarge", {anchor});
  AddTask(WorkloadRegistry::IdOf("CycleGAN"));
  context_.Finalize();
  SynergyScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].tasks.size(), 2u);
}

TEST_F(SynergyTest, LaunchesCheapestWhenNothingFits) {
  AddTask(WorkloadRegistry::IdOf("GPT2"));
  context_.Finalize();
  SynergyScheduler scheduler;
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(catalog_.Get(config.instances[0].type_index).name, "p3.8xlarge");
}

TEST_F(SynergyTest, InterferenceGuardBlocksDestructiveColocation) {
  // The learned table (via observations) says co-locating destroys most of
  // the newcomer's value: Synergy must open a new instance instead.
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId placed = AddTask(vit, 100);
  AddInstance(100, "p3.16xlarge", {placed});
  AddTask(vit);
  context_.Finalize();
  SynergyScheduler scheduler;
  // Feed observations that ViT next to ViT collapses to 0.2.
  JobThroughputObservation observation;
  observation.job = 999;
  observation.normalized_throughput = 0.2;
  TaskPlacementObservation p;
  p.task = 0;
  p.workload = vit;
  p.colocated = {vit};
  observation.tasks.push_back(p);
  scheduler.ObserveThroughput({observation});
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
}

// ---------- Owl ----------

class OwlTest : public BaselineFixture {
 protected:
  OwlTest() : model_(InterferenceModel::Measured()), oracle_(&model_) {}

  InterferenceModel model_;
  OracleThroughput oracle_;
};

TEST_F(OwlTest, PairsCompatibleTasks) {
  // Two ViTs: profile says ResNet18-profile x ResNet18-profile = 0.93,
  // above the 0.85 threshold, and TNRP(pair)/cost(p3.8xlarge) =
  // 2*0.93*12.24 / 12.24 = 1.86 >= 1.
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  AddTask(vit);
  AddTask(vit);
  context_.Finalize();
  OwlScheduler scheduler(&oracle_);
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].tasks.size(), 2u);
}

TEST_F(OwlTest, RefusesHighInterferencePairs) {
  // GCN + A3C: GCN's throughput under A3C is 0.65 < 0.85 threshold.
  AddTask(WorkloadRegistry::IdOf("GCN"));
  AddTask(WorkloadRegistry::IdOf("A3C"));
  context_.Finalize();
  OwlScheduler scheduler(&oracle_);
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
  for (const ConfigInstance& instance : config.instances) {
    EXPECT_EQ(instance.tasks.size(), 1u);
  }
}

TEST_F(OwlTest, RefusesCostInefficientPairs) {
  // CycleGAN + Diamond: the pair needs a GPU box with 22 C7i... on P3:
  // (1,4,10)+(0,14,16) = (1,18,26) -> no p3.2xlarge (8 cpu); p3.8xlarge
  // costs 12.24 while the pair's TNRP is ~3.4 -> ratio < 1.
  AddTask(WorkloadRegistry::IdOf("CycleGAN"));
  AddTask(WorkloadRegistry::IdOf("Diamond"));
  context_.Finalize();
  OwlScheduler scheduler(&oracle_);
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
}

TEST_F(OwlTest, ConsolidatesRunningSingletons) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 100);
  const TaskId b = AddTask(vit, 101);
  AddInstance(100, "p3.8xlarge", {a});
  AddInstance(101, "p3.8xlarge", {b});
  context_.Finalize();
  OwlScheduler scheduler(&oracle_);
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].tasks.size(), 2u);
}

TEST_F(OwlTest, NeverFormsTriples) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  AddTask(vit);
  AddTask(vit);
  AddTask(vit);
  context_.Finalize();
  OwlScheduler scheduler(&oracle_);
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 2u);
  for (const ConfigInstance& instance : config.instances) {
    EXPECT_LE(instance.tasks.size(), 2u);
  }
}

TEST_F(OwlTest, KeepsEstablishedPairsIntact) {
  const WorkloadId vit = WorkloadRegistry::IdOf("ViT");
  const TaskId a = AddTask(vit, 100);
  const TaskId b = AddTask(vit, 100);
  AddInstance(100, "p3.8xlarge", {a, b});
  context_.Finalize();
  OwlScheduler scheduler(&oracle_);
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].reuse_instance, 100);
}

TEST_F(OwlTest, UnpairedSingletonKeepsItsInstance) {
  const WorkloadId gcn = WorkloadRegistry::IdOf("GCN");
  const TaskId a = AddTask(gcn, 100);
  AddInstance(100, "r7i.4xlarge", {a});
  context_.Finalize();
  OwlScheduler scheduler(&oracle_);
  const ClusterConfig config = scheduler.Schedule(context_);
  ASSERT_EQ(config.instances.size(), 1u);
  EXPECT_EQ(config.instances[0].reuse_instance, 100);
}

}  // namespace
}  // namespace eva
