// CloudProvider unit tests: tiered catalog layout, admission/denial
// accounting, quote snapshots with the risk premium, and spot-aware cost.

#include "src/cloud/provider.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

CloudProviderOptions SpotOptions() {
  CloudProviderOptions options;
  options.enabled = true;
  options.spot.enabled = true;
  options.spot.seed = 9;
  return options;
}

TEST(CloudProviderTest, DisabledSpotKeepsBaseCatalogIdentity) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  CloudProviderOptions options;
  options.enabled = true;
  const CloudProvider provider(base, options);
  EXPECT_FALSE(provider.spot_enabled());
  EXPECT_EQ(provider.tiered_catalog().NumTypes(), 21);
  EXPECT_EQ(&provider.tiered_catalog(), &provider.base_catalog());
  EXPECT_FALSE(provider.IsSpotType(20));
  EXPECT_EQ(provider.BaseType(20), 20);
}

TEST(CloudProviderTest, TieredCatalogAppendsSpotTwins) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  const CloudProvider provider(base, SpotOptions());
  const InstanceCatalog& tiered = provider.tiered_catalog();
  ASSERT_EQ(tiered.NumTypes(), 42);
  for (int i = 0; i < 21; ++i) {
    // Base prefix verbatim...
    EXPECT_EQ(tiered.Get(i).name, base.Get(i).name);
    EXPECT_EQ(tiered.Get(i).cost_per_hour, base.Get(i).cost_per_hour);
    // ...spot twin with same family and capacity.
    const InstanceType& spot = tiered.Get(i + 21);
    EXPECT_EQ(spot.name, base.Get(i).name + "-spot");
    EXPECT_EQ(spot.family, base.Get(i).family);
    EXPECT_EQ(spot.capacity.cpus(), base.Get(i).capacity.cpus());
    EXPECT_TRUE(provider.IsSpotType(i + 21));
    EXPECT_EQ(provider.BaseType(i + 21), i);
  }
}

TEST(CloudProviderTest, QuoteCatalogPricesSpotWithRiskPremium) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  const CloudProvider provider(base, SpotOptions());
  const SimTime t = 12345.0;
  const auto quote = provider.MakeQuoteCatalog(t, /*risk_premium=*/0.25);
  ASSERT_EQ(quote->NumTypes(), 42);
  for (int i = 0; i < 21; ++i) {
    EXPECT_EQ(quote->Get(i).cost_per_hour, base.Get(i).cost_per_hour);
    EXPECT_EQ(quote->Get(i + 21).cost_per_hour, provider.market().Quote(i, t) * 1.25);
  }
  // Fresh object per call: pricing caches key on identity.
  EXPECT_NE(quote.get(), provider.MakeQuoteCatalog(t, 0.25).get());
}

TEST(CloudProviderTest, AdmissionDeniesWhenFamilyPoolExhausted) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  CloudProviderOptions options;
  options.enabled = true;
  options.family_capacity = {2, -1, -1};  // Two P3 slots, the rest unlimited.
  CloudProvider provider(base, options);

  EXPECT_TRUE(provider.TryAcquire(0, 0.0));   // p3.2xlarge
  EXPECT_TRUE(provider.TryAcquire(1, 0.0));   // p3.8xlarge
  EXPECT_FALSE(provider.TryAcquire(2, 0.0));  // Pool exhausted.
  EXPECT_TRUE(provider.TryAcquire(3, 0.0));   // c7i.large: unlimited family.

  provider.Release(0, 0.0, 3600.0);
  EXPECT_TRUE(provider.TryAcquire(2, 3600.0));  // Slot came back.

  const CloudProviderMetrics metrics = provider.FinalizeMetrics(3600.0);
  const auto& p3 = metrics.families[0];
  EXPECT_EQ(p3.granted, 3);
  EXPECT_EQ(p3.denied, 1);
  EXPECT_EQ(p3.released, 1);
  EXPECT_EQ(p3.peak_in_use, 2);
  EXPECT_EQ(p3.capacity, 2);
  EXPECT_DOUBLE_EQ(p3.instance_hours, 1.0);
  // One of two slots busy for the whole horizon.
  EXPECT_DOUBLE_EQ(p3.avg_utilization, 0.5);
  EXPECT_EQ(metrics.TotalGranted(), 4);
  EXPECT_EQ(metrics.TotalDenied(), 1);
}

TEST(CloudProviderTest, FiniteFamilyMaskTracksCapacities) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  CloudProviderOptions options;
  options.enabled = true;
  options.family_capacity = {2, -1, 0};  // P3 and R7i finite, C7i unlimited.
  const CloudProvider provider(base, options);
  EXPECT_EQ(provider.finite_family_mask(), 0b101u);

  CloudProviderOptions unlimited;
  unlimited.enabled = true;
  EXPECT_EQ(CloudProvider(base, unlimited).finite_family_mask(), 0u);
}

TEST(CloudProviderTest, SharedQuoteCatalogCachesByPriceStepAndPremium) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  const CloudProvider provider(base, SpotOptions());
  const double step_s = provider.market().options().price_step_s;

  // Same price step, same premium: the identical snapshot object — the
  // identity the Eva round memo and pricing caches key on.
  const auto a = provider.SharedQuoteCatalog(100.0, 0.25);
  const auto b = provider.SharedQuoteCatalog(100.0 + step_s * 0.5, 0.25);
  EXPECT_EQ(a.get(), b.get());

  // Crossing a step boundary or changing the premium makes a new snapshot.
  const auto c = provider.SharedQuoteCatalog(100.0 + step_s, 0.25);
  EXPECT_NE(a.get(), c.get());
  const auto d = provider.SharedQuoteCatalog(100.0, 0.5);
  EXPECT_NE(a.get(), d.get());

  // Prices match the per-call snapshot bit-for-bit.
  const SimTime t = 3.0 * step_s + 17.0;
  const auto shared = provider.SharedQuoteCatalog(t, 0.25);
  const auto fresh = provider.MakeQuoteCatalog(t, 0.25);
  ASSERT_EQ(shared->NumTypes(), fresh->NumTypes());
  for (int i = 0; i < shared->NumTypes(); ++i) {
    EXPECT_EQ(shared->Get(i).cost_per_hour, fresh->Get(i).cost_per_hour);
  }
}

TEST(CloudProviderTest, SharedQuoteCatalogWithoutSpotIsOneBaseSnapshot) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  CloudProviderOptions options;
  options.enabled = true;
  const CloudProvider provider(base, options);
  const auto a = provider.SharedQuoteCatalog(0.0, 0.25);
  const auto b = provider.SharedQuoteCatalog(99999.0, 0.75);
  EXPECT_EQ(a.get(), b.get());  // Prices never move without a spot market.
  EXPECT_EQ(a->NumTypes(), 21);
  EXPECT_EQ(a->Get(5).cost_per_hour, base.Get(5).cost_per_hour);
}

TEST(CloudProviderTest, UnlimitedPoolPeakIsSweptFromLifetimes) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  CloudProviderOptions options;
  options.enabled = true;  // All families unlimited.
  CloudProvider provider(base, options);

  // Overlapping lifetimes [0,1h], [0.5h,3h] and a still-live acquire at 2h:
  // concurrency peaks at 2 (never 3), whatever order the tallies landed in.
  EXPECT_TRUE(provider.TryAcquire(0, 0.0));
  EXPECT_TRUE(provider.TryAcquire(1, 1800.0));
  provider.Release(0, 0.0, 3600.0);
  EXPECT_TRUE(provider.TryAcquire(2, 7200.0));
  provider.Release(1, 1800.0, 10800.0);

  const CloudProviderMetrics metrics = provider.FinalizeMetrics(14400.0);
  const auto& p3 = metrics.families[0];
  EXPECT_EQ(p3.granted, 3);
  EXPECT_EQ(p3.released, 2);
  EXPECT_EQ(p3.denied, 0);
  EXPECT_EQ(p3.peak_in_use, 2);
}

TEST(CloudProviderTest, InstanceCostUsesSpotTraceForSpotTypes) {
  const InstanceCatalog base = InstanceCatalog::AwsDefault();
  const CloudProvider provider(base, SpotOptions());
  const Money on_demand = provider.InstanceCost(0, 0.0, 7200.0);
  EXPECT_EQ(on_demand, CostForUptime(base.Get(0).cost_per_hour, 7200.0));
  const Money spot = provider.InstanceCost(21, 0.0, 7200.0);
  EXPECT_EQ(spot, provider.market().CostForInterval(0, 0.0, 7200.0));
  EXPECT_NE(spot, on_demand);
}

}  // namespace
}  // namespace eva
