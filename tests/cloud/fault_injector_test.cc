// FaultModel unit tests: the schedule purity and clamp arithmetic the
// simulator's fault handlers and the provider's TryAcquire both lean on.
// Every decision must be a pure function of (seed, kind, entity, step) —
// re-evaluation in any order, from any consumer, always agrees.

#include "src/cloud/fault_injector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace eva {
namespace {

FaultInjectorOptions EnabledOptions() {
  FaultInjectorOptions options;
  options.enabled = true;
  return options;
}

TEST(FaultInjectorTest, StepOfAndBoundaryRoundTrip) {
  const FaultModel model(EnabledOptions());
  const SimTime period = model.options().check_period_s;

  EXPECT_EQ(model.StepOf(0.0), 0);
  EXPECT_EQ(model.StepOf(period - 1.0), 0);
  // A boundary timestamp belongs to the step it opens.
  EXPECT_EQ(model.StepOf(period), 1);
  EXPECT_EQ(model.StepOf(3.0 * period + 0.5), 3);

  // NextStepBoundary is strictly after t and lands in the next step —
  // including when t is exactly a boundary (the kFaultCheck re-arm case).
  for (const SimTime t : {0.0, 1.0, period - 0.25, period, 7.0 * period + 123.0}) {
    const SimTime boundary = model.NextStepBoundary(t);
    EXPECT_GT(boundary, t);
    EXPECT_EQ(model.StepOf(boundary), model.StepOf(t) + 1) << "t=" << t;
  }
}

TEST(FaultInjectorTest, SchedulesArePureAndSeedSensitive) {
  const FaultModel model(EnabledOptions());
  FaultInjectorOptions reseeded = EnabledOptions();
  reseeded.seed = 1234567;
  const FaultModel other(reseeded);

  int fired = 0;
  int differs = 0;
  for (int zone = 0; zone < model.options().num_zones; ++zone) {
    for (std::int64_t step = 0; step < 4000; ++step) {
      const bool outage = model.ZoneOutageStartsAt(zone, step);
      // Pure: asking again (any order, any time) gives the same answer.
      EXPECT_EQ(model.ZoneOutageStartsAt(zone, step), outage);
      EXPECT_EQ(model.DrainStartsAt(zone, step), model.DrainStartsAt(zone, step));
      fired += outage ? 1 : 0;
      differs += outage != other.ZoneOutageStartsAt(zone, step) ? 1 : 0;
    }
  }
  // ~2% of 16,000 rolls fire; the reseeded model disagrees somewhere.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 16000 / 10);
  EXPECT_GT(differs, 0);

  // Kinds are independently salted: the zone-outage and drain schedules are
  // not the same schedule (equal probabilities notwithstanding, the rolls
  // differ somewhere over this many steps).
  bool kinds_differ = false;
  FaultInjectorOptions same_p = EnabledOptions();
  same_p.drain_probability = same_p.zone_outage_probability;
  const FaultModel same_p_model(same_p);
  for (std::int64_t step = 0; step < 4000 && !kinds_differ; ++step) {
    kinds_differ = same_p_model.ZoneOutageStartsAt(0, step) !=
                   same_p_model.DrainStartsAt(0, step);
  }
  EXPECT_TRUE(kinds_differ);
}

TEST(FaultInjectorTest, OutageWindowCoversDurationAndClampsCapacity) {
  FaultInjectorOptions options = EnabledOptions();
  options.zone_outage_probability = 1.0;  // Every zone down every step.
  const FaultModel all_down(options);
  EXPECT_TRUE(all_down.ZoneDownAt(0, 0.0));
  EXPECT_EQ(all_down.UpZoneCount(0.0), 0);
  // All zones down: finite capacity clamps to zero, unlimited passes through.
  EXPECT_EQ(all_down.ClampedCapacity(40, 0.0), 0);
  EXPECT_EQ(all_down.ClampedCapacity(-1, 0.0), -1);

  // Find a real (zone, step) outage under defaults and walk its window.
  const FaultModel model(EnabledOptions());
  const SimTime period = model.options().check_period_s;
  const SimTime duration = model.options().zone_outage_duration_s;
  int zone = -1;
  std::int64_t step = -1;
  const std::int64_t steps_per_window =
      static_cast<std::int64_t>(duration / period) + 1;
  for (std::int64_t s = 0; s < 100000 && zone < 0; ++s) {
    for (int z = 0; z < model.options().num_zones; ++z) {
      if (!model.ZoneOutageStartsAt(z, s)) {
        continue;
      }
      // Require an isolated outage: no follow-up outage of the same zone
      // within the window, so the post-window probe below really is up.
      bool isolated = true;
      for (std::int64_t k = 1; k <= steps_per_window; ++k) {
        isolated = isolated && !model.ZoneOutageStartsAt(z, s + k);
      }
      if (isolated) {
        zone = z;
        step = s;
        break;
      }
    }
  }
  ASSERT_GE(zone, 0) << "no outage in 100k steps at p=0.02?";
  const SimTime start = static_cast<double>(step) * period;
  EXPECT_TRUE(model.ZoneDownAt(zone, start));
  EXPECT_TRUE(model.ZoneDownAt(zone, start + duration - 1.0));
  EXPECT_FALSE(model.ZoneDownAt(zone, start + duration));

  // While one of four zones is down, a 40-slot pool clamps to 30.
  if (model.UpZoneCount(start) == model.options().num_zones - 1) {
    EXPECT_EQ(model.ClampedCapacity(40, start), 30);
  }
  // No outage before time zero.
  EXPECT_EQ(model.ClampedCapacity(40, -1.0), 40);
}

TEST(FaultInjectorTest, ZoneAssignmentIsPureAndSpread) {
  const FaultModel model(EnabledOptions());
  std::vector<int> counts(static_cast<std::size_t>(model.options().num_zones), 0);
  for (std::int64_t id = 0; id < 400; ++id) {
    const int zone = model.ZoneAt(/*tenant_id=*/7, id, /*launch_time=*/0.0);
    ASSERT_GE(zone, 0);
    ASSERT_LT(zone, model.options().num_zones);
    EXPECT_EQ(model.ZoneAt(7, id, 0.0), zone);  // Pure.
    ++counts[static_cast<std::size_t>(zone)];
  }
  for (const int count : counts) {
    EXPECT_GT(count, 0);  // All four zones get instances.
  }
  // Different tenants hash to different placements somewhere.
  bool tenants_differ = false;
  for (std::int64_t id = 0; id < 400 && !tenants_differ; ++id) {
    tenants_differ = model.ZoneAt(7, id, 0.0) != model.ZoneAt(8, id, 0.0);
  }
  EXPECT_TRUE(tenants_differ);
}

TEST(FaultInjectorTest, VictimRanksArePureAndOrderIndependent) {
  const FaultModel model(EnabledOptions());
  // Rank a set forwards and backwards: the induced victim order must agree
  // — the property that makes burst victim sets iteration-order free.
  std::vector<std::uint64_t> forward;
  for (std::int64_t id = 0; id < 64; ++id) {
    forward.push_back(model.VictimRank(/*tenant_id=*/3, id, /*step=*/11));
  }
  for (std::int64_t id = 63; id >= 0; --id) {
    EXPECT_EQ(model.VictimRank(3, id, 11), forward[static_cast<std::size_t>(id)]);
  }
  // Ranks vary across instances and across steps (different victim sets on
  // different bursts).
  bool varies = false;
  for (std::size_t i = 1; i < forward.size() && !varies; ++i) {
    varies = forward[i] != forward[0];
  }
  EXPECT_TRUE(varies);
  EXPECT_NE(model.VictimRank(3, 0, 11), model.VictimRank(3, 0, 12));
}

TEST(FaultInjectorTest, DisabledModelNeverFiresOrClamps) {
  FaultInjectorOptions options;  // enabled = false.
  options.zone_outage_probability = 1.0;
  options.drain_probability = 1.0;
  options.correlated_failure_probability = 1.0;
  const FaultModel model(options);
  EXPECT_FALSE(model.enabled());
  for (std::int64_t step = 0; step < 32; ++step) {
    EXPECT_FALSE(model.ZoneOutageStartsAt(0, step));
    EXPECT_FALSE(model.CorrelatedFailureAt(0, step));
    EXPECT_FALSE(model.DrainStartsAt(0, step));
  }
  EXPECT_FALSE(model.ZoneDownAt(0, 1000.0));
  EXPECT_EQ(model.ClampedCapacity(40, 1000.0), 40);
}

}  // namespace
}  // namespace eva
