#include "src/cloud/instance_type.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(InstanceCatalogTest, AwsDefaultHas21Types) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  EXPECT_EQ(catalog.NumTypes(), 21);
  int p3 = 0;
  int c7i = 0;
  int r7i = 0;
  for (const InstanceType& type : catalog.types()) {
    switch (type.family) {
      case InstanceFamily::kP3:
        ++p3;
        break;
      case InstanceFamily::kC7i:
        ++c7i;
        break;
      case InstanceFamily::kR7i:
        ++r7i;
        break;
    }
  }
  EXPECT_EQ(p3, 3);
  EXPECT_EQ(c7i, 9);
  EXPECT_EQ(r7i, 9);
}

TEST(InstanceCatalogTest, OnlyP3HasGpus) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  for (const InstanceType& type : catalog.types()) {
    if (type.family == InstanceFamily::kP3) {
      EXPECT_GT(type.capacity.gpus(), 0.0) << type.name;
    } else {
      EXPECT_DOUBLE_EQ(type.capacity.gpus(), 0.0) << type.name;
    }
  }
}

TEST(InstanceCatalogTest, PricesScaleWithSize) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // Within a family, bigger capacity must cost more.
  for (const InstanceType& a : catalog.types()) {
    for (const InstanceType& b : catalog.types()) {
      if (a.family == b.family && a.capacity.cpus() < b.capacity.cpus()) {
        EXPECT_LT(a.cost_per_hour, b.cost_per_hour) << a.name << " vs " << b.name;
      }
    }
  }
}

TEST(InstanceCatalogTest, IndexOf) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const int index = catalog.IndexOf("p3.8xlarge");
  ASSERT_GE(index, 0);
  EXPECT_DOUBLE_EQ(catalog.Get(index).capacity.gpus(), 4.0);
  EXPECT_EQ(catalog.IndexOf("m5.large"), -1);
}

TEST(InstanceCatalogTest, IndicesByDescendingCost) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const std::vector<int>& order = catalog.IndicesByDescendingCost();
  ASSERT_EQ(order.size(), 21u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(catalog.Get(order[i - 1]).cost_per_hour, catalog.Get(order[i]).cost_per_hour);
  }
  // p3.16xlarge is the most expensive type in the catalog.
  EXPECT_EQ(catalog.Get(order[0]).name, "p3.16xlarge");
}

TEST(InstanceCatalogTest, CheapestFittingSimpleCpuTask) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // 1 core, 4 GB: c7i.large at $0.0893 is the cheapest host.
  const auto index = catalog.CheapestFitting(ResourceVector(0, 1, 4));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "c7i.large");
}

TEST(InstanceCatalogTest, CheapestFittingPrefersMemoryOptimizedForRamHeavy) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // GCN on C7i/R7i: 6 cores + 40 GB RAM. c7i would need an 8xlarge
  // ($1.428); r7i.4xlarge (8 cores, 128 GB) costs $1.0584.
  const auto index = catalog.CheapestFitting(ResourceVector(0, 6, 40));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "r7i.4xlarge");
}

TEST(InstanceCatalogTest, CheapestFittingGpuTask) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const auto index = catalog.CheapestFitting(ResourceVector(1, 4, 24));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "p3.2xlarge");
}

TEST(InstanceCatalogTest, CheapestFittingUsesPerFamilyDemands) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // A3C: 10 CPUs on P3 but only 4 on C7i/R7i. With family-aware demand the
  // c7i.2xlarge (4 cores, 16 GB, $0.357) fits.
  const auto index = catalog.CheapestFitting([](InstanceFamily family) {
    return family == InstanceFamily::kP3 ? ResourceVector(0, 10, 8) : ResourceVector(0, 4, 8);
  });
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "c7i.2xlarge");
}

TEST(InstanceCatalogTest, NothingFitsReturnsNullopt) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  EXPECT_FALSE(catalog.CheapestFitting(ResourceVector(16, 4, 4)).has_value());
  EXPECT_FALSE(catalog.ReservationPrice([](InstanceFamily) {
    return ResourceVector(0, 1000, 1);
  }).has_value());
}

TEST(InstanceCatalogTest, ReservationPricePaperExample) {
  // Table 3: RP(tau1..tau4) = 12, 3, 0.8, 0.4.
  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  const ResourceVector demands[] = {{2, 8, 24}, {1, 4, 10}, {0, 6, 20}, {0, 4, 12}};
  const double expected[] = {12.0, 3.0, 0.8, 0.4};
  for (int i = 0; i < 4; ++i) {
    const auto rp = catalog.ReservationPrice(
        [&demands, i](InstanceFamily) { return demands[i]; });
    ASSERT_TRUE(rp.has_value()) << i;
    EXPECT_DOUBLE_EQ(*rp, expected[i]) << i;
  }
}

// --- Edge cases (ISSUE 5 satellite) --------------------------------------

TEST(InstanceCatalogTest, EmptyCatalogFitsNothing) {
  const InstanceCatalog catalog{std::vector<InstanceType>{}};
  EXPECT_EQ(catalog.NumTypes(), 0);
  EXPECT_FALSE(catalog.CheapestFitting(ResourceVector(0, 1, 1)).has_value());
  EXPECT_TRUE(catalog.IndicesByDescendingCost().empty());
}

TEST(InstanceCatalogTest, DemandExceedingEveryAxisFitsNoType) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // Each axis individually beyond the largest type in the catalog.
  EXPECT_FALSE(catalog.CheapestFitting(ResourceVector(9, 1, 1)).has_value());    // > 8 GPUs
  EXPECT_FALSE(catalog.CheapestFitting(ResourceVector(0, 97, 1)).has_value());   // > 96 cores
  EXPECT_FALSE(catalog.CheapestFitting(ResourceVector(0, 1, 1537)).has_value()); // > 1536 GB
  // A demand that fits only when paired with a GPU axis no CPU family has.
  EXPECT_FALSE(catalog.CheapestFitting(ResourceVector(1, 64, 1)).has_value());
}

TEST(InstanceCatalogTest, FamilyDependentDemandCanFitNowhere) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // Resolves to an impossible demand on every family, even though each
  // family-specific vector would fit SOME other family's types: P3 gets a
  // CPU count only C7i/R7i offer, and the CPU families get a GPU.
  const auto index = catalog.CheapestFitting([](InstanceFamily family) {
    return family == InstanceFamily::kP3 ? ResourceVector(0, 96, 4)
                                         : ResourceVector(1, 1, 4);
  });
  EXPECT_FALSE(index.has_value());
  EXPECT_FALSE(catalog
                   .ReservationPrice([](InstanceFamily family) {
                     return family == InstanceFamily::kP3 ? ResourceVector(0, 96, 4)
                                                          : ResourceVector(1, 1, 4);
                   })
                   .has_value());
}

TEST(InstanceCatalogTest, PerFamilyResolutionPicksTheCheaperFamily) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // Identical nominal need, but the demand resolver models the C7i cores as
  // twice as effective: 8 cores on P3 vs 4 on C7i/R7i. c7i.2xlarge ($0.357)
  // beats every fitting P3 ($3.06+) and r7i.2xlarge ($0.5292).
  const auto index = catalog.CheapestFitting([](InstanceFamily family) {
    return family == InstanceFamily::kP3 ? ResourceVector(0, 8, 16)
                                         : ResourceVector(0, 4, 16);
  });
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "c7i.2xlarge");
}

TEST(InstanceCatalogTest, CheapestFitTieBreaksOnLowestIndex) {
  // Two fitting types at exactly the same price: the first (lowest index)
  // must win, deterministically — strict less-than keeps the incumbent.
  const InstanceCatalog catalog(std::vector<InstanceType>{
      {"a", InstanceFamily::kC7i, {0, 4, 16}, 0.5},
      {"b", InstanceFamily::kC7i, {0, 8, 32}, 0.5},   // Same price, bigger.
      {"c", InstanceFamily::kR7i, {0, 4, 16}, 0.5},   // Same price again.
      {"d", InstanceFamily::kC7i, {0, 16, 64}, 0.9},
  });
  const auto index = catalog.CheapestFitting(ResourceVector(0, 2, 8));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(*index, 0);
  // A demand only the larger twin hosts skips the tie entirely.
  const auto bigger = catalog.CheapestFitting(ResourceVector(0, 8, 32));
  ASSERT_TRUE(bigger.has_value());
  EXPECT_EQ(*bigger, 1);
}

TEST(InstanceCatalogTest, DescendingCostOrderTieBreaksOnAscendingIndex) {
  const InstanceCatalog catalog(std::vector<InstanceType>{
      {"a", InstanceFamily::kC7i, {0, 4, 16}, 0.5},
      {"b", InstanceFamily::kC7i, {0, 8, 32}, 0.9},
      {"c", InstanceFamily::kR7i, {0, 4, 16}, 0.5},
      {"d", InstanceFamily::kC7i, {0, 2, 8}, 0.9},
  });
  // 0.9-priced types first (indices 1, 3 in ascending order — stable sort),
  // then the 0.5 tie (0, 2).
  EXPECT_EQ(catalog.IndicesByDescendingCost(), (std::vector<int>{1, 3, 0, 2}));
}

TEST(InstanceFamilyTest, Names) {
  EXPECT_STREQ(InstanceFamilyName(InstanceFamily::kP3), "P3");
  EXPECT_STREQ(InstanceFamilyName(InstanceFamily::kC7i), "C7i");
  EXPECT_STREQ(InstanceFamilyName(InstanceFamily::kR7i), "R7i");
}

}  // namespace
}  // namespace eva
