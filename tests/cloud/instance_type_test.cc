#include "src/cloud/instance_type.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(InstanceCatalogTest, AwsDefaultHas21Types) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  EXPECT_EQ(catalog.NumTypes(), 21);
  int p3 = 0;
  int c7i = 0;
  int r7i = 0;
  for (const InstanceType& type : catalog.types()) {
    switch (type.family) {
      case InstanceFamily::kP3:
        ++p3;
        break;
      case InstanceFamily::kC7i:
        ++c7i;
        break;
      case InstanceFamily::kR7i:
        ++r7i;
        break;
    }
  }
  EXPECT_EQ(p3, 3);
  EXPECT_EQ(c7i, 9);
  EXPECT_EQ(r7i, 9);
}

TEST(InstanceCatalogTest, OnlyP3HasGpus) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  for (const InstanceType& type : catalog.types()) {
    if (type.family == InstanceFamily::kP3) {
      EXPECT_GT(type.capacity.gpus(), 0.0) << type.name;
    } else {
      EXPECT_DOUBLE_EQ(type.capacity.gpus(), 0.0) << type.name;
    }
  }
}

TEST(InstanceCatalogTest, PricesScaleWithSize) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // Within a family, bigger capacity must cost more.
  for (const InstanceType& a : catalog.types()) {
    for (const InstanceType& b : catalog.types()) {
      if (a.family == b.family && a.capacity.cpus() < b.capacity.cpus()) {
        EXPECT_LT(a.cost_per_hour, b.cost_per_hour) << a.name << " vs " << b.name;
      }
    }
  }
}

TEST(InstanceCatalogTest, IndexOf) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const int index = catalog.IndexOf("p3.8xlarge");
  ASSERT_GE(index, 0);
  EXPECT_DOUBLE_EQ(catalog.Get(index).capacity.gpus(), 4.0);
  EXPECT_EQ(catalog.IndexOf("m5.large"), -1);
}

TEST(InstanceCatalogTest, IndicesByDescendingCost) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const std::vector<int>& order = catalog.IndicesByDescendingCost();
  ASSERT_EQ(order.size(), 21u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(catalog.Get(order[i - 1]).cost_per_hour, catalog.Get(order[i]).cost_per_hour);
  }
  // p3.16xlarge is the most expensive type in the catalog.
  EXPECT_EQ(catalog.Get(order[0]).name, "p3.16xlarge");
}

TEST(InstanceCatalogTest, CheapestFittingSimpleCpuTask) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // 1 core, 4 GB: c7i.large at $0.0893 is the cheapest host.
  const auto index = catalog.CheapestFitting(ResourceVector(0, 1, 4));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "c7i.large");
}

TEST(InstanceCatalogTest, CheapestFittingPrefersMemoryOptimizedForRamHeavy) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // GCN on C7i/R7i: 6 cores + 40 GB RAM. c7i would need an 8xlarge
  // ($1.428); r7i.4xlarge (8 cores, 128 GB) costs $1.0584.
  const auto index = catalog.CheapestFitting(ResourceVector(0, 6, 40));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "r7i.4xlarge");
}

TEST(InstanceCatalogTest, CheapestFittingGpuTask) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const auto index = catalog.CheapestFitting(ResourceVector(1, 4, 24));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "p3.2xlarge");
}

TEST(InstanceCatalogTest, CheapestFittingUsesPerFamilyDemands) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  // A3C: 10 CPUs on P3 but only 4 on C7i/R7i. With family-aware demand the
  // c7i.2xlarge (4 cores, 16 GB, $0.357) fits.
  const auto index = catalog.CheapestFitting([](InstanceFamily family) {
    return family == InstanceFamily::kP3 ? ResourceVector(0, 10, 8) : ResourceVector(0, 4, 8);
  });
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(catalog.Get(*index).name, "c7i.2xlarge");
}

TEST(InstanceCatalogTest, NothingFitsReturnsNullopt) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  EXPECT_FALSE(catalog.CheapestFitting(ResourceVector(16, 4, 4)).has_value());
  EXPECT_FALSE(catalog.ReservationPrice([](InstanceFamily) {
    return ResourceVector(0, 1000, 1);
  }).has_value());
}

TEST(InstanceCatalogTest, ReservationPricePaperExample) {
  // Table 3: RP(tau1..tau4) = 12, 3, 0.8, 0.4.
  const InstanceCatalog catalog = InstanceCatalog::PaperExample();
  const ResourceVector demands[] = {{2, 8, 24}, {1, 4, 10}, {0, 6, 20}, {0, 4, 12}};
  const double expected[] = {12.0, 3.0, 0.8, 0.4};
  for (int i = 0; i < 4; ++i) {
    const auto rp = catalog.ReservationPrice(
        [&demands, i](InstanceFamily) { return demands[i]; });
    ASSERT_TRUE(rp.has_value()) << i;
    EXPECT_DOUBLE_EQ(*rp, expected[i]) << i;
  }
}

TEST(InstanceFamilyTest, Names) {
  EXPECT_STREQ(InstanceFamilyName(InstanceFamily::kP3), "P3");
  EXPECT_STREQ(InstanceFamilyName(InstanceFamily::kC7i), "C7i");
  EXPECT_STREQ(InstanceFamilyName(InstanceFamily::kR7i), "R7i");
}

}  // namespace
}  // namespace eva
