// Property tests for the deterministic spot market: quotes are pure
// functions of (seed, type, time), stay inside the configured band, preempt
// exactly at the threshold, and integrate consistently.

#include "src/cloud/spot_market.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace eva {
namespace {

SpotMarketOptions TestOptions() {
  SpotMarketOptions options;
  options.enabled = true;
  options.price_step_s = 900.0;
  options.min_price_fraction = 0.25;
  options.max_price_fraction = 0.60;
  options.spike_probability = 0.10;
  options.spike_price_fraction = 1.5;
  options.preemption_price_fraction = 1.0;
  options.seed = 77;
  return options;
}

TEST(SpotMarketTest, QuotesStayInsideTheConfiguredBand) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SpotMarket market(catalog, TestOptions());
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const int type = static_cast<int>(rng.UniformInt(0, catalog.NumTypes() - 1));
    const SimTime t = rng.Uniform(0.0, 30.0 * kSecondsPerDay);
    const double fraction = market.PriceFraction(type, t);
    const bool in_band = fraction >= 0.25 && fraction <= 0.60;
    const bool spiking = fraction == 1.5;
    EXPECT_TRUE(in_band || spiking) << "fraction " << fraction;
    EXPECT_EQ(market.Quote(type, t), catalog.Get(type).cost_per_hour * fraction);
  }
}

TEST(SpotMarketTest, QuotesArePureFunctionsOfSeedTypeAndStep) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SpotMarket a(catalog, TestOptions());
  const SpotMarket b(catalog, TestOptions());
  SpotMarketOptions other = TestOptions();
  other.seed = 78;
  const SpotMarket c(catalog, other);
  Rng rng(2);
  int differing = 0;
  for (int i = 0; i < 1000; ++i) {
    const int type = static_cast<int>(rng.UniformInt(0, catalog.NumTypes() - 1));
    const SimTime t = rng.Uniform(0.0, 30.0 * kSecondsPerDay);
    // Identical options agree bit-for-bit, in any evaluation order.
    EXPECT_EQ(a.Quote(type, t), b.Quote(type, t));
    // Within a step the quote is constant.
    const SimTime step_start = std::floor(t / 900.0) * 900.0;
    EXPECT_EQ(a.Quote(type, t), a.Quote(type, step_start + 1.0));
    if (a.Quote(type, t) != c.Quote(type, t)) {
      ++differing;
    }
  }
  // A different seed produces a genuinely different trace.
  EXPECT_GT(differing, 500);
}

TEST(SpotMarketTest, PreemptsExactlyWhenQuoteReachesThreshold) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SpotMarket market(catalog, TestOptions());
  int preempting = 0;
  int calm = 0;
  for (int step = 0; step < 2000; ++step) {
    const SimTime t = step * 900.0 + 1.0;
    const double fraction = market.PriceFraction(0, t);
    const bool preempt = market.IsPreempting(0, t);
    EXPECT_EQ(preempt, fraction >= 1.0 - 1e-12);
    (preempt ? preempting : calm) += 1;
  }
  // With spike probability 0.10 both outcomes must occur over 2,000 steps.
  EXPECT_GT(preempting, 50);
  EXPECT_GT(calm, 1000);
}

TEST(SpotMarketTest, NextStepBoundaryIsStrictlyAhead) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SpotMarket market(catalog, TestOptions());
  EXPECT_EQ(market.NextStepBoundary(0.0), 900.0);
  EXPECT_EQ(market.NextStepBoundary(1.0), 900.0);
  EXPECT_EQ(market.NextStepBoundary(899.999), 900.0);
  // Exactly on a boundary: the *next* boundary, never the current instant.
  EXPECT_EQ(market.NextStepBoundary(900.0), 1800.0);
}

TEST(SpotMarketTest, BoundaryTimesReadTheStepTheyOpenForAnyStepSize) {
  // Steps without an exact binary representation: floor(t / step_s) of a
  // boundary produced as (k+1) * step_s can land fractionally below k+1.
  // The kSpotCheck event fires exactly at NextStepBoundary, so the quote
  // read there must be the NEW step's — otherwise a spike is missed for a
  // whole extra step.
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  for (double step_s : {3.3, 0.07, 617.7, 900.0}) {
    SpotMarketOptions options = TestOptions();
    options.price_step_s = step_s;
    const SpotMarket market(catalog, options);
    SimTime t = 1.0e-3;
    for (int hop = 0; hop < 200; ++hop) {
      const SimTime boundary = market.NextStepBoundary(t);
      ASSERT_GT(boundary, t) << "step_s " << step_s << " hop " << hop;
      // The price at the boundary equals the price just after it (same
      // step), not the price just before it (previous step) — unless the
      // two steps happen to share a quote.
      ASSERT_EQ(market.PriceFraction(0, boundary),
                market.PriceFraction(0, boundary + step_s * 0.5))
          << "step_s " << step_s << " hop " << hop;
      t = boundary;
    }
  }
}

TEST(SpotMarketTest, CostIntegralMatchesQuoteOverWholeSteps) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SpotMarket market(catalog, TestOptions());
  const int type = 3;
  // One full step costs exactly quote x step-hours.
  const Money one_step = market.CostForInterval(type, 1800.0, 2700.0);
  EXPECT_EQ(one_step, CostForUptime(market.Quote(type, 1800.0), 900.0));
  // Empty and inverted intervals are free.
  EXPECT_EQ(market.CostForInterval(type, 100.0, 100.0), 0.0);
  EXPECT_EQ(market.CostForInterval(type, 200.0, 100.0), 0.0);
}

TEST(SpotMarketTest, CostIntegralIsAdditiveAcrossSplits) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SpotMarket market(catalog, TestOptions());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int type = static_cast<int>(rng.UniformInt(0, catalog.NumTypes() - 1));
    const SimTime t0 = rng.Uniform(0.0, 5.0 * kSecondsPerDay);
    const SimTime t2 = t0 + rng.Uniform(0.0, 2.0 * kSecondsPerDay);
    const SimTime t1 = t0 + (t2 - t0) * rng.NextDouble();
    const Money whole = market.CostForInterval(type, t0, t2);
    const Money split =
        market.CostForInterval(type, t0, t1) + market.CostForInterval(type, t1, t2);
    EXPECT_NEAR(whole, split, 1e-9 * std::max(1.0, whole));
    EXPECT_GE(whole, 0.0);
  }
}

TEST(SpotMarketTest, SpotIsCheaperThanOnDemandInExpectation) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const SpotMarket market(catalog, TestOptions());
  // A long holding at spot must undercut on-demand by roughly the band
  // midpoint (spikes pull the mean up a little).
  const SimTime month = 30.0 * kSecondsPerDay;
  const Money spot = market.CostForInterval(0, 0.0, month);
  const Money on_demand = CostForUptime(catalog.Get(0).cost_per_hour, month);
  EXPECT_LT(spot, 0.7 * on_demand);
  EXPECT_GT(spot, 0.2 * on_demand);
}

}  // namespace
}  // namespace eva
