#include "src/cloud/delays.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(DelayRangeTest, MeanIsMeasuredAverage) {
  const DelayRange range{6.0, 83.0, 19.0};
  EXPECT_DOUBLE_EQ(range.Mean(), 19.0);
}

TEST(DelayRangeTest, SampleStaysInRange) {
  const DelayRange range{140.0, 251.0, 190.0};
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const SimTime sample = range.Sample(rng);
    EXPECT_GE(sample, 140.0);
    EXPECT_LE(sample, 251.0);
  }
}

TEST(DelayRangeTest, SampleMeanTracksMeasuredAverage) {
  const DelayRange range{6.0, 83.0, 19.0};
  Rng rng(2);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += range.Sample(rng);
  }
  // Expected value of the mixture is (min + 2*avg + max) / 4 = 31.75; must
  // land well below the range midpoint (44.5), reflecting the skew.
  EXPECT_NEAR(sum / n, 31.75, 1.0);
}

TEST(DelayRangeTest, DegenerateRangeReturnsAverage) {
  const DelayRange range{5.0, 5.0, 5.0};
  Rng rng(3);
  EXPECT_DOUBLE_EQ(range.Sample(rng), 5.0);
}

TEST(CloudDelayModelTest, DeterministicProvisioningDelay) {
  const CloudDelayModel model;
  // Table 1 averages: acquisition 19s + setup 190s.
  EXPECT_DOUBLE_EQ(model.ProvisioningDelay(nullptr), 209.0);
}

TEST(CloudDelayModelTest, StochasticProvisioningDelayWithinBounds) {
  const CloudDelayModel model;
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const SimTime delay = model.ProvisioningDelay(&rng);
    EXPECT_GE(delay, 6.0 + 140.0);
    EXPECT_LE(delay, 83.0 + 251.0);
  }
}

}  // namespace
}  // namespace eva
