#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(4.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(QuantileTest, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0); }

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStats) {
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> xs = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 9.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.5), 2.0);
}

TEST(MeanMedianTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
}

TEST(TimeWeightedAverageTest, WeightsByDuration) {
  TimeWeightedAverage avg;
  avg.Add(1.0, 3.0);
  avg.Add(5.0, 1.0);
  EXPECT_DOUBLE_EQ(avg.Average(), 2.0);
  EXPECT_DOUBLE_EQ(avg.total_duration(), 4.0);
}

TEST(TimeWeightedAverageTest, IgnoresNonPositiveDurations) {
  TimeWeightedAverage avg;
  avg.Add(100.0, 0.0);
  avg.Add(100.0, -1.0);
  EXPECT_DOUBLE_EQ(avg.Average(), 0.0);
  avg.Add(2.0, 5.0);
  EXPECT_DOUBLE_EQ(avg.Average(), 2.0);
}

TEST(EmpiricalCdfTest, SortedWithCumulativeProbabilities) {
  const auto cdf = EmpiricalCdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.25);
  EXPECT_DOUBLE_EQ(cdf[3].first, 3.0);
  EXPECT_DOUBLE_EQ(cdf[3].second, 1.0);
}

TEST(EmpiricalCdfTest, EmptyInput) { EXPECT_TRUE(EmpiricalCdf({}).empty()); }

TEST(MeanPlusMinusTest, Formats) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  EXPECT_EQ(MeanPlusMinus(stats, 1), "2.0 ± 1.4");
}

}  // namespace
}  // namespace eva
