// Logging runtime configuration: EVA_LOG_LEVEL / EVA_LOG_FILE environment
// parsing and the optional file sink. Each test restores the global logging
// state it touches — the level and sink are process-wide.

#include "src/common/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace eva {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = GetLogLevel(); }
  void TearDown() override {
    SetLogFile(nullptr);
    SetLogLevel(saved_level_);
    ::unsetenv("EVA_LOG_LEVEL");
    ::unsetenv("EVA_LOG_FILE");
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static std::string TempPath(const char* name) {
    return ::testing::TempDir() + "/" + name;
  }

 private:
  LogLevel saved_level_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, EnvLevelByName) {
  ::setenv("EVA_LOG_LEVEL", "error", 1);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  ::setenv("EVA_LOG_LEVEL", "debug", 1);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);

  // "warn" is accepted alongside the canonical "warning".
  ::setenv("EVA_LOG_LEVEL", "warn", 1);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, EnvLevelByDigitAndInvalidIsIgnored) {
  ::setenv("EVA_LOG_LEVEL", "1", 1);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);

  // Garbage leaves the level untouched.
  ::setenv("EVA_LOG_LEVEL", "loudest", 1);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, FileSinkReceivesMessages) {
  const std::string path = TempPath("eva_logging_test.log");
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path.c_str()));
  SetLogLevel(LogLevel::kInfo);
  EVA_LOG_INFO("file sink message %d", 42);
  EVA_LOG_DEBUG("suppressed %d", 1);  // Below the threshold: dropped.
  SetLogFile(nullptr);  // Flush + restore stderr.

  const std::string contents = ReadFile(path);
  EXPECT_NE(contents.find("file sink message 42"), std::string::npos);
  EXPECT_NE(contents.find("[INFO]"), std::string::npos);
  EXPECT_EQ(contents.find("suppressed"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(LoggingTest, FileSinkAppends) {
  const std::string path = TempPath("eva_logging_append.log");
  std::remove(path.c_str());
  SetLogLevel(LogLevel::kInfo);
  ASSERT_TRUE(SetLogFile(path.c_str()));
  EVA_LOG_INFO("first");
  SetLogFile(nullptr);
  ASSERT_TRUE(SetLogFile(path.c_str()));
  EVA_LOG_INFO("second");
  SetLogFile(nullptr);

  const std::string contents = ReadFile(path);
  EXPECT_NE(contents.find("first"), std::string::npos);
  EXPECT_NE(contents.find("second"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(LoggingTest, EnvFileSinkViaInit) {
  const std::string path = TempPath("eva_logging_env.log");
  std::remove(path.c_str());
  ::setenv("EVA_LOG_LEVEL", "info", 1);
  ::setenv("EVA_LOG_FILE", path.c_str(), 1);
  InitLoggingFromEnv();
  EVA_LOG_INFO("routed by env");
  SetLogFile(nullptr);

  EXPECT_NE(ReadFile(path).find("routed by env"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(LoggingTest, UnopenablePathFallsBackToStderr) {
  EXPECT_FALSE(SetLogFile("/nonexistent-dir-xyz/eva.log"));
  // Still operational on stderr: must not crash.
  EVA_LOG_ERROR("still alive");
}

}  // namespace
}  // namespace eva
