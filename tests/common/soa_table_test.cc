#include "src/common/soa_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"

namespace eva {
namespace {

TEST(EpochColumnTest, SetFindClearBasics) {
  EpochColumn<int> column;
  EXPECT_EQ(column.Find(3), nullptr);
  column.Set(3, 30);
  column.Set(7, 70);
  ASSERT_NE(column.Find(3), nullptr);
  EXPECT_EQ(*column.Find(3), 30);
  EXPECT_EQ(*column.Find(7), 70);
  EXPECT_EQ(column.Find(5), nullptr);
  column.Clear();
  EXPECT_EQ(column.Find(3), nullptr);
  EXPECT_EQ(column.Find(7), nullptr);
  column.Set(3, 31);
  EXPECT_EQ(*column.Find(3), 31);
}

// The property the refactor rests on: an EpochColumn cleared per round is
// observationally equivalent to a per-round std::unordered_map rebuild.
TEST(EpochColumnTest, EpochInvalidationMatchesPerRoundMapSemantics) {
  EpochColumn<std::int64_t> column;
  Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    std::unordered_map<std::size_t, std::int64_t> reference;
    const int writes = static_cast<int>(rng.UniformInt(0, 40));
    for (int w = 0; w < writes; ++w) {
      const std::size_t key = static_cast<std::size_t>(rng.UniformInt(0, 99));
      const std::int64_t value = rng.UniformInt(-1000, 1000);
      // Mixed write API: Set and Touch must agree with map assignment.
      if (rng.UniformInt(0, 1) == 0) {
        column.Set(key, value);
      } else {
        column.Touch(key) = value;
      }
      reference[key] = value;
    }
    for (std::size_t key = 0; key < 110; ++key) {
      const auto it = reference.find(key);
      const std::int64_t* found = column.Find(key);
      ASSERT_EQ(found != nullptr, it != reference.end())
          << "round " << round << " key " << key;
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
      EXPECT_EQ(column.Contains(key), it != reference.end());
    }
    // End of round: the map is thrown away, the column is epoch-cleared.
    column.Clear();
  }
}

TEST(EpochSetTest, InsertContainsEraseClear) {
  EpochSet<std::int64_t> set;
  EXPECT_TRUE(set.Insert(5));
  EXPECT_FALSE(set.Insert(5));
  EXPECT_TRUE(set.Insert(2));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(3));
  set.EraseMembership(5);
  EXPECT_FALSE(set.Contains(5));
  EXPECT_TRUE(set.Contains(2));
  // items() retains the stale 5 until Clear, but membership is the truth.
  EXPECT_EQ(set.items().size(), 2u);
  set.Clear();
  EXPECT_TRUE(set.Empty());
  EXPECT_FALSE(set.Contains(2));
  EXPECT_TRUE(set.Insert(2));
}

TEST(IdSetTest, MatchesStdSetUnderRandomChurn) {
  IdSet<std::int64_t> flat;
  std::set<std::int64_t> reference;
  Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    const std::int64_t id = rng.UniformInt(0, 60);
    if (rng.UniformInt(0, 2) == 0) {
      EXPECT_EQ(flat.erase(id), reference.erase(id) > 0);
    } else {
      EXPECT_EQ(flat.insert(id), reference.insert(id).second);
    }
    ASSERT_EQ(flat.size(), reference.size());
  }
  // Iteration order must be identical to std::set (ascending).
  auto it = reference.begin();
  for (const std::int64_t id : flat) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(id, *it);
    ++it;
  }
  EXPECT_EQ(it, reference.end());
}

TEST(IdSetTest, AssignSortedReplacesContents) {
  IdSet<std::int64_t> flat;
  flat.insert(9);
  flat.insert(1);
  const std::vector<std::int64_t> next = {2, 4, 8};
  flat.AssignSorted(next);
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_TRUE(flat.contains(4));
  EXPECT_FALSE(flat.contains(1));
  std::vector<std::int64_t> seen(flat.begin(), flat.end());
  EXPECT_EQ(seen, next);
}

TEST(FlatMemoMapTest, MatchesUnorderedMapUnderRandomChurn) {
  struct IdentityHash {
    std::size_t operator()(std::int64_t key) const { return static_cast<std::size_t>(key); }
  };
  FlatMemoMap<std::int64_t, int, IdentityHash> map;
  std::unordered_map<std::int64_t, int> reference;
  Rng rng(20260808);
  for (int op = 0; op < 20000; ++op) {
    // Keys deliberately cluster in the low bits (multiples of a power of
    // two) — the shape the probe-start mixer has to survive.
    const std::int64_t key = rng.UniformInt(0, 400) * 64;
    const std::size_t hash = IdentityHash()(key);
    if (rng.UniformInt(0, 2) == 0) {
      const int* found = map.Find(key, hash);
      const auto it = reference.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end()) << "key " << key;
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
    } else {
      const int value = static_cast<int>(rng.UniformInt(-1000, 1000));
      map.Upsert(key, hash, [&] { return key; }) = value;
      reference[key] = value;
      ASSERT_EQ(map.size(), reference.size());
    }
    if (op % 4999 == 0) {
      map.Clear();
      reference.clear();
    }
  }
}

// The heterogeneous-probe contract the TNRP set memo relies on: stored
// keys intern their payload in caller-owned storage, probes carry the
// expensive form, and the Eq functor bridges the two. The stored key must
// be materialized exactly once per distinct probe.
TEST(FlatMemoMapTest, HeterogeneousProbeInternsKeyOncePerEntry) {
  struct Stored {
    std::size_t hash = 0;
    std::size_t offset = 0;
    std::size_t count = 0;
  };
  struct Probe {
    std::size_t hash = 0;
    std::vector<int> members;
  };
  struct StoredHash {
    std::size_t operator()(const Stored& key) const { return key.hash; }
  };
  struct StoredEq {
    const std::vector<int>* blob;
    bool operator()(const Stored& stored, const Probe& probe) const {
      return stored.hash == probe.hash && stored.count == probe.members.size() &&
             std::equal(probe.members.begin(), probe.members.end(),
                        blob->begin() + static_cast<std::ptrdiff_t>(stored.offset));
    }
  };
  std::vector<int> blob;
  FlatMemoMap<Stored, int, StoredHash, StoredEq> map{StoredHash{}, StoredEq{&blob}};

  int interned = 0;
  auto upsert = [&](const Probe& probe, int value) {
    map.Upsert(probe, probe.hash, [&] {
      ++interned;
      Stored stored;
      stored.hash = probe.hash;
      stored.offset = blob.size();
      stored.count = probe.members.size();
      blob.insert(blob.end(), probe.members.begin(), probe.members.end());
      return stored;
    }) = value;
  };

  // Two distinct probes sharing a hash (worst case) stay distinct entries.
  const Probe a{17, {1, 2, 3}};
  const Probe b{17, {1, 2, 4}};
  upsert(a, 100);
  upsert(b, 200);
  EXPECT_EQ(interned, 2);
  EXPECT_EQ(map.size(), 2u);

  // Overwriting through an equal probe reuses the interned key.
  upsert(a, 101);
  EXPECT_EQ(interned, 2);
  ASSERT_NE(map.Find(a, a.hash), nullptr);
  EXPECT_EQ(*map.Find(a, a.hash), 101);
  ASSERT_NE(map.Find(b, b.hash), nullptr);
  EXPECT_EQ(*map.Find(b, b.hash), 200);

  // Force growth past the initial capacity; interned entries must survive
  // the re-insertion (Hash::operator() over stored keys).
  for (int i = 0; i < 200; ++i) {
    upsert(Probe{static_cast<std::size_t>(1000 + i), {i}}, i);
  }
  EXPECT_EQ(*map.Find(a, a.hash), 101);
  EXPECT_EQ(*map.Find(b, b.hash), 200);
  EXPECT_EQ(map.size(), 202u);
}

TEST(PagedTableTest, EmplaceFindEraseIterate) {
  PagedTable<int> table;
  EXPECT_TRUE(table.empty());
  for (std::int64_t id = 0; id < 1500; ++id) {
    table.Emplace(id) = static_cast<int>(id * 2);
  }
  EXPECT_EQ(table.size(), 1500u);
  EXPECT_EQ(table.at(1234), 2468);
  ASSERT_NE(table.Find(0), nullptr);
  EXPECT_EQ(table.Find(1500), nullptr);

  // Pointers are stable across growth.
  int* early = table.Find(3);
  for (std::int64_t id = 1500; id < 4000; ++id) {
    table.Emplace(id) = static_cast<int>(id * 2);
  }
  EXPECT_EQ(table.Find(3), early);

  // Erase odd ids; iteration yields the surviving ids ascending.
  for (std::int64_t id = 1; id < 4000; id += 2) {
    table.Erase(id);
  }
  EXPECT_EQ(table.size(), 2000u);
  std::int64_t expected = 0;
  for (auto it = table.begin(); it != table.end(); ++it) {
    EXPECT_EQ(it.id(), expected);
    EXPECT_EQ(*it, static_cast<int>(expected * 2));
    expected += 2;
  }
  EXPECT_EQ(expected, 4000);
}

TEST(PagedTableTest, IterationSkipsFullyErasedPages) {
  PagedTable<int> table;
  const std::int64_t page = static_cast<std::int64_t>(PagedTable<int>::kPageSize);
  for (std::int64_t id = 0; id < 3 * page; ++id) {
    table.Emplace(id) = 1;
  }
  // Erase the whole middle page.
  for (std::int64_t id = page; id < 2 * page; ++id) {
    table.Erase(id);
  }
  std::size_t seen = 0;
  for (auto it = table.begin(); it != table.end(); ++it) {
    EXPECT_TRUE(it.id() < page || it.id() >= 2 * page);
    ++seen;
  }
  EXPECT_EQ(seen, table.size());
}

}  // namespace
}  // namespace eva
