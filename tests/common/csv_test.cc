#include "src/common/csv.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(ParseCsvLineTest, SimpleFields) {
  const auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLineTest, EmptyFields) {
  const auto fields = ParseCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  const auto fields = ParseCsvLine(R"(a,"b,c",d)");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
}

TEST(ParseCsvLineTest, EscapedQuote) {
  const auto fields = ParseCsvLine(R"("say ""hi""")");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvLineTest, ToleratesCarriageReturn) {
  const auto fields = ParseCsvLine("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(EscapeCsvFieldTest, PlainPassthrough) { EXPECT_EQ(EscapeCsvField("abc"), "abc"); }

TEST(EscapeCsvFieldTest, QuotesWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\"b"), "\"a\"\"b\"");
}

TEST(JoinCsvLineTest, RoundTripsThroughParse) {
  const std::vector<std::string> fields = {"plain", "with,comma", "with\"quote", ""};
  EXPECT_EQ(ParseCsvLine(JoinCsvLine(fields)), fields);
}

TEST(CsvTableTest, ParseWithHeader) {
  const auto table = CsvTable::Parse("id,name\n1,alpha\n2,beta\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->Field(0, "name"), "alpha");
  EXPECT_EQ(table->Field(1, "id"), "2");
}

TEST(CsvTableTest, RejectsRaggedRows) {
  EXPECT_FALSE(CsvTable::Parse("a,b\n1\n").has_value());
}

TEST(CsvTableTest, RejectsEmptyInput) { EXPECT_FALSE(CsvTable::Parse("").has_value()); }

TEST(CsvTableTest, SkipsBlankLines) {
  const auto table = CsvTable::Parse("a,b\n\n1,2\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->NumRows(), 1u);
}

TEST(CsvTableTest, ColumnIndexMissing) {
  const auto table = CsvTable::Parse("a,b\n1,2\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->ColumnIndex("a"), 0);
  EXPECT_EQ(table->ColumnIndex("zzz"), -1);
  EXPECT_EQ(table->Field(0, "zzz"), "");
}

TEST(CsvTableTest, FieldOutOfRangeRowIsEmpty) {
  const auto table = CsvTable::Parse("a\n1\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->Field(5, "a"), "");
}

TEST(CsvTableTest, ToStringRoundTrip) {
  CsvTable table({"x", "y"});
  table.AddRow({"1", "hello,world"});
  const auto reparsed = CsvTable::Parse(table.ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->Field(0, "y"), "hello,world");
}

TEST(CsvTableTest, SaveAndLoad) {
  CsvTable table({"k", "v"});
  table.AddRow({"a", "1"});
  const std::string path = testing::TempDir() + "/eva_csv_test.csv";
  ASSERT_TRUE(table.Save(path));
  const auto loaded = CsvTable::Load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->Field(0, "k"), "a");
}

TEST(CsvTableTest, LoadMissingFileFails) {
  EXPECT_FALSE(CsvTable::Load("/nonexistent/nope.csv").has_value());
}

}  // namespace
}  // namespace eva
