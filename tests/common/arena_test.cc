#include "src/common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"

namespace eva {
namespace {

TEST(MonotonicArenaTest, AllocationsAreAlignedAndDisjoint) {
  MonotonicArena arena(64);
  char* a = arena.AllocateArray<char>(3);
  double* d = arena.AllocateArray<double>(2);
  std::uint32_t* u = arena.AllocateArray<std::uint32_t>(5);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(d, nullptr);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u) % alignof(std::uint32_t), 0u);
  // Writes to each block must not clobber the others.
  std::memset(a, 0xAB, 3);
  d[0] = 1.5;
  d[1] = -2.5;
  for (int i = 0; i < 5; ++i) u[i] = static_cast<std::uint32_t>(i);
  EXPECT_EQ(a[2], static_cast<char>(0xAB));
  EXPECT_EQ(d[0], 1.5);
  EXPECT_EQ(d[1], -2.5);
  EXPECT_EQ(u[4], 4u);
}

TEST(MonotonicArenaTest, LargeAllocationExceedingChunkSizeSucceeds) {
  MonotonicArena arena(32);
  // Far larger than the min chunk and the doubling sequence's next step.
  constexpr std::size_t kBig = 1 << 20;
  unsigned char* block = arena.AllocateArray<unsigned char>(kBig);
  ASSERT_NE(block, nullptr);
  block[0] = 1;
  block[kBig - 1] = 2;
  EXPECT_EQ(block[0], 1);
  EXPECT_EQ(block[kBig - 1], 2);
  // A small allocation after the spike still works.
  int* small = arena.AllocateArray<int>(1);
  ASSERT_NE(small, nullptr);
  *small = 7;
  EXPECT_EQ(*small, 7);
  EXPECT_GE(arena.BytesReserved(), kBig);
}

TEST(MonotonicArenaTest, ResetReusesMemoryWithoutGrowth) {
  MonotonicArena arena(128);
  for (int i = 0; i < 16; ++i) {
    arena.AllocateArray<double>(64);
  }
  const std::size_t reserved = arena.BytesReserved();
  for (int round = 0; round < 100; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.BytesUsed(), 0u);
    for (int i = 0; i < 16; ++i) {
      ASSERT_NE(arena.AllocateArray<double>(64), nullptr);
    }
    // Steady state: no new chunks after the first pass sized the arena.
    EXPECT_EQ(arena.BytesReserved(), reserved);
  }
}

TEST(MonotonicArenaTest, MarkRewindReclaimsFrameScopedAllocations) {
  MonotonicArena arena(256);
  int* outer = arena.AllocateArray<int>(4);
  outer[0] = 42;
  const MonotonicArena::Marker mark = arena.Mark();
  const std::size_t used_at_mark = arena.BytesUsed();
  for (int depth = 0; depth < 50; ++depth) {
    arena.AllocateArray<double>(100);
  }
  arena.Rewind(mark);
  EXPECT_EQ(arena.BytesUsed(), used_at_mark);
  // The outer allocation survives the rewind.
  EXPECT_EQ(outer[0], 42);
  // Re-allocating after the rewind lands back inside the reserved chunks.
  const std::size_t reserved = arena.BytesReserved();
  for (int depth = 0; depth < 50; ++depth) {
    arena.AllocateArray<double>(100);
  }
  EXPECT_EQ(arena.BytesReserved(), reserved);
}

TEST(ArenaAllocatorTest, StlContainerRoundTrip) {
  MonotonicArena arena;
  ArenaVector<int> values{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) {
    values.push_back(i);
  }
  EXPECT_EQ(std::accumulate(values.begin(), values.end(), 0), 999 * 1000 / 2);

  // Rebinding works: a node-based container using the element allocator.
  std::unordered_map<int, double, std::hash<int>, std::equal_to<int>,
                     ArenaAllocator<std::pair<const int, double>>>
      map{0, std::hash<int>(), std::equal_to<int>(),
          ArenaAllocator<std::pair<const int, double>>(&arena)};
  for (int i = 0; i < 100; ++i) {
    map[i] = i * 0.5;
  }
  EXPECT_EQ(map.size(), 100u);
  EXPECT_EQ(map.at(42), 21.0);

  // Copies propagate the allocator and compare equal element-wise.
  ArenaVector<int> copy = values;
  EXPECT_EQ(copy.get_allocator().arena(), &arena);
  EXPECT_TRUE(std::equal(values.begin(), values.end(), copy.begin()));
}

TEST(ScratchLeaseTest, ReusesFrameAcrossLeases) {
  std::vector<int>* first = nullptr;
  {
    ScratchLease<std::vector<int>> lease;
    lease->assign(100, 7);
    first = lease.operator->();
  }
  {
    ScratchLease<std::vector<int>> lease;
    // Same thread, same depth: same pooled object, capacity retained.
    EXPECT_EQ(lease.operator->(), first);
    EXPECT_GE(lease->capacity(), 100u);
  }
}

TEST(ScratchLeaseTest, NestedLeasesGetDistinctFrames) {
  ScratchLease<std::vector<int>> outer;
  outer->assign(10, 1);
  {
    ScratchLease<std::vector<int>> inner;
    EXPECT_NE(inner.operator->(), outer.operator->());
    inner->assign(5, 2);
  }
  // The outer frame is untouched by the inner lease.
  EXPECT_EQ(outer->size(), 10u);
  EXPECT_EQ((*outer)[0], 1);
}

TEST(ScratchLeaseTest, FramesArePerThread) {
  std::vector<int>* main_frame = nullptr;
  {
    ScratchLease<std::vector<int>> lease;
    main_frame = lease.operator->();
  }
  std::vector<int>* worker_frame = nullptr;
  std::thread worker([&worker_frame] {
    ScratchLease<std::vector<int>> lease;
    worker_frame = lease.operator->();
    lease->assign(3, 9);
  });
  worker.join();
  EXPECT_NE(worker_frame, main_frame);
}

TEST(ScratchArenaTest, ResetOnAcquireAndDepthFramedUnderHelpingWait) {
  {
    ScratchArena arena;
    arena->AllocateArray<double>(1000);
    EXPECT_GT(arena->BytesUsed(), 0u);
  }
  {
    ScratchArena arena;
    // Fresh lease at the same depth: reset, memory retained.
    EXPECT_EQ(arena->BytesUsed(), 0u);
    EXPECT_GT(arena->BytesReserved(), 0u);
  }
  // Parallel sections: every worker (and the helping caller) gets a usable
  // arena; nested acquisition on the same thread must not clobber frames.
  ThreadPool pool(3);
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.Submit([] {
      ScratchArena outer;
      int* a = outer->AllocateArray<int>(64);
      a[0] = 1;
      {
        ScratchArena inner;
        EXPECT_NE(inner.get(), outer.get());
        inner->AllocateArray<int>(64);
      }
      EXPECT_EQ(a[0], 1);
    });
  }
  group.Wait();
}

}  // namespace
}  // namespace eva
