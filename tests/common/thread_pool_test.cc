#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace eva {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilAllDone) {
  ThreadPool pool(2);
  std::vector<int> results(50, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    pool.Submit([&results, i] { results[i] = static_cast<int>(i) + 1; });
  }
  pool.Wait();
  // After Wait, every slot must be written — no synchronization needed.
  const int sum = std::accumulate(results.begin(), results.end(), 0);
  EXPECT_EQ(sum, 50 * 51 / 2);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait: the destructor must still run everything already queued.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreads());
}

}  // namespace
}  // namespace eva
