#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace eva {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilAllDone) {
  ThreadPool pool(2);
  std::vector<int> results(50, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    pool.Submit([&results, i] { results[i] = static_cast<int>(i) + 1; });
  }
  pool.Wait();
  // After Wait, every slot must be written — no synchronization needed.
  const int sum = std::accumulate(results.begin(), results.end(), 0);
  EXPECT_EQ(sum, 50 * 51 / 2);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait: the destructor must still run everything already queued.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreads());
}

TEST(TaskGroupTest, WaitCoversExactlyThisGroup) {
  ThreadPool pool(2);
  std::atomic<int> group_counter{0};
  std::atomic<int> other_counter{0};
  // A slow unrelated task must not be waited on by the group.
  pool.Submit([&other_counter] { other_counter.fetch_add(1); });
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) {
    group.Submit([&group_counter] { group_counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(group_counter.load(), 32);
  pool.Wait();
  EXPECT_EQ(other_counter.load(), 1);
}

TEST(TaskGroupTest, NestedGroupsOnSingleThreadedPoolDoNotDeadlock) {
  // The outer task waits on an inner group from inside the pool's only
  // worker; the helping Wait must run the inner tasks itself.
  ThreadPool pool(1);
  std::atomic<int> inner_done{0};
  ThreadPool::TaskGroup outer(pool);
  outer.Submit([&pool, &inner_done] {
    ThreadPool::TaskGroup inner(pool);
    for (int i = 0; i < 8; ++i) {
      inner.Submit([&inner_done] { inner_done.fetch_add(1); });
    }
    inner.Wait();
  });
  outer.Wait();
  EXPECT_EQ(inner_done.load(), 8);
}

TEST(TaskGroupTest, WaitFromNonPoolThreadHelps) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();  // The calling thread should drain part of the queue itself.
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  pool.ParallelFor(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ParallelForTest, ZeroAndOneIterations) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace eva
