#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace eva {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(2.5, 9.0);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 9.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform(0.0, 10.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.UniformInt(0, 9);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 9);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(0.5);  // mean 2
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

// Regression test for the Box-Muller circle constant (rng.cc once relied on
// C++20's std::numbers::pi): a wrong constant skews the angle term and pushes
// the standard-normal moments outside these tolerances.
TEST(RngTest, StandardNormalHasZeroMeanUnitStddev) {
  Rng rng(43);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(0.0, 1.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(stddev, 1.0, 0.01);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) {
    xs.push_back(rng.LogNormal(std::log(0.2), 1.0));
  }
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 0.2, 0.02);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(4.0, 1.5), 4.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(37);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace eva
