#include "src/common/resources.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

TEST(ResourceVectorTest, DefaultIsZero) {
  ResourceVector v;
  EXPECT_TRUE(v.IsZero());
  EXPECT_TRUE(v.IsNonNegative());
  EXPECT_DOUBLE_EQ(v.gpus(), 0.0);
  EXPECT_DOUBLE_EQ(v.cpus(), 0.0);
  EXPECT_DOUBLE_EQ(v.ram_gb(), 0.0);
}

TEST(ResourceVectorTest, ComponentAccessors) {
  ResourceVector v(1, 4, 24);
  EXPECT_DOUBLE_EQ(v.gpus(), 1.0);
  EXPECT_DOUBLE_EQ(v.cpus(), 4.0);
  EXPECT_DOUBLE_EQ(v.ram_gb(), 24.0);
  EXPECT_DOUBLE_EQ(v.Get(Resource::kGpu), 1.0);
  EXPECT_DOUBLE_EQ(v.Get(Resource::kCpu), 4.0);
  EXPECT_DOUBLE_EQ(v.Get(Resource::kRamGb), 24.0);
}

TEST(ResourceVectorTest, SetMutates) {
  ResourceVector v;
  v.Set(Resource::kCpu, 8.0);
  EXPECT_DOUBLE_EQ(v.cpus(), 8.0);
  EXPECT_FALSE(v.IsZero());
}

TEST(ResourceVectorTest, FitsWithinExact) {
  ResourceVector demand(1, 8, 61);
  EXPECT_TRUE(demand.FitsWithin(demand));
}

TEST(ResourceVectorTest, FitsWithinSmaller) {
  ResourceVector demand(0, 4, 10);
  ResourceVector capacity(1, 8, 61);
  EXPECT_TRUE(demand.FitsWithin(capacity));
  EXPECT_FALSE(capacity.FitsWithin(demand));
}

TEST(ResourceVectorTest, FitsWithinFailsPerDimension) {
  ResourceVector capacity(1, 8, 61);
  EXPECT_FALSE(ResourceVector(2, 1, 1).FitsWithin(capacity));
  EXPECT_FALSE(ResourceVector(0, 9, 1).FitsWithin(capacity));
  EXPECT_FALSE(ResourceVector(0, 1, 62).FitsWithin(capacity));
}

TEST(ResourceVectorTest, FitsWithinToleratesFloatNoise) {
  ResourceVector capacity(1, 8, 61);
  ResourceVector demand(1, 8, 61);
  // Simulate accumulate/subtract noise.
  demand += ResourceVector(0, 1e-12, 0);
  EXPECT_TRUE(demand.FitsWithin(capacity));
}

TEST(ResourceVectorTest, AdditionAndSubtraction) {
  ResourceVector a(1, 4, 24);
  ResourceVector b(0, 4, 10);
  ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.gpus(), 1.0);
  EXPECT_DOUBLE_EQ(sum.cpus(), 8.0);
  EXPECT_DOUBLE_EQ(sum.ram_gb(), 34.0);
  ResourceVector diff = sum - b;
  EXPECT_EQ(diff, a);
}

TEST(ResourceVectorTest, SubtractionCanGoNegative) {
  ResourceVector a(0, 2, 4);
  ResourceVector b(1, 4, 8);
  ResourceVector diff = a - b;
  EXPECT_FALSE(diff.IsNonNegative());
}

TEST(ResourceVectorTest, Scaled) {
  ResourceVector v(1, 4, 24);
  ResourceVector half = v.Scaled(0.5);
  EXPECT_DOUBLE_EQ(half.gpus(), 0.5);
  EXPECT_DOUBLE_EQ(half.cpus(), 2.0);
  EXPECT_DOUBLE_EQ(half.ram_gb(), 12.0);
}

TEST(ResourceVectorTest, ToStringMatchesNotation) {
  EXPECT_EQ(ResourceVector(1, 4, 24).ToString(), "[g=1.00, c=4.00, m=24.00]");
}

TEST(ResourceVectorTest, ResourceNames) {
  EXPECT_STREQ(ResourceName(Resource::kGpu), "GPU");
  EXPECT_STREQ(ResourceName(Resource::kCpu), "CPU");
  EXPECT_STREQ(ResourceName(Resource::kRamGb), "RAM");
}

}  // namespace
}  // namespace eva
