// TraceRecorder unit tests: span bookkeeping, deterministic ring-wrap
// drops, and byte-stable Chrome trace_event export.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace eva {
namespace {

TEST(ObsTraceTest, RegistersTracksAndCountsSpans) {
  TraceRecorder recorder;
  const std::uint32_t a = recorder.RegisterTrack("alpha");
  const std::uint32_t b = recorder.RegisterTrack("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(recorder.num_tracks(), 2u);

  recorder.Instant(a, "ev.one", 1.0);
  recorder.Instant(a, "ev.two", 2.0, "arg", 7.0);
  recorder.Complete(b, "span", 1.5, 3.5, "x", 1.0, "y", 2.0);
  recorder.Counter(b, "depth", 4.0, 11.0);
  EXPECT_EQ(recorder.TotalEmitted(), 4u);
  EXPECT_EQ(recorder.TotalRetained(), 4u);
}

TEST(ObsTraceTest, ExportContainsMetadataEventsAndArgs) {
  TraceRecorder recorder;
  const std::uint32_t track = recorder.RegisterTrack("tenant0");
  recorder.Instant(track, "round", 300.0, "active_jobs", 12.0);
  recorder.Complete(track, "pack", 300.0, 300.0, "edits", 3.0);
  recorder.Counter(track, "queue", 600.0, 5.0);

  const std::string json = recorder.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("tenant0"), std::string::npos);
  EXPECT_NE(json.find("\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"active_jobs\":12"), std::string::npos);
  // Instant events carry thread scope; counters are "C" phase.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Virtual seconds render as microseconds: 300 s -> 300000000 us.
  EXPECT_NE(json.find("300000000"), std::string::npos);
}

TEST(ObsTraceTest, ReExportIsByteIdentical) {
  TraceRecorder recorder;
  const std::uint32_t track = recorder.RegisterTrack("t");
  for (int i = 0; i < 100; ++i) {
    recorder.Instant(track, "ev", static_cast<double>(i) * 0.1, "i",
                     static_cast<double>(i));
  }
  EXPECT_EQ(recorder.ToChromeJson(), recorder.ToChromeJson());
}

TEST(ObsTraceTest, SameSpansAcrossRecordersSerializeIdentically) {
  const auto emit = [](TraceRecorder& recorder) {
    const std::uint32_t a = recorder.RegisterTrack("a");
    const std::uint32_t b = recorder.RegisterTrack("b");
    // Interleave emits across tracks; export sorts by (ts, track, seq) so
    // emit order across tracks cannot matter.
    recorder.Instant(b, "late", 5.0);
    recorder.Instant(a, "early", 1.0);
    recorder.Complete(a, "work", 2.0, 4.0, "n", 3.0);
    recorder.Counter(b, "gauge", 2.0, 9.5);
  };
  TraceRecorder first;
  TraceRecorder second;
  emit(first);
  emit(second);
  EXPECT_EQ(first.ToChromeJson(), second.ToChromeJson());
}

TEST(ObsTraceTest, RingWrapDropsOldestDeterministically) {
  TraceRecorder::Options options;
  options.max_spans_per_track = 8;
  TraceRecorder recorder(options);
  const std::uint32_t track = recorder.RegisterTrack("t");
  for (int i = 0; i < 20; ++i) {
    recorder.Instant(track, "ev", static_cast<double>(i), "i",
                     static_cast<double>(i));
  }
  EXPECT_EQ(recorder.TotalEmitted(), 20u);
  EXPECT_EQ(recorder.TotalRetained(), 8u);
  const std::string json = recorder.ToChromeJson();
  // Oldest spans (i < 12) were overwritten; the trailing window survives.
  EXPECT_EQ(json.find("\"i\":11"), std::string::npos);
  EXPECT_NE(json.find("\"i\":12"), std::string::npos);
  EXPECT_NE(json.find("\"i\":19"), std::string::npos);
}

TEST(ObsTraceTest, NumbersFormatDeterministically) {
  TraceRecorder recorder;
  const std::uint32_t track = recorder.RegisterTrack("t");
  recorder.Instant(track, "ev", 0.0, "whole", 42.0, "frac", 0.125);
  const std::string json = recorder.ToChromeJson();
  // Integral doubles print without a trailing ".0"; fractions via %.9g.
  EXPECT_NE(json.find("\"whole\":42"), std::string::npos);
  EXPECT_EQ(json.find("\"whole\":42.0"), std::string::npos);
  EXPECT_NE(json.find("\"frac\":0.125"), std::string::npos);
}

TEST(ObsTraceTest, NullBindingIsFalsey) {
  TraceBinding binding;
  EXPECT_FALSE(binding);
  TraceRecorder recorder;
  binding.recorder = &recorder;
  EXPECT_TRUE(binding);
}

}  // namespace
}  // namespace eva
