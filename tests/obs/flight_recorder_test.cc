// FlightRecorder unit tests: rolling-window digest bookkeeping and the
// first-divergence diff that pinpoints where two runs forked.

#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>

namespace eva {
namespace {

RoundDigest MakeDigest(int i) {
  RoundDigest digest;
  digest.t_s = 300.0 * i;
  digest.config_hash = 0x1000u + static_cast<std::uint64_t>(i);
  digest.rng_hash = 0x2000u + static_cast<std::uint64_t>(i);
  digest.hourly_cost = 10.0 + i;
  digest.events_processed = 100 * i;
  digest.jobs_completed = i;
  digest.active_jobs = 50 - i;
  digest.live_instances = 20 + i;
  return digest;
}

void RecordN(FlightRecorder& recorder, int n) {
  for (int i = 0; i < n; ++i) {
    recorder.Record(MakeDigest(i));
  }
}

TEST(ObsFlightRecorderTest, AssignsMonotonicRoundsAndRetainsWindow) {
  FlightRecorder recorder(/*window=*/4);
  RecordN(recorder, 10);
  EXPECT_EQ(recorder.rounds_recorded(), 10);
  EXPECT_EQ(recorder.first_retained(), 6);
  EXPECT_EQ(recorder.Get(5), nullptr);   // Evicted.
  EXPECT_EQ(recorder.Get(10), nullptr);  // Not yet recorded.
  ASSERT_NE(recorder.Get(6), nullptr);
  EXPECT_EQ(recorder.Get(6)->round, 6);
  EXPECT_EQ(recorder.Get(9)->events_processed, 900);
}

TEST(ObsFlightRecorderTest, IdenticalRunsShowNoDivergence) {
  FlightRecorder a(16);
  FlightRecorder b(16);
  RecordN(a, 8);
  RecordN(b, 8);
  EXPECT_FALSE(DiffFirstDivergence(a, b).has_value());
}

TEST(ObsFlightRecorderTest, PinpointsInjectedPerturbationRoundAndField) {
  FlightRecorder a(16);
  FlightRecorder b(16);
  RecordN(a, 8);
  RecordN(b, 8);
  // Flip one bit of the RNG cursor at round 5 — the canonical symptom of a
  // stray draw — and the diff must name exactly that round and field.
  ASSERT_NE(b.MutableDigest(5), nullptr);
  b.MutableDigest(5)->rng_hash ^= 1u;
  const auto report = DiffFirstDivergence(a, b);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->round, 5);
  EXPECT_EQ(report->field, "rng_hash");
  EXPECT_FALSE(report->ToString().empty());
}

TEST(ObsFlightRecorderTest, ReportsSharpestFieldFirst) {
  FlightRecorder a(16);
  FlightRecorder b(16);
  RecordN(a, 4);
  RecordN(b, 4);
  // Several fields diverge at round 2; rng_hash outranks cost and counts.
  RoundDigest* d = b.MutableDigest(2);
  ASSERT_NE(d, nullptr);
  d->rng_hash ^= 2u;
  d->hourly_cost += 1.0;
  d->events_processed += 3;
  const auto report = DiffFirstDivergence(a, b);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->round, 2);
  EXPECT_EQ(report->field, "rng_hash");
}

TEST(ObsFlightRecorderTest, EarlierRoundWinsOverLaterDivergence) {
  FlightRecorder a(16);
  FlightRecorder b(16);
  RecordN(a, 8);
  RecordN(b, 8);
  b.MutableDigest(6)->rng_hash ^= 1u;
  b.MutableDigest(3)->hourly_cost += 0.5;
  const auto report = DiffFirstDivergence(a, b);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->round, 3);
  EXPECT_EQ(report->field, "hourly_cost");
}

TEST(ObsFlightRecorderTest, RoundCountMismatchIsReported) {
  FlightRecorder a(16);
  FlightRecorder b(16);
  RecordN(a, 6);
  RecordN(b, 4);
  const auto report = DiffFirstDivergence(a, b);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->field, "rounds_recorded");
  EXPECT_EQ(report->value_a, 6.0);
  EXPECT_EQ(report->value_b, 4.0);
}

TEST(ObsFlightRecorderTest, DiffComparesOnlyOverlappingWindows) {
  // Recorder `a` kept everything; `b`'s small window evicted early rounds.
  // Only the overlap may be compared — evicted rounds cannot testify.
  FlightRecorder a(64);
  FlightRecorder b(4);
  RecordN(a, 10);
  RecordN(b, 10);
  EXPECT_FALSE(DiffFirstDivergence(a, b).has_value());
  b.MutableDigest(8)->config_hash ^= 4u;
  const auto report = DiffFirstDivergence(a, b);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->round, 8);
  EXPECT_EQ(report->field, "config_hash");
}

TEST(ObsFlightRecorderTest, ClearResets) {
  FlightRecorder recorder(8);
  RecordN(recorder, 5);
  recorder.Clear();
  EXPECT_EQ(recorder.rounds_recorded(), 0);
  EXPECT_EQ(recorder.Get(0), nullptr);
}

}  // namespace
}  // namespace eva
