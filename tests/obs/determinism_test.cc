// Observability determinism, end to end on the real engine:
//
//  * the recorded trace serialises to byte-identical JSON across repeated
//    runs AND across scheduler pool sizes {1, 2, 8} (single simulator) and
//    federation driver pool sizes {1, 2, 8} (shared recorder, per-tenant
//    tracks) — spans are stamped in virtual time, so the trace inherits
//    the engine's bit-determinism;
//  * turning the whole subsystem on does not perturb the simulation
//    (metrics bit-identical to an observability-off run);
//  * per-round flight digests agree across pool sizes, and an injected
//    single-round perturbation is localised to exactly that round.
//
// (Suites are named Obs* so CI's sanitizer filter picks them up.)

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/experiment.h"
#include "src/sim/federation.h"
#include "src/workload/trace_gen.h"

namespace eva {
namespace {

Trace MakeTrace(int num_jobs) {
  AlibabaTraceOptions options;
  options.num_jobs = num_jobs;
  options.seed = 17;
  options.max_duration_hours = 48.0;
  return GenerateAlibabaTrace(options);
}

struct ObservedRun {
  SimulationMetrics metrics;
  std::string trace_json;
  std::string telemetry_json;
};

// One fully-observed Eva run: trace + flight digests + registry, with the
// scheduler's own pool at `max_parallelism`.
ObservedRun RunObserved(const Trace& trace, int max_parallelism,
                        FlightRecorder* flight) {
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();
  EvaOptions eva;
  eva.max_parallelism = max_parallelism;
  SchedulerBundle bundle = MakeScheduler(SchedulerKind::kEva, interference, eva);

  TraceRecorder recorder;
  TelemetryRegistry registry;
  SimulatorOptions options;
  options.observability.enabled = true;
  options.observability.trace = &recorder;
  options.observability.flight_recorder = flight;
  options.observability.registry = &registry;

  ObservedRun run;
  run.metrics = RunSimulation(trace, bundle.scheduler.get(), catalog, interference,
                              options);
  run.trace_json = recorder.ToChromeJson();
  run.telemetry_json = registry.ToJson();
  return run;
}

TEST(ObsDeterminismTest, TraceBytesIdenticalAcrossRunsAndPoolSizes) {
  const Trace trace = MakeTrace(200);
  FlightRecorder flight1, flight1b, flight2, flight8;
  const ObservedRun one = RunObserved(trace, 1, &flight1);
  const ObservedRun one_again = RunObserved(trace, 1, &flight1b);
  const ObservedRun two = RunObserved(trace, 2, &flight2);
  const ObservedRun eight = RunObserved(trace, 8, &flight8);

  ASSERT_FALSE(one.trace_json.empty());
  EXPECT_GT(one.trace_json.find("\"round\""), 0u);
  // Repeated run: bitwise identical artifacts.
  EXPECT_EQ(one.trace_json, one_again.trace_json);
  // Pool sizes {1, 2, 8}: the scheduler fans packing out, but only the
  // serial decision path emits, so the trace cannot see the pool.
  EXPECT_EQ(one.trace_json, two.trace_json);
  EXPECT_EQ(one.trace_json, eight.trace_json);
  EXPECT_EQ(one.telemetry_json, two.telemetry_json);
  EXPECT_EQ(one.telemetry_json, eight.telemetry_json);

  // Flight digests agree round for round across every pool size.
  EXPECT_FALSE(DiffFirstDivergence(flight1, flight1b).has_value());
  EXPECT_FALSE(DiffFirstDivergence(flight1, flight2).has_value());
  EXPECT_FALSE(DiffFirstDivergence(flight1, flight8).has_value());
  EXPECT_GT(flight1.rounds_recorded(), 0);
}

TEST(ObsDeterminismTest, ObservabilityIsPassive) {
  const Trace trace = MakeTrace(200);
  const InstanceCatalog catalog = InstanceCatalog::AwsDefault();
  const InterferenceModel interference = InterferenceModel::Measured();

  SchedulerBundle off_bundle = MakeScheduler(SchedulerKind::kEva, interference);
  const SimulationMetrics off = RunSimulation(trace, off_bundle.scheduler.get(),
                                              catalog, interference, SimulatorOptions{});
  FlightRecorder flight;
  const ObservedRun on = RunObserved(trace, 1, &flight);

  // The observed run replays the exact same trajectory: recording is
  // read-only with respect to the simulation.
  EXPECT_EQ(off.total_cost, on.metrics.total_cost);
  EXPECT_EQ(off.jobs_completed, on.metrics.jobs_completed);
  EXPECT_EQ(off.avg_jct_hours, on.metrics.avg_jct_hours);
  EXPECT_EQ(off.makespan_s, on.metrics.makespan_s);
  EXPECT_EQ(off.scheduling_rounds, on.metrics.scheduling_rounds);
  EXPECT_EQ(off.rounds_coalesced, on.metrics.rounds_coalesced);
  EXPECT_EQ(off.events_processed, on.metrics.events_processed);
  EXPECT_EQ(off.instances_launched, on.metrics.instances_launched);
  EXPECT_EQ(off.task_migrations, on.metrics.task_migrations);
}

TEST(ObsDeterminismTest, InjectedPerturbationIsLocalisedToItsRound) {
  const Trace trace = MakeTrace(120);
  FlightRecorder a, b;
  RunObserved(trace, 1, &a);
  RunObserved(trace, 1, &b);
  ASSERT_FALSE(DiffFirstDivergence(a, b).has_value());
  ASSERT_GT(b.rounds_recorded(), 4);

  // Simulate a stray RNG draw on one mid-run round; the diff must name
  // exactly that round, not the end-of-run drift a metrics comparison sees.
  const std::int64_t victim = b.rounds_recorded() / 2;
  ASSERT_NE(b.MutableDigest(victim), nullptr);
  b.MutableDigest(victim)->rng_hash ^= 1u;
  const auto report = DiffFirstDivergence(a, b);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->round, victim);
  EXPECT_EQ(report->field, "rng_hash");
}

TEST(ObsFederationDeterminismTest, TraceBytesIdenticalAcrossDriverPoolSizes) {
  AlibabaTraceOptions base_options;
  base_options.num_jobs = 2000;
  base_options.seed = 17;
  base_options.max_duration_hours = 48.0;
  const std::vector<FederationTenant> tenants =
      MakeTenantShards(GenerateAlibabaTrace(base_options), /*num_tenants=*/3,
                       /*jobs_per_tenant=*/25);

  const auto run = [&tenants](int num_threads, TraceRecorder& recorder,
                              std::vector<FlightRecorder>& flights,
                              TelemetryRegistry& registry) {
    FederationOptions options;
    options.provider.enabled = true;
    options.provider.family_capacity = {2, 4, 2};
    options.provider.spot.enabled = true;
    options.provider.spot.price_step_s = 900.0;
    options.provider.spot.spike_probability = 0.15;
    options.provider.spot.seed = 4242;
    options.simulator.seed = 5;
    options.simulator.observability.enabled = true;
    options.simulator.observability.trace = &recorder;
    options.simulator.observability.registry = &registry;
    options.flight_recorders = &flights;
    options.num_threads = num_threads;
    return RunFederation(tenants, options);
  };

  TraceRecorder rec1, rec2, rec8;
  std::vector<FlightRecorder> fl1, fl2, fl8;
  TelemetryRegistry reg1, reg2, reg8;
  run(1, rec1, fl1, reg1);
  run(2, rec2, fl2, reg2);
  run(8, rec8, fl8, reg8);

  // Tenant tracks fill concurrently in the parallel phase, yet the export
  // merge-sorts by virtual time, so the bytes cannot depend on the pool.
  const std::string json1 = rec1.ToChromeJson();
  EXPECT_FALSE(json1.empty());
  EXPECT_NE(json1.find("\"federation\""), std::string::npos);
  EXPECT_NE(json1.find("fed.barrier"), std::string::npos);
  EXPECT_EQ(json1, rec2.ToChromeJson());
  EXPECT_EQ(json1, rec8.ToChromeJson());

  // The driver published its stats through the registry for every run.
  EXPECT_GT(reg1.CounterValue("federation.barriers"), 0);
  EXPECT_EQ(reg1.ToJson(), reg2.ToJson());
  EXPECT_EQ(reg1.ToJson(), reg8.ToJson());

  // Per-tenant flight digests: no divergence anywhere in the window.
  ASSERT_EQ(fl1.size(), tenants.size());
  ASSERT_EQ(fl2.size(), tenants.size());
  ASSERT_EQ(fl8.size(), tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    EXPECT_GT(fl1[i].rounds_recorded(), 0) << "tenant " << i;
    const auto d2 = DiffFirstDivergence(fl1[i], fl2[i]);
    EXPECT_FALSE(d2.has_value())
        << "tenant " << i << ": " << d2->ToString();
    const auto d8 = DiffFirstDivergence(fl1[i], fl8[i]);
    EXPECT_FALSE(d8.has_value())
        << "tenant " << i << ": " << d8->ToString();
  }
}

}  // namespace
}  // namespace eva
