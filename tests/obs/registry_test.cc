// TelemetryRegistry unit tests: counters/gauges/histograms/series semantics
// and the sorted, deterministic JSON schema bench rows embed.

#include "src/obs/registry.h"

#include <gtest/gtest.h>

#include <string>

namespace eva {
namespace {

TEST(ObsRegistryTest, CountersAccumulateAndRead) {
  TelemetryRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.Inc("scheduler.packs_full");
  registry.Inc("scheduler.packs_full", 4);
  registry.SetCounter("faults.tasks_lost", 7);
  EXPECT_EQ(registry.CounterValue("scheduler.packs_full"), 5);
  EXPECT_EQ(registry.CounterValue("faults.tasks_lost"), 7);
  EXPECT_EQ(registry.CounterValue("missing"), 0);
  EXPECT_FALSE(registry.empty());
}

TEST(ObsRegistryTest, GaugesOverwrite) {
  TelemetryRegistry registry;
  registry.SetGauge("sim.hourly_cost", 12.5);
  registry.SetGauge("sim.hourly_cost", 9.75);
  EXPECT_EQ(registry.GaugeValue("sim.hourly_cost"), 9.75);
  EXPECT_EQ(registry.GaugeValue("missing"), 0.0);
}

TEST(ObsRegistryTest, HistogramLog2Buckets) {
  TelemetryRegistry registry;
  TelemetryRegistry::Histogram& hist = registry.Hist("round.events_delta");
  hist.Record(0);   // bucket 0: v < 1
  hist.Record(1);   // bucket 1: [1, 2)
  hist.Record(2);   // bucket 2: [2, 4)
  hist.Record(3);   // bucket 2
  hist.Record(900); // bucket 10: [512, 1024)
  EXPECT_EQ(hist.count(), 5);
  EXPECT_EQ(hist.sum(), 906);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 900);
  EXPECT_EQ(hist.bucket(0), 1);
  EXPECT_EQ(hist.bucket(1), 1);
  EXPECT_EQ(hist.bucket(2), 2);
  EXPECT_EQ(hist.bucket(10), 1);
  EXPECT_EQ(hist.bucket(3), 0);
}

TEST(ObsRegistryTest, TimeSeriesBucketsByVirtualTime) {
  TelemetryRegistry registry;
  TelemetryRegistry::TimeSeries& series = registry.Series("ts.cost", 3600.0);
  series.Sample(0.0, 1.0);
  series.Sample(1800.0, 3.0);   // Same hour bucket.
  series.Sample(3600.0, 10.0);  // Next bucket.
  series.Sample(7205.0, 2.0);   // Third bucket.
  EXPECT_EQ(series.num_buckets(), 3);
  EXPECT_EQ(series.bucket_width_s(), 3600.0);
}

TEST(ObsRegistryTest, JsonIsSortedStableAndGrouped) {
  TelemetryRegistry registry;
  registry.Inc("b.second", 2);
  registry.Inc("a.first", 1);
  registry.SetGauge("z.gauge", 0.5);
  registry.Hist("h").Record(3);
  registry.Series("s", 60.0).Sample(90.0, 4.0);

  const std::string json = registry.ToJson();
  // Counters sort by name regardless of insertion order.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  // Deterministic: serialising twice gives the same bytes.
  EXPECT_EQ(json, registry.ToJson());

  // An equal registry built in a different order serialises identically.
  TelemetryRegistry other;
  other.Series("s", 60.0).Sample(90.0, 4.0);
  other.Hist("h").Record(3);
  other.SetGauge("z.gauge", 0.5);
  other.Inc("a.first", 1);
  other.Inc("b.second", 2);
  EXPECT_EQ(json, other.ToJson());
}

TEST(ObsRegistryTest, EmptyGroupsAreOmitted) {
  TelemetryRegistry registry;
  registry.Inc("only.counter");
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_EQ(json.find("\"gauges\""), std::string::npos);
  EXPECT_EQ(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(json.find("\"series\""), std::string::npos);
}

TEST(ObsRegistryTest, ClearResets) {
  TelemetryRegistry registry;
  registry.Inc("c");
  registry.SetGauge("g", 1.0);
  registry.Clear();
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.CounterValue("c"), 0);
}

}  // namespace
}  // namespace eva
