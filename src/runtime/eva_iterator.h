// EvaIterator — the lightweight throughput-reporting API of §5.
//
// In the real deployment users wrap their training/data iterator in
// EvaIterator; each worker then answers the master's per-round query
// "what was your throughput over the last window?". This module provides
// that wrapper plus the worker-side aggregation that turns per-task
// iterator readings into the JobThroughputObservation records the
// scheduler consumes. Time is injected (SimTime) so the same code runs
// against wall clocks in deployment and virtual clocks in tests.

#ifndef SRC_RUNTIME_EVA_ITERATOR_H_
#define SRC_RUNTIME_EVA_ITERATOR_H_

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/common/units.h"
#include "src/sched/scheduler.h"

namespace eva {

// Tracks iteration completion times and reports windowed throughput.
class EvaIterator {
 public:
  // `max_history_s` bounds memory: iterations older than this are pruned.
  explicit EvaIterator(SimTime max_history_s = 3600.0);

  // Call once per completed iteration (training step, batch, ...).
  void RecordIteration(SimTime now);

  // Iterations per second over the trailing window [now - window_s, now].
  // Returns 0 before any iteration completes.
  double IterationsPerSecond(SimTime now, SimTime window_s) const;

  // Declares the standalone (no co-location) iteration rate, against which
  // NormalizedThroughput is computed. Users who profiled offline set it
  // explicitly; otherwise the first window observed while the master knows
  // the task runs alone is used (the Profiler path of §3).
  void SetBaseline(double iterations_per_second);
  std::optional<double> baseline() const { return baseline_; }

  // Throughput relative to the standalone baseline, clamped to (0, inf);
  // nullopt until a baseline is known.
  std::optional<double> NormalizedThroughput(SimTime now, SimTime window_s) const;

  std::size_t NumRecorded() const { return iterations_.size(); }

 private:
  void Prune(SimTime now);

  SimTime max_history_s_;
  std::deque<SimTime> iterations_;
  std::optional<double> baseline_;
};

// Worker-side aggregation: owns one EvaIterator per task and assembles the
// per-job observations the master forwards to Scheduler::ObserveThroughput.
class WorkerReporter {
 public:
  explicit WorkerReporter(SimTime window_s = 10.0 * kSecondsPerMinute);

  // Registers a task (idempotent). `workload` keys the co-location table.
  void RegisterTask(TaskId task, JobId job, WorkloadId workload);
  void UnregisterTask(TaskId task);

  // Iteration callback routed from the task's EvaIterator hook.
  void RecordIteration(TaskId task, SimTime now);

  // Declares a task's standalone rate (profiler or first-solo window).
  void SetBaseline(TaskId task, double iterations_per_second);

  // Snapshot of co-residents per task, provided by the executor each round.
  void SetColocation(TaskId task, std::vector<WorkloadId> colocated);

  // Builds one observation per job that has at least one task with a known
  // baseline and a measurable window. A job's normalized throughput is the
  // minimum over its reporting tasks (§4.4's lockstep assumption).
  std::vector<JobThroughputObservation> CollectObservations(SimTime now) const;

  const EvaIterator* iterator(TaskId task) const;

 private:
  struct TaskEntry {
    JobId job = kInvalidJobId;
    WorkloadId workload = kInvalidWorkloadId;
    EvaIterator iterator;
    std::vector<WorkloadId> colocated;
  };

  SimTime window_s_;
  std::map<TaskId, TaskEntry> tasks_;
};

}  // namespace eva

#endif  // SRC_RUNTIME_EVA_ITERATOR_H_
