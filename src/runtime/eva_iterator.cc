#include "src/runtime/eva_iterator.h"

#include <algorithm>

namespace eva {

EvaIterator::EvaIterator(SimTime max_history_s) : max_history_s_(max_history_s) {}

void EvaIterator::RecordIteration(SimTime now) {
  iterations_.push_back(now);
  Prune(now);
}

void EvaIterator::Prune(SimTime now) {
  while (!iterations_.empty() && iterations_.front() < now - max_history_s_) {
    iterations_.pop_front();
  }
}

double EvaIterator::IterationsPerSecond(SimTime now, SimTime window_s) const {
  if (window_s <= 0.0 || iterations_.empty()) {
    return 0.0;
  }
  const SimTime start = now - window_s;
  const auto first =
      std::lower_bound(iterations_.begin(), iterations_.end(), start);
  const auto count = static_cast<double>(std::distance(first, iterations_.end()));
  return count / window_s;
}

void EvaIterator::SetBaseline(double iterations_per_second) {
  if (iterations_per_second > 0.0) {
    baseline_ = iterations_per_second;
  }
}

std::optional<double> EvaIterator::NormalizedThroughput(SimTime now, SimTime window_s) const {
  if (!baseline_.has_value() || *baseline_ <= 0.0) {
    return std::nullopt;
  }
  const double rate = IterationsPerSecond(now, window_s);
  if (rate <= 0.0) {
    return std::nullopt;
  }
  return rate / *baseline_;
}

WorkerReporter::WorkerReporter(SimTime window_s) : window_s_(window_s) {}

void WorkerReporter::RegisterTask(TaskId task, JobId job, WorkloadId workload) {
  TaskEntry& entry = tasks_[task];  // Idempotent: keeps existing history.
  entry.job = job;
  entry.workload = workload;
}

void WorkerReporter::UnregisterTask(TaskId task) { tasks_.erase(task); }

void WorkerReporter::RecordIteration(TaskId task, SimTime now) {
  const auto it = tasks_.find(task);
  if (it != tasks_.end()) {
    it->second.iterator.RecordIteration(now);
  }
}

void WorkerReporter::SetBaseline(TaskId task, double iterations_per_second) {
  const auto it = tasks_.find(task);
  if (it != tasks_.end()) {
    it->second.iterator.SetBaseline(iterations_per_second);
  }
}

void WorkerReporter::SetColocation(TaskId task, std::vector<WorkloadId> colocated) {
  const auto it = tasks_.find(task);
  if (it != tasks_.end()) {
    it->second.colocated = std::move(colocated);
  }
}

std::vector<JobThroughputObservation> WorkerReporter::CollectObservations(SimTime now) const {
  std::map<JobId, JobThroughputObservation> by_job;
  for (const auto& [task_id, entry] : tasks_) {
    const std::optional<double> normalized =
        entry.iterator.NormalizedThroughput(now, window_s_);
    if (!normalized.has_value()) {
      continue;
    }
    JobThroughputObservation& observation = by_job[entry.job];
    if (observation.tasks.empty()) {
      observation.job = entry.job;
      observation.normalized_throughput = *normalized;
    } else {
      observation.normalized_throughput =
          std::min(observation.normalized_throughput, *normalized);
    }
    TaskPlacementObservation placement;
    placement.task = task_id;
    placement.workload = entry.workload;
    placement.colocated = entry.colocated;
    observation.tasks.push_back(std::move(placement));
  }
  std::vector<JobThroughputObservation> observations;
  observations.reserve(by_job.size());
  for (auto& [job_id, observation] : by_job) {
    (void)job_id;
    observations.push_back(std::move(observation));
  }
  return observations;
}

const EvaIterator* WorkerReporter::iterator(TaskId task) const {
  const auto it = tasks_.find(task);
  return it == tasks_.end() ? nullptr : &it->second.iterator;
}

}  // namespace eva
