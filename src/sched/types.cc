#include "src/sched/types.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/arena.h"

namespace eva {

namespace {

// Ids past this bound (or negative) are indexed through the hash fallbacks;
// the flat arrays stay proportional to the real id universe.
constexpr std::int64_t kMaxFlatIndexId = std::int64_t{1} << 22;

bool FlatEligible(std::int64_t id) { return id >= 0 && id < kMaxFlatIndexId; }

}  // namespace

void SchedulingContext::Finalize() {
  // O(1) expiry of the previous round's entries (epoch bump; the column
  // handles the 2^32 wrap internally).
  task_flat_.Clear();
  instance_flat_.Clear();
  job_size_flat_.Clear();
  task_index_.clear();
  instance_index_.clear();
  job_size_.clear();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (FlatEligible(tasks[i].id)) {
      task_flat_.Set(static_cast<std::size_t>(tasks[i].id),
                     static_cast<std::uint32_t>(i));
    } else {
      task_index_[tasks[i].id] = i;
    }
    const JobId job = tasks[i].job;
    if (FlatEligible(job)) {
      if (std::uint32_t* count = job_size_flat_.Find(static_cast<std::size_t>(job))) {
        ++*count;
      } else {
        job_size_flat_.Set(static_cast<std::size_t>(job), 1);
      }
    } else {
      ++job_size_[job];
    }
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (FlatEligible(instances[i].id)) {
      instance_flat_.Set(static_cast<std::size_t>(instances[i].id),
                         static_cast<std::uint32_t>(i));
    } else {
      instance_index_[instances[i].id] = i;
    }
  }
}

const TaskInfo* SchedulingContext::FindTask(TaskId id) const {
  if (FlatEligible(id)) {
    const std::uint32_t* pos = task_flat_.Find(static_cast<std::size_t>(id));
    return pos != nullptr ? &tasks[*pos] : nullptr;
  }
  const auto it = task_index_.find(id);
  return it == task_index_.end() ? nullptr : &tasks[it->second];
}

const InstanceInfo* SchedulingContext::FindInstance(InstanceId id) const {
  if (FlatEligible(id)) {
    const std::uint32_t* pos = instance_flat_.Find(static_cast<std::size_t>(id));
    return pos != nullptr ? &instances[*pos] : nullptr;
  }
  const auto it = instance_index_.find(id);
  return it == instance_index_.end() ? nullptr : &instances[it->second];
}

std::vector<TaskId> SchedulingContext::JobTasks(JobId job) const {
  std::vector<TaskId> ids;
  for (const TaskInfo& task : tasks) {
    if (task.job == job) {
      ids.push_back(task.id);
    }
  }
  return ids;
}

int SchedulingContext::JobSize(JobId job) const {
  if (FlatEligible(job)) {
    const std::uint32_t* count = job_size_flat_.Find(static_cast<std::size_t>(job));
    return count != nullptr ? static_cast<int>(*count) : 0;
  }
  const auto it = job_size_.find(job);
  return it == job_size_.end() ? 0 : it->second;
}

Money ClusterConfig::HourlyCost(const InstanceCatalog& catalog) const {
  Money total = 0.0;
  for (const ConfigInstance& instance : instances) {
    total += catalog.Get(instance.type_index).cost_per_hour;
  }
  return total;
}

std::optional<std::string> ClusterConfig::Validate(const SchedulingContext& context) const {
  // Flat scratch instead of a node-per-insert set: Validate runs every
  // round, and the duplicate probe must not allocate on the happy path.
  // Ids are collected during the scan and duplicate-checked with one
  // sort + adjacent_find at the end — O(n log n) with no mid-vector
  // insertion, which matters at the 50k/100k-job sweep scale. Leased per
  // (thread, depth) via the sanctioned scratch mechanism (common/arena.h).
  ScratchLease<std::vector<TaskId>> lease;
  std::vector<TaskId>& seen = *lease;
  seen.clear();
  for (const ConfigInstance& instance : instances) {
    if (instance.type_index < 0 || instance.type_index >= context.catalog->NumTypes()) {
      return "invalid instance type index " + std::to_string(instance.type_index);
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    ResourceVector used;
    for (TaskId task_id : instance.tasks) {
      seen.push_back(task_id);
      const TaskInfo* task = context.FindTask(task_id);
      if (task == nullptr) {
        return "unknown task " + std::to_string(task_id);
      }
      used += task->DemandFor(type.family);
    }
    if (!used.FitsWithin(type.capacity)) {
      return "capacity exceeded on " + type.name + ": " + used.ToString() + " > " +
             type.capacity.ToString();
    }
  }
  std::sort(seen.begin(), seen.end());
  const auto dup = std::adjacent_find(seen.begin(), seen.end());
  if (dup != seen.end()) {
    return "task " + std::to_string(*dup) + " assigned to multiple instances";
  }
  return std::nullopt;
}

}  // namespace eva
