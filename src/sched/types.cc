#include "src/sched/types.h"

#include <set>
#include <string>

namespace eva {

void SchedulingContext::Finalize() {
  task_index_.clear();
  instance_index_.clear();
  job_tasks_.clear();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    task_index_[tasks[i].id] = i;
    job_tasks_[tasks[i].job].push_back(tasks[i].id);
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    instance_index_[instances[i].id] = i;
  }
}

const TaskInfo* SchedulingContext::FindTask(TaskId id) const {
  const auto it = task_index_.find(id);
  return it == task_index_.end() ? nullptr : &tasks[it->second];
}

const InstanceInfo* SchedulingContext::FindInstance(InstanceId id) const {
  const auto it = instance_index_.find(id);
  return it == instance_index_.end() ? nullptr : &instances[it->second];
}

const std::vector<TaskId>& SchedulingContext::JobTasks(JobId job) const {
  static const std::vector<TaskId> kEmpty;
  const auto it = job_tasks_.find(job);
  return it == job_tasks_.end() ? kEmpty : it->second;
}

int SchedulingContext::JobSize(JobId job) const {
  return static_cast<int>(JobTasks(job).size());
}

Money ClusterConfig::HourlyCost(const InstanceCatalog& catalog) const {
  Money total = 0.0;
  for (const ConfigInstance& instance : instances) {
    total += catalog.Get(instance.type_index).cost_per_hour;
  }
  return total;
}

std::optional<std::string> ClusterConfig::Validate(const SchedulingContext& context) const {
  std::set<TaskId> seen;
  for (const ConfigInstance& instance : instances) {
    if (instance.type_index < 0 || instance.type_index >= context.catalog->NumTypes()) {
      return "invalid instance type index " + std::to_string(instance.type_index);
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    ResourceVector used;
    for (TaskId task_id : instance.tasks) {
      if (!seen.insert(task_id).second) {
        return "task " + std::to_string(task_id) + " assigned to multiple instances";
      }
      const TaskInfo* task = context.FindTask(task_id);
      if (task == nullptr) {
        return "unknown task " + std::to_string(task_id);
      }
      used += task->DemandFor(type.family);
    }
    if (!used.FitsWithin(type.capacity)) {
      return "capacity exceeded on " + type.name + ": " + used.ToString() + " > " +
             type.capacity.ToString();
    }
  }
  return std::nullopt;
}

}  // namespace eva
