#include "src/sched/types.h"

#include <algorithm>
#include <string>
#include <vector>

namespace eva {

namespace {

// Ids past this bound (or negative) are indexed through the hash fallbacks;
// the flat arrays stay proportional to the real id universe.
constexpr std::int64_t kMaxFlatIndexId = std::int64_t{1} << 22;

bool FlatEligible(std::int64_t id) { return id >= 0 && id < kMaxFlatIndexId; }

}  // namespace

void SchedulingContext::Finalize() {
  ++index_epoch_;
  if (index_epoch_ == 0) {
    // Epoch wrap (one in 2^32 Finalizes): stamps from 2^32 rounds ago would
    // read as current, so reset them all once.
    task_flat_.assign(task_flat_.size(), FlatSlot{});
    instance_flat_.assign(instance_flat_.size(), FlatSlot{});
    job_size_flat_.assign(job_size_flat_.size(), FlatSlot{});
    index_epoch_ = 1;
  }
  task_index_.clear();
  instance_index_.clear();
  job_size_.clear();
  const auto grow = [](std::vector<FlatSlot>& flat, std::int64_t id) -> FlatSlot& {
    const auto needed = static_cast<std::size_t>(id) + 1;
    if (needed > flat.size()) {
      flat.resize(std::max(needed, flat.size() * 2));
    }
    return flat[static_cast<std::size_t>(id)];
  };
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (FlatEligible(tasks[i].id)) {
      grow(task_flat_, tasks[i].id) = {static_cast<std::uint32_t>(i), index_epoch_};
    } else {
      task_index_[tasks[i].id] = i;
    }
    const JobId job = tasks[i].job;
    if (FlatEligible(job)) {
      FlatSlot& slot = grow(job_size_flat_, job);
      if (slot.epoch == index_epoch_) {
        ++slot.value;
      } else {
        slot = {1, index_epoch_};
      }
    } else {
      ++job_size_[job];
    }
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (FlatEligible(instances[i].id)) {
      grow(instance_flat_, instances[i].id) = {static_cast<std::uint32_t>(i),
                                               index_epoch_};
    } else {
      instance_index_[instances[i].id] = i;
    }
  }
}

const TaskInfo* SchedulingContext::FindTask(TaskId id) const {
  if (FlatEligible(id)) {
    if (static_cast<std::size_t>(id) >= task_flat_.size()) {
      return nullptr;
    }
    const FlatSlot& slot = task_flat_[static_cast<std::size_t>(id)];
    return slot.epoch == index_epoch_ ? &tasks[slot.value] : nullptr;
  }
  const auto it = task_index_.find(id);
  return it == task_index_.end() ? nullptr : &tasks[it->second];
}

const InstanceInfo* SchedulingContext::FindInstance(InstanceId id) const {
  if (FlatEligible(id)) {
    if (static_cast<std::size_t>(id) >= instance_flat_.size()) {
      return nullptr;
    }
    const FlatSlot& slot = instance_flat_[static_cast<std::size_t>(id)];
    return slot.epoch == index_epoch_ ? &instances[slot.value] : nullptr;
  }
  const auto it = instance_index_.find(id);
  return it == instance_index_.end() ? nullptr : &instances[it->second];
}

std::vector<TaskId> SchedulingContext::JobTasks(JobId job) const {
  std::vector<TaskId> ids;
  for (const TaskInfo& task : tasks) {
    if (task.job == job) {
      ids.push_back(task.id);
    }
  }
  return ids;
}

int SchedulingContext::JobSize(JobId job) const {
  if (FlatEligible(job)) {
    if (static_cast<std::size_t>(job) >= job_size_flat_.size()) {
      return 0;
    }
    const FlatSlot& slot = job_size_flat_[static_cast<std::size_t>(job)];
    return slot.epoch == index_epoch_ ? static_cast<int>(slot.value) : 0;
  }
  const auto it = job_size_.find(job);
  return it == job_size_.end() ? 0 : it->second;
}

Money ClusterConfig::HourlyCost(const InstanceCatalog& catalog) const {
  Money total = 0.0;
  for (const ConfigInstance& instance : instances) {
    total += catalog.Get(instance.type_index).cost_per_hour;
  }
  return total;
}

std::optional<std::string> ClusterConfig::Validate(const SchedulingContext& context) const {
  // Flat scratch instead of a node-per-insert set: Validate runs every
  // round, and the duplicate probe must not allocate on the happy path.
  // Ids are collected during the scan and duplicate-checked with one
  // sort + adjacent_find at the end — O(n log n) with no mid-vector
  // insertion, which matters at the 50k/100k-job sweep scale.
  thread_local std::vector<TaskId> seen;
  seen.clear();
  for (const ConfigInstance& instance : instances) {
    if (instance.type_index < 0 || instance.type_index >= context.catalog->NumTypes()) {
      return "invalid instance type index " + std::to_string(instance.type_index);
    }
    const InstanceType& type = context.catalog->Get(instance.type_index);
    ResourceVector used;
    for (TaskId task_id : instance.tasks) {
      seen.push_back(task_id);
      const TaskInfo* task = context.FindTask(task_id);
      if (task == nullptr) {
        return "unknown task " + std::to_string(task_id);
      }
      used += task->DemandFor(type.family);
    }
    if (!used.FitsWithin(type.capacity)) {
      return "capacity exceeded on " + type.name + ": " + used.ToString() + " > " +
             type.capacity.ToString();
    }
  }
  std::sort(seen.begin(), seen.end());
  const auto dup = std::adjacent_find(seen.begin(), seen.end());
  if (dup != seen.end()) {
    return "task " + std::to_string(*dup) + " assigned to multiple instances";
  }
  return std::nullopt;
}

}  // namespace eva
