#include "src/sched/throughput_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/hash.h"

namespace eva {

std::size_t ThroughputTable::MultisetKeyHash::operator()(const MultisetKey& key) const {
  std::size_t seed = HashCombine(0x7ab1e5, static_cast<std::size_t>(static_cast<std::uint32_t>(key.w)));
  for (WorkloadId partner : key.partners) {
    seed = HashCombine(seed, static_cast<std::size_t>(static_cast<std::uint32_t>(partner)));
  }
  return seed;
}

ThroughputTable::ThroughputTable(double default_pairwise)
    : default_pairwise_(default_pairwise) {}

const double* ThroughputTable::FindPair(WorkloadId w, WorkloadId partner) const {
  if (InGrid(w, partner)) {
    const double& cell =
        pair_grid_[static_cast<std::size_t>(w) * static_cast<std::size_t>(pair_dim_) +
                   static_cast<std::size_t>(partner)];
    return std::isnan(cell) ? nullptr : &cell;
  }
  if (w >= 0 && partner >= 0 && w < kMaxDenseId && partner < kMaxDenseId) {
    return nullptr;  // Dense range but beyond the grown grid: never recorded.
  }
  const auto it = pair_entries_.find(PairKey(w, partner));
  return it == pair_entries_.end() ? nullptr : &it->second;
}

double* ThroughputTable::GridCellFor(WorkloadId w, WorkloadId partner) {
  if (w < 0 || partner < 0 || w >= kMaxDenseId || partner >= kMaxDenseId) {
    return nullptr;
  }
  const WorkloadId need = std::max(w, partner) + 1;
  if (need > pair_dim_) {
    std::vector<double> grown(static_cast<std::size_t>(need) * static_cast<std::size_t>(need),
                              std::numeric_limits<double>::quiet_NaN());
    for (WorkloadId row = 0; row < pair_dim_; ++row) {
      for (WorkloadId col = 0; col < pair_dim_; ++col) {
        grown[static_cast<std::size_t>(row) * static_cast<std::size_t>(need) +
              static_cast<std::size_t>(col)] =
            pair_grid_[static_cast<std::size_t>(row) * static_cast<std::size_t>(pair_dim_) +
                       static_cast<std::size_t>(col)];
      }
    }
    pair_grid_ = std::move(grown);
    pair_dim_ = need;
  }
  return &pair_grid_[static_cast<std::size_t>(w) * static_cast<std::size_t>(pair_dim_) +
                     static_cast<std::size_t>(partner)];
}

double ThroughputTable::Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const {
  if (partners.empty()) {
    return 1.0;
  }
  if (partners.size() == 1) {
    const double* pair = FindPair(w, partners.front());
    return pair != nullptr ? *pair : default_pairwise_;
  }
  if (MayHaveExact(w)) {
    // Thread-local scratch: exact-entry probes run on every multi-partner
    // estimate, so the sorted key must not allocate per call.
    thread_local MultisetKey key;
    key.w = w;
    key.partners.assign(partners.begin(), partners.end());
    std::sort(key.partners.begin(), key.partners.end());
    const auto exact = exact_entries_.find(key);
    if (exact != exact_entries_.end()) {
      return exact->second;
    }
  }
  // §4.3: estimate as the product of pairwise co-location throughputs,
  // initializing unobserved pairs with the default t. The product folds in
  // the caller's partner order (multiplication is not exactly associative).
  double product = 1.0;
  for (WorkloadId partner : partners) {
    const double* pair = FindPair(w, partner);
    product *= pair != nullptr ? *pair : default_pairwise_;
  }
  return product;
}

std::optional<double> ThroughputTable::Lookup(WorkloadId w,
                                              const std::vector<WorkloadId>& partners) const {
  if (partners.size() == 1) {
    const double* pair = FindPair(w, partners.front());
    return pair != nullptr ? std::optional<double>(*pair) : std::nullopt;
  }
  if (!MayHaveExact(w)) {
    return std::nullopt;
  }
  thread_local MultisetKey key;
  key.w = w;
  key.partners.assign(partners.begin(), partners.end());
  std::sort(key.partners.begin(), key.partners.end());
  const auto it = exact_entries_.find(key);
  if (it == exact_entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool ThroughputTable::Record(WorkloadId w, std::vector<WorkloadId> partners,
                             double throughput) {
  bool changed;
  if (partners.size() == 1) {
    if (double* cell = GridCellFor(w, partners.front())) {
      changed = std::isnan(*cell) ? (++pair_grid_count_, true) : *cell != throughput;
      *cell = throughput;
    } else {
      auto [it, inserted] = pair_entries_.try_emplace(PairKey(w, partners.front()), throughput);
      changed = inserted || it->second != throughput;
      it->second = throughput;
    }
  } else {
    MultisetKey key;
    key.w = w;
    key.partners = std::move(partners);
    std::sort(key.partners.begin(), key.partners.end());
    auto [it, inserted] = exact_entries_.try_emplace(std::move(key), throughput);
    changed = inserted || it->second != throughput;
    it->second = throughput;
    if (inserted && w >= 0) {
      const auto index = static_cast<std::size_t>(w);
      if (index >= exact_rows_.size()) {
        exact_rows_.resize(index + 1, 0);
      }
      ++exact_rows_[index];
    }
  }
  if (!changed) {
    return false;  // Identical re-observation: estimates unchanged.
  }
  ++version_;
  if (w >= 0) {
    const auto index = static_cast<std::size_t>(w);
    if (index >= row_versions_.size()) {
      row_versions_.resize(index + 1, 0);
    }
    ++row_versions_[index];
  }
  return true;
}

double OracleThroughput::Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const {
  return model_->Throughput(w, partners);
}

}  // namespace eva
