#include "src/sched/throughput_estimator.h"

#include <algorithm>

namespace eva {

ThroughputTable::ThroughputTable(double default_pairwise)
    : default_pairwise_(default_pairwise) {}

ThroughputTable::Key ThroughputTable::MakeKey(WorkloadId w, std::vector<WorkloadId> partners) {
  std::sort(partners.begin(), partners.end());
  return {w, std::move(partners)};
}

double ThroughputTable::Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const {
  if (partners.empty()) {
    return 1.0;
  }
  const auto exact = entries_.find(MakeKey(w, partners));
  if (exact != entries_.end()) {
    return exact->second;
  }
  // §4.3: estimate as the product of pairwise co-location throughputs,
  // initializing unobserved pairs with the default t.
  double product = 1.0;
  for (WorkloadId partner : partners) {
    const auto pair = entries_.find(MakeKey(w, {partner}));
    product *= pair != entries_.end() ? pair->second : default_pairwise_;
  }
  return product;
}

std::optional<double> ThroughputTable::Lookup(WorkloadId w,
                                              std::vector<WorkloadId> partners) const {
  const auto it = entries_.find(MakeKey(w, std::move(partners)));
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void ThroughputTable::Record(WorkloadId w, std::vector<WorkloadId> partners, double throughput) {
  entries_[MakeKey(w, std::move(partners))] = throughput;
}

double OracleThroughput::Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const {
  return model_->Throughput(w, partners);
}

}  // namespace eva
