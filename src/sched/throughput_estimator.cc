#include "src/sched/throughput_estimator.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"

namespace eva {

std::size_t ThroughputTable::MultisetKeyHash::operator()(const MultisetKey& key) const {
  std::size_t seed = HashCombine(0x7ab1e5, static_cast<std::size_t>(static_cast<std::uint32_t>(key.w)));
  for (WorkloadId partner : key.partners) {
    seed = HashCombine(seed, static_cast<std::size_t>(static_cast<std::uint32_t>(partner)));
  }
  return seed;
}

ThroughputTable::ThroughputTable(double default_pairwise)
    : default_pairwise_(default_pairwise) {}

const double* ThroughputTable::FindPair(WorkloadId w, WorkloadId partner) const {
  const auto it = pair_entries_.find(PairKey(w, partner));
  return it == pair_entries_.end() ? nullptr : &it->second;
}

double ThroughputTable::Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const {
  if (partners.empty()) {
    return 1.0;
  }
  if (partners.size() == 1) {
    const double* pair = FindPair(w, partners.front());
    return pair != nullptr ? *pair : default_pairwise_;
  }
  MultisetKey key;
  key.w = w;
  key.partners = partners;
  std::sort(key.partners.begin(), key.partners.end());
  const auto exact = exact_entries_.find(key);
  if (exact != exact_entries_.end()) {
    return exact->second;
  }
  // §4.3: estimate as the product of pairwise co-location throughputs,
  // initializing unobserved pairs with the default t. The product folds in
  // the caller's partner order (multiplication is not exactly associative).
  double product = 1.0;
  for (WorkloadId partner : partners) {
    const double* pair = FindPair(w, partner);
    product *= pair != nullptr ? *pair : default_pairwise_;
  }
  return product;
}

std::optional<double> ThroughputTable::Lookup(WorkloadId w,
                                              const std::vector<WorkloadId>& partners) const {
  if (partners.size() == 1) {
    const double* pair = FindPair(w, partners.front());
    return pair != nullptr ? std::optional<double>(*pair) : std::nullopt;
  }
  MultisetKey key;
  key.w = w;
  key.partners = partners;
  std::sort(key.partners.begin(), key.partners.end());
  const auto it = exact_entries_.find(key);
  if (it == exact_entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool ThroughputTable::Record(WorkloadId w, std::vector<WorkloadId> partners,
                             double throughput) {
  bool changed;
  if (partners.size() == 1) {
    auto [it, inserted] = pair_entries_.try_emplace(PairKey(w, partners.front()), throughput);
    changed = inserted || it->second != throughput;
    it->second = throughput;
  } else {
    MultisetKey key;
    key.w = w;
    key.partners = std::move(partners);
    std::sort(key.partners.begin(), key.partners.end());
    auto [it, inserted] = exact_entries_.try_emplace(std::move(key), throughput);
    changed = inserted || it->second != throughput;
    it->second = throughput;
  }
  if (!changed) {
    return false;  // Identical re-observation: estimates unchanged.
  }
  ++version_;
  if (w >= 0) {
    const auto index = static_cast<std::size_t>(w);
    if (index >= row_versions_.size()) {
      row_versions_.resize(index + 1, 0);
    }
    ++row_versions_[index];
  }
  return true;
}

double OracleThroughput::Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const {
  return model_->Throughput(w, partners);
}

}  // namespace eva
