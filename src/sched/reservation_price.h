// Reservation price (RP) and throughput-normalized reservation price (TNRP)
// calculators (§4.2-§4.4).
//
// RP(tau) is the hourly cost of the cheapest instance type capable of
// hosting tau alone — the maximum hourly price worth paying for the task.
// TNRP scales RP by the (estimated) normalized throughput the task would
// achieve under a given co-location, so that a task-to-instance assignment
// is cost-efficient exactly when TNRP(T) >= instance cost. For multi-task
// jobs, the degradation a placement inflicts on the whole data-parallel job
// is charged to that placement:
//   TNRP(tau, T) = RP(tau) - sum_{tau' in job(tau)} (1 - tput_{tau,T}) * RP(tau').

#ifndef SRC_SCHED_RESERVATION_PRICE_H_
#define SRC_SCHED_RESERVATION_PRICE_H_

#include <unordered_map>
#include <vector>

#include "src/sched/throughput_estimator.h"
#include "src/sched/types.h"

namespace eva {

class TnrpCalculator {
 public:
  struct Options {
    // When false, throughput is treated as 1.0 everywhere — this is the
    // Eva-RP ablation of Figure 4.
    bool interference_aware = true;

    // When false, tasks of multi-task jobs are treated as independent —
    // the Eva-Single ablation of Table 6 / Figure 7.
    bool multi_task_aware = true;
  };

  TnrpCalculator(const SchedulingContext& context, Options options);

  // RP(tau): hourly cost of the cheapest fitting type. With heterogeneous
  // per-family speedups (§4.2's extension) this becomes the minimum cost of
  // executing one unit of work: min_k C_k / speedup(family(k)) over fitting
  // types. Cached per task. Tasks that fit no instance type have RP 0 (the
  // simulator rejects such jobs at admission, so this is defensive).
  Money ReservationPrice(const TaskInfo& task) const;

  // TNRP of one task co-located with `partners` (the other tasks on the
  // same hypothetical instance, excluding the task itself). May be negative
  // for multi-task jobs under severe interference. When `family` is given,
  // the task's relative speed on that family scales its value (§4.2).
  Money TaskTnrp(const TaskInfo& task, const std::vector<const TaskInfo*>& partners,
                 std::optional<InstanceFamily> family = std::nullopt) const;

  // TNRP of a set of tasks placed together: sum of per-task TNRP where each
  // task's partners are the other members of the set.
  Money SetTnrp(const std::vector<const TaskInfo*>& tasks,
                std::optional<InstanceFamily> family = std::nullopt) const;

  // Plain reservation-price sum of a set (used by Eva-RP and the
  // cost-efficiency walk-through of §4.2).
  Money SetRp(const std::vector<const TaskInfo*>& tasks) const;

  const Options& options() const { return options_; }

 private:
  const SchedulingContext& context_;
  Options options_;
  mutable std::unordered_map<TaskId, Money> rp_cache_;
};

}  // namespace eva

#endif  // SRC_SCHED_RESERVATION_PRICE_H_
