// Reservation price (RP) and throughput-normalized reservation price (TNRP)
// calculators (§4.2-§4.4).
//
// RP(tau) is the hourly cost of the cheapest instance type capable of
// hosting tau alone — the maximum hourly price worth paying for the task.
// TNRP scales RP by the (estimated) normalized throughput the task would
// achieve under a given co-location, so that a task-to-instance assignment
// is cost-efficient exactly when TNRP(T) >= instance cost. For multi-task
// jobs, the degradation a placement inflicts on the whole data-parallel job
// is charged to that placement:
//   TNRP(tau, T) = RP(tau) - sum_{tau' in job(tau)} (1 - tput_{tau,T}) * RP(tau').
//
// The calculator memoizes aggressively so the scheduling decision path can
// be delta-incremental across rounds:
//   * RP is cached per task (demands and speedups are immutable per id);
//   * per-task TNRP is cached per (task, co-location workload multiset,
//     family), stamped with the throughput estimator's row version at
//     compute time — entries invalidate themselves exactly when new
//     observations change the estimates they were derived from.
// Both caches are sharded + mutex-guarded, so lookups may run concurrently
// (the parallel packing paths); values are pure functions of their keys, so
// concurrent recomputation is race-benign. Rebind() points a long-lived
// calculator at the next round's context while keeping the caches.

#ifndef SRC_SCHED_RESERVATION_PRICE_H_
#define SRC_SCHED_RESERVATION_PRICE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/soa_table.h"
#include "src/sched/throughput_estimator.h"
#include "src/sched/types.h"

namespace eva {

class TnrpCalculator {
 public:
  struct Options {
    // When false, throughput is treated as 1.0 everywhere — this is the
    // Eva-RP ablation of Figure 4.
    bool interference_aware = true;

    // When false, tasks of multi-task jobs are treated as independent —
    // the Eva-Single ablation of Table 6 / Figure 7.
    bool multi_task_aware = true;
  };

  // Atomic (relaxed) so concurrent shards can bump counters without a data
  // race; reads are monotonic snapshots, not a consistent cut.
  struct CacheStats {
    std::atomic<std::uint64_t> rp_hits{0};
    std::atomic<std::uint64_t> rp_misses{0};
    std::atomic<std::uint64_t> tnrp_hits{0};
    std::atomic<std::uint64_t> tnrp_misses{0};
    std::atomic<std::uint64_t> set_hits{0};
    std::atomic<std::uint64_t> set_misses{0};
  };

  // `estimator` overrides context.throughput when given — long-lived
  // schedulers pass their own table here so each round's context does not
  // have to be copied just to re-bind its throughput pointer.
  TnrpCalculator(const SchedulingContext& context, Options options,
                 const ThroughputEstimator* estimator = nullptr);

  // Points the calculator at a new context while keeping the memoized
  // caches — the cross-round fast path. Contract: task and job ids must be
  // stable identities (the same id always denotes the same demands,
  // workload, speedups, and job size). The caches are dropped automatically
  // when the bound catalog or throughput estimator is a different object.
  // Not thread-safe against concurrent pricing calls; rebind between
  // rounds, not during one.
  void Rebind(const SchedulingContext& context,
              const ThroughputEstimator* estimator = nullptr);

  // RP(tau): hourly cost of the cheapest fitting type. With heterogeneous
  // per-family speedups (§4.2's extension) this becomes the minimum cost of
  // executing one unit of work: min_k C_k / speedup(family(k)) over fitting
  // types. Cached per task. Tasks that fit no instance type have RP 0 (the
  // simulator rejects such jobs at admission, so this is defensive).
  Money ReservationPrice(const TaskInfo& task) const;

  // TNRP of one task co-located with `partners` (the other tasks on the
  // same hypothetical instance, excluding the task itself). May be negative
  // for multi-task jobs under severe interference. When `family` is given,
  // the task's relative speed on that family scales its value (§4.2).
  Money TaskTnrp(const TaskInfo& task, const std::vector<const TaskInfo*>& partners,
                 std::optional<InstanceFamily> family = std::nullopt) const;

  // TNRP of a set of tasks placed together: sum of per-task TNRP where each
  // task's partners are the other members of the set. Memoized at set
  // granularity (keyed on the ordered id sequence + family, stamped with
  // the estimator's global version) on top of the per-task caches, so the
  // packing's repeated evaluations of recurring sets cost one hash lookup.
  Money SetTnrp(const std::vector<const TaskInfo*>& tasks,
                std::optional<InstanceFamily> family = std::nullopt) const;

  // SetTnrp(members + {candidate}) without materializing the joined set on
  // the cache-hit path — the packing argmax's inner-loop shape.
  Money SetTnrpPlusOne(const std::vector<const TaskInfo*>& members,
                       const TaskInfo& candidate,
                       std::optional<InstanceFamily> family = std::nullopt) const;

  // Plain reservation-price sum of a set (used by Eva-RP and the
  // cost-efficiency walk-through of §4.2).
  Money SetRp(const std::vector<const TaskInfo*>& tasks) const;

  const Options& options() const { return options_; }
  const CacheStats& cache_stats() const { return cache_stats_; }

  // Cache-shard locking toggle. Defaults to true (safe under the parallel
  // packing paths); a caller that prices strictly from one thread may turn
  // it off to shed the per-lookup mutex cost. Values are unaffected.
  void set_concurrent(bool concurrent) { concurrent_ = concurrent; }

 private:
  // Shard count balances mutex contention (parallel packing) against
  // per-lookup overhead; maps stay small enough per shard either way.
  static constexpr std::size_t kNumShards = 16;

  // Partner workloads are packed 7 bits each (Table 7's universe is ten
  // ids) into one word, *in caller order* — NOT canonicalized: floating-
  // point folds over the partners are order-sensitive, and cached values
  // must reproduce an uncached evaluation of the same call bit-for-bit.
  // The packing is injective for <= kMaxPackedPartners partners with ids
  // < 128; calls outside that envelope compute uncached (identical values,
  // no memo). POD keys keep probes at integer hash/compare cost and make
  // stored entries allocation-free.
  static constexpr std::size_t kMaxPackedPartners = 8;
  static constexpr WorkloadId kMaxPackedWorkload = 128;

  struct TnrpKey {
    TaskId task = kInvalidTaskId;
    std::int32_t family = -1;  // -1 encodes "no family given".
    std::uint32_t count = 0;
    std::uint64_t packed = 0;

    bool operator==(const TnrpKey& other) const {
      return task == other.task && family == other.family && count == other.count &&
             packed == other.packed;
    }
  };

  struct TnrpKeyHash {
    std::size_t operator()(const TnrpKey& key) const;
  };

  struct TnrpEntry {
    Money value = 0.0;
    std::uint64_t row_version = 0;  // Estimator row version at compute time.
  };

  // RP and job size are both immutable per task id, so they share a cache
  // entry (job size feeds the §4.4 multi-task term without re-touching the
  // context's job index on every TNRP miss).
  struct RpEntry {
    Money rp = 0.0;
    int job_size = 1;
  };

  struct RpShard {
    mutable std::mutex mutex;
    std::unordered_map<TaskId, RpEntry> cache;  // Fallback for sparse ids.
  };

  // Memo shards live in flat open-addressing tables (FlatMemoMap): the
  // node-based unordered_maps they replace allocated on every miss — the
  // single largest allocation source of the 10k/50k sweep. The tables are
  // lookup-only (never iterated), so the layout change cannot affect any
  // value or order the scheduler produces.
  struct TnrpShard {
    mutable std::mutex mutex;
    FlatMemoMap<TnrpKey, TnrpEntry, TnrpKeyHash> cache;
  };

  struct SetKey {
    std::size_t hash = 0;  // Precomputed at key build; the map hash is O(1).
    int family = -1;
    std::vector<TaskId> members;  // Caller order (see TnrpKey), candidate last.

    bool operator==(const SetKey& other) const {
      return hash == other.hash && family == other.family && members == other.members;
    }
  };

  // Seeds/extends the incremental SetKey hash (caller-order fold).
  static std::size_t SetHashSeed(int family);
  static std::size_t SetHashExtend(std::size_t seed, TaskId member);

  struct SetEntry {
    Money value = 0.0;
    // Sum of the members' estimator row versions at compute time. Row
    // versions are monotonic, so the sum changes exactly when an estimate
    // any member's TNRP depends on could have — per-set invalidation
    // instead of flushing everything on every table write.
    std::uint64_t row_sum = 0;
  };

  // Stored set-memo key: the member sequence is interned into the shard's
  // id blob (offset/count), so SetKey — which owns a members vector — is
  // only ever a caller-side probe/scratch. Inserting an entry appends to
  // the blob (amortized) instead of copying a vector per stored key.
  struct StoredSetKey {
    std::size_t hash = 0;
    std::size_t offset = 0;
    std::uint32_t count = 0;
    std::int32_t family = -1;
  };

  struct StoredSetKeyHash {
    std::size_t operator()(const StoredSetKey& key) const { return key.hash; }
  };

  // Compares an interned key against a probe SetKey; bound to the owning
  // shard's blob.
  struct StoredSetKeyEq {
    const std::vector<TaskId>* blob = nullptr;
    bool operator()(const StoredSetKey& stored, const SetKey& probe) const {
      return stored.hash == probe.hash && stored.family == probe.family &&
             stored.count == probe.members.size() &&
             std::equal(probe.members.begin(), probe.members.end(),
                        blob->begin() + static_cast<std::ptrdiff_t>(stored.offset));
    }
  };

  struct SetShard {
    mutable std::mutex mutex;
    std::vector<TaskId> blob;  // Interned member sequences (cleared with cache).
    FlatMemoMap<StoredSetKey, SetEntry, StoredSetKeyHash, StoredSetKeyEq> cache{
        StoredSetKeyHash{}, StoredSetKeyEq{&blob}};
  };

  const ThroughputEstimator* estimator() const {
    return estimator_ != nullptr ? estimator_ : context_->throughput;
  }

  RpEntry RpEntryFor(const TaskInfo& task) const;
  Money ComputeReservationPrice(const TaskInfo& task) const;

  // TNRP of `task` co-located with exactly one partner, computed directly:
  // with the estimator's dense pairwise grid this is cheaper than probing
  // the TNRP memo, and bit-identical to what a memoized evaluation returns
  // (same ComputeTnrp call a cache miss would make).
  Money TaskTnrpOne(const TaskInfo& task, const TaskInfo& partner,
                    std::optional<InstanceFamily> family) const;
  // Shared body of TaskTnrpOne and TaskTnrp's single-partner branch; takes
  // the caller's already-fetched RP and job size so neither path pays a
  // second RpEntryFor lookup.
  Money TaskTnrpOneImpl(const TaskInfo& task, const TaskInfo& partner, Money rp,
                        int job_size) const;
  Money ComputeTnrp(const TaskInfo& task, const std::vector<WorkloadId>& partner_workloads,
                    Money rp, int job_size) const;
  Money ComputeSetTnrp(const std::vector<const TaskInfo*>& tasks,
                       std::optional<InstanceFamily> family) const;
  // Shared slow/fast-path body of SetTnrp / SetTnrpPlusOne: looks up the
  // prepared key (a caller-owned scratch, copied only on miss), computing
  // via `compute` on miss. `row_sum` is the members' current row-version
  // sum (see SetEntry).
  template <typename ComputeFn>
  Money CachedSetTnrp(const SetKey& key, std::uint64_t row_sum,
                      const ComputeFn& compute) const;

  // Locks a shard mutex only when concurrent pricing is enabled.
  class MaybeLock {
   public:
    MaybeLock(std::mutex& mutex, bool enabled) : mutex_(enabled ? &mutex : nullptr) {
      if (mutex_ != nullptr) {
        mutex_->lock();
      }
    }
    ~MaybeLock() {
      if (mutex_ != nullptr) {
        mutex_->unlock();
      }
    }
    MaybeLock(const MaybeLock&) = delete;
    MaybeLock& operator=(const MaybeLock&) = delete;

   private:
    std::mutex* mutex_;
  };

  // Grows the flat RP cache to cover the bound context's task ids (called
  // from Rebind, between rounds — never concurrently with pricing).
  void GrowRpFlat();

  const SchedulingContext* context_;
  Options options_;
  const ThroughputEstimator* estimator_;
  bool concurrent_ = true;

  // Catalog the caches were computed against. Rebind must compare the new
  // context's catalog against this saved value, NOT against
  // context_->catalog: callers (the simulator) refill one context object in
  // place across rounds, so by Rebind time the old object already carries
  // the new catalog pointer and the comparison would always read "same" —
  // silently keeping RP/TNRP entries priced off a catalog that changed
  // (the spot tier's per-round quote snapshots).
  const InstanceCatalog* bound_catalog_ = nullptr;

  // Flat RP cache for the dense task-id universe (simulator ids are
  // sequential): the RP lookup is the innermost pricing primitive, and a
  // vector index beats the hash probe it replaces by an order of magnitude.
  // Shard mutexes still guard slot fill under concurrent pricing; ids beyond
  // the flat range (hand-built contexts) fall back to the sharded maps.
  mutable std::vector<RpEntry> rp_flat_;
  mutable std::vector<std::uint8_t> rp_flat_filled_;
  mutable std::array<RpShard, kNumShards> rp_shards_;
  mutable std::array<TnrpShard, kNumShards> tnrp_shards_;
  mutable std::array<SetShard, kNumShards> set_shards_;
  mutable CacheStats cache_stats_;  // Approximate under concurrency.
};

// Sorts tasks by descending reservation price with deterministic ascending-id
// tie-break — the candidate order of Algorithm 1 and the incremental
// baselines. Computes each RP exactly once into a keyed vector before
// sorting (the previous comparator-driven sorts re-priced tasks on every
// comparison, O(n log n) calculator calls).
void SortTasksByRpDesc(const TnrpCalculator& calculator,
                       std::vector<const TaskInfo*>& tasks);

}  // namespace eva

#endif  // SRC_SCHED_RESERVATION_PRICE_H_
