// Scheduler-facing types: what a scheduler sees (SchedulingContext) and what
// it returns (ClusterConfig).
//
// The simulator builds a context each scheduling period (§3); a scheduler
// returns the desired cluster configuration — the number of instances, the
// type of each instance, and the task-to-instance assignment. The simulator
// then diffs the desired configuration against the running cluster and
// issues launch/terminate/migrate actions.

#ifndef SRC_SCHED_TYPES_H_
#define SRC_SCHED_TYPES_H_

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/cloud/instance_type.h"
#include "src/common/resources.h"
#include "src/common/soa_table.h"
#include "src/common/units.h"
#include "src/workload/workload.h"

namespace eva {

class ThroughputEstimator;

// A task as visible to schedulers.
struct TaskInfo {
  TaskId id = kInvalidTaskId;
  JobId job = kInvalidJobId;
  WorkloadId workload = kInvalidWorkloadId;
  ResourceVector demand_p3;
  ResourceVector demand_cpu;

  // Relative per-iteration speed of this task on each instance family
  // (§4.2 "Generalizability to Heterogeneous Resources"): e.g. a CPU job
  // that runs 1.5x faster on C7i's higher-frequency cores. 1.0 everywhere
  // means the homogeneous model used in the paper's main evaluation.
  std::array<double, kNumInstanceFamilies> family_speedup = {1.0, 1.0, 1.0};

  double SpeedupOn(InstanceFamily family) const {
    return family_speedup[static_cast<std::size_t>(family)];
  }

  // Instance currently hosting the task, or kInvalidInstanceId if the task
  // has not been placed yet (recently submitted).
  InstanceId current_instance = kInvalidInstanceId;

  // Remaining standalone work in seconds, if the scheduler has been granted
  // runtime estimates (Stratus's best case is evaluated with perfect
  // estimates, §6.1). Negative when unknown.
  SimTime remaining_work_s = -1.0;

  const ResourceVector& DemandFor(InstanceFamily family) const {
    return family == InstanceFamily::kP3 ? demand_p3 : demand_cpu;
  }
};

// A provisioned (or provisioning) instance as visible to schedulers.
struct InstanceInfo {
  InstanceId id = kInvalidInstanceId;
  int type_index = -1;
  std::vector<TaskId> tasks;
};

// What changed in the cluster since the previous scheduling round. Produced
// by the simulator (ClusterState accumulates it as mutations happen, O(1)
// per event) and, in a real deployment, by the master from the runtime's
// arrival/completion/placement notifications. Schedulers use it to scope
// incremental work: memoized-TNRP invalidation, delta-touched repacking,
// and skipping recomputation entirely on quiescent rounds. `complete` is
// false when the producer cannot enumerate the changes (e.g. a context
// assembled by hand); consumers must then assume everything changed.
struct RoundDelta {
  bool complete = false;
  std::vector<JobId> jobs_arrived;
  std::vector<JobId> jobs_completed;
  std::vector<TaskId> tasks_retargeted;  // Target instance changed.
  std::vector<InstanceId> instances_launched;
  std::vector<InstanceId> instances_terminated;

  bool Empty() const {
    return jobs_arrived.empty() && jobs_completed.empty() && tasks_retargeted.empty() &&
           instances_launched.empty() && instances_terminated.empty();
  }

  // Number of changed entities — the magnitude incremental consumers
  // compare against their full-recompute thresholds.
  std::size_t TouchedCount() const {
    return jobs_arrived.size() + jobs_completed.size() + tasks_retargeted.size() +
           instances_launched.size() + instances_terminated.size();
  }

  void Clear() {
    complete = false;
    jobs_arrived.clear();
    jobs_completed.clear();
    tasks_retargeted.clear();
    instances_launched.clear();
    instances_terminated.clear();
  }
};

// Snapshot handed to Scheduler::Schedule each period.
class SchedulingContext {
 public:
  SimTime now_s = 0.0;
  const InstanceCatalog* catalog = nullptr;

  // Changes since the previous round (see RoundDelta). Default-constructed
  // (complete == false) when the producer does not track deltas.
  RoundDelta delta;

  // Throughput estimates the scheduler is entitled to. For Eva this is the
  // learned co-location table; for Owl it is the offline profile (the paper
  // grants Owl the full pairwise profile); may be null for throughput-
  // oblivious schedulers.
  const ThroughputEstimator* throughput = nullptr;

  std::vector<TaskInfo> tasks;
  std::vector<InstanceInfo> instances;

  // Must be called after populating tasks/instances; builds lookup indices.
  void Finalize();

  const TaskInfo* FindTask(TaskId id) const;
  const InstanceInfo* FindInstance(InstanceId id) const;

  // All tasks belonging to a job (data-parallel siblings), in context
  // order. Cold path (linear scan): the hot consumers only need JobSize,
  // so Finalize no longer materializes a per-job task vector every round.
  std::vector<TaskId> JobTasks(JobId job) const;

  // Number of tasks in the given job.
  int JobSize(JobId job) const;

 private:
  // Epoch-stamped flat indices for the dense id universe the simulator
  // produces (sequential task/job/instance ids). Finalize() Clear()s the
  // columns, so the previous round's entries expire in O(1) — the
  // unordered_map rebuild this replaces allocated a node per task per live
  // round. Ids outside the flat envelope fall back to the hash maps
  // (hand-built contexts); the columns grow amortized to the largest id
  // seen and persist across Finalize calls.
  EpochColumn<std::uint32_t> task_flat_;      // id -> position in tasks.
  EpochColumn<std::uint32_t> instance_flat_;  // id -> position in instances.
  EpochColumn<std::uint32_t> job_size_flat_;  // job id -> task count.
  std::unordered_map<TaskId, std::size_t> task_index_;  // Sparse-id fallbacks.
  std::unordered_map<InstanceId, std::size_t> instance_index_;
  std::unordered_map<JobId, int> job_size_;
};

// One desired instance in a configuration.
struct ConfigInstance {
  int type_index = -1;

  // When set, the scheduler asks to keep this existing instance (Partial
  // Reconfiguration and the incremental baselines set this). When unset,
  // the simulator's differ may still match the entry to a running instance
  // of the same type to avoid needless churn.
  InstanceId reuse_instance = kInvalidInstanceId;

  std::vector<TaskId> tasks;
};

// The desired cluster configuration. Tasks not mentioned anywhere are
// treated as intentionally unscheduled (left pending).
struct ClusterConfig {
  std::vector<ConfigInstance> instances;

  Money HourlyCost(const InstanceCatalog& catalog) const;

  // Verifies structural invariants: valid type indices, no task assigned
  // twice, and per-instance demands within capacity. Returns an error
  // description, or nullopt if valid.
  std::optional<std::string> Validate(const SchedulingContext& context) const;
};

// Decision-path counters a scheduler exports at the end of a run (see
// Scheduler::ExportCounters); the simulator copies them into
// SimulationMetrics and the perf benches serialize them per case. All zero
// for schedulers that don't override the export — only Eva's incremental
// fast path populates them today.
struct SchedulerCounters {
  // How each round's Full candidate was produced.
  int packs_full = 0;         // Exact Algorithm 1 packs.
  int packs_incremental = 0;  // Delta-touched incremental repacks.
  int packs_escalated = 0;    // Exact packs forced by the escalation policy.

  // Bounded-divergence reconciliation: exact repacks run alongside the
  // incremental incumbent, measured and adopted.
  int reconciliations = 0;

  // Escalation episodes (the policy latching to exact mode), as opposed to
  // packs_escalated which counts the packs run while latched.
  int escalations = 0;

  // Why incremental packs fell back to a full repack.
  int fallback_incomplete_delta = 0;
  int fallback_oversized_delta = 0;
  int fallback_no_previous = 0;

  // Divergence measured at reconciliations: relative hourly-cost delta of
  // the incremental incumbent vs the exact repack, and the config edit
  // distance between them (see ConfigEditDistance).
  double last_divergence_cost = 0.0;
  double max_divergence_cost = 0.0;
  int last_divergence_edits = 0;
  int max_divergence_edits = 0;

  // Largest number of packs any configuration ran unreconciled — the
  // realized staleness bound (<= the reconciliation cadence).
  int max_kept_staleness = 0;
};

}  // namespace eva

#endif  // SRC_SCHED_TYPES_H_
