// Diffing a desired ClusterConfig against the running cluster.
//
// Schedulers express *what* the cluster should look like; this differ
// decides the cheapest way to get there: which running instances to keep
// (possibly with a different task set), which to terminate, which new ones
// to launch, and which tasks migrate. Both the simulator (to apply a
// configuration) and Eva's decision criterion (to price migration overhead,
// §4.5) use it, so the two always agree on what a reconfiguration entails.

#ifndef SRC_SCHED_CONFIG_DIFF_H_
#define SRC_SCHED_CONFIG_DIFF_H_

#include <vector>

#include "src/cloud/delays.h"
#include "src/sched/types.h"

namespace eva {

struct ConfigDiff {
  // One desired instance bound to either an existing instance (existing_id
  // valid) or a fresh launch (existing_id == kInvalidInstanceId).
  struct Binding {
    int config_index = -1;  // Index into ClusterConfig::instances.
    int type_index = -1;
    InstanceId existing_id = kInvalidInstanceId;
    std::vector<TaskId> tasks;
  };

  // A task changing instances (from_instance may be kInvalidInstanceId for
  // a first placement, which costs a launch but no checkpoint).
  struct Move {
    TaskId task = kInvalidTaskId;
    InstanceId from_instance = kInvalidInstanceId;
    int to_binding = -1;  // Index into `bindings`.
  };

  std::vector<Binding> bindings;
  std::vector<InstanceId> terminate;  // Running instances not in the config.
  std::vector<Move> moves;

  int NumLaunches() const;
  int NumMigrations() const;  // Moves with a valid source instance.
};

// Computes the diff. Binding preference order:
//   1. explicit reuse_instance requests (honored when type matches),
//   2. greedy same-type matching by descending task overlap,
//   3. remaining same-type instances (avoids a launch even with 0 overlap),
//   4. fresh launches.
ConfigDiff DiffConfig(const SchedulingContext& context, const ClusterConfig& desired);

// Same computation into caller-owned storage, rewriting `out` in place so
// its vectors' capacity is reused — the per-round fast path for callers
// that diff every round (the simulator's apply, Eva's migration pricing).
void DiffConfigInto(const SchedulingContext& context, const ClusterConfig& desired,
                    ConfigDiff& out);

// Estimated dollar cost of executing the diff (§4.5's M term): for every
// migrated task, checkpoint + launch delays priced at the destination
// instance's hourly rate; for every fresh launch, the mean provisioning
// delay priced at the new instance's rate. First placements of new tasks
// price only the launch delay (no checkpoint).
Money EstimateMigrationCost(const SchedulingContext& context, const ConfigDiff& diff,
                            const CloudDelayModel& cloud_delays,
                            double migration_delay_multiplier);

// Edit distance between two configurations, counted in instances: the
// number of instances present in one config but not the other, where two
// instances match iff they have the same type and the same task set
// (order-insensitive; reuse_instance hints are ignored — they steer the
// differ, not the configuration's semantics). Zero iff the configs describe
// the same placement. Used to measure how far the incremental incumbent
// drifted from the exact repack at reconciliation.
int ConfigEditDistance(const ClusterConfig& a, const ClusterConfig& b);

}  // namespace eva

#endif  // SRC_SCHED_CONFIG_DIFF_H_
