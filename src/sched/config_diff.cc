#include "src/sched/config_diff.h"

#include <algorithm>
#include <utility>

#include "src/common/arena.h"
#include "src/common/soa_table.h"

namespace eva {
namespace {

// Greedy-matching candidate pair (pass 2).
struct Candidate {
  int overlap;
  std::size_t config_index;
  InstanceId existing_id;
};

// Per-call scratch, leased per (thread, depth) so the buckets/capacity
// survive across the thousands of per-round calls — the codebase's one
// sanctioned thread-local scratch mechanism (see common/arena.h).
// `bound_existing` is an epoch-stamped membership column (instance ids are
// dense and sequential): Clear() is O(1) and inserts allocate nothing at
// steady state, where the unordered_set it replaces allocated a node per
// bound instance per diff.
struct DiffScratch {
  EpochColumn<char> bound_existing;
  std::vector<Candidate> candidates;
  std::vector<TaskId> wanted_tasks;
};

}  // namespace

int ConfigDiff::NumLaunches() const {
  int count = 0;
  for (const Binding& binding : bindings) {
    if (binding.existing_id == kInvalidInstanceId) {
      ++count;
    }
  }
  return count;
}

int ConfigDiff::NumMigrations() const {
  int count = 0;
  for (const Move& move : moves) {
    if (move.from_instance != kInvalidInstanceId) {
      ++count;
    }
  }
  return count;
}

ConfigDiff DiffConfig(const SchedulingContext& context, const ClusterConfig& desired) {
  ConfigDiff diff;
  DiffConfigInto(context, desired, diff);
  return diff;
}

void DiffConfigInto(const SchedulingContext& context, const ClusterConfig& desired,
                    ConfigDiff& out) {
  ConfigDiff& diff = out;
  diff.bindings.resize(desired.instances.size());
  diff.terminate.clear();
  diff.moves.clear();

  ScratchLease<DiffScratch> scratch;
  EpochColumn<char>& bound_existing = scratch->bound_existing;
  bound_existing.Clear();

  // Pass 1: honor explicit reuse requests.
  for (std::size_t i = 0; i < desired.instances.size(); ++i) {
    const ConfigInstance& want = desired.instances[i];
    ConfigDiff::Binding& binding = diff.bindings[i];
    binding.config_index = static_cast<int>(i);
    binding.type_index = want.type_index;
    binding.existing_id = kInvalidInstanceId;  // Reused slots carry stale ids.
    binding.tasks = want.tasks;
    if (want.reuse_instance == kInvalidInstanceId) {
      continue;
    }
    const InstanceInfo* existing = context.FindInstance(want.reuse_instance);
    if (existing != nullptr && existing->type_index == want.type_index &&
        !bound_existing.Contains(static_cast<std::size_t>(existing->id))) {
      binding.existing_id = existing->id;
      bound_existing.Touch(static_cast<std::size_t>(existing->id)) = 1;
    }
  }

  // Pass 2: greedy same-type matching by descending task overlap. Candidate
  // pairs are enumerated once and sorted so the result is deterministic.
  std::vector<Candidate>& candidates = scratch->candidates;
  candidates.clear();
  candidates.reserve(desired.instances.size());
  std::vector<TaskId>& wanted_tasks = scratch->wanted_tasks;  // Sorted scratch.
  for (std::size_t i = 0; i < desired.instances.size(); ++i) {
    if (diff.bindings[i].existing_id != kInvalidInstanceId) {
      continue;
    }
    const ConfigInstance& want = desired.instances[i];
    wanted_tasks.assign(want.tasks.begin(), want.tasks.end());
    std::sort(wanted_tasks.begin(), wanted_tasks.end());
    for (const InstanceInfo& existing : context.instances) {
      if (existing.type_index != want.type_index || bound_existing.Contains(static_cast<std::size_t>(existing.id))) {
        continue;
      }
      int overlap = 0;
      for (TaskId task : existing.tasks) {
        if (std::binary_search(wanted_tasks.begin(), wanted_tasks.end(), task)) {
          ++overlap;
        }
      }
      candidates.push_back({overlap, i, existing.id});
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.overlap != b.overlap) {
      return a.overlap > b.overlap;
    }
    if (a.config_index != b.config_index) {
      return a.config_index < b.config_index;
    }
    return a.existing_id < b.existing_id;
  });
  for (const Candidate& candidate : candidates) {
    ConfigDiff::Binding& binding = diff.bindings[candidate.config_index];
    if (binding.existing_id != kInvalidInstanceId || bound_existing.Contains(static_cast<std::size_t>(candidate.existing_id))) {
      continue;
    }
    binding.existing_id = candidate.existing_id;
    bound_existing.Touch(static_cast<std::size_t>(candidate.existing_id)) = 1;
  }

  // Terminate every running instance that was not bound.
  for (const InstanceInfo& existing : context.instances) {
    if (!bound_existing.Contains(static_cast<std::size_t>(existing.id))) {
      diff.terminate.push_back(existing.id);
    }
  }

  // Task moves: any task whose bound destination differs from its current
  // instance.
  for (std::size_t i = 0; i < diff.bindings.size(); ++i) {
    const ConfigDiff::Binding& binding = diff.bindings[i];
    for (TaskId task_id : binding.tasks) {
      const TaskInfo* task = context.FindTask(task_id);
      if (task == nullptr) {
        continue;
      }
      const bool stays = binding.existing_id != kInvalidInstanceId &&
                         task->current_instance == binding.existing_id;
      if (!stays) {
        diff.moves.push_back({task_id, task->current_instance, static_cast<int>(i)});
      }
    }
  }
}

namespace {

// Canonical instance keys for ConfigEditDistance: (type, sorted task set),
// themselves sorted, so the symmetric difference is one merge walk.
void CanonicalInstanceKeys(const ClusterConfig& config,
                           std::vector<std::pair<int, std::vector<TaskId>>>& keys) {
  keys.clear();
  keys.reserve(config.instances.size());
  for (const ConfigInstance& instance : config.instances) {
    keys.emplace_back(instance.type_index, instance.tasks);
    std::sort(keys.back().second.begin(), keys.back().second.end());
  }
  std::sort(keys.begin(), keys.end());
}

}  // namespace

int ConfigEditDistance(const ClusterConfig& a, const ClusterConfig& b) {
  ScratchLease<std::vector<std::pair<int, std::vector<TaskId>>>> keys_a;
  ScratchLease<std::vector<std::pair<int, std::vector<TaskId>>>> keys_b;
  CanonicalInstanceKeys(a, *keys_a);
  CanonicalInstanceKeys(b, *keys_b);
  int distance = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < keys_a->size() && j < keys_b->size()) {
    const auto& ka = (*keys_a)[i];
    const auto& kb = (*keys_b)[j];
    if (ka == kb) {
      ++i;
      ++j;
    } else if (ka < kb) {
      ++distance;
      ++i;
    } else {
      ++distance;
      ++j;
    }
  }
  distance += static_cast<int>((keys_a->size() - i) + (keys_b->size() - j));
  return distance;
}

Money EstimateMigrationCost(const SchedulingContext& context, const ConfigDiff& diff,
                            const CloudDelayModel& cloud_delays,
                            double migration_delay_multiplier) {
  Money total = 0.0;
  const SimTime provisioning_s = cloud_delays.ProvisioningDelay(nullptr);
  for (const ConfigDiff::Binding& binding : diff.bindings) {
    if (binding.existing_id == kInvalidInstanceId) {
      const Money rate = context.catalog->Get(binding.type_index).cost_per_hour;
      total += CostForUptime(rate, provisioning_s);
    }
  }
  for (const ConfigDiff::Move& move : diff.moves) {
    const TaskInfo* task = context.FindTask(move.task);
    if (task == nullptr) {
      continue;
    }
    const WorkloadSpec& workload = WorkloadRegistry::Get(task->workload);
    SimTime delay_s = workload.launch_delay_s;
    if (move.from_instance != kInvalidInstanceId) {
      delay_s += workload.checkpoint_delay_s;
    }
    delay_s *= migration_delay_multiplier;
    const ConfigDiff::Binding& binding =
        diff.bindings[static_cast<std::size_t>(move.to_binding)];
    const Money rate = context.catalog->Get(binding.type_index).cost_per_hour;
    total += CostForUptime(rate, delay_s);
  }
  return total;
}

}  // namespace eva
