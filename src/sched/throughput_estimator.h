// Throughput estimation interfaces.
//
// ThroughputEstimator is the read-side abstraction schedulers use to reason
// about co-location interference. Two implementations exist:
//   * ThroughputTable — Eva's online-learned co-location throughput table
//     (§4.3/§4.4), owned by the ThroughputMonitor;
//   * OracleThroughput — a view over the ground-truth InterferenceModel,
//     granted to the Owl baseline (the paper provides Owl the full pairwise
//     profile, §6.1).

#ifndef SRC_SCHED_THROUGHPUT_ESTIMATOR_H_
#define SRC_SCHED_THROUGHPUT_ESTIMATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/workload/interference.h"
#include "src/workload/workload.h"

namespace eva {

class ThroughputEstimator {
 public:
  virtual ~ThroughputEstimator() = default;

  // Estimated normalized throughput of a task of workload `w` when
  // co-located with tasks of workloads `partners` (order irrelevant,
  // multiplicity matters). Must return 1.0 when partners is empty.
  virtual double Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const = 0;

  // Version counters memoizing consumers (TnrpCalculator's TNRP caches) key
  // their entries on. Version() must change whenever any estimate could
  // change; RowVersion(w) whenever an Estimate(w, ...) could change.
  // Immutable estimators (the oracle, a frozen profile) keep both at 0,
  // which marks cached values as valid forever.
  virtual std::uint64_t Version() const { return 0; }
  virtual std::uint64_t RowVersion(WorkloadId w) const {
    (void)w;
    return 0;
  }
};

// Eva's co-location throughput table (§4.3). Entries record the observed
// normalized throughput of a workload co-located with a multiset of partner
// workloads. Lookups fall back to the product of pairwise entries; unseen
// pairs use the optimistic default t (0.95 in all of the paper's
// experiments), which controls packing aggressiveness.
class ThroughputTable : public ThroughputEstimator {
 public:
  explicit ThroughputTable(double default_pairwise = 0.95);

  double Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const override;

  // Exact-entry access (partners are canonicalized internally). Record
  // returns true when the stored value actually changed — re-recording an
  // identical observation leaves the versions (and thus downstream TNRP
  // caches) untouched, which is what makes steady-state rounds cheap.
  std::optional<double> Lookup(WorkloadId w, const std::vector<WorkloadId>& partners) const;
  bool Record(WorkloadId w, std::vector<WorkloadId> partners, double throughput);

  std::uint64_t Version() const override { return version_; }
  std::uint64_t RowVersion(WorkloadId w) const override {
    // Flat array: memoizing consumers validate cache entries with one
    // RowVersion read per set member, so this must be O(1).
    const auto index = static_cast<std::size_t>(w);
    return w >= 0 && index < row_versions_.size() ? row_versions_[index] : 0;
  }

  double default_pairwise() const { return default_pairwise_; }
  std::size_t NumEntries() const {
    return pair_grid_count_ + pair_entries_.size() + exact_entries_.size();
  }

 private:
  // Pairwise entries — the hot path of Estimate's product loop — live in a
  // dense (w, partner) grid for the small workload-id universe (Table 7 has
  // ten workloads; NaN marks "unobserved"), with a packed-key hash map as
  // the fallback for out-of-range ids so arbitrary ids keep working. Larger
  // multisets (and the degenerate empty one) under a hashed (w, sorted
  // partners) key.
  struct MultisetKey {
    WorkloadId w = kInvalidWorkloadId;
    std::vector<WorkloadId> partners;  // Sorted.

    bool operator==(const MultisetKey& other) const {
      return w == other.w && partners == other.partners;
    }
  };
  struct MultisetKeyHash {
    std::size_t operator()(const MultisetKey& key) const;
  };

  // Ids above this stay in the hash fallback (the grid is dim^2 doubles).
  static constexpr int kMaxDenseId = 128;

  static std::uint64_t PairKey(WorkloadId w, WorkloadId partner) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(w)) << 32) |
           static_cast<std::uint32_t>(partner);
  }

  bool InGrid(WorkloadId w, WorkloadId partner) const {
    return w >= 0 && partner >= 0 && w < pair_dim_ && partner < pair_dim_;
  }

  const double* FindPair(WorkloadId w, WorkloadId partner) const;

  // Grows the dense grid to cover (w, partner) and returns the cell;
  // nullptr when either id is out of dense range.
  double* GridCellFor(WorkloadId w, WorkloadId partner);

  double default_pairwise_;
  std::vector<double> pair_grid_;  // pair_dim_ x pair_dim_, NaN = absent.
  WorkloadId pair_dim_ = 0;
  std::size_t pair_grid_count_ = 0;  // Non-NaN cells (for NumEntries).

  // Exact multiset entries per workload row: when a row has none (the
  // common case), Estimate/Lookup skip the sort + hash probe entirely —
  // the probe could only miss.
  std::vector<std::uint32_t> exact_rows_;
  bool MayHaveExact(WorkloadId w) const {
    if (w < 0) {
      return true;  // Unindexable id: probe conservatively.
    }
    const auto index = static_cast<std::size_t>(w);
    // Recording always grows exact_rows_ to cover the row, so an index past
    // the end proves the row has no exact entries.
    return index < exact_rows_.size() && exact_rows_[index] != 0;
  }
  std::unordered_map<std::uint64_t, double> pair_entries_;  // Sparse fallback.
  std::unordered_map<MultisetKey, double, MultisetKeyHash> exact_entries_;
  std::uint64_t version_ = 0;
  std::vector<std::uint64_t> row_versions_;  // Indexed by workload id.
};

// Ground-truth estimator backed by the interference model (product of true
// pairwise factors). The simulator also uses this to drive execution.
class OracleThroughput : public ThroughputEstimator {
 public:
  explicit OracleThroughput(const InterferenceModel* model) : model_(model) {}

  double Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const override;

 private:
  const InterferenceModel* model_;
};

}  // namespace eva

#endif  // SRC_SCHED_THROUGHPUT_ESTIMATOR_H_
