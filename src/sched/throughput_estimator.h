// Throughput estimation interfaces.
//
// ThroughputEstimator is the read-side abstraction schedulers use to reason
// about co-location interference. Two implementations exist:
//   * ThroughputTable — Eva's online-learned co-location throughput table
//     (§4.3/§4.4), owned by the ThroughputMonitor;
//   * OracleThroughput — a view over the ground-truth InterferenceModel,
//     granted to the Owl baseline (the paper provides Owl the full pairwise
//     profile, §6.1).

#ifndef SRC_SCHED_THROUGHPUT_ESTIMATOR_H_
#define SRC_SCHED_THROUGHPUT_ESTIMATOR_H_

#include <map>
#include <optional>
#include <vector>

#include "src/workload/interference.h"
#include "src/workload/workload.h"

namespace eva {

class ThroughputEstimator {
 public:
  virtual ~ThroughputEstimator() = default;

  // Estimated normalized throughput of a task of workload `w` when
  // co-located with tasks of workloads `partners` (order irrelevant,
  // multiplicity matters). Must return 1.0 when partners is empty.
  virtual double Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const = 0;
};

// Eva's co-location throughput table (§4.3). Entries record the observed
// normalized throughput of a workload co-located with a multiset of partner
// workloads. Lookups fall back to the product of pairwise entries; unseen
// pairs use the optimistic default t (0.95 in all of the paper's
// experiments), which controls packing aggressiveness.
class ThroughputTable : public ThroughputEstimator {
 public:
  explicit ThroughputTable(double default_pairwise = 0.95);

  double Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const override;

  // Exact-entry access (partners are canonicalized internally).
  std::optional<double> Lookup(WorkloadId w, std::vector<WorkloadId> partners) const;
  void Record(WorkloadId w, std::vector<WorkloadId> partners, double throughput);

  double default_pairwise() const { return default_pairwise_; }
  std::size_t NumEntries() const { return entries_.size(); }

 private:
  using Key = std::pair<WorkloadId, std::vector<WorkloadId>>;
  static Key MakeKey(WorkloadId w, std::vector<WorkloadId> partners);

  double default_pairwise_;
  std::map<Key, double> entries_;
};

// Ground-truth estimator backed by the interference model (product of true
// pairwise factors). The simulator also uses this to drive execution.
class OracleThroughput : public ThroughputEstimator {
 public:
  explicit OracleThroughput(const InterferenceModel* model) : model_(model) {}

  double Estimate(WorkloadId w, const std::vector<WorkloadId>& partners) const override;

 private:
  const InterferenceModel* model_;
};

}  // namespace eva

#endif  // SRC_SCHED_THROUGHPUT_ESTIMATOR_H_
