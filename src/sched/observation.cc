#include "src/sched/observation.h"

#include <algorithm>
#include <cassert>

#include "src/common/rng.h"

namespace eva {

double PerturbObservedThroughput(double normalized_throughput, Rng& rng, double stddev) {
  const double noisy = normalized_throughput * (1.0 + rng.Normal(0.0, stddev));
  return std::clamp(noisy, 0.01, 1.0);
}

void ObservationBatch::SealCurrentJob() {
  if (used_jobs_ > 0) {
    std::vector<TaskPlacementObservation>& tasks = observations_[used_jobs_ - 1].tasks;
    if (tasks.size() > used_tasks_) {
      tasks.resize(used_tasks_);
    }
  }
}

JobThroughputObservation& ObservationBatch::BeginJob(JobId job, double normalized_throughput) {
  SealCurrentJob();
  if (used_jobs_ == observations_.size()) {
    observations_.emplace_back();
  }
  JobThroughputObservation& observation = observations_[used_jobs_++];
  observation.job = job;
  observation.normalized_throughput = normalized_throughput;
  used_tasks_ = 0;
  return observation;
}

TaskPlacementObservation& ObservationBatch::AddTask(TaskId task, WorkloadId workload) {
  assert(used_jobs_ > 0);
  std::vector<TaskPlacementObservation>& tasks = observations_[used_jobs_ - 1].tasks;
  if (used_tasks_ == tasks.size()) {
    tasks.emplace_back();
  }
  TaskPlacementObservation& placement = tasks[used_tasks_++];
  placement.task = task;
  placement.workload = workload;
  placement.colocated.clear();
  return placement;
}

const std::vector<JobThroughputObservation>& ObservationBatch::Finish() {
  SealCurrentJob();
  if (observations_.size() > used_jobs_) {
    observations_.resize(used_jobs_);
  }
  return observations_;
}

}  // namespace eva
