#include "src/sched/observation.h"

#include <algorithm>
#include <cassert>

#include "src/common/rng.h"

namespace eva {

double PerturbObservedThroughput(double normalized_throughput, Rng& rng, double stddev) {
  const double noisy = normalized_throughput * (1.0 + rng.Normal(0.0, stddev));
  return std::clamp(noisy, 0.01, 1.0);
}

JobThroughputObservation& ObservationBatch::BeginJob(JobId job, double normalized_throughput) {
  JobThroughputObservation observation;
  observation.job = job;
  observation.normalized_throughput = normalized_throughput;
  observations_.push_back(std::move(observation));
  return observations_.back();
}

TaskPlacementObservation& ObservationBatch::AddTask(TaskId task, WorkloadId workload) {
  assert(!observations_.empty());
  TaskPlacementObservation placement;
  placement.task = task;
  placement.workload = workload;
  observations_.back().tasks.push_back(std::move(placement));
  return observations_.back().tasks.back();
}

}  // namespace eva
