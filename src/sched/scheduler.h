// The scheduler interface all five schedulers implement.

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/sched/types.h"
#include "src/workload/workload.h"

namespace eva {

// Placement observation for one task of a job during the last scheduling
// window: the workloads it shared an instance with.
struct TaskPlacementObservation {
  TaskId task = kInvalidTaskId;
  WorkloadId workload = kInvalidWorkloadId;
  std::vector<WorkloadId> colocated;
};

// Throughput observation for one job over the last scheduling window,
// reported by the workers' EvaIterator in the real system and by the
// execution model in simulation.
struct JobThroughputObservation {
  JobId job = kInvalidJobId;
  double normalized_throughput = 1.0;  // min over the job's tasks
  std::vector<TaskPlacementObservation> tasks;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Computes the desired cluster configuration for the current state. Called
  // once per scheduling period.
  virtual ClusterConfig Schedule(const SchedulingContext& context) = 0;

  // Writes the desired configuration into caller-owned storage, reusing its
  // buffers (the per-round fast path: one round-scoped ClusterConfig lives
  // for the whole run and is rewritten in place). The default forwards to
  // Schedule(); schedulers whose Schedule would copy a cached configuration
  // (Eva's round memo) override this to copy into `out` directly.
  virtual void ScheduleInto(const SchedulingContext& context, ClusterConfig& out) {
    out = Schedule(context);
  }

  // Delivers the throughput observations collected since the previous
  // scheduling round. Default: ignore (throughput-oblivious schedulers).
  virtual void ObserveThroughput(const std::vector<JobThroughputObservation>& observations) {
    (void)observations;
  }

  // Round batching. The caller (the simulator's quiescence-aware round
  // trigger, or a real master's round loop) guarantees that each of the next
  // `max_rounds` scheduling rounds, spaced `period_s` apart, is *quiescent*:
  // the context it would present is identical to the previous Schedule
  // call's on every field except the clock and remaining-runtime estimates,
  // and the throughput observations it would deliver are identical to the
  // previous round's. The scheduler returns how many of those rounds
  // (possibly 0) it commits to being no-ops — rounds for which Schedule
  // would return exactly the configuration it returned last time — and must
  // advance any per-round internal state (rate estimators, statistics) for
  // the rounds it absorbs, as if Schedule had been called. Returning fewer
  // than `max_rounds` means the later rounds must be invoked normally (e.g.
  // an internal estimator is about to flip the decision). The default — no
  // batching — is correct for every scheduler; only schedulers that can
  // prove the no-op property (Eva's round memo) opt in.
  virtual int CoalesceQuiescentRounds(int max_rounds, SimTime period_s) {
    (void)max_rounds;
    (void)period_s;
    return 0;
  }

  // Tells the scheduler how large the workload it is about to serve is
  // (total jobs in the trace / expected over the deployment's horizon).
  // Called once, before the first Schedule call. Schedulers with
  // scale-dependent defaults (Eva's auto incremental-packing mode) resolve
  // them here; the default ignores the hint.
  virtual void BindWorkloadScale(std::size_t expected_jobs) { (void)expected_jobs; }

  // Hands the scheduler a span sink on its owner's trace track (the
  // simulator calls this at construction when tracing is enabled; never
  // called when it is off). Spans must be stamped with the context's
  // virtual time, and only the serially-executing decision path may emit —
  // a scheduler fanning work out to a pool must confine emission to one
  // branch so the track's span order stays deterministic. Default: ignore
  // (untraced schedulers).
  virtual void BindTrace(const TraceBinding& binding) { (void)binding; }

  // Adds this run's decision-path counters into `out` (+=, so federated
  // callers can aggregate across tenants). Called after the last round.
  // Default: export nothing.
  virtual void ExportCounters(SchedulerCounters& out) const { (void)out; }
};

}  // namespace eva

#endif  // SRC_SCHED_SCHEDULER_H_
