// The scheduler interface all five schedulers implement.

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <string>
#include <vector>

#include "src/sched/types.h"
#include "src/workload/workload.h"

namespace eva {

// Placement observation for one task of a job during the last scheduling
// window: the workloads it shared an instance with.
struct TaskPlacementObservation {
  TaskId task = kInvalidTaskId;
  WorkloadId workload = kInvalidWorkloadId;
  std::vector<WorkloadId> colocated;
};

// Throughput observation for one job over the last scheduling window,
// reported by the workers' EvaIterator in the real system and by the
// execution model in simulation.
struct JobThroughputObservation {
  JobId job = kInvalidJobId;
  double normalized_throughput = 1.0;  // min over the job's tasks
  std::vector<TaskPlacementObservation> tasks;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Computes the desired cluster configuration for the current state. Called
  // once per scheduling period.
  virtual ClusterConfig Schedule(const SchedulingContext& context) = 0;

  // Delivers the throughput observations collected since the previous
  // scheduling round. Default: ignore (throughput-oblivious schedulers).
  virtual void ObserveThroughput(const std::vector<JobThroughputObservation>& observations) {
    (void)observations;
  }
};

}  // namespace eva

#endif  // SRC_SCHED_SCHEDULER_H_
