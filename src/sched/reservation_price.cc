#include "src/sched/reservation_price.h"

namespace eva {

TnrpCalculator::TnrpCalculator(const SchedulingContext& context, Options options)
    : context_(context), options_(options) {}

Money TnrpCalculator::ReservationPrice(const TaskInfo& task) const {
  const auto cached = rp_cache_.find(task.id);
  if (cached != rp_cache_.end()) {
    return cached->second;
  }
  // Minimum cost of executing the task's work: cost per hour divided by the
  // task's relative speed on the hosting family. With homogeneous speedups
  // (all 1.0) this reduces to the paper's original definition.
  Money best = 0.0;
  bool found = false;
  for (const InstanceType& type : context_.catalog->types()) {
    if (!task.DemandFor(type.family).FitsWithin(type.capacity)) {
      continue;
    }
    const double speedup = task.SpeedupOn(type.family);
    if (speedup <= 0.0) {
      continue;
    }
    const Money effective = type.cost_per_hour / speedup;
    if (!found || effective < best) {
      best = effective;
      found = true;
    }
  }
  rp_cache_[task.id] = best;
  return best;
}

Money TnrpCalculator::TaskTnrp(const TaskInfo& task,
                               const std::vector<const TaskInfo*>& partners,
                               std::optional<InstanceFamily> family) const {
  const double speedup = family.has_value() ? task.SpeedupOn(*family) : 1.0;
  const Money rp = ReservationPrice(task) * speedup;
  if (!options_.interference_aware || partners.empty()) {
    return rp;
  }
  std::vector<WorkloadId> partner_workloads;
  partner_workloads.reserve(partners.size());
  for (const TaskInfo* partner : partners) {
    partner_workloads.push_back(partner->workload);
  }
  const double tput =
      context_.throughput != nullptr ? context_.throughput->Estimate(task.workload,
                                                                     partner_workloads)
                                     : 1.0;
  const int job_size = context_.JobSize(task.job);
  if (!options_.multi_task_aware || job_size <= 1) {
    return tput * rp;
  }
  // §4.4: the straggler effect propagates to every sibling; charge the full
  // job-level loss to this placement. All tasks of a job share demands, so
  // each sibling's RP equals this task's.
  return rp - static_cast<double>(job_size) * (1.0 - tput) * rp;
}

Money TnrpCalculator::SetTnrp(const std::vector<const TaskInfo*>& tasks,
                              std::optional<InstanceFamily> family) const {
  Money total = 0.0;
  std::vector<const TaskInfo*> partners;
  partners.reserve(tasks.size());
  for (const TaskInfo* task : tasks) {
    partners.clear();
    for (const TaskInfo* other : tasks) {
      if (other != task) {
        partners.push_back(other);
      }
    }
    total += TaskTnrp(*task, partners, family);
  }
  return total;
}

Money TnrpCalculator::SetRp(const std::vector<const TaskInfo*>& tasks) const {
  Money total = 0.0;
  for (const TaskInfo* task : tasks) {
    total += ReservationPrice(*task);
  }
  return total;
}

}  // namespace eva
