#include "src/sched/reservation_price.h"

#include <algorithm>
#include <utility>

#include "src/common/arena.h"
#include "src/common/hash.h"

namespace eva {
namespace {

// Per-(thread, depth) leased scratch (see common/arena.h) for the TNRP
// paths. The depth frames matter: SetTnrpPlusOne's miss path holds a
// TaskPtrScratch lease for the joined set while ComputeSetTnrp leases
// another frame for each member's partner list.
struct TaskPtrScratch {
  std::vector<const TaskInfo*> ptrs;
};

struct WorkloadScratch {
  std::vector<WorkloadId> workloads;
};

struct SortScratch {
  std::vector<std::pair<Money, const TaskInfo*>> keyed;
};

}  // namespace

std::size_t TnrpCalculator::TnrpKeyHash::operator()(const TnrpKey& key) const {
  const std::size_t seed = HashCombine(static_cast<std::size_t>(key.task),
                                       static_cast<std::size_t>(key.family) + 0x7f +
                                           (static_cast<std::size_t>(key.count) << 8));
  return HashCombine(seed, static_cast<std::size_t>(key.packed));
}

std::size_t TnrpCalculator::SetHashSeed(int family) {
  return HashCombine(0x5e74c0de, static_cast<std::size_t>(family) + 0x7f);
}

std::size_t TnrpCalculator::SetHashExtend(std::size_t seed, TaskId member) {
  return HashCombine(seed, static_cast<std::size_t>(member));
}

TnrpCalculator::TnrpCalculator(const SchedulingContext& context, Options options,
                               const ThroughputEstimator* estimator)
    : context_(&context),
      options_(options),
      estimator_(estimator),
      bound_catalog_(context.catalog) {}
// The flat RP cache is built on Rebind only: a freshly constructed
// calculator is usually a per-round temporary (the baselines), for which
// allocating an id-indexed array every round would cost more than the hash
// probes it avoids. Long-lived calculators (EvaScheduler's) rebind every
// round and get the flat path from round two on.

void TnrpCalculator::GrowRpFlat() {
  TaskId max_id = -1;
  for (const TaskInfo& task : context_->tasks) {
    max_id = std::max(max_id, task.id);
  }
  // Guard against pathological sparse ids blowing up the flat array; such
  // contexts simply stay on the hash fallback.
  constexpr TaskId kMaxFlat = 1 << 22;
  if (max_id >= 0 && max_id < kMaxFlat &&
      static_cast<std::size_t>(max_id) >= rp_flat_.size()) {
    rp_flat_.resize(static_cast<std::size_t>(max_id) + 1);
    rp_flat_filled_.resize(static_cast<std::size_t>(max_id) + 1, 0);
  }
}

void TnrpCalculator::Rebind(const SchedulingContext& context,
                            const ThroughputEstimator* estimator) {
  const bool catalog_changed = context.catalog != bound_catalog_;
  const ThroughputEstimator* previous = this->estimator();
  context_ = &context;
  estimator_ = estimator;
  bound_catalog_ = context.catalog;
  const bool estimator_changed = this->estimator() != previous;
  if (catalog_changed) {
    for (RpShard& shard : rp_shards_) {
      shard.cache.clear();
    }
    std::fill(rp_flat_filled_.begin(), rp_flat_filled_.end(), 0);
  }
  GrowRpFlat();
  if (catalog_changed || estimator_changed) {
    // TNRP values embed both RPs (catalog-derived) and throughput estimates;
    // version stamps only track mutations of the *same* estimator object.
    for (TnrpShard& shard : tnrp_shards_) {
      shard.cache.Clear();
    }
    for (SetShard& shard : set_shards_) {
      shard.cache.Clear();
      shard.blob.clear();
    }
  }
  // Memory aging for long traces: entries for retired tasks (and version-
  // invalidated estimates) are never evicted individually, so on 100k-job
  // runs the memo maps would grow with the whole trace. Dropping a shard
  // that outgrows the bound keeps memory O(working set); caches only affect
  // speed, never values, so results are unchanged — and the bound is
  // deterministic, so the decision trajectory stays reproducible.
  constexpr std::size_t kMaxCachedEntriesPerShard = std::size_t{1} << 16;
  for (TnrpShard& shard : tnrp_shards_) {
    if (shard.cache.size() > kMaxCachedEntriesPerShard) {
      shard.cache.Clear();
    }
  }
  for (SetShard& shard : set_shards_) {
    if (shard.cache.size() > kMaxCachedEntriesPerShard) {
      shard.cache.Clear();
      shard.blob.clear();
    }
  }
}

Money TnrpCalculator::ComputeReservationPrice(const TaskInfo& task) const {
  // Minimum cost of executing the task's work: cost per hour divided by the
  // task's relative speed on the hosting family. With homogeneous speedups
  // (all 1.0) this reduces to the paper's original definition.
  Money best = 0.0;
  bool found = false;
  for (const InstanceType& type : context_->catalog->types()) {
    if (!task.DemandFor(type.family).FitsWithin(type.capacity)) {
      continue;
    }
    const double speedup = task.SpeedupOn(type.family);
    if (speedup <= 0.0) {
      continue;
    }
    const Money effective = type.cost_per_hour / speedup;
    if (!found || effective < best) {
      best = effective;
      found = true;
    }
  }
  return best;
}

TnrpCalculator::RpEntry TnrpCalculator::RpEntryFor(const TaskInfo& task) const {
  const auto index = static_cast<std::size_t>(task.id);
  if (task.id >= 0 && index < rp_flat_.size()) {
    RpShard& shard = rp_shards_[index % kNumShards];  // Mutex reused as slot guard.
    {
      MaybeLock lock(shard.mutex, concurrent_);
      if (rp_flat_filled_[index]) {
        cache_stats_.rp_hits.fetch_add(1, std::memory_order_relaxed);
        return rp_flat_[index];
      }
    }
    RpEntry entry;
    entry.rp = ComputeReservationPrice(task);
    entry.job_size = context_->JobSize(task.job);
    MaybeLock lock(shard.mutex, concurrent_);
    cache_stats_.rp_misses.fetch_add(1, std::memory_order_relaxed);
    rp_flat_[index] = entry;
    rp_flat_filled_[index] = 1;
    return entry;
  }
  RpShard& shard = rp_shards_[index % kNumShards];
  {
    MaybeLock lock(shard.mutex, concurrent_);
    const auto cached = shard.cache.find(task.id);
    if (cached != shard.cache.end()) {
      cache_stats_.rp_hits.fetch_add(1, std::memory_order_relaxed);
      return cached->second;
    }
  }
  RpEntry entry;
  entry.rp = ComputeReservationPrice(task);
  entry.job_size = context_->JobSize(task.job);
  MaybeLock lock(shard.mutex, concurrent_);
  cache_stats_.rp_misses.fetch_add(1, std::memory_order_relaxed);
  shard.cache[task.id] = entry;
  return entry;
}

Money TnrpCalculator::ReservationPrice(const TaskInfo& task) const {
  return RpEntryFor(task).rp;
}

Money TnrpCalculator::ComputeTnrp(const TaskInfo& task,
                                  const std::vector<WorkloadId>& partner_workloads,
                                  Money rp, int job_size) const {
  const ThroughputEstimator* throughput = estimator();
  const double tput =
      throughput != nullptr ? throughput->Estimate(task.workload, partner_workloads) : 1.0;
  if (!options_.multi_task_aware || job_size <= 1) {
    return tput * rp;
  }
  // §4.4: the straggler effect propagates to every sibling; charge the full
  // job-level loss to this placement. All tasks of a job share demands, so
  // each sibling's RP equals this task's.
  return rp - static_cast<double>(job_size) * (1.0 - tput) * rp;
}

Money TnrpCalculator::TaskTnrpOne(const TaskInfo& task, const TaskInfo& partner,
                                  std::optional<InstanceFamily> family) const {
  // Mirrors TaskTnrp's operation sequence exactly; see that function.
  const double speedup = family.has_value() ? task.SpeedupOn(*family) : 1.0;
  const RpEntry entry = RpEntryFor(task);
  return TaskTnrpOneImpl(task, partner, entry.rp * speedup, entry.job_size);
}

Money TnrpCalculator::TaskTnrpOneImpl(const TaskInfo& task, const TaskInfo& partner,
                                      Money rp, int job_size) const {
  if (!options_.interference_aware) {
    return rp;
  }
  // Audited exception to the ScratchLease rule: this is the hottest TNRP
  // leaf (every pairwise fold), the buffer is written immediately before
  // its only use, and no call between the write and ComputeTnrp can re-enter
  // this function on the same thread (no pool Wait on the path) — so a
  // plain thread_local cannot be clobbered mid-use here.
  thread_local std::vector<WorkloadId> one(1);
  one[0] = partner.workload;
  return ComputeTnrp(task, one, rp, job_size);
}

Money TnrpCalculator::TaskTnrp(const TaskInfo& task,
                               const std::vector<const TaskInfo*>& partners,
                               std::optional<InstanceFamily> family) const {
  const double speedup = family.has_value() ? task.SpeedupOn(*family) : 1.0;
  const RpEntry entry = RpEntryFor(task);
  const Money rp = entry.rp * speedup;
  if (!options_.interference_aware || partners.empty()) {
    return rp;
  }
  if (partners.size() == 1) {
    // Single-partner TNRP: the pairwise-grid estimate is cheaper than the
    // memo probe it would otherwise pay for; values are identical (the
    // memoized entry stores exactly this computation's result). The shared
    // impl reuses the RP entry this function already fetched.
    return TaskTnrpOneImpl(task, *partners.front(), rp, entry.job_size);
  }
  // Memoized path: the value is a pure function of (task, partner workload
  // sequence, family) given the estimator's current estimates for the
  // task's workload, which the row version captures. The key preserves the
  // caller's partner ORDER (see TnrpKey); recurring call sites present
  // partners in stable orders, so ordered keys still hit. The workload
  // scratch is leased per (thread, depth): nothing allocates on a hit.
  ScratchLease<WorkloadScratch> workload_scratch;
  std::vector<WorkloadId>& partner_workloads = workload_scratch->workloads;
  partner_workloads.clear();
  partner_workloads.reserve(partners.size());
  TnrpKey key;
  key.task = task.id;
  key.family = family.has_value() ? static_cast<int>(*family) : -1;
  key.count = static_cast<std::uint32_t>(partners.size());
  bool packable = partners.size() <= kMaxPackedPartners;
  for (const TaskInfo* partner : partners) {
    partner_workloads.push_back(partner->workload);
    packable = packable && partner->workload >= 0 && partner->workload < kMaxPackedWorkload;
    key.packed = (key.packed << 7) | static_cast<std::uint64_t>(partner->workload & 0x7f);
  }
  if (!packable) {
    // Outside the packed-key envelope: compute uncached, identical value.
    return ComputeTnrp(task, partner_workloads, rp, entry.job_size);
  }
  const ThroughputEstimator* throughput = estimator();
  const std::uint64_t row_version =
      throughput != nullptr ? throughput->RowVersion(task.workload) : 0;

  // Shard selection is deliberately cheaper than the map's own hash (which
  // find() recomputes anyway): any partition works, values are unaffected.
  TnrpShard& shard =
      tnrp_shards_[static_cast<std::size_t>(task.id) % kNumShards];
  const std::size_t key_hash = TnrpKeyHash()(key);
  {
    MaybeLock lock(shard.mutex, concurrent_);
    const TnrpEntry* cached = shard.cache.Find(key, key_hash);
    if (cached != nullptr && cached->row_version == row_version) {
      cache_stats_.tnrp_hits.fetch_add(1, std::memory_order_relaxed);
      return cached->value;
    }
  }
  const Money value = ComputeTnrp(task, partner_workloads, rp, entry.job_size);
  MaybeLock lock(shard.mutex, concurrent_);
  cache_stats_.tnrp_misses.fetch_add(1, std::memory_order_relaxed);
  shard.cache.Upsert(key, key_hash, [&] { return key; }) = {value, row_version};
  return value;
}

Money TnrpCalculator::ComputeSetTnrp(const std::vector<const TaskInfo*>& tasks,
                                     std::optional<InstanceFamily> family) const {
  Money total = 0.0;
  ScratchLease<TaskPtrScratch> partner_scratch;
  std::vector<const TaskInfo*>& partners = partner_scratch->ptrs;
  partners.clear();
  partners.reserve(tasks.size());
  for (const TaskInfo* task : tasks) {
    partners.clear();
    for (const TaskInfo* other : tasks) {
      if (other != task) {
        partners.push_back(other);
      }
    }
    total += TaskTnrp(*task, partners, family);
  }
  return total;
}

template <typename ComputeFn>
Money TnrpCalculator::CachedSetTnrp(const SetKey& key, std::uint64_t row_sum,
                                    const ComputeFn& compute) const {
  // `key` is typically a thread-local scratch: it is only copied into the
  // cache on a miss, so the hit path allocates nothing. The shard selector
  // is cheaper than the map hash (recomputed by find() regardless).
  SetShard& shard = set_shards_[static_cast<std::size_t>(
                                    key.members.front() + key.members.size()) %
                                kNumShards];
  {
    MaybeLock lock(shard.mutex, concurrent_);
    const SetEntry* cached = shard.cache.Find(key, key.hash);
    if (cached != nullptr && cached->row_sum == row_sum) {
      cache_stats_.set_hits.fetch_add(1, std::memory_order_relaxed);
      return cached->value;
    }
  }
  const Money value = compute();
  MaybeLock lock(shard.mutex, concurrent_);
  cache_stats_.set_misses.fetch_add(1, std::memory_order_relaxed);
  shard.cache.Upsert(key, key.hash, [&] {
    // First insertion of this set: intern the member sequence.
    StoredSetKey stored;
    stored.hash = key.hash;
    stored.family = key.family;
    stored.offset = shard.blob.size();
    stored.count = static_cast<std::uint32_t>(key.members.size());
    shard.blob.insert(shard.blob.end(), key.members.begin(), key.members.end());
    return stored;
  }) = {value, row_sum};
  return value;
}

Money TnrpCalculator::SetTnrp(const std::vector<const TaskInfo*>& tasks,
                              std::optional<InstanceFamily> family) const {
  if (tasks.size() <= 1) {
    // Singleton and empty sets short-circuit to the (cached) RP path.
    return tasks.empty() ? 0.0 : TaskTnrp(*tasks.front(), {}, family);
  }
  if (tasks.size() == 2) {
    // Pair sets — the packing's bread and butter — fold directly off the
    // pairwise grid, skipping the set cache (same member order, same sum).
    return TaskTnrpOne(*tasks[0], *tasks[1], family) +
           TaskTnrpOne(*tasks[1], *tasks[0], family);
  }
  // Ordered key, for the same bit-exactness reason as TaskTnrp's: the sum
  // over members is folded in presentation order.
  const ThroughputEstimator* throughput = estimator();
  ScratchLease<SetKey> key_lease;
  SetKey& key = *key_lease;
  key.family = family.has_value() ? static_cast<int>(*family) : -1;
  key.hash = SetHashSeed(key.family);
  key.members.clear();
  key.members.reserve(tasks.size());
  std::uint64_t row_sum = 0;
  for (const TaskInfo* task : tasks) {
    key.members.push_back(task->id);
    key.hash = SetHashExtend(key.hash, task->id);
    if (throughput != nullptr) {
      row_sum += throughput->RowVersion(task->workload);
    }
  }
  return CachedSetTnrp(key, row_sum, [&] { return ComputeSetTnrp(tasks, family); });
}

Money TnrpCalculator::SetTnrpPlusOne(const std::vector<const TaskInfo*>& members,
                                     const TaskInfo& candidate,
                                     std::optional<InstanceFamily> family) const {
  if (members.empty()) {
    return TaskTnrp(candidate, {}, family);
  }
  if (members.size() == 1) {
    // {member, candidate}: same fold order as ComputeSetTnrp on the joined
    // set, directly off the pairwise grid.
    return TaskTnrpOne(*members[0], candidate, family) +
           TaskTnrpOne(candidate, *members[0], family);
  }
  const ThroughputEstimator* throughput = estimator();
  ScratchLease<SetKey> key_lease;
  SetKey& key = *key_lease;
  key.family = family.has_value() ? static_cast<int>(*family) : -1;
  key.hash = SetHashSeed(key.family);
  key.members.clear();
  key.members.reserve(members.size() + 1);
  std::uint64_t row_sum = 0;
  for (const TaskInfo* member : members) {
    key.members.push_back(member->id);
    key.hash = SetHashExtend(key.hash, member->id);
    if (throughput != nullptr) {
      row_sum += throughput->RowVersion(member->workload);
    }
  }
  key.members.push_back(candidate.id);
  key.hash = SetHashExtend(key.hash, candidate.id);
  if (throughput != nullptr) {
    row_sum += throughput->RowVersion(candidate.workload);
  }
  return CachedSetTnrp(key, row_sum, [&] {
    ScratchLease<TaskPtrScratch> joined_scratch;
    std::vector<const TaskInfo*>& joined = joined_scratch->ptrs;
    joined.assign(members.begin(), members.end());
    joined.push_back(&candidate);
    return ComputeSetTnrp(joined, family);
  });
}

Money TnrpCalculator::SetRp(const std::vector<const TaskInfo*>& tasks) const {
  Money total = 0.0;
  for (const TaskInfo* task : tasks) {
    total += ReservationPrice(*task);
  }
  return total;
}

void SortTasksByRpDesc(const TnrpCalculator& calculator,
                       std::vector<const TaskInfo*>& tasks) {
  ScratchLease<SortScratch> sort_scratch;  // Pooled per (thread, depth).
  std::vector<std::pair<Money, const TaskInfo*>>& keyed = sort_scratch->keyed;
  keyed.clear();
  keyed.reserve(tasks.size());
  for (const TaskInfo* task : tasks) {
    keyed.emplace_back(calculator.ReservationPrice(*task), task);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const std::pair<Money, const TaskInfo*>& a,
               const std::pair<Money, const TaskInfo*>& b) {
              if (a.first != b.first) {
                return a.first > b.first;
              }
              return a.second->id < b.second->id;
            });
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    tasks[i] = keyed[i].second;
  }
}

}  // namespace eva
