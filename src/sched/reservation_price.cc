#include "src/sched/reservation_price.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"

namespace eva {

std::size_t TnrpCalculator::TnrpKeyHash::operator()(const TnrpKey& key) const {
  std::size_t seed = HashCombine(static_cast<std::size_t>(key.task),
                                 static_cast<std::size_t>(key.family) + 0x7f);
  for (WorkloadId w : key.partners) {
    seed = HashCombine(seed, static_cast<std::size_t>(w));
  }
  return seed;
}

std::size_t TnrpCalculator::SetKeyHash::operator()(const SetKey& key) const {
  std::size_t seed = HashCombine(0x5e74c0de, static_cast<std::size_t>(key.family) + 0x7f);
  for (TaskId id : key.members) {
    seed = HashCombine(seed, static_cast<std::size_t>(id));
  }
  return seed;
}

TnrpCalculator::TnrpCalculator(const SchedulingContext& context, Options options,
                               const ThroughputEstimator* estimator)
    : context_(&context), options_(options), estimator_(estimator) {}

void TnrpCalculator::Rebind(const SchedulingContext& context,
                            const ThroughputEstimator* estimator) {
  const bool catalog_changed = context.catalog != context_->catalog;
  const ThroughputEstimator* previous = this->estimator();
  context_ = &context;
  estimator_ = estimator;
  const bool estimator_changed = this->estimator() != previous;
  if (catalog_changed) {
    for (RpShard& shard : rp_shards_) {
      shard.cache.clear();
    }
  }
  if (catalog_changed || estimator_changed) {
    // TNRP values embed both RPs (catalog-derived) and throughput estimates;
    // version stamps only track mutations of the *same* estimator object.
    for (TnrpShard& shard : tnrp_shards_) {
      shard.cache.clear();
    }
    for (SetShard& shard : set_shards_) {
      shard.cache.clear();
    }
  }
}

Money TnrpCalculator::ComputeReservationPrice(const TaskInfo& task) const {
  // Minimum cost of executing the task's work: cost per hour divided by the
  // task's relative speed on the hosting family. With homogeneous speedups
  // (all 1.0) this reduces to the paper's original definition.
  Money best = 0.0;
  bool found = false;
  for (const InstanceType& type : context_->catalog->types()) {
    if (!task.DemandFor(type.family).FitsWithin(type.capacity)) {
      continue;
    }
    const double speedup = task.SpeedupOn(type.family);
    if (speedup <= 0.0) {
      continue;
    }
    const Money effective = type.cost_per_hour / speedup;
    if (!found || effective < best) {
      best = effective;
      found = true;
    }
  }
  return best;
}

TnrpCalculator::RpEntry TnrpCalculator::RpEntryFor(const TaskInfo& task) const {
  RpShard& shard = rp_shards_[static_cast<std::size_t>(task.id) % kNumShards];
  {
    MaybeLock lock(shard.mutex, concurrent_);
    const auto cached = shard.cache.find(task.id);
    if (cached != shard.cache.end()) {
      cache_stats_.rp_hits.fetch_add(1, std::memory_order_relaxed);
      return cached->second;
    }
  }
  RpEntry entry;
  entry.rp = ComputeReservationPrice(task);
  entry.job_size = context_->JobSize(task.job);
  MaybeLock lock(shard.mutex, concurrent_);
  cache_stats_.rp_misses.fetch_add(1, std::memory_order_relaxed);
  shard.cache[task.id] = entry;
  return entry;
}

Money TnrpCalculator::ReservationPrice(const TaskInfo& task) const {
  return RpEntryFor(task).rp;
}

Money TnrpCalculator::ComputeTnrp(const TaskInfo& task,
                                  const std::vector<WorkloadId>& partner_workloads,
                                  Money rp, int job_size) const {
  const ThroughputEstimator* throughput = estimator();
  const double tput =
      throughput != nullptr ? throughput->Estimate(task.workload, partner_workloads) : 1.0;
  if (!options_.multi_task_aware || job_size <= 1) {
    return tput * rp;
  }
  // §4.4: the straggler effect propagates to every sibling; charge the full
  // job-level loss to this placement. All tasks of a job share demands, so
  // each sibling's RP equals this task's.
  return rp - static_cast<double>(job_size) * (1.0 - tput) * rp;
}

Money TnrpCalculator::TaskTnrp(const TaskInfo& task,
                               const std::vector<const TaskInfo*>& partners,
                               std::optional<InstanceFamily> family) const {
  const double speedup = family.has_value() ? task.SpeedupOn(*family) : 1.0;
  const RpEntry entry = RpEntryFor(task);
  const Money rp = entry.rp * speedup;
  if (!options_.interference_aware || partners.empty()) {
    return rp;
  }
  // Memoized path: the value is a pure function of (task, partner workload
  // sequence, family) given the estimator's current estimates for the
  // task's workload, which the row version captures.
  // The key preserves the caller's partner ORDER: floating-point folds over
  // partners (the pairwise product in ThroughputTable::Estimate) are not
  // exactly commutative, and the cached value must be bit-identical to what
  // an uncached evaluation of this exact call would produce. Recurring call
  // sites present partners in stable orders, so ordered keys still hit.
  // The key doubles as the partner-workload list for the compute path and
  // lives in thread-local scratch: nothing allocates on a cache hit.
  thread_local TnrpKey key;
  key.task = task.id;
  key.family = family.has_value() ? static_cast<int>(*family) : -1;
  key.partners.clear();
  key.partners.reserve(partners.size());
  for (const TaskInfo* partner : partners) {
    key.partners.push_back(partner->workload);
  }
  const ThroughputEstimator* throughput = estimator();
  const std::uint64_t row_version =
      throughput != nullptr ? throughput->RowVersion(task.workload) : 0;

  TnrpShard& shard = tnrp_shards_[TnrpKeyHash()(key) % kNumShards];
  {
    MaybeLock lock(shard.mutex, concurrent_);
    const auto cached = shard.cache.find(key);
    if (cached != shard.cache.end() && cached->second.row_version == row_version) {
      cache_stats_.tnrp_hits.fetch_add(1, std::memory_order_relaxed);
      return cached->second.value;
    }
  }
  const Money value = ComputeTnrp(task, key.partners, rp, entry.job_size);
  MaybeLock lock(shard.mutex, concurrent_);
  cache_stats_.tnrp_misses.fetch_add(1, std::memory_order_relaxed);
  shard.cache[key] = {value, row_version};
  return value;
}

Money TnrpCalculator::ComputeSetTnrp(const std::vector<const TaskInfo*>& tasks,
                                     std::optional<InstanceFamily> family) const {
  Money total = 0.0;
  std::vector<const TaskInfo*> partners;  // Local: TaskTnrp re-enters scratch.
  partners.reserve(tasks.size());
  for (const TaskInfo* task : tasks) {
    partners.clear();
    for (const TaskInfo* other : tasks) {
      if (other != task) {
        partners.push_back(other);
      }
    }
    total += TaskTnrp(*task, partners, family);
  }
  return total;
}

template <typename ComputeFn>
Money TnrpCalculator::CachedSetTnrp(const SetKey& key, std::uint64_t row_sum,
                                    const ComputeFn& compute) const {
  // `key` is typically a thread-local scratch: it is only copied into the
  // cache on a miss, so the hit path allocates nothing.
  SetShard& shard = set_shards_[SetKeyHash()(key) % kNumShards];
  {
    MaybeLock lock(shard.mutex, concurrent_);
    const auto cached = shard.cache.find(key);
    if (cached != shard.cache.end() && cached->second.row_sum == row_sum) {
      cache_stats_.set_hits.fetch_add(1, std::memory_order_relaxed);
      return cached->second.value;
    }
  }
  const Money value = compute();
  MaybeLock lock(shard.mutex, concurrent_);
  cache_stats_.set_misses.fetch_add(1, std::memory_order_relaxed);
  shard.cache[key] = {value, row_sum};
  return value;
}

Money TnrpCalculator::SetTnrp(const std::vector<const TaskInfo*>& tasks,
                              std::optional<InstanceFamily> family) const {
  if (tasks.size() <= 1) {
    // Singleton and empty sets short-circuit to the (cached) RP path.
    return tasks.empty() ? 0.0 : TaskTnrp(*tasks.front(), {}, family);
  }
  // Ordered key, for the same bit-exactness reason as TaskTnrp's: the sum
  // over members is folded in presentation order.
  const ThroughputEstimator* throughput = estimator();
  thread_local SetKey key;
  key.family = family.has_value() ? static_cast<int>(*family) : -1;
  key.members.clear();
  key.members.reserve(tasks.size());
  std::uint64_t row_sum = 0;
  for (const TaskInfo* task : tasks) {
    key.members.push_back(task->id);
    if (throughput != nullptr) {
      row_sum += throughput->RowVersion(task->workload);
    }
  }
  return CachedSetTnrp(key, row_sum, [&] { return ComputeSetTnrp(tasks, family); });
}

Money TnrpCalculator::SetTnrpPlusOne(const std::vector<const TaskInfo*>& members,
                                     const TaskInfo& candidate,
                                     std::optional<InstanceFamily> family) const {
  if (members.empty()) {
    return TaskTnrp(candidate, {}, family);
  }
  const ThroughputEstimator* throughput = estimator();
  thread_local SetKey key;
  key.family = family.has_value() ? static_cast<int>(*family) : -1;
  key.members.clear();
  key.members.reserve(members.size() + 1);
  std::uint64_t row_sum = 0;
  for (const TaskInfo* member : members) {
    key.members.push_back(member->id);
    if (throughput != nullptr) {
      row_sum += throughput->RowVersion(member->workload);
    }
  }
  key.members.push_back(candidate.id);
  if (throughput != nullptr) {
    row_sum += throughput->RowVersion(candidate.workload);
  }
  return CachedSetTnrp(key, row_sum, [&] {
    std::vector<const TaskInfo*> joined = members;
    joined.push_back(&candidate);
    return ComputeSetTnrp(joined, family);
  });
}

Money TnrpCalculator::SetRp(const std::vector<const TaskInfo*>& tasks) const {
  Money total = 0.0;
  for (const TaskInfo* task : tasks) {
    total += ReservationPrice(*task);
  }
  return total;
}

void SortTasksByRpDesc(const TnrpCalculator& calculator,
                       std::vector<const TaskInfo*>& tasks) {
  std::vector<std::pair<Money, const TaskInfo*>> keyed;
  keyed.reserve(tasks.size());
  for (const TaskInfo* task : tasks) {
    keyed.emplace_back(calculator.ReservationPrice(*task), task);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const std::pair<Money, const TaskInfo*>& a,
               const std::pair<Money, const TaskInfo*>& b) {
              if (a.first != b.first) {
                return a.first > b.first;
              }
              return a.second->id < b.second->id;
            });
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    tasks[i] = keyed[i].second;
  }
}

}  // namespace eva
