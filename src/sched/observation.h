// Helpers for assembling the per-round JobThroughputObservation batches a
// scheduler receives (Scheduler::ObserveThroughput).
//
// In simulation the execution model fills these from ground truth; in the
// real system the workers' EvaIterator reports fill them. Both producers
// share this builder so the observation wire format — including the
// physical-measurement noise model — is defined once, on the scheduler's
// side of the boundary.
//
// The batch is a reusable, cursor-based buffer: Reset() rewinds it without
// destroying the nested per-job/per-task vectors, so a producer that keeps
// one batch alive across rounds reaches a steady state where observation
// assembly performs no heap allocations (the per-round arena discipline —
// reset, don't reallocate).

#ifndef SRC_SCHED_OBSERVATION_H_
#define SRC_SCHED_OBSERVATION_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/sched/scheduler.h"

namespace eva {

class Rng;

// A throughput measurement as a physical deployment would report it:
// multiplicative Gaussian timer noise, clamped to (0, 1].
double PerturbObservedThroughput(double normalized_throughput, Rng& rng, double stddev);

// Accumulates one round's observations. Usage per round:
//   batch.Reset();
//   for each job:   batch.BeginJob(job, tput);
//     for each task:  auto& placement = batch.AddTask(task, workload);
//                     placement.colocated.push_back(...);
//   const auto& observations = batch.Finish();
class ObservationBatch {
 public:
  // Pre-sizes the batch (the producer usually knows the progressing-job
  // count), avoiding growth reallocations on the per-round hot path.
  void Reserve(std::size_t jobs) { observations_.reserve(jobs); }

  // Rewinds the write cursors. Previously written records keep their
  // storage and are overwritten in place by the next fill.
  void Reset() {
    used_jobs_ = 0;
    used_tasks_ = 0;
  }

  JobThroughputObservation& BeginJob(JobId job, double normalized_throughput);

  // Appends a placement record to the most recent BeginJob. Requires a
  // preceding BeginJob call. The returned record's `colocated` is empty
  // (capacity retained from the slot's previous use).
  TaskPlacementObservation& AddTask(TaskId task, WorkloadId workload);

  // Trims to the records written since Reset() and returns them. The
  // reference stays valid until the next Reset()/BeginJob().
  const std::vector<JobThroughputObservation>& Finish();

 private:
  // Drops task slots beyond the current job's cursor.
  void SealCurrentJob();

  std::vector<JobThroughputObservation> observations_;
  std::size_t used_jobs_ = 0;   // Jobs written since Reset.
  std::size_t used_tasks_ = 0;  // Tasks written to the current (last) job.
};

}  // namespace eva

#endif  // SRC_SCHED_OBSERVATION_H_
