// Helpers for assembling the per-round JobThroughputObservation batches a
// scheduler receives (Scheduler::ObserveThroughput).
//
// In simulation the execution model fills these from ground truth; in the
// real system the workers' EvaIterator reports fill them. Both producers
// share this builder so the observation wire format — including the
// physical-measurement noise model — is defined once, on the scheduler's
// side of the boundary.

#ifndef SRC_SCHED_OBSERVATION_H_
#define SRC_SCHED_OBSERVATION_H_

#include <utility>
#include <vector>

#include "src/sched/scheduler.h"

namespace eva {

class Rng;

// A throughput measurement as a physical deployment would report it:
// multiplicative Gaussian timer noise, clamped to (0, 1].
double PerturbObservedThroughput(double normalized_throughput, Rng& rng, double stddev);

// Accumulates one round's observations. Usage per job:
//   batch.BeginJob(job, tput);
//   auto& placement = batch.AddTask(task, workload);
//   placement.colocated.push_back(...);
class ObservationBatch {
 public:
  // Pre-sizes the batch (the producer usually knows the progressing-job
  // count), avoiding growth reallocations on the per-round hot path.
  void Reserve(std::size_t jobs) { observations_.reserve(jobs); }

  JobThroughputObservation& BeginJob(JobId job, double normalized_throughput);

  // Appends a placement record to the most recent BeginJob. Requires a
  // preceding BeginJob call.
  TaskPlacementObservation& AddTask(TaskId task, WorkloadId workload);

  std::vector<JobThroughputObservation> Take() { return std::move(observations_); }

 private:
  std::vector<JobThroughputObservation> observations_;
};

}  // namespace eva

#endif  // SRC_SCHED_OBSERVATION_H_
