#include "src/obs/registry.h"

#include <cmath>

#include "src/obs/json_util.h"

namespace eva {

using obs_internal::AppendJsonNumber;
using obs_internal::AppendJsonString;

namespace {

int Log2Bucket(std::int64_t value) {
  if (value < 1) return 0;
  int index = 1;
  while (value > 1 && index < 63) {
    value >>= 1;
    ++index;
  }
  return index;
}

}  // namespace

void TelemetryRegistry::Histogram::Record(std::int64_t value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  ++buckets_[Log2Bucket(value)];
}

std::int64_t TelemetryRegistry::Histogram::bucket(int index) const {
  if (index < 0 || index > 63) return 0;
  return buckets_[index];
}

void TelemetryRegistry::TimeSeries::Sample(double t_s, double value) {
  const std::int64_t index =
      static_cast<std::int64_t>(std::floor(t_s / bucket_width_s_));
  Bucket& bucket = buckets_[index];
  if (bucket.count == 0) {
    bucket.min = value;
    bucket.max = value;
  } else {
    if (value < bucket.min) bucket.min = value;
    if (value > bucket.max) bucket.max = value;
  }
  ++bucket.count;
  bucket.sum += value;
  bucket.last = value;
}

void TelemetryRegistry::Inc(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

void TelemetryRegistry::SetCounter(const std::string& name,
                                   std::int64_t value) {
  counters_[name] = value;
}

std::int64_t TelemetryRegistry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void TelemetryRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

double TelemetryRegistry::GaugeValue(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

TelemetryRegistry::Histogram& TelemetryRegistry::Hist(const std::string& name) {
  return histograms_[name];
}

TelemetryRegistry::TimeSeries& TelemetryRegistry::Series(
    const std::string& name, double bucket_width_s) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries()).first;
    it->second.bucket_width_s_ = bucket_width_s > 0.0 ? bucket_width_s : 1.0;
  }
  return it->second;
}

void TelemetryRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

std::string TelemetryRegistry::ToJson() const {
  std::string out;
  out.push_back('{');
  bool first_group = true;
  auto open_group = [&](const char* name) {
    if (!first_group) out.push_back(',');
    first_group = false;
    out.push_back('"');
    out.append(name);
    out.append("\":{");
  };

  if (!counters_.empty()) {
    open_group("counters");
    bool first = true;
    for (const auto& [name, value] : counters_) {
      if (!first) out.push_back(',');
      first = false;
      AppendJsonString(&out, name);
      out.push_back(':');
      AppendJsonNumber(&out, static_cast<double>(value));
    }
    out.push_back('}');
  }
  if (!gauges_.empty()) {
    open_group("gauges");
    bool first = true;
    for (const auto& [name, value] : gauges_) {
      if (!first) out.push_back(',');
      first = false;
      AppendJsonString(&out, name);
      out.push_back(':');
      AppendJsonNumber(&out, value);
    }
    out.push_back('}');
  }
  if (!histograms_.empty()) {
    open_group("histograms");
    bool first = true;
    for (const auto& [name, hist] : histograms_) {
      if (!first) out.push_back(',');
      first = false;
      AppendJsonString(&out, name);
      out.append(":{\"count\":");
      AppendJsonNumber(&out, static_cast<double>(hist.count_));
      out.append(",\"sum\":");
      AppendJsonNumber(&out, static_cast<double>(hist.sum_));
      out.append(",\"min\":");
      AppendJsonNumber(&out, static_cast<double>(hist.min_));
      out.append(",\"max\":");
      AppendJsonNumber(&out, static_cast<double>(hist.max_));
      out.append(",\"buckets\":{");
      bool first_bucket = true;
      for (int i = 0; i < 64; ++i) {
        if (hist.buckets_[i] == 0) continue;
        if (!first_bucket) out.push_back(',');
        first_bucket = false;
        char key[8];
        std::snprintf(key, sizeof(key), "\"%d\":", i);
        out.append(key);
        AppendJsonNumber(&out, static_cast<double>(hist.buckets_[i]));
      }
      out.append("}}");
    }
    out.push_back('}');
  }
  if (!series_.empty()) {
    open_group("series");
    bool first = true;
    for (const auto& [name, series] : series_) {
      if (!first) out.push_back(',');
      first = false;
      AppendJsonString(&out, name);
      out.append(":{\"bucket_s\":");
      AppendJsonNumber(&out, series.bucket_width_s_);
      out.append(",\"points\":[");
      bool first_point = true;
      for (const auto& [index, bucket] : series.buckets_) {
        if (!first_point) out.push_back(',');
        first_point = false;
        out.append("{\"t\":");
        AppendJsonNumber(&out,
                         static_cast<double>(index) * series.bucket_width_s_);
        out.append(",\"count\":");
        AppendJsonNumber(&out, static_cast<double>(bucket.count));
        out.append(",\"sum\":");
        AppendJsonNumber(&out, bucket.sum);
        out.append(",\"min\":");
        AppendJsonNumber(&out, bucket.min);
        out.append(",\"max\":");
        AppendJsonNumber(&out, bucket.max);
        out.append(",\"last\":");
        AppendJsonNumber(&out, bucket.last);
        out.push_back('}');
      }
      out.append("]}");
    }
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

}  // namespace eva
