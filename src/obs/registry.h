// Telemetry registry: named counters, gauges, log2-bucket histograms and a
// virtual-time-bucketed time-series sampler behind one uniform, serialisable
// schema.
//
// This is the one funnel every subsystem's stats flow through on their way
// into bench JSON — `SchedulerCounters`, `FaultStats`, `FederationStats`
// (see obs/publish.h) and the per-round market/queue series the simulator
// samples. Names are dot-namespaced ("scheduler.packs_full",
// "faults.tasks_lost", "ts.queue_depth") and JSON export is sorted by name,
// so the schema a bench row emits is stable and diffable.
//
// Concurrency: a registry is SINGLE-WRITER. Simulators run their event
// loops serially, so a per-tenant registry needs no locks; the federation
// driver does not hand one registry to many tenants — it publishes the
// aggregate itself after the parallel phase. Time-series bucketing is in
// virtual time, so sampled series are deterministic across pool sizes.

#ifndef SRC_OBS_REGISTRY_H_
#define SRC_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

namespace eva {

class TelemetryRegistry {
 public:
  // Power-of-two bucketed value distribution: bucket 0 counts values < 1,
  // bucket i >= 1 counts values in [2^(i-1), 2^i).
  class Histogram {
   public:
    void Record(std::int64_t value);
    std::int64_t count() const { return count_; }
    std::int64_t sum() const { return sum_; }
    std::int64_t min() const { return min_; }
    std::int64_t max() const { return max_; }
    // Count in log2 bucket `index` (0..63).
    std::int64_t bucket(int index) const;

   private:
    friend class TelemetryRegistry;
    std::int64_t count_ = 0;
    std::int64_t sum_ = 0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
    std::int64_t buckets_[64] = {};
  };

  // Fixed-width virtual-time buckets aggregating count/sum/min/max/last.
  // Bucketing by virtual time (not sample index) makes the series
  // comparable across runs whose event interleavings differ.
  class TimeSeries {
   public:
    void Sample(double t_s, double value);
    std::int64_t num_buckets() const {
      return static_cast<std::int64_t>(buckets_.size());
    }
    double bucket_width_s() const { return bucket_width_s_; }

   private:
    friend class TelemetryRegistry;
    struct Bucket {
      std::int64_t count = 0;
      double sum = 0.0;
      double min = 0.0;
      double max = 0.0;
      double last = 0.0;
    };
    double bucket_width_s_ = 3600.0;
    std::map<std::int64_t, Bucket> buckets_;
  };

  // Monotonic counter. Inc creates at zero on first touch.
  void Inc(const std::string& name, std::int64_t delta = 1);
  void SetCounter(const std::string& name, std::int64_t value);
  std::int64_t CounterValue(const std::string& name) const;

  void SetGauge(const std::string& name, double value);
  double GaugeValue(const std::string& name) const;

  Histogram& Hist(const std::string& name);

  // Returns the named series, creating it with the given bucket width on
  // first touch (the width is fixed thereafter).
  TimeSeries& Series(const std::string& name, double bucket_width_s = 3600.0);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           series_.empty();
  }
  void Clear();

  // One JSON object, groups and names sorted, deterministic number
  // formatting: {"counters":{...},"gauges":{...},"histograms":{...},
  // "series":{...}} — empty groups omitted. This object is what bench rows
  // embed under their "telemetry" key.
  std::string ToJson() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace eva

#endif  // SRC_OBS_REGISTRY_H_
