#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "src/obs/json_util.h"

namespace eva {

using obs_internal::AppendJsonNumber;
using obs_internal::AppendJsonString;

std::uint32_t TraceRecorder::RegisterTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(register_mutex_);
  tracks_.emplace_back();
  tracks_.back().name = name;
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void TraceRecorder::Push(std::uint32_t track, Phase phase, double start_s,
                         double end_s, const char* name,
                         const char* arg0_name, double arg0,
                         const char* arg1_name, double arg1) {
  // No lock: each track has exactly one emitter at a time (a simulator's
  // event loop is serial; the federation driver emits only between parallel
  // phases), and the deque never moves existing Track objects.
  Track& t = tracks_[track];
  Span span;
  span.start_s = start_s;
  span.end_s = end_s;
  span.seq = t.emitted;
  span.name = name;
  span.arg0_name = arg0_name;
  span.arg1_name = arg1_name;
  span.arg0 = arg0;
  span.arg1 = arg1;
  span.phase = phase;
  if (t.ring.size() < options_.max_spans_per_track) {
    t.ring.push_back(span);
  } else {
    t.ring[static_cast<std::size_t>(t.emitted % options_.max_spans_per_track)] =
        span;
  }
  ++t.emitted;
}

std::size_t TraceRecorder::num_tracks() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  return tracks_.size();
}

std::uint64_t TraceRecorder::TotalEmitted() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  std::uint64_t total = 0;
  for (const Track& t : tracks_) total += t.emitted;
  return total;
}

std::uint64_t TraceRecorder::TotalRetained() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  std::uint64_t total = 0;
  for (const Track& t : tracks_) total += t.ring.size();
  return total;
}

std::string TraceRecorder::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(register_mutex_);

  struct Entry {
    const Span* span;
    std::uint32_t track;
  };
  std::vector<Entry> entries;
  std::uint64_t retained = 0;
  for (const Track& t : tracks_) retained += t.ring.size();
  entries.reserve(retained);
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    for (const Span& span : tracks_[i].ring) {
      entries.push_back({&span, i});
    }
  }
  // Merge order is a pure function of the recorded spans: virtual time,
  // then track id, then the track's own emit sequence.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return std::make_tuple(a.span->start_s, a.track, a.span->seq) <
           std::make_tuple(b.span->start_s, b.track, b.span->seq);
  });

  std::string out;
  out.reserve(128 + entries.size() * 96);
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  auto comma = [&] {
    if (!first) out.append(",\n");
    first = false;
  };
  char buf[64];
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":",
                  i);
    out.append(buf);
    AppendJsonString(&out, tracks_[i].name);
    out.append("}}");
  }
  for (const Entry& entry : entries) {
    const Span& span = *entry.span;
    comma();
    const char phase = span.phase == kInstant   ? 'i'
                       : span.phase == kComplete ? 'X'
                                                 : 'C';
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"%c\",\"pid\":0,\"tid\":%u,",
                  phase, entry.track);
    out.append(buf);
    // Timestamps are virtual seconds rendered as trace_event microseconds.
    std::snprintf(buf, sizeof(buf), "\"ts\":%.3f,", span.start_s * 1e6);
    out.append(buf);
    if (span.phase == kComplete) {
      std::snprintf(buf, sizeof(buf), "\"dur\":%.3f,",
                    (span.end_s - span.start_s) * 1e6);
      out.append(buf);
    }
    if (span.phase == kInstant) {
      out.append("\"s\":\"t\",");
    }
    out.append("\"name\":");
    AppendJsonString(&out, span.name != nullptr ? span.name : "");
    if (span.arg0_name != nullptr) {
      out.append(",\"args\":{");
      AppendJsonString(&out, span.arg0_name);
      out.push_back(':');
      AppendJsonNumber(&out, span.arg0);
      if (span.arg1_name != nullptr) {
        out.push_back(',');
        AppendJsonString(&out, span.arg1_name);
        out.push_back(':');
        AppendJsonNumber(&out, span.arg1);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out.append("\n]}\n");
  return out;
}

bool TraceRecorder::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (written != json.size()) std::fclose(file);
  return ok;
}

}  // namespace eva
