// Divergence flight recorder: a rolling window of per-round digests with a
// diff that pinpoints the first round where two runs disagree.
//
// Determinism failures used to be debugged by bisecting golden blobs: two
// runs' final metrics differ and nothing says *when* they forked. The
// flight recorder fixes that. Every scheduling round (coalesced ones too)
// the simulator appends a cheap digest — config hash, live hourly cost,
// cumulative event/job counts, the RNG cursor — and DiffFirstDivergence
// walks two recorders to the first round and first field that disagree.
// The RNG cursor is the sharpest signal: a stray draw diverges the cursor
// on the exact round it happened, long before costs drift.
//
// Digests carry only values derived from virtual time and simulation state,
// so two runs of the same seed produce identical windows at any pool size.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace eva {

struct RoundDigest {
  std::int64_t round = -1;   // Assigned by FlightRecorder::Record.
  double t_s = 0.0;          // Virtual time of the round.
  std::uint64_t config_hash = 0;  // Hash of the applied cluster config.
  std::uint64_t rng_hash = 0;     // Simulator RNG state hash (the cursor).
  double hourly_cost = 0.0;       // Sum of live instances' hourly prices.
  std::int64_t events_processed = 0;  // Cumulative engine events.
  std::int64_t jobs_completed = 0;
  std::int64_t active_jobs = 0;
  std::int64_t live_instances = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t window = 1024)
      : window_(window > 0 ? window : 1) {}

  // Appends a digest; its `round` field is overwritten with the recorder's
  // own monotonic round index. O(1), no allocation once the window filled.
  void Record(const RoundDigest& digest);

  // Total rounds ever recorded (retained window is the trailing min(window,
  // rounds_recorded()) of them).
  std::int64_t rounds_recorded() const { return count_; }
  // First round index still retained in the window.
  std::int64_t first_retained() const;

  // Digest for an absolute round index, or nullptr if outside the window.
  const RoundDigest* Get(std::int64_t round) const;
  // Mutable access for tests (perturbation injection).
  RoundDigest* MutableDigest(std::int64_t round);

  void Clear();

 private:
  std::size_t window_;
  std::vector<RoundDigest> ring_;
  std::int64_t count_ = 0;
};

struct DivergenceReport {
  std::int64_t round = 0;  // First diverging round.
  std::string field;       // Digest field that differs there.
  double value_a = 0.0;    // The two runs' values for that field
  double value_b = 0.0;    // (numeric view; hashes print as integers).

  std::string ToString() const;
};

// Compares two recorders over the rounds both retain and returns the first
// (round, field) where they disagree — or nullopt when the overlapping
// window is identical and both recorded the same number of rounds. Fields
// are checked in causal sharpness order (RNG cursor and config hash before
// derived aggregates), so `field` names the most diagnostic mismatch.
std::optional<DivergenceReport> DiffFirstDivergence(const FlightRecorder& a,
                                                    const FlightRecorder& b);

}  // namespace eva

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
