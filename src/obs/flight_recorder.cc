#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace eva {

void FlightRecorder::Record(const RoundDigest& digest) {
  RoundDigest stamped = digest;
  stamped.round = count_;
  if (ring_.size() < window_) {
    ring_.push_back(stamped);
  } else {
    ring_[static_cast<std::size_t>(count_ % static_cast<std::int64_t>(
                                                window_))] = stamped;
  }
  ++count_;
}

std::int64_t FlightRecorder::first_retained() const {
  const std::int64_t retained = static_cast<std::int64_t>(ring_.size());
  return count_ - retained;
}

const RoundDigest* FlightRecorder::Get(std::int64_t round) const {
  if (round < first_retained() || round >= count_) return nullptr;
  return &ring_[static_cast<std::size_t>(round %
                                         static_cast<std::int64_t>(window_))];
}

RoundDigest* FlightRecorder::MutableDigest(std::int64_t round) {
  return const_cast<RoundDigest*>(
      static_cast<const FlightRecorder*>(this)->Get(round));
}

void FlightRecorder::Clear() {
  ring_.clear();
  count_ = 0;
}

std::string DivergenceReport::ToString() const {
  char buf[160];
  if (field == "config_hash" || field == "rng_hash") {
    std::snprintf(buf, sizeof(buf),
                  "first divergence at round %" PRId64
                  ": %s %016" PRIx64 " vs %016" PRIx64,
                  round, field.c_str(), static_cast<std::uint64_t>(value_a),
                  static_cast<std::uint64_t>(value_b));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "first divergence at round %" PRId64 ": %s %.9g vs %.9g",
                  round, field.c_str(), value_a, value_b);
  }
  return buf;
}

std::optional<DivergenceReport> DiffFirstDivergence(const FlightRecorder& a,
                                                    const FlightRecorder& b) {
  const std::int64_t first =
      std::max(a.first_retained(), b.first_retained());
  const std::int64_t last =
      std::min(a.rounds_recorded(), b.rounds_recorded());
  for (std::int64_t round = first; round < last; ++round) {
    const RoundDigest* da = a.Get(round);
    const RoundDigest* db = b.Get(round);
    // Sharpest-first: a diverging RNG cursor or config hash names the
    // culprit round exactly; cost and counts are downstream symptoms.
    struct FieldView {
      const char* name;
      double va;
      double vb;
      bool equal;
    };
    const FieldView fields[] = {
        {"rng_hash", static_cast<double>(da->rng_hash),
         static_cast<double>(db->rng_hash), da->rng_hash == db->rng_hash},
        {"config_hash", static_cast<double>(da->config_hash),
         static_cast<double>(db->config_hash),
         da->config_hash == db->config_hash},
        {"t_s", da->t_s, db->t_s, da->t_s == db->t_s},
        {"hourly_cost", da->hourly_cost, db->hourly_cost,
         da->hourly_cost == db->hourly_cost},
        {"events_processed", static_cast<double>(da->events_processed),
         static_cast<double>(db->events_processed),
         da->events_processed == db->events_processed},
        {"jobs_completed", static_cast<double>(da->jobs_completed),
         static_cast<double>(db->jobs_completed),
         da->jobs_completed == db->jobs_completed},
        {"active_jobs", static_cast<double>(da->active_jobs),
         static_cast<double>(db->active_jobs),
         da->active_jobs == db->active_jobs},
        {"live_instances", static_cast<double>(da->live_instances),
         static_cast<double>(db->live_instances),
         da->live_instances == db->live_instances},
    };
    for (const FieldView& field : fields) {
      if (!field.equal) {
        DivergenceReport report;
        report.round = round;
        report.field = field.name;
        report.value_a = field.va;
        report.value_b = field.vb;
        return report;
      }
    }
  }
  if (a.rounds_recorded() != b.rounds_recorded()) {
    DivergenceReport report;
    report.round = last;
    report.field = "rounds_recorded";
    report.value_a = static_cast<double>(a.rounds_recorded());
    report.value_b = static_cast<double>(b.rounds_recorded());
    return report;
  }
  return std::nullopt;
}

}  // namespace eva
