// Deterministic JSON fragment helpers shared by the obs serialisers.
//
// Trace and registry exports are diffed byte-for-byte by the determinism
// tests, so every number must format identically across runs, platforms and
// pool sizes: integers (the overwhelmingly common case — counters, ids,
// event counts) print as integers, everything else through one fixed %.9g.

#ifndef SRC_OBS_JSON_UTIL_H_
#define SRC_OBS_JSON_UTIL_H_

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace eva {
namespace obs_internal {

inline void AppendJsonNumber(std::string* out, double value) {
  char buf[64];
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; 0 keeps the document parseable and the bytes
    // deterministic (finite values are the contract, this is a backstop).
    out->append("0");
    return;
  }
  if (value == std::floor(value) && std::fabs(value) <= 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  out->append(buf);
}

inline void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace obs_internal
}  // namespace eva

#endif  // SRC_OBS_JSON_UTIL_H_
