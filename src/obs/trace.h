// Deterministic structured tracing for the simulator.
//
// TraceRecorder keeps one lock-free ring buffer per *track* — a logical
// event stream such as one tenant's simulator, the federation driver, or a
// bench harness. Tracks, not OS threads, are the unit of concurrency here
// on purpose: every Simulator processes its events serially (the federation
// driver parallelises *across* tenants, never within one), so a per-track
// ring needs no synchronisation on the emit path and, more importantly, its
// span sequence is identical no matter how many pool threads the run used.
// A per-OS-thread recorder would be lock-free too, but its interleaving
// would depend on the pool schedule and the export could never be
// bit-deterministic.
//
// Spans are stamped in *virtual* time (SimTime seconds). Wall-clock values
// are deliberately unrepresentable: a trace recorded twice from the same
// seed — at any pool size — serialises to byte-identical JSON, so traces
// can be diffed like goldens. Export is Chrome trace_event JSON
// (chrome://tracing / Perfetto): each track becomes a named "thread".
//
// Emit-path cost when tracing is off is a null-pointer test in the caller;
// the recorder itself is only ever touched when the user installed one via
// ObservabilityOptions.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace eva {

class TraceRecorder {
 public:
  struct Options {
    // Per-track ring capacity. When a track overflows, the oldest spans are
    // dropped — deterministically, since drops depend only on the span
    // sequence, never on timing.
    std::size_t max_spans_per_track = 1 << 16;
  };

  TraceRecorder() = default;
  explicit TraceRecorder(Options options) : options_(options) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Registers a named track and returns its id. Serialised by a mutex so
  // setup code (e.g. the federation driver constructing tenants) may call
  // it freely; emit calls for an existing track never take the lock.
  std::uint32_t RegisterTrack(const std::string& name);

  // Instant event ("i" phase) at virtual time now_s. `name` and the arg
  // names must be string literals (or otherwise outlive the recorder):
  // spans intern the pointer, not the bytes.
  void Instant(std::uint32_t track, const char* name, double now_s) {
    Push(track, kInstant, now_s, now_s, name, nullptr, 0.0, nullptr, 0.0);
  }
  void Instant(std::uint32_t track, const char* name, double now_s,
               const char* arg0_name, double arg0) {
    Push(track, kInstant, now_s, now_s, name, arg0_name, arg0, nullptr, 0.0);
  }
  void Instant(std::uint32_t track, const char* name, double now_s,
               const char* arg0_name, double arg0, const char* arg1_name,
               double arg1) {
    Push(track, kInstant, now_s, now_s, name, arg0_name, arg0, arg1_name,
         arg1);
  }

  // Complete span ("X" phase) covering virtual [start_s, end_s].
  void Complete(std::uint32_t track, const char* name, double start_s,
                double end_s) {
    Push(track, kComplete, start_s, end_s, name, nullptr, 0.0, nullptr, 0.0);
  }
  void Complete(std::uint32_t track, const char* name, double start_s,
                double end_s, const char* arg0_name, double arg0) {
    Push(track, kComplete, start_s, end_s, name, arg0_name, arg0, nullptr,
         0.0);
  }
  void Complete(std::uint32_t track, const char* name, double start_s,
                double end_s, const char* arg0_name, double arg0,
                const char* arg1_name, double arg1) {
    Push(track, kComplete, start_s, end_s, name, arg0_name, arg0, arg1_name,
         arg1);
  }

  // Counter sample ("C" phase): renders as a track-local graph in the
  // trace viewer.
  void Counter(std::uint32_t track, const char* name, double now_s,
               double value) {
    Push(track, kCounter, now_s, now_s, name, "value", value, nullptr, 0.0);
  }

  std::size_t num_tracks() const;
  // Total spans emitted (including ones since dropped by ring wrap).
  std::uint64_t TotalEmitted() const;
  // Spans currently retained across all tracks.
  std::uint64_t TotalRetained() const;

  // Serialises all retained spans as Chrome trace_event JSON, merge-sorted
  // by (timestamp, track, per-track sequence) so the bytes are independent
  // of emit interleaving across tracks. Deterministic number formatting
  // throughout: same spans ⇒ same bytes.
  std::string ToChromeJson() const;

  // ToChromeJson straight to a file. Returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  enum Phase : std::uint8_t { kInstant, kComplete, kCounter };

  struct Span {
    double start_s = 0.0;
    double end_s = 0.0;
    std::uint64_t seq = 0;  // per-track emit index, for stable sort keys
    const char* name = nullptr;
    const char* arg0_name = nullptr;
    const char* arg1_name = nullptr;
    double arg0 = 0.0;
    double arg1 = 0.0;
    Phase phase = kInstant;
  };

  struct Track {
    std::string name;
    std::vector<Span> ring;   // grows to capacity, then wraps by seq % cap
    std::uint64_t emitted = 0;
  };

  void Push(std::uint32_t track, Phase phase, double start_s, double end_s,
            const char* name, const char* arg0_name, double arg0,
            const char* arg1_name, double arg1);

  Options options_;
  // deque: Track addresses stay stable across RegisterTrack, so concurrent
  // emits on existing tracks are safe while a new track registers.
  std::deque<Track> tracks_;
  mutable std::mutex register_mutex_;
};

// A (recorder, track) pair handed to subsystems that emit on someone
// else's track — e.g. the scheduler emits pack spans onto its simulator's
// track. Null recorder ⇒ tracing off; test with operator bool.
struct TraceBinding {
  TraceRecorder* recorder = nullptr;
  std::uint32_t track = 0;

  explicit operator bool() const { return recorder != nullptr; }
};

}  // namespace eva

#endif  // SRC_OBS_TRACE_H_
