#include "src/obs/publish.h"

#include "src/sched/types.h"
#include "src/sim/federation.h"
#include "src/sim/metrics.h"

namespace eva {

void PublishSchedulerCounters(const SchedulerCounters& counters,
                              TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  registry->SetCounter("scheduler.packs_full", counters.packs_full);
  registry->SetCounter("scheduler.packs_incremental",
                       counters.packs_incremental);
  registry->SetCounter("scheduler.packs_escalated", counters.packs_escalated);
  registry->SetCounter("scheduler.reconciliations", counters.reconciliations);
  registry->SetCounter("scheduler.escalations", counters.escalations);
  registry->SetCounter("scheduler.fallback_incomplete_delta",
                       counters.fallback_incomplete_delta);
  registry->SetCounter("scheduler.fallback_oversized_delta",
                       counters.fallback_oversized_delta);
  registry->SetCounter("scheduler.fallback_no_previous",
                       counters.fallback_no_previous);
  registry->SetCounter("scheduler.last_divergence_edits",
                       counters.last_divergence_edits);
  registry->SetCounter("scheduler.max_divergence_edits",
                       counters.max_divergence_edits);
  registry->SetCounter("scheduler.max_kept_staleness",
                       counters.max_kept_staleness);
  registry->SetGauge("scheduler.last_divergence_cost",
                     counters.last_divergence_cost);
  registry->SetGauge("scheduler.max_divergence_cost",
                     counters.max_divergence_cost);
}

void PublishFaultStats(const FaultStats& faults, TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  registry->SetCounter("faults.zone_outages", faults.zone_outages);
  registry->SetCounter("faults.correlated_failures",
                       faults.correlated_failures);
  registry->SetCounter("faults.maintenance_drains", faults.maintenance_drains);
  registry->SetCounter("faults.instances_killed", faults.instances_killed);
  registry->SetCounter("faults.instances_drained", faults.instances_drained);
  registry->SetCounter("faults.tasks_evicted", faults.tasks_evicted);
  registry->SetCounter("faults.tasks_lost", faults.tasks_lost);
  registry->SetCounter("faults.replacements_completed",
                       faults.replacements_completed);
  registry->SetGauge("faults.lost_work_seconds", faults.lost_work_seconds);
  registry->SetGauge("faults.replacement_latency_min_s",
                     faults.replacement_latency_min_s);
  registry->SetGauge("faults.replacement_latency_median_s",
                     faults.replacement_latency_median_s);
  registry->SetGauge("faults.replacement_latency_p95_s",
                     faults.replacement_latency_p95_s);
  registry->SetGauge("faults.goodput_ratio", faults.goodput_ratio);
}

void PublishFederationStats(const FederationStats& stats,
                            TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  registry->SetCounter("federation.barriers", stats.barriers);
  registry->SetCounter("federation.round_participants",
                       stats.round_participants);
  registry->SetCounter("federation.round_groups", stats.round_groups);
  registry->SetCounter("federation.largest_group_participants",
                       stats.largest_group_participants);
  // Deliberately no wall-clock gauges: registry output must be a
  // deterministic function of the run (bench rows already carry the wall
  // times as flat fields). SerialShare is a pure counter ratio.
  registry->SetGauge("federation.serial_share", stats.SerialShare());
}

void PublishSimulationMetrics(const SimulationMetrics& metrics,
                              TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  registry->SetCounter("sim.jobs_submitted", metrics.jobs_submitted);
  registry->SetCounter("sim.jobs_completed", metrics.jobs_completed);
  registry->SetCounter("sim.tasks_total", metrics.tasks_total);
  registry->SetCounter("sim.instances_launched", metrics.instances_launched);
  registry->SetCounter("sim.task_migrations", metrics.task_migrations);
  registry->SetCounter("sim.scheduling_rounds", metrics.scheduling_rounds);
  registry->SetCounter("sim.rounds_coalesced", metrics.rounds_coalesced);
  registry->SetCounter("sim.events_processed", metrics.events_processed);
  registry->SetCounter("sim.acquisitions_denied", metrics.acquisitions_denied);
  registry->SetCounter("sim.spot_instances_launched",
                       metrics.spot_instances_launched);
  registry->SetCounter("sim.spot_preemptions", metrics.spot_preemptions);
  registry->SetGauge("sim.total_cost", metrics.total_cost);
  registry->SetGauge("sim.spot_cost", metrics.spot_cost);
  registry->SetGauge("sim.avg_jct_hours", metrics.avg_jct_hours);
  registry->SetGauge("sim.avg_job_idle_hours", metrics.avg_job_idle_hours);
  registry->SetGauge("sim.avg_tasks_per_instance",
                     metrics.avg_tasks_per_instance);
  registry->SetGauge("sim.avg_norm_job_throughput",
                     metrics.avg_norm_job_throughput);
  registry->SetGauge("sim.makespan_s", metrics.makespan_s);
  // scheduler_wall_seconds is deliberately omitted: wall-clock values would
  // break the registry's run-to-run byte determinism. Bench rows report it
  // as a flat field instead.
  PublishSchedulerCounters(metrics.scheduler_counters, registry);
  PublishFaultStats(metrics.faults, registry);
}

}  // namespace eva
