// Bridges from the legacy stat structs to the telemetry registry.
//
// SchedulerCounters, FaultStats, FederationStats and SimulationMetrics each
// predate the registry and are still the in-memory working form; these
// publishers project them onto dot-namespaced registry names so every bench
// driver emits them under one uniform, sorted schema instead of hand-rolled
// JSON fragments. Publishing is idempotent (SetCounter/SetGauge, not Inc).

#ifndef SRC_OBS_PUBLISH_H_
#define SRC_OBS_PUBLISH_H_

#include "src/obs/registry.h"

namespace eva {

struct SchedulerCounters;
struct FaultStats;
struct FederationStats;
struct SimulationMetrics;

// "scheduler.*": pack mix, fallbacks, reconciliation divergence.
void PublishSchedulerCounters(const SchedulerCounters& counters,
                              TelemetryRegistry* registry);

// "faults.*": injected faults, kills/drains, lost work, goodput.
void PublishFaultStats(const FaultStats& faults, TelemetryRegistry* registry);

// "federation.*": barriers, conflict grouping, phase wall times.
void PublishFederationStats(const FederationStats& stats,
                            TelemetryRegistry* registry);

// "sim.*" plus the nested scheduler.* and faults.* groups — the full
// per-run projection the simulator publishes at Finish.
void PublishSimulationMetrics(const SimulationMetrics& metrics,
                              TelemetryRegistry* registry);

}  // namespace eva

#endif  // SRC_OBS_PUBLISH_H_
