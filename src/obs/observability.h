// Per-simulator observability switchboard.
//
// SimulatorOptions carries one of these. Everything defaults to off/null:
// the simulator's hot paths guard each sink with a single pointer test, so
// a run with the default options does zero observability work — goldens
// stay bit-exact and the allocs/event gate is unaffected.
//
// All sinks are caller-owned, outliving the simulator: the same
// TraceRecorder is typically shared by every tenant of a federation (each
// on its own track), while FlightRecorder and TelemetryRegistry are
// single-writer and therefore per-simulator.

#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include <string>

#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace eva {

struct ObservabilityOptions {
  // Master switch; when false the sinks below are ignored entirely.
  bool enabled = false;

  // Span sink. The simulator registers its own track at construction
  // (named `track_name`, or "tenant<id>" when empty) and hands a binding
  // to its scheduler and solver.
  TraceRecorder* trace = nullptr;

  // Per-round digest sink for DiffFirstDivergence.
  FlightRecorder* flight_recorder = nullptr;

  // Counter/gauge/series sink; published at Finish and sampled per round.
  TelemetryRegistry* registry = nullptr;

  // Also emit one instant span per engine event (arrivals, launches,
  // completions...). Orders of magnitude more spans than round-level
  // tracing; off by default even when tracing is on.
  bool trace_engine_events = false;

  // Virtual-time bucket width for registry time series.
  double timeseries_bucket_s = 3600.0;

  std::string track_name;
};

}  // namespace eva

#endif  // SRC_OBS_OBSERVABILITY_H_
