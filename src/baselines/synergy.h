// Synergy (Mohan et al., OSDI '22) adapted to cloud-based clusters (§6.1).
//
// Synergy's best-fit packing minimizes resource fragmentation in a
// fixed-size cluster. The paper adapts it for variable-size clouds by
// launching the lowest-cost instance type that accommodates a task whenever
// no existing instance has capacity, and enhances the placement test to be
// interference-aware via throughput-normalized reservation price: a task
// joins an existing instance only if doing so does not lower the set's
// TNRP. Like Stratus, Synergy performs no proactive migration. It learns
// interference online through the same observation channel Eva uses.

#ifndef SRC_BASELINES_SYNERGY_H_
#define SRC_BASELINES_SYNERGY_H_

#include "src/core/throughput_monitor.h"
#include "src/sched/scheduler.h"

namespace eva {

class SynergyScheduler : public Scheduler {
 public:
  explicit SynergyScheduler(double default_pairwise_throughput = 0.95);

  std::string name() const override { return "Synergy"; }
  ClusterConfig Schedule(const SchedulingContext& context) override;
  void ObserveThroughput(const std::vector<JobThroughputObservation>& observations) override;

 private:
  ThroughputMonitor monitor_;
};

}  // namespace eva

#endif  // SRC_BASELINES_SYNERGY_H_
