#include "src/baselines/owl.h"

#include <algorithm>

#include "src/baselines/baseline_util.h"
#include "src/common/format.h"
#include "src/common/logging.h"
#include "src/sched/reservation_price.h"

namespace eva {

OwlScheduler::OwlScheduler(const ThroughputEstimator* profile)
    : OwlScheduler(profile, Options{}) {}

OwlScheduler::OwlScheduler(const ThroughputEstimator* profile, Options options)
    : profile_(profile), options_(options) {}

ClusterConfig OwlScheduler::Schedule(const SchedulingContext& context) {
  // The calculator reads the granted profile directly; no context copy.
  const TnrpCalculator calculator(context, {}, profile_);

  ClusterConfig config;
  // Keep instances that already host two or more tasks; their pairing is
  // final. Instances hosting exactly one task re-enter the pairing pool
  // (consolidating two running singletons costs one migration, which Owl
  // accepts when the profile certifies the pair).
  std::vector<const TaskInfo*> pool;
  for (const ConfigInstance& kept : KeepNonEmptyInstances(context)) {
    if (kept.tasks.size() >= 2) {
      config.instances.push_back(kept);
    } else {
      pool.push_back(context.FindTask(kept.tasks.front()));
    }
  }
  for (const TaskInfo* task : UnassignedTasksByRp(context)) {
    pool.push_back(task);
  }

  // Enumerate candidate pairs and their cost-efficiency ratios.
  struct PairCandidate {
    std::size_t a;
    std::size_t b;
    int type_index;
    double ratio;
  };
  std::vector<PairCandidate> candidates;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      const TaskInfo& a = *pool[i];
      const TaskInfo& b = *pool[j];
      const double tput_a = profile_->Estimate(a.workload, {b.workload});
      const double tput_b = profile_->Estimate(b.workload, {a.workload});
      if (std::min(tput_a, tput_b) < options_.min_pair_throughput) {
        continue;
      }
      const std::optional<int> type_index =
          context.catalog->CheapestFitting([&a, &b](InstanceFamily family) {
            return a.DemandFor(family) + b.DemandFor(family);
          });
      if (!type_index.has_value()) {
        continue;
      }
      const Money cost = context.catalog->Get(*type_index).cost_per_hour;
      const Money tnrp = calculator.SetTnrp({&a, &b});
      if (cost <= 0.0) {
        continue;
      }
      const double ratio = tnrp / cost;
      if (ratio >= options_.min_cost_ratio) {
        candidates.push_back({i, j, *type_index, ratio});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PairCandidate& x, const PairCandidate& y) {
              if (x.ratio != y.ratio) {
                return x.ratio > y.ratio;
              }
              if (x.a != y.a) {
                return x.a < y.a;
              }
              return x.b < y.b;
            });

  std::vector<bool> taken(pool.size(), false);
  for (const PairCandidate& candidate : candidates) {
    if (taken[candidate.a] || taken[candidate.b]) {
      continue;
    }
    taken[candidate.a] = true;
    taken[candidate.b] = true;
    ConfigInstance instance;
    instance.type_index = candidate.type_index;
    instance.tasks = {pool[candidate.a]->id, pool[candidate.b]->id};
    config.instances.push_back(std::move(instance));
  }

  // Unpaired tasks run standalone. A task already running alone keeps its
  // instance only when that instance is already the cheapest type fitting
  // it; a survivor stranded on an oversized ex-pair instance is relocated
  // to its reservation-price instance (otherwise the oversized box bleeds
  // money for the rest of a potentially long job).
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (taken[i]) {
      continue;
    }
    const TaskInfo& task = *pool[i];
    const std::optional<int> type_index = context.catalog->CheapestFitting(
        [&task](InstanceFamily family) { return task.DemandFor(family); });
    if (!type_index.has_value()) {
      EVA_LOG_WARNING("no instance type fits task " EVA_PRId64, task.id);
      continue;
    }
    ConfigInstance instance;
    if (task.current_instance != kInvalidInstanceId) {
      const InstanceInfo* existing = context.FindInstance(task.current_instance);
      if (existing != nullptr && existing->type_index == *type_index) {
        instance.type_index = existing->type_index;
        instance.reuse_instance = existing->id;
        instance.tasks.push_back(task.id);
        config.instances.push_back(std::move(instance));
        continue;
      }
    }
    instance.type_index = *type_index;
    instance.tasks.push_back(task.id);
    config.instances.push_back(std::move(instance));
  }
  return config;
}

}  // namespace eva
