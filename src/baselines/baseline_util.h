// Shared helpers for the incremental baseline schedulers (No-Packing,
// Stratus, Synergy, Owl): all of them keep the current placement and only
// decide where newly arrived tasks go, terminating instances that drained.

#ifndef SRC_BASELINES_BASELINE_UTIL_H_
#define SRC_BASELINES_BASELINE_UTIL_H_

#include <vector>

#include "src/sched/types.h"

namespace eva {

// Config entries for every running instance that still hosts tasks, with
// reuse ids set so the differ leaves them untouched. Instances with no
// remaining tasks are omitted (== terminated).
std::vector<ConfigInstance> KeepNonEmptyInstances(const SchedulingContext& context);

// Tasks that have not been placed yet, in descending reservation-price
// order (deterministic tie-break by id).
std::vector<const TaskInfo*> UnassignedTasksByRp(const SchedulingContext& context);

// Remaining capacity of a config entry on its instance type.
ResourceVector RemainingCapacity(const SchedulingContext& context,
                                 const ConfigInstance& instance);

// Live TaskInfo pointers for a config entry's tasks.
std::vector<const TaskInfo*> MembersOf(const SchedulingContext& context,
                                       const ConfigInstance& instance);

}  // namespace eva

#endif  // SRC_BASELINES_BASELINE_UTIL_H_
