// Owl (Tian et al., SoCC '22) adapted to cloud-based clusters (§6.1).
//
// Owl avoids interference by only co-locating task *pairs* whose profiled
// interference is low. The paper grants Owl the full offline pairwise
// profile (the same ground truth the simulator runs on) and extends its
// algorithm to optimize cost: candidate pairs are considered in descending
// ratio of the pair's TNRP to the cost of the cheapest instance type that
// fits both tasks, and a pair is formed only when that ratio certifies
// cost-efficiency and both tasks keep throughput above an interference
// threshold. Unpaired tasks run alone; instances hosting pairs are never
// repacked further.

#ifndef SRC_BASELINES_OWL_H_
#define SRC_BASELINES_OWL_H_

#include "src/sched/scheduler.h"
#include "src/sched/throughput_estimator.h"

namespace eva {

class OwlScheduler : public Scheduler {
 public:
  struct Options {
    // Minimum pairwise throughput either member of a pair may have.
    double min_pair_throughput = 0.85;

    // Minimum TNRP(pair)/cost ratio to certify the pair as cost-efficient.
    double min_cost_ratio = 1.0;
  };

  // `profile` is the offline interference profile (ground-truth oracle).
  explicit OwlScheduler(const ThroughputEstimator* profile);
  OwlScheduler(const ThroughputEstimator* profile, Options options);

  std::string name() const override { return "Owl"; }
  ClusterConfig Schedule(const SchedulingContext& context) override;

 private:
  const ThroughputEstimator* profile_;
  Options options_;
};

}  // namespace eva

#endif  // SRC_BASELINES_OWL_H_
