#include "src/baselines/stratus.h"

#include <algorithm>
#include <cmath>

#include "src/baselines/baseline_util.h"
#include "src/common/format.h"
#include "src/common/logging.h"

namespace eva {

StratusScheduler::StratusScheduler() : StratusScheduler(Options{}) {}

StratusScheduler::StratusScheduler(Options options) : options_(options) {}

int StratusScheduler::RuntimeBin(const TaskInfo& task) const {
  const double hours = std::max(SecondsToHours(std::max(task.remaining_work_s, 0.0)),
                                options_.bin_base_hours);
  return static_cast<int>(std::floor(std::log2(hours / options_.bin_base_hours)));
}

ClusterConfig StratusScheduler::Schedule(const SchedulingContext& context) {
  ClusterConfig config;
  config.instances = KeepNonEmptyInstances(context);

  // Bin of an instance: the bin of its longest-remaining task, mirroring
  // Stratus's rule that the instance is released when its longest task ends.
  auto instance_bin = [&](const ConfigInstance& instance) {
    int bin = 0;
    bool first = true;
    for (const TaskInfo* member : MembersOf(context, instance)) {
      const int b = RuntimeBin(*member);
      bin = first ? b : std::max(bin, b);
      first = false;
    }
    return bin;
  };

  std::vector<const TaskInfo*> waiting = UnassignedTasksByRp(context);
  std::vector<bool> placed(waiting.size(), false);

  for (std::size_t i = 0; i < waiting.size(); ++i) {
    if (placed[i]) {
      continue;
    }
    const TaskInfo& task = *waiting[i];
    const int bin = RuntimeBin(task);

    // 1. Best-fit among existing instances in the same runtime bin: pick
    // the fitting instance with the least remaining capacity (measured on
    // the bottleneck CPU dimension) so larger holes stay available.
    int best_index = -1;
    double best_slack = 0.0;
    for (std::size_t k = 0; k < config.instances.size(); ++k) {
      const ConfigInstance& candidate = config.instances[k];
      if (instance_bin(candidate) != bin) {
        continue;
      }
      const InstanceType& type = context.catalog->Get(candidate.type_index);
      const ResourceVector remaining = RemainingCapacity(context, candidate);
      if (!task.DemandFor(type.family).FitsWithin(remaining)) {
        continue;
      }
      const double slack = remaining.cpus() - task.DemandFor(type.family).cpus();
      if (best_index < 0 || slack < best_slack) {
        best_index = static_cast<int>(k);
        best_slack = slack;
      }
    }
    if (best_index >= 0) {
      config.instances[static_cast<std::size_t>(best_index)].tasks.push_back(task.id);
      placed[i] = true;
      continue;
    }

    // 2. Open a fresh instance of the cheapest type fitting the task, then
    // greedily pull in other waiting tasks from the same bin.
    const std::optional<int> type_index = context.catalog->CheapestFitting(
        [&task](InstanceFamily family) { return task.DemandFor(family); });
    if (!type_index.has_value()) {
      EVA_LOG_WARNING("no instance type fits task " EVA_PRId64, task.id);
      placed[i] = true;
      continue;
    }
    ConfigInstance fresh;
    fresh.type_index = *type_index;
    fresh.tasks.push_back(task.id);
    placed[i] = true;
    const InstanceType& type = context.catalog->Get(*type_index);
    ResourceVector used = task.DemandFor(type.family);
    for (std::size_t j = i + 1; j < waiting.size(); ++j) {
      if (placed[j] || RuntimeBin(*waiting[j]) != bin) {
        continue;
      }
      const ResourceVector& demand = waiting[j]->DemandFor(type.family);
      if ((used + demand).FitsWithin(type.capacity)) {
        fresh.tasks.push_back(waiting[j]->id);
        used += demand;
        placed[j] = true;
      }
    }
    config.instances.push_back(std::move(fresh));
  }
  return config;
}

}  // namespace eva
