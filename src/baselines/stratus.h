// Stratus (Chung et al., SoCC '18), the paper's state-of-the-art cloud
// baseline (§6.1).
//
// Stratus packs tasks with similar finish times onto the same instance so
// instances drain together and can be released promptly, and is
// deliberately conservative about migration. The paper evaluates Stratus in
// its best case by granting it perfect job-runtime estimates; here those
// arrive via TaskInfo::remaining_work_s. Tasks are binned by
// power-of-two remaining runtime ("runtime binning" in Stratus); new tasks
// prefer an existing instance in the same bin (best fit), then a fresh
// instance of the cheapest fitting type, onto which other waiting same-bin
// tasks are packed.

#ifndef SRC_BASELINES_STRATUS_H_
#define SRC_BASELINES_STRATUS_H_

#include "src/sched/scheduler.h"

namespace eva {

class StratusScheduler : public Scheduler {
 public:
  struct Options {
    // Bin width base: tasks with remaining runtime in [2^b, 2^{b+1}) hours
    // share bin b.
    double bin_base_hours = 0.5;
  };

  StratusScheduler();
  explicit StratusScheduler(Options options);

  std::string name() const override { return "Stratus"; }
  ClusterConfig Schedule(const SchedulingContext& context) override;

 private:
  int RuntimeBin(const TaskInfo& task) const;

  Options options_;
};

}  // namespace eva

#endif  // SRC_BASELINES_STRATUS_H_
