#include "src/baselines/synergy.h"

#include <algorithm>

#include "src/baselines/baseline_util.h"
#include "src/common/format.h"
#include "src/common/logging.h"
#include "src/sched/reservation_price.h"

namespace eva {

SynergyScheduler::SynergyScheduler(double default_pairwise_throughput)
    : monitor_(default_pairwise_throughput) {}

void SynergyScheduler::ObserveThroughput(
    const std::vector<JobThroughputObservation>& observations) {
  monitor_.Observe(observations);
}

ClusterConfig SynergyScheduler::Schedule(const SchedulingContext& context) {
  // The calculator reads the learned table directly; no context copy.
  const TnrpCalculator calculator(context, {}, &monitor_.table());

  ClusterConfig config;
  config.instances = KeepNonEmptyInstances(context);

  for (const TaskInfo* task_ptr : UnassignedTasksByRp(context)) {
    const TaskInfo& task = *context.FindTask(task_ptr->id);

    // Best fit across existing instances: minimize the normalized leftover
    // capacity after placement (fragmentation), among placements that do
    // not lower the instance's TNRP (interference guard).
    int best_index = -1;
    double best_score = 0.0;
    for (std::size_t k = 0; k < config.instances.size(); ++k) {
      const ConfigInstance& candidate = config.instances[k];
      const InstanceType& type = context.catalog->Get(candidate.type_index);
      const ResourceVector remaining = RemainingCapacity(context, candidate);
      const ResourceVector& demand = task.DemandFor(type.family);
      if (!demand.FitsWithin(remaining)) {
        continue;
      }
      std::vector<const TaskInfo*> members = MembersOf(context, candidate);
      const Money before = calculator.SetTnrp(members);
      members.push_back(&task);
      const Money after = calculator.SetTnrp(members);
      // The paper's interference-aware enhancement, in TNRP terms: joining
      // must leave the set covering the instance's hourly cost (keeps
      // best-fit from parking cheap tasks on expensive fragments that
      // outlive their anchors). Instances already below cost-coverage —
      // stranded survivors Synergy cannot migrate away — accept any join
      // that raises the set's value: the box is being paid for either way.
      const bool covers_cost = after + 1e-9 >= type.cost_per_hour;
      const bool improves_stranded = before + 1e-9 < type.cost_per_hour && after >= before;
      if (!covers_cost && !improves_stranded) {
        continue;
      }
      // Fragmentation score: normalized leftover across dimensions with
      // non-zero capacity (lower is a tighter fit).
      double score = 0.0;
      for (int r = 0; r < kNumResources; ++r) {
        const Resource res = static_cast<Resource>(r);
        const double cap = type.capacity.Get(res);
        if (cap > 0.0) {
          score += (remaining.Get(res) - demand.Get(res)) / cap;
        }
      }
      if (best_index < 0 || score < best_score) {
        best_index = static_cast<int>(k);
        best_score = score;
      }
    }
    if (best_index >= 0) {
      config.instances[static_cast<std::size_t>(best_index)].tasks.push_back(task.id);
      continue;
    }

    const std::optional<int> type_index = context.catalog->CheapestFitting(
        [&task](InstanceFamily family) { return task.DemandFor(family); });
    if (!type_index.has_value()) {
      EVA_LOG_WARNING("no instance type fits task " EVA_PRId64, task.id);
      continue;
    }
    ConfigInstance fresh;
    fresh.type_index = *type_index;
    fresh.tasks.push_back(task.id);
    config.instances.push_back(std::move(fresh));
  }
  return config;
}

}  // namespace eva
