#include "src/baselines/no_packing.h"

#include "src/baselines/baseline_util.h"
#include "src/common/format.h"
#include "src/common/logging.h"

namespace eva {

ClusterConfig NoPackingScheduler::Schedule(const SchedulingContext& context) {
  ClusterConfig config;
  config.instances = KeepNonEmptyInstances(context);
  for (const TaskInfo* task : UnassignedTasksByRp(context)) {
    const std::optional<int> type_index = context.catalog->CheapestFitting(
        [task](InstanceFamily family) { return task->DemandFor(family); });
    if (!type_index.has_value()) {
      EVA_LOG_WARNING("no instance type fits task " EVA_PRId64, task->id);
      continue;
    }
    ConfigInstance instance;
    instance.type_index = *type_index;
    instance.tasks.push_back(task->id);
    config.instances.push_back(std::move(instance));
  }
  return config;
}

}  // namespace eva
