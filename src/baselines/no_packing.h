// No-Packing Scheduler (§6.1): every task runs alone on the cheapest
// instance type that fits it — the strategy of most existing cloud cluster
// managers and the paper's cost-normalization baseline.

#ifndef SRC_BASELINES_NO_PACKING_H_
#define SRC_BASELINES_NO_PACKING_H_

#include "src/sched/scheduler.h"

namespace eva {

class NoPackingScheduler : public Scheduler {
 public:
  std::string name() const override { return "No-Packing"; }
  ClusterConfig Schedule(const SchedulingContext& context) override;
};

}  // namespace eva

#endif  // SRC_BASELINES_NO_PACKING_H_
