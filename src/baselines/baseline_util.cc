#include "src/baselines/baseline_util.h"

#include <algorithm>

#include "src/sched/reservation_price.h"

namespace eva {

std::vector<ConfigInstance> KeepNonEmptyInstances(const SchedulingContext& context) {
  std::vector<ConfigInstance> kept;
  for (const InstanceInfo& instance : context.instances) {
    if (instance.tasks.empty()) {
      continue;
    }
    ConfigInstance entry;
    entry.type_index = instance.type_index;
    entry.reuse_instance = instance.id;
    entry.tasks = instance.tasks;
    kept.push_back(std::move(entry));
  }
  return kept;
}

std::vector<const TaskInfo*> UnassignedTasksByRp(const SchedulingContext& context) {
  const TnrpCalculator calculator(context, {.interference_aware = false});
  std::vector<const TaskInfo*> unassigned;
  for (const TaskInfo& task : context.tasks) {
    if (task.current_instance == kInvalidInstanceId) {
      unassigned.push_back(&task);
    }
  }
  // Every baseline that orders its waiting queue goes through here, so they
  // all get the precompute-once treatment (RPs priced once into a keyed
  // vector, not on every comparison).
  SortTasksByRpDesc(calculator, unassigned);
  return unassigned;
}

ResourceVector RemainingCapacity(const SchedulingContext& context,
                                 const ConfigInstance& instance) {
  const InstanceType& type = context.catalog->Get(instance.type_index);
  ResourceVector remaining = type.capacity;
  for (TaskId task_id : instance.tasks) {
    if (const TaskInfo* task = context.FindTask(task_id)) {
      remaining -= task->DemandFor(type.family);
    }
  }
  return remaining;
}

std::vector<const TaskInfo*> MembersOf(const SchedulingContext& context,
                                       const ConfigInstance& instance) {
  std::vector<const TaskInfo*> members;
  for (TaskId task_id : instance.tasks) {
    if (const TaskInfo* task = context.FindTask(task_id)) {
      members.push_back(task);
    }
  }
  return members;
}

}  // namespace eva
