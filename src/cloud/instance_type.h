// Cloud instance types (set K in the paper) and the instance catalog.
//
// The paper's evaluation provisions from 21 AWS EC2 on-demand types across
// three families: P3 (GPU), C7i (compute-optimized) and R7i (memory-
// optimized). Capacities and us-east-1 hourly prices are reproduced in
// InstanceCatalog::AwsDefault().

#ifndef SRC_CLOUD_INSTANCE_TYPE_H_
#define SRC_CLOUD_INSTANCE_TYPE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/resources.h"
#include "src/common/units.h"

namespace eva {

// Instance families. Tasks may declare different demand vectors per family
// (Table 7: CPU jobs need fewer of the higher-frequency C7i/R7i cores).
enum class InstanceFamily : int {
  kP3 = 0,
  kC7i = 1,
  kR7i = 2,
};

inline constexpr int kNumInstanceFamilies = 3;

const char* InstanceFamilyName(InstanceFamily family);

struct InstanceType {
  std::string name;          // e.g. "p3.2xlarge"
  InstanceFamily family;
  ResourceVector capacity;   // Q_k
  Money cost_per_hour;       // C_k
};

// Resolves a task's demand vector for a given family. Tasks with a single
// demand vector return it unconditionally.
using DemandResolver = std::function<ResourceVector(InstanceFamily)>;

// An immutable set of available instance types.
class InstanceCatalog {
 public:
  // The paper's 21-type AWS catalog (3 P3 + 9 C7i + 9 R7i).
  static InstanceCatalog AwsDefault();

  // The 4-type example catalog of Table 3 (used in unit tests and the
  // quickstart example's walk-through of Algorithm 1).
  static InstanceCatalog PaperExample();

  explicit InstanceCatalog(std::vector<InstanceType> types);

  int NumTypes() const { return static_cast<int>(types_.size()); }
  const InstanceType& Get(int index) const { return types_[static_cast<std::size_t>(index)]; }
  const std::vector<InstanceType>& types() const { return types_; }

  // Index of the type with the given name, or -1.
  int IndexOf(const std::string& name) const;

  // Indices sorted by descending hourly cost — the iteration order of
  // Algorithm 1 (ties broken by ascending index for determinism).
  const std::vector<int>& IndicesByDescendingCost() const { return by_descending_cost_; }

  // The cheapest type whose capacity fits the demand (demand may differ per
  // family). Returns nullopt if no type fits. This defines the reservation
  // price instance of a task (§4.2).
  std::optional<int> CheapestFitting(const DemandResolver& demand) const;

  // Convenience overload for a family-independent demand.
  std::optional<int> CheapestFitting(const ResourceVector& demand) const;

  // Hourly cost of CheapestFitting, i.e. the reservation price RP(tau);
  // nullopt if the demand fits nowhere.
  std::optional<Money> ReservationPrice(const DemandResolver& demand) const;

 private:
  std::vector<InstanceType> types_;
  std::vector<int> by_descending_cost_;
};

}  // namespace eva

#endif  // SRC_CLOUD_INSTANCE_TYPE_H_
