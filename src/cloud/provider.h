// Cloud provider market: finite regional capacity, a spot tier, and the
// admission/accounting surface several tenant simulators can share.
//
// The seed reproduction provisioned from an idealized cloud — 21 on-demand
// types, infinite supply, fixed prices. This subsystem makes the provider a
// first-class actor:
//
//   * Capacity. Each instance family has a regional pool of at most
//     `family_capacity[f]` concurrent instances (-1 = unlimited, the
//     default). TryAcquire admits or denies a launch; Release returns the
//     slot. With every pool unlimited the provider is pass-through and the
//     simulation trajectory is bit-identical to the providerless engine.
//
//   * Tiers. With the spot market enabled the provider exposes a *tiered
//     catalog*: indices [0, N) are the base on-demand types verbatim and
//     [N, 2N) are their spot twins (same family/capacity, "-spot" names).
//     Capacities and shard layouts key off this stable object, while the
//     per-round *decision* prices come from MakeQuoteCatalog — a fresh
//     snapshot in the same layout whose spot entries carry the current
//     quote times (1 + risk premium). Schedulers therefore price spot
//     against on-demand with zero structural changes: Algorithm 1 walks the
//     tiered catalog exactly as it walks the base one.
//
//   * Multi-tenancy. Several simulators may share one provider (see
//     sim/federation.h). Grants are only ever issued from the federation's
//     serial, tenant-ordered phase; releases and preemption records may
//     arrive concurrently from the parallel phase and are commutative
//     (mutex-guarded integer updates plus an unordered record list that is
//     sorted deterministically at Finalize), so provider state and metrics
//     are bit-reproducible across runs and thread-pool sizes.

#ifndef SRC_CLOUD_PROVIDER_H_
#define SRC_CLOUD_PROVIDER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/cloud/instance_type.h"
#include "src/cloud/spot_market.h"
#include "src/common/units.h"

namespace eva {

struct CloudProviderOptions {
  // Master switch. Disabled: infinite capacity, on-demand only — the
  // simulator never consults the provider and stays bit-exact with the
  // providerless engine.
  bool enabled = false;

  // Max concurrent instances per family across all tenants and both tiers;
  // -1 = unlimited.
  std::array<int, kNumInstanceFamilies> family_capacity = {-1, -1, -1};

  SpotMarketOptions spot;
};

// Provider-level accounting across all tenants.
struct CloudProviderMetrics {
  struct Family {
    int capacity = -1;
    std::int64_t granted = 0;
    std::int64_t denied = 0;
    std::int64_t preempted = 0;  // Preemption warnings issued.
    std::int64_t released = 0;
    int peak_in_use = 0;
    double instance_hours = 0.0;  // Sum of released-instance uptimes.
    // Time-weighted pool utilization: instance-time / (capacity x horizon).
    // 0 when the pool is unlimited or the horizon is empty.
    double avg_utilization = 0.0;
  };

  std::array<Family, kNumInstanceFamilies> families;

  std::int64_t TotalGranted() const;
  std::int64_t TotalDenied() const;
  std::int64_t TotalPreempted() const;
};

class CloudProvider {
 public:
  // `base` is copied; the provider is self-contained and may outlive it.
  CloudProvider(const InstanceCatalog& base, CloudProviderOptions options);

  const CloudProviderOptions& options() const { return options_; }
  const InstanceCatalog& base_catalog() const { return base_; }

  // The stable catalog simulations run against: the base catalog when spot
  // is off, base + spot twins when on. Object identity is stable for the
  // provider's lifetime (cluster-state shards key off it).
  const InstanceCatalog& tiered_catalog() const {
    return spot_enabled() ? tiered_ : base_;
  }

  bool spot_enabled() const { return options_.spot.enabled; }
  int num_base_types() const { return base_.NumTypes(); }

  // Tier helpers on tiered-catalog indices.
  bool IsSpotType(int type_index) const {
    return spot_enabled() && type_index >= num_base_types();
  }
  int BaseType(int type_index) const {
    return IsSpotType(type_index) ? type_index - num_base_types() : type_index;
  }

  const SpotMarket& market() const { return market_; }

  // Decision-price snapshot at time `now`: base entries verbatim, spot
  // entries at quote x (1 + risk_premium). Fresh object per call — pricing
  // caches key on catalog identity, so a new snapshot invalidates them.
  std::unique_ptr<InstanceCatalog> MakeQuoteCatalog(SimTime now,
                                                    double risk_premium) const;

  // --- Admission and accounting -----------------------------------------
  // Grants or denies one instance of `type_index` (tiered index). Grants
  // must be serialized in tenant order by the caller (the federation's
  // serial phase; a single-tenant simulator is trivially serial).
  bool TryAcquire(int type_index, SimTime now);

  // Returns the slot and records the uptime. Thread-safe; commutative, so
  // concurrent releases from the federation's parallel phase are
  // deterministic in effect.
  void Release(int type_index, SimTime acquired_at, SimTime now);

  // Counts a preemption warning. Thread-safe.
  void RecordPreemption(int type_index);

  // True cost of holding `type_index` over [t0, t1]: the spot-trace
  // integral for spot types, flat hourly price otherwise. Pure.
  Money InstanceCost(int type_index, SimTime t0, SimTime t1) const;

  // Snapshot of the counters plus derived utilization over [0, horizon].
  // Sorts the (unordered) release records first, so the result is
  // independent of release arrival order.
  CloudProviderMetrics FinalizeMetrics(SimTime horizon) const;

 private:
  InstanceFamily FamilyOf(int type_index) const {
    return tiered_catalog().Get(type_index).family;
  }

  static InstanceCatalog MakeTiered(const InstanceCatalog& base,
                                    const SpotMarket& market);

  const InstanceCatalog base_;
  const CloudProviderOptions options_;
  SpotMarket market_;
  InstanceCatalog tiered_;  // == base twins appended; unused when spot off.

  mutable std::mutex mutex_;
  struct FamilyState {
    int in_use = 0;
    int peak_in_use = 0;
    std::int64_t granted = 0;
    std::int64_t denied = 0;
    std::int64_t preempted = 0;
    std::int64_t released = 0;
    // Released-instance lifetimes, in arrival order (nondeterministic under
    // concurrency); FinalizeMetrics sorts before folding.
    std::vector<std::pair<SimTime, SimTime>> lifetimes;
  };
  std::array<FamilyState, kNumInstanceFamilies> families_;
};

}  // namespace eva

#endif  // SRC_CLOUD_PROVIDER_H_
