// Cloud provider market: finite regional capacity, a spot tier, and the
// admission/accounting surface several tenant simulators can share.
//
// The seed reproduction provisioned from an idealized cloud — 21 on-demand
// types, infinite supply, fixed prices. This subsystem makes the provider a
// first-class actor:
//
//   * Capacity. Each instance family has a regional pool of at most
//     `family_capacity[f]` concurrent instances (-1 = unlimited, the
//     default). TryAcquire admits or denies a launch; Release returns the
//     slot. With every pool unlimited the provider is pass-through and the
//     simulation trajectory is bit-identical to the providerless engine.
//
//   * Tiers. With the spot market enabled the provider exposes a *tiered
//     catalog*: indices [0, N) are the base on-demand types verbatim and
//     [N, 2N) are their spot twins (same family/capacity, "-spot" names).
//     Capacities and shard layouts key off this stable object, while the
//     per-round *decision* prices come from a quote snapshot — the same
//     layout with spot entries at the current quote times (1 + risk
//     premium). Schedulers therefore price spot against on-demand with zero
//     structural changes: Algorithm 1 walks the tiered catalog exactly as
//     it walks the base one.
//
//   * Multi-tenancy, sharded. Several simulators may share one provider
//     (see sim/federation.h). Accounting is partitioned into one shard per
//     instance family, each behind its own mutex, so tenants whose demand
//     touches disjoint families never contend on a lock. The federation
//     driver serializes (in tenant-index order) only the tenants that can
//     touch the same *finite* family; everything else — grants on unlimited
//     pools, releases, preemption records — is commutative per shard
//     (integer tallies plus unordered record lists sorted deterministically
//     at Finalize), so provider state and metrics are bit-reproducible
//     across runs and thread-pool sizes.

#ifndef SRC_CLOUD_PROVIDER_H_
#define SRC_CLOUD_PROVIDER_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/cloud/fault_injector.h"
#include "src/cloud/instance_type.h"
#include "src/cloud/spot_market.h"
#include "src/common/units.h"

namespace eva {

struct CloudProviderOptions {
  // Master switch. Disabled: infinite capacity, on-demand only — the
  // simulator never consults the provider and stays bit-exact with the
  // providerless engine.
  bool enabled = false;

  // Max concurrent instances per family across all tenants and both tiers;
  // -1 = unlimited.
  std::array<int, kNumInstanceFamilies> family_capacity = {-1, -1, -1};

  SpotMarketOptions spot;

  // Fault injection (zone outages clamp finite pools for their window; see
  // src/cloud/fault_injector.h). The simulator propagates its own
  // SimulatorOptions::faults here, so provider clamps and simulator kill
  // events always read one schedule.
  FaultInjectorOptions faults;
};

// Provider-level accounting across all tenants.
struct CloudProviderMetrics {
  struct Family {
    int capacity = -1;
    std::int64_t granted = 0;
    std::int64_t denied = 0;
    std::int64_t preempted = 0;  // Preemption warnings issued.
    std::int64_t released = 0;
    // Subset of `denied` attributable to the fault model's outage clamp:
    // the pool had nominal headroom but the windowed capacity did not.
    std::int64_t fault_denied = 0;
    int peak_in_use = 0;
    double instance_hours = 0.0;  // Sum of released-instance uptimes.
    // Time-weighted pool utilization: instance-time / (capacity x horizon).
    // 0 when the pool is unlimited or the horizon is empty.
    double avg_utilization = 0.0;
  };

  std::array<Family, kNumInstanceFamilies> families;

  std::int64_t TotalGranted() const;
  std::int64_t TotalDenied() const;
  std::int64_t TotalPreempted() const;
};

class CloudProvider {
 public:
  // `base` is copied; the provider is self-contained and may outlive it.
  CloudProvider(const InstanceCatalog& base, CloudProviderOptions options);

  const CloudProviderOptions& options() const { return options_; }
  const InstanceCatalog& base_catalog() const { return base_; }

  // The stable catalog simulations run against: the base catalog when spot
  // is off, base + spot twins when on. Object identity is stable for the
  // provider's lifetime (cluster-state shards key off it).
  const InstanceCatalog& tiered_catalog() const {
    return spot_enabled() ? tiered_ : base_;
  }

  bool spot_enabled() const { return options_.spot.enabled; }
  int num_base_types() const { return base_.NumTypes(); }

  // Tier helpers on tiered-catalog indices.
  bool IsSpotType(int type_index) const {
    return spot_enabled() && type_index >= num_base_types();
  }
  int BaseType(int type_index) const {
    return IsSpotType(type_index) ? type_index - num_base_types() : type_index;
  }

  const SpotMarket& market() const { return market_; }

  // The fault schedule shared by the capacity clamp and the simulator's
  // kill/drain events. Pure in its options, so a simulator-side FaultModel
  // constructed from the same options agrees with it bit-for-bit.
  const FaultModel& faults() const { return fault_model_; }

  // Bit f set <=> family f's pool is finite. Only finite families can make
  // two tenants conflict (an unlimited pool grants unconditionally and its
  // tallies are commutative), so this is the mask the federation driver
  // intersects tenant footprints against when partitioning rounds.
  std::uint32_t finite_family_mask() const { return finite_family_mask_; }

  // Family of a tiered-catalog index (pure; spot twins share their base
  // type's family).
  InstanceFamily FamilyOf(int type_index) const {
    return tiered_catalog().Get(type_index).family;
  }

  // Decision-price snapshot at time `now`: base entries verbatim, spot
  // entries at quote x (1 + risk_premium). Fresh object per call — pricing
  // caches key on catalog identity, so a new snapshot invalidates them.
  std::unique_ptr<InstanceCatalog> MakeQuoteCatalog(SimTime now,
                                                    double risk_premium) const;

  // The same snapshot, shared and cached by (price step, risk premium):
  // spot prices are a pure function of the step, so every round that falls
  // in one step sees the *same object*. Two consequences the federation
  // leans on: (a) N tenants rounding in the same step build one catalog
  // instead of N, from any thread, in any order; (b) catalog identity now
  // means "prices bit-identical", so scheduler-side caches keyed on catalog
  // identity (round memos, TNRP rebinds) stay exactly as valid as with
  // per-round fresh snapshots. Entries are never evicted — the map is
  // bounded by horizon / price_step (and reusing a freed address for a new
  // step would alias identity-keyed caches).
  std::shared_ptr<const InstanceCatalog> SharedQuoteCatalog(
      SimTime now, double risk_premium) const;

  // --- Admission and accounting -----------------------------------------
  // Grants or denies one instance of `type_index` (tiered index). Grants on
  // a *finite* family must be serialized in tenant-index order by the
  // caller (the federation's conflict-group phase; a single-tenant
  // simulator is trivially serial). Grants on unlimited families are
  // commutative and may run concurrently. During a zone outage window,
  // finite capacity is clamped by the down-zone fraction, so admission
  // denies into the outage even with nominal headroom.
  //
  // `slot` (optional) receives the grant's release ticket: an index into
  // the unlimited pool's live-acquire arena (-1 for finite pools and
  // denials). Passing it back to Release makes the release O(1); callers
  // that drop it fall back to a linear scan.
  bool TryAcquire(int type_index, SimTime now, std::int64_t* slot = nullptr);

  // Returns the slot and records the uptime. Thread-safe; commutative, so
  // concurrent releases from the federation's parallel phase are
  // deterministic in effect. `slot` is the ticket TryAcquire returned
  // (unlimited pools; O(1) free) or -1 (linear fallback — direct callers
  // without ticket plumbing).
  void Release(int type_index, SimTime acquired_at, SimTime now,
               std::int64_t slot = -1);

  // Counts a preemption warning. Thread-safe.
  void RecordPreemption(int type_index);

  // True cost of holding `type_index` over [t0, t1]: the spot-trace
  // integral for spot types, flat hourly price otherwise. Pure.
  Money InstanceCost(int type_index, SimTime t0, SimTime t1) const;

  // Snapshot of the counters plus derived utilization over [0, horizon].
  // Sorts the (unordered) release records first, so the result is
  // independent of release arrival order. peak_in_use is the incremental
  // maximum for finite pools (grants are serialized, so it is exact) and a
  // sorted interval sweep over lifetimes for unlimited pools (whose grants
  // may interleave across threads; ties count a start before an end, so
  // touching intervals overlap).
  CloudProviderMetrics FinalizeMetrics(SimTime horizon) const;

 private:
  static InstanceCatalog MakeTiered(const InstanceCatalog& base,
                                    const SpotMarket& market);

  const InstanceCatalog base_;
  const CloudProviderOptions options_;
  SpotMarket market_;
  FaultModel fault_model_;
  InstanceCatalog tiered_;  // == base twins appended; unused when spot off.
  std::uint32_t finite_family_mask_ = 0;

  // One independently-lockable shard per instance family (the ytsaurus
  // node-shard idiom): tenants touching disjoint families never share a
  // lock.
  struct FamilyShard {
    mutable std::mutex mutex;
    int in_use = 0;
    // Exact for finite pools (grants serialized by the caller); unused for
    // unlimited pools, whose peak comes from the Finalize sweep.
    int peak_in_use = 0;
    std::int64_t granted = 0;
    std::int64_t denied = 0;
    std::int64_t preempted = 0;
    std::int64_t released = 0;
    std::int64_t fault_denied = 0;  // Denials attributable to the outage clamp.
    // Released-instance lifetimes, in arrival order (nondeterministic under
    // concurrency); FinalizeMetrics sorts before folding.
    std::vector<std::pair<SimTime, SimTime>> lifetimes;
    // Acquire times of still-live instances — maintained only for unlimited
    // pools, where the peak sweep needs open intervals too. A slot arena:
    // TryAcquire hands out an index (reusing `live_free` slots first) and
    // Release frees it in O(1); freed slots hold kFreeAcquireSlot. The
    // occupied values form a multiset — slot numbering is interleaving-
    // dependent, but nothing downstream reads it (the peak sweep sorts).
    std::vector<SimTime> live_acquires;
    std::vector<std::int64_t> live_free;
  };
  std::array<FamilyShard, kNumInstanceFamilies> shards_;

  // Shared quote snapshots keyed by (price step, risk premium). Guarded by
  // its own mutex so quoting never contends with admission shards.
  mutable std::mutex quote_mutex_;
  mutable std::map<std::pair<std::int64_t, double>,
                   std::shared_ptr<const InstanceCatalog>>
      quote_cache_;
  mutable std::shared_ptr<const InstanceCatalog> base_snapshot_;  // Spot off.
};

}  // namespace eva

#endif  // SRC_CLOUD_PROVIDER_H_
