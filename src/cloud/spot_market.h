// Deterministic spot-price market for the cloud provider subsystem.
//
// Real clouds sell interruptible "spot" capacity at a steep, time-varying
// discount and reclaim it with a short warning when demand spikes. This
// model reproduces the decision-relevant structure — a piecewise-constant
// per-type price trace, occasional spikes above the on-demand price, and a
// preemption predicate tied to the price — while staying exactly
// reproducible:
//
//   * the price of a type during step k is a PURE FUNCTION of
//     (seed, type, k), computed by integer hashing — no sequential RNG
//     state, so quotes can be evaluated in any order, from any thread, by
//     any number of tenants, and always agree bit-for-bit;
//   * an instance is preempted exactly when its type's quote reaches the
//     preemption threshold (a fraction of the on-demand price), so the set
//     of preemption events is a deterministic function of virtual time;
//   * the cost of holding a spot instance over [t0, t1] is the integral of
//     the trace over that interval, folded over ascending steps so repeated
//     evaluations are bit-identical.

#ifndef SRC_CLOUD_SPOT_MARKET_H_
#define SRC_CLOUD_SPOT_MARKET_H_

#include <cstdint>

#include "src/cloud/instance_type.h"
#include "src/common/units.h"

namespace eva {

struct SpotMarketOptions {
  bool enabled = false;

  // Repricing interval: the trace is constant within a step.
  SimTime price_step_s = 15.0 * kSecondsPerMinute;

  // Steady-state quote as a fraction of the on-demand price, drawn
  // uniformly per (type, step) in [min, max] — the historical 60-90% spot
  // discount band.
  double min_price_fraction = 0.25;
  double max_price_fraction = 0.60;

  // Per-step probability that a type's pool spikes: the quote jumps to
  // spike_price_fraction x on-demand, which (at the default threshold)
  // preempts every spot instance of that type.
  double spike_probability = 0.04;
  double spike_price_fraction = 1.5;

  // Preemption predicate: quote >= preemption_price_fraction x on-demand.
  double preemption_price_fraction = 1.0;

  // Notice between the preemption warning and the instance being reclaimed
  // (the AWS two-minute warning).
  SimTime warning_s = 120.0;

  std::uint64_t seed = 1234;
};

class SpotMarket {
 public:
  // `base` is the on-demand catalog; quotes are per base-type index.
  // The catalog must outlive the market.
  SpotMarket(const InstanceCatalog& base, SpotMarketOptions options);

  const SpotMarketOptions& options() const { return options_; }

  // Quote as a fraction of the on-demand price during the step containing t.
  double PriceFraction(int base_type, SimTime t) const;

  // Hourly spot price of `base_type` at time t.
  Money Quote(int base_type, SimTime t) const;

  // The price step containing t. Prices are a pure function of
  // (seed, type, step), so a step index is a complete cache key for a
  // quote snapshot — the provider's shared quote-catalog cache keys on it.
  std::int64_t StepOf(SimTime t) const { return StepIndex(t); }

  // Hourly spot price of `base_type` during `step`. Quote(t) ==
  // QuoteAtStep(StepOf(t)) bit-for-bit.
  Money QuoteAtStep(int base_type, std::int64_t step) const;

  // True when holding spot capacity of this type at time t triggers a
  // preemption (quote at or above the threshold).
  bool IsPreempting(int base_type, SimTime t) const;

  // The earliest step boundary strictly after t — where the next repricing
  // (and therefore the next possible preemption transition) happens.
  SimTime NextStepBoundary(SimTime t) const;

  // Dollar cost of holding one spot instance of `base_type` over [t0, t1]:
  // the price-trace integral, folded over ascending steps. Returns 0 for
  // empty/inverted intervals.
  Money CostForInterval(int base_type, SimTime t0, SimTime t1) const;

 private:
  // Uniform in [0, 1), pure in (seed, type, step).
  double HashUniform(int base_type, std::int64_t step, std::uint64_t salt) const;

  // The step containing t, with a float round-trip guard: a timestamp
  // produced as (k+1) * price_step_s (NextStepBoundary, the kSpotCheck
  // event times) can divide back to fractionally under k+1 when the step
  // is not exactly representable — boundaries must belong to the step they
  // open, or the check armed for a new step re-reads the old step's price.
  std::int64_t StepIndex(SimTime t) const;

  // The price fraction of one step — the single source every public query
  // derives from.
  double FractionForStep(int base_type, std::int64_t step) const;

  const InstanceCatalog& base_;
  SpotMarketOptions options_;
};

}  // namespace eva

#endif  // SRC_CLOUD_SPOT_MARKET_H_
