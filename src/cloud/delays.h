// Reconfiguration-delay model (Table 1 of the paper).
//
// Instance acquisition and setup delays are properties of the cloud; job
// checkpoint and launch delays are properties of the workload (Table 7) and
// live in WorkloadSpec. The simulator runs in one of two modes:
//   * simulated  — deterministic mean delays (what the paper's simulator
//                  uses for trace-driven experiments), and
//   * physical   — delays drawn uniformly from the measured ranges, standing
//                  in for the paper's AWS runs (Tables 10-12).

#ifndef SRC_CLOUD_DELAYS_H_
#define SRC_CLOUD_DELAYS_H_

#include "src/common/rng.h"
#include "src/common/units.h"

namespace eva {

// A delay measured as a [min, max] range with an observed average.
//
// Determinism contract: every stochastic draw in this module flows through
// the caller-provided Rng — the seeded generator the simulator owns — and
// nothing here touches a global or thread-local random source. Same seed ⇒
// same delay sequence ⇒ same physical-mode metrics, bit for bit (pinned by
// PhysicalModeSameSeedReproducesMetrics in tests/sim/simulator_test.cc).
struct DelayRange {
  SimTime min_s = 0.0;
  SimTime max_s = 0.0;
  SimTime average_s = 0.0;

  // Mean value (simulated mode).
  SimTime Mean() const { return average_s; }

  // One stochastic draw (physical mode). Uses a triangular-ish draw: uniform
  // within [min, max] mixed toward the average so the sample mean tracks the
  // measured average rather than the range midpoint. Consumes draws only
  // from `rng`; a degenerate range (max <= min) consumes none.
  SimTime Sample(Rng& rng) const;
};

// Cloud-side delays from Table 1.
struct CloudDelayModel {
  DelayRange acquisition{6.0, 83.0, 19.0};
  DelayRange setup{140.0, 251.0, 190.0};

  // Global multiplier applied to *job* migration delays (checkpoint+launch)
  // by the Figure 5 sweep. Instance delays are unaffected there, but the
  // sweep helper scales everything the paper scales.
  double migration_delay_multiplier = 1.0;

  // Total provisioning latency (acquisition + setup) for one instance.
  SimTime ProvisioningDelay(Rng* rng) const;
};

}  // namespace eva

#endif  // SRC_CLOUD_DELAYS_H_
