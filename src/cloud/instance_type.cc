#include "src/cloud/instance_type.h"

#include <algorithm>

namespace eva {

const char* InstanceFamilyName(InstanceFamily family) {
  switch (family) {
    case InstanceFamily::kP3:
      return "P3";
    case InstanceFamily::kC7i:
      return "C7i";
    case InstanceFamily::kR7i:
      return "R7i";
  }
  return "?";
}

InstanceCatalog InstanceCatalog::AwsDefault() {
  // Capacities are (GPU, CPU cores, RAM GiB); prices are us-east-1
  // on-demand. CPU counts are physical cores (vCPU / 2), matching the
  // paper's units: Table 3's it1 = (4, 16, 244) at ~$12 is a p3.8xlarge,
  // and Table 7's demands (e.g. ResNet18 needing 4 CPUs on a p3.2xlarge)
  // only line up with core counts.
  std::vector<InstanceType> types = {
      // P3 — NVIDIA V100 GPU instances.
      {"p3.2xlarge", InstanceFamily::kP3, {1, 4, 61}, 3.06},
      {"p3.8xlarge", InstanceFamily::kP3, {4, 16, 244}, 12.24},
      {"p3.16xlarge", InstanceFamily::kP3, {8, 32, 488}, 24.48},
      // C7i — compute optimized.
      {"c7i.large", InstanceFamily::kC7i, {0, 1, 4}, 0.0893},
      {"c7i.xlarge", InstanceFamily::kC7i, {0, 2, 8}, 0.1785},
      {"c7i.2xlarge", InstanceFamily::kC7i, {0, 4, 16}, 0.357},
      {"c7i.4xlarge", InstanceFamily::kC7i, {0, 8, 32}, 0.714},
      {"c7i.8xlarge", InstanceFamily::kC7i, {0, 16, 64}, 1.428},
      {"c7i.12xlarge", InstanceFamily::kC7i, {0, 24, 96}, 2.142},
      {"c7i.16xlarge", InstanceFamily::kC7i, {0, 32, 128}, 2.856},
      {"c7i.24xlarge", InstanceFamily::kC7i, {0, 48, 192}, 4.284},
      {"c7i.48xlarge", InstanceFamily::kC7i, {0, 96, 384}, 8.568},
      // R7i — memory optimized.
      {"r7i.large", InstanceFamily::kR7i, {0, 1, 16}, 0.1323},
      {"r7i.xlarge", InstanceFamily::kR7i, {0, 2, 32}, 0.2646},
      {"r7i.2xlarge", InstanceFamily::kR7i, {0, 4, 64}, 0.5292},
      {"r7i.4xlarge", InstanceFamily::kR7i, {0, 8, 128}, 1.0584},
      {"r7i.8xlarge", InstanceFamily::kR7i, {0, 16, 256}, 2.1168},
      {"r7i.12xlarge", InstanceFamily::kR7i, {0, 24, 384}, 3.1752},
      {"r7i.16xlarge", InstanceFamily::kR7i, {0, 32, 512}, 4.2336},
      {"r7i.24xlarge", InstanceFamily::kR7i, {0, 48, 768}, 6.3504},
      {"r7i.48xlarge", InstanceFamily::kR7i, {0, 96, 1536}, 12.7008},
  };
  return InstanceCatalog(std::move(types));
}

InstanceCatalog InstanceCatalog::PaperExample() {
  // Table 3(a): it1..it4. it1/it2 are GPU-bearing, it3/it4 CPU-only.
  std::vector<InstanceType> types = {
      {"it1", InstanceFamily::kP3, {4, 16, 244}, 12.0},
      {"it2", InstanceFamily::kP3, {1, 4, 61}, 3.0},
      {"it3", InstanceFamily::kC7i, {0, 8, 32}, 0.8},
      {"it4", InstanceFamily::kC7i, {0, 4, 16}, 0.4},
  };
  return InstanceCatalog(std::move(types));
}

InstanceCatalog::InstanceCatalog(std::vector<InstanceType> types) : types_(std::move(types)) {
  by_descending_cost_.resize(types_.size());
  for (std::size_t i = 0; i < types_.size(); ++i) {
    by_descending_cost_[i] = static_cast<int>(i);
  }
  std::stable_sort(by_descending_cost_.begin(), by_descending_cost_.end(), [this](int a, int b) {
    return types_[static_cast<std::size_t>(a)].cost_per_hour >
           types_[static_cast<std::size_t>(b)].cost_per_hour;
  });
}

int InstanceCatalog::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::optional<int> InstanceCatalog::CheapestFitting(const DemandResolver& demand) const {
  std::optional<int> best;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    const InstanceType& type = types_[i];
    if (!demand(type.family).FitsWithin(type.capacity)) {
      continue;
    }
    if (!best.has_value() ||
        type.cost_per_hour < types_[static_cast<std::size_t>(*best)].cost_per_hour) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::optional<int> InstanceCatalog::CheapestFitting(const ResourceVector& demand) const {
  return CheapestFitting([&demand](InstanceFamily) { return demand; });
}

std::optional<Money> InstanceCatalog::ReservationPrice(const DemandResolver& demand) const {
  const std::optional<int> index = CheapestFitting(demand);
  if (!index.has_value()) {
    return std::nullopt;
  }
  return types_[static_cast<std::size_t>(*index)].cost_per_hour;
}

}  // namespace eva
