#include "src/cloud/delays.h"

#include <algorithm>

namespace eva {

SimTime DelayRange::Sample(Rng& rng) const {
  if (max_s <= min_s) {
    return average_s;
  }
  // Mix a uniform draw over the range with the measured average: with
  // probability 0.5 draw uniformly in [min, avg], else in [avg, max]. The
  // expected value is (min + 2*avg + max) / 4, which is close to the
  // measured average for the skewed ranges in Table 1 while still exercising
  // the tails.
  if (rng.Bernoulli(0.5)) {
    return rng.Uniform(min_s, std::max(min_s, average_s));
  }
  return rng.Uniform(std::min(average_s, max_s), max_s);
}

SimTime CloudDelayModel::ProvisioningDelay(Rng* rng) const {
  if (rng == nullptr) {
    return acquisition.Mean() + setup.Mean();
  }
  return acquisition.Sample(*rng) + setup.Sample(*rng);
}

}  // namespace eva
