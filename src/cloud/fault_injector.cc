#include "src/cloud/fault_injector.h"

#include <algorithm>
#include <cmath>

namespace eva {
namespace {

// SplitMix64 finalizer (public domain, Steele et al.) — the same stateless
// mixing SpotMarket uses, so any (seed, kind, entity, step) query is
// independent of every other.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Kind salts: distinct streams per fault kind so enabling one kind never
// shifts another's schedule.
constexpr std::uint64_t kZoneOutageSalt = 0x0a17a6e5ULL;
constexpr std::uint64_t kCorrelatedSalt = 0xc0fe14e1ULL;
constexpr std::uint64_t kDrainSalt = 0xd7a1a915ULL;
constexpr std::uint64_t kZonePickSalt = 0x5a17c3e5ULL;
constexpr std::uint64_t kVictimSalt = 0x71c71c71ULL;

}  // namespace

double FaultModel::HashUniform(std::uint64_t salt, std::int64_t entity,
                               std::int64_t step) const {
  std::uint64_t h = Mix64(options_.seed ^ salt);
  h = Mix64(h ^ (static_cast<std::uint64_t>(entity) * 0x100000001b3ULL));
  h = Mix64(h ^ static_cast<std::uint64_t>(step));
  // Top 53 bits -> [0, 1), exactly like Rng::NextDouble.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::int64_t FaultModel::StepOf(SimTime t) const {
  const double step_s = options_.check_period_s;
  std::int64_t step = static_cast<std::int64_t>(std::floor(std::max(t, 0.0) / step_s));
  // Round-trip guard (see SpotMarket::StepIndex): (k+1)*step_s may divide
  // back to just under k+1 for steps without an exact binary representation
  // — a boundary must belong to the step it opens.
  if (static_cast<double>(step + 1) * step_s <= t) {
    ++step;
  }
  return step;
}

SimTime FaultModel::NextStepBoundary(SimTime t) const {
  return static_cast<double>(StepOf(t) + 1) * options_.check_period_s;
}

bool FaultModel::ZoneOutageStartsAt(int zone, std::int64_t step) const {
  return options_.enabled &&
         HashUniform(kZoneOutageSalt, zone, step) < options_.zone_outage_probability;
}

bool FaultModel::CorrelatedFailureAt(int family, std::int64_t step) const {
  return options_.enabled && HashUniform(kCorrelatedSalt, family, step) <
                                 options_.correlated_failure_probability;
}

bool FaultModel::DrainStartsAt(int zone, std::int64_t step) const {
  return options_.enabled &&
         HashUniform(kDrainSalt, zone, step) < options_.drain_probability;
}

bool FaultModel::ZoneDownAt(int zone, SimTime t) const {
  if (!options_.enabled || options_.zone_outage_probability <= 0.0 || t < 0.0) {
    return false;
  }
  const double step_s = options_.check_period_s;
  const SimTime window_start = std::max(t - options_.zone_outage_duration_s, 0.0);
  const std::int64_t hi = StepOf(t);
  for (std::int64_t s = StepOf(window_start); s <= hi; ++s) {
    const SimTime start = static_cast<double>(s) * step_s;
    if (start > t) {
      break;
    }
    if (t < start + options_.zone_outage_duration_s && ZoneOutageStartsAt(zone, s)) {
      return true;
    }
  }
  return false;
}

int FaultModel::UpZoneCount(SimTime t) const {
  const int zones = std::max(options_.num_zones, 1);
  int up = 0;
  for (int zone = 0; zone < zones; ++zone) {
    if (!ZoneDownAt(zone, t)) {
      ++up;
    }
  }
  return up;
}

int FaultModel::ClampedCapacity(int capacity, SimTime t) const {
  if (capacity < 0 || !options_.enabled || options_.zone_outage_probability <= 0.0) {
    return capacity;
  }
  const int zones = std::max(options_.num_zones, 1);
  const int up = UpZoneCount(t);
  if (up >= zones) {
    return capacity;
  }
  return static_cast<int>(static_cast<std::int64_t>(capacity) * up / zones);
}

int FaultModel::ZoneAt(int tenant_id, std::int64_t instance_id,
                       SimTime launch_time) const {
  const int zones = std::max(options_.num_zones, 1);
  std::uint64_t h = Mix64(options_.seed ^ kZonePickSalt);
  h = Mix64(h ^ (static_cast<std::uint64_t>(tenant_id) * 0x100000001b3ULL));
  h = Mix64(h ^ static_cast<std::uint64_t>(instance_id));
  // Launch into a zone that is up right now; during a full blackout (every
  // zone down) fall back to the plain spread — the launch itself was
  // already admitted through the capacity clamp.
  const int up = UpZoneCount(launch_time);
  if (up == 0 || up == zones) {
    return static_cast<int>(h % static_cast<std::uint64_t>(zones));
  }
  int pick = static_cast<int>(h % static_cast<std::uint64_t>(up));
  for (int zone = 0; zone < zones; ++zone) {
    if (ZoneDownAt(zone, launch_time)) {
      continue;
    }
    if (pick-- == 0) {
      return zone;
    }
  }
  return 0;  // Unreachable: `pick` < number of up zones.
}

std::uint64_t FaultModel::VictimRank(int tenant_id, std::int64_t instance_id,
                                     std::int64_t step) const {
  std::uint64_t h = Mix64(options_.seed ^ kVictimSalt);
  h = Mix64(h ^ (static_cast<std::uint64_t>(tenant_id) * 0x100000001b3ULL));
  h = Mix64(h ^ static_cast<std::uint64_t>(instance_id));
  return Mix64(h ^ static_cast<std::uint64_t>(step));
}

}  // namespace eva
