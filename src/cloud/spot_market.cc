#include "src/cloud/spot_market.h"

#include <algorithm>
#include <cmath>

namespace eva {
namespace {

// SplitMix64 finalizer (public domain, Steele et al.) — the same mixing the
// Rng seeder uses, applied here as a stateless hash so any (seed, type,
// step) query is independent of every other.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SpotMarket::SpotMarket(const InstanceCatalog& base, SpotMarketOptions options)
    : base_(base), options_(options) {}

double SpotMarket::HashUniform(int base_type, std::int64_t step,
                               std::uint64_t salt) const {
  std::uint64_t h = Mix64(options_.seed ^ salt);
  h = Mix64(h ^ (static_cast<std::uint64_t>(base_type) * 0x100000001b3ULL));
  h = Mix64(h ^ static_cast<std::uint64_t>(step));
  // Top 53 bits -> [0, 1), exactly like Rng::NextDouble.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::int64_t SpotMarket::StepIndex(SimTime t) const {
  const double step_s = options_.price_step_s;
  std::int64_t step = static_cast<std::int64_t>(std::floor(std::max(t, 0.0) / step_s));
  // Round-trip guard (see header): (k+1)*step_s may divide back to just
  // under k+1 for steps without an exact binary representation.
  if (static_cast<double>(step + 1) * step_s <= t) {
    ++step;
  }
  return step;
}

double SpotMarket::FractionForStep(int base_type, std::int64_t step) const {
  if (HashUniform(base_type, step, /*salt=*/0x51c3u) < options_.spike_probability) {
    return options_.spike_price_fraction;
  }
  const double u = HashUniform(base_type, step, /*salt=*/0xf4acu);
  return options_.min_price_fraction +
         (options_.max_price_fraction - options_.min_price_fraction) * u;
}

double SpotMarket::PriceFraction(int base_type, SimTime t) const {
  return FractionForStep(base_type, StepIndex(t));
}

Money SpotMarket::Quote(int base_type, SimTime t) const {
  return base_.Get(base_type).cost_per_hour * PriceFraction(base_type, t);
}

Money SpotMarket::QuoteAtStep(int base_type, std::int64_t step) const {
  return base_.Get(base_type).cost_per_hour * FractionForStep(base_type, step);
}

bool SpotMarket::IsPreempting(int base_type, SimTime t) const {
  return PriceFraction(base_type, t) >=
         options_.preemption_price_fraction - 1e-12;
}

SimTime SpotMarket::NextStepBoundary(SimTime t) const {
  // StepIndex's round-trip guard ensures (step + 1) * step_s > t: a t
  // sitting exactly on a boundary already counts as the opened step.
  return static_cast<double>(StepIndex(t) + 1) * options_.price_step_s;
}

Money SpotMarket::CostForInterval(int base_type, SimTime t0, SimTime t1) const {
  if (t1 <= t0) {
    return 0.0;
  }
  const double step_s = options_.price_step_s;
  const std::int64_t first = StepIndex(std::max(t0, 0.0));
  const std::int64_t last = StepIndex(std::max(t1, 0.0));
  Money total = 0.0;
  for (std::int64_t step = first; step <= last; ++step) {
    const SimTime lo = std::max(t0, static_cast<double>(step) * step_s);
    const SimTime hi = std::min(t1, static_cast<double>(step + 1) * step_s);
    if (hi <= lo) {
      continue;
    }
    total += CostForUptime(
        base_.Get(base_type).cost_per_hour * FractionForStep(base_type, step), hi - lo);
  }
  return total;
}

}  // namespace eva
