// Deterministic fault-injection model for the cloud provider subsystem.
//
// Real fleets lose capacity in ways spot preemption's polite two-minute
// warning never exercises: an availability zone drops and takes every
// instance in it down at once, a bad kernel or switch kills a correlated
// batch of one family, and planned maintenance drains machines with advance
// notice. This model reproduces those three shapes — zone outages,
// correlated instance failures, maintenance drains — while staying exactly
// reproducible, in the style of SpotMarket:
//
//   * whether a fault of a given kind fires in step k is a PURE FUNCTION of
//     (seed, kind, entity, k), computed by integer hashing — no sequential
//     RNG state, so schedules can be evaluated in any order, from any
//     thread, by any number of tenants, and always agree bit-for-bit;
//   * an instance's zone is a pure hash of (tenant, instance id) over the
//     zones that are up at launch, so placement replays identically;
//   * the capacity clamp during an outage window (capacity scaled by the
//     fraction of zones still up) is a pure function of time, so
//     CloudProvider::TryAcquire can consult it without any event plumbing.
//
// The model only *decides*; acting on a decision (killing instances,
// starting drains) is the simulator's job, driven by kFaultCheck events at
// step boundaries. Everything is gated behind `enabled` (default off), so a
// fault-free run never consults the model and stays bit-exact.

#ifndef SRC_CLOUD_FAULT_INJECTOR_H_
#define SRC_CLOUD_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/common/units.h"

namespace eva {

struct FaultInjectorOptions {
  // Master switch. Disabled: no fault ever fires, no capacity is ever
  // clamped, and the simulator never arms a fault check.
  bool enabled = false;

  // Number of availability zones instances are spread over. Outages and
  // drains are per-zone events.
  int num_zones = 4;

  // Fault schedule granularity: each kind rolls once per (entity, step).
  SimTime check_period_s = 15.0 * kSecondsPerMinute;

  // Zone outage: per (zone, step) probability that the zone drops at the
  // step boundary. Every instance in the zone is killed abruptly (running
  // containers lost, like stragglers at spot reclaim) and the finite family
  // pools are clamped by the down-zone fraction for the outage window.
  double zone_outage_probability = 0.02;
  SimTime zone_outage_duration_s = 30.0 * kSecondsPerMinute;

  // Correlated instance failure: per (family, step) probability that a
  // seeded burst kills up to `correlated_failure_size` instances of one
  // family at once (victims ranked by hash — deterministic, not "the
  // oldest" or "the newest").
  double correlated_failure_probability = 0.01;
  int correlated_failure_size = 4;

  // Maintenance drain: per (zone, step) probability that every instance in
  // the zone is put into a graceful drain — tasks evicted through the
  // checkpoint-then-pend path with `drain_notice_s` of lead time (longer
  // than the 120 s spot warning, so checkpoints normally finish), after
  // which whatever is still aboard is reclaimed abruptly.
  double drain_probability = 0.01;
  SimTime drain_notice_s = 10.0 * kSecondsPerMinute;

  std::uint64_t seed = 8675309;
};

class FaultModel {
 public:
  explicit FaultModel(FaultInjectorOptions options) : options_(options) {}

  const FaultInjectorOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }

  // The fault step containing t (with the same float round-trip guard as
  // SpotMarket: a boundary timestamp belongs to the step it opens), and the
  // earliest boundary strictly after t — where the next kFaultCheck fires.
  std::int64_t StepOf(SimTime t) const;
  SimTime NextStepBoundary(SimTime t) const;

  // --- Fault schedules: pure in (seed, kind, entity, step) ---------------
  bool ZoneOutageStartsAt(int zone, std::int64_t step) const;
  bool CorrelatedFailureAt(int family, std::int64_t step) const;
  bool DrainStartsAt(int zone, std::int64_t step) const;

  // Whether `zone` is inside an outage window at time t: an outage starting
  // at step s covers [s * period, s * period + duration).
  bool ZoneDownAt(int zone, SimTime t) const;
  int UpZoneCount(SimTime t) const;

  // Capacity clamp during outages: capacity scaled by up / total zones
  // (floored). Unlimited pools (capacity < 0) pass through untouched, as
  // does everything when no zone is down.
  int ClampedCapacity(int capacity, SimTime t) const;

  // Deterministic zone assignment for an instance launched at `launch_time`:
  // a hash of (tenant, instance id) over the zones up at launch (all zones
  // when none is up). Pure, so every replay places identically.
  int ZoneAt(int tenant_id, std::int64_t instance_id, SimTime launch_time) const;

  // Victim ordering for a correlated burst: the K live instances of the
  // family with the smallest ranks die. Pure in (seed, tenant, instance,
  // step), so the victim set is independent of iteration order.
  std::uint64_t VictimRank(int tenant_id, std::int64_t instance_id,
                           std::int64_t step) const;

 private:
  // Uniform in [0, 1), pure in (seed, salt, entity, step).
  double HashUniform(std::uint64_t salt, std::int64_t entity, std::int64_t step) const;

  FaultInjectorOptions options_;
};

}  // namespace eva

#endif  // SRC_CLOUD_FAULT_INJECTOR_H_
