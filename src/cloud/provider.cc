#include "src/cloud/provider.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace eva {

std::int64_t CloudProviderMetrics::TotalGranted() const {
  std::int64_t total = 0;
  for (const Family& family : families) {
    total += family.granted;
  }
  return total;
}

std::int64_t CloudProviderMetrics::TotalDenied() const {
  std::int64_t total = 0;
  for (const Family& family : families) {
    total += family.denied;
  }
  return total;
}

std::int64_t CloudProviderMetrics::TotalPreempted() const {
  std::int64_t total = 0;
  for (const Family& family : families) {
    total += family.preempted;
  }
  return total;
}

namespace {

// Freed live-acquire arena slots hold this sentinel; real acquire times are
// always >= 0, so occupied and free slots can never be confused.
constexpr SimTime kFreeAcquireSlot = -1.0;

// The one copy of the tier layout: base types verbatim, then one "-spot"
// twin per type (same family/capacity) priced by `spot_price(index, base
// hourly price)`. Both the stable tiered catalog and every per-round quote
// snapshot are built through here, so their indices can never diverge.
template <typename PriceFn>
std::vector<InstanceType> TieredTypes(const InstanceCatalog& base,
                                      const PriceFn& spot_price) {
  std::vector<InstanceType> types = base.types();
  types.reserve(types.size() * 2);
  for (int i = 0; i < base.NumTypes(); ++i) {
    InstanceType spot = base.Get(i);
    spot.name += "-spot";
    spot.cost_per_hour = spot_price(i, spot.cost_per_hour);
    types.push_back(std::move(spot));
  }
  return types;
}

// Max overlap of the closed intervals {[s, e]} ∪ {[a, ∞)}: sorted sweep,
// starts before ends at equal times. Order-independent by construction —
// the inputs are treated as multisets.
int SweptPeak(std::vector<std::pair<SimTime, SimTime>> lifetimes,
              std::vector<SimTime> live_acquires) {
  std::vector<SimTime> starts;
  std::vector<SimTime> ends;
  starts.reserve(lifetimes.size() + live_acquires.size());
  ends.reserve(lifetimes.size());
  for (const auto& [start, end] : lifetimes) {
    starts.push_back(start);
    ends.push_back(std::max(end, start));
  }
  starts.insert(starts.end(), live_acquires.begin(), live_acquires.end());
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  int current = 0;
  int peak = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < starts.size()) {
    if (j < ends.size() && ends[j] < starts[i]) {
      --current;
      ++j;
    } else {
      ++current;
      ++i;
      peak = std::max(peak, current);
    }
  }
  return peak;
}

}  // namespace

InstanceCatalog CloudProvider::MakeTiered(const InstanceCatalog& base,
                                          const SpotMarket& market) {
  // The stable catalog's spot price is the band midpoint — a placeholder
  // for display only. Decision prices come from the quote snapshots and
  // true costs from InstanceCost; neither reads this entry.
  const double midpoint = 0.5 * (market.options().min_price_fraction +
                                 market.options().max_price_fraction);
  return InstanceCatalog(
      TieredTypes(base, [midpoint](int, Money price) { return price * midpoint; }));
}

CloudProvider::CloudProvider(const InstanceCatalog& base, CloudProviderOptions options)
    : base_(base),
      options_(options),
      market_(base_, options_.spot),
      fault_model_(options_.faults),
      tiered_(options_.spot.enabled ? MakeTiered(base_, market_)
                                    : InstanceCatalog({})) {
  for (std::size_t f = 0; f < static_cast<std::size_t>(kNumInstanceFamilies); ++f) {
    if (options_.family_capacity[f] >= 0) {
      finite_family_mask_ |= 1u << f;
    }
  }
}

std::unique_ptr<InstanceCatalog> CloudProvider::MakeQuoteCatalog(
    SimTime now, double risk_premium) const {
  if (!spot_enabled()) {
    return std::make_unique<InstanceCatalog>(base_.types());
  }
  return std::make_unique<InstanceCatalog>(
      TieredTypes(base_, [this, now, risk_premium](int index, Money) {
        return market_.Quote(index, now) * (1.0 + risk_premium);
      }));
}

std::shared_ptr<const InstanceCatalog> CloudProvider::SharedQuoteCatalog(
    SimTime now, double risk_premium) const {
  std::lock_guard<std::mutex> lock(quote_mutex_);
  if (!spot_enabled()) {
    if (base_snapshot_ == nullptr) {
      base_snapshot_ = std::make_shared<InstanceCatalog>(base_.types());
    }
    return base_snapshot_;
  }
  const std::int64_t step = market_.StepOf(now);
  const auto key = std::make_pair(step, risk_premium);
  auto it = quote_cache_.find(key);
  if (it != quote_cache_.end()) {
    return it->second;
  }
  // Same prices as MakeQuoteCatalog bit-for-bit: Quote(now) ==
  // QuoteAtStep(StepOf(now)), and every `now` in this step maps here.
  auto snapshot = std::make_shared<const InstanceCatalog>(
      TieredTypes(base_, [this, step, risk_premium](int index, Money) {
        return market_.QuoteAtStep(index, step) * (1.0 + risk_premium);
      }));
  quote_cache_.emplace(key, snapshot);
  return snapshot;
}

bool CloudProvider::TryAcquire(int type_index, SimTime now, std::int64_t* slot) {
  const auto family = static_cast<std::size_t>(FamilyOf(type_index));
  const int capacity = options_.family_capacity[family];
  // Windowed outage clamp: a pure function of time, so it is computed
  // outside the shard lock and agrees across tenants and threads.
  const int effective =
      fault_model_.enabled() ? fault_model_.ClampedCapacity(capacity, now) : capacity;
  if (slot != nullptr) {
    *slot = -1;
  }
  FamilyShard& shard = shards_[family];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (capacity >= 0 && shard.in_use >= effective) {
    ++shard.denied;
    if (shard.in_use < capacity) {
      ++shard.fault_denied;  // Nominal headroom existed; the clamp denied.
    }
    return false;
  }
  ++shard.in_use;
  ++shard.granted;
  if (capacity >= 0) {
    shard.peak_in_use = std::max(shard.peak_in_use, shard.in_use);
  } else {
    // Slot arena: reuse a freed index when one exists, grow otherwise. The
    // returned ticket makes the matching Release O(1).
    std::int64_t index;
    if (!shard.live_free.empty()) {
      index = shard.live_free.back();
      shard.live_free.pop_back();
      shard.live_acquires[static_cast<std::size_t>(index)] = now;
    } else {
      index = static_cast<std::int64_t>(shard.live_acquires.size());
      shard.live_acquires.push_back(now);
    }
    if (slot != nullptr) {
      *slot = index;
    }
  }
  return true;
}

void CloudProvider::Release(int type_index, SimTime acquired_at, SimTime now,
                            std::int64_t slot) {
  const auto family = static_cast<std::size_t>(FamilyOf(type_index));
  const int capacity = options_.family_capacity[family];
  FamilyShard& shard = shards_[family];
  std::lock_guard<std::mutex> lock(shard.mutex);
  --shard.in_use;
  ++shard.released;
  shard.lifetimes.emplace_back(acquired_at, now);
  if (capacity < 0) {
    if (slot >= 0) {
      // Ticketed release: O(1) — the federation hot path.
      const auto index = static_cast<std::size_t>(slot);
      EVA_CHECK(index < shard.live_acquires.size() &&
                    shard.live_acquires[index] == acquired_at,
                "provider release ticket does not match its acquire record");
      shard.live_acquires[index] = kFreeAcquireSlot;
      shard.live_free.push_back(slot);
    } else {
      // Ticketless fallback (direct callers): linear scan for the matching
      // acquire time; freed slots hold the sentinel and can never match.
      auto it = std::find(shard.live_acquires.begin(), shard.live_acquires.end(),
                          acquired_at);
      EVA_CHECK(it != shard.live_acquires.end(),
                "provider release without matching acquire record");
      *it = kFreeAcquireSlot;
      shard.live_free.push_back(
          static_cast<std::int64_t>(it - shard.live_acquires.begin()));
    }
  }
}

void CloudProvider::RecordPreemption(int type_index) {
  const auto family = static_cast<std::size_t>(FamilyOf(type_index));
  FamilyShard& shard = shards_[family];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.preempted;
}

Money CloudProvider::InstanceCost(int type_index, SimTime t0, SimTime t1) const {
  if (IsSpotType(type_index)) {
    return market_.CostForInterval(BaseType(type_index), t0, t1);
  }
  return CostForUptime(tiered_catalog().Get(type_index).cost_per_hour,
                       std::max(t1 - t0, 0.0));
}

CloudProviderMetrics CloudProvider::FinalizeMetrics(SimTime horizon) const {
  CloudProviderMetrics metrics;
  for (std::size_t f = 0; f < static_cast<std::size_t>(kNumInstanceFamilies); ++f) {
    const FamilyShard& shard = shards_[f];
    std::lock_guard<std::mutex> lock(shard.mutex);
    CloudProviderMetrics::Family& out = metrics.families[f];
    out.capacity = options_.family_capacity[f];
    out.granted = shard.granted;
    out.denied = shard.denied;
    out.preempted = shard.preempted;
    out.released = shard.released;
    out.fault_denied = shard.fault_denied;
    // Fold lifetimes in (start, end) order: the records arrive in
    // nondeterministic order under concurrent release, and floating-point
    // sums are order-sensitive — sorting first makes the fold reproducible.
    std::vector<std::pair<SimTime, SimTime>> sorted = shard.lifetimes;
    std::sort(sorted.begin(), sorted.end());
    double instance_seconds = 0.0;
    for (const auto& [start, end] : sorted) {
      instance_seconds += std::max(end - start, 0.0);
    }
    out.instance_hours = SecondsToHours(instance_seconds);
    if (out.capacity >= 0) {
      out.peak_in_use = shard.peak_in_use;
    } else {
      // Unlimited pools grant concurrently, so a running max would depend
      // on thread interleaving; sweep the (multiset-deterministic) interval
      // records instead. Only occupied arena slots are open intervals.
      std::vector<SimTime> live;
      live.reserve(shard.live_acquires.size() - shard.live_free.size());
      for (const SimTime acquired : shard.live_acquires) {
        if (acquired >= 0.0) {
          live.push_back(acquired);
        }
      }
      out.peak_in_use = SweptPeak(sorted, std::move(live));
    }
    if (out.capacity > 0 && horizon > 0.0) {
      out.avg_utilization = instance_seconds / (static_cast<double>(out.capacity) * horizon);
    }
  }
  return metrics;
}

}  // namespace eva
