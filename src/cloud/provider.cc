#include "src/cloud/provider.h"

#include <algorithm>
#include <utility>

namespace eva {

std::int64_t CloudProviderMetrics::TotalGranted() const {
  std::int64_t total = 0;
  for (const Family& family : families) {
    total += family.granted;
  }
  return total;
}

std::int64_t CloudProviderMetrics::TotalDenied() const {
  std::int64_t total = 0;
  for (const Family& family : families) {
    total += family.denied;
  }
  return total;
}

std::int64_t CloudProviderMetrics::TotalPreempted() const {
  std::int64_t total = 0;
  for (const Family& family : families) {
    total += family.preempted;
  }
  return total;
}

namespace {

// The one copy of the tier layout: base types verbatim, then one "-spot"
// twin per type (same family/capacity) priced by `spot_price(index, base
// hourly price)`. Both the stable tiered catalog and every per-round quote
// snapshot are built through here, so their indices can never diverge.
template <typename PriceFn>
std::vector<InstanceType> TieredTypes(const InstanceCatalog& base,
                                      const PriceFn& spot_price) {
  std::vector<InstanceType> types = base.types();
  types.reserve(types.size() * 2);
  for (int i = 0; i < base.NumTypes(); ++i) {
    InstanceType spot = base.Get(i);
    spot.name += "-spot";
    spot.cost_per_hour = spot_price(i, spot.cost_per_hour);
    types.push_back(std::move(spot));
  }
  return types;
}

}  // namespace

InstanceCatalog CloudProvider::MakeTiered(const InstanceCatalog& base,
                                          const SpotMarket& market) {
  // The stable catalog's spot price is the band midpoint — a placeholder
  // for display only. Decision prices come from MakeQuoteCatalog and true
  // costs from InstanceCost; neither reads this entry.
  const double midpoint = 0.5 * (market.options().min_price_fraction +
                                 market.options().max_price_fraction);
  return InstanceCatalog(
      TieredTypes(base, [midpoint](int, Money price) { return price * midpoint; }));
}

CloudProvider::CloudProvider(const InstanceCatalog& base, CloudProviderOptions options)
    : base_(base),
      options_(options),
      market_(base_, options_.spot),
      tiered_(options_.spot.enabled ? MakeTiered(base_, market_)
                                    : InstanceCatalog({})) {}

std::unique_ptr<InstanceCatalog> CloudProvider::MakeQuoteCatalog(
    SimTime now, double risk_premium) const {
  if (!spot_enabled()) {
    return std::make_unique<InstanceCatalog>(base_.types());
  }
  return std::make_unique<InstanceCatalog>(
      TieredTypes(base_, [this, now, risk_premium](int index, Money) {
        return market_.Quote(index, now) * (1.0 + risk_premium);
      }));
}

bool CloudProvider::TryAcquire(int type_index, SimTime now) {
  (void)now;
  const auto family = static_cast<std::size_t>(FamilyOf(type_index));
  std::lock_guard<std::mutex> lock(mutex_);
  FamilyState& state = families_[family];
  const int capacity = options_.family_capacity[family];
  if (capacity >= 0 && state.in_use >= capacity) {
    ++state.denied;
    return false;
  }
  ++state.in_use;
  ++state.granted;
  state.peak_in_use = std::max(state.peak_in_use, state.in_use);
  return true;
}

void CloudProvider::Release(int type_index, SimTime acquired_at, SimTime now) {
  const auto family = static_cast<std::size_t>(FamilyOf(type_index));
  std::lock_guard<std::mutex> lock(mutex_);
  FamilyState& state = families_[family];
  --state.in_use;
  ++state.released;
  state.lifetimes.emplace_back(acquired_at, now);
}

void CloudProvider::RecordPreemption(int type_index) {
  const auto family = static_cast<std::size_t>(FamilyOf(type_index));
  std::lock_guard<std::mutex> lock(mutex_);
  ++families_[family].preempted;
}

Money CloudProvider::InstanceCost(int type_index, SimTime t0, SimTime t1) const {
  if (IsSpotType(type_index)) {
    return market_.CostForInterval(BaseType(type_index), t0, t1);
  }
  return CostForUptime(tiered_catalog().Get(type_index).cost_per_hour,
                       std::max(t1 - t0, 0.0));
}

CloudProviderMetrics CloudProvider::FinalizeMetrics(SimTime horizon) const {
  CloudProviderMetrics metrics;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t f = 0; f < static_cast<std::size_t>(kNumInstanceFamilies); ++f) {
    const FamilyState& state = families_[f];
    CloudProviderMetrics::Family& out = metrics.families[f];
    out.capacity = options_.family_capacity[f];
    out.granted = state.granted;
    out.denied = state.denied;
    out.preempted = state.preempted;
    out.released = state.released;
    out.peak_in_use = state.peak_in_use;
    // Fold lifetimes in (start, end) order: the records arrive in
    // nondeterministic order under concurrent release, and floating-point
    // sums are order-sensitive — sorting first makes the fold reproducible.
    std::vector<std::pair<SimTime, SimTime>> sorted = state.lifetimes;
    std::sort(sorted.begin(), sorted.end());
    double instance_seconds = 0.0;
    for (const auto& [start, end] : sorted) {
      instance_seconds += std::max(end - start, 0.0);
    }
    out.instance_hours = SecondsToHours(instance_seconds);
    if (out.capacity > 0 && horizon > 0.0) {
      out.avg_utilization = instance_seconds / (static_cast<double>(out.capacity) * horizon);
    }
  }
  return metrics;
}

}  // namespace eva
