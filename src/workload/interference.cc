#include "src/workload/interference.h"

#include <cassert>

namespace eva {

InterferenceModel InterferenceModel::Measured() {
  // Figure 1, rows = observed workload, columns = co-located partner, in
  // profile order: ResNet18, GraphSAGE, CycleGAN, GPT2, GCN, OpenFOAM,
  // Diamond, A3C.
  std::vector<std::vector<double>> matrix = {
      {0.93, 0.97, 1.00, 0.92, 0.83, 0.99, 0.89, 0.83},  // ResNet18
      {0.89, 0.89, 0.98, 0.97, 0.88, 0.95, 1.00, 0.74},  // GraphSAGE
      {0.99, 1.00, 0.99, 0.99, 0.85, 1.00, 1.00, 1.00},  // CycleGAN
      {0.79, 0.96, 0.79, 0.86, 1.00, 0.99, 0.80, 0.78},  // GPT2
      {0.92, 0.90, 0.95, 0.98, 0.90, 0.99, 0.95, 0.65},  // GCN
      {0.81, 0.98, 0.98, 0.99, 0.95, 0.97, 0.83, 0.94},  // OpenFOAM
      {0.96, 0.98, 1.00, 1.00, 0.99, 1.00, 0.93, 0.89},  // Diamond
      {0.91, 0.91, 0.98, 0.96, 0.94, 1.00, 0.94, 0.67},  // A3C
  };
  return InterferenceModel(std::move(matrix));
}

InterferenceModel InterferenceModel::Uniform(double pairwise_throughput) {
  std::vector<std::vector<double>> matrix(
      kNumInterferenceProfiles,
      std::vector<double>(kNumInterferenceProfiles, pairwise_throughput));
  return InterferenceModel(std::move(matrix));
}

InterferenceModel::InterferenceModel(std::vector<std::vector<double>> matrix)
    : matrix_(std::move(matrix)) {
  assert(matrix_.size() == static_cast<std::size_t>(kNumInterferenceProfiles));
  for (const auto& row : matrix_) {
    assert(row.size() == static_cast<std::size_t>(kNumInterferenceProfiles));
    (void)row;
  }
}

double InterferenceModel::Pairwise(InterferenceProfile observed,
                                   InterferenceProfile partner) const {
  return matrix_[static_cast<std::size_t>(observed)][static_cast<std::size_t>(partner)];
}

double InterferenceModel::Throughput(InterferenceProfile observed,
                                     const std::vector<InterferenceProfile>& partners) const {
  double tput = 1.0;
  for (InterferenceProfile partner : partners) {
    tput *= Pairwise(observed, partner);
  }
  return tput;
}

double InterferenceModel::Pairwise(WorkloadId observed, WorkloadId partner) const {
  return Pairwise(WorkloadRegistry::Get(observed).profile,
                  WorkloadRegistry::Get(partner).profile);
}

double InterferenceModel::Throughput(WorkloadId observed,
                                     const std::vector<WorkloadId>& partners) const {
  double tput = 1.0;
  for (WorkloadId partner : partners) {
    tput *= Pairwise(observed, partner);
  }
  return tput;
}

}  // namespace eva
