#include "src/workload/job.h"

#include <algorithm>
#include <cstdio>

#include "src/common/csv.h"

namespace eva {

JobSpec JobSpec::FromWorkload(JobId id, SimTime arrival_time_s, WorkloadId workload,
                              SimTime duration_s, int num_tasks) {
  const WorkloadSpec& spec = WorkloadRegistry::Get(workload);
  JobSpec job;
  job.id = id;
  job.arrival_time_s = arrival_time_s;
  job.num_tasks = num_tasks > 0 ? num_tasks : spec.default_num_tasks;
  job.workload = workload;
  job.demand_p3 = spec.demand_p3;
  job.demand_cpu = spec.demand_cpu;
  job.duration_s = duration_s;
  return job;
}

void Trace::Normalize() {
  std::stable_sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    return a.arrival_time_s < b.arrival_time_s;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
}

std::string Trace::ToCsv() const {
  CsvTable table({"id", "arrival_s", "num_tasks", "workload", "gpu", "cpu", "ram", "gpu_alt",
                  "cpu_alt", "ram_alt", "duration_s"});
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  for (const JobSpec& job : jobs) {
    table.AddRow({std::to_string(job.id), fmt(job.arrival_time_s), std::to_string(job.num_tasks),
                  WorkloadRegistry::Get(job.workload).name, fmt(job.demand_p3.gpus()),
                  fmt(job.demand_p3.cpus()), fmt(job.demand_p3.ram_gb()),
                  fmt(job.demand_cpu.gpus()), fmt(job.demand_cpu.cpus()),
                  fmt(job.demand_cpu.ram_gb()), fmt(job.duration_s)});
  }
  return table.ToString();
}

std::optional<Trace> Trace::FromCsv(const std::string& csv, const std::string& name) {
  std::optional<CsvTable> table = CsvTable::Parse(csv);
  if (!table.has_value()) {
    return std::nullopt;
  }
  Trace trace;
  trace.name = name;
  for (std::size_t i = 0; i < table->NumRows(); ++i) {
    JobSpec job;
    try {
      job.id = std::stoll(table->Field(i, "id"));
      job.arrival_time_s = std::stod(table->Field(i, "arrival_s"));
      job.num_tasks = std::stoi(table->Field(i, "num_tasks"));
      job.workload = WorkloadRegistry::IdOf(table->Field(i, "workload"));
      job.demand_p3 = ResourceVector(std::stod(table->Field(i, "gpu")),
                                     std::stod(table->Field(i, "cpu")),
                                     std::stod(table->Field(i, "ram")));
      job.demand_cpu = ResourceVector(std::stod(table->Field(i, "gpu_alt")),
                                      std::stod(table->Field(i, "cpu_alt")),
                                      std::stod(table->Field(i, "ram_alt")));
      job.duration_s = std::stod(table->Field(i, "duration_s"));
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (job.workload == kInvalidWorkloadId || job.num_tasks < 1 || job.duration_s <= 0.0) {
      return std::nullopt;
    }
    trace.jobs.push_back(job);
  }
  return trace;
}

}  // namespace eva
