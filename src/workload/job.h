// Job and trace types.
//
// A job (§2.3) consists of one or more tasks with identical per-task
// demands. Multi-task jobs follow the data-parallel performance dependency
// of §4.4: the job progresses at the speed of its slowest task.

#ifndef SRC_WORKLOAD_JOB_H_
#define SRC_WORKLOAD_JOB_H_

#include <array>
#include <string>
#include <vector>

#include "src/cloud/instance_type.h"
#include "src/common/resources.h"
#include "src/common/units.h"
#include "src/workload/workload.h"

namespace eva {

struct JobSpec {
  JobId id = kInvalidJobId;
  SimTime arrival_time_s = 0.0;
  int num_tasks = 1;

  // Table 7 workload this job is modeled after; defines interference
  // behavior and checkpoint/launch migration delays.
  WorkloadId workload = kInvalidWorkloadId;

  // Per-task resource demand. For synthetic traces these equal the workload
  // spec's demands; for Alibaba-like traces they come from the trace and the
  // workload only supplies interference/migration behavior.
  ResourceVector demand_p3;
  ResourceVector demand_cpu;

  // Standalone running time: how long one (or all, in lockstep) task(s)
  // take at normalized throughput 1.0 with no co-location on a speedup-1.0
  // family. The simulator treats this as the job's total work.
  SimTime duration_s = 0.0;

  // Relative per-iteration speed on each instance family (§4.2's
  // heterogeneous-resources extension); 1.0 everywhere reproduces the
  // paper's homogeneous setting.
  std::array<double, kNumInstanceFamilies> family_speedup = {1.0, 1.0, 1.0};

  const ResourceVector& DemandFor(InstanceFamily family) const {
    return family == InstanceFamily::kP3 ? demand_p3 : demand_cpu;
  }

  // Fills demands from the workload registry.
  static JobSpec FromWorkload(JobId id, SimTime arrival_time_s, WorkloadId workload,
                              SimTime duration_s, int num_tasks = 0 /* 0 = workload default */);
};

// An ordered-by-arrival list of jobs.
struct Trace {
  std::string name;
  std::vector<JobSpec> jobs;

  // Sorts by arrival time (stable), reassigning ids 0..n-1 in order.
  void Normalize();

  // CSV round-trip (columns: id, arrival_s, num_tasks, workload, gpu, cpu,
  // ram, gpu_alt, cpu_alt, ram_alt, duration_s).
  std::string ToCsv() const;
  static std::optional<Trace> FromCsv(const std::string& csv, const std::string& name);
};

}  // namespace eva

#endif  // SRC_WORKLOAD_JOB_H_
