// Ground-truth co-location interference model (Figure 1 of the paper).
//
// Figure 1 reports the normalized throughput of workload A when co-located
// with workload B on the same instance (both on disjoint GPUs/CPUs, sharing
// LLC / disk / network). The simulator uses this as hidden ground truth; the
// Eva scheduler never reads it directly and must learn it online through the
// ThroughputMonitor, exactly as in the paper.
//
// For more than two co-resident tasks the model multiplies pairwise factors,
// which is also the estimator the paper's co-location throughput table uses
// for unobserved sets (§4.3).

#ifndef SRC_WORKLOAD_INTERFERENCE_H_
#define SRC_WORKLOAD_INTERFERENCE_H_

#include <vector>

#include "src/workload/workload.h"

namespace eva {

class InterferenceModel {
 public:
  // The Figure 1 matrix.
  static InterferenceModel Measured();

  // Uniform pairwise throughput (the Figure 4 sweep sets this to
  // {1, 0.95, 0.9, 0.85, 0.8}). Self-pairs included.
  static InterferenceModel Uniform(double pairwise_throughput);

  // Normalized throughput of `observed` when co-located with one `partner`.
  double Pairwise(InterferenceProfile observed, InterferenceProfile partner) const;

  // Normalized throughput of `observed` when co-located with all `partners`
  // (product of pairwise factors; 1.0 for no partners).
  double Throughput(InterferenceProfile observed,
                    const std::vector<InterferenceProfile>& partners) const;

  // Convenience overloads keyed by workload id.
  double Pairwise(WorkloadId observed, WorkloadId partner) const;
  double Throughput(WorkloadId observed, const std::vector<WorkloadId>& partners) const;

 private:
  explicit InterferenceModel(
      std::vector<std::vector<double>> matrix);

  std::vector<std::vector<double>> matrix_;  // [observed][partner]
};

}  // namespace eva

#endif  // SRC_WORKLOAD_INTERFERENCE_H_
