#include "src/workload/workload.h"

#include <cassert>

namespace eva {

const std::vector<WorkloadSpec>& WorkloadRegistry::Table7() {
  // Demands are per task: (GPU, CPU, RAM GB). The second vector is the
  // demand on C7i/R7i; per Table 7, CPU-only jobs achieve the same
  // throughput there with fewer cores. ViT reuses the ResNet18 interference
  // profile (same application class); ResNet18-4task shares ResNet18's.
  static const std::vector<WorkloadSpec> kTable = {
      {"ResNet18-2task", {1, 4, 24}, {1, 4, 24}, 2.0, 80.0, 2, InterferenceProfile::kResNet18},
      {"ResNet18-4task", {1, 4, 24}, {1, 4, 24}, 2.0, 80.0, 4, InterferenceProfile::kResNet18},
      {"ViT", {2, 8, 60}, {2, 8, 60}, 3.0, 143.0, 1, InterferenceProfile::kResNet18},
      {"CycleGAN", {1, 4, 10}, {1, 4, 10}, 7.0, 2.0, 1, InterferenceProfile::kCycleGan},
      {"GPT2", {4, 4, 10}, {4, 4, 10}, 30.0, 15.0, 1, InterferenceProfile::kGpt2},
      {"GraphSAGE", {1, 8, 50}, {1, 8, 50}, 2.0, 160.0, 1, InterferenceProfile::kGraphSage},
      {"GCN", {0, 12, 40}, {0, 6, 40}, 2.0, 28.0, 1, InterferenceProfile::kGcn},
      {"A3C", {0, 10, 8}, {0, 4, 8}, 2.0, 10.0, 1, InterferenceProfile::kA3c},
      {"Diamond", {0, 14, 16}, {0, 8, 16}, 8.0, 12.0, 1, InterferenceProfile::kDiamond},
      {"OpenFOAM", {0, 8, 8}, {0, 6, 8}, 21.0, 1.0, 1, InterferenceProfile::kOpenFoam},
  };
  return kTable;
}

int WorkloadRegistry::NumWorkloads() { return static_cast<int>(Table7().size()); }

const WorkloadSpec& WorkloadRegistry::Get(WorkloadId id) {
  assert(id >= 0 && id < NumWorkloads());
  return Table7()[static_cast<std::size_t>(id)];
}

WorkloadId WorkloadRegistry::IdOf(const std::string& name) {
  const auto& table = Table7();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i].name == name) {
      return static_cast<WorkloadId>(i);
    }
  }
  return kInvalidWorkloadId;
}

std::vector<WorkloadId> WorkloadRegistry::GpuWorkloads() {
  std::vector<WorkloadId> ids;
  for (int i = 0; i < NumWorkloads(); ++i) {
    if (Get(i).IsGpuWorkload()) {
      ids.push_back(i);
    }
  }
  return ids;
}

std::vector<WorkloadId> WorkloadRegistry::CpuWorkloads() {
  std::vector<WorkloadId> ids;
  for (int i = 0; i < NumWorkloads(); ++i) {
    if (!Get(i).IsGpuWorkload()) {
      ids.push_back(i);
    }
  }
  return ids;
}

}  // namespace eva
