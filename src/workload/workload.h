// The Table 7 workload registry.
//
// The paper evaluates 10 batch workloads spanning ML training, bioinformatics
// and CFD. Each workload carries per-task resource demands (with lower CPU
// demands on the higher-frequency C7i/R7i families), checkpoint/launch
// migration delays, a default task count (the two ResNet18 entries are
// multi-task data-parallel jobs), and an interference profile indexing into
// the Figure 1 matrix.

#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/cloud/instance_type.h"
#include "src/common/resources.h"
#include "src/common/units.h"

namespace eva {

// Index into WorkloadRegistry::Table7().
using WorkloadId = int;

inline constexpr WorkloadId kInvalidWorkloadId = -1;

// Interference profiles measured in Figure 1 (8 distinct applications).
enum class InterferenceProfile : int {
  kResNet18 = 0,
  kGraphSage = 1,
  kCycleGan = 2,
  kGpt2 = 3,
  kGcn = 4,
  kOpenFoam = 5,
  kDiamond = 6,
  kA3c = 7,
};

inline constexpr int kNumInterferenceProfiles = 8;

struct WorkloadSpec {
  std::string name;
  ResourceVector demand_p3;    // Per-task demand on P3 (GPU) instances.
  ResourceVector demand_cpu;   // Per-task demand on C7i/R7i instances.
  SimTime checkpoint_delay_s;  // Table 7 "Mig. Delay / Checkpoint".
  SimTime launch_delay_s;      // Table 7 "Mig. Delay / Launch".
  int default_num_tasks;       // 1 except the two ResNet18 entries.
  InterferenceProfile profile; // Row/column of Figure 1 this workload uses.

  // Demand on a given instance family (GPU workloads demand the same vector
  // everywhere; CPU workloads need fewer C7i/R7i cores).
  const ResourceVector& DemandFor(InstanceFamily family) const {
    return family == InstanceFamily::kP3 ? demand_p3 : demand_cpu;
  }

  bool IsGpuWorkload() const { return demand_p3.gpus() > 0.0; }
};

class WorkloadRegistry {
 public:
  // The 10 workloads of Table 7, in paper order:
  //   0 ResNet18-2task, 1 ResNet18-4task, 2 ViT, 3 CycleGAN, 4 GPT2,
  //   5 GraphSAGE, 6 GCN, 7 A3C, 8 Diamond, 9 OpenFOAM.
  static const std::vector<WorkloadSpec>& Table7();

  static int NumWorkloads();
  static const WorkloadSpec& Get(WorkloadId id);

  // Id by name, or kInvalidWorkloadId.
  static WorkloadId IdOf(const std::string& name);

  // Ids of all GPU (resp. CPU-only) workloads, for composition sweeps.
  static std::vector<WorkloadId> GpuWorkloads();
  static std::vector<WorkloadId> CpuWorkloads();
};

}  // namespace eva

#endif  // SRC_WORKLOAD_WORKLOAD_H_
