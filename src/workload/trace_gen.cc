#include "src/workload/trace_gen.h"

#include <algorithm>
#include <cmath>

namespace eva {
namespace {

// Table 8: Alibaba job composition by GPU demand.
constexpr double kGpuDemandWeights[] = {13.41, 86.17, 0.20, 0.18, 0.04};
constexpr double kGpuDemandValues[] = {0, 1, 2, 4, 8};

// Alibaba duration model matched to the Table 9 quantiles (median 0.2 h,
// P80 1.0 h, P95 5.2 h, mean ~9 h): a lognormal body (98% of jobs, median
// 0.2 h, sigma tuned so P80 ~ 1 h) plus a 2% uniform tail of multi-day
// stragglers (100 h - 30 days, mean ~410 h) that lifts the mixture mean to
// ~9 h without dragging P95 far above the paper's 5.2 h.
constexpr double kAlibabaBodyMu = -1.6094379124341003;  // ln(0.2)
constexpr double kAlibabaBodySigma = 1.609;
constexpr double kAlibabaTailProb = 0.02;
constexpr double kAlibabaTailMinHours = 100.0;
constexpr double kAlibabaMaxHours = 720.0;

SimTime PoissonArrival(Rng& rng, double mean_interarrival_s, SimTime& clock) {
  clock += rng.Exponential(1.0 / mean_interarrival_s);
  return clock;
}

}  // namespace

Trace GenerateSyntheticTrace(const SyntheticTraceOptions& options) {
  Rng rng(options.seed);
  Trace trace;
  trace.name = "synthetic-" + std::to_string(options.num_jobs);
  SimTime clock = 0.0;
  for (int i = 0; i < options.num_jobs; ++i) {
    const SimTime arrival = PoissonArrival(rng, options.mean_interarrival_s, clock);
    const WorkloadId workload =
        static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
    const double duration_h = rng.Uniform(options.min_duration_hours, options.max_duration_hours);
    trace.jobs.push_back(JobSpec::FromWorkload(static_cast<JobId>(i), arrival, workload,
                                               HoursToSeconds(duration_h)));
  }
  trace.Normalize();
  return trace;
}

Trace GenerateMultiTaskMicroTrace(const MultiTaskMicroOptions& options) {
  Rng rng(options.seed);
  Trace trace;
  trace.name = "multitask-micro";
  SimTime clock = 0.0;
  for (int i = 0; i < options.num_jobs; ++i) {
    const SimTime arrival = PoissonArrival(rng, options.mean_interarrival_s, clock);
    const WorkloadId workload =
        static_cast<WorkloadId>(rng.UniformInt(0, WorkloadRegistry::NumWorkloads() - 1));
    const double duration_h = rng.Uniform(options.min_duration_hours, options.max_duration_hours);
    trace.jobs.push_back(JobSpec::FromWorkload(static_cast<JobId>(i), arrival, workload,
                                               HoursToSeconds(duration_h),
                                               options.tasks_per_job));
  }
  trace.Normalize();
  return trace;
}

SimTime SampleDuration(DurationModel model, Rng& rng) {
  switch (model) {
    case DurationModel::kAlibaba: {
      double hours;
      if (rng.Bernoulli(kAlibabaTailProb)) {
        hours = rng.Uniform(kAlibabaTailMinHours, kAlibabaMaxHours);
      } else {
        hours = rng.LogNormal(kAlibabaBodyMu, kAlibabaBodySigma);
      }
      hours = std::min(hours, kAlibabaMaxHours);
      return HoursToSeconds(std::max(hours, 1.0 / 60.0));  // at least one minute
    }
    case DurationModel::kGavel: {
      // 10^x minutes; x ~ U[1.5, 3] w.p. 0.8, else U[3, 4].
      const double x = rng.Bernoulli(0.8) ? rng.Uniform(1.5, 3.0) : rng.Uniform(3.0, 4.0);
      return MinutesToSeconds(std::pow(10.0, x));
    }
  }
  return kSecondsPerHour;
}

Trace GenerateAlibabaTrace(const AlibabaTraceOptions& options) {
  Rng rng(options.seed);
  Trace trace;
  trace.name = options.duration_model == DurationModel::kAlibaba ? "alibaba" : "alibaba-gavel";

  const std::vector<double> gpu_weights(std::begin(kGpuDemandWeights),
                                        std::end(kGpuDemandWeights));
  const std::vector<WorkloadId> gpu_workloads = WorkloadRegistry::GpuWorkloads();
  const std::vector<WorkloadId> cpu_workloads = WorkloadRegistry::CpuWorkloads();

  SimTime clock = 0.0;
  for (int i = 0; i < options.num_jobs; ++i) {
    JobSpec job;
    job.id = static_cast<JobId>(i);
    job.arrival_time_s = PoissonArrival(rng, options.mean_interarrival_s, clock);
    job.num_tasks = 1;  // The original trace consists only of single-task jobs.

    const double gpus = kGpuDemandValues[rng.Categorical(gpu_weights)];
    double cpus;
    double ram;
    if (gpus > 0.0) {
      // CPU demand scales loosely with GPU count; like the production
      // trace, demands frequently straddle instance shapes (a 1-GPU job
      // needing >4 cores or >61 GB forces a p3.8xlarge, stranding GPUs —
      // the fragmentation the packers recapture).
      cpus = std::min(32.0, gpus * static_cast<double>(rng.UniformInt(1, 8)));
      ram = std::min(488.0, gpus * rng.Uniform(4.0, 96.0));
      job.workload =
          gpu_workloads[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(gpu_workloads.size()) - 1))];
    } else {
      cpus = static_cast<double>(rng.UniformInt(1, 12));
      ram = rng.Uniform(2.0, 96.0);
      job.workload =
          cpu_workloads[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(cpu_workloads.size()) - 1))];
    }
    job.demand_p3 = ResourceVector(gpus, cpus, ram);
    job.demand_cpu = job.demand_p3;  // The trace preserves demands verbatim.
    job.duration_s = SampleDuration(options.duration_model, rng);
    if (options.max_duration_hours > 0.0) {
      job.duration_s = std::min(job.duration_s, HoursToSeconds(options.max_duration_hours));
    }
    trace.jobs.push_back(job);
  }
  trace.Normalize();
  return trace;
}

TraceResamplePlan MakeResamplePlan(const Trace& source) {
  TraceResamplePlan plan;
  plan.source = &source;
  // Empirical mean inter-arrival of the source process (its jobs are
  // arrival-sorted after Normalize); a single-job source has no spacing
  // information, so fall back to one hour.
  const double span = source.jobs.empty()
                          ? 0.0
                          : source.jobs.back().arrival_time_s -
                                source.jobs.front().arrival_time_s;
  plan.source_mean_interarrival_s =
      source.jobs.size() > 1 && span > 0.0
          ? span / static_cast<double>(source.jobs.size() - 1)
          : kSecondsPerHour;
  return plan;
}

Trace ScaleTrace(const Trace& source, const TraceScaleOptions& options) {
  return ScaleTraceFromPlan(MakeResamplePlan(source), options);
}

Trace ScaleTraceFromPlan(const TraceResamplePlan& plan,
                         const TraceScaleOptions& options) {
  const Trace& source = *plan.source;
  Trace trace;
  trace.name = source.name + "-x" + std::to_string(options.target_jobs);
  if (source.jobs.empty() || options.target_jobs <= 0) {
    return trace;
  }
  const double rate_scale =
      std::max(1e-9, options.rate_multiplier) *
      (static_cast<double>(options.target_jobs) / static_cast<double>(source.jobs.size()));
  const double mean_interarrival = plan.source_mean_interarrival_s / rate_scale;

  Rng rng(options.seed);
  trace.jobs.reserve(static_cast<std::size_t>(options.target_jobs));
  SimTime clock = 0.0;
  for (int i = 0; i < options.target_jobs; ++i) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(source.jobs.size()) - 1));
    JobSpec job = source.jobs[pick];
    job.id = static_cast<JobId>(i);
    job.arrival_time_s = PoissonArrival(rng, mean_interarrival, clock);
    trace.jobs.push_back(job);
  }
  trace.Normalize();
  return trace;
}

Trace WithMultiGpuFraction(Trace trace, double multi_gpu_fraction, std::uint64_t seed) {
  Rng rng(seed);
  // Figure 6: 2-GPU : 4-GPU : 8-GPU in ratio 5:4:1.
  const std::vector<double> class_weights = {5.0, 4.0, 1.0};
  const double class_gpus[] = {2.0, 4.0, 8.0};
  for (JobSpec& job : trace.jobs) {
    if (job.demand_p3.gpus() <= 0.0) {
      continue;  // The proportion of non-GPU jobs stays the same.
    }
    if (!rng.Bernoulli(multi_gpu_fraction)) {
      // Rewrite as a single-GPU job so the sweep controls the fraction
      // exactly regardless of the base trace's composition.
      const double scale = 1.0 / std::max(1.0, job.demand_p3.gpus());
      job.demand_p3 = ResourceVector(1.0, std::max(1.0, job.demand_p3.cpus() * scale),
                                     std::max(1.0, job.demand_p3.ram_gb() * scale));
      job.demand_cpu = job.demand_p3;
      continue;
    }
    const double gpus = class_gpus[rng.Categorical(class_weights)];
    const double scale = gpus / std::max(1.0, job.demand_p3.gpus());
    job.demand_p3 = ResourceVector(gpus, std::min(32.0, std::max(1.0, job.demand_p3.cpus() * scale)),
                                   std::min(488.0, std::max(1.0, job.demand_p3.ram_gb() * scale)));
    job.demand_cpu = job.demand_p3;
  }
  trace.name += "-multigpu";
  return trace;
}

Trace WithMultiTaskFraction(Trace trace, double multi_task_fraction, std::uint64_t seed) {
  Rng rng(seed);
  for (JobSpec& job : trace.jobs) {
    if (rng.Bernoulli(multi_task_fraction)) {
      job.num_tasks = rng.Bernoulli(0.5) ? 2 : 4;  // 1:1 ratio of 2- and 4-task jobs.
    } else {
      job.num_tasks = 1;
    }
  }
  trace.name += "-multitask";
  return trace;
}

Trace WithArrivalRate(Trace trace, double jobs_per_hour) {
  if (trace.jobs.empty() || jobs_per_hour <= 0.0) {
    return trace;
  }
  const SimTime span = trace.jobs.back().arrival_time_s;
  if (span <= 0.0) {
    return trace;
  }
  const double current_rate =
      static_cast<double>(trace.jobs.size()) / SecondsToHours(span);
  const double scale = current_rate / jobs_per_hour;
  for (JobSpec& job : trace.jobs) {
    job.arrival_time_s *= scale;
  }
  return trace;
}

}  // namespace eva
