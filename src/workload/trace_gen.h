// Trace generators for the paper's experiments.
//
// Synthetic traces (§6.1 physical experiments): jobs sampled uniformly from
// the Table 7 workloads with Poisson arrivals (mean inter-arrival 20 min)
// and durations uniform in [0.5, 3] hours.
//
// Alibaba-like traces (§6.1 simulated experiments): a statistical stand-in
// for cluster-trace-gpu-v2023 matched to Table 8 (GPU-demand composition)
// and Table 9 (duration percentiles), with per-job Table 7 workloads
// assigned to model migration overhead and interference, exactly as the
// paper does. Gavel durations (10^x minutes) are the alternative model used
// for Table 14.
//
// Composition modifiers implement the Figure 6 (multi-GPU share) and
// Figure 7 (multi-task share) sweeps.

#ifndef SRC_WORKLOAD_TRACE_GEN_H_
#define SRC_WORKLOAD_TRACE_GEN_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/workload/job.h"

namespace eva {

struct SyntheticTraceOptions {
  int num_jobs = 120;
  double mean_interarrival_s = 20.0 * kSecondsPerMinute;
  double min_duration_hours = 0.5;
  double max_duration_hours = 3.0;
  std::uint64_t seed = 1;
};

// The physical-experiment trace generator (120-job and 32-job traces).
Trace GenerateSyntheticTrace(const SyntheticTraceOptions& options);

struct MultiTaskMicroOptions {
  // The Table 6 micro-benchmark: 100 jobs of 4 identical tasks each,
  // durations 0.5-16 h, workloads uniform over Table 7.
  int num_jobs = 100;
  int tasks_per_job = 4;
  double mean_interarrival_s = 20.0 * kSecondsPerMinute;
  double min_duration_hours = 0.5;
  double max_duration_hours = 16.0;
  std::uint64_t seed = 1;
};

Trace GenerateMultiTaskMicroTrace(const MultiTaskMicroOptions& options);

enum class DurationModel {
  kAlibaba,  // Table 9 row 1: median 0.2 h, P80 1.0 h, P95 5.2 h, mean ~9 h.
  kGavel,    // Table 9 row 2: 10^x minutes, x~U[1.5,3] w.p. 0.8 else U[3,4].
};

struct AlibabaTraceOptions {
  int num_jobs = 6274;
  double mean_interarrival_s = 20.0 * kSecondsPerMinute;
  DurationModel duration_model = DurationModel::kAlibaba;
  std::uint64_t seed = 1;

  // Optional cap on job durations (hours). At the full 6,274-job scale the
  // 2% multi-day tail averages out; reduced-scale sweep runs can clamp it
  // so a single month-long job does not dominate a whole row. <= 0 keeps
  // the unclamped Table 9 distribution.
  double max_duration_hours = 0.0;
};

// Statistical Alibaba-like trace (single-task jobs, like the original).
Trace GenerateAlibabaTrace(const AlibabaTraceOptions& options);

// Deterministic scaler for large-trace runs: grows (or thins) a source
// trace to `target_jobs` while preserving its job-mix marginals.
//
//   * Job mix: every scaled job is resampled uniformly (seeded) from the
//     source trace's empirical job distribution — demands, workload,
//     duration and task count are copied verbatim, so the per-job marginals
//     match the source by construction.
//   * Arrival process: the source's Poisson arrival process is scaled by
//     superposition — the scaled trace draws exponential inter-arrivals at
//     `rate_multiplier` x (target_jobs / source_jobs) times the source's
//     empirical mean rate, statistically equivalent to overlaying that many
//     thinned, independent copies of the source process. With the default
//     rate_multiplier of 1 the simulated time span stays roughly the
//     source's while the steady-state active-job population (and therefore
//     cluster size) grows proportionally — the "heavier traffic, same day"
//     scaling used by the 10k/50k/100k-job benchmark points.
//
// Same (source, options) always yields the same trace.
struct TraceScaleOptions {
  int target_jobs = 10000;
  std::uint64_t seed = 1;

  // Additional factor on the arrival-rate scale (1.0 = proportional
  // superposition; < 1 stretches the span instead of densifying traffic).
  double rate_multiplier = 1.0;
};

Trace ScaleTrace(const Trace& source, const TraceScaleOptions& options);

// The source-derived resample inputs of ScaleTrace (one pass over the
// source), hoisted so N shard derivations — MakeTenantShards at hundreds of
// tenants — share a single plan instead of re-deriving per tenant.
// ScaleTraceFromPlan(MakeResamplePlan(s), o) == ScaleTrace(s, o)
// bit-for-bit. The plan borrows `source`, which must outlive it.
struct TraceResamplePlan {
  const Trace* source = nullptr;
  double source_mean_interarrival_s = 0.0;
};

TraceResamplePlan MakeResamplePlan(const Trace& source);

// Pure in (plan, options): safe to call concurrently for distinct outputs.
Trace ScaleTraceFromPlan(const TraceResamplePlan& plan,
                         const TraceScaleOptions& options);

// One draw from either duration model, in seconds.
SimTime SampleDuration(DurationModel model, Rng& rng);

// Figure 6: rewrites GPU jobs so that `multi_gpu_fraction` of them demand
// 2/4/8 GPUs in ratio 5:4:1 (non-GPU jobs unchanged). Demands are scaled
// from the original job's vector; jobs needing more GPU than any instance
// offers are clamped to 8.
Trace WithMultiGpuFraction(Trace trace, double multi_gpu_fraction, std::uint64_t seed);

// Figure 7: converts `multi_task_fraction` of jobs into multi-task jobs
// with 2 or 4 tasks (1:1), each task keeping the original demand vector.
Trace WithMultiTaskFraction(Trace trace, double multi_task_fraction, std::uint64_t seed);

// Figure 8: rescales arrival times so that the average arrival rate becomes
// `jobs_per_hour`.
Trace WithArrivalRate(Trace trace, double jobs_per_hour);

}  // namespace eva

#endif  // SRC_WORKLOAD_TRACE_GEN_H_
