#include "src/sim/event_queue.h"

namespace eva {

void EventQueue::Push(SimTime time, SimEventType type, std::int64_t a, int version) {
  heap_.push(SimEvent{time, next_seq_++, type, a, version});
}

SimEvent EventQueue::Pop() {
  SimEvent event = heap_.top();
  heap_.pop();
  return event;
}

}  // namespace eva
