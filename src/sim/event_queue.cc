#include "src/sim/event_queue.h"

#include <algorithm>

namespace eva {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

void EventQueue::SiftUp(std::size_t index) {
  SimEvent moving = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / kArity;
    if (!Before(moving, heap_[parent])) {
      break;
    }
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = moving;
}

void EventQueue::SiftDown(std::size_t index) {
  const std::size_t size = heap_.size();
  SimEvent moving = heap_[index];
  while (true) {
    const std::size_t first_child = index * kArity + 1;
    if (first_child >= size) {
      break;
    }
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, size);
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (Before(heap_[child], heap_[best])) {
        best = child;
      }
    }
    if (!Before(heap_[best], moving)) {
      break;
    }
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = moving;
}

void EventQueue::HeapPush(const SimEvent& event) {
  heap_.push_back(event);
  SiftUp(heap_.size() - 1);
}

void EventQueue::Push(SimTime time, SimEventType type, std::int64_t a, int version) {
  const SimEvent event{time, next_seq_++, type, a, version};
  if (!has_front_) {
    front_ = event;
    has_front_ = true;
    return;
  }
  if (Before(event, front_)) {
    HeapPush(front_);
    front_ = event;
  } else {
    HeapPush(event);
  }
}

const SimEvent& EventQueue::Top() const {
  if (has_front_ && (heap_.empty() || !Before(heap_.front(), front_))) {
    return front_;
  }
  return heap_.front();
}

SimEvent EventQueue::Pop() {
  // Cross-lane minimum via the exact comparator; ties cannot occur
  // (sequence numbers are unique).
  if (has_front_ && (heap_.empty() || !Before(heap_.front(), front_))) {
    has_front_ = false;
    return front_;
  }
  SimEvent event = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
  return event;
}

}  // namespace eva
