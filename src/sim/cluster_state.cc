#include "src/sim/cluster_state.h"

#include <algorithm>
#include <cassert>

#include "src/common/stats.h"

namespace eva {

JobRec* ClusterState::FindJob(JobId id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const JobRec* ClusterState::FindJob(JobId id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

TaskRec* ClusterState::FindTask(TaskId id) {
  const auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

InstRec* ClusterState::FindInstance(InstanceId id) {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

const InstRec* ClusterState::FindInstance(InstanceId id) const {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

JobRec& ClusterState::AddJob(const JobSpec& spec) {
  JobRec job;
  job.spec = spec;
  job.active = true;
  job.remaining_work_s = spec.duration_s;
  for (int i = 0; i < spec.num_tasks; ++i) {
    TaskRec task;
    task.id = next_task_id_++;
    task.job = spec.id;
    task.workload = spec.workload;
    tasks_[task.id] = task;
    job.tasks.push_back(task.id);
  }
  active_.insert(spec.id);
  return jobs_[spec.id] = std::move(job);
}

void ClusterState::DeactivateJob(JobRec& job, SimTime now) {
  job.active = false;
  job.completion_time = now;
  job.current_rate = 0.0;
  active_.erase(job.spec.id);
}

InstRec& ClusterState::CreateInstance(int type_index, SimTime launch_time, SimTime ready_time) {
  InstRec instance;
  instance.id = next_instance_id_++;
  instance.type_index = type_index;
  instance.launch_time = launch_time;
  instance.ready_time = ready_time;
  ++instances_launched_;
  composition_dirty_ = true;
  return instances_[instance.id] = std::move(instance);
}

void ClusterState::Condemn(InstanceId id) {
  if (InstRec* instance = FindInstance(id)) {
    instance->condemned = true;
  }
}

bool ClusterState::MaybeTerminate(InstanceId id, SimTime now) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) {
    return false;
  }
  InstRec& instance = it->second;
  if (!instance.condemned || !instance.assigned.empty() || !instance.present.empty()) {
    return false;
  }
  const SimTime uptime = std::max(now - instance.launch_time, 0.0);
  total_cost_ += CostForUptime(catalog_.Get(instance.type_index).cost_per_hour, uptime);
  uptime_hours_.push_back(SecondsToHours(uptime));
  instances_.erase(it);
  composition_dirty_ = true;
  return true;
}

void ClusterState::TerminateAllLive(SimTime now) {
  for (auto& [id, instance] : instances_) {
    (void)id;
    const SimTime uptime = std::max(now - instance.launch_time, 0.0);
    total_cost_ += CostForUptime(catalog_.Get(instance.type_index).cost_per_hour, uptime);
    uptime_hours_.push_back(SecondsToHours(uptime));
  }
  instances_.clear();
  composition_dirty_ = true;
}

void ClusterState::SetTarget(TaskRec& task, InstanceId dest) {
  if (task.target != kInvalidInstanceId) {
    if (InstRec* old_target = FindInstance(task.target)) {
      old_target->assigned.erase(task.id);
    }
  }
  task.target = dest;
  instances_.at(dest).assigned.insert(task.id);
  composition_dirty_ = true;
}

void ClusterState::PlaceContainer(TaskRec& task) {
  task.source = task.target;
  instances_.at(task.source).present.insert(task.id);
}

InstanceId ClusterState::RemoveContainer(TaskRec& task) {
  const InstanceId source_id = task.source;
  if (source_id != kInvalidInstanceId) {
    if (InstRec* source = FindInstance(source_id)) {
      source->present.erase(task.id);
    }
    task.source = kInvalidInstanceId;
  }
  return source_id;
}

ClusterState::DetachResult ClusterState::MarkTaskDone(TaskRec& task) {
  ++task.version;
  if (task.source != kInvalidInstanceId) {
    if (InstRec* source = FindInstance(task.source)) {
      source->present.erase(task.id);
    }
  }
  if (task.target != kInvalidInstanceId) {
    if (InstRec* target = FindInstance(task.target)) {
      target->assigned.erase(task.id);
    }
    composition_dirty_ = true;
  }
  const DetachResult detached{task.source, task.target};
  task.source = kInvalidInstanceId;
  task.target = kInvalidInstanceId;
  task.state = TaskState::kDone;
  return detached;
}

void ClusterState::RefreshCompositionSums() {
  for (int r = 0; r < kNumResources; ++r) {
    cached_cap_[r] = 0.0;
    cached_alloc_[r] = 0.0;
  }
  cached_assigned_tasks_ = 0.0;
  for (const auto& [inst_id, instance] : instances_) {
    (void)inst_id;
    const InstanceType& type = catalog_.Get(instance.type_index);
    for (int r = 0; r < kNumResources; ++r) {
      cached_cap_[r] += type.capacity.Get(static_cast<Resource>(r));
    }
    cached_assigned_tasks_ += static_cast<double>(instance.assigned.size());
    for (TaskId task_id : instance.assigned) {
      const auto task = tasks_.find(task_id);
      if (task == tasks_.end()) {
        continue;
      }
      const auto job = jobs_.find(task->second.job);
      if (job == jobs_.end()) {
        continue;
      }
      const ResourceVector& demand = job->second.spec.DemandFor(type.family);
      for (int r = 0; r < kNumResources; ++r) {
        cached_alloc_[r] += demand.Get(static_cast<Resource>(r));
      }
    }
  }
  composition_dirty_ = false;
}

void ClusterState::IntegrateTo(SimTime dt) {
  if (composition_dirty_) {
    RefreshCompositionSums();
  }
  for (int r = 0; r < kNumResources; ++r) {
    cap_seconds_[r] += cached_cap_[r] * dt;
    alloc_seconds_[r] += cached_alloc_[r] * dt;
  }
  instance_seconds_ += static_cast<double>(instances_.size()) * dt;
  task_instance_seconds_ += cached_assigned_tasks_ * dt;
}

SchedulingContext ClusterState::BuildContext(SimTime now, bool grant_runtime_estimates) const {
  SchedulingContext context;
  context.now_s = now;
  context.catalog = &catalog_;
  for (JobId job_id : active_) {
    const JobRec& job = jobs_.at(job_id);
    for (TaskId task_id : job.tasks) {
      const TaskRec& task = tasks_.at(task_id);
      TaskInfo info;
      info.id = task.id;
      info.job = task.job;
      info.workload = task.workload;
      info.demand_p3 = job.spec.demand_p3;
      info.demand_cpu = job.spec.demand_cpu;
      info.family_speedup = job.spec.family_speedup;
      info.current_instance = task.target;
      info.remaining_work_s = grant_runtime_estimates ? job.remaining_work_s : -1.0;
      context.tasks.push_back(std::move(info));
    }
  }
  for (const auto& [inst_id, instance] : instances_) {
    (void)inst_id;
    if (instance.condemned) {
      continue;
    }
    InstanceInfo info;
    info.id = instance.id;
    info.type_index = instance.type_index;
    info.tasks.assign(instance.assigned.begin(), instance.assigned.end());
    context.instances.push_back(std::move(info));
  }
  context.Finalize();
  return context;
}

void ClusterState::FinalizeMetrics(SimulationMetrics& metrics) const {
  metrics.total_cost = total_cost_;
  metrics.instances_launched = instances_launched_;
  metrics.instance_uptime_hours = uptime_hours_;
  metrics.avg_tasks_per_instance =
      instance_seconds_ > 0.0 ? task_instance_seconds_ / instance_seconds_ : 0.0;
  metrics.avg_alloc_gpu = cap_seconds_[0] > 0.0 ? alloc_seconds_[0] / cap_seconds_[0] : 0.0;
  metrics.avg_alloc_cpu = cap_seconds_[1] > 0.0 ? alloc_seconds_[1] / cap_seconds_[1] : 0.0;
  metrics.avg_alloc_ram = cap_seconds_[2] > 0.0 ? alloc_seconds_[2] / cap_seconds_[2] : 0.0;

  RunningStats jct;
  RunningStats tput;
  RunningStats idle;
  for (const auto& [job_id, job] : jobs_) {
    (void)job_id;
    if (job.active) {
      continue;  // Aborted runs can leave unfinished jobs; skip them.
    }
    jct.Add(SecondsToHours(job.completion_time - job.spec.arrival_time_s));
    if (job.running_seconds > 0.0) {
      tput.Add(job.spec.duration_s / job.running_seconds);
    }
    idle.Add(SecondsToHours((job.completion_time - job.spec.arrival_time_s) -
                            job.running_seconds));
  }
  metrics.avg_jct_hours = jct.mean();
  metrics.avg_norm_job_throughput = tput.mean();
  metrics.avg_job_idle_hours = idle.mean();
}

}  // namespace eva
