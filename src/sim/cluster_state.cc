#include "src/sim/cluster_state.h"

#include <algorithm>
#include <cassert>

#include "src/common/stats.h"

namespace eva {
namespace {

void SortUnique(std::vector<std::int64_t>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

ClusterState::ClusterState(const InstanceCatalog& catalog)
    : catalog_(catalog), shards_(static_cast<std::size_t>(catalog.NumTypes())) {}

JobRec* ClusterState::FindJob(JobId id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const JobRec* ClusterState::FindJob(JobId id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

TaskRec* ClusterState::FindTask(TaskId id) { return tasks_.Find(id); }

InstRec* ClusterState::FindInstance(InstanceId id) {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

const InstRec* ClusterState::FindInstance(InstanceId id) const {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

JobRec& ClusterState::AddJob(const JobSpec& spec) {
  JobRec& job = jobs_[spec.id];
  job = JobRec{};  // Ids are unique in practice; replace like the old insert.
  job.spec = spec;
  job.active = true;
  job.remaining_work_s = spec.duration_s;
  for (int i = 0; i < spec.num_tasks; ++i) {
    const TaskId task_id = next_task_id_++;
    TaskRec& task = tasks_.Emplace(task_id);
    task.id = task_id;
    task.job = spec.id;
    task.workload = spec.workload;
    task.job_ref = &job;  // Map nodes are pointer-stable.
    job.tasks.push_back(task_id);
  }
  active_.insert(spec.id);
  active_task_count_ += spec.num_tasks;
  round_delta_.jobs_arrived.push_back(spec.id);
  return job;
}

void ClusterState::DeactivateJob(JobRec& job, SimTime now) {
  job.active = false;
  job.completion_time = now;
  job.current_rate = 0.0;
  active_.erase(job.spec.id);
  active_task_count_ -= job.spec.num_tasks;
  round_delta_.jobs_completed.push_back(job.spec.id);
}

void ClusterState::RetireJob(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.active) {
    return;
  }
  const JobRec& job = it->second;
  completed_.push_back({id, job.spec.arrival_time_s, job.completion_time,
                        job.running_seconds, job.spec.duration_s});
  for (TaskId task_id : job.tasks) {
    tasks_.Erase(task_id);
  }
  jobs_.erase(it);
}

InstRec& ClusterState::CreateInstance(int type_index, SimTime launch_time, SimTime ready_time) {
  InstRec instance;
  instance.id = next_instance_id_++;
  instance.type_index = type_index;
  instance.launch_time = launch_time;
  instance.ready_time = ready_time;
  ++instances_launched_;
  Shard& shard = ShardOf(type_index);
  shard.members.insert(instance.id);
  shard.dirty = true;
  composition_dirty_ = true;  // Capacity changed; allocation did not (empty).
  round_delta_.instances_launched.push_back(instance.id);
  return instances_[instance.id] = std::move(instance);
}

void ClusterState::Condemn(InstanceId id) {
  if (InstRec* instance = FindInstance(id)) {
    instance->condemned = true;
  }
}

void ClusterState::AccrueTerminated(const InstRec& instance, SimTime now) {
  const SimTime uptime = std::max(now - instance.launch_time, 0.0);
  if (cost_fn_) {
    total_cost_ += cost_fn_(instance.type_index, instance.launch_time,
                            instance.launch_time + uptime);
  } else {
    total_cost_ += CostForUptime(catalog_.Get(instance.type_index).cost_per_hour, uptime);
  }
  uptime_hours_.push_back(SecondsToHours(uptime));
  if (terminated_fn_) {
    terminated_fn_(instance.type_index, instance.launch_time,
                   instance.launch_time + uptime, instance.provider_slot);
  }
}

bool ClusterState::MaybeTerminate(InstanceId id, SimTime now) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) {
    return false;
  }
  InstRec& instance = it->second;
  if (!instance.condemned || !instance.assigned.empty() || !instance.present.empty()) {
    return false;
  }
  AccrueTerminated(instance, now);
  Shard& shard = ShardOf(instance.type_index);
  shard.members.erase(id);
  shard.dirty = true;
  composition_dirty_ = true;  // An empty instance: allocation unchanged.
  round_delta_.instances_terminated.push_back(id);
  instances_.erase(it);
  return true;
}

void ClusterState::TerminateAllLive(SimTime now) {
  for (auto& [id, instance] : instances_) {
    AccrueTerminated(instance, now);
    round_delta_.instances_terminated.push_back(id);
  }
  instances_.clear();
  for (Shard& shard : shards_) {
    shard.members.clear();
    shard.dirty = true;
  }
  composition_dirty_ = true;
  alloc_dirty_ = true;  // Aborted runs can terminate occupied instances.
}

void ClusterState::MarkAssignmentChanged(InstanceId instance_id) {
  if (InstRec* instance = FindInstance(instance_id)) {
    instance->demands_dirty = true;
    ShardOf(instance->type_index).dirty = true;
  }
  composition_dirty_ = true;
  alloc_dirty_ = true;
}

void ClusterState::SetTarget(TaskRec& task, InstanceId dest) {
  if (task.target != kInvalidInstanceId) {
    if (InstRec* old_target = FindInstance(task.target)) {
      old_target->assigned.erase(task.id);
    }
    MarkAssignmentChanged(task.target);
  }
  task.target = dest;
  instances_.at(dest).assigned.insert(task.id);
  MarkAssignmentChanged(dest);
  round_delta_.tasks_retargeted.push_back(task.id);
}

void ClusterState::ClearTarget(TaskRec& task) {
  if (task.target == kInvalidInstanceId) {
    return;
  }
  if (InstRec* target = FindInstance(task.target)) {
    target->assigned.erase(task.id);
  }
  MarkAssignmentChanged(task.target);
  task.target = kInvalidInstanceId;
  round_delta_.tasks_retargeted.push_back(task.id);
}

void ClusterState::PlaceContainer(TaskRec& task) {
  task.source = task.target;
  instances_.at(task.source).present.insert(task.id);
}

InstanceId ClusterState::RemoveContainer(TaskRec& task) {
  const InstanceId source_id = task.source;
  if (source_id != kInvalidInstanceId) {
    if (InstRec* source = FindInstance(source_id)) {
      source->present.erase(task.id);
    }
    task.source = kInvalidInstanceId;
  }
  return source_id;
}

ClusterState::DetachResult ClusterState::MarkTaskDone(TaskRec& task) {
  ++task.version;
  if (task.source != kInvalidInstanceId) {
    if (InstRec* source = FindInstance(task.source)) {
      source->present.erase(task.id);
    }
  }
  if (task.target != kInvalidInstanceId) {
    if (InstRec* target = FindInstance(task.target)) {
      target->assigned.erase(task.id);
    }
    MarkAssignmentChanged(task.target);
  }
  const DetachResult detached{task.source, task.target};
  task.source = kInvalidInstanceId;
  task.target = kInvalidInstanceId;
  task.state = TaskState::kDone;
  return detached;
}

void ClusterState::RefreshCompositionSums() {
  // Dirty shards first: capacity and assigned-task counts are integral, so
  // re-summing one shard and re-combining across shards is exact — the
  // totals match the old global id-order rescan bit-for-bit.
  for (Shard& shard : shards_) {
    if (!shard.dirty) {
      continue;
    }
    for (int r = 0; r < kNumResources; ++r) {
      shard.cap[r] = 0.0;
    }
    shard.assigned_tasks = 0.0;
    for (InstanceId id : shard.members) {
      const InstRec& instance = instances_.at(id);
      const InstanceType& type = catalog_.Get(instance.type_index);
      for (int r = 0; r < kNumResources; ++r) {
        shard.cap[r] += type.capacity.Get(static_cast<Resource>(r));
      }
      shard.assigned_tasks += static_cast<double>(instance.assigned.size());
    }
    shard.dirty = false;
  }
  for (int r = 0; r < kNumResources; ++r) {
    cached_cap_[r] = 0.0;
  }
  cached_assigned_tasks_ = 0.0;
  for (const Shard& shard : shards_) {
    for (int r = 0; r < kNumResources; ++r) {
      cached_cap_[r] += shard.cap[r];
    }
    cached_assigned_tasks_ += shard.assigned_tasks;
  }

  // Allocation sums can be fractional, so the fold must replicate the
  // original global order (instances ascending by id, members ascending by
  // task id) to stay bit-identical — only the per-task demand lookups are
  // cached away, rebuilt just for instances whose assignment changed.
  if (alloc_dirty_) {
    for (int r = 0; r < kNumResources; ++r) {
      cached_alloc_[r] = 0.0;
    }
    for (auto& [inst_id, instance] : instances_) {
      (void)inst_id;
      if (instance.demands_dirty) {
        instance.member_demands.clear();
        const InstanceType& type = catalog_.Get(instance.type_index);
        for (TaskId task_id : instance.assigned) {
          const TaskRec* task = tasks_.Find(task_id);
          if (task == nullptr || task->job_ref == nullptr) {
            continue;
          }
          instance.member_demands.push_back(task->job_ref->spec.DemandFor(type.family));
        }
        instance.demands_dirty = false;
      }
      for (const ResourceVector& demand : instance.member_demands) {
        for (int r = 0; r < kNumResources; ++r) {
          cached_alloc_[r] += demand.Get(static_cast<Resource>(r));
        }
      }
    }
    alloc_dirty_ = false;
  }
  composition_dirty_ = false;
}

void ClusterState::IntegrateTo(SimTime dt) {
  if (composition_dirty_) {
    RefreshCompositionSums();
  }
  for (int r = 0; r < kNumResources; ++r) {
    cap_seconds_[r] += cached_cap_[r] * dt;
    alloc_seconds_[r] += cached_alloc_[r] * dt;
  }
  instance_seconds_ += static_cast<double>(instances_.size()) * dt;
  task_instance_seconds_ += cached_assigned_tasks_ * dt;
}

SchedulingContext ClusterState::BuildContext(SimTime now, bool grant_runtime_estimates) const {
  SchedulingContext context;
  FillContext(now, grant_runtime_estimates, context);
  return context;
}

void ClusterState::FillContext(SimTime now, bool grant_runtime_estimates,
                               SchedulingContext& context) const {
  context.tasks.clear();
  context.delta.Clear();
  context.throughput = nullptr;
  context.now_s = now;
  context.catalog = &catalog_;
  context.tasks.reserve(static_cast<std::size_t>(active_task_count_));
  context.instances.reserve(instances_.size());
  for (JobId job_id : active_) {
    const JobRec& job = jobs_.at(job_id);
    for (TaskId task_id : job.tasks) {
      const TaskRec& task = tasks_.at(task_id);
      TaskInfo info;
      info.id = task.id;
      info.job = task.job;
      info.workload = task.workload;
      info.demand_p3 = job.spec.demand_p3;
      info.demand_cpu = job.spec.demand_cpu;
      info.family_speedup = job.spec.family_speedup;
      info.current_instance = task.target;
      info.remaining_work_s = grant_runtime_estimates ? job.remaining_work_s : -1.0;
      context.tasks.push_back(std::move(info));
    }
  }
  // Instances are written into the existing slots (assign reuses each
  // slot's task-vector capacity) and trimmed at the end — clear() +
  // push_back would destroy and reallocate every per-instance task vector
  // each round.
  std::size_t used = 0;
  for (const auto& [inst_id, instance] : instances_) {
    (void)inst_id;
    if (instance.condemned) {
      continue;
    }
    if (used == context.instances.size()) {
      context.instances.emplace_back();
    }
    InstanceInfo& info = context.instances[used++];
    info.id = instance.id;
    info.type_index = instance.type_index;
    info.tasks.assign(instance.assigned.begin(), instance.assigned.end());
  }
  context.instances.resize(used);
  context.Finalize();
}

RoundDelta ClusterState::TakeRoundDelta() {
  RoundDelta delta;
  DrainRoundDelta(delta);
  return delta;
}

void ClusterState::DrainRoundDelta(RoundDelta& out) {
  const auto drain = [](std::vector<std::int64_t>& from, std::vector<std::int64_t>& to) {
    to.assign(from.begin(), from.end());
    from.clear();
    SortUnique(to);
  };
  drain(round_delta_.jobs_arrived, out.jobs_arrived);
  drain(round_delta_.jobs_completed, out.jobs_completed);
  drain(round_delta_.tasks_retargeted, out.tasks_retargeted);
  drain(round_delta_.instances_launched, out.instances_launched);
  drain(round_delta_.instances_terminated, out.instances_terminated);
  out.complete = true;
}

void ClusterState::FinalizeMetrics(SimulationMetrics& metrics) const {
  metrics.total_cost = total_cost_;
  metrics.instances_launched = instances_launched_;
  metrics.instance_uptime_hours = uptime_hours_;
  metrics.avg_tasks_per_instance =
      instance_seconds_ > 0.0 ? task_instance_seconds_ / instance_seconds_ : 0.0;
  metrics.avg_alloc_gpu = cap_seconds_[0] > 0.0 ? alloc_seconds_[0] / cap_seconds_[0] : 0.0;
  metrics.avg_alloc_cpu = cap_seconds_[1] > 0.0 ? alloc_seconds_[1] / cap_seconds_[1] : 0.0;
  metrics.avg_alloc_ram = cap_seconds_[2] > 0.0 ? alloc_seconds_[2] / cap_seconds_[2] : 0.0;

  // Merge the retired-job archive with any completed-but-unretired jobs
  // still in the map (callers driving ClusterState directly), then fold in
  // ascending id order — the exact iteration order (and therefore the exact
  // floating-point sums) of the old keep-every-job jobs_ scan.
  std::vector<CompletedJob> completed = completed_;
  for (const auto& [job_id, job] : jobs_) {
    if (job.active) {
      continue;  // Aborted runs can leave unfinished jobs; skip them.
    }
    completed.push_back({job_id, job.spec.arrival_time_s, job.completion_time,
                         job.running_seconds, job.spec.duration_s});
  }
  std::sort(completed.begin(), completed.end(),
            [](const CompletedJob& a, const CompletedJob& b) { return a.id < b.id; });
  RunningStats jct;
  RunningStats tput;
  RunningStats idle;
  for (const CompletedJob& job : completed) {
    jct.Add(SecondsToHours(job.completion_time - job.arrival_time_s));
    if (job.running_seconds > 0.0) {
      tput.Add(job.duration_s / job.running_seconds);
    }
    idle.Add(SecondsToHours((job.completion_time - job.arrival_time_s) -
                            job.running_seconds));
  }
  metrics.avg_jct_hours = jct.mean();
  metrics.avg_norm_job_throughput = tput.mean();
  metrics.avg_job_idle_hours = idle.mean();
}

double ClusterState::TotalRunningSeconds() const {
  // Both folds walk ascending-id containers, so the floating-point sum is
  // deterministic.
  double total = 0.0;
  for (const CompletedJob& job : completed_) {
    total += job.running_seconds;
  }
  for (const auto& [job_id, job] : jobs_) {
    (void)job_id;
    total += job.running_seconds;
  }
  return total;
}

}  // namespace eva
