#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/sched/config_diff.h"

namespace eva {
namespace {

constexpr double kWorkEpsilonS = 1e-6;

enum class TaskState {
  kPending,        // Arrived, never placed.
  kWaiting,        // Assigned, waiting for the target instance to be ready.
  kLaunching,      // Container starting on the target instance.
  kRunning,        // Executing.
  kCheckpointing,  // Stopping on the source instance before a migration.
  kDone,
};

enum class EventType {
  kArrival,
  kRound,
  kInstanceReady,
  kCheckpointDone,
  kLaunchDone,
  kCompletionCheck,
};

struct Event {
  SimTime time;
  std::uint64_t seq;  // FIFO tie-break.
  EventType type;
  std::int64_t a = 0;  // job index / task id / instance id / version
  int version = 0;

  bool operator>(const Event& other) const {
    if (time != other.time) {
      return time > other.time;
    }
    return seq > other.seq;
  }
};

struct TaskRec {
  TaskId id = kInvalidTaskId;
  JobId job = kInvalidJobId;
  WorkloadId workload = kInvalidWorkloadId;
  TaskState state = TaskState::kPending;
  InstanceId target = kInvalidInstanceId;  // Assigned destination.
  InstanceId source = kInvalidInstanceId;  // Where the container lives now.
  int version = 0;                         // Guards in-flight events.
};

struct JobRec {
  JobSpec spec;
  std::vector<TaskId> tasks;
  bool active = false;
  SimTime remaining_work_s = 0.0;
  SimTime running_seconds = 0.0;
  SimTime completion_time = 0.0;
  double current_rate = 0.0;  // Normalized throughput while fully running.
};

struct InstRec {
  InstanceId id = kInvalidInstanceId;
  int type_index = -1;
  bool ready = false;
  bool condemned = false;
  SimTime launch_time = 0.0;
  SimTime ready_time = 0.0;
  std::set<TaskId> assigned;  // Tasks targeted at this instance.
  std::set<TaskId> present;   // Containers physically on this instance.
};

}  // namespace

class Simulator::Impl {
 public:
  Impl(const Trace& trace, Scheduler* scheduler, const InstanceCatalog& catalog,
       const InterferenceModel& interference, SimulatorOptions options)
      : trace_(trace),
        scheduler_(scheduler),
        catalog_(catalog),
        interference_(interference),
        options_(options),
        rng_(options.seed) {}

  SimulationMetrics Run();

 private:
  // --- Event plumbing -------------------------------------------------
  void Push(SimTime time, EventType type, std::int64_t a = 0, int version = 0) {
    queue_.push(Event{time, next_seq_++, type, a, version});
  }

  // --- Progress integration -------------------------------------------
  void Advance(SimTime to);
  void RecomputeRatesAndCompletion();
  // Co-location interference factor only (what the EvaIterator channel
  // reports); 0 when the task is not running.
  double TaskColocationFactor(const TaskRec& task) const;
  // Full progress rate: co-location factor x hosting family's speedup.
  double TaskThroughput(const TaskRec& task) const;

  // --- Handlers --------------------------------------------------------
  void HandleArrival(std::int64_t job_index);
  void HandleRound();
  void HandleInstanceReady(InstanceId id);
  void HandleCheckpointDone(TaskId id, int version);
  void HandleLaunchDone(TaskId id, int version);
  void HandleCompletionCheck(int version);

  // --- Actions ----------------------------------------------------------
  void ApplyConfig(const SchedulingContext& context, const ClusterConfig& config);
  void Retarget(TaskRec& task, InstanceId dest);
  void TryLaunch(TaskRec& task);
  void CompleteJob(JobRec& job);
  void MaybeTerminate(InstanceId id);
  void TerminateInstance(InstRec& instance);

  SchedulingContext BuildContext() const;
  std::vector<JobThroughputObservation> CollectObservations();

  SimTime CheckpointDelay(const TaskRec& task) const {
    return WorkloadRegistry::Get(task.workload).checkpoint_delay_s *
           options_.migration_delay_multiplier;
  }
  SimTime LaunchDelay(const TaskRec& task) const {
    return WorkloadRegistry::Get(task.workload).launch_delay_s *
           options_.migration_delay_multiplier;
  }

  bool HasLiveInstances() const { return !instances_.empty(); }
  bool HasActiveJobs() const { return active_jobs_ > 0; }
  bool HasPendingArrivals() const { return next_arrival_ < trace_.jobs.size(); }

  // --- Inputs ------------------------------------------------------------
  const Trace& trace_;
  Scheduler* scheduler_;
  const InstanceCatalog& catalog_;
  const InterferenceModel& interference_;
  SimulatorOptions options_;
  Rng rng_;

  // --- State ---------------------------------------------------------------
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;

  std::map<JobId, JobRec> jobs_;
  std::map<TaskId, TaskRec> tasks_;
  std::map<InstanceId, InstRec> instances_;  // Live (provisioning/ready).
  TaskId next_task_id_ = 0;
  InstanceId next_instance_id_ = 0;
  std::size_t next_arrival_ = 0;
  int active_jobs_ = 0;
  SimTime pending_completion_check_ = std::numeric_limits<SimTime>::infinity();
  SimTime now_ = 0.0;
  bool round_scheduled_ = false;

  // --- Metrics accumulators -------------------------------------------------
  SimulationMetrics metrics_;
  double instance_seconds_ = 0.0;        // integral of #live instances dt
  double task_instance_seconds_ = 0.0;   // integral of sum(assigned) dt
  double cap_seconds_[kNumResources] = {0, 0, 0};
  double alloc_seconds_[kNumResources] = {0, 0, 0};
};

double Simulator::Impl::TaskColocationFactor(const TaskRec& task) const {
  if (task.state != TaskState::kRunning) {
    return 0.0;
  }
  const auto inst = instances_.find(task.source);
  if (inst == instances_.end()) {
    return 0.0;
  }
  const InterferenceProfile mine = WorkloadRegistry::Get(task.workload).profile;
  double factor = 1.0;
  for (TaskId other_id : inst->second.present) {
    if (other_id == task.id) {
      continue;
    }
    const auto other = tasks_.find(other_id);
    if (other == tasks_.end() || other->second.state != TaskState::kRunning) {
      continue;
    }
    factor *=
        interference_.Pairwise(mine, WorkloadRegistry::Get(other->second.workload).profile);
  }
  return factor;
}

double Simulator::Impl::TaskThroughput(const TaskRec& task) const {
  const double factor = TaskColocationFactor(task);
  if (factor <= 0.0) {
    return 0.0;
  }
  // Heterogeneous families (§4.2): the hosting family's relative speed
  // scales the task's progress; 1.0 in the homogeneous setting.
  const auto inst = instances_.find(task.source);
  const auto job = jobs_.find(task.job);
  double speedup = 1.0;
  if (inst != instances_.end() && job != jobs_.end()) {
    speedup = job->second.spec.family_speedup[static_cast<std::size_t>(
        catalog_.Get(inst->second.type_index).family)];
  }
  return factor * speedup;
}

void Simulator::Impl::Advance(SimTime to) {
  const double dt = to - now_;
  if (dt <= 0.0) {
    now_ = std::max(now_, to);
    return;
  }
  for (auto& [job_id, job] : jobs_) {
    (void)job_id;
    if (job.active && job.current_rate > 0.0) {
      job.remaining_work_s -= job.current_rate * dt;
      job.running_seconds += dt;
    }
  }
  // Cluster-state integrals for the table metrics.
  double cap[kNumResources] = {0, 0, 0};
  double alloc[kNumResources] = {0, 0, 0};
  double assigned_tasks = 0.0;
  for (const auto& [inst_id, instance] : instances_) {
    (void)inst_id;
    const InstanceType& type = catalog_.Get(instance.type_index);
    for (int r = 0; r < kNumResources; ++r) {
      cap[r] += type.capacity.Get(static_cast<Resource>(r));
    }
    assigned_tasks += static_cast<double>(instance.assigned.size());
    for (TaskId task_id : instance.assigned) {
      const auto task = tasks_.find(task_id);
      if (task == tasks_.end()) {
        continue;
      }
      const auto job = jobs_.find(task->second.job);
      if (job == jobs_.end()) {
        continue;
      }
      const ResourceVector& demand = job->second.spec.DemandFor(type.family);
      for (int r = 0; r < kNumResources; ++r) {
        alloc[r] += demand.Get(static_cast<Resource>(r));
      }
    }
  }
  for (int r = 0; r < kNumResources; ++r) {
    cap_seconds_[r] += cap[r] * dt;
    alloc_seconds_[r] += alloc[r] * dt;
  }
  instance_seconds_ += static_cast<double>(instances_.size()) * dt;
  task_instance_seconds_ += assigned_tasks * dt;
  now_ = to;
}

void Simulator::Impl::RecomputeRatesAndCompletion() {
  SimTime earliest = -1.0;
  for (auto& [job_id, job] : jobs_) {
    (void)job_id;
    if (!job.active) {
      continue;
    }
    double rate = -1.0;
    bool all_running = true;
    for (TaskId task_id : job.tasks) {
      const TaskRec& task = tasks_.at(task_id);
      if (task.state != TaskState::kRunning) {
        all_running = false;
        break;
      }
      const double tput = TaskThroughput(task);
      rate = rate < 0.0 ? tput : std::min(rate, tput);
    }
    job.current_rate = all_running && rate > 0.0 ? rate : 0.0;
    if (job.current_rate > 0.0) {
      const SimTime eta = now_ + std::max(job.remaining_work_s, 0.0) / job.current_rate;
      earliest = earliest < 0.0 ? eta : std::min(earliest, eta);
    }
  }
  // Arm a completion check at the earliest projected completion. Checks are
  // idempotent (a check that fires early is a no-op and re-arms), so we only
  // push when the new projection is earlier than what is already armed —
  // this bounds queue growth without missing a completion.
  if (earliest >= 0.0 && earliest < pending_completion_check_ - 1e-9) {
    pending_completion_check_ = earliest;
    Push(earliest, EventType::kCompletionCheck);
  }
}

void Simulator::Impl::HandleArrival(std::int64_t job_index) {
  const JobSpec& spec = trace_.jobs[static_cast<std::size_t>(job_index)];
  // Admission control: reject jobs no instance type can host (the paper
  // filters these from the trace).
  const std::optional<int> fits = catalog_.CheapestFitting(
      [&spec](InstanceFamily family) { return spec.DemandFor(family); });
  if (!fits.has_value()) {
    EVA_LOG_WARNING("job %lld demand %s fits no instance type; dropped",
                    static_cast<long long>(spec.id), spec.demand_p3.ToString().c_str());
    return;
  }
  JobRec job;
  job.spec = spec;
  job.active = true;
  job.remaining_work_s = spec.duration_s;
  for (int i = 0; i < spec.num_tasks; ++i) {
    TaskRec task;
    task.id = next_task_id_++;
    task.job = spec.id;
    task.workload = spec.workload;
    tasks_[task.id] = task;
    job.tasks.push_back(task.id);
    ++metrics_.tasks_total;
  }
  jobs_[spec.id] = std::move(job);
  ++active_jobs_;
  ++metrics_.jobs_submitted;
}

SchedulingContext Simulator::Impl::BuildContext() const {
  SchedulingContext context;
  context.now_s = now_;
  context.catalog = &catalog_;
  for (const auto& [job_id, job] : jobs_) {
    (void)job_id;
    if (!job.active) {
      continue;
    }
    for (TaskId task_id : job.tasks) {
      const TaskRec& task = tasks_.at(task_id);
      TaskInfo info;
      info.id = task.id;
      info.job = task.job;
      info.workload = task.workload;
      info.demand_p3 = job.spec.demand_p3;
      info.demand_cpu = job.spec.demand_cpu;
      info.family_speedup = job.spec.family_speedup;
      info.current_instance = task.target;
      info.remaining_work_s =
          options_.grant_runtime_estimates ? job.remaining_work_s : -1.0;
      context.tasks.push_back(std::move(info));
    }
  }
  for (const auto& [inst_id, instance] : instances_) {
    (void)inst_id;
    if (instance.condemned) {
      continue;
    }
    InstanceInfo info;
    info.id = instance.id;
    info.type_index = instance.type_index;
    info.tasks.assign(instance.assigned.begin(), instance.assigned.end());
    context.instances.push_back(std::move(info));
  }
  context.Finalize();
  return context;
}

std::vector<JobThroughputObservation> Simulator::Impl::CollectObservations() {
  std::vector<JobThroughputObservation> observations;
  for (const auto& [job_id, job] : jobs_) {
    if (!job.active || job.current_rate <= 0.0) {
      continue;
    }
    JobThroughputObservation observation;
    observation.job = job_id;
    // Report the co-location-only degradation (min over tasks), matching
    // what a per-iteration timer normalized by the family's standalone
    // speed would measure.
    double tput = 1.0;
    for (TaskId task_id : job.tasks) {
      tput = std::min(tput, TaskColocationFactor(tasks_.at(task_id)));
    }
    if (options_.physical_mode) {
      tput *= 1.0 + rng_.Normal(0.0, options_.observation_noise_stddev);
      tput = std::clamp(tput, 0.01, 1.0);
    }
    observation.normalized_throughput = tput;
    for (TaskId task_id : job.tasks) {
      const TaskRec& task = tasks_.at(task_id);
      TaskPlacementObservation placement;
      placement.task = task.id;
      placement.workload = task.workload;
      const auto inst = instances_.find(task.source);
      if (inst != instances_.end()) {
        for (TaskId other_id : inst->second.present) {
          if (other_id == task.id) {
            continue;
          }
          const auto other = tasks_.find(other_id);
          if (other != tasks_.end() && other->second.state == TaskState::kRunning) {
            placement.colocated.push_back(other->second.workload);
          }
        }
      }
      observation.tasks.push_back(std::move(placement));
    }
    observations.push_back(std::move(observation));
  }
  return observations;
}

void Simulator::Impl::HandleRound() {
  round_scheduled_ = false;
  ++metrics_.scheduling_rounds;

  // 1. Report the last window's throughput (the EvaIterator channel).
  scheduler_->ObserveThroughput(CollectObservations());

  // 2. Ask for the desired configuration.
  const SchedulingContext context = BuildContext();
  const ClusterConfig config = scheduler_->Schedule(context);

  if (options_.validate_configs) {
    if (const auto error = config.Validate(context)) {
      EVA_LOG_ERROR("scheduler %s returned invalid config at t=%.0f: %s",
                    scheduler_->name().c_str(), now_, error->c_str());
    } else {
      ApplyConfig(context, config);
    }
  } else {
    ApplyConfig(context, config);
  }

  // 3. Keep the cadence while there is anything left to manage.
  if (HasActiveJobs() || HasPendingArrivals() || HasLiveInstances()) {
    round_scheduled_ = true;
    Push(now_ + options_.scheduling_period_s, EventType::kRound);
  }
}

void Simulator::Impl::ApplyConfig(const SchedulingContext& context,
                                  const ClusterConfig& config) {
  const ConfigDiff diff = DiffConfig(context, config);

  // Launch new instances.
  std::vector<InstanceId> binding_instance(diff.bindings.size(), kInvalidInstanceId);
  for (std::size_t i = 0; i < diff.bindings.size(); ++i) {
    const ConfigDiff::Binding& binding = diff.bindings[i];
    if (binding.existing_id != kInvalidInstanceId) {
      binding_instance[i] = binding.existing_id;
      continue;
    }
    InstRec instance;
    instance.id = next_instance_id_++;
    instance.type_index = binding.type_index;
    instance.launch_time = now_;
    const SimTime delay = options_.cloud_delays.ProvisioningDelay(
        options_.physical_mode ? &rng_ : nullptr);
    instance.ready_time = now_ + delay;
    binding_instance[i] = instance.id;
    Push(instance.ready_time, EventType::kInstanceReady, instance.id);
    instances_[instance.id] = std::move(instance);
    ++metrics_.instances_launched;
  }

  // Condemn instances leaving the configuration.
  for (InstanceId id : diff.terminate) {
    const auto it = instances_.find(id);
    if (it != instances_.end()) {
      it->second.condemned = true;
    }
  }

  // Execute task moves.
  for (const ConfigDiff::Move& move : diff.moves) {
    const auto task = tasks_.find(move.task);
    if (task == tasks_.end() || task->second.state == TaskState::kDone) {
      continue;
    }
    if (move.from_instance != kInvalidInstanceId) {
      ++metrics_.task_migrations;
    }
    Retarget(task->second, binding_instance[static_cast<std::size_t>(move.to_binding)]);
  }

  // Condemned instances with nothing left terminate immediately.
  std::vector<InstanceId> condemned;
  for (const auto& [id, instance] : instances_) {
    if (instance.condemned) {
      condemned.push_back(id);
    }
  }
  for (InstanceId id : condemned) {
    MaybeTerminate(id);
  }
}

void Simulator::Impl::Retarget(TaskRec& task, InstanceId dest) {
  if (task.target == dest) {
    return;
  }
  if (task.target != kInvalidInstanceId) {
    const auto old_target = instances_.find(task.target);
    if (old_target != instances_.end()) {
      old_target->second.assigned.erase(task.id);
    }
  }
  task.target = dest;
  instances_.at(dest).assigned.insert(task.id);

  switch (task.state) {
    case TaskState::kRunning:
      ++task.version;
      task.state = TaskState::kCheckpointing;
      Push(now_ + CheckpointDelay(task), EventType::kCheckpointDone, task.id, task.version);
      break;
    case TaskState::kCheckpointing:
      // The in-flight checkpoint completes and routes to the new target.
      break;
    case TaskState::kLaunching:
      ++task.version;  // Cancels the pending launch event.
      task.state = TaskState::kWaiting;
      TryLaunch(task);
      break;
    case TaskState::kPending:
    case TaskState::kWaiting:
      task.state = TaskState::kWaiting;
      TryLaunch(task);
      break;
    case TaskState::kDone:
      break;
  }
}

void Simulator::Impl::TryLaunch(TaskRec& task) {
  if (task.state != TaskState::kWaiting) {
    return;
  }
  const auto inst = instances_.find(task.target);
  if (inst == instances_.end() || !inst->second.ready) {
    return;
  }
  ++task.version;
  task.state = TaskState::kLaunching;
  Push(now_ + LaunchDelay(task), EventType::kLaunchDone, task.id, task.version);
}

void Simulator::Impl::HandleInstanceReady(InstanceId id) {
  const auto inst = instances_.find(id);
  if (inst == instances_.end()) {
    return;
  }
  inst->second.ready = true;
  // Launch everything parked on this instance. Copy the set: TryLaunch does
  // not mutate `assigned`, but keep the iteration robust anyway.
  const std::vector<TaskId> parked(inst->second.assigned.begin(), inst->second.assigned.end());
  for (TaskId task_id : parked) {
    const auto task = tasks_.find(task_id);
    if (task != tasks_.end()) {
      TryLaunch(task->second);
    }
  }
}

void Simulator::Impl::HandleCheckpointDone(TaskId id, int version) {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return;
  }
  TaskRec& task = it->second;
  if (task.version != version || task.state != TaskState::kCheckpointing) {
    return;
  }
  if (task.source != kInvalidInstanceId) {
    const auto source = instances_.find(task.source);
    if (source != instances_.end()) {
      source->second.present.erase(task.id);
    }
    const InstanceId source_id = task.source;
    task.source = kInvalidInstanceId;
    MaybeTerminate(source_id);
  }
  task.state = TaskState::kWaiting;
  TryLaunch(task);
}

void Simulator::Impl::HandleLaunchDone(TaskId id, int version) {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return;
  }
  TaskRec& task = it->second;
  if (task.version != version || task.state != TaskState::kLaunching) {
    return;
  }
  task.state = TaskState::kRunning;
  task.source = task.target;
  instances_.at(task.source).present.insert(task.id);
}

void Simulator::Impl::HandleCompletionCheck(int version) {
  (void)version;
  pending_completion_check_ = std::numeric_limits<SimTime>::infinity();
  std::vector<JobId> finished;
  for (auto& [job_id, job] : jobs_) {
    if (job.active && job.remaining_work_s <= kWorkEpsilonS) {
      finished.push_back(job_id);
    }
  }
  for (JobId job_id : finished) {
    CompleteJob(jobs_.at(job_id));
  }
}

void Simulator::Impl::CompleteJob(JobRec& job) {
  job.active = false;
  job.completion_time = now_;
  job.current_rate = 0.0;
  --active_jobs_;
  ++metrics_.jobs_completed;

  const double jct_h = SecondsToHours(now_ - job.spec.arrival_time_s);
  metrics_.jct_hours.push_back(jct_h);

  for (TaskId task_id : job.tasks) {
    TaskRec& task = tasks_.at(task_id);
    ++task.version;
    if (task.source != kInvalidInstanceId) {
      const auto source = instances_.find(task.source);
      if (source != instances_.end()) {
        source->second.present.erase(task.id);
      }
    }
    if (task.target != kInvalidInstanceId) {
      const auto target = instances_.find(task.target);
      if (target != instances_.end()) {
        target->second.assigned.erase(task.id);
      }
    }
    const InstanceId source_id = task.source;
    const InstanceId target_id = task.target;
    task.source = kInvalidInstanceId;
    task.target = kInvalidInstanceId;
    task.state = TaskState::kDone;
    if (source_id != kInvalidInstanceId) {
      MaybeTerminate(source_id);
    }
    if (target_id != kInvalidInstanceId && target_id != source_id) {
      MaybeTerminate(target_id);
    }
  }
}

void Simulator::Impl::MaybeTerminate(InstanceId id) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) {
    return;
  }
  InstRec& instance = it->second;
  if (instance.condemned && instance.assigned.empty() && instance.present.empty()) {
    TerminateInstance(instance);
    instances_.erase(it);
  }
}

void Simulator::Impl::TerminateInstance(InstRec& instance) {
  const SimTime uptime = std::max(now_ - instance.launch_time, 0.0);
  metrics_.total_cost += CostForUptime(catalog_.Get(instance.type_index).cost_per_hour, uptime);
  metrics_.instance_uptime_hours.push_back(SecondsToHours(uptime));
}

SimulationMetrics Simulator::Impl::Run() {
  metrics_ = SimulationMetrics{};
  metrics_.scheduler_name = scheduler_->name();
  metrics_.trace_name = trace_.name;

  for (std::size_t i = 0; i < trace_.jobs.size(); ++i) {
    Push(trace_.jobs[i].arrival_time_s, EventType::kArrival, static_cast<std::int64_t>(i));
  }
  next_arrival_ = 0;
  Push(0.0, EventType::kRound);
  round_scheduled_ = true;

  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    if (event.time > options_.max_sim_time_s) {
      EVA_LOG_ERROR("simulation exceeded max time; aborting with %d active jobs", active_jobs_);
      break;
    }
    Advance(event.time);
    EVA_LOG_DEBUG("event t=%.3f type=%d a=%lld v=%d active=%d live=%zu queue=%zu", event.time,
                  static_cast<int>(event.type), static_cast<long long>(event.a), event.version,
                  active_jobs_, instances_.size(), queue_.size());
    switch (event.type) {
      case EventType::kArrival:
        HandleArrival(event.a);
        ++next_arrival_;
        if (!round_scheduled_) {
          // The cluster drained; resume scheduling rounds.
          round_scheduled_ = true;
          Push(now_, EventType::kRound);
        }
        break;
      case EventType::kRound:
        HandleRound();
        break;
      case EventType::kInstanceReady:
        HandleInstanceReady(event.a);
        break;
      case EventType::kCheckpointDone:
        HandleCheckpointDone(event.a, event.version);
        break;
      case EventType::kLaunchDone:
        HandleLaunchDone(event.a, event.version);
        break;
      case EventType::kCompletionCheck:
        HandleCompletionCheck(event.version);
        break;
    }
    RecomputeRatesAndCompletion();
  }

  // Safety: pay for any instance still alive (a well-behaved run terminates
  // everything via the final cleanup round).
  for (auto& [id, instance] : instances_) {
    (void)id;
    TerminateInstance(instance);
  }
  instances_.clear();

  metrics_.makespan_s = now_;
  metrics_.migrations_per_task =
      metrics_.tasks_total > 0
          ? static_cast<double>(metrics_.task_migrations) / metrics_.tasks_total
          : 0.0;
  metrics_.avg_tasks_per_instance =
      instance_seconds_ > 0.0 ? task_instance_seconds_ / instance_seconds_ : 0.0;
  metrics_.avg_alloc_gpu = cap_seconds_[0] > 0.0 ? alloc_seconds_[0] / cap_seconds_[0] : 0.0;
  metrics_.avg_alloc_cpu = cap_seconds_[1] > 0.0 ? alloc_seconds_[1] / cap_seconds_[1] : 0.0;
  metrics_.avg_alloc_ram = cap_seconds_[2] > 0.0 ? alloc_seconds_[2] / cap_seconds_[2] : 0.0;

  RunningStats jct;
  RunningStats tput;
  RunningStats idle;
  for (const auto& [job_id, job] : jobs_) {
    (void)job_id;
    if (job.active) {
      continue;  // Aborted runs can leave unfinished jobs; skip them.
    }
    jct.Add(SecondsToHours(job.completion_time - job.spec.arrival_time_s));
    if (job.running_seconds > 0.0) {
      tput.Add(job.spec.duration_s / job.running_seconds);
    }
    idle.Add(SecondsToHours((job.completion_time - job.spec.arrival_time_s) -
                            job.running_seconds));
  }
  metrics_.avg_jct_hours = jct.mean();
  metrics_.avg_norm_job_throughput = tput.mean();
  metrics_.avg_job_idle_hours = idle.mean();
  return metrics_;
}

Simulator::Simulator(const Trace& trace, Scheduler* scheduler, const InstanceCatalog& catalog,
                     const InterferenceModel& interference, SimulatorOptions options)
    : impl_(std::make_unique<Impl>(trace, scheduler, catalog, interference, options)) {}

Simulator::~Simulator() = default;

SimulationMetrics Simulator::Run() { return impl_->Run(); }

SimulationMetrics RunSimulation(const Trace& trace, Scheduler* scheduler,
                                const InstanceCatalog& catalog,
                                const InterferenceModel& interference,
                                const SimulatorOptions& options) {
  Simulator simulator(trace, scheduler, catalog, interference, options);
  return simulator.Run();
}

}  // namespace eva
