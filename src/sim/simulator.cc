#include "src/sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/format.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/obs/publish.h"
#include "src/sched/config_diff.h"
#include "src/sim/cluster_state.h"
#include "src/sim/event_queue.h"
#include "src/sim/execution_model.h"
#include "src/sim/task_lifecycle.h"

namespace eva {

namespace {

// A per-simulator provider must clamp capacity off the *same* fault schedule
// the simulator kills instances from — one options block, two consumers.
CloudProviderOptions MergedProviderOptions(const SimulatorOptions& options) {
  CloudProviderOptions merged = options.provider;
  if (options.faults.enabled) {
    merged.faults = options.faults;
  }
  return merged;
}

// Span names for the optional per-event tracing; string literals, interned
// by pointer in the recorder.
const char* EventSpanName(SimEventType type) {
  switch (type) {
    case SimEventType::kArrival:
      return "ev.arrival";
    case SimEventType::kRound:
      return "ev.round";
    case SimEventType::kInstanceReady:
      return "ev.instance_ready";
    case SimEventType::kCheckpointDone:
      return "ev.checkpoint_done";
    case SimEventType::kLaunchDone:
      return "ev.launch_done";
    case SimEventType::kCompletionCheck:
      return "ev.completion_check";
    case SimEventType::kSpotCheck:
      return "ev.spot_check";
    case SimEventType::kSpotPreempt:
      return "ev.spot_preempt";
    case SimEventType::kFaultCheck:
      return "ev.fault_check";
    case SimEventType::kZoneOutage:
      return "ev.zone_outage";
    case SimEventType::kDrainStart:
      return "ev.drain_start";
    case SimEventType::kDrainDeadline:
      return "ev.drain_deadline";
  }
  return "ev.unknown";
}

}  // namespace

// Orchestrator: wires the event queue, cluster state, execution model and
// task lifecycle to the Scheduler interface. All domain logic lives in those
// modules; the handlers below only sequence events into state transitions.
class Simulator::Impl {
 public:
  Impl(const Trace& trace, Scheduler* scheduler, const InstanceCatalog& catalog,
       const InterferenceModel& interference, SimulatorOptions options)
      : trace_(trace),
        scheduler_(scheduler),
        options_(options),
        provider_owned_(options_.shared_provider == nullptr && options_.provider.enabled
                            ? std::make_unique<CloudProvider>(
                                  catalog, MergedProviderOptions(options_))
                            : nullptr),
        provider_(options_.shared_provider != nullptr ? options_.shared_provider
                                                      : provider_owned_.get()),
        catalog_(provider_ != nullptr ? provider_->tiered_catalog() : catalog),
        rng_(options.seed),
        state_(catalog_),
        exec_(&state_, &catalog_, &interference),
        lifecycle_(&state_, &exec_, &queue_, options.migration_delay_multiplier) {
    // Let scale-dependent scheduler defaults (Eva's auto incremental-
    // packing mode) resolve against the workload size before any round.
    scheduler_->BindWorkloadScale(trace_.jobs.size());
    if (options_.observability.enabled) {
      const ObservabilityOptions& obs = options_.observability;
      flight_ = obs.flight_recorder;
      registry_ = obs.registry;
      if (obs.trace != nullptr) {
        obs_trace_ = obs.trace;
        track_ = obs_trace_->RegisterTrack(
            !obs.track_name.empty()
                ? obs.track_name
                : "tenant" + std::to_string(options_.tenant_id));
        scheduler_->BindTrace(TraceBinding{obs_trace_, track_});
      }
    }
    if (provider_ != nullptr) {
      // Spot instances are priced off the market's trace integral (and the
      // spot share is tracked); releases return pool capacity. The hooks
      // reproduce the default expressions exactly for on-demand types.
      state_.set_instance_cost_fn([this](int type_index, SimTime launch, SimTime end) {
        const Money cost = provider_->InstanceCost(type_index, launch, end);
        if (provider_->IsSpotType(type_index)) {
          metrics_.spot_cost += cost;
        }
        return cost;
      });
      state_.set_instance_terminated_fn(
          [this](int type_index, SimTime launch, SimTime end, std::int64_t slot) {
            provider_->Release(type_index, launch, end, slot);
          });
    }
  }

  SimulationMetrics Run();

  // Lockstep stepping API (see simulator.h).
  void Start();
  SimTime NextRoundTime() const {
    // An aborted run (max_sim_time_s) reports no pending round even though
    // the round event that tripped the limit never ran — otherwise a
    // federation barrier would stay pinned at its stale time forever.
    return round_scheduled_ && !aborted_ ? next_round_time_
                                         : std::numeric_limits<SimTime>::infinity();
  }
  bool Drained() const { return aborted_ || queue_.Empty(); }
  SimTime NextEventTime() const {
    return (aborted_ || queue_.Empty()) ? std::numeric_limits<SimTime>::infinity()
                                        : queue_.Top().time;
  }
  std::uint32_t ProviderFamilyFootprint(SimTime through);
  void AdvanceUntil(SimTime limit);
  void ProcessEventsThrough(SimTime t);
  SimulationMetrics Finish();

 private:
  void Advance(SimTime to);
  // Recomputes dirty job rates and (re)arms the completion check; runs after
  // every event, standing in for the old full-cluster rescan.
  void RecomputeAndArm();

  // Pops and dispatches exactly one event. Returns false when the run
  // aborted (event beyond max_sim_time_s). Requires !queue_.Empty().
  bool ProcessOneEvent();

  void HandleArrival(std::int64_t job_index);
  void HandleRound();
  void HandleInstanceReady(InstanceId id);
  void HandleCompletionCheck();
  void HandleSpotCheck();
  void HandleSpotPreempt(InstanceId id);
  void HandleFaultCheck();
  void HandleZoneOutage(int zone);
  void HandleDrainStart(int zone);
  void HandleDrainDeadline(InstanceId id);
  void ApplyConfig(const SchedulingContext& context, const ClusterConfig& config);

  // Destroys an instance right now — containers aboard are lost, assigned
  // tasks bounce back to pending, capacity is released. The shared abrupt
  // path of expired spot notices (fault_loss=false: no fault accounting)
  // and fault kills (fault_loss=true: lost work, victims, and re-placement
  // latency are tallied).
  void AbruptReclaim(InstanceId id, bool fault_loss);

  // Records the first fault disruption of a task (idempotent); the next
  // successful container launch closes the re-placement latency sample.
  void MarkFaultDisrupted(TaskId task_id) {
    fault_disrupted_at_.try_emplace(task_id, now_);
  }

  void PushRound(SimTime at) {
    round_scheduled_ = true;
    next_round_time_ = at;
    queue_.Push(at, SimEventType::kRound);
  }

  // Arms the next spot repricing check if none is outstanding.
  void ArmSpotCheck();
  // Arms the next fault-schedule check if none is outstanding.
  void ArmFaultCheck();
  // Issues the two-minute warning for one spot instance: evicts its
  // assigned tasks, condemns it, and schedules the reclaim.
  void WarnSpotInstance(InstanceId id);

  bool SpotActive() const { return provider_ != nullptr && provider_->spot_enabled(); }
  bool FaultsActive() const { return options_.faults.enabled; }

  // Families with at least one catalog type that can host this job's tasks
  // — every family a scheduler could conceivably launch for it.
  std::uint32_t JobFamilyMask(const JobSpec& spec) const {
    std::uint32_t mask = 0;
    for (int i = 0; i < catalog_.NumTypes(); ++i) {
      const InstanceType& type = catalog_.Get(i);
      const auto bit = 1u << static_cast<int>(type.family);
      if ((mask & bit) == 0 && spec.DemandFor(type.family).FitsWithin(type.capacity)) {
        mask |= bit;
      }
    }
    return mask;
  }

  std::uint32_t CachedJobFamilyMask(const JobSpec& spec) {
    const auto [it, inserted] = job_family_mask_.try_emplace(spec.id, 0u);
    if (inserted) {
      it->second = JobFamilyMask(spec);
    }
    return it->second;
  }

  bool HasActiveJobs() const { return state_.num_active() > 0; }
  bool HasPendingArrivals() const { return next_arrival_ < trace_.jobs.size(); }

  // --- Observability (all no-ops when the sinks below are null) ----------

  // Sum of live instances' hourly prices — the cost-rate sample for the
  // round digest and the registry time series.
  double LiveHourlyCost() const {
    double total = 0.0;
    for (const auto& [id, instance] : state_.instances()) {
      total += catalog_.Get(instance.type_index).cost_per_hour;
    }
    return total;
  }

  // Order- and content-sensitive hash of the desired configuration; the
  // sharpest per-round fingerprint the flight recorder snapshots.
  std::uint64_t HashConfig(const ClusterConfig& config) const {
    std::uint64_t hash = 0x9e3779b97f4a7c15ULL;
    auto mix = [&hash](std::uint64_t value) {
      hash ^= value + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
    };
    mix(static_cast<std::uint64_t>(config.instances.size()));
    for (const ConfigInstance& instance : config.instances) {
      mix(static_cast<std::uint64_t>(instance.type_index));
      mix(static_cast<std::uint64_t>(instance.reuse_instance));
      mix(static_cast<std::uint64_t>(instance.tasks.size()));
      for (TaskId task : instance.tasks) {
        mix(static_cast<std::uint64_t>(task));
      }
    }
    return hash;
  }

  // Appends this round's digest and samples the registry time series.
  // Called once per scheduling round, coalesced rounds included, so digest
  // round indices line up with metrics_.scheduling_rounds across runs.
  void RecordRoundObservability() {
    const double hourly_cost = LiveHourlyCost();
    if (flight_ != nullptr) {
      RoundDigest digest;
      digest.t_s = now_;
      digest.config_hash = last_config_hash_;
      digest.rng_hash = rng_.StateHash();
      digest.hourly_cost = hourly_cost;
      digest.events_processed = metrics_.events_processed;
      digest.jobs_completed = metrics_.jobs_completed;
      digest.active_jobs = state_.num_active();
      digest.live_instances = static_cast<std::int64_t>(state_.instances().size());
      flight_->Record(digest);
    }
    if (registry_ != nullptr) {
      const double width = options_.observability.timeseries_bucket_s;
      registry_->Series("ts.hourly_cost", width).Sample(now_, hourly_cost);
      registry_->Series("ts.active_jobs", width).Sample(now_, state_.num_active());
      registry_->Series("ts.live_instances", width)
          .Sample(now_, static_cast<double>(state_.instances().size()));
      registry_->Series("ts.queue_depth", width)
          .Sample(now_, static_cast<double>(queue_.Size()));
      registry_->Series("ts.denials", width)
          .Sample(now_, static_cast<double>(metrics_.acquisitions_denied));
      // Packing divergence as the scheduler last measured it (zero until
      // the first reconciliation; zero throughout for exact-only runs).
      SchedulerCounters counters;
      scheduler_->ExportCounters(counters);
      registry_->Series("ts.divergence_cost", width)
          .Sample(now_, counters.last_divergence_cost);
      registry_->Hist("round.events_delta")
          .Record(metrics_.events_processed - last_round_events_);
      last_round_events_ = metrics_.events_processed;
    }
  }

  // True when this round is certifiably quiescent: the context the scheduler
  // would see and the observations it would receive are identical (up to the
  // clock and remaining-runtime estimates) to the previous round's, and the
  // previous configuration was applied without touching the cluster. Such a
  // round may be offered to Scheduler::CoalesceQuiescentRounds. Spot quotes
  // drift between rounds, so no round is quiescent while the market is on;
  // fault injection is likewise disqualifying (a fault can rip capacity out
  // between two otherwise-identical rounds).
  bool RoundIsQuiescent() const {
    return options_.coalesce_quiescent_rounds && !options_.physical_mode &&
           !SpotActive() && !FaultsActive() && last_apply_noop_ &&
           !rates_dirty_since_round_ && !state_.HasPendingDelta();
  }

  const Trace& trace_;
  Scheduler* scheduler_;
  SimulatorOptions options_;

  // Cloud provider market: owned for single-tenant runs, borrowed from the
  // federation otherwise; null when disabled. `catalog_` is the catalog the
  // engine actually runs against — the provider's tiered catalog (stable
  // object) when a provider exists, the caller's otherwise.
  std::unique_ptr<CloudProvider> provider_owned_;
  CloudProvider* provider_;
  const InstanceCatalog& catalog_;

  Rng rng_;

  ClusterState state_;
  ExecutionModel exec_;
  EventQueue queue_;
  TaskLifecycle lifecycle_;

  std::size_t next_arrival_ = 0;
  SimTime pending_completion_check_ = std::numeric_limits<SimTime>::infinity();
  SimTime now_ = 0.0;
  bool round_scheduled_ = false;
  SimTime next_round_time_ = 0.0;
  bool aborted_ = false;

  // One outstanding spot repricing check at a time; re-armed while spot
  // instances are live and parked (flag false) when none remain.
  bool spot_check_armed_ = false;

  // Fault injection. The simulator-side view of the schedule — pure in
  // options_.faults, so it agrees bit-for-bit with the provider's capacity
  // clamp built from the same options. One outstanding kFaultCheck at a
  // time, re-armed while instances are live (the same idiom as spot).
  FaultModel fault_model_{options_.faults};
  bool fault_check_armed_ = false;
  // First fault disruption per not-yet-replaced task, and the closed
  // re-placement latency samples (disruption -> next successful launch).
  std::unordered_map<TaskId, SimTime> fault_disrupted_at_;
  std::vector<double> replacement_latency_s_;

  // Per-round decision-price snapshot: the tiered catalog with spot entries
  // at the current quote x (1 + risk premium). Borrowed from the provider's
  // step-keyed cache, so catalog identity changes exactly when a price step
  // boundary is crossed — pricing caches keyed on identity invalidate on
  // every real price change and only then, and all tenants rounding in one
  // step share one snapshot instead of building their own.
  std::shared_ptr<const InstanceCatalog> quote_catalog_;

  // Footprint contract (federation): the family mask this tenant declared
  // for the barrier at `footprint_through_`. Acquisitions at that time must
  // fall inside the mask — see ProviderFamilyFootprint.
  std::uint32_t footprint_mask_ = 0;
  SimTime footprint_through_ = -std::numeric_limits<SimTime>::infinity();
  bool footprint_armed_ = false;
  // A job's family-fit mask is pure in (spec, catalog); cached by job id.
  std::unordered_map<JobId, std::uint32_t> job_family_mask_;

  // Quiescence tracking for the batched round trigger. `last_apply_noop_`:
  // the previous round's configuration changed nothing (no launches,
  // terminations or moves — condemnations imply a non-empty terminate list,
  // so they clear it too). `rates_dirty_since_round_`: a task-rate-affecting
  // transition (instance ready, checkpoint/launch completion, an actual job
  // completion) fired since the previous round's observation snapshot;
  // cluster-shape changes are covered by the pending RoundDelta instead.
  bool last_apply_noop_ = false;
  bool rates_dirty_since_round_ = false;

  // Per-round context, refilled in place (FillContext) so its containers'
  // storage is reused round over round. Only alive during HandleRound; the
  // scheduler contract already forbids retaining the reference.
  SchedulingContext round_context_;

  // Round-scoped output buffers, rewritten in place every round: the
  // scheduler's desired configuration and its diff against the context.
  // These replace per-round temporaries (and ApplyConfig's PR-4
  // thread_local scratch — members give each simulator its own storage,
  // which is the stronger isolation under federation and parallel
  // comparison runs, and leave ScratchLease as the one thread-local
  // mechanism in the codebase).
  ClusterConfig round_config_;
  ConfigDiff round_diff_;
  std::vector<InstanceId> apply_binding_instance_;
  std::vector<char> apply_execute_;
  std::vector<InstanceId> apply_keep_visible_;

  // Per-event copy buffers (iteration-robust snapshots of instance task
  // sets and completion candidates), reused so handlers allocate nothing
  // at steady state. scratch_evict_ids_ is distinct because
  // HandleSpotPreempt snapshots two sets in one call.
  std::vector<TaskId> scratch_task_ids_;
  std::vector<TaskId> scratch_evict_ids_;
  std::vector<JobId> scratch_job_ids_;
  std::vector<InstanceId> scratch_instance_ids_;

  // Observability sinks, unpacked from options_.observability at
  // construction; all null in the default (off) configuration, so every
  // hook below is one pointer test on the hot path.
  TraceRecorder* obs_trace_ = nullptr;
  std::uint32_t track_ = 0;
  FlightRecorder* flight_ = nullptr;
  TelemetryRegistry* registry_ = nullptr;
  std::uint64_t last_config_hash_ = 0;
  std::int64_t last_round_events_ = 0;

  SimulationMetrics metrics_;
};

void Simulator::Impl::Advance(SimTime to) {
  const double dt = to - now_;
  if (dt <= 0.0) {
    now_ = std::max(now_, to);
    return;
  }
  exec_.IntegrateWork(dt);
  state_.IntegrateTo(dt);
  now_ = to;
}

void Simulator::Impl::RecomputeAndArm() {
  const SimTime earliest = exec_.RecomputeDirtyRates(now_);
  // Checks are idempotent (a check that fires early is a no-op and re-arms),
  // so we only push when the new projection is earlier than what is already
  // armed — this bounds queue growth without missing a completion.
  if (earliest >= 0.0 && earliest < pending_completion_check_ - 1e-9) {
    pending_completion_check_ = earliest;
    queue_.Push(earliest, SimEventType::kCompletionCheck);
  }
}

void Simulator::Impl::HandleArrival(std::int64_t job_index) {
  const JobSpec& spec = trace_.jobs[static_cast<std::size_t>(job_index)];
  // Admission control: reject jobs no instance type can host (the paper
  // filters these from the trace).
  const std::optional<int> fits = catalog_.CheapestFitting(
      [&spec](InstanceFamily family) { return spec.DemandFor(family); });
  if (!fits.has_value()) {
    EVA_LOG_WARNING("job " EVA_PRId64 " demand %s fits no instance type; dropped",
                    spec.id, spec.demand_p3.ToString().c_str());
    return;
  }
  const JobRec& job = state_.AddJob(spec);
  exec_.OnJobAdded(job);
  metrics_.tasks_total += spec.num_tasks;
  ++metrics_.jobs_submitted;
}

void Simulator::Impl::HandleRound() {
  round_scheduled_ = false;
  ++metrics_.scheduling_rounds;

  // Quiescence-aware trigger: a certified no-op round is offered to the
  // scheduler for absorption instead of being dispatched. The event and
  // integration trajectory is untouched (this round event was popped and
  // advanced exactly as always; the next one is pushed exactly as always),
  // so every simulated quantity stays bit-identical — the only difference
  // is that the observation/context/schedule/validate/apply machinery,
  // provably a no-op this round, never runs. An absorbed round changes no
  // state, so the keep-scheduling condition equals the previous round's,
  // which was true (it pushed this event).
  if (RoundIsQuiescent() &&
      (HasActiveJobs() || HasPendingArrivals() || state_.HasLiveInstances()) &&
      scheduler_->CoalesceQuiescentRounds(1, options_.scheduling_period_s) > 0) {
    ++metrics_.rounds_coalesced;
    if (obs_trace_ != nullptr) {
      obs_trace_->Instant(track_, "round.coalesced", now_);
    }
    if (flight_ != nullptr || registry_ != nullptr) {
      RecordRoundObservability();
    }
    PushRound(now_ + options_.scheduling_period_s);
    return;
  }

  // Report the last window's throughput (the EvaIterator channel), then ask
  // for the desired configuration. The context carries the RoundDelta the
  // cluster state accumulated since the previous round, and the scheduler
  // calls are timed so the benches can report per-round decision latency.
  const std::vector<JobThroughputObservation>& observations = exec_.CollectObservations(
      options_.physical_mode, options_.observation_noise_stddev, &rng_);
  SchedulingContext& context = round_context_;  // Reused storage across rounds.
  state_.FillContext(now_, options_.grant_runtime_estimates, context);
  if (SpotActive()) {
    // Reprice the spot tier for this round's decision. The snapshot comes
    // from the provider's step-keyed cache: rounds within one price step
    // see the same object (prices bit-identical by construction), and a
    // step crossing swaps in a new identity so every pricing cache sees
    // the change. Cached snapshots are never freed, so identities never
    // collide.
    quote_catalog_ = provider_->SharedQuoteCatalog(now_, options_.spot_risk_premium);
    context.catalog = quote_catalog_.get();
  }
  state_.DrainRoundDelta(context.delta);
  rates_dirty_since_round_ = false;  // This round's snapshot is the new baseline.
  const auto sched_start = std::chrono::steady_clock::now();
  scheduler_->ObserveThroughput(observations);
  // Round-scoped storage: the config is written into the same buffers every
  // round (schedulers reuse element capacity instead of building a fresh
  // ClusterConfig), per the arena discipline of reset-not-reallocate.
  ClusterConfig& config = round_config_;
  scheduler_->ScheduleInto(context, config);
  metrics_.scheduler_wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sched_start).count();

  if (options_.validate_configs) {
    if (const auto error = config.Validate(context)) {
      EVA_LOG_ERROR("scheduler %s returned invalid config at t=%.0f: %s",
                    scheduler_->name().c_str(), now_, error->c_str());
      // Keep replaying the rejection (and its log line) every round rather
      // than certifying a round that never applied its configuration.
      last_apply_noop_ = false;
    } else {
      ApplyConfig(context, config);
    }
  } else {
    ApplyConfig(context, config);
  }

  // Keep the cadence while there is anything left to manage (evaluated after
  // the configuration took effect, so a final cleanup round ends the chain).
  if (HasActiveJobs() || HasPendingArrivals() || state_.HasLiveInstances()) {
    PushRound(now_ + options_.scheduling_period_s);
  }

  if (obs_trace_ != nullptr) {
    obs_trace_->Instant(track_, "round", now_, "active_jobs",
                    static_cast<double>(state_.num_active()), "live_instances",
                    static_cast<double>(state_.instances().size()));
  }
  if (flight_ != nullptr || registry_ != nullptr) {
    RecordRoundObservability();
  }
}

void Simulator::Impl::ApplyConfig(const SchedulingContext& context,
                                  const ClusterConfig& config) {
  ConfigDiff& diff = round_diff_;  // Reused storage across rounds.
  DiffConfigInto(context, config, diff);

  if (flight_ != nullptr) {
    last_config_hash_ = HashConfig(config);
  }
  if (obs_trace_ != nullptr) {
    obs_trace_->Instant(track_, "config.apply", now_, "launches",
                    static_cast<double>(diff.NumLaunches()), "moves",
                    static_cast<double>(diff.moves.size()));
  }

  // An application that launches, terminates (or condemns) or moves nothing
  // leaves the cluster exactly as the scheduler saw it — the precondition
  // for certifying the following rounds quiescent.
  last_apply_noop_ =
      diff.terminate.empty() && diff.moves.empty() && diff.NumLaunches() == 0;

  // Launch new instances, subject to provider admission: an exhausted
  // family pool denies the launch, the binding stays unbound, and every
  // task routed to it keeps its previous placement until a later round
  // succeeds (or the scheduler gives up).
  bool any_denied = false;
  std::vector<InstanceId>& binding_instance = apply_binding_instance_;
  binding_instance.assign(diff.bindings.size(), kInvalidInstanceId);
  for (std::size_t i = 0; i < diff.bindings.size(); ++i) {
    const ConfigDiff::Binding& binding = diff.bindings[i];
    if (binding.existing_id != kInvalidInstanceId) {
      binding_instance[i] = binding.existing_id;
      continue;
    }
    if (options_.shared_provider != nullptr && footprint_armed_ &&
        now_ == footprint_through_) {
      // Footprint contract: a launch on a family the tenant did not declare
      // would touch a shard the conflict grouping assigned to someone else.
      // Fail loudly — the alternative is a silent cross-pool-size
      // determinism break.
      const auto family = static_cast<int>(catalog_.Get(binding.type_index).family);
      if (((footprint_mask_ >> family) & 1u) == 0) {
        EVA_LOG_ERROR(
            "tenant %d: launch of family %d at t=%.0f escapes its declared "
            "provider footprint (mask %#x); aborting",
            options_.tenant_id, family, now_, footprint_mask_);
        std::abort();
      }
    }
    std::int64_t slot = -1;
    if (provider_ != nullptr && !provider_->TryAcquire(binding.type_index, now_, &slot)) {
      ++metrics_.acquisitions_denied;
      any_denied = true;
      EVA_LOG_DEBUG("tenant %d: launch of type %d denied at t=%.0f", options_.tenant_id,
                    binding.type_index, now_);
      continue;
    }
    const SimTime delay = options_.cloud_delays.ProvisioningDelay(
        options_.physical_mode ? &rng_ : nullptr);
    InstRec& instance = state_.CreateInstance(binding.type_index, now_, now_ + delay);
    instance.provider_slot = slot;
    if (FaultsActive()) {
      // Zone placement is a pure hash over the zones up right now, so an
      // instance never launches into an ongoing outage.
      instance.zone = fault_model_.ZoneAt(options_.tenant_id, instance.id, now_);
      ArmFaultCheck();
    }
    binding_instance[i] = instance.id;
    queue_.Push(instance.ready_time, SimEventType::kInstanceReady, instance.id);
    if (provider_ != nullptr && provider_->IsSpotType(binding.type_index)) {
      ++metrics_.spot_instances_launched;
      ArmSpotCheck();
    }
  }

  // Which moves execute. Without denials: every move (the config was
  // validated whole, and capacity is "eventual" — swaps may transiently
  // overlap). A denial, however, strands each dropped move's task on its
  // current instance, which the scheduler's plan assumed vacated — blindly
  // executing the arrivals into that instance would over-commit it, and the
  // oversubscribed assignment would then poison every later round (Partial
  // Reconfiguration keeps instances verbatim, so the invalid set never
  // heals). Re-verify arrivals against projected capacity instead, dropping
  // (in diff order, to a fixpoint — a dropped arrival bounces its task back
  // to an instance earlier arrivals were checked without) whatever no
  // longer fits.
  std::vector<char>& execute = apply_execute_;  // Reused round scratch.
  execute.assign(diff.moves.size(), 1);
  for (std::size_t i = 0; i < diff.moves.size(); ++i) {
    const TaskRec* task = state_.FindTask(diff.moves[i].task);
    if (task == nullptr || task->state == TaskState::kDone ||
        binding_instance[static_cast<std::size_t>(diff.moves[i].to_binding)] ==
            kInvalidInstanceId) {
      execute[i] = 0;
    }
  }
  if (any_denied) {
    // Move sources/destinations are live by the assigned-set invariant
    // (MaybeTerminate requires assigned empty), so the instance lookup is
    // dereferenced unchecked — pricing demand against a substitute family
    // would silently corrupt the capacity re-verify.
    const auto demand_on = [&](const TaskRec& task, InstanceId instance_id) {
      const InstanceFamily family =
          catalog_.Get(state_.FindInstance(instance_id)->type_index).family;
      return task.job_ref->spec.DemandFor(family);
    };
    for (bool changed = true; changed;) {
      changed = false;
      // Projected per-instance demand if the currently executable moves all
      // run: start from the live assignment, apply departures, then re-add
      // arrivals one by one with a fit check at the destination.
      std::map<InstanceId, ResourceVector> projected;
      const auto projected_for = [&](InstanceId id) -> ResourceVector& {
        auto [it, inserted] = projected.try_emplace(id);
        if (inserted) {
          if (const InstRec* instance = state_.FindInstance(id)) {
            for (TaskId task_id : instance->assigned) {
              if (const TaskRec* task = state_.FindTask(task_id)) {
                it->second += demand_on(*task, id);
              }
            }
          }
        }
        return it->second;
      };
      for (std::size_t i = 0; i < diff.moves.size(); ++i) {
        if (!execute[i]) {
          continue;
        }
        const TaskRec& task = *state_.FindTask(diff.moves[i].task);
        if (task.target != kInvalidInstanceId) {
          projected_for(task.target) -= demand_on(task, task.target);
        }
      }
      for (std::size_t i = 0; i < diff.moves.size(); ++i) {
        if (!execute[i]) {
          continue;
        }
        const InstanceId dest =
            binding_instance[static_cast<std::size_t>(diff.moves[i].to_binding)];
        const TaskRec& task = *state_.FindTask(diff.moves[i].task);
        ResourceVector& load = projected_for(dest);
        const ResourceVector demand = demand_on(task, dest);
        ResourceVector with = load;
        with += demand;
        const InstRec& inst = *state_.FindInstance(dest);
        if (with.FitsWithin(catalog_.Get(inst.type_index).capacity)) {
          load = with;
          continue;
        }
        // Dropped: the task stays put; its departure must not have been
        // applied. Restore and re-verify from the top.
        execute[i] = 0;
        if (task.target != kInvalidInstanceId) {
          projected_for(task.target) += demand_on(task, task.target);
        }
        changed = true;
      }
    }
  }

  // Condemn instances leaving the configuration — except any that still
  // host a task whose move was dropped above. Condemned instances vanish
  // from the scheduler's context, so condemning one with a stranded task
  // would pin that task to an invisible instance no later round can
  // re-pool; keeping the instance visible keeps the "denials throttle,
  // the scheduler retries" loop real. Without denials every move executes
  // (dropped entries are dead/absent tasks only), so this is exactly the
  // old unconditional condemn.
  std::vector<InstanceId>& keep_visible = apply_keep_visible_;  // Reused round scratch.
  keep_visible.clear();
  for (std::size_t i = 0; i < diff.moves.size(); ++i) {
    if (execute[i]) {
      continue;
    }
    const TaskRec* task = state_.FindTask(diff.moves[i].task);
    if (task != nullptr && task->state != TaskState::kDone &&
        task->target != kInvalidInstanceId) {
      keep_visible.push_back(task->target);
    }
  }
  for (InstanceId id : diff.terminate) {
    if (std::find(keep_visible.begin(), keep_visible.end(), id) == keep_visible.end()) {
      state_.Condemn(id);
    }
  }

  // Execute the surviving moves.
  for (std::size_t i = 0; i < diff.moves.size(); ++i) {
    if (!execute[i]) {
      continue;
    }
    const ConfigDiff::Move& move = diff.moves[i];
    TaskRec* task = state_.FindTask(move.task);
    if (move.from_instance != kInvalidInstanceId) {
      ++metrics_.task_migrations;
    }
    lifecycle_.Retarget(*task, binding_instance[static_cast<std::size_t>(move.to_binding)],
                        now_);
  }

  // Condemned instances with nothing left terminate immediately.
  std::vector<InstanceId>& condemned = scratch_instance_ids_;
  condemned.clear();
  for (const auto& [id, instance] : state_.instances()) {
    if (instance.condemned) {
      condemned.push_back(id);
    }
  }
  for (InstanceId id : condemned) {
    state_.MaybeTerminate(id, now_);
  }
}

void Simulator::Impl::HandleInstanceReady(InstanceId id) {
  InstRec* inst = state_.FindInstance(id);
  if (inst == nullptr) {
    return;
  }
  inst->ready = true;
  // Launch everything parked on this instance. Copy the set: TryLaunch does
  // not mutate `assigned`, but keep the iteration robust anyway.
  std::vector<TaskId>& parked = scratch_task_ids_;
  parked.assign(inst->assigned.begin(), inst->assigned.end());
  for (TaskId task_id : parked) {
    if (TaskRec* task = state_.FindTask(task_id)) {
      lifecycle_.TryLaunch(*task, now_);
    }
  }
}

void Simulator::Impl::HandleCompletionCheck() {
  pending_completion_check_ = std::numeric_limits<SimTime>::infinity();
  if (exec_.completion_candidates().empty()) {
    return;  // A check that fired early; RecomputeAndArm re-arms it.
  }
  rates_dirty_since_round_ = true;
  std::vector<JobId>& finished = scratch_job_ids_;
  finished.assign(exec_.completion_candidates().begin(),
                  exec_.completion_candidates().end());
  for (JobId job_id : finished) {
    lifecycle_.CompleteJob(*state_.FindJob(job_id), now_, metrics_);
  }
}

void Simulator::Impl::ArmSpotCheck() {
  if (!SpotActive() || spot_check_armed_) {
    return;
  }
  spot_check_armed_ = true;
  queue_.Push(provider_->market().NextStepBoundary(now_), SimEventType::kSpotCheck);
}

void Simulator::Impl::WarnSpotInstance(InstanceId id) {
  InstRec* inst = state_.FindInstance(id);
  if (inst == nullptr) {
    return;
  }
  ++metrics_.spot_preemptions;
  provider_->RecordPreemption(inst->type_index);
  if (obs_trace_ != nullptr) {
    obs_trace_->Instant(track_, "spot.warn", now_, "instance",
                    static_cast<double>(id), "type",
                    static_cast<double>(inst->type_index));
  }
  EVA_LOG_DEBUG("tenant %d: spot instance " EVA_PRId64
                " (type %d) preemption warning at t=%.0f",
                options_.tenant_id, id, inst->type_index, now_);
  // Evict every task routed here: running tasks checkpoint (and park
  // kPending when the checkpoint lands), parked/launching tasks drop back
  // to the pending pool immediately.
  std::vector<TaskId>& assigned = scratch_task_ids_;
  assigned.assign(inst->assigned.begin(), inst->assigned.end());
  for (TaskId task_id : assigned) {
    if (TaskRec* task = state_.FindTask(task_id)) {
      lifecycle_.Evict(*task, now_);
    }
  }
  // Condemned: invisible to the scheduler from the next context on, and
  // terminated (capacity released) the moment the last container leaves —
  // possibly right now, if nothing was placed yet.
  state_.Condemn(id);
  queue_.Push(now_ + provider_->market().options().warning_s, SimEventType::kSpotPreempt,
              id);
  state_.MaybeTerminate(id, now_);
}

void Simulator::Impl::HandleSpotCheck() {
  spot_check_armed_ = false;
  // Scan live spot instances in id order (deterministic) for types whose
  // quote crossed the preemption threshold this step.
  std::vector<InstanceId> to_warn;
  bool any_spot_live = false;
  for (const auto& [id, instance] : state_.instances()) {
    if (!provider_->IsSpotType(instance.type_index)) {
      continue;
    }
    any_spot_live = true;
    if (instance.condemned) {
      continue;  // Already warned (or draining); reclaim is scheduled.
    }
    if (provider_->market().IsPreempting(provider_->BaseType(instance.type_index), now_)) {
      to_warn.push_back(id);
    }
  }
  for (InstanceId id : to_warn) {
    WarnSpotInstance(id);
  }
  if (any_spot_live) {
    ArmSpotCheck();  // Keep repricing while spot capacity is held.
  }
}

void Simulator::Impl::HandleSpotPreempt(InstanceId id) {
  // The notice expired with containers still aboard (checkpoints slower
  // than the warning): they are lost. Spot losses are tallied by the spot
  // counters, not the fault ledger.
  if (obs_trace_ != nullptr) {
    obs_trace_->Instant(track_, "spot.preempt", now_, "instance",
                    static_cast<double>(id));
  }
  AbruptReclaim(id, /*fault_loss=*/false);
}

void Simulator::Impl::AbruptReclaim(InstanceId id, bool fault_loss) {
  InstRec* inst = state_.FindInstance(id);
  if (inst == nullptr) {
    return;  // Already drained and terminated.
  }
  if (fault_loss) {
    ++metrics_.faults.instances_killed;
  }
  // Mark neighbors dirty first — the instance record disappears below.
  exec_.MarkInstanceDirty(*inst);
  std::vector<TaskId>& present = scratch_task_ids_;
  present.assign(inst->present.begin(), inst->present.end());
  for (TaskId task_id : present) {
    TaskRec* task = state_.FindTask(task_id);
    if (task == nullptr) {
      continue;
    }
    if (fault_loss) {
      // A container died with work in flight: everything since its launch
      // is gone (no checkpoint finished, or the event would have removed it
      // from the present set already).
      ++metrics_.faults.tasks_lost;
      if (task->running_since >= 0.0) {
        metrics_.faults.lost_work_seconds += std::max(now_ - task->running_since, 0.0);
      }
      MarkFaultDisrupted(task_id);
    }
    ++task->version;  // Cancels the in-flight checkpoint completion.
    state_.RemoveContainer(*task);
    if (task->target != kInvalidInstanceId && task->target != id) {
      // Outbound migration interrupted: the container is gone either way;
      // relaunch at the (still valid) destination.
      task->state = TaskState::kWaiting;
      lifecycle_.TryLaunch(*task, now_);
    } else {
      state_.ClearTarget(*task);
      task->state = TaskState::kPending;
    }
  }
  // Anything still assigned (tasks parked, launching, or bound here without
  // a container yet) drops back to pending too.
  std::vector<TaskId>& assigned = scratch_evict_ids_;
  assigned.assign(inst->assigned.begin(), inst->assigned.end());
  for (TaskId task_id : assigned) {
    if (TaskRec* task = state_.FindTask(task_id)) {
      if (fault_loss) {
        MarkFaultDisrupted(task_id);
      }
      lifecycle_.Evict(*task, now_);
    }
  }
  state_.Condemn(id);
  state_.MaybeTerminate(id, now_);
}

void Simulator::Impl::ArmFaultCheck() {
  if (!FaultsActive() || fault_check_armed_) {
    return;
  }
  fault_check_armed_ = true;
  queue_.Push(fault_model_.NextStepBoundary(now_), SimEventType::kFaultCheck);
}

void Simulator::Impl::HandleFaultCheck() {
  fault_check_armed_ = false;
  const std::int64_t step = fault_model_.StepOf(now_);
  const FaultInjectorOptions& fopts = fault_model_.options();
  // Zone events go through the queue (at now_, after this event's seq) so
  // they appear in the trace as first-class events; correlated bursts act
  // inline — their victim set is computed from the live set right here.
  for (int zone = 0; zone < fopts.num_zones; ++zone) {
    if (fault_model_.ZoneOutageStartsAt(zone, step)) {
      queue_.Push(now_, SimEventType::kZoneOutage, zone);
    }
    if (fault_model_.DrainStartsAt(zone, step)) {
      queue_.Push(now_, SimEventType::kDrainStart, zone);
    }
  }
  for (int family = 0; family < kNumInstanceFamilies; ++family) {
    if (!fault_model_.CorrelatedFailureAt(family, step)) {
      continue;
    }
    // Rank the family's live instances by a pure hash and kill the lowest
    // K: the victim set is a function of (schedule, live set) only, never
    // of map iteration or event interleaving.
    std::vector<std::pair<std::uint64_t, InstanceId>> ranked;
    for (const auto& [id, instance] : state_.instances()) {
      if (instance.condemned ||
          static_cast<int>(catalog_.Get(instance.type_index).family) != family) {
        continue;
      }
      ranked.emplace_back(fault_model_.VictimRank(options_.tenant_id, id, step), id);
    }
    if (ranked.empty()) {
      continue;  // Scheduled burst found nothing to kill; not counted.
    }
    ++metrics_.faults.correlated_failures;
    std::sort(ranked.begin(), ranked.end());
    const std::size_t burst =
        std::min(ranked.size(), static_cast<std::size_t>(
                                    std::max(fopts.correlated_failure_size, 0)));
    if (obs_trace_ != nullptr) {
      obs_trace_->Instant(track_, "fault.correlated", now_, "family",
                      static_cast<double>(family), "victims",
                      static_cast<double>(burst));
    }
    for (std::size_t i = 0; i < burst; ++i) {
      AbruptReclaim(ranked[i].second, /*fault_loss=*/true);
    }
  }
  if (state_.HasLiveInstances()) {
    ArmFaultCheck();  // Keep checking while anything can still fail.
  }
}

void Simulator::Impl::HandleZoneOutage(int zone) {
  ++metrics_.faults.zone_outages;
  EVA_LOG_DEBUG("tenant %d: zone %d outage at t=%.0f", options_.tenant_id, zone, now_);
  // The zone drops wholesale: every instance in it — ready, provisioning,
  // even already-condemned — dies abruptly, in id order.
  std::vector<InstanceId>& victims = scratch_instance_ids_;
  victims.clear();
  for (const auto& [id, instance] : state_.instances()) {
    if (instance.zone == zone) {
      victims.push_back(id);
    }
  }
  if (obs_trace_ != nullptr) {
    obs_trace_->Instant(track_, "fault.zone_outage", now_, "zone",
                    static_cast<double>(zone), "victims",
                    static_cast<double>(victims.size()));
  }
  for (InstanceId id : victims) {
    AbruptReclaim(id, /*fault_loss=*/true);
  }
}

void Simulator::Impl::HandleDrainStart(int zone) {
  ++metrics_.faults.maintenance_drains;
  EVA_LOG_DEBUG("tenant %d: zone %d maintenance drain at t=%.0f", options_.tenant_id,
                zone, now_);
  std::vector<InstanceId>& draining = scratch_instance_ids_;
  draining.clear();
  for (const auto& [id, instance] : state_.instances()) {
    if (!instance.condemned && instance.zone == zone) {
      draining.push_back(id);
    }
  }
  if (obs_trace_ != nullptr) {
    obs_trace_->Instant(track_, "fault.drain_start", now_, "zone",
                    static_cast<double>(zone), "instances",
                    static_cast<double>(draining.size()));
  }
  // The graceful twin of WarnSpotInstance, with a longer lead: evict every
  // assigned task through checkpoint-then-pend, condemn the instance, and
  // only reclaim abruptly if containers outlast the notice.
  for (InstanceId id : draining) {
    InstRec* inst = state_.FindInstance(id);
    if (inst == nullptr) {
      continue;
    }
    ++metrics_.faults.instances_drained;
    std::vector<TaskId>& assigned = scratch_task_ids_;
    assigned.assign(inst->assigned.begin(), inst->assigned.end());
    for (TaskId task_id : assigned) {
      if (TaskRec* task = state_.FindTask(task_id)) {
        ++metrics_.faults.tasks_evicted;
        MarkFaultDisrupted(task_id);
        lifecycle_.Evict(*task, now_);
      }
    }
    state_.Condemn(id);
    queue_.Push(now_ + fault_model_.options().drain_notice_s,
                SimEventType::kDrainDeadline, id);
    state_.MaybeTerminate(id, now_);
  }
}

void Simulator::Impl::HandleDrainDeadline(InstanceId id) {
  // Whatever survived the notice (checkpoints slower than the lead time) is
  // reclaimed the hard way; a cleanly drained instance is long gone and
  // this is a no-op.
  AbruptReclaim(id, /*fault_loss=*/true);
}

bool Simulator::Impl::ProcessOneEvent() {
  const SimEvent event = queue_.Pop();
  if (event.time > options_.max_sim_time_s) {
    EVA_LOG_ERROR("simulation exceeded max time; aborting with %d active jobs",
                  state_.num_active());
    aborted_ = true;
    // Pay for and release everything immediately: in a federation, an
    // aborted tenant must not sit on shared pool capacity while the
    // surviving tenants finish (Finish()'s own TerminateAllLive is then a
    // no-op — same cost, same uptime samples, charged at the same now_).
    state_.TerminateAllLive(now_);
    return false;
  }
  Advance(event.time);
  ++metrics_.events_processed;
  if (obs_trace_ != nullptr && options_.observability.trace_engine_events) {
    obs_trace_->Instant(track_, EventSpanName(event.type), event.time, "a",
                    static_cast<double>(event.a));
  }
  EVA_LOG_DEBUG("event t=%.3f type=%d a=" EVA_PRId64
                " v=%d active=%d live=%zu queue=%zu",
                event.time, static_cast<int>(event.type), event.a, event.version,
                state_.num_active(), state_.instances().size(), queue_.Size());
  switch (event.type) {
    case SimEventType::kArrival:
      HandleArrival(event.a);
      ++next_arrival_;
      if (HasPendingArrivals()) {
        queue_.Push(trace_.jobs[next_arrival_].arrival_time_s, SimEventType::kArrival,
                    static_cast<std::int64_t>(next_arrival_));
      }
      if (!round_scheduled_) {
        // The cluster drained; resume scheduling rounds.
        PushRound(now_);
      }
      break;
    case SimEventType::kRound:
      HandleRound();
      break;
    case SimEventType::kInstanceReady:
      // Task-rate transitions invalidate round quiescence: the next
      // round's observations can differ even when the RoundDelta is empty
      // (these transitions never touch the delta).
      rates_dirty_since_round_ = true;
      HandleInstanceReady(event.a);
      break;
    case SimEventType::kCheckpointDone:
      if (TaskRec* task = state_.FindTask(event.a)) {
        if (task->version == event.version && task->state == TaskState::kCheckpointing) {
          rates_dirty_since_round_ = true;
          lifecycle_.OnCheckpointDone(*task, now_);
        }
      }
      break;
    case SimEventType::kLaunchDone:
      if (TaskRec* task = state_.FindTask(event.a)) {
        if (task->version == event.version && task->state == TaskState::kLaunching) {
          rates_dirty_since_round_ = true;
          lifecycle_.OnLaunchDone(*task, now_);
          if (!fault_disrupted_at_.empty()) {
            // A fault-disrupted task is back on a container: close its
            // re-placement latency sample.
            const auto it = fault_disrupted_at_.find(task->id);
            if (it != fault_disrupted_at_.end()) {
              replacement_latency_s_.push_back(now_ - it->second);
              fault_disrupted_at_.erase(it);
            }
          }
        }
      }
      break;
    case SimEventType::kCompletionCheck:
      HandleCompletionCheck();
      break;
    case SimEventType::kSpotCheck:
      rates_dirty_since_round_ = true;
      HandleSpotCheck();
      break;
    case SimEventType::kSpotPreempt:
      rates_dirty_since_round_ = true;
      HandleSpotPreempt(event.a);
      break;
    case SimEventType::kFaultCheck:
      rates_dirty_since_round_ = true;
      HandleFaultCheck();
      break;
    case SimEventType::kZoneOutage:
      rates_dirty_since_round_ = true;
      HandleZoneOutage(static_cast<int>(event.a));
      break;
    case SimEventType::kDrainStart:
      rates_dirty_since_round_ = true;
      HandleDrainStart(static_cast<int>(event.a));
      break;
    case SimEventType::kDrainDeadline:
      rates_dirty_since_round_ = true;
      HandleDrainDeadline(event.a);
      break;
  }
  RecomputeAndArm();
  return true;
}

void Simulator::Impl::Start() {
  metrics_ = SimulationMetrics{};
  metrics_.scheduler_name = scheduler_->name();
  metrics_.trace_name = trace_.name;

  // Arrivals are injected lazily — each arrival pushes its successor — so
  // the heap holds only live events instead of the whole future trace
  // (popping from a 2,000-deep heap dominated the event loop). The event
  // queue's arrival-first tie-break keeps the pop order identical to the
  // old eager push (see SimEvent::operator>).
  if (!trace_.jobs.empty()) {
    queue_.Push(trace_.jobs[0].arrival_time_s, SimEventType::kArrival, 0);
  }
  PushRound(std::max(options_.first_round_offset_s, 0.0));
}

std::uint32_t Simulator::Impl::ProviderFamilyFootprint(SimTime through) {
  std::uint32_t mask = 0;
  if (provider_ != nullptr) {
    // Release / preemption channel: families of live instances (another
    // tenant's admission at this barrier can depend on a slot we return).
    for (const auto& [id, instance] : state_.instances()) {
      mask |= 1u << static_cast<int>(catalog_.Get(instance.type_index).family);
    }
    // Acquire channel: families any active job fits — a round at the
    // barrier may launch for any of them.
    for (const JobId job_id : state_.active_jobs()) {
      mask |= CachedJobFamilyMask(state_.jobs().find(job_id)->second.spec);
    }
    // Arrivals at or before the barrier join the active set before (or as)
    // the round runs; AdvanceUntil stops strictly before the barrier, so
    // scanning forward from next_arrival_ covers them.
    for (std::size_t a = next_arrival_;
         a < trace_.jobs.size() && trace_.jobs[a].arrival_time_s <= through; ++a) {
      mask |= CachedJobFamilyMask(trace_.jobs[a]);
    }
  }
  footprint_armed_ = true;
  footprint_through_ = through;
  footprint_mask_ = mask;
  return mask;
}

void Simulator::Impl::AdvanceUntil(SimTime limit) {
  while (!aborted_ && !queue_.Empty() && queue_.Top().time < limit &&
         queue_.Top().type != SimEventType::kRound) {
    ProcessOneEvent();
  }
}

void Simulator::Impl::ProcessEventsThrough(SimTime t) {
  while (!aborted_ && !queue_.Empty() && queue_.Top().time <= t) {
    ProcessOneEvent();
  }
}

SimulationMetrics Simulator::Impl::Finish() {
  // Safety: pay for any instance still alive (a well-behaved run terminates
  // everything via the final cleanup round).
  state_.TerminateAllLive(now_);

  metrics_.makespan_s = now_;
  metrics_.migrations_per_task =
      metrics_.tasks_total > 0
          ? static_cast<double>(metrics_.task_migrations) / metrics_.tasks_total
          : 0.0;
  scheduler_->ExportCounters(metrics_.scheduler_counters);
  state_.FinalizeMetrics(metrics_);
  if (FaultsActive()) {
    FaultStats& faults = metrics_.faults;
    faults.replacements_completed =
        static_cast<std::int64_t>(replacement_latency_s_.size());
    if (!replacement_latency_s_.empty()) {
      faults.replacement_latency_min_s =
          *std::min_element(replacement_latency_s_.begin(), replacement_latency_s_.end());
      faults.replacement_latency_median_s = Quantile(replacement_latency_s_, 0.5);
      faults.replacement_latency_p95_s = Quantile(replacement_latency_s_, 0.95);
    }
    // Goodput indicator: executed / (executed + lost), 1.0 in a fault-free
    // run. `lost_work_seconds` is the re-execution debt a real fleet would
    // pay for destroyed containers (progress since launch that no
    // checkpoint preserved) — a ledger quantity layered on top of the
    // executed-time integral, not a rewind of it.
    const double executed = state_.TotalRunningSeconds();
    const double attempted = executed + faults.lost_work_seconds;
    faults.goodput_ratio = attempted > 0.0 ? executed / attempted : 1.0;
  }
  // Project the finished run onto the uniform registry schema (sim.*,
  // scheduler.*, faults.*) next to whatever the per-round sampler recorded.
  PublishSimulationMetrics(metrics_, registry_);
  return metrics_;
}

SimulationMetrics Simulator::Impl::Run() {
  Start();
  while (!queue_.Empty()) {
    if (!ProcessOneEvent()) {
      break;
    }
  }
  return Finish();
}

Simulator::Simulator(const Trace& trace, Scheduler* scheduler, const InstanceCatalog& catalog,
                     const InterferenceModel& interference, SimulatorOptions options)
    : impl_(std::make_unique<Impl>(trace, scheduler, catalog, interference, options)) {}

Simulator::~Simulator() = default;

SimulationMetrics Simulator::Run() { return impl_->Run(); }

void Simulator::Start() { impl_->Start(); }
SimTime Simulator::NextRoundTime() const { return impl_->NextRoundTime(); }
SimTime Simulator::NextEventTime() const { return impl_->NextEventTime(); }
std::uint32_t Simulator::ProviderFamilyFootprint(SimTime through) {
  return impl_->ProviderFamilyFootprint(through);
}
bool Simulator::Drained() const { return impl_->Drained(); }
void Simulator::AdvanceUntil(SimTime limit) { impl_->AdvanceUntil(limit); }
void Simulator::ProcessEventsThrough(SimTime t) { impl_->ProcessEventsThrough(t); }
SimulationMetrics Simulator::Finish() { return impl_->Finish(); }

SimulationMetrics RunSimulation(const Trace& trace, Scheduler* scheduler,
                                const InstanceCatalog& catalog,
                                const InterferenceModel& interference,
                                const SimulatorOptions& options) {
  Simulator simulator(trace, scheduler, catalog, interference, options);
  return simulator.Run();
}

}  // namespace eva
