#include "src/sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/sched/config_diff.h"
#include "src/sim/cluster_state.h"
#include "src/sim/event_queue.h"
#include "src/sim/execution_model.h"
#include "src/sim/task_lifecycle.h"

namespace eva {

// Orchestrator: wires the event queue, cluster state, execution model and
// task lifecycle to the Scheduler interface. All domain logic lives in those
// modules; the handlers below only sequence events into state transitions.
class Simulator::Impl {
 public:
  Impl(const Trace& trace, Scheduler* scheduler, const InstanceCatalog& catalog,
       const InterferenceModel& interference, SimulatorOptions options)
      : trace_(trace),
        scheduler_(scheduler),
        catalog_(catalog),
        options_(options),
        rng_(options.seed),
        state_(catalog),
        exec_(&state_, &catalog, &interference),
        lifecycle_(&state_, &exec_, &queue_, options.migration_delay_multiplier) {}

  SimulationMetrics Run();

 private:
  void Advance(SimTime to);
  // Recomputes dirty job rates and (re)arms the completion check; runs after
  // every event, standing in for the old full-cluster rescan.
  void RecomputeAndArm();

  void HandleArrival(std::int64_t job_index);
  void HandleRound();
  void HandleInstanceReady(InstanceId id);
  void HandleCompletionCheck();
  void ApplyConfig(const SchedulingContext& context, const ClusterConfig& config);

  bool HasActiveJobs() const { return state_.num_active() > 0; }
  bool HasPendingArrivals() const { return next_arrival_ < trace_.jobs.size(); }

  // True when this round is certifiably quiescent: the context the scheduler
  // would see and the observations it would receive are identical (up to the
  // clock and remaining-runtime estimates) to the previous round's, and the
  // previous configuration was applied without touching the cluster. Such a
  // round may be offered to Scheduler::CoalesceQuiescentRounds.
  bool RoundIsQuiescent() const {
    return options_.coalesce_quiescent_rounds && !options_.physical_mode &&
           last_apply_noop_ && !rates_dirty_since_round_ && !state_.HasPendingDelta();
  }

  const Trace& trace_;
  Scheduler* scheduler_;
  const InstanceCatalog& catalog_;
  SimulatorOptions options_;
  Rng rng_;

  ClusterState state_;
  ExecutionModel exec_;
  EventQueue queue_;
  TaskLifecycle lifecycle_;

  std::size_t next_arrival_ = 0;
  SimTime pending_completion_check_ = std::numeric_limits<SimTime>::infinity();
  SimTime now_ = 0.0;
  bool round_scheduled_ = false;

  // Quiescence tracking for the batched round trigger. `last_apply_noop_`:
  // the previous round's configuration changed nothing (no launches,
  // terminations or moves — condemnations imply a non-empty terminate list,
  // so they clear it too). `rates_dirty_since_round_`: a task-rate-affecting
  // transition (instance ready, checkpoint/launch completion, an actual job
  // completion) fired since the previous round's observation snapshot;
  // cluster-shape changes are covered by the pending RoundDelta instead.
  bool last_apply_noop_ = false;
  bool rates_dirty_since_round_ = false;

  // Per-round context, refilled in place (FillContext) so its containers'
  // storage is reused round over round. Only alive during HandleRound; the
  // scheduler contract already forbids retaining the reference.
  SchedulingContext round_context_;

  SimulationMetrics metrics_;
};

void Simulator::Impl::Advance(SimTime to) {
  const double dt = to - now_;
  if (dt <= 0.0) {
    now_ = std::max(now_, to);
    return;
  }
  exec_.IntegrateWork(dt);
  state_.IntegrateTo(dt);
  now_ = to;
}

void Simulator::Impl::RecomputeAndArm() {
  const SimTime earliest = exec_.RecomputeDirtyRates(now_);
  // Checks are idempotent (a check that fires early is a no-op and re-arms),
  // so we only push when the new projection is earlier than what is already
  // armed — this bounds queue growth without missing a completion.
  if (earliest >= 0.0 && earliest < pending_completion_check_ - 1e-9) {
    pending_completion_check_ = earliest;
    queue_.Push(earliest, SimEventType::kCompletionCheck);
  }
}

void Simulator::Impl::HandleArrival(std::int64_t job_index) {
  const JobSpec& spec = trace_.jobs[static_cast<std::size_t>(job_index)];
  // Admission control: reject jobs no instance type can host (the paper
  // filters these from the trace).
  const std::optional<int> fits = catalog_.CheapestFitting(
      [&spec](InstanceFamily family) { return spec.DemandFor(family); });
  if (!fits.has_value()) {
    EVA_LOG_WARNING("job %lld demand %s fits no instance type; dropped",
                    static_cast<long long>(spec.id), spec.demand_p3.ToString().c_str());
    return;
  }
  const JobRec& job = state_.AddJob(spec);
  exec_.OnJobAdded(job);
  metrics_.tasks_total += spec.num_tasks;
  ++metrics_.jobs_submitted;
}

void Simulator::Impl::HandleRound() {
  round_scheduled_ = false;
  ++metrics_.scheduling_rounds;

  // Quiescence-aware trigger: a certified no-op round is offered to the
  // scheduler for absorption instead of being dispatched. The event and
  // integration trajectory is untouched (this round event was popped and
  // advanced exactly as always; the next one is pushed exactly as always),
  // so every simulated quantity stays bit-identical — the only difference
  // is that the observation/context/schedule/validate/apply machinery,
  // provably a no-op this round, never runs. An absorbed round changes no
  // state, so the keep-scheduling condition equals the previous round's,
  // which was true (it pushed this event).
  if (RoundIsQuiescent() &&
      (HasActiveJobs() || HasPendingArrivals() || state_.HasLiveInstances()) &&
      scheduler_->CoalesceQuiescentRounds(1, options_.scheduling_period_s) > 0) {
    ++metrics_.rounds_coalesced;
    round_scheduled_ = true;
    queue_.Push(now_ + options_.scheduling_period_s, SimEventType::kRound);
    return;
  }

  // Report the last window's throughput (the EvaIterator channel), then ask
  // for the desired configuration. The context carries the RoundDelta the
  // cluster state accumulated since the previous round, and the scheduler
  // calls are timed so the benches can report per-round decision latency.
  const std::vector<JobThroughputObservation> observations = exec_.CollectObservations(
      options_.physical_mode, options_.observation_noise_stddev, &rng_);
  SchedulingContext& context = round_context_;  // Reused storage across rounds.
  state_.FillContext(now_, options_.grant_runtime_estimates, context);
  context.delta = state_.TakeRoundDelta();
  rates_dirty_since_round_ = false;  // This round's snapshot is the new baseline.
  const auto sched_start = std::chrono::steady_clock::now();
  scheduler_->ObserveThroughput(observations);
  const ClusterConfig config = scheduler_->Schedule(context);
  metrics_.scheduler_wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sched_start).count();

  if (options_.validate_configs) {
    if (const auto error = config.Validate(context)) {
      EVA_LOG_ERROR("scheduler %s returned invalid config at t=%.0f: %s",
                    scheduler_->name().c_str(), now_, error->c_str());
      // Keep replaying the rejection (and its log line) every round rather
      // than certifying a round that never applied its configuration.
      last_apply_noop_ = false;
    } else {
      ApplyConfig(context, config);
    }
  } else {
    ApplyConfig(context, config);
  }

  // Keep the cadence while there is anything left to manage (evaluated after
  // the configuration took effect, so a final cleanup round ends the chain).
  if (HasActiveJobs() || HasPendingArrivals() || state_.HasLiveInstances()) {
    round_scheduled_ = true;
    queue_.Push(now_ + options_.scheduling_period_s, SimEventType::kRound);
  }
}

void Simulator::Impl::ApplyConfig(const SchedulingContext& context,
                                  const ClusterConfig& config) {
  const ConfigDiff diff = DiffConfig(context, config);

  // An application that launches, terminates (or condemns) or moves nothing
  // leaves the cluster exactly as the scheduler saw it — the precondition
  // for certifying the following rounds quiescent.
  last_apply_noop_ =
      diff.terminate.empty() && diff.moves.empty() && diff.NumLaunches() == 0;

  // Launch new instances.
  std::vector<InstanceId> binding_instance(diff.bindings.size(), kInvalidInstanceId);
  for (std::size_t i = 0; i < diff.bindings.size(); ++i) {
    const ConfigDiff::Binding& binding = diff.bindings[i];
    if (binding.existing_id != kInvalidInstanceId) {
      binding_instance[i] = binding.existing_id;
      continue;
    }
    const SimTime delay = options_.cloud_delays.ProvisioningDelay(
        options_.physical_mode ? &rng_ : nullptr);
    const InstRec& instance =
        state_.CreateInstance(binding.type_index, now_, now_ + delay);
    binding_instance[i] = instance.id;
    queue_.Push(instance.ready_time, SimEventType::kInstanceReady, instance.id);
  }

  // Condemn instances leaving the configuration.
  for (InstanceId id : diff.terminate) {
    state_.Condemn(id);
  }

  // Execute task moves.
  for (const ConfigDiff::Move& move : diff.moves) {
    TaskRec* task = state_.FindTask(move.task);
    if (task == nullptr || task->state == TaskState::kDone) {
      continue;
    }
    if (move.from_instance != kInvalidInstanceId) {
      ++metrics_.task_migrations;
    }
    lifecycle_.Retarget(*task, binding_instance[static_cast<std::size_t>(move.to_binding)],
                        now_);
  }

  // Condemned instances with nothing left terminate immediately.
  std::vector<InstanceId> condemned;
  for (const auto& [id, instance] : state_.instances()) {
    if (instance.condemned) {
      condemned.push_back(id);
    }
  }
  for (InstanceId id : condemned) {
    state_.MaybeTerminate(id, now_);
  }
}

void Simulator::Impl::HandleInstanceReady(InstanceId id) {
  InstRec* inst = state_.FindInstance(id);
  if (inst == nullptr) {
    return;
  }
  inst->ready = true;
  // Launch everything parked on this instance. Copy the set: TryLaunch does
  // not mutate `assigned`, but keep the iteration robust anyway.
  const std::vector<TaskId> parked(inst->assigned.begin(), inst->assigned.end());
  for (TaskId task_id : parked) {
    if (TaskRec* task = state_.FindTask(task_id)) {
      lifecycle_.TryLaunch(*task, now_);
    }
  }
}

void Simulator::Impl::HandleCompletionCheck() {
  pending_completion_check_ = std::numeric_limits<SimTime>::infinity();
  if (exec_.completion_candidates().empty()) {
    return;  // A check that fired early; RecomputeAndArm re-arms it.
  }
  rates_dirty_since_round_ = true;
  const std::vector<JobId> finished(exec_.completion_candidates().begin(),
                                    exec_.completion_candidates().end());
  for (JobId job_id : finished) {
    lifecycle_.CompleteJob(*state_.FindJob(job_id), now_, metrics_);
  }
}

SimulationMetrics Simulator::Impl::Run() {
  metrics_ = SimulationMetrics{};
  metrics_.scheduler_name = scheduler_->name();
  metrics_.trace_name = trace_.name;

  // Arrivals are injected lazily — each arrival pushes its successor — so
  // the heap holds only live events instead of the whole future trace
  // (popping from a 2,000-deep heap dominated the event loop). The event
  // queue's arrival-first tie-break keeps the pop order identical to the
  // old eager push (see SimEvent::operator>).
  if (!trace_.jobs.empty()) {
    queue_.Push(trace_.jobs[0].arrival_time_s, SimEventType::kArrival, 0);
  }
  queue_.Push(0.0, SimEventType::kRound);
  round_scheduled_ = true;

  while (!queue_.Empty()) {
    const SimEvent event = queue_.Pop();
    if (event.time > options_.max_sim_time_s) {
      EVA_LOG_ERROR("simulation exceeded max time; aborting with %d active jobs",
                    state_.num_active());
      break;
    }
    Advance(event.time);
    ++metrics_.events_processed;
    EVA_LOG_DEBUG("event t=%.3f type=%d a=%lld v=%d active=%d live=%zu queue=%zu", event.time,
                  static_cast<int>(event.type), static_cast<long long>(event.a), event.version,
                  state_.num_active(), state_.instances().size(), queue_.Size());
    switch (event.type) {
      case SimEventType::kArrival:
        HandleArrival(event.a);
        ++next_arrival_;
        if (HasPendingArrivals()) {
          queue_.Push(trace_.jobs[next_arrival_].arrival_time_s, SimEventType::kArrival,
                      static_cast<std::int64_t>(next_arrival_));
        }
        if (!round_scheduled_) {
          // The cluster drained; resume scheduling rounds.
          round_scheduled_ = true;
          queue_.Push(now_, SimEventType::kRound);
        }
        break;
      case SimEventType::kRound:
        HandleRound();
        break;
      case SimEventType::kInstanceReady:
        // Task-rate transitions invalidate round quiescence: the next
        // round's observations can differ even when the RoundDelta is empty
        // (these transitions never touch the delta).
        rates_dirty_since_round_ = true;
        HandleInstanceReady(event.a);
        break;
      case SimEventType::kCheckpointDone:
        if (TaskRec* task = state_.FindTask(event.a)) {
          if (task->version == event.version && task->state == TaskState::kCheckpointing) {
            rates_dirty_since_round_ = true;
            lifecycle_.OnCheckpointDone(*task, now_);
          }
        }
        break;
      case SimEventType::kLaunchDone:
        if (TaskRec* task = state_.FindTask(event.a)) {
          if (task->version == event.version && task->state == TaskState::kLaunching) {
            rates_dirty_since_round_ = true;
            lifecycle_.OnLaunchDone(*task);
          }
        }
        break;
      case SimEventType::kCompletionCheck:
        HandleCompletionCheck();
        break;
    }
    RecomputeAndArm();
  }

  // Safety: pay for any instance still alive (a well-behaved run terminates
  // everything via the final cleanup round).
  state_.TerminateAllLive(now_);

  metrics_.makespan_s = now_;
  metrics_.migrations_per_task =
      metrics_.tasks_total > 0
          ? static_cast<double>(metrics_.task_migrations) / metrics_.tasks_total
          : 0.0;
  state_.FinalizeMetrics(metrics_);
  return metrics_;
}

Simulator::Simulator(const Trace& trace, Scheduler* scheduler, const InstanceCatalog& catalog,
                     const InterferenceModel& interference, SimulatorOptions options)
    : impl_(std::make_unique<Impl>(trace, scheduler, catalog, interference, options)) {}

Simulator::~Simulator() = default;

SimulationMetrics Simulator::Run() { return impl_->Run(); }

SimulationMetrics RunSimulation(const Trace& trace, Scheduler* scheduler,
                                const InstanceCatalog& catalog,
                                const InterferenceModel& interference,
                                const SimulatorOptions& options) {
  Simulator simulator(trace, scheduler, catalog, interference, options);
  return simulator.Run();
}

}  // namespace eva
