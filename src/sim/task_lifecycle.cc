#include "src/sim/task_lifecycle.h"

namespace eva {

void TaskLifecycle::StartCheckpoint(TaskRec& task, SimTime now) {
  ++task.version;
  task.state = TaskState::kCheckpointing;
  // The task stops executing and its neighbors speed up.
  exec_->MarkInstanceDirty(*state_->FindInstance(task.source));
  queue_->Push(now + CheckpointDelay(task), SimEventType::kCheckpointDone, task.id,
               task.version);
}

void TaskLifecycle::Retarget(TaskRec& task, InstanceId dest, SimTime now) {
  if (task.target == dest) {
    return;
  }
  state_->SetTarget(task, dest);

  switch (task.state) {
    case TaskState::kRunning:
      StartCheckpoint(task, now);
      break;
    case TaskState::kCheckpointing:
      // The in-flight checkpoint completes and routes to the new target.
      break;
    case TaskState::kLaunching:
      ++task.version;  // Cancels the pending launch event.
      task.state = TaskState::kWaiting;
      TryLaunch(task, now);
      break;
    case TaskState::kPending:
    case TaskState::kWaiting:
      task.state = TaskState::kWaiting;
      TryLaunch(task, now);
      break;
    case TaskState::kDone:
      break;
  }
}

void TaskLifecycle::TryLaunch(TaskRec& task, SimTime now) {
  if (task.state != TaskState::kWaiting) {
    return;
  }
  const InstRec* inst = state_->FindInstance(task.target);
  if (inst == nullptr || !inst->ready) {
    return;
  }
  ++task.version;
  task.state = TaskState::kLaunching;
  queue_->Push(now + LaunchDelay(task), SimEventType::kLaunchDone, task.id, task.version);
}

void TaskLifecycle::Evict(TaskRec& task, SimTime now) {
  switch (task.state) {
    case TaskState::kRunning:
      state_->ClearTarget(task);
      StartCheckpoint(task, now);
      break;
    case TaskState::kCheckpointing:
      // In-flight checkpoint keeps running; with the target cleared its
      // completion parks the task kPending instead of relaunching.
      state_->ClearTarget(task);
      break;
    case TaskState::kLaunching:
      ++task.version;  // Cancels the pending launch event.
      state_->ClearTarget(task);
      task.state = TaskState::kPending;
      break;
    case TaskState::kWaiting:
      state_->ClearTarget(task);
      task.state = TaskState::kPending;
      break;
    case TaskState::kPending:
    case TaskState::kDone:
      break;
  }
}

void TaskLifecycle::OnCheckpointDone(TaskRec& task, SimTime now) {
  if (task.source != kInvalidInstanceId) {
    // Neighbors lose a (non-running) co-resident; recomputing them is a
    // cheap no-op, and over-marking keeps the dirty rule simple: any
    // present-set change dirties the instance.
    exec_->MarkInstanceDirty(*state_->FindInstance(task.source));
    const InstanceId source_id = state_->RemoveContainer(task);
    state_->MaybeTerminate(source_id, now);
  }
  if (task.target == kInvalidInstanceId) {
    // Evicted while running (spot preemption): checkpoint saved, no new
    // placement yet — back to the pending pool for the next round.
    task.state = TaskState::kPending;
    return;
  }
  task.state = TaskState::kWaiting;
  TryLaunch(task, now);
}

void TaskLifecycle::OnLaunchDone(TaskRec& task, SimTime now) {
  task.state = TaskState::kRunning;
  task.running_since = now;
  state_->PlaceContainer(task);
  // This task starts interfering with its new neighbors (and vice versa).
  exec_->MarkInstanceDirty(*state_->FindInstance(task.source));
}

void TaskLifecycle::CompleteJob(JobRec& job, SimTime now, SimulationMetrics& metrics) {
  const JobId job_id = job.spec.id;
  state_->DeactivateJob(job, now);
  exec_->OnJobDeactivated(job_id);
  ++metrics.jobs_completed;
  metrics.jct_hours.push_back(SecondsToHours(now - job.spec.arrival_time_s));

  for (TaskId task_id : job.tasks) {
    TaskRec& task = *state_->FindTask(task_id);
    if (task.source != kInvalidInstanceId) {
      // Surviving neighbors speed up once the container is gone.
      exec_->MarkInstanceDirty(*state_->FindInstance(task.source));
    }
    const ClusterState::DetachResult detached = state_->MarkTaskDone(task);
    if (detached.source != kInvalidInstanceId) {
      state_->MaybeTerminate(detached.source, now);
    }
    if (detached.target != kInvalidInstanceId && detached.target != detached.source) {
      state_->MaybeTerminate(detached.target, now);
    }
  }

  // Fold the job into the completion archive and drop its records: the live
  // maps stay O(active) no matter how long the trace is. `job` (and every
  // reference into the job's tasks) is invalid past this point.
  state_->RetireJob(job_id);
}

}  // namespace eva
