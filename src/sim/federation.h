// Multi-tenant federation driver: N tenant simulators contending for one
// shared CloudProvider in lockstep virtual time.
//
// Each tenant is a full Simulator (own trace, own scheduler, own metrics)
// constructed against the shared provider's catalog. The driver interleaves
// them with a two-phase barrier protocol that is deterministic by
// construction — bit-identical results across runs AND across thread-pool
// sizes:
//
//   1. Parallel phase. Every tenant processes its pending events up to
//      (strictly before) T, the earliest pending scheduling round across
//      all tenants, fanning out on the thread pool. No events in this
//      window acquire provider capacity (only scheduling rounds launch
//      instances); the provider mutations that can occur — capacity
//      releases and preemption tallies — are commutative integer updates
//      plus unordered record appends that are sorted before any
//      floating-point fold, so the provider state at the barrier does not
//      depend on interleaving.
//
//   2. Serial phase. Tenants whose next events sit exactly at T process
//      them one tenant at a time, in tenant-index order. Scheduling rounds
//      (and therefore all TryAcquire calls) happen only here, giving
//      contended acquisitions a deterministic (virtual time, tenant index)
//      arbitration order.
//
// A tenant that drains its round chain and later re-triggers it (an arrival
// after an idle stretch) can create a round earlier than T mid-phase; the
// driver detects this and re-computes the barrier before any round runs.

#ifndef SRC_SIM_FEDERATION_H_
#define SRC_SIM_FEDERATION_H_

#include <string>
#include <vector>

#include "src/cloud/provider.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"

namespace eva {

struct FederationTenant {
  std::string name;
  Trace trace;
  SchedulerKind kind = SchedulerKind::kEva;
};

struct FederationOptions {
  // Per-tenant simulator options. shared_provider/tenant_id are overwritten
  // per tenant; seed is offset by the tenant index so each tenant owns an
  // independent stream.
  SimulatorOptions simulator;
  EvaOptions eva;
  InterferenceModel interference = InterferenceModel::Measured();
  InstanceCatalog catalog = InstanceCatalog::AwsDefault();

  // The shared provider every tenant provisions from.
  CloudProviderOptions provider;

  // Worker threads for the parallel phase; <= 0 uses all hardware threads.
  int num_threads = 0;
};

struct FederationResult {
  struct Tenant {
    std::string name;
    SchedulerKind kind = SchedulerKind::kEva;
    SimulationMetrics metrics;
  };

  std::vector<Tenant> tenants;
  CloudProviderMetrics provider;

  // Latest tenant makespan — the federation's virtual horizon, which the
  // provider utilization is normalized against.
  SimTime horizon_s = 0.0;
};

// Runs every tenant to completion against one shared provider and returns
// per-tenant metrics plus the provider-level tallies.
FederationResult RunFederation(const std::vector<FederationTenant>& tenants,
                               const FederationOptions& options);

// The standard multi-tenant scenario recipe (bench_federation and the
// federation tests share it): N ScaleTrace shards of `base`, each thinned
// to `jobs_per_tenant` jobs with the arrival rate re-densified to the
// source's cadence — thinning alone would stretch the arrival process
// ~source/target x, and non-overlapping tenants never contend. Tenant i is
// named "tenant<i>" and seeded seed_base + i (distinct job mixes).
std::vector<FederationTenant> MakeTenantShards(const Trace& base, int num_tenants,
                                               int jobs_per_tenant,
                                               std::uint64_t seed_base = 101,
                                               SchedulerKind kind = SchedulerKind::kEva);

// Renders a per-tenant table plus the provider summary.
void PrintFederationReport(const FederationResult& result);

}  // namespace eva

#endif  // SRC_SIM_FEDERATION_H_
