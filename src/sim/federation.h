// Multi-tenant federation driver: N tenant simulators contending for one
// shared CloudProvider in lockstep virtual time.
//
// Each tenant is a full Simulator (own trace, own scheduler, own metrics)
// constructed against the shared provider's catalog. The driver interleaves
// them with a two-phase barrier protocol that is deterministic by
// construction — bit-identical results across runs AND across thread-pool
// sizes:
//
//   1. Parallel phase. Every tenant processes its pending events up to
//      (strictly before) T, the earliest pending scheduling round across
//      all tenants, fanning out on the thread pool. No events in this
//      window acquire provider capacity (only scheduling rounds launch
//      instances); the provider mutations that can occur — capacity
//      releases and preemption tallies — are commutative per family shard,
//      so the provider state at the barrier does not depend on
//      interleaving.
//
//   2. Conflict-grouped round phase. Tenants with events exactly at T are
//      partitioned by the provider family shards they can touch (the
//      Simulator::ProviderFamilyFootprint contract, intersected with the
//      provider's *finite* families — unlimited pools grant unconditionally
//      and tally commutatively, so they cannot make two tenants conflict).
//      Tenants sharing a finite shard land in one group; groups run
//      concurrently on the pool, and within a group tenants run one at a
//      time in tenant-index order. Every contended TryAcquire therefore
//      arbitrates in deterministic (virtual time, tenant index) order,
//      while non-contending tenants — the common case once capacity is
//      partitioned or demand is family-disjoint — round in parallel.
//
// With staggered round offsets enabled, tenants' round phases are spread
// deterministically across the scheduling period, so each barrier carries a
// fraction of the tenants instead of all of them — the same trick real
// clusters use to flatten controller load spikes.
//
// A tenant that drains its round chain and later re-triggers it (an arrival
// after an idle stretch) can create a round earlier than T mid-phase; the
// driver detects this and re-computes the barrier before any round runs.

#ifndef SRC_SIM_FEDERATION_H_
#define SRC_SIM_FEDERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cloud/provider.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace eva {

struct FederationTenant {
  std::string name;
  Trace trace;
  SchedulerKind kind = SchedulerKind::kEva;
};

struct FederationOptions {
  // Per-tenant simulator options. shared_provider/tenant_id are overwritten
  // per tenant; seed is offset by the tenant index so each tenant owns an
  // independent stream.
  SimulatorOptions simulator;
  EvaOptions eva;
  InterferenceModel interference = InterferenceModel::Measured();
  InstanceCatalog catalog = InstanceCatalog::AwsDefault();

  // The shared provider every tenant provisions from.
  CloudProviderOptions provider;

  // Worker threads for the parallel and grouped phases; <= 0 uses all
  // hardware threads.
  int num_threads = 0;

  // Deterministic round stagger (opt-in). Tenant i's first scheduling round
  // fires at slot(i) x (period / stagger_slots) with slot(i) =
  // hash(stagger_seed, i) % stagger_slots, instead of every tenant rounding
  // at t=0, 300, 600, ... in phase. Spreads barrier pressure: each barrier
  // then carries ~1/stagger_slots of the tenants, shrinking both the
  // serialized residue and the idle tail of the parallel phase. Offsets are
  // a pure function of (stagger_seed, i) — same seed, same trajectory.
  bool stagger_rounds = false;
  int stagger_slots = 8;
  std::uint64_t stagger_seed = 0x57A66E12u;

  // Per-tenant flight recorders (caller-owned; resized to the tenant count
  // by RunFederation). FlightRecorder is single-writer, so the shared
  // `simulator.observability.flight_recorder` pointer cannot serve N
  // concurrent tenants — supply a vector instead and tenant i records into
  // slot i. Same single-writer story for the registry: the driver nulls the
  // per-tenant registry pointer and publishes federation-level aggregates
  // into `simulator.observability.registry` itself after the run. The
  // TraceRecorder *is* shared (per-track rings), each tenant on its own
  // track plus a "federation" track for barrier spans.
  std::vector<FlightRecorder>* flight_recorders = nullptr;
};

// Where the federation's wall-clock time went, plus the counters behind the
// serial-phase share the bench reports.
struct FederationStats {
  std::int64_t barriers = 0;           // Two-phase iterations executed.
  std::int64_t round_participants = 0; // Tenant-barrier pairs with barrier-time events.
  std::int64_t round_groups = 0;       // Conflict groups dispatched (singletons included).
  // Sum over barriers of the largest group's participant count — the
  // critical path of the grouped phase (groups run concurrently; members
  // of one group run serially).
  std::int64_t largest_group_participants = 0;

  double setup_wall_s = 0.0;    // Scheduler + simulator construction, Start().
  double advance_wall_s = 0.0;  // Parallel AdvanceUntil phase.
  double round_wall_s = 0.0;    // Conflict-grouped round phase.

  // Fraction of round-phase tenant work that sits on the serialized
  // critical path: 1.0 = every participant shares one group (the old
  // fully-serial phase), 1/participants = perfect spread.
  double SerialShare() const {
    return round_participants > 0
               ? static_cast<double>(largest_group_participants) /
                     static_cast<double>(round_participants)
               : 0.0;
  }
};

struct FederationResult {
  struct Tenant {
    std::string name;
    SchedulerKind kind = SchedulerKind::kEva;
    SimulationMetrics metrics;
  };

  std::vector<Tenant> tenants;
  CloudProviderMetrics provider;
  FederationStats stats;

  // Latest tenant makespan — the federation's virtual horizon, which the
  // provider utilization is normalized against.
  SimTime horizon_s = 0.0;
};

// Runs every tenant to completion against one shared provider and returns
// per-tenant metrics plus the provider-level tallies.
//
// Unless FederationOptions::eva.max_parallelism is set explicitly, tenant
// schedulers run single-threaded: the federation already parallelizes
// across tenants, and N tenants each lazily spawning a hardware-sized pool
// would oversubscribe the machine ~Nx (scheduler results are bit-identical
// either way).
FederationResult RunFederation(const std::vector<FederationTenant>& tenants,
                               const FederationOptions& options);

// The standard multi-tenant scenario recipe (bench_federation and the
// federation tests share it): N ScaleTrace shards of `base`, each thinned
// to `jobs_per_tenant` jobs with the arrival rate re-densified to the
// source's cadence — thinning alone would stretch the arrival process
// ~source/target x, and non-overlapping tenants never contend. Tenant i is
// named "tenant<i>" and seeded seed_base + i (distinct job mixes). The
// source's resample plan is computed once and the shards derived from it in
// parallel, so setup stays flat in the source size at high tenant counts.
std::vector<FederationTenant> MakeTenantShards(const Trace& base, int num_tenants,
                                               int jobs_per_tenant,
                                               std::uint64_t seed_base = 101,
                                               SchedulerKind kind = SchedulerKind::kEva);

struct FederationReportOptions {
  // Per-tenant rows printed before the rest are elided behind an aggregate
  // line (<= 0 prints every tenant). At 1000 tenants the full table is
  // noise; the min/median/p95/max rows carry the story.
  int max_tenant_rows = 16;
};

// Renders a per-tenant table (capped per `report`), cross-tenant aggregate
// rows when more than one tenant ran, the provider summary, and the
// driver's phase/wall statistics.
void PrintFederationReport(const FederationResult& result,
                           const FederationReportOptions& report = {});

}  // namespace eva

#endif  // SRC_SIM_FEDERATION_H_
