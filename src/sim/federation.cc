#include "src/sim/federation.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>

#include "src/common/format.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/obs/publish.h"
#include "src/workload/trace_gen.h"

namespace eva {

namespace {

// SplitMix64 finalizer — the stagger slot must be a pure function of
// (seed, tenant index) so the same options always yield the same offsets.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

std::vector<FederationTenant> MakeTenantShards(const Trace& base, int num_tenants,
                                               int jobs_per_tenant,
                                               std::uint64_t seed_base,
                                               SchedulerKind kind) {
  std::vector<FederationTenant> tenants(
      static_cast<std::size_t>(std::max(num_tenants, 0)));
  if (tenants.empty()) {
    return tenants;
  }
  // Hoist the source-derived resample quantities out of the per-tenant
  // loop (one plan, N derivations) and build the shards in parallel — each
  // shard is a pure function of (plan, options), so slot i's content is
  // independent of scheduling order.
  const TraceResamplePlan plan = MakeResamplePlan(base);
  const double rate_multiplier =
      static_cast<double>(base.jobs.size()) / std::max(jobs_per_tenant, 1);
  ThreadPool pool(std::min<int>(ThreadPool::DefaultThreads(), num_tenants));
  pool.ParallelFor(tenants.size(), [&](std::size_t i) {
    TraceScaleOptions scale;
    scale.target_jobs = jobs_per_tenant;
    scale.seed = seed_base + static_cast<std::uint64_t>(i);
    scale.rate_multiplier = rate_multiplier;
    FederationTenant& tenant = tenants[i];
    tenant.name = "tenant" + std::to_string(i);
    tenant.trace = ScaleTraceFromPlan(plan, scale);
    tenant.kind = kind;
  });
  return tenants;
}

FederationResult RunFederation(const std::vector<FederationTenant>& tenants,
                               const FederationOptions& options) {
  FederationResult result;
  if (tenants.empty()) {
    return result;
  }
  FederationStats& stats = result.stats;
  const auto setup_start = std::chrono::steady_clock::now();

  // The shared provider must clamp capacity off the same fault schedule the
  // tenants kill instances from: propagate the simulator-side fault options
  // into the provider exactly as a per-simulator provider would.
  CloudProviderOptions provider_options = options.provider;
  if (options.simulator.faults.enabled) {
    provider_options.faults = options.simulator.faults;
  }
  CloudProvider provider(options.catalog, provider_options);

  // Tenant schedulers default to single-threaded: the federation owns the
  // parallelism (N tenants x a lazily-created hardware-sized pool each
  // would oversubscribe the machine ~Nx), and Eva's serial and parallel
  // decision paths are bit-identical. An explicit max_parallelism is
  // honored.
  EvaOptions eva = options.eva;
  if (eva.max_parallelism == 0) {
    eva.max_parallelism = 1;
  }

  // Observability. One shared TraceRecorder serves every tenant (each
  // registers its own track at construction); the driver adds a
  // "federation" track for barrier spans, emitted only from this serial
  // loop so the track's order never depends on the pool. FlightRecorder
  // and TelemetryRegistry are single-writer: tenants record into their own
  // slot of the caller's flight-recorder vector, and the shared registry
  // pointer is withheld from tenants — the driver publishes the
  // federation-level stats into it after the run instead.
  const ObservabilityOptions& obs = options.simulator.observability;
  TraceRecorder* fed_trace = nullptr;
  std::uint32_t fed_track = 0;
  if (obs.enabled && obs.trace != nullptr) {
    fed_trace = obs.trace;
    fed_track = fed_trace->RegisterTrack("federation");
  }
  if (obs.enabled && options.flight_recorders != nullptr) {
    options.flight_recorders->resize(tenants.size());
  }

  // One bundle + simulator per tenant, all provisioned from `provider`.
  struct TenantRun {
    SchedulerBundle bundle;
    std::unique_ptr<Simulator> simulator;
  };
  std::vector<TenantRun> runs;
  runs.reserve(tenants.size());
  const int stagger_slots = std::max(options.stagger_slots, 1);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    TenantRun run;
    run.bundle = MakeScheduler(tenants[i].kind, options.interference, eva);
    SimulatorOptions sim_options = options.simulator;
    // The shared provider's own options govern; SimulatorOptions::provider
    // is only consulted when a simulator constructs a private provider.
    sim_options.shared_provider = &provider;
    sim_options.tenant_id = static_cast<int>(i);
    sim_options.seed = options.simulator.seed + i;
    if (obs.enabled) {
      sim_options.observability.registry = nullptr;
      sim_options.observability.flight_recorder =
          options.flight_recorders != nullptr ? &(*options.flight_recorders)[i]
                                              : nullptr;
    }
    if (options.stagger_rounds) {
      const auto slot = static_cast<int>(
          Mix64(options.stagger_seed ^ static_cast<std::uint64_t>(i)) %
          static_cast<std::uint64_t>(stagger_slots));
      sim_options.first_round_offset_s =
          static_cast<double>(slot) *
          (options.simulator.scheduling_period_s / static_cast<double>(stagger_slots));
    }
    run.simulator = std::make_unique<Simulator>(tenants[i].trace,
                                                run.bundle.scheduler.get(), options.catalog,
                                                options.interference, sim_options);
    run.simulator->Start();
    runs.push_back(std::move(run));
  }
  stats.setup_wall_s = Seconds(std::chrono::steady_clock::now() - setup_start);

  const int threads = options.num_threads > 0 ? options.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(std::min<int>(threads, static_cast<int>(runs.size())));
  constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
  const std::uint32_t finite_mask = provider.finite_family_mask();

  const auto next_barrier = [&runs]() {
    SimTime barrier = std::numeric_limits<SimTime>::infinity();
    for (const TenantRun& run : runs) {
      barrier = std::min(barrier, run.simulator->NextRoundTime());
    }
    return barrier;
  };
  const auto all_drained = [&runs]() {
    for (const TenantRun& run : runs) {
      if (!run.simulator->Drained()) {
        return false;
      }
    }
    return true;
  };

  // Reused per-barrier scratch.
  std::vector<std::size_t> participants;
  std::vector<std::uint32_t> masks;
  std::vector<std::vector<std::size_t>> groups;

  while (true) {
    SimTime barrier = next_barrier();

    // Parallel phase: every tenant burns through its non-round events below
    // the barrier. Per-tenant work is fully independent; the only shared
    // state touched (provider releases/preemption tallies, quote snapshots)
    // is commutative per family shard, so the barrier snapshot is the same
    // for every pool size.
    const auto advance_start = std::chrono::steady_clock::now();
    {
      ThreadPool::TaskGroup group(pool);
      for (TenantRun& run : runs) {
        Simulator* simulator = run.simulator.get();
        group.Submit([simulator, barrier] { simulator->AdvanceUntil(barrier); });
      }
      group.Wait();
    }
    stats.advance_wall_s += Seconds(std::chrono::steady_clock::now() - advance_start);

    // A tenant may have re-triggered its round chain below the barrier (an
    // arrival after a drained stretch). Rounds must only run at the
    // *global* minimum, so restart the loop with the earlier barrier before
    // touching any round.
    const SimTime recomputed = next_barrier();
    if (recomputed < barrier) {
      continue;
    }
    barrier = recomputed;
    if (barrier == kInf) {
      // No rounds pending anywhere and every queue below a round is
      // drained: the federation is finished.
      if (all_drained()) {
        break;
      }
      continue;
    }

    const auto round_start = std::chrono::steady_clock::now();

    // Participants: after the parallel phase, every remaining event at or
    // before the barrier sits exactly on it (non-round events below were
    // consumed; rounds below would have lowered `recomputed`).
    participants.clear();
    masks.clear();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (runs[i].simulator->NextEventTime() <= barrier) {
        participants.push_back(i);
        // Only finite families can make two tenants conflict; grants on
        // unlimited pools are unconditional and their tallies commutative.
        masks.push_back(runs[i].simulator->ProviderFamilyFootprint(barrier) &
                        finite_mask);
      }
    }

    // Conflict partition: union the finite families each participant can
    // touch, then bucket participants by their families' root. A tenant
    // touching no finite family forms a singleton group. Group membership
    // and order are pure functions of (participants, masks) — identical for
    // every pool size — and members stay in ascending tenant order.
    groups.clear();
    std::array<int, kNumInstanceFamilies> root;
    for (int f = 0; f < kNumInstanceFamilies; ++f) {
      root[static_cast<std::size_t>(f)] = f;
    }
    const auto find = [&root](int f) {
      while (root[static_cast<std::size_t>(f)] != f) {
        f = root[static_cast<std::size_t>(f)] =
            root[static_cast<std::size_t>(root[static_cast<std::size_t>(f)])];
      }
      return f;
    };
    for (const std::uint32_t mask : masks) {
      int first = -1;
      for (int f = 0; f < kNumInstanceFamilies; ++f) {
        if ((mask >> f) & 1u) {
          if (first < 0) {
            first = f;
          } else {
            root[static_cast<std::size_t>(find(f))] = find(first);
          }
        }
      }
    }
    std::array<int, kNumInstanceFamilies> group_of_family;
    group_of_family.fill(-1);
    for (std::size_t k = 0; k < participants.size(); ++k) {
      const std::uint32_t mask = masks[k];
      if (mask == 0) {
        groups.emplace_back(1, participants[k]);
        continue;
      }
      int f = 0;
      while (((mask >> f) & 1u) == 0) {
        ++f;
      }
      const auto r = static_cast<std::size_t>(find(f));
      if (group_of_family[r] < 0) {
        group_of_family[r] = static_cast<int>(groups.size());
        groups.emplace_back();
      }
      groups[static_cast<std::size_t>(group_of_family[r])].push_back(participants[k]);
    }

    ++stats.barriers;
    stats.round_participants += static_cast<std::int64_t>(participants.size());
    stats.round_groups += static_cast<std::int64_t>(groups.size());
    std::size_t largest = 0;
    for (const auto& members : groups) {
      largest = std::max(largest, members.size());
    }
    stats.largest_group_participants += static_cast<std::int64_t>(largest);
    if (fed_trace != nullptr) {
      fed_trace->Instant(fed_track, "fed.barrier", barrier, "participants",
                         static_cast<double>(participants.size()), "groups",
                         static_cast<double>(groups.size()));
    }

    // Grouped round phase: groups fan out on the pool (they touch disjoint
    // finite shards, plus commutative unlimited/quote state); members of a
    // group run serially in tenant-index order, so every contended grant
    // arbitrates deterministically.
    if (groups.size() == 1) {
      for (const std::size_t idx : groups.front()) {
        runs[idx].simulator->ProcessEventsThrough(barrier);
      }
    } else {
      ThreadPool::TaskGroup task_group(pool);
      for (const auto& members : groups) {
        task_group.Submit([&runs, &members, barrier] {
          for (const std::size_t idx : members) {
            runs[idx].simulator->ProcessEventsThrough(barrier);
          }
        });
      }
      task_group.Wait();
    }
    stats.round_wall_s += Seconds(std::chrono::steady_clock::now() - round_start);
  }

  result.tenants.reserve(tenants.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    FederationResult::Tenant tenant;
    tenant.name = tenants[i].name;
    tenant.kind = tenants[i].kind;
    tenant.metrics = runs[i].simulator->Finish();
    result.horizon_s = std::max(result.horizon_s, tenant.metrics.makespan_s);
    result.tenants.push_back(std::move(tenant));
  }
  result.provider = provider.FinalizeMetrics(result.horizon_s);
  if (obs.enabled) {
    PublishFederationStats(stats, obs.registry);
  }
  return result;
}

void PrintFederationReport(const FederationResult& result,
                           const FederationReportOptions& report) {
  const std::size_t total = result.tenants.size();
  const std::size_t shown =
      report.max_tenant_rows <= 0
          ? total
          : std::min(total, static_cast<std::size_t>(report.max_tenant_rows));
  std::printf("%-12s %-12s %12s %10s %8s %8s %8s %8s %9s\n", "Tenant", "Scheduler",
              "Cost($)", "SpotCost", "JCT(h)", "Denied", "Preempt", "SpotInst", "Jobs");
  for (std::size_t i = 0; i < shown; ++i) {
    const FederationResult::Tenant& tenant = result.tenants[i];
    const SimulationMetrics& m = tenant.metrics;
    std::printf("%-12s %-12s %12.2f %10.2f %8.2f %8" PRId64 " %8" PRId64
                " %8" PRId64 " %4" PRId64 "/%-4" PRId64 "\n",
                tenant.name.c_str(), SchedulerKindName(tenant.kind), m.total_cost,
                m.spot_cost, m.avg_jct_hours, m.acquisitions_denied,
                m.spot_preemptions, m.spot_instances_launched, m.jobs_completed,
                m.jobs_submitted);
  }
  if (shown < total) {
    std::printf("  ... %zu more tenants elided (max_tenant_rows=%d)\n", total - shown,
                report.max_tenant_rows);
  }

  if (total > 1) {
    // Cross-tenant aggregates: the per-tenant table's story at any scale.
    const auto aggregate = [&](const char* label, const auto& get) {
      std::vector<double> values;
      values.reserve(total);
      for (const FederationResult::Tenant& tenant : result.tenants) {
        values.push_back(static_cast<double>(get(tenant.metrics)));
      }
      const double min = *std::min_element(values.begin(), values.end());
      const double max = *std::max_element(values.begin(), values.end());
      std::printf("  %-10s min=%-10.2f median=%-10.2f p95=%-10.2f max=%-10.2f\n", label,
                  min, Quantile(values, 0.5), Quantile(values, 0.95), max);
    };
    std::printf("aggregate across %zu tenants:\n", total);
    aggregate("cost($)", [](const SimulationMetrics& m) { return m.total_cost; });
    aggregate("jct(h)", [](const SimulationMetrics& m) { return m.avg_jct_hours; });
    aggregate("denied", [](const SimulationMetrics& m) { return m.acquisitions_denied; });
    aggregate("preempted", [](const SimulationMetrics& m) { return m.spot_preemptions; });
    aggregate("completed", [](const SimulationMetrics& m) { return m.jobs_completed; });
  }

  // Fault ledger, summed across tenants. Omitted entirely for fault-free
  // runs (every counter is zero there) so existing report consumers see an
  // unchanged layout.
  FaultStats fault_sum;
  std::vector<double> goodputs;
  std::vector<double> replace_p95s;
  for (const FederationResult::Tenant& tenant : result.tenants) {
    const FaultStats& f = tenant.metrics.faults;
    fault_sum.zone_outages += f.zone_outages;
    fault_sum.correlated_failures += f.correlated_failures;
    fault_sum.maintenance_drains += f.maintenance_drains;
    fault_sum.instances_killed += f.instances_killed;
    fault_sum.instances_drained += f.instances_drained;
    fault_sum.tasks_evicted += f.tasks_evicted;
    fault_sum.tasks_lost += f.tasks_lost;
    fault_sum.lost_work_seconds += f.lost_work_seconds;
    fault_sum.replacements_completed += f.replacements_completed;
    goodputs.push_back(f.goodput_ratio);
    if (f.replacements_completed > 0) {
      replace_p95s.push_back(f.replacement_latency_p95_s);
    }
  }
  if (fault_sum.zone_outages + fault_sum.correlated_failures +
          fault_sum.maintenance_drains >
      0) {
    std::printf(
        "faults: outages=" EVA_PRId64 " bursts=" EVA_PRId64 " drains=" EVA_PRId64
        " killed=" EVA_PRId64 " drained=" EVA_PRId64 " evicted=" EVA_PRId64
        " lost=" EVA_PRId64 " lost-work=%.2fh replaced=" EVA_PRId64 "\n",
        fault_sum.zone_outages, fault_sum.correlated_failures,
        fault_sum.maintenance_drains, fault_sum.instances_killed,
        fault_sum.instances_drained, fault_sum.tasks_evicted,
        fault_sum.tasks_lost, SecondsToHours(fault_sum.lost_work_seconds),
        fault_sum.replacements_completed);
    std::printf("  goodput    min=%.4f median=%.4f\n",
                *std::min_element(goodputs.begin(), goodputs.end()),
                Quantile(goodputs, 0.5));
    if (!replace_p95s.empty()) {
      std::printf("  replace-p95(s) median=%.1f max=%.1f\n", Quantile(replace_p95s, 0.5),
                  *std::max_element(replace_p95s.begin(), replace_p95s.end()));
    }
  }

  std::printf("provider (horizon %.1f h):\n", SecondsToHours(result.horizon_s));
  for (int f = 0; f < kNumInstanceFamilies; ++f) {
    const CloudProviderMetrics::Family& family =
        result.provider.families[static_cast<std::size_t>(f)];
    std::printf(
        "  %-4s cap=%-4d granted=%-6" PRId64 " denied=%-6" PRId64
        " fault-denied=%-5" PRId64 " preempted=%-5" PRId64
        " peak=%-4d util=%5.1f%% inst-h=%.1f\n",
        InstanceFamilyName(static_cast<InstanceFamily>(f)), family.capacity,
        family.granted, family.denied, family.fault_denied, family.preempted,
        family.peak_in_use, family.avg_utilization * 100.0,
        family.instance_hours);
  }
  const FederationStats& stats = result.stats;
  std::printf(
      "driver: barriers=" EVA_PRId64 " participants=" EVA_PRId64
      " groups=" EVA_PRId64 " serial-share=%.3f "
      "setup=%.3fs advance=%.3fs rounds=%.3fs\n",
      stats.barriers, stats.round_participants, stats.round_groups,
      stats.SerialShare(), stats.setup_wall_s, stats.advance_wall_s,
      stats.round_wall_s);
}

}  // namespace eva
