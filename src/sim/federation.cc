#include "src/sim/federation.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>

#include "src/common/thread_pool.h"
#include "src/workload/trace_gen.h"

namespace eva {

std::vector<FederationTenant> MakeTenantShards(const Trace& base, int num_tenants,
                                               int jobs_per_tenant,
                                               std::uint64_t seed_base,
                                               SchedulerKind kind) {
  std::vector<FederationTenant> tenants;
  tenants.reserve(static_cast<std::size_t>(num_tenants));
  for (int i = 0; i < num_tenants; ++i) {
    TraceScaleOptions scale;
    scale.target_jobs = jobs_per_tenant;
    scale.seed = seed_base + static_cast<std::uint64_t>(i);
    scale.rate_multiplier =
        static_cast<double>(base.jobs.size()) / std::max(jobs_per_tenant, 1);
    FederationTenant tenant;
    tenant.name = "tenant" + std::to_string(i);
    tenant.trace = ScaleTrace(base, scale);
    tenant.kind = kind;
    tenants.push_back(std::move(tenant));
  }
  return tenants;
}

FederationResult RunFederation(const std::vector<FederationTenant>& tenants,
                               const FederationOptions& options) {
  FederationResult result;
  if (tenants.empty()) {
    return result;
  }

  CloudProvider provider(options.catalog, options.provider);

  // One bundle + simulator per tenant, all provisioned from `provider`.
  struct TenantRun {
    SchedulerBundle bundle;
    std::unique_ptr<Simulator> simulator;
  };
  std::vector<TenantRun> runs;
  runs.reserve(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    TenantRun run;
    run.bundle = MakeScheduler(tenants[i].kind, options.interference, options.eva);
    SimulatorOptions sim_options = options.simulator;
    // The shared provider's own options govern; SimulatorOptions::provider
    // is only consulted when a simulator constructs a private provider.
    sim_options.shared_provider = &provider;
    sim_options.tenant_id = static_cast<int>(i);
    sim_options.seed = options.simulator.seed + i;
    run.simulator = std::make_unique<Simulator>(tenants[i].trace,
                                                run.bundle.scheduler.get(), options.catalog,
                                                options.interference, sim_options);
    run.simulator->Start();
    runs.push_back(std::move(run));
  }

  const int threads = options.num_threads > 0 ? options.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(std::min<int>(threads, static_cast<int>(runs.size())));
  constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

  const auto next_barrier = [&runs]() {
    SimTime barrier = std::numeric_limits<SimTime>::infinity();
    for (const TenantRun& run : runs) {
      barrier = std::min(barrier, run.simulator->NextRoundTime());
    }
    return barrier;
  };
  const auto all_drained = [&runs]() {
    for (const TenantRun& run : runs) {
      if (!run.simulator->Drained()) {
        return false;
      }
    }
    return true;
  };

  while (true) {
    SimTime barrier = next_barrier();

    // Parallel phase: every tenant burns through its non-round events below
    // the barrier. Per-tenant work is fully independent; the only shared
    // state touched (provider releases/preemption tallies) is commutative,
    // so the barrier snapshot is the same for every pool size.
    {
      ThreadPool::TaskGroup group(pool);
      for (TenantRun& run : runs) {
        Simulator* simulator = run.simulator.get();
        group.Submit([simulator, barrier] { simulator->AdvanceUntil(barrier); });
      }
      group.Wait();
    }

    // A tenant may have re-triggered its round chain below the barrier (an
    // arrival after a drained stretch). Rounds must only run in the serial
    // phase at the *global* minimum, so restart the loop with the earlier
    // barrier before touching any round.
    const SimTime recomputed = next_barrier();
    if (recomputed < barrier) {
      continue;
    }
    barrier = recomputed;
    if (barrier == kInf) {
      // No rounds pending anywhere and every queue below a round is
      // drained: the federation is finished.
      if (all_drained()) {
        break;
      }
      continue;
    }

    // Serial phase, tenant order: the barrier-time events — scheduling
    // rounds and anything sharing their timestamp — run one tenant at a
    // time, so contended TryAcquire calls arbitrate deterministically.
    for (TenantRun& run : runs) {
      run.simulator->ProcessEventsThrough(barrier);
    }
  }

  result.tenants.reserve(tenants.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    FederationResult::Tenant tenant;
    tenant.name = tenants[i].name;
    tenant.kind = tenants[i].kind;
    tenant.metrics = runs[i].simulator->Finish();
    result.horizon_s = std::max(result.horizon_s, tenant.metrics.makespan_s);
    result.tenants.push_back(std::move(tenant));
  }
  result.provider = provider.FinalizeMetrics(result.horizon_s);
  return result;
}

void PrintFederationReport(const FederationResult& result) {
  std::printf("%-12s %-12s %12s %10s %8s %8s %8s %8s %9s\n", "Tenant", "Scheduler",
              "Cost($)", "SpotCost", "JCT(h)", "Denied", "Preempt", "SpotInst", "Jobs");
  for (const FederationResult::Tenant& tenant : result.tenants) {
    const SimulationMetrics& m = tenant.metrics;
    std::printf("%-12s %-12s %12.2f %10.2f %8.2f %8d %8d %8d %4d/%-4d\n",
                tenant.name.c_str(), SchedulerKindName(tenant.kind), m.total_cost,
                m.spot_cost, m.avg_jct_hours, m.acquisitions_denied, m.spot_preemptions,
                m.spot_instances_launched, m.jobs_completed, m.jobs_submitted);
  }
  std::printf("provider (horizon %.1f h):\n", SecondsToHours(result.horizon_s));
  for (int f = 0; f < kNumInstanceFamilies; ++f) {
    const CloudProviderMetrics::Family& family =
        result.provider.families[static_cast<std::size_t>(f)];
    std::printf(
        "  %-4s cap=%-4d granted=%-6lld denied=%-6lld preempted=%-5lld peak=%-4d "
        "util=%5.1f%% inst-h=%.1f\n",
        InstanceFamilyName(static_cast<InstanceFamily>(f)), family.capacity,
        static_cast<long long>(family.granted), static_cast<long long>(family.denied),
        static_cast<long long>(family.preempted), family.peak_in_use,
        family.avg_utilization * 100.0, family.instance_hours);
  }
}

}  // namespace eva
