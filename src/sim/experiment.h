// Experiment harness: constructs the paper's five schedulers, runs a trace
// against each, and prints table rows normalized against No-Packing —
// exactly how §6 reports results.

#ifndef SRC_SIM_EXPERIMENT_H_
#define SRC_SIM_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/eva_scheduler.h"
#include "src/sim/simulator.h"

namespace eva {

enum class SchedulerKind {
  kNoPacking,
  kStratus,
  kSynergy,
  kOwl,
  kEva,
  kEvaRp,          // Eva with plain reservation price (Figure 4 ablation).
  kEvaSingle,      // Eva without multi-task awareness (Table 6 / Figure 7).
  kEvaFullOnly,    // Full Reconfiguration at every round (Figure 5b).
  kEvaPartialOnly, // Eva w/o Full Reconfig (Figure 6).
};

const char* SchedulerKindName(SchedulerKind kind);

// A scheduler plus whatever auxiliary state it needs alive (Owl's oracle).
struct SchedulerBundle {
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<ThroughputEstimator> oracle;  // Owl only.
  EvaScheduler* eva = nullptr;                  // Set for the Eva variants.
};

// `interference` must outlive the bundle (Owl's profile points into it).
SchedulerBundle MakeScheduler(SchedulerKind kind, const InterferenceModel& interference,
                              const EvaOptions& eva_options = {});

struct ExperimentResult {
  SchedulerKind kind;
  SimulationMetrics metrics;
  double normalized_cost = 1.0;       // Relative to No-Packing on this trace.
  double full_adoption_fraction = 0;  // Eva variants: full reconfigs / rounds.
};

struct ExperimentOptions {
  SimulatorOptions simulator;
  EvaOptions eva;
  InterferenceModel interference = InterferenceModel::Measured();
  InstanceCatalog catalog = InstanceCatalog::AwsDefault();
};

// Runs `trace` under every scheduler in `kinds` (each gets a fresh
// scheduler and simulator). Costs are normalized against the first
// kNoPacking entry if present, else against the first entry.
std::vector<ExperimentResult> RunComparison(const Trace& trace,
                                            const std::vector<SchedulerKind>& kinds,
                                            const ExperimentOptions& options);

// RunComparison with one simulator+scheduler bundle per worker thread.
// Every run constructs its own Rng from options.simulator.seed (exactly as
// the serial path does), so results are deterministic and bit-identical to
// RunComparison regardless of thread count or completion order.
// num_threads <= 0 uses all hardware threads.
std::vector<ExperimentResult> ParallelRunComparison(const Trace& trace,
                                                    const std::vector<SchedulerKind>& kinds,
                                                    const ExperimentOptions& options,
                                                    int num_threads = 0);

// Renders rows in the style of Tables 10/11/13/14.
void PrintComparisonTable(const std::vector<ExperimentResult>& results);

// Scaling knob for the heavyweight benches: reads EVA_BENCH_SCALE (a
// percentage, default `default_percent`) and returns round(n * percent/100),
// at least 1. Lets `ctest`/CI exercise every bench quickly while full runs
// reproduce the paper's job counts.
int ScaledJobCount(int paper_jobs, int default_percent = 100);

}  // namespace eva

#endif  // SRC_SIM_EXPERIMENT_H_
