// Discrete-event simulator for cloud-based clusters (§5's "Simulator").
//
// The simulator plays a trace of job arrivals against a scheduler. At every
// scheduling period it reports throughput observations, asks the scheduler
// for a desired cluster configuration, diffs it against the running cluster
// and executes the implied actions with realistic delays: instance
// acquisition + setup (Table 1), task checkpoint and launch (Table 7). Job
// progress integrates normalized throughput, where a task's throughput is
// degraded by the hidden ground-truth interference model whenever it shares
// an instance with running neighbors; a multi-task job advances at its
// slowest task's rate (§4.4). Two fidelity modes mirror the paper:
// "simulated" uses deterministic mean delays and exact observations;
// "physical" draws delays from the measured ranges and perturbs
// observations, standing in for the AWS testbed of Tables 10-12.
//
// Cloud provider market (src/cloud/provider.h), default off: launches pass
// through admission (denied when a family pool is exhausted), the catalog
// gains a spot tier whose per-round quotes the scheduler prices against
// on-demand, and spot instances receive two-minute preemption warnings that
// evict and re-checkpoint their tasks. With the provider disabled the
// engine never consults it and every trajectory is bit-identical to the
// providerless build.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>

#include "src/cloud/delays.h"
#include "src/cloud/instance_type.h"
#include "src/cloud/provider.h"
#include "src/obs/observability.h"
#include "src/sched/scheduler.h"
#include "src/sim/metrics.h"
#include "src/workload/interference.h"
#include "src/workload/job.h"

namespace eva {

struct SimulatorOptions {
  SimTime scheduling_period_s = 5.0 * kSecondsPerMinute;

  // Physical mode: stochastic delays and noisy throughput observations.
  bool physical_mode = false;
  double observation_noise_stddev = 0.03;

  CloudDelayModel cloud_delays;

  // Scales job checkpoint+launch delays (the Figure 5 sweep).
  double migration_delay_multiplier = 1.0;

  // Expose perfect remaining-runtime estimates to the scheduler (the paper
  // grants Stratus its best case; harmless to others, which ignore it).
  bool grant_runtime_estimates = true;

  // Check every returned configuration against capacity/duplication
  // invariants; invalid configurations are rejected (logged, round skipped).
  bool validate_configs = true;

  // Quiescence-aware round trigger: when nothing decision-relevant changed
  // since the previous round (empty RoundDelta, no task-rate transitions,
  // previous apply was a no-op), offer the round to
  // Scheduler::CoalesceQuiescentRounds instead of building a context and
  // invoking the scheduler. The event/integration trajectory is unchanged —
  // results are bit-identical with batching on or off — only the per-round
  // observation/context/validation/diff work disappears. Automatically
  // disabled in physical mode (noisy observations consume RNG draws every
  // round, so no round is ever a provable no-op) and when the spot market
  // is active (quotes drift between rounds, so no round is quiescent).
  bool coalesce_quiescent_rounds = true;

  // --- Cloud provider market (default off: infinite on-demand supply) ----
  // Per-simulator provider, constructed when `provider.enabled` and no
  // shared provider is given.
  CloudProviderOptions provider;

  // Federation: several tenant simulators share one provider. The caller
  // owns it (it must outlive the simulator) and must construct the
  // simulator with the provider's base catalog; the engine then runs
  // against provider->tiered_catalog(). See sim/federation.h for the
  // lockstep protocol that keeps shared-provider runs deterministic.
  CloudProvider* shared_provider = nullptr;

  // Tenant index, for logs and federation bookkeeping.
  int tenant_id = 0;

  // Fault injection (default off: no zones, no outages — trajectories
  // bit-identical to a build without the subsystem). The schedule is a pure
  // hash of (seed, kind, step), shared with the provider's outage capacity
  // clamp; see src/cloud/fault_injector.h. When a per-simulator provider is
  // constructed these options are propagated into it; with a shared
  // provider the federation driver does the same, so both sides always read
  // one schedule.
  FaultInjectorOptions faults;

  // First scheduling round fires at this offset instead of t=0; later
  // rounds keep the phase (offset + k x period) until the cluster drains.
  // The federation's stagger option assigns distinct per-tenant offsets so
  // rounds spread across the period instead of colliding on one barrier.
  SimTime first_round_offset_s = 0.0;

  // Decision-time markup on spot quotes (the preemption-risk premium): the
  // scheduler prices a spot instance at quote x (1 + premium), so a spot
  // type must undercut on-demand by the premium before Eva mixes it in.
  // Actual costs charge the raw quote trace.
  double spot_risk_premium = 0.10;

  // Observability sinks (default off: every hot-path hook is a null test,
  // trajectories and allocation counts bit-identical to a build without the
  // subsystem). Spans/digests/series are stamped in virtual time, so what
  // they record is as deterministic as the run itself. See
  // src/obs/observability.h.
  ObservabilityOptions observability;

  std::uint64_t seed = 42;

  // Hard stop, guarding against schedulers that never drain the system.
  SimTime max_sim_time_s = 4.0 * 365.0 * kSecondsPerDay;
};

class Simulator {
 public:
  Simulator(const Trace& trace, Scheduler* scheduler, const InstanceCatalog& catalog,
            const InterferenceModel& interference, SimulatorOptions options = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Runs the trace to completion and returns the collected metrics.
  // Equivalent to Start(); ProcessEventsThrough(+inf); Finish().
  SimulationMetrics Run();

  // --- Lockstep stepping API (the federation driver; see federation.h) ---
  // The driver alternates a parallel phase — every tenant processes its
  // events up to (strictly before) the next scheduling round anywhere, via
  // AdvanceUntil — with a serial phase that processes the round-boundary
  // events tenant by tenant via ProcessEventsThrough. Scheduling rounds are
  // the only events that acquire provider capacity, so confining them to
  // the serial phase makes contended admission deterministic: grants are
  // arbitrated in (virtual time, tenant order), independent of thread
  // count.

  // Prepares the event queue (first arrival + first round). Call once.
  void Start();

  // Time of the pending scheduling-round event, or +infinity if none.
  SimTime NextRoundTime() const;

  // Time of the earliest pending event of any kind, or +infinity when
  // drained. The federation driver uses it to skip tenants with nothing to
  // do at a barrier.
  SimTime NextEventTime() const;

  // Families of the shared provider this tenant could touch — acquire,
  // release, or preemption-record — while processing events at times <=
  // `through`: live-instance families plus every family an active or
  // arriving-by-`through` job fits. The federation driver intersects these
  // masks (restricted to the provider's finite families) to partition
  // same-barrier rounds into conflict groups. Calling this also arms a
  // contract check: an acquisition at exactly `through` outside the
  // returned mask is a hard error, because a launch the grouping could not
  // foresee would silently break cross-pool-size determinism.
  std::uint32_t ProviderFamilyFootprint(SimTime through);

  // True when no events remain (or the run aborted at max_sim_time_s).
  bool Drained() const;

  // Processes events with time < limit, stopping early whenever the next
  // event is a scheduling round (which the serial phase must own).
  void AdvanceUntil(SimTime limit);

  // Processes every event with time <= t, rounds included, plus any events
  // they spawn at times <= t.
  void ProcessEventsThrough(SimTime t);

  // End-of-run cleanup (terminates leftover instances) and metrics.
  SimulationMetrics Finish();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience wrapper: construct, run, return metrics.
SimulationMetrics RunSimulation(const Trace& trace, Scheduler* scheduler,
                                const InstanceCatalog& catalog,
                                const InterferenceModel& interference,
                                const SimulatorOptions& options = {});

}  // namespace eva

#endif  // SRC_SIM_SIMULATOR_H_
