// Discrete-event simulator for cloud-based clusters (§5's "Simulator").
//
// The simulator plays a trace of job arrivals against a scheduler. At every
// scheduling period it reports throughput observations, asks the scheduler
// for a desired cluster configuration, diffs it against the running cluster
// and executes the implied actions with realistic delays: instance
// acquisition + setup (Table 1), task checkpoint and launch (Table 7). Job
// progress integrates normalized throughput, where a task's throughput is
// degraded by the hidden ground-truth interference model whenever it shares
// an instance with running neighbors; a multi-task job advances at its
// slowest task's rate (§4.4). Two fidelity modes mirror the paper:
// "simulated" uses deterministic mean delays and exact observations;
// "physical" draws delays from the measured ranges and perturbs
// observations, standing in for the AWS testbed of Tables 10-12.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>

#include "src/cloud/delays.h"
#include "src/cloud/instance_type.h"
#include "src/sched/scheduler.h"
#include "src/sim/metrics.h"
#include "src/workload/interference.h"
#include "src/workload/job.h"

namespace eva {

struct SimulatorOptions {
  SimTime scheduling_period_s = 5.0 * kSecondsPerMinute;

  // Physical mode: stochastic delays and noisy throughput observations.
  bool physical_mode = false;
  double observation_noise_stddev = 0.03;

  CloudDelayModel cloud_delays;

  // Scales job checkpoint+launch delays (the Figure 5 sweep).
  double migration_delay_multiplier = 1.0;

  // Expose perfect remaining-runtime estimates to the scheduler (the paper
  // grants Stratus its best case; harmless to others, which ignore it).
  bool grant_runtime_estimates = true;

  // Check every returned configuration against capacity/duplication
  // invariants; invalid configurations are rejected (logged, round skipped).
  bool validate_configs = true;

  // Quiescence-aware round trigger: when nothing decision-relevant changed
  // since the previous round (empty RoundDelta, no task-rate transitions,
  // previous configuration applied as a no-op), offer the round to
  // Scheduler::CoalesceQuiescentRounds instead of building a context and
  // invoking the scheduler. The event/integration trajectory is unchanged —
  // results are bit-identical with batching on or off — only the per-round
  // observation/context/validation/diff work disappears. Automatically
  // disabled in physical mode (noisy observations consume RNG draws every
  // round, so no round is ever a provable no-op).
  bool coalesce_quiescent_rounds = true;

  std::uint64_t seed = 42;

  // Hard stop, guarding against schedulers that never drain the system.
  SimTime max_sim_time_s = 4.0 * 365.0 * kSecondsPerDay;
};

class Simulator {
 public:
  Simulator(const Trace& trace, Scheduler* scheduler, const InstanceCatalog& catalog,
            const InterferenceModel& interference, SimulatorOptions options = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Runs the trace to completion and returns the collected metrics.
  SimulationMetrics Run();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience wrapper: construct, run, return metrics.
SimulationMetrics RunSimulation(const Trace& trace, Scheduler* scheduler,
                                const InstanceCatalog& catalog,
                                const InterferenceModel& interference,
                                const SimulatorOptions& options = {});

}  // namespace eva

#endif  // SRC_SIM_SIMULATOR_H_
