#include "src/sim/execution_model.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/sched/observation.h"

namespace eva {

double ExecutionModel::TaskColocationFactor(const TaskRec& task) const {
  if (task.state != TaskState::kRunning) {
    return 0.0;
  }
  const InstRec* inst = state_->FindInstance(task.source);
  if (inst == nullptr) {
    return 0.0;
  }
  const InterferenceProfile mine = WorkloadRegistry::Get(task.workload).profile;
  double factor = 1.0;
  for (TaskId other_id : inst->present) {
    if (other_id == task.id) {
      continue;
    }
    // The pruning invariant guarantees present entries resolve; at() turns a
    // violation into a loud failure rather than phantom non-interference.
    const TaskRec& other = state_->tasks().at(other_id);
    if (other.state != TaskState::kRunning) {
      continue;  // A checkpointing neighbor no longer degrades us.
    }
    factor *= interference_->Pairwise(mine, WorkloadRegistry::Get(other.workload).profile);
  }
  return factor;
}

double ExecutionModel::TaskThroughput(const TaskRec& task) const {
  const double factor = TaskColocationFactor(task);
  if (factor <= 0.0) {
    return 0.0;
  }
  // Heterogeneous families (§4.2): the hosting family's relative speed
  // scales the task's progress; 1.0 in the homogeneous setting. The job
  // back-pointer spares a map lookup that would grow with the trace.
  const InstRec* inst = state_->FindInstance(task.source);
  double speedup = 1.0;
  if (inst != nullptr && task.job_ref != nullptr) {
    speedup = task.job_ref->spec.family_speedup[static_cast<std::size_t>(
        catalog_->Get(inst->type_index).family)];
  }
  return factor * speedup;
}

void ExecutionModel::MarkInstanceDirty(const InstRec& instance) {
  for (TaskId task_id : instance.present) {
    dirty_.Insert(state_->tasks().at(task_id).job);
  }
}

void ExecutionModel::RefreshProgressingFlat() {
  if (!progressing_flat_stale_) {
    return;
  }
  progressing_flat_.assign(progressing_.begin(), progressing_.end());
  progressing_flat_stale_ = false;
}

void ExecutionModel::IntegrateWork(SimTime dt) {
  RefreshProgressingFlat();
  for (const auto& [job_id, job_ptr] : progressing_flat_) {
    JobRec& job = *job_ptr;
    job.remaining_work_s -= job.current_rate * dt;
    job.running_seconds += dt;
    if (job.remaining_work_s <= kWorkEpsilonS) {
      candidates_.insert(job_id);
    }
  }
}

SimTime ExecutionModel::RecomputeDirtyRates(SimTime now) {
  // Drain in ascending id order — the exact iteration order of the std::set
  // this flat buffer replaced. (Rates are recomputed independently per job,
  // but keeping the order identical keeps the engine trivially audit-equal.)
  std::vector<JobId>& dirty_ids = dirty_.mutable_items();
  std::sort(dirty_ids.begin(), dirty_ids.end());
  for (JobId job_id : dirty_ids) {
    if (!dirty_.Contains(job_id)) {
      continue;  // Erased (job deactivated) after being marked.
    }
    JobRec* job = state_->FindJob(job_id);
    if (job == nullptr || !job->active) {
      continue;
    }
    double rate = -1.0;
    bool all_running = true;
    for (TaskId task_id : job->tasks) {
      const TaskRec& task = state_->tasks().at(task_id);
      if (task.state != TaskState::kRunning) {
        all_running = false;
        break;
      }
      const double tput = TaskThroughput(task);
      rate = rate < 0.0 ? tput : std::min(rate, tput);
    }
    job->current_rate = all_running && rate > 0.0 ? rate : 0.0;
    if (job->current_rate > 0.0) {
      progressing_flat_stale_ |= progressing_.emplace(job_id, job).second;
    } else {
      progressing_flat_stale_ |= progressing_.erase(job_id) > 0;
    }
  }
  dirty_.Clear();

  // Project the earliest completion over everything still progressing. The
  // projection is refreshed every event (remaining work drifts as it is
  // integrated stepwise), matching a full rescan's arming decisions.
  //
  // The division per job is a top per-event cost, so candidates are
  // prefiltered by cross-multiplication: remaining_j / rate_j exceeding the
  // incumbent's quotient implies (rounding is monotone) an ETA at or past
  // the incumbent's, which the first-wins min would discard anyway. The
  // margin keeps the filter conservative against multiply rounding; near-
  // ties fall through to the exact divide, so the returned value — and
  // every arming decision downstream — is bit-identical to the plain loop.
  RefreshProgressingFlat();
  SimTime earliest = -1.0;
  double best_rem = 0.0;   // Incumbent's clamped remaining work.
  double best_rate = 0.0;  // Incumbent's rate (0 marks "no incumbent").
  for (const auto& [job_id, job_ptr] : progressing_flat_) {
    (void)job_id;
    const JobRec& job = *job_ptr;
    const double rem = std::max(job.remaining_work_s, 0.0);
    if (best_rate > 0.0 &&
        rem * best_rate > best_rem * job.current_rate * (1.0 + 1e-12)) {
      continue;  // Certainly no earlier than the incumbent.
    }
    const SimTime eta = now + rem / job.current_rate;
    if (earliest < 0.0 || eta < earliest) {
      earliest = eta;
      best_rem = rem;
      best_rate = job.current_rate;
    }
  }
  return earliest;
}

void ExecutionModel::OnJobDeactivated(JobId job) {
  progressing_flat_stale_ |= progressing_.erase(job) > 0;
  dirty_.EraseMembership(job);
  candidates_.erase(job);
}

void ExecutionModel::OnJobAdded(const JobRec& job) {
  if (job.remaining_work_s <= kWorkEpsilonS) {
    candidates_.insert(job.spec.id);
  }
}

const std::vector<JobThroughputObservation>& ExecutionModel::CollectObservations(
    bool physical_mode, double noise_stddev, Rng* rng) const {
  ObservationBatch& batch = batch_;
  batch.Reset();
  batch.Reserve(progressing_.size());
  for (const auto& [job_id, job_ptr] : progressing_) {
    const JobRec& job = *job_ptr;
    // Report the co-location-only degradation (min over tasks), matching
    // what a per-iteration timer normalized by the family's standalone
    // speed would measure.
    double tput = 1.0;
    for (TaskId task_id : job.tasks) {
      tput = std::min(tput, TaskColocationFactor(state_->tasks().at(task_id)));
    }
    if (physical_mode) {
      tput = PerturbObservedThroughput(tput, *rng, noise_stddev);
    }
    batch.BeginJob(job_id, tput);
    for (TaskId task_id : job.tasks) {
      const TaskRec& task = state_->tasks().at(task_id);
      TaskPlacementObservation& placement = batch.AddTask(task.id, task.workload);
      if (const InstRec* inst = state_->FindInstance(task.source)) {
        for (TaskId other_id : inst->present) {
          if (other_id == task.id) {
            continue;
          }
          const TaskRec& other = state_->tasks().at(other_id);
          if (other.state == TaskState::kRunning) {
            placement.colocated.push_back(other.workload);
          }
        }
      }
    }
  }
  return batch.Finish();
}

}  // namespace eva
