// The task state machine: retargeting, container launch, checkpointing and
// job completion.
//
// Transitions mutate ClusterState, schedule the corresponding delayed events
// (versioned, so superseded transitions cancel in-flight ones), and mark the
// affected jobs dirty in the ExecutionModel. Keeping this machinery separate
// from the orchestrator makes the reconfiguration path — the paper's core
// subject — independently testable.
//
//   kPending ─Retarget→ kWaiting ─TryLaunch→ kLaunching ─OnLaunchDone→ kRunning
//   kRunning ─Retarget→ kCheckpointing ─OnCheckpointDone→ kWaiting → ...
//   kRunning ─Evict→ kCheckpointing (no target) ─OnCheckpointDone→ kPending
//   any ─CompleteJob→ kDone

#ifndef SRC_SIM_TASK_LIFECYCLE_H_
#define SRC_SIM_TASK_LIFECYCLE_H_

#include "src/sim/cluster_state.h"
#include "src/sim/event_queue.h"
#include "src/sim/execution_model.h"
#include "src/sim/metrics.h"

namespace eva {

class TaskLifecycle {
 public:
  TaskLifecycle(ClusterState* state, ExecutionModel* exec, EventQueue* queue,
                double migration_delay_multiplier)
      : state_(state),
        exec_(exec),
        queue_(queue),
        migration_delay_multiplier_(migration_delay_multiplier) {}

  // Points the task at a new destination instance and starts the migration
  // machinery appropriate for its current state (checkpoint if running,
  // launch if the destination is ready, park otherwise).
  void Retarget(TaskRec& task, InstanceId dest, SimTime now);

  // Starts the container launch if the task is waiting on a ready instance.
  void TryLaunch(TaskRec& task, SimTime now);

  // Spot eviction (preemption warning): detaches the task from its target
  // without a replacement. A running task checkpoints first (kCheckpointing
  // with no target; OnCheckpointDone parks it kPending); waiting/launching
  // tasks drop straight back to kPending. The next scheduling round sees an
  // unplaced task and re-places it.
  void Evict(TaskRec& task, SimTime now);

  // Delayed-event completions; stale versions are ignored by the caller
  // (the orchestrator guards before dispatching here). OnLaunchDone stamps
  // `running_since = now` — the fault accounting's lost-work baseline.
  void OnCheckpointDone(TaskRec& task, SimTime now);
  void OnLaunchDone(TaskRec& task, SimTime now);

  // Finishes a job: deactivates it, records JCT, detaches every task
  // (pruning presence/assignment so no stale colocation entry survives) and
  // terminates instances left empty.
  void CompleteJob(JobRec& job, SimTime now, SimulationMetrics& metrics);

  SimTime CheckpointDelay(const TaskRec& task) const {
    return WorkloadRegistry::Get(task.workload).checkpoint_delay_s *
           migration_delay_multiplier_;
  }
  SimTime LaunchDelay(const TaskRec& task) const {
    return WorkloadRegistry::Get(task.workload).launch_delay_s * migration_delay_multiplier_;
  }

 private:
  // Shared checkpoint-start sequence of Retarget (migration) and Evict
  // (spot preemption): version bump (cancelling in-flight events),
  // kCheckpointing, neighbor dirty-mark, delayed completion event.
  void StartCheckpoint(TaskRec& task, SimTime now);

  ClusterState* state_;
  ExecutionModel* exec_;
  EventQueue* queue_;
  double migration_delay_multiplier_;
};

}  // namespace eva

#endif  // SRC_SIM_TASK_LIFECYCLE_H_
