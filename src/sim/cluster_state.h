// Mutable cluster state for the simulator: jobs, tasks and instances, plus
// the time-weighted capacity/allocation integrals the paper's tables report.
//
// All mutations go through the methods below, which maintain two invariants
// the rest of the engine relies on:
//   * an instance's `present` set contains exactly the tasks whose container
//     lives on it (states kRunning / kCheckpointing) — terminal transitions
//     prune it, so colocation lookups can never see a stale entry;
//   * the capacity / allocation / tasks-per-instance sums used by
//     IntegrateTo() are cached and recomputed only when the instance set or
//     a task assignment actually changes, instead of rescanning the cluster
//     on every event. The recomputation walks the same containers in the
//     same order as a full rescan, so the integrals are bit-identical to the
//     pre-incremental engine's.

#ifndef SRC_SIM_CLUSTER_STATE_H_
#define SRC_SIM_CLUSTER_STATE_H_

#include <map>
#include <set>
#include <vector>

#include "src/cloud/instance_type.h"
#include "src/common/resources.h"
#include "src/common/units.h"
#include "src/sched/types.h"
#include "src/sim/metrics.h"
#include "src/workload/job.h"

namespace eva {

enum class TaskState {
  kPending,        // Arrived, never placed.
  kWaiting,        // Assigned, waiting for the target instance to be ready.
  kLaunching,      // Container starting on the target instance.
  kRunning,        // Executing.
  kCheckpointing,  // Stopping on the source instance before a migration.
  kDone,
};

struct TaskRec {
  TaskId id = kInvalidTaskId;
  JobId job = kInvalidJobId;
  WorkloadId workload = kInvalidWorkloadId;
  TaskState state = TaskState::kPending;
  InstanceId target = kInvalidInstanceId;  // Assigned destination.
  InstanceId source = kInvalidInstanceId;  // Where the container lives now.
  int version = 0;                         // Guards in-flight events.
};

struct JobRec {
  JobSpec spec;
  std::vector<TaskId> tasks;
  bool active = false;
  SimTime remaining_work_s = 0.0;
  SimTime running_seconds = 0.0;
  SimTime completion_time = 0.0;
  double current_rate = 0.0;  // Normalized throughput while fully running.
};

struct InstRec {
  InstanceId id = kInvalidInstanceId;
  int type_index = -1;
  bool ready = false;
  bool condemned = false;
  SimTime launch_time = 0.0;
  SimTime ready_time = 0.0;
  std::set<TaskId> assigned;  // Tasks targeted at this instance.
  std::set<TaskId> present;   // Containers physically on this instance.
};

class ClusterState {
 public:
  explicit ClusterState(const InstanceCatalog& catalog) : catalog_(catalog) {}

  // --- Lookup -----------------------------------------------------------
  const std::map<JobId, JobRec>& jobs() const { return jobs_; }
  const std::map<TaskId, TaskRec>& tasks() const { return tasks_; }
  const std::map<InstanceId, InstRec>& instances() const { return instances_; }
  const std::set<JobId>& active_jobs() const { return active_; }
  int num_active() const { return static_cast<int>(active_.size()); }
  bool HasLiveInstances() const { return !instances_.empty(); }

  JobRec* FindJob(JobId id);
  const JobRec* FindJob(JobId id) const;
  TaskRec* FindTask(TaskId id);
  InstRec* FindInstance(InstanceId id);
  const InstRec* FindInstance(InstanceId id) const;

  // --- Jobs and tasks ---------------------------------------------------
  // Creates the job record plus one TaskRec per task; the job starts active
  // with its full standalone duration as remaining work.
  JobRec& AddJob(const JobSpec& spec);

  // active -> false; records the completion time, zeroes the rate.
  void DeactivateJob(JobRec& job, SimTime now);

  // --- Instance lifecycle -----------------------------------------------
  InstRec& CreateInstance(int type_index, SimTime launch_time, SimTime ready_time);
  void Condemn(InstanceId id);

  // Terminates the instance iff it is condemned with no assigned or present
  // tasks: accumulates its cost + uptime and erases it. Returns true if the
  // instance was terminated.
  bool MaybeTerminate(InstanceId id, SimTime now);

  // End-of-run cleanup: pay for everything still alive.
  void TerminateAllLive(SimTime now);

  // --- Assignment and container presence --------------------------------
  // Points `task` at `dest`: removes it from the previous target's assigned
  // set (if any) and inserts it into dest's. Does not change task state.
  void SetTarget(TaskRec& task, InstanceId dest);

  // The container lands on the task's target: source = target, present +=.
  void PlaceContainer(TaskRec& task);

  // The container leaves its source instance (checkpoint finished):
  // present -=, source cleared. Returns the former source id.
  InstanceId RemoveContainer(TaskRec& task);

  // Terminal transition: bumps the version (cancelling in-flight events),
  // prunes the task from both the present and assigned sets, clears
  // source/target and marks the task kDone. Returns {source, target} as they
  // were, for the caller's instance-termination sweep.
  struct DetachResult {
    InstanceId source = kInvalidInstanceId;
    InstanceId target = kInvalidInstanceId;
  };
  DetachResult MarkTaskDone(TaskRec& task);

  // --- Time integration --------------------------------------------------
  // Accumulates capacity/allocation/instance-count integrals over dt using
  // the cached composition sums (recomputed lazily after a mutation).
  void IntegrateTo(SimTime dt);

  // --- Outputs ------------------------------------------------------------
  // Snapshot handed to Scheduler::Schedule (active jobs' tasks + live,
  // non-condemned instances), in deterministic id order.
  SchedulingContext BuildContext(SimTime now, bool grant_runtime_estimates) const;

  // Fills cost, uptime distribution, instance counters, the time-weighted
  // table metrics and the completed-job JCT/throughput/idle averages.
  void FinalizeMetrics(SimulationMetrics& metrics) const;

 private:
  void RefreshCompositionSums();

  const InstanceCatalog& catalog_;

  std::map<JobId, JobRec> jobs_;
  std::map<TaskId, TaskRec> tasks_;
  std::map<InstanceId, InstRec> instances_;  // Live (provisioning/ready).
  std::set<JobId> active_;
  TaskId next_task_id_ = 0;
  InstanceId next_instance_id_ = 0;

  // Cached composition sums for IntegrateTo; `composition_dirty_` is set by
  // every mutation that changes what the sums range over.
  bool composition_dirty_ = true;
  double cached_cap_[kNumResources] = {0, 0, 0};
  double cached_alloc_[kNumResources] = {0, 0, 0};
  double cached_assigned_tasks_ = 0.0;

  // Metric accumulators.
  int instances_launched_ = 0;
  Money total_cost_ = 0.0;
  std::vector<double> uptime_hours_;
  double instance_seconds_ = 0.0;       // integral of #live instances dt
  double task_instance_seconds_ = 0.0;  // integral of sum(assigned) dt
  double cap_seconds_[kNumResources] = {0, 0, 0};
  double alloc_seconds_[kNumResources] = {0, 0, 0};
};

}  // namespace eva

#endif  // SRC_SIM_CLUSTER_STATE_H_
