// Mutable cluster state for the simulator: jobs, tasks and instances, plus
// the time-weighted capacity/allocation integrals the paper's tables report.
//
// All mutations go through the methods below, which maintain the invariants
// the rest of the engine relies on:
//   * an instance's `present` set contains exactly the tasks whose container
//     lives on it (states kRunning / kCheckpointing) — terminal transitions
//     prune it, so colocation lookups can never see a stale entry;
//   * the state is sharded by instance group (one shard per catalog type):
//     each shard tracks its member instances and caches its capacity and
//     assigned-task-count sums, so a mutation only dirties — and the next
//     IntegrateTo() only recomputes — the touched shard. Capacities and
//     counts are integral, so summing shard caches is exact and the totals
//     stay bit-identical to the pre-shard engine's id-order rescan;
//   * the allocation sums may involve fractional demands, whose floating-
//     point folds are order-sensitive — they are therefore recomputed with
//     the exact same global instance-id-order fold as always, but over
//     per-instance cached demand vectors (rebuilt only for instances whose
//     assignment changed), eliminating the per-task map lookups of a full
//     rescan while reproducing its results bit-for-bit;
//   * every mutation is also accumulated into a RoundDelta (O(1) per
//     event), which the simulator hands to the scheduler each round so the
//     decision layer can be delta-incremental too.

#ifndef SRC_SIM_CLUSTER_STATE_H_
#define SRC_SIM_CLUSTER_STATE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/cloud/instance_type.h"
#include "src/common/soa_table.h"
#include "src/common/resources.h"
#include "src/common/units.h"
#include "src/sched/types.h"
#include "src/sim/metrics.h"
#include "src/workload/job.h"

namespace eva {

enum class TaskState {
  kPending,        // Arrived, never placed.
  kWaiting,        // Assigned, waiting for the target instance to be ready.
  kLaunching,      // Container starting on the target instance.
  kRunning,        // Executing.
  kCheckpointing,  // Stopping on the source instance before a migration.
  kDone,
};

struct JobRec;

struct TaskRec {
  TaskId id = kInvalidTaskId;
  JobId job = kInvalidJobId;
  WorkloadId workload = kInvalidWorkloadId;
  TaskState state = TaskState::kPending;
  InstanceId target = kInvalidInstanceId;  // Assigned destination.
  InstanceId source = kInvalidInstanceId;  // Where the container lives now.
  int version = 0;                         // Guards in-flight events.

  // When the current container started executing (-1 when it never has) —
  // the fault accounting's lost-work baseline for abruptly destroyed
  // containers. Stamped by TaskLifecycle::OnLaunchDone.
  SimTime running_since = -1.0;

  // Owning job record (map nodes are pointer-stable). Saves the hot
  // execution-model paths a per-event map lookup that would grow with the
  // trace; valid for the task's whole lifetime (tasks are retired together
  // with their job).
  JobRec* job_ref = nullptr;
};

struct JobRec {
  JobSpec spec;
  std::vector<TaskId> tasks;
  bool active = false;
  SimTime remaining_work_s = 0.0;
  SimTime running_seconds = 0.0;
  SimTime completion_time = 0.0;
  double current_rate = 0.0;  // Normalized throughput while fully running.
};

struct InstRec {
  InstanceId id = kInvalidInstanceId;
  int type_index = -1;
  bool ready = false;
  bool condemned = false;
  SimTime launch_time = 0.0;
  SimTime ready_time = 0.0;

  // Fault injection: the availability zone this instance was placed in (a
  // pure hash at launch; 0 when faults are off) — zone outages and drains
  // select victims by it.
  int zone = 0;
  // Provider release ticket from CloudProvider::TryAcquire (unlimited
  // pools; -1 otherwise) — makes the release at termination O(1).
  std::int64_t provider_slot = -1;
  // Flat sorted id sets (identical iteration order to the std::sets they
  // replaced): per-event retarget/migration churn mutates these, and set
  // node allocation dominated the engine's per-event allocation count.
  IdSet<TaskId> assigned;  // Tasks targeted at this instance.
  IdSet<TaskId> present;   // Containers physically on this instance.

  // Demand vectors of `assigned`, in set (id) order, on this instance's
  // family — the allocation integral's operands, cached so the global fold
  // needs no map lookups. Rebuilt lazily when `demands_dirty`.
  std::vector<ResourceVector> member_demands;
  bool demands_dirty = true;
};

class ClusterState {
 public:
  // One instance group (catalog type): its member instances plus the
  // exact (integral) composition sums IntegrateTo() combines.
  struct Shard {
    std::set<InstanceId> members;
    bool dirty = false;
    double cap[kNumResources] = {0, 0, 0};
    double assigned_tasks = 0.0;
  };

  explicit ClusterState(const InstanceCatalog& catalog);

  // --- Lookup -----------------------------------------------------------
  const std::map<JobId, JobRec>& jobs() const { return jobs_; }
  // Paged table (O(1) hot-path lookups, stable record pointers, one
  // allocation per page instead of per task); iterates ascending by id.
  const PagedTable<TaskRec, TaskId>& tasks() const { return tasks_; }
  const std::map<InstanceId, InstRec>& instances() const { return instances_; }
  const std::set<JobId>& active_jobs() const { return active_; }
  int num_active() const { return static_cast<int>(active_.size()); }
  bool HasLiveInstances() const { return !instances_.empty(); }
  const std::vector<Shard>& shards() const { return shards_; }

  JobRec* FindJob(JobId id);
  const JobRec* FindJob(JobId id) const;
  TaskRec* FindTask(TaskId id);
  InstRec* FindInstance(InstanceId id);
  const InstRec* FindInstance(InstanceId id) const;

  // --- Jobs and tasks ---------------------------------------------------
  // Creates the job record plus one TaskRec per task; the job starts active
  // with its full standalone duration as remaining work.
  JobRec& AddJob(const JobSpec& spec);

  // active -> false; records the completion time, zeroes the rate.
  void DeactivateJob(JobRec& job, SimTime now);

  // Retires a completed job: folds its completion statistics into the
  // archive FinalizeMetrics consumes and erases the job and task records, so
  // the hot-path maps stay O(active) instead of O(total trace) on large
  // traces. Requires the job to be inactive with every task detached
  // (kDone). Invalidates all references to the job and its tasks.
  void RetireJob(JobId id);

  // --- Instance lifecycle -----------------------------------------------
  InstRec& CreateInstance(int type_index, SimTime launch_time, SimTime ready_time);
  void Condemn(InstanceId id);

  // Terminates the instance iff it is condemned with no assigned or present
  // tasks: accumulates its cost + uptime and erases it. Returns true if the
  // instance was terminated.
  bool MaybeTerminate(InstanceId id, SimTime now);

  // End-of-run cleanup: pay for everything still alive.
  void TerminateAllLive(SimTime now);

  // --- Assignment and container presence --------------------------------
  // Points `task` at `dest`: removes it from the previous target's assigned
  // set (if any) and inserts it into dest's. Does not change task state.
  void SetTarget(TaskRec& task, InstanceId dest);

  // Detaches `task` from its target without assigning a new one (spot
  // eviction): removed from the target's assigned set, target cleared,
  // recorded in the round delta. No-op for unassigned tasks.
  void ClearTarget(TaskRec& task);

  // The container lands on the task's target: source = target, present +=.
  void PlaceContainer(TaskRec& task);

  // The container leaves its source instance (checkpoint finished):
  // present -=, source cleared. Returns the former source id.
  InstanceId RemoveContainer(TaskRec& task);

  // Terminal transition: bumps the version (cancelling in-flight events),
  // prunes the task from both the present and assigned sets, clears
  // source/target and marks the task kDone. Returns {source, target} as they
  // were, for the caller's instance-termination sweep.
  struct DetachResult {
    InstanceId source = kInvalidInstanceId;
    InstanceId target = kInvalidInstanceId;
  };
  DetachResult MarkTaskDone(TaskRec& task);

  // --- Time integration --------------------------------------------------
  // Accumulates capacity/allocation/instance-count integrals over dt using
  // the cached composition sums (recomputed lazily after a mutation).
  void IntegrateTo(SimTime dt);

  // --- Outputs ------------------------------------------------------------
  // Snapshot handed to Scheduler::Schedule (active jobs' tasks + live,
  // non-condemned instances), in deterministic id order.
  SchedulingContext BuildContext(SimTime now, bool grant_runtime_estimates) const;

  // BuildContext into a caller-owned context, reusing its vectors' capacity
  // and its index maps' buckets — the per-round fast path (a fresh context
  // allocates a dozen containers every scheduling round).
  void FillContext(SimTime now, bool grant_runtime_estimates,
                   SchedulingContext& context) const;

  // Drains the changes accumulated since the previous call (O(delta)):
  // entries are deduplicated and sorted, complete is set. The simulator
  // attaches the result to the round's SchedulingContext.
  RoundDelta TakeRoundDelta();

  // TakeRoundDelta into caller-owned storage: `out` is rewritten in place
  // (capacity reused) and the accumulator keeps its buffers — the per-round
  // fast path; neither side allocates at steady state.
  void DrainRoundDelta(RoundDelta& out);

  // Whether anything has accumulated since the last TakeRoundDelta — the
  // O(1) emptiness probe the quiescence-aware round trigger uses (an empty
  // delta need not be drained: taking it would yield the same empty result).
  bool HasPendingDelta() const { return !round_delta_.Empty(); }

  // Fills cost, uptime distribution, instance counters, the time-weighted
  // table metrics and the completed-job JCT/throughput/idle averages.
  void FinalizeMetrics(SimulationMetrics& metrics) const;

  // Total executing seconds accumulated so far — retired jobs' archives
  // plus live jobs' running tallies. The fault accounting's goodput
  // denominator (executed work; lost work is tracked by the simulator).
  double TotalRunningSeconds() const;

  // --- Cloud provider hooks ----------------------------------------------
  // Custom pricing for an instance's [launch, end] lifetime (the spot tier's
  // time-varying trace). Unset (the default): CostForUptime(catalog hourly
  // price, uptime) — the exact original expression, bit-for-bit.
  using InstanceCostFn = std::function<Money(int type_index, SimTime launch, SimTime end)>;
  void set_instance_cost_fn(InstanceCostFn fn) { cost_fn_ = std::move(fn); }

  // Observer invoked whenever an instance's lifetime ends (MaybeTerminate
  // and TerminateAllLive) — the provider's capacity-release channel.
  // `provider_slot` is the instance's release ticket (InstRec::provider_slot;
  // -1 when none), forwarded so the provider can free in O(1).
  using InstanceTerminatedFn = std::function<void(
      int type_index, SimTime launch, SimTime end, std::int64_t provider_slot)>;
  void set_instance_terminated_fn(InstanceTerminatedFn fn) {
    terminated_fn_ = std::move(fn);
  }

 private:
  Shard& ShardOf(int type_index) { return shards_[static_cast<std::size_t>(type_index)]; }
  void MarkAssignmentChanged(InstanceId instance_id);
  void RefreshCompositionSums();

  // Shared tail of every termination path: accrues cost (through the cost
  // hook when set) and the uptime sample, and notifies the termination
  // observer.
  void AccrueTerminated(const InstRec& instance, SimTime now);

  const InstanceCatalog& catalog_;

  std::map<JobId, JobRec> jobs_;             // Live (not yet retired).
  PagedTable<TaskRec, TaskId> tasks_;        // Live (not yet retired).
  std::map<InstanceId, InstRec> instances_;  // Live (provisioning/ready).
  std::set<JobId> active_;
  int active_task_count_ = 0;  // Sum of num_tasks over active_ (context size).
  TaskId next_task_id_ = 0;
  InstanceId next_instance_id_ = 0;

  // Completion statistics of retired jobs, in retirement (completion)
  // order; FinalizeMetrics re-sorts by id so the statistics fold in the
  // exact order the old keep-everything jobs_ iteration used.
  struct CompletedJob {
    JobId id = kInvalidJobId;
    SimTime arrival_time_s = 0.0;
    SimTime completion_time = 0.0;
    SimTime running_seconds = 0.0;
    SimTime duration_s = 0.0;
  };
  std::vector<CompletedJob> completed_;

  // Per-group shards plus the combined sums IntegrateTo consumes.
  // `composition_dirty_` is any-shard-or-alloc dirty; `alloc_dirty_` forces
  // the global allocation refold (set only when an assignment changes, not
  // when an empty instance launches or terminates).
  std::vector<Shard> shards_;
  bool composition_dirty_ = true;
  bool alloc_dirty_ = true;
  double cached_cap_[kNumResources] = {0, 0, 0};
  double cached_alloc_[kNumResources] = {0, 0, 0};
  double cached_assigned_tasks_ = 0.0;

  RoundDelta round_delta_;

  InstanceCostFn cost_fn_;
  InstanceTerminatedFn terminated_fn_;

  // Metric accumulators.
  std::int64_t instances_launched_ = 0;
  Money total_cost_ = 0.0;
  std::vector<double> uptime_hours_;
  double instance_seconds_ = 0.0;       // integral of #live instances dt
  double task_instance_seconds_ = 0.0;  // integral of sum(assigned) dt
  double cap_seconds_[kNumResources] = {0, 0, 0};
  double alloc_seconds_[kNumResources] = {0, 0, 0};
};

}  // namespace eva

#endif  // SRC_SIM_CLUSTER_STATE_H_
