#include "src/sim/experiment.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#include "src/baselines/no_packing.h"
#include "src/baselines/owl.h"
#include "src/baselines/stratus.h"
#include "src/baselines/synergy.h"
#include "src/common/thread_pool.h"

namespace eva {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNoPacking:
      return "No-Packing";
    case SchedulerKind::kStratus:
      return "Stratus";
    case SchedulerKind::kSynergy:
      return "Synergy";
    case SchedulerKind::kOwl:
      return "Owl";
    case SchedulerKind::kEva:
      return "Eva";
    case SchedulerKind::kEvaRp:
      return "Eva-RP";
    case SchedulerKind::kEvaSingle:
      return "Eva-Single";
    case SchedulerKind::kEvaFullOnly:
      return "Eva (Full only)";
    case SchedulerKind::kEvaPartialOnly:
      return "Eva (w/o Full)";
  }
  return "?";
}

SchedulerBundle MakeScheduler(SchedulerKind kind, const InterferenceModel& interference,
                              const EvaOptions& eva_options) {
  SchedulerBundle bundle;
  switch (kind) {
    case SchedulerKind::kNoPacking:
      bundle.scheduler = std::make_unique<NoPackingScheduler>();
      return bundle;
    case SchedulerKind::kStratus:
      bundle.scheduler = std::make_unique<StratusScheduler>();
      return bundle;
    case SchedulerKind::kSynergy:
      bundle.scheduler =
          std::make_unique<SynergyScheduler>(eva_options.default_pairwise_throughput);
      return bundle;
    case SchedulerKind::kOwl: {
      bundle.oracle = std::make_unique<OracleThroughput>(&interference);
      bundle.scheduler = std::make_unique<OwlScheduler>(bundle.oracle.get());
      return bundle;
    }
    case SchedulerKind::kEva:
    case SchedulerKind::kEvaRp:
    case SchedulerKind::kEvaSingle:
    case SchedulerKind::kEvaFullOnly:
    case SchedulerKind::kEvaPartialOnly: {
      EvaOptions options = eva_options;
      if (kind == SchedulerKind::kEvaRp) {
        options.tnrp.interference_aware = false;
      }
      if (kind == SchedulerKind::kEvaSingle) {
        options.tnrp.multi_task_aware = false;
      }
      if (kind == SchedulerKind::kEvaFullOnly) {
        options.policy = EvaOptions::Policy::kFullOnly;
      }
      if (kind == SchedulerKind::kEvaPartialOnly) {
        options.policy = EvaOptions::Policy::kPartialOnly;
      }
      auto eva = std::make_unique<EvaScheduler>(options);
      bundle.eva = eva.get();
      bundle.scheduler = std::move(eva);
      return bundle;
    }
  }
  return bundle;
}

namespace {

// One scheduler's end-to-end run: fresh bundle, fresh simulator.
ExperimentResult RunOne(const Trace& trace, SchedulerKind kind,
                        const ExperimentOptions& options) {
  SchedulerBundle bundle = MakeScheduler(kind, options.interference, options.eva);
  ExperimentResult result;
  result.kind = kind;
  result.metrics = RunSimulation(trace, bundle.scheduler.get(), options.catalog,
                                 options.interference, options.simulator);
  if (bundle.eva != nullptr && bundle.eva->stats().rounds > 0) {
    result.full_adoption_fraction =
        static_cast<double>(bundle.eva->stats().full_adopted) / bundle.eva->stats().rounds;
  }
  return result;
}

// Normalizes costs against No-Packing when present, else the first entry.
void NormalizeCosts(std::vector<ExperimentResult>& results) {
  Money baseline = 0.0;
  for (const ExperimentResult& result : results) {
    if (result.kind == SchedulerKind::kNoPacking) {
      baseline = result.metrics.total_cost;
      break;
    }
  }
  if (baseline <= 0.0 && !results.empty()) {
    baseline = results.front().metrics.total_cost;
  }
  for (ExperimentResult& result : results) {
    result.normalized_cost =
        baseline > 0.0 ? result.metrics.total_cost / baseline : 1.0;
  }
}

}  // namespace

std::vector<ExperimentResult> RunComparison(const Trace& trace,
                                            const std::vector<SchedulerKind>& kinds,
                                            const ExperimentOptions& options) {
  std::vector<ExperimentResult> results;
  results.reserve(kinds.size());
  for (SchedulerKind kind : kinds) {
    results.push_back(RunOne(trace, kind, options));
  }
  NormalizeCosts(results);
  return results;
}

std::vector<ExperimentResult> ParallelRunComparison(const Trace& trace,
                                                    const std::vector<SchedulerKind>& kinds,
                                                    const ExperimentOptions& options,
                                                    int num_threads) {
  // Each run writes its own pre-sized slot; trace/options are shared
  // read-only. Per-run RNGs are seeded inside RunSimulation from
  // options.simulator.seed, so ordering cannot leak between runs.
  std::vector<ExperimentResult> results(kinds.size());
  const int resolved = num_threads > 0 ? num_threads : ThreadPool::DefaultThreads();
  ThreadPool pool(std::min<int>(resolved, static_cast<int>(kinds.size())));
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    pool.Submit([&trace, &options, &results, &kinds, i] {
      results[i] = RunOne(trace, kinds[i], options);
    });
  }
  pool.Wait();
  NormalizeCosts(results);
  return results;
}

void PrintComparisonTable(const std::vector<ExperimentResult>& results) {
  std::printf("%-18s %12s %8s %10s %8s %8s %8s %8s %8s %9s %9s\n", "Scheduler", "Cost($)",
              "Norm", "Tasks/Inst", "GPU%", "CPU%", "RAM%", "Tput", "JCT(h)", "Idle(h)",
              "Mig/Task");
  for (const ExperimentResult& result : results) {
    const SimulationMetrics& m = result.metrics;
    std::printf("%-18s %12.2f %7.1f%% %10.2f %7.0f%% %7.0f%% %7.0f%% %8.2f %8.2f %9.2f %9.2f\n",
                SchedulerKindName(result.kind), m.total_cost, result.normalized_cost * 100.0,
                m.avg_tasks_per_instance, m.avg_alloc_gpu * 100.0, m.avg_alloc_cpu * 100.0,
                m.avg_alloc_ram * 100.0, m.avg_norm_job_throughput, m.avg_jct_hours,
                m.avg_job_idle_hours, m.migrations_per_task);
  }
}

int ScaledJobCount(int paper_jobs, int default_percent) {
  int percent = default_percent;
  if (const char* env = std::getenv("EVA_BENCH_SCALE")) {
    percent = std::atoi(env);
    if (percent <= 0) {
      percent = default_percent;
    }
  }
  return std::max(1, paper_jobs * percent / 100);
}

}  // namespace eva
