// Simulation output metrics — everything the paper's tables report.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/sched/types.h"

namespace eva {

struct SimulationMetrics {
  std::string scheduler_name;
  std::string trace_name;

  // Total provisioning cost: sum over instances of uptime x hourly price.
  Money total_cost = 0.0;

  int jobs_submitted = 0;
  int jobs_completed = 0;
  int tasks_total = 0;

  int instances_launched = 0;
  int task_migrations = 0;  // Moves of already-placed tasks.
  double migrations_per_task = 0.0;

  // Time-weighted average number of tasks per live instance.
  double avg_tasks_per_instance = 0.0;

  // Time-weighted allocation fraction per resource (allocated / provisioned).
  double avg_alloc_gpu = 0.0;
  double avg_alloc_cpu = 0.0;
  double avg_alloc_ram = 0.0;

  // Mean over completed jobs of standalone-work / time-spent-executing
  // (1.0 = no interference ever).
  double avg_norm_job_throughput = 0.0;

  double avg_jct_hours = 0.0;
  double avg_job_idle_hours = 0.0;  // JCT minus executing time.

  SimTime makespan_s = 0.0;

  // Scheduling decision points, *including* coalesced ones: the quiescence-
  // aware round trigger counts a skipped round here too, so the cadence
  // accounting (and the golden-pinned values) are independent of batching.
  int scheduling_rounds = 0;

  // Rounds absorbed by Scheduler::CoalesceQuiescentRounds — decision points
  // at which the scheduler was never invoked because the engine certified
  // the round quiescent. scheduling_rounds - rounds_coalesced is the number
  // of actual Schedule calls.
  int rounds_coalesced = 0;

  // Discrete events processed by the engine; with wall time this gives the
  // events/sec figure the perf benchmarks track.
  std::int64_t events_processed = 0;

  // --- Cloud provider interactions (all 0 when the provider is disabled,
  // the default: infinite capacity, on-demand only) ---
  int acquisitions_denied = 0;     // Launches refused by an exhausted pool.
  int spot_instances_launched = 0; // Instances acquired on the spot tier.
  int spot_preemptions = 0;        // Two-minute preemption warnings received.
  Money spot_cost = 0.0;           // Portion of total_cost paid at spot rates.

  // Wall time spent inside the scheduler per run (ObserveThroughput +
  // Schedule, summed over rounds) — divided by scheduling_rounds this is
  // the per-round decision latency the perf benchmarks report. Measurement
  // only; never feeds back into the simulation.
  double scheduler_wall_seconds = 0.0;

  // Scheduler decision-path counters (Scheduler::ExportCounters), collected
  // at Finish. All zero for schedulers that don't export any; Eva populates
  // the incremental fast path's pack/fallback/reconciliation accounting.
  SchedulerCounters scheduler_counters;

  // Raw distributions for CDFs / percentile reporting (Figure 3).
  std::vector<double> instance_uptime_hours;
  std::vector<double> jct_hours;
};

}  // namespace eva

#endif  // SRC_SIM_METRICS_H_
