// Simulation output metrics — everything the paper's tables report.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/sched/types.h"

namespace eva {

// Fault-injection accounting (src/cloud/fault_injector.h). All zero when
// faults are disabled, the default — a fault-free run's metrics are
// bit-identical to a build without the subsystem.
struct FaultStats {
  // Faults injected, by kind.
  std::int64_t zone_outages = 0;
  std::int64_t correlated_failures = 0;  // Bursts, not individual victims.
  std::int64_t maintenance_drains = 0;   // Zone drains started.

  // Instances destroyed abruptly (outage / burst / expired drain notice)
  // and instances put into a graceful drain.
  std::int64_t instances_killed = 0;
  std::int64_t instances_drained = 0;

  // Tasks evicted gracefully (checkpoint-then-pend) and containers
  // destroyed with work in flight (the abrupt paths).
  std::int64_t tasks_evicted = 0;
  std::int64_t tasks_lost = 0;

  // Executing time destroyed with lost containers: progress since the
  // container's launch that no checkpoint preserved.
  double lost_work_seconds = 0.0;

  // Re-placement latency: first fault disruption of a task to its next
  // successful container launch. Tasks still unplaced at the end of the
  // run are not sampled.
  std::int64_t replacements_completed = 0;
  double replacement_latency_min_s = 0.0;
  double replacement_latency_median_s = 0.0;
  double replacement_latency_p95_s = 0.0;

  // Executed work / (executed + lost): 1.0 in a fault-free run, degrading
  // as outages destroy in-flight progress.
  double goodput_ratio = 1.0;
};

struct SimulationMetrics {
  std::string scheduler_name;
  std::string trace_name;

  // Total provisioning cost: sum over instances of uptime x hourly price.
  Money total_cost = 0.0;

  // Tally widths: every count that scales with the trace (or with fault
  // bursts) is 64-bit — the million-job tier and long federation horizons
  // can plausibly overflow 32-bit counters.
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t tasks_total = 0;

  std::int64_t instances_launched = 0;
  std::int64_t task_migrations = 0;  // Moves of already-placed tasks.
  double migrations_per_task = 0.0;

  // Time-weighted average number of tasks per live instance.
  double avg_tasks_per_instance = 0.0;

  // Time-weighted allocation fraction per resource (allocated / provisioned).
  double avg_alloc_gpu = 0.0;
  double avg_alloc_cpu = 0.0;
  double avg_alloc_ram = 0.0;

  // Mean over completed jobs of standalone-work / time-spent-executing
  // (1.0 = no interference ever).
  double avg_norm_job_throughput = 0.0;

  double avg_jct_hours = 0.0;
  double avg_job_idle_hours = 0.0;  // JCT minus executing time.

  SimTime makespan_s = 0.0;

  // Scheduling decision points, *including* coalesced ones: the quiescence-
  // aware round trigger counts a skipped round here too, so the cadence
  // accounting (and the golden-pinned values) are independent of batching.
  std::int64_t scheduling_rounds = 0;

  // Rounds absorbed by Scheduler::CoalesceQuiescentRounds — decision points
  // at which the scheduler was never invoked because the engine certified
  // the round quiescent. scheduling_rounds - rounds_coalesced is the number
  // of actual Schedule calls.
  std::int64_t rounds_coalesced = 0;

  // Discrete events processed by the engine; with wall time this gives the
  // events/sec figure the perf benchmarks track.
  std::int64_t events_processed = 0;

  // --- Cloud provider interactions (all 0 when the provider is disabled,
  // the default: infinite capacity, on-demand only) ---
  std::int64_t acquisitions_denied = 0;     // Launches refused by an exhausted pool.
  std::int64_t spot_instances_launched = 0; // Instances acquired on the spot tier.
  std::int64_t spot_preemptions = 0;        // Two-minute preemption warnings received.
  Money spot_cost = 0.0;                    // Portion of total_cost paid at spot rates.

  // Fault-injection accounting (all defaults when SimulatorOptions.faults
  // is off, the default).
  FaultStats faults;

  // Wall time spent inside the scheduler per run (ObserveThroughput +
  // Schedule, summed over rounds) — divided by scheduling_rounds this is
  // the per-round decision latency the perf benchmarks report. Measurement
  // only; never feeds back into the simulation.
  double scheduler_wall_seconds = 0.0;

  // Scheduler decision-path counters (Scheduler::ExportCounters), collected
  // at Finish. All zero for schedulers that don't export any; Eva populates
  // the incremental fast path's pack/fallback/reconciliation accounting.
  SchedulerCounters scheduler_counters;

  // Raw distributions for CDFs / percentile reporting (Figure 3).
  std::vector<double> instance_uptime_hours;
  std::vector<double> jct_hours;
};

}  // namespace eva

#endif  // SRC_SIM_METRICS_H_
